// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so CI can archive every run's numbers as a
// BENCH_ci.json artifact and the perf trajectory is diffable per-PR:
//
//	go test -bench . -benchtime 1x -run '^$' | benchjson > BENCH_ci.json
//
// Each benchmark line — name, iteration count, then value/unit pairs
// (ns/op, MB/s, custom b.ReportMetric units like repair-bytes/op) —
// becomes one entry; goos/goarch/pkg/cpu headers are carried through.
// Non-benchmark lines (the paper-style reports the harness prints) are
// ignored.
//
// With -compare old.json the run is additionally diffed against a prior
// converted document: any benchmark present in both whose ns/op grew, or
// whose MB/s shrank, by more than -threshold percent is reported on
// stderr and the process exits 2 — distinct from exit 1 for tool errors
// (unreadable input, bad baseline) — so CI can tell a perf regression
// from a broken run. MB/s is checked because the repair and stream
// benchmarks are throughput-denominated: a repair that rebuilds fewer
// bytes per second is a regression even if its ns/op (dominated by the
// fixed per-op setup) held steady. bytes-read/op is checked because the
// cached-read benchmarks are traffic-denominated: the warm case's
// baseline is exactly zero, and any backend byte appearing there means
// the cache fast path broke, a regression no time-based metric catches.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	comparePath := flag.String("compare", "", "prior benchjson output to diff ns/op against; exit 2 on regression, 1 on tool error")
	threshold := flag.Float64("threshold", 25, "ns/op growth percent considered a regression with -compare")
	flag.Parse()
	doc := Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		b, ok := parseBenchLine(line)
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *comparePath != "" {
		regressed, err := compare(*comparePath, doc, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(2)
		}
	}
}

// compare diffs ns/op (growth is bad) and MB/s (shrinkage is bad)
// against a prior document, reporting every shared benchmark that moved
// by more than threshold percent in the bad direction. Benchmarks
// present on only one side are ignored — adding or retiring a benchmark
// is not a regression.
func compare(path string, cur Doc, threshold float64) (regressed bool, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var old Doc
	if err := json.Unmarshal(blob, &old); err != nil {
		return false, fmt.Errorf("parse %s: %w", path, err)
	}
	curNames := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curNames[b.Name] = true
	}
	for _, m := range []struct {
		unit string
		// worse computes the percent moved in the bad direction;
		// ok=false means the pair is not comparable (zero baseline
		// where a ratio is meaningless).
		worse func(old, new float64) (pct float64, ok bool)
	}{
		{"ns/op", func(old, new float64) (float64, bool) {
			if old <= 0 {
				return 0, false
			}
			return (new - old) / old * 100, true
		}},
		{"MB/s", func(old, new float64) (float64, bool) {
			if old <= 0 {
				return 0, false
			}
			return (old - new) / old * 100, true
		}},
		// bytes-read/op guards cached and ranged read paths: backend
		// traffic growing is a regression, and growing from the flat
		// zero of a cache hit (where no ratio exists) is the worst
		// one — a warm read that touches the backend at all has lost
		// its cache.
		{"bytes-read/op", func(old, new float64) (float64, bool) {
			if old == 0 {
				if new > 0 {
					return math.Inf(1), true
				}
				return 0, false
			}
			return (new - old) / old * 100, true
		}},
	} {
		base := indexMetric(old, m.unit)
		for _, b := range cur.Benchmarks {
			v, ok := b.Metrics[m.unit]
			if !ok {
				continue
			}
			oldV, shared := base[b.Name]
			if !shared {
				if s := stripProcSuffix(b.Name); s != b.Name && !curNames[s] {
					oldV, shared = base[s]
				}
			}
			if !shared {
				continue
			}
			if worse, comparable := m.worse(oldV, v); comparable && worse > threshold {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f %s -> %.1f %s (%.1f%% worse > %.0f%%)\n",
					b.Name, oldV, m.unit, v, m.unit, worse, threshold)
				regressed = true
			}
		}
	}
	return regressed, nil
}

// indexMetric maps the baseline's benchmark names — verbatim and, where
// unambiguous, with the -GOMAXPROCS suffix stripped, so runs from
// machines with different core counts (Go omits the suffix at
// GOMAXPROCS=1) still pair up — to their value of the given metric.
// Exact matches always win; a stripped key that would collide with a
// real name is never added, and compare skips the stripped fallback when
// the current run itself has a benchmark with that exact name (the
// stripped form then belongs to a different bench).
func indexMetric(old Doc, unit string) map[string]float64 {
	base := make(map[string]float64, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		if v, ok := b.Metrics[unit]; ok && v >= 0 {
			base[b.Name] = v
		}
	}
	for _, b := range old.Benchmarks {
		v, ok := b.Metrics[unit]
		if !ok || v < 0 {
			continue
		}
		if s := stripProcSuffix(b.Name); s != b.Name {
			if _, taken := base[s]; !taken {
				base[s] = v
			}
		}
	}
	return base
}

// stripProcSuffix removes a trailing -<integer> (the GOMAXPROCS suffix
// `go test` appends when GOMAXPROCS > 1). Returns the name unchanged if
// no such suffix exists.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchLine parses one `BenchmarkX-8  3  123 ns/op  4.5 MB/s ...`
// line, reporting ok=false for anything that isn't a benchmark result.
// Names are stored verbatim (including any -GOMAXPROCS suffix); compare
// handles suffix differences between machines.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
