// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so CI can archive every run's numbers as a
// BENCH_ci.json artifact and the perf trajectory is diffable per-PR:
//
//	go test -bench . -benchtime 1x -run '^$' | benchjson > BENCH_ci.json
//
// Each benchmark line — name, iteration count, then value/unit pairs
// (ns/op, MB/s, custom b.ReportMetric units like repair-bytes/op) —
// becomes one entry; goos/goarch/pkg/cpu headers are carried through.
// Non-benchmark lines (the paper-style reports the harness prints) are
// ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc := Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		b, ok := parseBenchLine(line)
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkX-8  3  123 ns/op  4.5 MB/s ...`
// line, reporting ok=false for anything that isn't a benchmark result.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
