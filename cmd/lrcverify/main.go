// Command lrcverify checks the paper's theory results on concrete code
// parameters: the Theorem 2 locality–distance bound, the information-flow
// feasibility of Lemma 2, the exact minimum distance by enumeration, and
// per-block locality (Theorem 5 for the Xorbas instance).
//
// Usage:
//
//	lrcverify [-k n] [-parities n] [-r n] [-flow]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gf"
	"repro/internal/infoflow"
	"repro/internal/lrc"
)

func main() {
	k := flag.Int("k", 10, "data blocks")
	parities := flag.Int("parities", 4, "Reed-Solomon global parities")
	r := flag.Int("r", 5, "group size / locality")
	flow := flag.Bool("flow", false, "also run the information-flow feasibility sweep (needs (r+1)|n)")
	pyramid := flag.Bool("pyramid", false, "verify the §6 pyramid-code baseline instead of the LRC")
	flag.Parse()

	p := lrc.Params{K: *k, GlobalParities: *parities, GroupSize: *r}
	var c *lrc.Code
	var err error
	if *pyramid {
		c, err = lrc.NewPyramid(p)
	} else {
		c, err = lrc.New(p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrcverify:", err)
		os.Exit(1)
	}
	kind := "LRC"
	if *pyramid {
		kind = "pyramid"
	}
	fmt.Printf("%s (k=%d, global parities=%d, r=%d): %d stored blocks, overhead %.2fx\n",
		kind, p.K, p.GlobalParities, p.GroupSize, c.NStored(), c.StorageOverhead())
	fmt.Print(c.Describe())

	if *pyramid {
		fmt.Printf("locality: data blocks ≤ %d reads; overall %d (globals decode heavily); fully local: %v\n",
			c.DataLocality(), c.Locality(), c.FullyLocal())
	} else {
		if err := c.VerifyLocality(); err != nil {
			fmt.Fprintln(os.Stderr, "locality FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("locality: every block repairable from ≤ %d others ✓\n", c.Locality())
	}

	d := c.MinDistance()
	bound := c.MinDistanceBound()
	fmt.Printf("minimum distance (exact, enumerated): %d; Theorem 2 bound: %d\n", d, bound)
	if d > bound {
		fmt.Fprintln(os.Stderr, "BOUND VIOLATION: exact distance exceeds Theorem 2")
		os.Exit(1)
	}
	for i := 0; i < c.NStored(); i++ {
		reads, _, ok := c.Recipe(i)
		if !ok {
			if *pyramid {
				fmt.Printf("  block %2d (%s): heavy decode only (pyramid global)\n", i, c.Kind(i))
				continue
			}
			fmt.Fprintf(os.Stderr, "block %d has no light repair\n", i)
			os.Exit(1)
		}
		fmt.Printf("  block %2d (%s): light repair reads %v\n", i, c.Kind(i), reads)
	}

	rng := rand.New(rand.NewSource(42))
	if !*pyramid {
		if rc, tries, err := lrc.NewRandomized(p, rng, 32); err == nil {
			fmt.Printf("randomized construction: distance %d in %d tries ✓\n", rc.MinDistance(), tries)
		} else {
			fmt.Println("randomized construction:", err)
		}
	}

	if *flow {
		n := c.NStored()
		if n%(*r+1) != 0 {
			fmt.Printf("flow sweep skipped: (r+1)=%d does not divide n=%d (overlapping groups; see Theorem 5)\n", *r+1, n)
			return
		}
		maxd, err := infoflow.MaxFeasibleDistance(*k, n, *r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flow sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("information-flow max feasible distance: %d (Theorem 2 gives %d)\n",
			maxd, lrc.DistanceBound(*k, n, *r))
		f := gf.MustNew(8)
		if _, dGot, tries, err := infoflow.AchievesBound(f, *k, n, *r, rng, 32); err == nil {
			fmt.Printf("RLNC achievability: distance %d in %d tries ✓ (Theorem 3/4)\n", dGot, tries)
		} else {
			fmt.Println("RLNC achievability:", err)
		}
	}
}
