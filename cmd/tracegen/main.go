// Command tracegen regenerates Fig 1: node failures per day over one
// month on a 3000-node production cluster.
//
// Usage:
//
//	tracegen [-days n] [-nodes n] [-mean f] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultTrace()
	flag.IntVar(&cfg.Days, "days", cfg.Days, "days to generate")
	flag.IntVar(&cfg.Nodes, "nodes", cfg.Nodes, "cluster size")
	flag.Float64Var(&cfg.MeanFailuresPerDay, "mean", cfg.MeanFailuresPerDay, "weekday mean failures/day")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Parse()

	trace, err := workload.FailureTrace(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	var vals []float64
	for d, n := range trace {
		fmt.Printf("%s day %2d: %3d %s\n", days[d%7], d+1, n, strings.Repeat("#", n/2))
		vals = append(vals, float64(n))
	}
	s := stats.Summarize(vals)
	fmt.Printf("mean %.1f, min %.0f, max %.0f failures/day over %d days (paper: \"typically 20 or more\")\n",
		s.Mean, s.Min, s.Max, cfg.Days)
}
