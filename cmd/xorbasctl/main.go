// Command xorbasctl encodes, verifies and repairs real files on disk with
// the paper's codes — a single-machine stand-in for the HDFS-Xorbas
// ErasureCode component (§3.1). A file is split into 10 data shards
// (zero-padded), encoded into the 16-shard (10,6,5) LRC stripe (or the
// 14-shard RS(10,4) stripe with -rs), and each shard is written as
// <out>/<name>.shardNN. Deleted or corrupted shards are rebuilt by
// `repair`, preferring the 5-read light decoder.
//
// Usage:
//
//	xorbasctl encode  [-rs] -in file -out dir
//	xorbasctl verify  [-rs] -dir dir -name file
//	xorbasctl repair  [-rs] -dir dir -name file
//	xorbasctl decode  [-rs] -dir dir -name file -out file [-size n]
//
// The `store` subcommands (see store.go) drive the multi-node object
// store in repro/internal/store instead of a single flat stripe:
//
//	xorbasctl store put|get|kill-node|revive-node|corrupt|scrub|repair-drain|stats [flags]
//
// The `node` subcommand (see node.go) runs one block-server process over
// TCP; `store -backend net -nodes a:7001,b:7002,...` drives a cluster of
// them:
//
//	xorbasctl node serve -dir DIR -listen ADDR
//	xorbasctl node ping -nodes a:7001,b:7002,...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lrc"
	"repro/internal/rs"
)

type meta struct {
	Name     string `json:"name"`
	Size     int64  `json:"size"`
	Shards   int    `json:"shards"`
	RS       bool   `json:"rs"`
	ShardLen int    `json:"shard_len"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "store" {
		if err := storeMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "xorbasctl:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "node" {
		if err := nodeMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "xorbasctl:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	useRS := fs.Bool("rs", false, "use RS(10,4) instead of LRC(10,6,5)")
	in := fs.String("in", "", "input file (encode)")
	dir := fs.String("dir", "", "shard directory")
	name := fs.String("name", "", "file name inside the shard directory")
	out := fs.String("out", "", "output directory (encode) or file (decode)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	var err error
	switch cmd {
	case "encode":
		err = encode(*in, *out, *useRS)
	case "verify":
		err = verify(*dir, *name)
	case "repair":
		err = repair(*dir, *name)
	case "decode":
		err = decode(*dir, *name, *out)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xorbasctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xorbasctl encode|verify|repair|decode [flags]")
	fmt.Fprintln(os.Stderr, "       xorbasctl store put|get|kill-node|revive-node|corrupt|scrub|repair-drain|stats [flags]")
	fmt.Fprintln(os.Stderr, "       xorbasctl node serve -dir DIR -listen ADDR")
	fmt.Fprintln(os.Stderr, "       xorbasctl node ping -nodes ADDR,ADDR,...")
	fmt.Fprintln(os.Stderr, "       xorbasctl node add|decommission|status|rebalance [flags]")
	os.Exit(2)
}

const k = 10

func shardPath(dir, name string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard%02d", name, i))
}

func metaPath(dir, name string) string {
	return filepath.Join(dir, name+".stripe.json")
}

// split pads data to a multiple of k and returns the k shards.
func split(data []byte) ([][]byte, int) {
	shardLen := (len(data) + k - 1) / k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(data) {
			copy(shards[i], data[lo:])
		}
	}
	return shards, shardLen
}

func encode(in, outDir string, useRS bool) error {
	if in == "" || outDir == "" {
		return fmt.Errorf("encode needs -in and -out")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	shards, shardLen := split(data)
	var stripe [][]byte
	if useRS {
		code, err := rs.New256(k, 14)
		if err != nil {
			return err
		}
		stripe, err = code.Encode(shards)
		if err != nil {
			return err
		}
	} else {
		var err error
		stripe, err = lrc.NewXorbas().Encode(shards)
		if err != nil {
			return err
		}
	}
	name := filepath.Base(in)
	for i, s := range stripe {
		if err := os.WriteFile(shardPath(outDir, name, i), s, 0o644); err != nil {
			return err
		}
	}
	m := meta{Name: name, Size: int64(len(data)), Shards: len(stripe), RS: useRS, ShardLen: shardLen}
	mb, _ := json.MarshalIndent(m, "", "  ")
	if err := os.WriteFile(metaPath(outDir, name), mb, 0o644); err != nil {
		return err
	}
	kind := "LRC (10,6,5)"
	if useRS {
		kind = "RS (10,4)"
	}
	fmt.Printf("encoded %s (%d bytes) into %d shards of %d bytes each [%s]\n",
		name, len(data), len(stripe), shardLen, kind)
	return nil
}

func loadStripe(dir, name string) (meta, [][]byte, error) {
	var m meta
	mb, err := os.ReadFile(metaPath(dir, name))
	if err != nil {
		return m, nil, err
	}
	if err := json.Unmarshal(mb, &m); err != nil {
		return m, nil, err
	}
	stripe := make([][]byte, m.Shards)
	for i := range stripe {
		b, err := os.ReadFile(shardPath(dir, name, i))
		if err == nil && len(b) == m.ShardLen {
			stripe[i] = b
		}
	}
	return m, stripe, nil
}

func verify(dir, name string) error {
	m, stripe, err := loadStripe(dir, name)
	if err != nil {
		return err
	}
	missing := 0
	for i, s := range stripe {
		if s == nil {
			fmt.Printf("shard %02d: MISSING\n", i)
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d shards missing; run repair", missing)
	}
	var ok bool
	if m.RS {
		code, err := rs.New256(k, 14)
		if err != nil {
			return err
		}
		ok, err = code.Verify(stripe)
		if err != nil {
			return err
		}
	} else {
		ok, err = lrc.NewXorbas().Verify(stripe)
		if err != nil {
			return err
		}
	}
	if !ok {
		return fmt.Errorf("stripe inconsistent: some shard is corrupted")
	}
	fmt.Println("stripe consistent ✓")
	return nil
}

func repair(dir, name string) error {
	m, stripe, err := loadStripe(dir, name)
	if err != nil {
		return err
	}
	var rebuilt []int
	for i, s := range stripe {
		if s == nil {
			rebuilt = append(rebuilt, i)
		}
	}
	if len(rebuilt) == 0 {
		fmt.Println("nothing to repair")
		return nil
	}
	if m.RS {
		code, err := rs.New256(k, 14)
		if err != nil {
			return err
		}
		if _, err := code.Reconstruct(stripe); err != nil {
			return err
		}
		fmt.Printf("repaired shards %v with the RS decoder (reads %d blocks)\n", rebuilt, k)
	} else {
		light, heavy, err := lrc.NewXorbas().Reconstruct(stripe)
		if err != nil {
			return err
		}
		fmt.Printf("repaired shards %v: %d via light decoder (5 reads each), %d via heavy decoder\n",
			rebuilt, light, heavy)
	}
	for _, i := range rebuilt {
		if err := os.WriteFile(shardPath(dir, name, i), stripe[i], 0o644); err != nil {
			return err
		}
	}
	return nil
}

func decode(dir, name, out string) error {
	if out == "" {
		return fmt.Errorf("decode needs -out")
	}
	m, stripe, err := loadStripe(dir, name)
	if err != nil {
		return err
	}
	if m.RS {
		code, err := rs.New256(k, 14)
		if err != nil {
			return err
		}
		if _, err := code.Reconstruct(stripe); err != nil {
			return err
		}
	} else {
		if _, _, err := lrc.NewXorbas().Reconstruct(stripe); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, m.Size)
	for i := 0; i < k && int64(len(buf)) < m.Size; i++ {
		buf = append(buf, stripe[i]...)
	}
	if int64(len(buf)) > m.Size {
		buf = buf[:m.Size]
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes to %s\n", len(buf), out)
	return nil
}
