package main

// The `store` subcommands drive repro/internal/store: a persistent
// multi-node object store living in one directory, with each simulated
// DataNode as a subdirectory of <dir>/blocks and the manifests in
// <dir>/store.json. Node deaths survive across invocations, so a
// kill-node / get / scrub sequence shows degraded reads and the
// BlockFixer's light repairs on real bytes.
//
//	xorbasctl store put        -dir DIR -in FILE [-stream] [-name NAME] [-rs] [-nodes N] [-racks R] [-block BYTES]
//	xorbasctl store get        -dir DIR -name NAME [-out FILE] [-stream]
//
// With -stream, put pipes the input through the store one stripe at a
// time (memory stays bounded no matter the object size; `-in -` reads
// stdin) and get streams stripes straight to -out (`-out -` or no -out
// writes stdout; the summary then goes to stderr).
//
// Every data command also takes `-backend net -nodes a:7001,b:7002,...`:
// blocks then live on real node processes (`xorbasctl node serve`)
// reached over TCP instead of subdirectories, with one address per store
// node, and the summaries include the wire traffic. The manifest
// (store.json) stays in -dir either way. With the default `-backend
// dir`, -nodes is the simulated node count as before.
//
// Every data command also takes `-meta DIR`: the store's manifests then
// live in a write-ahead-logged metadata plane at DIR (internal/meta), so
// an acked put survives kill -9 and a reopen recovers from checkpoint +
// WAL replay instead of the store.json snapshot. Once a store has a
// plane it is remembered (and auto-detected on later invocations); the
// plane is authoritative and store.json becomes an export. `-meta none`
// forces the legacy snapshot-only mode.
//	xorbasctl store kill-node  -dir DIR -node N
//	xorbasctl store revive-node -dir DIR -node N
//	xorbasctl store corrupt    -dir DIR -name NAME [-stripe I] [-block-idx J] [-silent]
//	xorbasctl store scrub      -dir DIR [-workers W] [-scrub-rate B] [-repair-rate B]
//	xorbasctl store repair-drain -dir DIR [-workers W] [-repair-rate B]
//	xorbasctl store stats      -dir DIR
//
// scrub is the full integrity walk (every block read and CRC-checked,
// syndromes scanned) followed by a drain of the repair queue;
// repair-drain skips the reads and repairs node-loss damage straight
// from the manifests — kill-node then repair-drain is the fast path a
// real fixer takes on a dead DataNode. Both print the repair throughput;
// -scrub-rate / -repair-rate bound the background read rates in
// bytes/sec (0 = unlimited), the paper's bounded fixer load.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/netblock"
	"repro/internal/store"
)

// mbps formats a transfer rate; the CLI doubles as a quick perf probe.
func mbps(bytes int64, d time.Duration) string {
	if d <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f MB/s", float64(bytes)/1e6/d.Seconds())
}

func storeUsage() {
	fmt.Fprintln(os.Stderr, "usage: xorbasctl store put|get|kill-node|revive-node|corrupt|scrub|repair-drain|stats [flags]")
	os.Exit(2)
}

func storeMain(args []string) error {
	if len(args) == 0 {
		storeUsage()
	}
	sub := args[0]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	in := fs.String("in", "", "input file (put)")
	out := fs.String("out", "", "output file (get; default stdout summary only)")
	name := fs.String("name", "", "object name (default: input file base name)")
	useRS := fs.Bool("rs", false, "create the store with RS(10,4) instead of LRC(10,6,5) (put only, first use)")
	backendKind := fs.String("backend", "dir", "block backend: dir (subdirectories under -dir) or net (TCP block servers)")
	nodes := fs.String("nodes", "20", "dir backend: simulated node count (first put only); net backend: comma-separated host:port list, one address per node")
	racks := fs.Int("racks", 8, "racks, rack = node mod racks (first put only)")
	blockSize := fs.Int("block", 64<<10, "max data-block bytes (first put only)")
	node := fs.Int("node", -1, "node id (kill-node / revive-node)")
	stripeIdx := fs.Int("stripe", 0, "stripe index (corrupt)")
	blockIdx := fs.Int("block-idx", 0, "stripe position (corrupt)")
	silent := fs.Bool("silent", false, "corrupt with a valid checksum, so only the group syndrome catches it")
	workers := fs.Int("workers", 2, "repair worker pool size (scrub / repair-drain)")
	repairRate := fs.Int64("repair-rate", 0, "repair read budget in bytes/sec, 0 = unlimited (scrub / repair-drain)")
	scrubRate := fs.Int64("scrub-rate", 0, "scrub read budget in bytes/sec, 0 = unlimited (scrub)")
	stream := fs.Bool("stream", false, "stream stripe-by-stripe with bounded memory (put/get; '-' = stdin/stdout)")
	metaFlag := fs.String("meta", "", "metadata plane directory (WAL + checkpoint; durable acked puts); default: reuse the store's recorded plane; 'none' = snapshot-only")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		return fmt.Errorf("store %s needs -dir", sub)
	}
	spec, err := parseBackendSpec(*backendKind, *nodes)
	if err != nil {
		return err
	}
	metaDir := resolveMetaDir(*dir, *metaFlag)
	switch sub {
	case "put":
		return storePut(*dir, spec, metaDir, *in, *name, *useRS, *racks, *blockSize, *stream)
	case "get":
		return storeGet(*dir, spec, metaDir, *name, *out, *stream)
	case "kill-node":
		return storeSetNode(*dir, spec, metaDir, *node, false)
	case "revive-node":
		return storeSetNode(*dir, spec, metaDir, *node, true)
	case "corrupt":
		return storeCorrupt(*dir, spec, metaDir, *name, *stripeIdx, *blockIdx, *silent)
	case "scrub":
		return storeScrub(*dir, spec, metaDir, *workers, *scrubRate, *repairRate)
	case "repair-drain":
		return storeRepairDrain(*dir, spec, metaDir, *workers, *repairRate)
	case "stats":
		return storeStats(*dir, spec, metaDir)
	default:
		storeUsage()
		return nil
	}
}

// metaMarkerPath records where a store's metadata plane lives, so later
// invocations find it without repeating -meta.
func metaMarkerPath(dir string) string { return filepath.Join(dir, "metadir") }

// resolveMetaDir interprets -meta: an explicit directory wins, "none"
// forces the legacy snapshot-only mode, and "" falls back to the plane
// the store was created with (the marker file), if any.
func resolveMetaDir(dir, flagVal string) string {
	switch flagVal {
	case "none":
		return ""
	case "":
		if b, err := os.ReadFile(metaMarkerPath(dir)); err == nil {
			return strings.TrimSpace(string(b))
		}
		return ""
	default:
		return flagVal
	}
}

// rememberMetaDir persists the marker (best-effort: losing it only costs
// a -meta flag on the next invocation).
func rememberMetaDir(dir, metaDir string) {
	if metaDir == "" {
		return
	}
	_ = os.WriteFile(metaMarkerPath(dir), []byte(metaDir+"\n"), 0o644)
}

// backendSpec is how the CLI reaches block bytes: subdirectories of the
// store directory, or a fleet of TCP block servers.
type backendSpec struct {
	kind  string   // "dir" or "net"
	addrs []string // net: one host:port per store node
	count int      // node count (net: len(addrs); dir: first-put count)
}

// parseBackendSpec interprets -backend and -nodes together: the -nodes
// flag is a node count for the dir backend and an address list for the
// net backend.
func parseBackendSpec(kind, nodes string) (backendSpec, error) {
	switch kind {
	case "dir":
		n, err := strconv.Atoi(nodes)
		if err != nil || n < 1 {
			return backendSpec{}, fmt.Errorf("-backend dir needs -nodes to be a positive node count, got %q", nodes)
		}
		return backendSpec{kind: kind, count: n}, nil
	case "net":
		addrs := strings.Split(nodes, ",")
		for i, a := range addrs {
			addrs[i] = strings.TrimSpace(a)
			if !strings.Contains(addrs[i], ":") {
				return backendSpec{}, fmt.Errorf("-backend net needs -nodes as host:port,host:port,...; %q has no port", a)
			}
		}
		return backendSpec{kind: kind, addrs: addrs, count: len(addrs)}, nil
	default:
		return backendSpec{}, fmt.Errorf("unknown -backend %q (want dir or net)", kind)
	}
}

// open builds the block backend for a store rooted at dir.
func (bs backendSpec) open(dir string) (store.Backend, error) {
	if bs.kind == "net" {
		return netblock.Dial(bs.addrs, netblock.Options{})
	}
	return store.NewDirBackend(filepath.Join(dir, "blocks"))
}

// wireLine formats the wire-traffic totals, empty for in-process
// backends.
func wireLine(m store.Metrics) string {
	if m.WireSentBytes == 0 && m.WireRecvBytes == 0 {
		return ""
	}
	return fmt.Sprintf("wire: %d bytes sent / %d bytes received\n", m.WireSentBytes, m.WireRecvBytes)
}

func storeStatePath(dir string) string { return filepath.Join(dir, "store.json") }

// backendMarkerPath records which backend kind a store was created with,
// so a net-backed store opened without its flags fails fast instead of
// presenting as an empty dir store (and vice versa). Stores predating
// the marker were always dir-backed.
func backendMarkerPath(dir string) string { return filepath.Join(dir, "backend") }

// checkBackendKind validates spec against the store's recorded backend
// kind.
func checkBackendKind(dir string, spec backendSpec) error {
	b, err := os.ReadFile(backendMarkerPath(dir))
	recorded := "dir"
	if err == nil {
		recorded = strings.TrimSpace(string(b))
	}
	if recorded != spec.kind {
		return fmt.Errorf("store at %s was created with -backend %s; re-run with -backend %s (and -nodes for net)", dir, recorded, recorded)
	}
	return nil
}

// codecByName maps a snapshot's codec string back to a constructor.
func codecByName(n string) (store.Codec, error) {
	switch n {
	case "LRC(10,6,5)":
		return store.NewXorbasCodec(), nil
	case "RS(10,4)":
		return store.NewRS104Codec(), nil
	default:
		return nil, fmt.Errorf("unknown codec %q in store state", n)
	}
}

// openStore loads an existing on-disk store, inferring the codec from the
// saved state.
func openStore(dir string, spec backendSpec, metaDir string) (*store.Store, error) {
	return openStoreRates(dir, spec, metaDir, 0, 0)
}

// openStoreRates is openStore with read-rate budgets for the background
// datapaths (bytes/sec, 0 = unlimited). With a metaDir, the plane is
// authoritative for manifests (store.json imports only into an empty
// plane — the migration path) and this invocation's commits hit its WAL.
func openStoreRates(dir string, spec backendSpec, metaDir string, repairRate, scrubRate int64) (*store.Store, error) {
	blob, err := os.ReadFile(storeStatePath(dir))
	if err != nil {
		return nil, fmt.Errorf("no store at %s (run `store put` first): %w", dir, err)
	}
	if err := checkBackendKind(dir, spec); err != nil {
		return nil, err
	}
	var peek struct {
		Codec string `json:"codec"`
		Nodes int    `json:"nodes"`
	}
	if err := json.Unmarshal(blob, &peek); err != nil {
		return nil, err
	}
	codec, err := codecByName(peek.Codec)
	if err != nil {
		return nil, err
	}
	if spec.kind == "net" && len(spec.addrs) != peek.Nodes {
		return nil, fmt.Errorf("store has %d nodes but -nodes lists %d addresses", peek.Nodes, len(spec.addrs))
	}
	be, err := spec.open(dir)
	if err != nil {
		return nil, err
	}
	s, err := store.Restore(store.Config{
		Codec:           codec,
		Backend:         be,
		MetaDir:         metaDir,
		RepairRateBytes: repairRate,
		ScrubRateBytes:  scrubRate,
	}, blob)
	if err != nil {
		return nil, err
	}
	rememberMetaDir(dir, metaDir)
	return s, nil
}

// saveStore writes the store's metadata snapshot back to disk (with a
// metadata plane this is an export for inspection and migration — the
// plane itself is already durable) and closes the store, checkpointing
// the plane so the next open replays nothing.
func saveStore(dir string, s *store.Store) error {
	blob, err := s.Snapshot()
	if err != nil {
		return err
	}
	if err := os.WriteFile(storeStatePath(dir), blob, 0o644); err != nil {
		return err
	}
	return s.Close()
}

func storePut(dir string, spec backendSpec, metaDir, in, name string, useRS bool, racks, blockSize int, stream bool) error {
	if in == "" {
		return fmt.Errorf("store put needs -in")
	}
	if name == "" {
		if in == "-" {
			return fmt.Errorf("store put -stream from stdin needs -name")
		}
		name = filepath.Base(in)
	}
	var s *store.Store
	if _, err := os.Stat(storeStatePath(dir)); err == nil {
		if s, err = openStore(dir, spec, metaDir); err != nil {
			return err
		}
		if useRS && !strings.HasPrefix(s.Codec().Name(), "RS") {
			fmt.Fprintf(os.Stderr, "note: store already exists with codec %s; -rs is only honored on first use\n", s.Codec().Name())
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		be, err := spec.open(dir)
		if err != nil {
			return err
		}
		var codec store.Codec = store.NewXorbasCodec()
		if useRS {
			codec = store.NewRS104Codec()
		}
		s, err = store.New(store.Config{Codec: codec, Backend: be, Nodes: spec.count, Racks: racks, BlockSize: blockSize, MetaDir: metaDir})
		if err != nil {
			return err
		}
		if err := os.WriteFile(backendMarkerPath(dir), []byte(spec.kind+"\n"), 0o644); err != nil {
			return err
		}
		rememberMetaDir(dir, metaDir)
	}
	var size int64
	start := time.Now()
	if stream {
		var r io.Reader = os.Stdin
		if in != "-" {
			f, err := os.Open(in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		if err := s.PutReader(name, r); err != nil {
			return err
		}
		for _, o := range s.Objects() {
			if o.Name == name {
				size = int64(o.Size)
			}
		}
	} else {
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		if err := s.Put(name, data); err != nil {
			return err
		}
		size = int64(len(data))
	}
	elapsed := time.Since(start)
	if err := saveStore(dir, s); err != nil {
		return err
	}
	m := s.Metrics()
	fmt.Printf("put %s: %d bytes as %s over %d nodes / %d racks (%d blocks, %d bytes written) in %v (%s)\n",
		name, size, s.Codec().Name(), s.Nodes(), s.Racks(), m.PutBlocks, m.PutBytes,
		elapsed.Round(time.Millisecond), mbps(size, elapsed))
	fmt.Print(wireLine(m))
	return nil
}

func storeGet(dir string, spec backendSpec, metaDir, name, out string, stream bool) error {
	if name == "" {
		return fmt.Errorf("store get needs -name")
	}
	s, err := openStore(dir, spec, metaDir)
	if err != nil {
		return err
	}
	defer s.Close()
	var info store.ReadInfo
	var size int64
	report := os.Stdout
	start := time.Now()
	if stream {
		if out != "" && out != "-" {
			// Stream into a temp file and rename on success, so a failed
			// read never leaves a truncated object at -out (the same
			// crash-safety DirBackend gives block writes).
			tmp := out + ".partial"
			f, err := os.Create(tmp)
			if err != nil {
				return err
			}
			info, err = s.GetWriter(name, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				os.Remove(tmp)
				return err
			}
			if err := os.Rename(tmp, out); err != nil {
				os.Remove(tmp)
				return err
			}
		} else {
			// Object bytes own stdout; the summary moves to stderr.
			report = os.Stderr
			if info, err = s.GetWriter(name, os.Stdout); err != nil {
				return err
			}
		}
		size = info.BytesWritten
	} else {
		data, dinfo, err := s.Get(name)
		if err != nil {
			return err
		}
		if out != "" {
			if err := os.WriteFile(out, data, 0o644); err != nil {
				return err
			}
		}
		info, size = dinfo, int64(len(data))
	}
	elapsed := time.Since(start)
	mode := "clean"
	if info.Degraded {
		mode = fmt.Sprintf("DEGRADED (%d light / %d heavy inline repairs)", info.LightRepairs, info.HeavyRepairs)
	}
	fmt.Fprintf(report, "get %s: %d bytes, %s; read %d blocks / %d bytes in %v (%s)\n",
		name, size, mode, info.BlocksRead, info.BytesRead,
		elapsed.Round(time.Millisecond), mbps(size, elapsed))
	fmt.Fprint(report, wireLine(s.Metrics()))
	return nil
}

func storeSetNode(dir string, spec backendSpec, metaDir string, node int, up bool) error {
	if node < 0 {
		return fmt.Errorf("need -node")
	}
	s, err := openStore(dir, spec, metaDir)
	if err != nil {
		return err
	}
	if node >= s.Nodes() {
		return fmt.Errorf("node %d out of range [0,%d)", node, s.Nodes())
	}
	if up {
		s.ReviveNode(node)
		fmt.Printf("node %d revived\n", node)
	} else {
		s.KillNode(node)
		fmt.Printf("node %d killed: its blocks are unreadable until scrub repairs them elsewhere\n", node)
	}
	return saveStore(dir, s)
}

func storeCorrupt(dir string, spec backendSpec, metaDir, name string, stripe, pos int, silent bool) error {
	if name == "" {
		return fmt.Errorf("store corrupt needs -name")
	}
	if spec.kind != "dir" {
		return fmt.Errorf("store corrupt edits block files directly and needs -backend dir (corrupt a net node's files on its own machine instead)")
	}
	s, err := openStore(dir, spec, metaDir)
	if err != nil {
		return err
	}
	defer s.Close()
	node, key, err := s.BlockLocation(name, stripe, pos)
	if err != nil {
		return err
	}
	be := s.Backend().(*store.DirBackend)
	p := be.Path(node, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		return err
	}
	if silent {
		// Garbage payload under a valid checksum: invisible to the CRC,
		// caught only by the codec's group-syndrome scan.
		payload := make([]byte, len(raw)-4)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		if err := be.Write(node, key, store.FrameBlock(payload)); err != nil {
			return err
		}
		fmt.Printf("silently corrupted %s stripe %d block %d (node %d): checksum still valid\n", name, stripe, pos, node)
		return nil
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("corrupted %s stripe %d block %d (node %d): CRC will catch it\n", name, stripe, pos, node)
	return nil
}

func storeScrub(dir string, spec backendSpec, metaDir string, workers int, scrubRate, repairRate int64) error {
	s, err := openStoreRates(dir, spec, metaDir, repairRate, scrubRate)
	if err != nil {
		return err
	}
	rm := store.NewRepairManager(s, workers)
	rm.Start()
	sc := store.NewScrubber(s, rm, 0)
	start := time.Now()
	rep := sc.ScrubOnce()
	rm.Drain()
	rm.Stop()
	elapsed := time.Since(start)
	m := s.Metrics()
	fmt.Printf("scrub: %d stripes checked (%d blocks / %d bytes read), %d missing + %d corrupt blocks found, %d stripes enqueued\n",
		rep.Stripes, m.ScrubBlocksRead, m.ScrubBytesRead, rep.Missing, rep.Corrupt, rep.Enqueued)
	fmt.Printf("repair: %d blocks / %d bytes rebuilt (%d light / %d heavy), %d blocks / %d bytes read, in %v (%s repaired)\n",
		m.RepairedBlocks, m.RepairedBytes, m.RepairsLight, m.RepairsHeavy,
		m.RepairBlocksRead, m.RepairBytesRead,
		elapsed.Round(time.Millisecond), mbps(m.RepairedBytes, elapsed))
	fmt.Print(wireLine(m))
	return saveStore(dir, s)
}

// storeRepairDrain repairs node-loss damage from the manifests alone: a
// presence walk (no reads, no CRC work) feeds the queue, then the worker
// pool drains it. The per-invocation barrier a kill-node workflow needs,
// without paying for a full integrity walk.
func storeRepairDrain(dir string, spec backendSpec, metaDir string, workers int, repairRate int64) error {
	s, err := openStoreRates(dir, spec, metaDir, repairRate, 0)
	if err != nil {
		return err
	}
	rm := store.NewRepairManager(s, workers)
	rm.Start()
	sc := store.NewScrubber(s, rm, 0)
	start := time.Now()
	rep := sc.ScrubPresence()
	rm.Drain()
	rm.Stop()
	elapsed := time.Since(start)
	m := s.Metrics()
	fmt.Printf("repair-drain: %d stripes walked, %d blocks on dead nodes, %d stripes enqueued\n",
		rep.Stripes, rep.Missing, rep.Enqueued)
	fmt.Printf("repair: %d blocks / %d bytes rebuilt (%d light / %d heavy), %d blocks / %d bytes read, in %v (%s repaired)\n",
		m.RepairedBlocks, m.RepairedBytes, m.RepairsLight, m.RepairsHeavy,
		m.RepairBlocksRead, m.RepairBytesRead,
		elapsed.Round(time.Millisecond), mbps(m.RepairedBytes, elapsed))
	fmt.Print(wireLine(m))
	return saveStore(dir, s)
}

func storeStats(dir string, spec backendSpec, metaDir string) error {
	s, err := openStore(dir, spec, metaDir)
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("store %s: codec %s, %d nodes / %d racks\n", dir, s.Codec().Name(), s.Nodes(), s.Racks())
	if metaDir != "" {
		objects, replayed := s.MetaRecovered()
		fmt.Printf("meta plane %s: %d manifests recovered, %d WAL records replayed at open\n",
			metaDir, objects, replayed)
	}
	var dead []string
	for n := 0; n < s.Nodes(); n++ {
		if !s.Alive(n) {
			dead = append(dead, fmt.Sprintf("%d", n))
		}
	}
	if len(dead) > 0 {
		fmt.Printf("dead nodes: %s\n", strings.Join(dead, ", "))
	}
	objs := s.Objects()
	fmt.Printf("%d objects:\n", len(objs))
	for _, o := range objs {
		fmt.Printf("  %-24s %10d bytes  %d stripes\n", o.Name, o.Size, o.Stripes)
	}
	per := s.BlocksPerNode()
	fmt.Printf("blocks per node:")
	for n, c := range per {
		if n%8 == 0 {
			fmt.Printf("\n  ")
		}
		mark := " "
		if !s.Alive(n) {
			mark = "†"
		}
		fmt.Printf("n%02d%s=%-4d", n, mark, c)
	}
	fmt.Println()
	return nil
}
