package main

// The `store` subcommands drive repro/internal/store: a persistent
// multi-node object store living in one directory, with each simulated
// DataNode as a subdirectory of <dir>/blocks and the manifests in
// <dir>/store.json. Node deaths survive across invocations, so a
// kill-node / get / scrub sequence shows degraded reads and the
// BlockFixer's light repairs on real bytes.
//
//	xorbasctl store put        -dir DIR -in FILE [-stream] [-name NAME] [-rs] [-nodes N] [-racks R] [-block BYTES]
//	xorbasctl store get        -dir DIR -name NAME [-out FILE] [-stream] [-cache-bytes B]
//
// With -stream, put pipes the input through the store one stripe at a
// time (memory stays bounded no matter the object size; `-in -` reads
// stdin) and get streams stripes straight to -out (`-out -` or no -out
// writes stdout; the summary then goes to stderr).
//
// Every data command also takes `-backend net -nodes a:7001,b:7002,...`:
// blocks then live on real node processes (`xorbasctl node serve`)
// reached over TCP instead of subdirectories, with one address per store
// node, and the summaries include the wire traffic. The manifest
// (store.json) stays in -dir either way. With the default `-backend
// dir`, -nodes is the simulated node count as before.
//
// Every data command also takes `-meta DIR`: the store's manifests then
// live in a write-ahead-logged metadata plane at DIR (internal/meta), so
// an acked put survives kill -9 and a reopen recovers from checkpoint +
// WAL replay instead of the store.json snapshot. Once a store has a
// plane it is remembered (and auto-detected on later invocations); the
// plane is authoritative and store.json becomes an export. `-meta none`
// forces the legacy snapshot-only mode.
//	xorbasctl store kill-node  -dir DIR -node N
//	xorbasctl store revive-node -dir DIR -node N
//	xorbasctl store corrupt    -dir DIR -name NAME [-stripe I] [-block-idx J] [-silent]
//	xorbasctl store scrub      -dir DIR [-workers W] [-scrub-rate B] [-repair-rate B]
//	xorbasctl store repair-drain -dir DIR [-workers W] [-repair-rate B]
//	xorbasctl store stats      -dir DIR [-cache-bytes B]
//
// scrub is the full integrity walk (every block read and CRC-checked,
// syndromes scanned) followed by a drain of the repair queue;
// repair-drain skips the reads and repairs node-loss damage straight
// from the manifests — kill-node then repair-drain is the fast path a
// real fixer takes on a dead DataNode. Both print the repair throughput;
// -scrub-rate / -repair-rate bound the background read rates in
// bytes/sec (0 = unlimited), the paper's bounded fixer load.
//
// The shared flag plumbing (-dir/-backend/-nodes/-meta/-code and the
// open/create/save paths) lives in repro/internal/cliutil, where the
// xorbasd gateway uses the very same definitions.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/store"
)

func storeUsage() {
	fmt.Fprintln(os.Stderr, "usage: xorbasctl store put|get|kill-node|revive-node|corrupt|scrub|repair-drain|stats [flags]")
	os.Exit(2)
}

func storeMain(args []string) error {
	if len(args) == 0 {
		storeUsage()
	}
	sub := args[0]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	sf := cliutil.RegisterStoreFlags(fs)
	in := fs.String("in", "", "input file (put)")
	out := fs.String("out", "", "output file (get; default stdout summary only)")
	name := fs.String("name", "", "object name (default: input file base name)")
	useRS := fs.Bool("rs", false, "create the store with RS(10,4) instead of LRC(10,6,5) (put only, first use; same as -code rs)")
	racks := fs.Int("racks", 8, "racks, rack = node mod racks (first put only)")
	blockSize := fs.Int("block", 64<<10, "max data-block bytes (first put only)")
	node := fs.Int("node", -1, "node id (kill-node / revive-node)")
	stripeIdx := fs.Int("stripe", 0, "stripe index (corrupt)")
	blockIdx := fs.Int("block-idx", 0, "stripe position (corrupt)")
	silent := fs.Bool("silent", false, "corrupt with a valid checksum, so only the group syndrome catches it")
	workers := fs.Int("workers", 2, "repair worker pool size (scrub / repair-drain)")
	repairRate := fs.Int64("repair-rate", 0, "repair read budget in bytes/sec, 0 = unlimited (scrub / repair-drain)")
	scrubRate := fs.Int64("scrub-rate", 0, "scrub read budget in bytes/sec, 0 = unlimited (scrub)")
	stream := fs.Bool("stream", false, "stream stripe-by-stripe with bounded memory (put/get; '-' = stdin/stdout)")
	cacheBytes := fs.Int64("cache-bytes", 0, "hot-block read cache capacity in bytes for this invocation (get / stats; 0 = no cache)")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	if *sf.Dir == "" {
		return fmt.Errorf("store %s needs -dir", sub)
	}
	if *useRS {
		*sf.Code = "rs"
	}
	switch sub {
	case "put":
		return storePut(sf, *in, *name, *racks, *blockSize, *stream)
	case "get":
		return storeGet(sf, *name, *out, *stream, *cacheBytes)
	case "kill-node":
		return storeSetNode(sf, *node, false)
	case "revive-node":
		return storeSetNode(sf, *node, true)
	case "corrupt":
		return storeCorrupt(sf, *name, *stripeIdx, *blockIdx, *silent)
	case "scrub":
		return storeScrub(sf, *workers, *scrubRate, *repairRate)
	case "repair-drain":
		return storeRepairDrain(sf, *workers, *repairRate)
	case "stats":
		return storeStats(sf, *cacheBytes)
	default:
		storeUsage()
		return nil
	}
}

func storePut(sf *cliutil.StoreFlags, in, name string, racks, blockSize int, stream bool) error {
	if in == "" {
		return fmt.Errorf("store put needs -in")
	}
	if name == "" {
		if in == "-" {
			return fmt.Errorf("store put -stream from stdin needs -name")
		}
		name = filepath.Base(in)
	}
	existed := false
	if _, err := os.Stat(cliutil.StoreStatePath(*sf.Dir)); err == nil {
		existed = true
	}
	s, err := sf.OpenOrCreate(racks, blockSize)
	if err != nil {
		return err
	}
	if existed && *sf.Code == "rs" && !strings.HasPrefix(s.Codec().Name(), "RS") {
		fmt.Fprintf(os.Stderr, "note: store already exists with codec %s; -rs is only honored on first use\n", s.Codec().Name())
	}
	var size int64
	start := time.Now()
	if stream {
		var r io.Reader = os.Stdin
		if in != "-" {
			f, err := os.Open(in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		if err := s.PutReader(name, r); err != nil {
			return err
		}
		if st, err := s.Stat(name); err == nil {
			size = int64(st.Size)
		}
	} else {
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		if err := s.Put(name, data); err != nil {
			return err
		}
		size = int64(len(data))
	}
	elapsed := time.Since(start)
	if err := cliutil.SaveStore(*sf.Dir, s); err != nil {
		return err
	}
	m := s.Metrics()
	fmt.Printf("put %s: %d bytes as %s over %d nodes / %d racks (%d blocks, %d bytes written) in %v (%s)\n",
		name, size, s.Codec().Name(), s.Nodes(), s.Racks(), m.PutBlocks, m.PutBytes,
		elapsed.Round(time.Millisecond), cliutil.Mbps(size, elapsed))
	fmt.Print(cliutil.WireLine(m))
	return nil
}

func storeGet(sf *cliutil.StoreFlags, name, out string, stream bool, cacheBytes int64) error {
	if name == "" {
		return fmt.Errorf("store get needs -name")
	}
	s, err := sf.OpenRates(cliutil.Rates{CacheBytes: cacheBytes})
	if err != nil {
		return err
	}
	defer s.Close()
	var info store.ReadInfo
	var size int64
	report := os.Stdout
	start := time.Now()
	if stream {
		if out != "" && out != "-" {
			// Stream into a temp file and rename on success, so a failed
			// read never leaves a truncated object at -out (the same
			// crash-safety DirBackend gives block writes).
			tmp := out + ".partial"
			f, err := os.Create(tmp)
			if err != nil {
				return err
			}
			info, err = s.GetWriter(name, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				os.Remove(tmp)
				return err
			}
			if err := os.Rename(tmp, out); err != nil {
				os.Remove(tmp)
				return err
			}
		} else {
			// Object bytes own stdout; the summary moves to stderr.
			report = os.Stderr
			if info, err = s.GetWriter(name, os.Stdout); err != nil {
				return err
			}
		}
		size = info.BytesWritten
	} else {
		data, dinfo, err := s.Get(name)
		if err != nil {
			return err
		}
		if out != "" {
			if err := os.WriteFile(out, data, 0o644); err != nil {
				return err
			}
		}
		info, size = dinfo, int64(len(data))
	}
	elapsed := time.Since(start)
	mode := "clean"
	if info.Degraded {
		mode = fmt.Sprintf("DEGRADED (%d light / %d heavy inline repairs)", info.LightRepairs, info.HeavyRepairs)
	}
	fmt.Fprintf(report, "get %s: %d bytes, %s; read %d blocks / %d bytes in %v (%s)\n",
		name, size, mode, info.BlocksRead, info.BytesRead,
		elapsed.Round(time.Millisecond), cliutil.Mbps(size, elapsed))
	fmt.Fprint(report, cacheLine(cacheBytes, s.Metrics()))
	fmt.Fprint(report, cliutil.WireLine(s.Metrics()))
	return nil
}

// cacheLine formats the hot-block cache view — capacity, residency, hit
// rate — empty when no cache was configured for this invocation.
func cacheLine(capacity int64, m store.Metrics) string {
	if capacity <= 0 {
		return ""
	}
	rate := 0.0
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		rate = float64(m.CacheHits) / float64(lookups)
	}
	return fmt.Sprintf("cache: %d/%d bytes resident, %d hits / %d misses (%.0f%% hit rate), %d evicted + %d invalidated\n",
		m.CacheBytes, capacity, m.CacheHits, m.CacheMisses, 100*rate, m.CacheEvictions, m.CacheInvalidations)
}

func storeSetNode(sf *cliutil.StoreFlags, node int, up bool) error {
	if node < 0 {
		return fmt.Errorf("need -node")
	}
	s, err := sf.Open()
	if err != nil {
		return err
	}
	if node >= s.Nodes() {
		return fmt.Errorf("node %d out of range [0,%d)", node, s.Nodes())
	}
	if up {
		s.ReviveNode(node)
		fmt.Printf("node %d revived\n", node)
	} else {
		s.KillNode(node)
		fmt.Printf("node %d killed: its blocks are unreadable until scrub repairs them elsewhere\n", node)
	}
	return cliutil.SaveStore(*sf.Dir, s)
}

func storeCorrupt(sf *cliutil.StoreFlags, name string, stripe, pos int, silent bool) error {
	if name == "" {
		return fmt.Errorf("store corrupt needs -name")
	}
	if *sf.Backend != "dir" {
		return fmt.Errorf("store corrupt edits block files directly and needs -backend dir (corrupt a net node's files on its own machine instead)")
	}
	s, err := sf.Open()
	if err != nil {
		return err
	}
	defer s.Close()
	node, key, err := s.BlockLocation(name, stripe, pos)
	if err != nil {
		return err
	}
	be := s.Backend().(*store.DirBackend)
	p := be.Path(node, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		return err
	}
	if silent {
		// Garbage payload under a valid checksum: invisible to the CRC,
		// caught only by the codec's group-syndrome scan.
		payload := make([]byte, len(raw)-4)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		if err := be.Write(node, key, store.FrameBlock(payload)); err != nil {
			return err
		}
		fmt.Printf("silently corrupted %s stripe %d block %d (node %d): checksum still valid\n", name, stripe, pos, node)
		return nil
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("corrupted %s stripe %d block %d (node %d): CRC will catch it\n", name, stripe, pos, node)
	return nil
}

func storeScrub(sf *cliutil.StoreFlags, workers int, scrubRate, repairRate int64) error {
	s, err := sf.OpenRates(cliutil.Rates{Repair: repairRate, Scrub: scrubRate})
	if err != nil {
		return err
	}
	rm := store.NewRepairManager(s, workers)
	rm.Start()
	sc := store.NewScrubber(s, rm, 0)
	start := time.Now()
	rep := sc.ScrubOnce()
	rm.Drain()
	rm.Stop()
	elapsed := time.Since(start)
	m := s.Metrics()
	fmt.Printf("scrub: %d stripes checked (%d blocks / %d bytes read), %d missing + %d corrupt blocks found, %d stripes enqueued\n",
		rep.Stripes, m.ScrubBlocksRead, m.ScrubBytesRead, rep.Missing, rep.Corrupt, rep.Enqueued)
	fmt.Printf("repair: %d blocks / %d bytes rebuilt (%d light / %d heavy), %d blocks / %d bytes read, in %v (%s repaired)\n",
		m.RepairedBlocks, m.RepairedBytes, m.RepairsLight, m.RepairsHeavy,
		m.RepairBlocksRead, m.RepairBytesRead,
		elapsed.Round(time.Millisecond), cliutil.Mbps(m.RepairedBytes, elapsed))
	fmt.Print(cliutil.WireLine(m))
	return cliutil.SaveStore(*sf.Dir, s)
}

// storeRepairDrain repairs node-loss damage from the manifests alone: a
// presence walk (no reads, no CRC work) feeds the queue, then the worker
// pool drains it. The per-invocation barrier a kill-node workflow needs,
// without paying for a full integrity walk.
func storeRepairDrain(sf *cliutil.StoreFlags, workers int, repairRate int64) error {
	s, err := sf.OpenRates(cliutil.Rates{Repair: repairRate})
	if err != nil {
		return err
	}
	rm := store.NewRepairManager(s, workers)
	rm.Start()
	sc := store.NewScrubber(s, rm, 0)
	start := time.Now()
	rep := sc.ScrubPresence()
	rm.Drain()
	rm.Stop()
	elapsed := time.Since(start)
	m := s.Metrics()
	fmt.Printf("repair-drain: %d stripes walked, %d blocks on dead nodes, %d stripes enqueued\n",
		rep.Stripes, rep.Missing, rep.Enqueued)
	fmt.Printf("repair: %d blocks / %d bytes rebuilt (%d light / %d heavy), %d blocks / %d bytes read, in %v (%s repaired)\n",
		m.RepairedBlocks, m.RepairedBytes, m.RepairsLight, m.RepairsHeavy,
		m.RepairBlocksRead, m.RepairBytesRead,
		elapsed.Round(time.Millisecond), cliutil.Mbps(m.RepairedBytes, elapsed))
	fmt.Print(cliutil.WireLine(m))
	return cliutil.SaveStore(*sf.Dir, s)
}

func storeStats(sf *cliutil.StoreFlags, cacheBytes int64) error {
	s, err := sf.OpenRates(cliutil.Rates{CacheBytes: cacheBytes})
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("store %s: codec %s, %d nodes / %d racks\n", *sf.Dir, s.Codec().Name(), s.Nodes(), s.Racks())
	fmt.Print(cacheLine(cacheBytes, s.Metrics()))
	if metaDir := sf.MetaDir(); metaDir != "" {
		objects, replayed := s.MetaRecovered()
		fmt.Printf("meta plane %s: %d manifests recovered, %d WAL records replayed at open\n",
			metaDir, objects, replayed)
	}
	var dead []string
	for n := 0; n < s.Nodes(); n++ {
		if !s.Alive(n) {
			dead = append(dead, fmt.Sprintf("%d", n))
		}
	}
	if len(dead) > 0 {
		fmt.Printf("dead nodes: %s\n", strings.Join(dead, ", "))
	}
	objs := s.Objects()
	fmt.Printf("%d objects:\n", len(objs))
	for _, o := range objs {
		fmt.Printf("  %-24s %10d bytes  %d stripes\n", o.Name, o.Size, o.Stripes)
	}
	per := s.BlocksPerNode()
	fmt.Printf("blocks per node:")
	for n, c := range per {
		if n%8 == 0 {
			fmt.Printf("\n  ")
		}
		mark := " "
		if !s.Alive(n) {
			mark = "†"
		}
		fmt.Printf("n%02d%s=%-4d", n, mark, c)
	}
	fmt.Println()
	return nil
}
