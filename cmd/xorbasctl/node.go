package main

// The `node` subcommand runs one block-server process: the network
// counterpart of a DataNode. Its storage is a plain DirBackend directory
// (the same layout `store -backend dir` writes), served over the
// netblock TCP protocol, so a store driven with `-backend net` reads and
// writes real sockets while each node keeps shell-inspectable files.
//
//	xorbasctl node serve -dir DIR -listen ADDR
//
// The process serves until SIGINT/SIGTERM, then stops hard (in-flight
// requests are cut, never half-acknowledged — the store's CRC frames and
// crash-safe block writes make that safe).

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/netblock"
	"repro/internal/store"
)

func nodeUsage() {
	fmt.Fprintln(os.Stderr, "usage: xorbasctl node serve -dir DIR -listen ADDR")
	os.Exit(2)
}

func nodeMain(args []string) error {
	if len(args) == 0 || args[0] != "serve" {
		nodeUsage()
	}
	fs := flag.NewFlagSet("node serve", flag.ExitOnError)
	dir := fs.String("dir", "", "block directory this node serves")
	// Loopback by default: the protocol is unauthenticated, so exposing a
	// node beyond the host is an explicit operator choice (-listen :7001).
	listen := fs.String("listen", "127.0.0.1:7001", "TCP address to listen on")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		return fmt.Errorf("node serve needs -dir")
	}
	be, err := store.NewDirBackend(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := netblock.NewServer(be)
	srv.Logf = log.Printf
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "node: shutting down")
		srv.Close()
	}()
	fmt.Printf("node: serving %s on %s\n", *dir, ln.Addr())
	return srv.Serve(ln)
}
