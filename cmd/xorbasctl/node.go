package main

// The `node` subcommand runs one block-server process: the network
// counterpart of a DataNode. Its storage is a plain DirBackend directory
// (the same layout `store -backend dir` writes), served over the
// netblock TCP protocol, so a store driven with `-backend net` reads and
// writes real sockets while each node keeps shell-inspectable files.
//
//	xorbasctl node serve -dir DIR -listen ADDR
//
// The process serves until SIGINT/SIGTERM, then stops hard (in-flight
// requests are cut, never half-acknowledged — the store's CRC frames and
// crash-safe block writes make that safe).
//
// `node ping` probes every node of a cluster once and prints the
// per-node failure-plane view — what a HealthMonitor over the same
// addresses would see:
//
//	xorbasctl node ping -nodes a:7001,b:7002,...

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/netblock"
	"repro/internal/store"
)

func nodeUsage() {
	fmt.Fprintln(os.Stderr, "usage: xorbasctl node serve -dir DIR -listen ADDR")
	fmt.Fprintln(os.Stderr, "       xorbasctl node ping -nodes ADDR,ADDR,...")
	os.Exit(2)
}

// nodePing dials the listed nodes, probes each a few times, and prints
// liveness plus breaker/window state per node. Exit status 1 when any
// node is down, so scripts can gate on it.
func nodePing(args []string) error {
	fs := flag.NewFlagSet("node ping", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "", "comma-separated node addresses")
	probes := fs.Int("probes", 3, "pings per node")
	timeout := fs.Duration("timeout", 2*time.Second, "per-probe dial timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *nodesFlag == "" {
		return fmt.Errorf("node ping needs -nodes")
	}
	addrs := strings.Split(*nodesFlag, ",")
	c, err := netblock.Dial(addrs, netblock.Options{
		DialTimeout: *timeout,
		Retries:     -1, // each probe is one attempt; the probe loop is the retry policy
	})
	if err != nil {
		return err
	}
	defer c.Close()
	down := 0
	for i := range addrs {
		var lastErr error
		for p := 0; p < *probes; p++ {
			if lastErr = c.Ping(i); lastErr == nil {
				break
			}
		}
		if lastErr != nil {
			down++
		}
	}
	for _, info := range c.NodeHealth() {
		status := "up"
		if info.WindowErrRate > 0 || info.State != "closed" {
			status = "down"
		}
		fmt.Printf("node %2d  %-22s %-4s breaker=%-9s ops=%d errRate=%.2f consecFails=%d p50=%s p99=%s",
			info.Node, addrs[info.Node], status, info.State,
			info.WindowOps, info.WindowErrRate, info.ConsecFails, info.P50, info.P99)
		if info.LastErr != "" {
			fmt.Printf("  lastErr=%q", info.LastErr)
		}
		fmt.Println()
	}
	if down > 0 {
		return fmt.Errorf("%d of %d nodes down", down, len(addrs))
	}
	return nil
}

func nodeMain(args []string) error {
	if len(args) == 0 {
		nodeUsage()
	}
	if args[0] == "ping" {
		return nodePing(args[1:])
	}
	if args[0] != "serve" {
		nodeUsage()
	}
	fs := flag.NewFlagSet("node serve", flag.ExitOnError)
	dir := fs.String("dir", "", "block directory this node serves")
	// Loopback by default: the protocol is unauthenticated, so exposing a
	// node beyond the host is an explicit operator choice (-listen :7001).
	listen := fs.String("listen", "127.0.0.1:7001", "TCP address to listen on")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		return fmt.Errorf("node serve needs -dir")
	}
	be, err := store.NewDirBackend(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := netblock.NewServer(be)
	srv.Logf = log.Printf
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "node: shutting down")
		srv.Close()
	}()
	fmt.Printf("node: serving %s on %s\n", *dir, ln.Addr())
	return srv.Serve(ln)
}
