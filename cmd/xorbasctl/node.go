package main

// The `node` subcommand runs one block-server process: the network
// counterpart of a DataNode. Its storage is a plain DirBackend directory
// (the same layout `store -backend dir` writes), served over the
// netblock TCP protocol, so a store driven with `-backend net` reads and
// writes real sockets while each node keeps shell-inspectable files.
//
//	xorbasctl node serve -dir DIR -listen ADDR
//
// The process serves until SIGINT/SIGTERM, then stops hard (in-flight
// requests are cut, never half-acknowledged — the store's CRC frames and
// crash-safe block writes make that safe).
//
// `node ping` probes every node of a cluster once and prints the
// per-node failure-plane view — what a HealthMonitor over the same
// addresses would see:
//
//	xorbasctl node ping -nodes a:7001,b:7002,...
//
// The membership subcommands drive elastic cluster changes against a
// store directory (same -dir/-backend/-meta flags as `store`):
//
//	xorbasctl node add          -dir DIR [-addr HOST:PORT]
//	xorbasctl node decommission -dir DIR -node N
//	xorbasctl node status       -dir DIR
//	xorbasctl node rebalance    -dir DIR [-workers W] [-rebalance-rate B] [-repair-rate B]
//
// add registers one new node (joining until a rebalance pass fills it;
// -addr is required for the net backend, recorded in the membership
// plane so later opens re-register it); decommission marks a node
// draining — its blocks migrate off on the next rebalance (or are
// rebuilt by repair when the node is already dead), and only when zero
// manifest blocks reference it does it retire to dead. rebalance runs
// synchronous passes until the drain/fill converges, the operator-driven
// counterpart of xorbasd's -rebalance-interval loop.

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/netblock"
	"repro/internal/store"
)

func nodeUsage() {
	fmt.Fprintln(os.Stderr, "usage: xorbasctl node serve -dir DIR -listen ADDR")
	fmt.Fprintln(os.Stderr, "       xorbasctl node ping -nodes ADDR,ADDR,...")
	fmt.Fprintln(os.Stderr, "       xorbasctl node add -dir DIR [-addr HOST:PORT]")
	fmt.Fprintln(os.Stderr, "       xorbasctl node decommission -dir DIR -node N")
	fmt.Fprintln(os.Stderr, "       xorbasctl node status -dir DIR")
	fmt.Fprintln(os.Stderr, "       xorbasctl node rebalance -dir DIR [-workers W] [-rebalance-rate B] [-repair-rate B]")
	os.Exit(2)
}

// nodePing dials the listed nodes, probes each a few times, and prints
// liveness plus breaker/window state per node. Exit status 1 when any
// node is down, so scripts can gate on it.
func nodePing(args []string) error {
	fs := flag.NewFlagSet("node ping", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "", "comma-separated node addresses")
	probes := fs.Int("probes", 3, "pings per node")
	timeout := fs.Duration("timeout", 2*time.Second, "per-probe dial timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *nodesFlag == "" {
		return fmt.Errorf("node ping needs -nodes")
	}
	addrs := strings.Split(*nodesFlag, ",")
	c, err := netblock.Dial(addrs, netblock.Options{
		DialTimeout: *timeout,
		Retries:     -1, // each probe is one attempt; the probe loop is the retry policy
	})
	if err != nil {
		return err
	}
	defer c.Close()
	down := 0
	for i := range addrs {
		var lastErr error
		for p := 0; p < *probes; p++ {
			if lastErr = c.Ping(i); lastErr == nil {
				break
			}
		}
		if lastErr != nil {
			down++
		}
	}
	for _, info := range c.NodeHealth() {
		status := "up"
		if info.WindowErrRate > 0 || info.State != "closed" {
			status = "down"
		}
		fmt.Printf("node %2d  %-22s %-4s breaker=%-9s ops=%d errRate=%.2f consecFails=%d p50=%s p99=%s",
			info.Node, addrs[info.Node], status, info.State,
			info.WindowOps, info.WindowErrRate, info.ConsecFails, info.P50, info.P99)
		if info.LastErr != "" {
			fmt.Printf("  lastErr=%q", info.LastErr)
		}
		fmt.Println()
	}
	if down > 0 {
		return fmt.Errorf("%d of %d nodes down", down, len(addrs))
	}
	return nil
}

// nodeAdd grows the cluster by one member: the store assigns the next
// id, persists the record (joining, addr) in the metadata plane, and a
// NodeAdder backend (netblock) registers the address for the datapath.
func nodeAdd(args []string) error {
	fs := flag.NewFlagSet("node add", flag.ExitOnError)
	sf := cliutil.RegisterStoreFlags(fs)
	addr := fs.String("addr", "", "new node's host:port (net backend; dir backend needs none)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	s, err := sf.Open()
	if err != nil {
		return err
	}
	id, err := s.AddNode(*addr)
	if err != nil {
		s.Close()
		return err
	}
	fmt.Printf("node %d added (joining, epoch %d); run `node rebalance` or let xorbasd's -rebalance-interval fill it\n", id, s.Epoch())
	return cliutil.SaveStore(*sf.Dir, s)
}

// nodeDecommission marks a node draining; its retirement to dead is the
// rebalancer's call, made only once nothing references it.
func nodeDecommission(args []string) error {
	fs := flag.NewFlagSet("node decommission", flag.ExitOnError)
	sf := cliutil.RegisterStoreFlags(fs)
	node := fs.Int("node", -1, "node id to drain")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *node < 0 {
		return fmt.Errorf("node decommission needs -node")
	}
	s, err := sf.Open()
	if err != nil {
		return err
	}
	if err := s.Decommission(*node); err != nil {
		s.Close()
		return err
	}
	ms := s.MembershipStatus()
	fmt.Printf("node %d draining (epoch %d): %d blocks to move; run `node rebalance` to drain now\n",
		*node, s.Epoch(), ms.DrainingBlocks)
	return cliutil.SaveStore(*sf.Dir, s)
}

// nodeStatus prints the membership table and drain/fill progress.
func nodeStatus(args []string) error {
	fs := flag.NewFlagSet("node status", flag.ExitOnError)
	sf := cliutil.RegisterStoreFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	s, err := sf.Open()
	if err != nil {
		return err
	}
	defer s.Close()
	ms := s.MembershipStatus()
	fmt.Printf("epoch %d: %d active / %d joining / %d draining / %d dead\n",
		ms.Epoch, ms.Active, ms.Joining, ms.Draining, ms.Dead)
	if ms.Draining > 0 {
		fmt.Printf("drain backlog: %d blocks\n", ms.DrainingBlocks)
	}
	if ms.RebalancedBlocks > 0 {
		fmt.Printf("migrated so far: %d blocks / %d bytes\n", ms.RebalancedBlocks, ms.RebalancedBytes)
	}
	counts := s.BlocksPerNode()
	for _, m := range s.Members() {
		live := "up"
		if !m.Alive {
			live = "down"
		}
		blocks := 0
		if m.Node < len(counts) {
			blocks = counts[m.Node]
		}
		addr := m.Addr
		if addr == "" {
			addr = "-"
		}
		fmt.Printf("node %2d  %-22s %-8s %-4s blocks=%d epoch=%d\n",
			m.Node, addr, string(m.State), live, blocks, m.Epoch)
	}
	return nil
}

// nodeRebalance runs synchronous rebalance passes until the topology
// converges: drains emptied (live moves or dead-node repairs), joiners
// filled, promotions made.
func nodeRebalance(args []string) error {
	fs := flag.NewFlagSet("node rebalance", flag.ExitOnError)
	sf := cliutil.RegisterStoreFlags(fs)
	workers := fs.Int("workers", 2, "repair worker pool size (dead-drainer rebuilds)")
	rebalRate := fs.Int64("rebalance-rate", 0, "migration read budget in bytes/sec, 0 = unlimited")
	repairRate := fs.Int64("repair-rate", 0, "repair read budget in bytes/sec, 0 = unlimited")
	passes := fs.Int("max-passes", 10, "pass limit before giving up on convergence")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	s, err := sf.OpenRates(cliutil.Rates{Repair: *repairRate, Rebalance: *rebalRate})
	if err != nil {
		return err
	}
	rm := store.NewRepairManager(s, *workers)
	rm.Start()
	rb := store.NewRebalancer(s, rm, 0)
	start := time.Now()
	var total store.RebalanceReport
	converged := false
	for p := 0; p < *passes; p++ {
		rep := rb.RebalanceOnce()
		rm.Drain()
		total.Stripes += rep.Stripes
		total.Moved += rep.Moved
		total.MovedBytes += rep.MovedBytes
		total.Enqueued += rep.Enqueued
		total.Promoted += rep.Promoted
		if rep.Remaining == 0 && rep.Enqueued == 0 {
			converged = true
			break
		}
	}
	rm.Stop()
	elapsed := time.Since(start)
	m := s.Metrics()
	fmt.Printf("rebalance: %d blocks / %d bytes migrated, %d stripes repaired via queue, %d promotions, in %v (%s)\n",
		total.Moved, total.MovedBytes, total.Enqueued, total.Promoted,
		elapsed.Round(time.Millisecond), cliutil.Mbps(total.MovedBytes, elapsed))
	fmt.Printf("reads: rebalance %d blocks / %d bytes, repair %d blocks / %d bytes (%d light / %d heavy)\n",
		m.RebalanceBlocksRead, m.RebalanceBytesRead,
		m.RepairBlocksRead, m.RepairBytesRead, m.RepairsLight, m.RepairsHeavy)
	fmt.Print(cliutil.WireLine(m))
	if !converged {
		fmt.Println("warning: topology not converged; rerun (dead drainers need live survivors to rebuild from)")
	}
	return cliutil.SaveStore(*sf.Dir, s)
}

func nodeMain(args []string) error {
	if len(args) == 0 {
		nodeUsage()
	}
	switch args[0] {
	case "ping":
		return nodePing(args[1:])
	case "add":
		return nodeAdd(args[1:])
	case "decommission":
		return nodeDecommission(args[1:])
	case "status":
		return nodeStatus(args[1:])
	case "rebalance":
		return nodeRebalance(args[1:])
	}
	if args[0] != "serve" {
		nodeUsage()
	}
	fs := flag.NewFlagSet("node serve", flag.ExitOnError)
	dir := fs.String("dir", "", "block directory this node serves")
	// Loopback by default: the protocol is unauthenticated, so exposing a
	// node beyond the host is an explicit operator choice (-listen :7001).
	listen := fs.String("listen", "127.0.0.1:7001", "TCP address to listen on")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		return fmt.Errorf("node serve needs -dir")
	}
	be, err := store.NewDirBackend(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := netblock.NewServer(be)
	srv.Logf = log.Printf
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "node: shutting down")
		srv.Close()
	}()
	fmt.Printf("node: serving %s on %s\n", *dir, ln.Addr())
	return srv.Serve(ln)
}
