// Command mttdl computes the paper's Table 1: MTTDL under the Section 4
// Markov model for 3-replication, RS(10,4) and LRC(10,6,5).
//
// Usage:
//
//	mttdl [-mttf years] [-block bytes] [-gbps n] [-data bytes] [-calibrated]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/markov"
)

func main() {
	mttf := flag.Float64("mttf", 4, "node mean time to failure in years")
	block := flag.Float64("block", 256<<20, "block size in bytes")
	gbps := flag.Float64("gbps", 1, "cross-rack repair bandwidth in Gb/s")
	data := flag.Float64("data", 30e15, "total cluster data in bytes")
	calibrated := flag.Bool("calibrated", false, "fit the per-stream overhead on the paper's RS row")
	flag.Parse()

	p := markov.Params{
		NodeMTTFYears:       *mttf,
		BlockBytes:          *block,
		BandwidthBitsPerSec: *gbps * 1e9,
		TotalDataBytes:      *data,
		ParallelRepairs:     true,
	}
	if *calibrated {
		p.PerStreamOverheadSec = markov.CalibrateOverhead(core.NewRS104(), p, 3.3118e13)
		fmt.Printf("calibrated per-stream overhead: %.2f s\n", p.PerStreamOverheadSec)
	}
	rows, err := markov.Table1(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mttdl:", err)
		os.Exit(1)
	}
	if ch, err := markov.BuildChain(core.NewXorbas(), p); err == nil {
		fmt.Print(ch.Describe()) // Fig 3 for the LRC chain
	}
	fmt.Printf("%-16s %-16s %-14s %s\n", "Scheme", "Storage overhead", "Repair traffic", "MTTDL (days)")
	for _, r := range rows {
		fmt.Printf("%-16s %-16s %-14s %.4E\n", r.Scheme,
			fmt.Sprintf("%.1fx", r.StorageOverhead), fmt.Sprintf("%.1fx", r.RepairTraffic), r.MTTDLDays)
	}
	fmt.Println("paper Table 1: 2.3079E+10 | 3.3118E+13 | 1.2180E+15")

	// §4's availability discussion: fraction of a stripe's lifetime spent
	// with at least one block missing (degraded reads).
	fmt.Printf("\n%-16s %-22s %s\n", "Scheme", "Degraded-time fraction", "Nines")
	rep, err := core.NewReplication(3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mttdl:", err)
		os.Exit(1)
	}
	for _, s := range []core.Scheme{rep, core.NewRS104(), core.NewXorbas()} {
		a, err := markov.Availability(s, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mttdl:", err)
			os.Exit(1)
		}
		fmt.Printf("%-16s %-22.3E %.2f\n", a.Scheme, a.DegradedFraction, a.Nines)
	}
}
