// Command clustersim runs the paper's cluster experiments (Section 5) on
// the simulated substrate and prints the corresponding tables/figures.
//
// Usage:
//
//	clustersim -exp fig4|fig5|fig6|table2|table3|all [-files n]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4, fig5, fig6, table2, table3, all")
	files := flag.Int("files", 200, "files for the EC2 experiments")
	flag.Parse()

	if err := run(*exp, *files); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

func run(exp string, files int) error {
	w := os.Stdout
	wantAll := exp == "all"
	ran := false
	if wantAll || exp == "fig4" || exp == "fig5" {
		cfg := experiments.DefaultEC2(files)
		rs, err := experiments.RunEC2(core.NewRS104(), cfg)
		if err != nil {
			return err
		}
		xo, err := experiments.RunEC2(core.NewXorbas(), cfg)
		if err != nil {
			return err
		}
		if wantAll || exp == "fig4" {
			experiments.Fig4(w, rs, xo)
			ran = true
		}
		if wantAll || exp == "fig5" {
			experiments.Fig5(w, rs, xo)
			ran = true
		}
	}
	if wantAll || exp == "fig6" {
		base := experiments.DefaultEC2(0)
		sizes := []int{50, 100, 200}
		rs, err := experiments.RunFig6(core.NewRS104(), sizes, base)
		if err != nil {
			return err
		}
		xo, err := experiments.RunFig6(core.NewXorbas(), sizes, base)
		if err != nil {
			return err
		}
		experiments.Fig6(w, rs, xo)
		ran = true
	}
	if wantAll || exp == "table2" || exp == "fig7" {
		cfg := experiments.DefaultWorkload()
		base, err := experiments.RunWorkload(core.NewRS104(), false, cfg)
		if err != nil {
			return err
		}
		rs, err := experiments.RunWorkload(core.NewRS104(), true, cfg)
		if err != nil {
			return err
		}
		xo, err := experiments.RunWorkload(core.NewXorbas(), true, cfg)
		if err != nil {
			return err
		}
		experiments.Fig7Table2(w, base, rs, xo)
		ran = true
	}
	if wantAll || exp == "trace" {
		cfg := experiments.DefaultTraceDriven()
		for _, s := range []core.Scheme{core.NewRS104(), core.NewXorbas()} {
			r, err := experiments.RunTraceDriven(s, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Trace month %-16s: %3d node failures, %4d repairs (%d light/%d heavy), %.1f GB repair reads, %d blocks lost\n",
				r.Scheme, r.NodesFailed, r.BlocksRepaired, r.LightRepairs, r.HeavyRepairs, r.RepairTrafficGB, r.DataLossBlocks)
		}
		ran = true
	}
	if wantAll || exp == "table3" {
		cfg := experiments.DefaultFacebook()
		rs, err := experiments.RunFacebook(core.NewRS104(), cfg)
		if err != nil {
			return err
		}
		xo, err := experiments.RunFacebook(core.NewXorbas(), cfg)
		if err != nil {
			return err
		}
		experiments.Table3(w, rs, xo)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
