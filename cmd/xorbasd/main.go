// Command xorbasd serves a store over HTTP: an S3-flavored object
// gateway (PUT/GET/HEAD/DELETE, prefix lists, ranged reads, multipart
// uploads) in front of the LRC/RS erasure-coded store.
//
//	xorbasd -dir /tmp/demo
//	curl -T report.pdf http://127.0.0.1:8080/t/acme/reports/q3.pdf
//	curl -r 0-1023    http://127.0.0.1:8080/t/acme/reports/q3.pdf
//
// It binds to loopback unless told otherwise; exposing it beyond the
// host is an explicit -listen choice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/gateway"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xorbasd:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("xorbasd", flag.ExitOnError)
	sf := cliutil.RegisterStoreFlags(fs)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address (loopback by default; bind wider deliberately)")
	racks := fs.Int("racks", 8, "racks, rack = node mod racks (store creation only)")
	blockSize := fs.Int("block", 64<<10, "max data-block bytes (store creation only)")
	rate := fs.Int64("tenant-rate", 0, "per-tenant byte budget per second across puts and gets; over budget = 429 (0 = unlimited)")
	inflight := fs.Int64("tenant-inflight", 0, "per-tenant concurrent request cap; over cap = 429 (0 = unlimited)")
	repairRate := fs.Int64("repair-rate", 0, "repair read budget, bytes/sec (0 = unlimited)")
	scrubRate := fs.Int64("scrub-rate", 0, "scrub read budget, bytes/sec (0 = unlimited)")
	rebalRate := fs.Int64("rebalance-rate", 0, "rebalance migration read budget, bytes/sec; foreground gets are never paced (0 = unlimited)")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "hot-block read cache capacity in bytes: repeat reads of hot objects skip the backend; hit rate on /metrics (0 = no cache)")
	scrubEvery := fs.Duration("scrub-interval", 0, "background integrity-walk period (0 = no background scrub)")
	rebalEvery := fs.Duration("rebalance-interval", 0, "background rebalance pass period; moves blocks onto joiners and off drainers (0 = no background rebalance)")
	healthEvery := fs.Duration("health-interval", 0, "node health probe period; probing backends get auto dead/alive + auto-repair (0 = off)")
	failK := fs.Int("health-fail-threshold", 3, "consecutive missed probes that confirm a node death")
	reviveK := fs.Int("health-revive-threshold", 2, "consecutive answered probes that confirm a revival")
	tokens := map[string]string{}
	fs.Func("token", "tenant=secret bearer token, repeatable; tenants without one are open", func(v string) error {
		tenant, secret, ok := strings.Cut(v, "=")
		if !ok || tenant == "" || secret == "" {
			return fmt.Errorf("-token wants tenant=secret, got %q", v)
		}
		tokens[tenant] = secret
		return nil
	})
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *sf.Dir == "" {
		return fmt.Errorf("need -dir")
	}

	rates := cliutil.Rates{Repair: *repairRate, Scrub: *scrubRate, Rebalance: *rebalRate, CacheBytes: *cacheBytes}
	s, err := sf.OpenOrCreateRates(*racks, *blockSize, rates)
	if err != nil {
		return err
	}

	// The self-healing plane: repair workers drain whatever scrubs (or
	// the monitor) enqueue; the monitor turns backend probes into
	// liveness flips and repair work; the rebalancer moves blocks to
	// match membership changes. All optional — a store without
	// -health-interval behaves exactly as before, operator-driven.
	rm := store.NewRepairManager(s, 0)
	rm.Start()
	defer rm.Stop()
	sc := store.NewScrubber(s, rm, *scrubEvery)
	if *scrubEvery > 0 {
		sc.Start()
		defer sc.Stop()
	}
	reb := store.NewRebalancer(s, rm, *rebalEvery)
	if *rebalEvery > 0 {
		reb.Start()
		defer reb.Stop()
	}
	var mon *store.HealthMonitor
	if *healthEvery > 0 {
		mon = store.NewHealthMonitor(s, rm, sc, store.MonitorConfig{
			Interval:        *healthEvery,
			FailThreshold:   *failK,
			ReviveThreshold: *reviveK,
		})
		mon.Start()
		defer mon.Stop()
	}

	g, err := gateway.New(gateway.Config{
		Store:       s,
		Tokens:      tokens,
		BytesPerSec: *rate,
		MaxInflight: *inflight,
	})
	if err != nil {
		return err
	}

	// The drain gate makes shutdown graceful for clients on keep-alive
	// connections: once the flag flips, new requests are refused with a
	// 503 and a Retry-After hint while in-flight ones run to completion
	// under srv.Shutdown.
	var draining atomic.Bool
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		g.ServeHTTP(w, r)
	})

	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("xorbasd: serving %s (%s, %d nodes) on http://%s", *sf.Dir, s.Codec().Name(), s.Nodes(), *listen)

	select {
	case err := <-errc:
		// ListenAndServe never returns nil; the store is still consistent
		// (acked writes are in the plane), so just report the bind error.
		return err
	case <-ctx.Done():
	}

	log.Printf("xorbasd: shutting down: refusing new requests, draining in-flight")
	draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("xorbasd: shutdown: %v", err)
	}
	// Stop the background planes before the final save: SaveStore closes
	// the store and checkpoints the metadata plane, and a repair, scrub
	// or migration still in flight would race that close. The deferred
	// Stops become no-ops.
	if mon != nil {
		mon.Stop()
	}
	reb.Stop()
	sc.Stop()
	rm.Stop()
	log.Printf("xorbasd: checkpointing store")
	return cliutil.SaveStore(*sf.Dir, s)
}
