package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/cliutil"
)

// The daemon's graceful-shutdown test re-execs the test binary as a real
// xorbasd process (TestMain routes on the env marker), so the SIGTERM
// path under test is the production one: signal.NotifyContext, the
// drain gate, srv.Shutdown, and the final checkpointing save.

const (
	sigtermChildDirEnv  = "XORBASD_SIGTERM_CHILD_DIR"
	sigtermChildAddrEnv = "XORBASD_SIGTERM_CHILD_ADDR"
)

func TestMain(m *testing.M) {
	if dir := os.Getenv(sigtermChildDirEnv); dir != "" {
		err := run([]string{
			"-dir", dir,
			"-listen", os.Getenv(sigtermChildAddrEnv),
			"-nodes", "20", "-racks", "8", "-block", "4096",
			"-meta", filepath.Join(dir, "meta"),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xorbasd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// drippingReader hands out its payload in small timed sips, holding an
// upload in flight long enough for the parent to shut the server down
// around it. started closes on the first Read, signalling the request
// reached the server.
type drippingReader struct {
	data    []byte
	off     int
	chunk   int
	delay   time.Duration
	started chan struct{}
	once    bool
}

func (d *drippingReader) Read(p []byte) (int, error) {
	if !d.once {
		d.once = true
		close(d.started)
	}
	if d.off >= len(d.data) {
		return 0, io.EOF
	}
	time.Sleep(d.delay)
	n := d.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(d.data)-d.off {
		n = len(d.data) - d.off
	}
	copy(p, d.data[d.off:d.off+n])
	d.off += n
	return n, nil
}

func testPayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + n)
	}
	return b
}

// TestGracefulSigterm: SIGTERM must drain the in-flight upload to a
// successful completion, answer new requests 503 with a Retry-After
// hint, exit 0, and leave a store that reopens with every acked byte.
func TestGracefulSigterm(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		sigtermChildDirEnv+"="+dir,
		sigtermChildAddrEnv+"="+addr,
	)
	var childLog bytes.Buffer
	cmd.Stderr = &childLog
	cmd.Stdout = &childLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUp(t, base, &childLog)

	// A fully acked object before the signal: it must survive.
	warm := testPayload(8192)
	putObject(t, base+"/t/acme/warm.bin", bytes.NewReader(warm))

	// An upload still dripping when SIGTERM lands: the drain must let it
	// finish. ~4s of body at 100ms per sip.
	slow := testPayload(10240)
	dr := &drippingReader{data: slow, chunk: 256, delay: 100 * time.Millisecond, started: make(chan struct{})}
	slowDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPut, base+"/t/acme/slow.bin", dr)
		if err != nil {
			slowDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			slowDone <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			slowDone <- fmt.Errorf("slow put: status %d", resp.StatusCode)
			return
		}
		slowDone <- nil
	}()
	<-dr.started
	// started fires when the transport begins sending, not when the
	// handler is dispatched; give the server a beat to pass the drain
	// gate before the flag flips, or the upload races the 503. The body
	// still has seconds of dripping left.
	time.Sleep(500 * time.Millisecond)

	// Stage the drain-gate probe before the signal: a connection with a
	// partially sent request is active, so Shutdown neither kills it nor
	// finishes before it's answered. The final CRLF goes out only after
	// shutdown provably started.
	probe, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if _, err := io.WriteString(probe, "GET /healthz HTTP/1.1\r\nHost: xorbasd\r\n"); err != nil {
		t.Fatal(err)
	}
	// Let the accept loop pick the probe up: a socket still in the
	// kernel's accept queue when Shutdown closes the listener is reset,
	// not served.
	time.Sleep(250 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Listeners close at the head of srv.Shutdown, after the drain flag
	// flips — a refused fresh dial proves the gate is up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatalf("listener still accepting 10s after SIGTERM\nchild log:\n%s", childLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	if _, err := io.WriteString(probe, "\r\n"); err != nil {
		t.Fatalf("completing probe request: %v", err)
	}
	probe.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(probe), nil)
	if err != nil {
		t.Fatalf("reading probe response: %v\nchild log:\n%s", err, childLog.String())
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain gate answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain has no Retry-After hint")
	}

	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight upload was not drained: %v\nchild log:\n%s", err, childLog.String())
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("child exited dirty: %v\nchild log:\n%s", err, childLog.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("child did not exit within 30s of SIGTERM\nchild log:\n%s", childLog.String())
	}

	// The checkpointed store reopens with both objects byte-exact.
	spec := cliutil.BackendSpec{Kind: "dir", Count: 20}
	s, err := cliutil.OpenStore(dir, spec, cliutil.ResolveMetaDir(dir, ""))
	if err != nil {
		t.Fatalf("reopening store after shutdown: %v", err)
	}
	defer s.Close()
	for name, want := range map[string][]byte{"acme/warm.bin": warm, "acme/slow.bin": slow} {
		got, _, err := s.Get(name)
		if err != nil {
			t.Fatalf("get %s after restart: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted across shutdown", name)
		}
	}
}

func waitUp(t *testing.T, base string, childLog *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("child never came up\nchild log:\n%s", childLog.String())
}

func putObject(t *testing.T, url string, body io.Reader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("PUT %s: status %d", url, resp.StatusCode)
	}
}
