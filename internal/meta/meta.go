// Package meta is the store's persistent metadata plane: a durable
// key→value store built from a write-ahead log with group-committed
// batches, periodic checkpoints, and N hash-sharded in-memory indexes.
// It holds what must survive a crash but never the data bytes themselves
// — manifests, liveness, the repair queue — the separation that lets the
// metadata and storage planes scale independently.
//
// The write path is ack-means-durable: Commit returns only after the
// batch's WAL record is fsynced (concurrent commits share one fsync via
// group commit). The read path never touches the log: Get/View/Scan run
// against the sharded in-memory index under per-shard read locks, so
// lookups, scans and commits on different shards do not contend.
//
// Values are decoded once at write/replay time and handed out by
// reference, so they MUST be treated as immutable once stored. Mutations
// go through a Commit that stores a replacement value (copy-on-write);
// in exchange, Scan and View can hand out snapshots without deep copies.
package meta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrClosed reports a commit against a DB that has already been closed.
// Callers race shutdown against in-flight work; errors.Is(err, ErrClosed)
// lets them treat the loss as orderly teardown rather than corruption.
var ErrClosed = errors.New("meta: DB closed")

// Codec translates stored values to and from their durable byte form.
// The key is passed so one DB can hold differently-typed records under
// different key prefixes (the store keeps manifests, liveness and repair
// queue entries in one plane).
type Codec interface {
	Encode(key string, v any) ([]byte, error)
	Decode(key string, b []byte) (any, error)
}

// RawCodec stores values as raw []byte — the default when no codec is
// given.
type RawCodec struct{}

// Encode implements Codec; v must be a []byte.
func (RawCodec) Encode(key string, v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("meta: RawCodec got %T, want []byte", v)
	}
	return b, nil
}

// Decode implements Codec, returning a copy of b (replay buffers are
// reused).
func (RawCodec) Decode(key string, b []byte) (any, error) {
	return append([]byte(nil), b...), nil
}

// Options configures a DB. Zero fields take defaults.
type Options struct {
	// Dir roots the durable state (WAL segment + checkpoint). "" keeps
	// the plane in memory only: same API and sharding, no durability —
	// the mode tests and in-memory stores run in.
	Dir string
	// Shards is the in-memory index shard count (default 16). More
	// shards means less lock contention between commits, lookups and
	// scans touching different keys.
	Shards int
	// Codec encodes and decodes stored values (default RawCodec).
	Codec Codec
	// CheckpointEvery triggers an automatic checkpoint after that many
	// WAL records (default 1<<14; <0 disables automatic checkpoints).
	// Checkpoints bound both the WAL's size and replay time at open.
	CheckpointEvery int
}

func (o *Options) fillDefaults() {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Codec == nil {
		o.Codec = RawCodec{}
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1 << 14
	}
}

// shard is one slice of the in-memory index.
type shard struct {
	mu sync.RWMutex
	m  map[string]any
}

// DB is a durable, sharded key→value store. All methods are safe for
// concurrent use.
type DB struct {
	opts   Options
	shards []shard

	// commitMu serializes writers through stage→apply→WAL-append, so
	// the in-memory apply order always matches the log order (replay
	// must converge to the same state). It is NOT held across the fsync:
	// that wait is grouped in the WAL so concurrent commits share it.
	commitMu sync.Mutex
	wal      *walFile // nil for a memory-only plane
	// records counts WAL records since the last checkpoint (commitMu).
	records int
	closed  bool

	m counters
}

// counters is the internal atomic counter block (exported snapshot is
// Metrics).
type counters struct {
	walBytes      atomic.Int64
	commitBatches atomic.Int64
	commitRecords atomic.Int64
	replayed      atomic.Int64
	scans         atomic.Int64
	checkpoints   atomic.Int64
}

// Metrics is a point-in-time copy of the DB's counters.
type Metrics struct {
	// WALBytes is the cumulative bytes appended to the WAL (headers
	// included).
	WALBytes int64
	// CommitBatches counts fsync groups: concurrent commits that shared
	// one fsync count as one batch.
	CommitBatches int64
	// CommitRecords counts committed WAL records (one per Commit).
	CommitRecords int64
	// ReplayedRecords counts WAL records replayed at Open (checkpoint
	// entries not included).
	ReplayedRecords int64
	// IteratorScans counts Scan calls.
	IteratorScans int64
	// Checkpoints counts checkpoints written (Close's final one
	// included).
	Checkpoints int64
}

// Metrics returns a snapshot of the DB's counters.
func (db *DB) Metrics() Metrics {
	return Metrics{
		WALBytes:        db.m.walBytes.Load(),
		CommitBatches:   db.m.commitBatches.Load(),
		CommitRecords:   db.m.commitRecords.Load(),
		ReplayedRecords: db.m.replayed.Load(),
		IteratorScans:   db.m.scans.Load(),
		Checkpoints:     db.m.checkpoints.Load(),
	}
}

// Open opens (or creates) a metadata plane. With a Dir, recovery runs
// before Open returns: the checkpoint is loaded, then the WAL is
// replayed in order — tolerating a torn tail record from a crash
// mid-commit (never-acked, safely dropped) but failing loudly on
// corruption in the middle of the log.
func Open(opts Options) (*DB, error) {
	opts.fillDefaults()
	db := &DB{opts: opts, shards: make([]shard, opts.Shards)}
	for i := range db.shards {
		db.shards[i].m = make(map[string]any)
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

// shardOf hashes a key to its index shard (FNV-1a).
func (db *DB) shardOf(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &db.shards[h%uint32(len(db.shards))]
}

// Get returns the value stored under key. The value is shared, not
// copied: treat it as immutable (see the package comment).
func (db *DB) Get(key string) (any, bool) {
	sh := db.shardOf(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// View runs fn with the value under key while holding the shard's read
// lock, so fn observes a state no concurrent Commit has partially
// applied to that key — the hook the store uses to pin an object version
// atomically with its lookup. fn must be fast and must not call back
// into the DB.
func (db *DB) View(key string, fn func(v any, ok bool)) {
	sh := db.shardOf(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	fn(v, ok)
	sh.mu.RUnlock()
}

// Len counts keys with the given prefix ("" counts everything).
func (db *DB) Len(prefix string) int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		if prefix == "" {
			n += len(sh.m)
		} else {
			for k := range sh.m {
				if hasPrefix(k, prefix) {
					n++
				}
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Entry is one key/value pair yielded by an Iterator.
type Entry struct {
	Key string
	Val any
}

// Iterator is a prefix scan over the DB, shard by shard. Each shard's
// matching entries are captured atomically under its read lock when the
// scan reaches it, so every key present for the whole scan is yielded
// exactly once and peak extra memory is one shard's entries, not the
// whole table — the property that lets a scrub walk billions of entries
// the full-map copy never could. Keys are sorted within a shard but not
// across shards. Values are shared (immutable by the package contract).
// Not safe for concurrent use by multiple goroutines.
type Iterator struct {
	db     *DB
	prefix string
	shard  int
	cur    []Entry
	i      int
}

// Scan starts a prefix scan ("" scans everything).
func (db *DB) Scan(prefix string) *Iterator {
	db.m.scans.Add(1)
	return &Iterator{db: db, prefix: prefix}
}

// Next returns the next entry, ok=false at the end.
func (it *Iterator) Next() (key string, val any, ok bool) {
	for it.i >= len(it.cur) {
		if it.shard >= len(it.db.shards) {
			return "", nil, false
		}
		it.cur = it.db.snapshotShard(it.shard, it.prefix)
		it.i = 0
		it.shard++
	}
	e := it.cur[it.i]
	it.i++
	return e.Key, e.Val, true
}

// snapshotShard captures one shard's matching entries under its read
// lock, sorted by key.
func (db *DB) snapshotShard(i int, prefix string) []Entry {
	sh := &db.shards[i]
	sh.mu.RLock()
	out := make([]Entry, 0, len(sh.m))
	for k, v := range sh.m {
		if hasPrefix(k, prefix) {
			out = append(out, Entry{Key: k, Val: v})
		}
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// txOp is one staged operation of a Tx.
type txOp struct {
	del bool
	key string
	val any
	enc []byte
}

// Tx stages one atomic batch of puts and deletes. It is valid only
// inside the Commit callback that created it.
type Tx struct {
	db  *DB
	ops []txOp
	err error
}

// Get reads the committed state (staged ops of this Tx are not visible).
// Writers are serialized, so the value cannot change before this Tx
// applies.
func (tx *Tx) Get(key string) (any, bool) { return tx.db.Get(key) }

// Put stages key→v. v must already be in its final, never-again-mutated
// form (copy-on-write: stage a replacement, don't edit the stored one).
func (tx *Tx) Put(key string, v any) {
	if tx.err != nil {
		return
	}
	enc, err := tx.db.opts.Codec.Encode(key, v)
	if err != nil {
		tx.err = fmt.Errorf("meta: encode %q: %w", key, err)
		return
	}
	tx.ops = append(tx.ops, txOp{key: key, val: v, enc: enc})
}

// Delete stages the removal of key, returning the value it currently
// holds (committed state).
func (tx *Tx) Delete(key string) (prev any, ok bool) {
	prev, ok = tx.db.Get(key)
	if tx.err == nil {
		tx.ops = append(tx.ops, txOp{del: true, key: key})
	}
	return prev, ok
}

// Commit runs fn to stage a batch, applies it to the index, appends it
// to the WAL as one record and returns once that record is durable
// (group-committed: concurrent commits share one fsync). An error from
// staging applies nothing; an error from the WAL is sticky — the log
// can no longer be trusted to match memory, so every later commit fails
// too (callers should treat the plane as down and restart).
//
// fn runs under the commit lock: stage and return, no IO, no calls back
// into Commit.
func (db *DB) Commit(fn func(tx *Tx)) error {
	return db.commit(fn, true)
}

// CommitNoSync is Commit without the durability wait: the record is
// ordered into the WAL buffer but the fsync is left to the next syncing
// commit, checkpoint or close. A crash can lose it — only for records
// that are advisory and rediscoverable (the store's repair queue: a
// lost entry is re-found by the next scrub).
func (db *DB) CommitNoSync(fn func(tx *Tx)) error {
	return db.commit(fn, false)
}

func (db *DB) commit(fn func(tx *Tx), sync bool) error {
	tx := &Tx{db: db}
	db.commitMu.Lock()
	if db.closed {
		db.commitMu.Unlock()
		return fmt.Errorf("%w: commit", ErrClosed)
	}
	fn(tx)
	if tx.err != nil {
		db.commitMu.Unlock()
		return tx.err
	}
	if len(tx.ops) == 0 {
		db.commitMu.Unlock()
		return nil
	}
	for i := range tx.ops {
		op := &tx.ops[i]
		sh := db.shardOf(op.key)
		sh.mu.Lock()
		if op.del {
			delete(sh.m, op.key)
		} else {
			sh.m[op.key] = op.val
		}
		sh.mu.Unlock()
	}
	var g *flushGroup
	needCp := false
	if db.wal != nil {
		rec := encodeRecord(tx.ops)
		g = db.wal.enqueue(rec)
		db.m.walBytes.Add(int64(len(rec)))
		db.m.commitRecords.Add(1)
		db.records++
		needCp = db.opts.CheckpointEvery > 0 && db.records >= db.opts.CheckpointEvery
	}
	db.commitMu.Unlock()
	if g != nil && sync {
		if err := db.wal.wait(g); err != nil {
			return err
		}
	}
	if needCp {
		// Best-effort: a failed checkpoint leaves a longer WAL, not a
		// broken plane (the committed record above is already durable).
		_ = db.Checkpoint()
	}
	return nil
}

// Put commits a single key→v write.
func (db *DB) Put(key string, v any) error {
	return db.Commit(func(tx *Tx) { tx.Put(key, v) })
}

// Delete commits a single removal, returning the value it removed.
func (db *DB) Delete(key string) (prev any, err error) {
	err = db.Commit(func(tx *Tx) { prev, _ = tx.Delete(key) })
	return prev, err
}

// Close checkpoints (so the next Open replays nothing) and releases the
// WAL. Idempotent; a memory-only plane just marks itself closed.
func (db *DB) Close() error {
	err := db.Checkpoint()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		if cerr := db.wal.close(); err == nil {
			err = cerr
		}
	}
	return err
}
