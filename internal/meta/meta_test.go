package meta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
)

// openRaw opens a raw-codec DB rooted at dir ("" = memory-only).
func openRaw(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	opts.Dir = dir
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustPut(t *testing.T, db *DB, key, val string) {
	t.Helper()
	if err := db.Put(key, []byte(val)); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, db *DB, key string) (string, bool) {
	t.Helper()
	v, ok := db.Get(key)
	if !ok {
		return "", false
	}
	return string(v.([]byte)), true
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		db := openRaw(t, dir, Options{Shards: 4})
		mustPut(t, db, "a", "1")
		mustPut(t, db, "b", "2")
		if v, ok := get(t, db, "a"); !ok || v != "1" {
			t.Fatalf("dir=%q: Get a = %q, %v", dir, v, ok)
		}
		mustPut(t, db, "a", "3")
		if v, _ := get(t, db, "a"); v != "3" {
			t.Fatalf("dir=%q: overwrite lost: %q", dir, v)
		}
		prev, err := db.Delete("a")
		if err != nil || string(prev.([]byte)) != "3" {
			t.Fatalf("dir=%q: Delete prev = %v, err %v", dir, prev, err)
		}
		if _, ok := db.Get("a"); ok {
			t.Fatalf("dir=%q: deleted key still present", dir)
		}
		if n := db.Len(""); n != 1 {
			t.Fatalf("dir=%q: Len = %d, want 1", dir, n)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "k1", "v1")
	mustPut(t, db, "k2", "v2")
	if _, err := db.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	// No Close: reopen replays the WAL alone (crash-style recovery).
	db2 := openRaw(t, dir, Options{})
	if _, ok := db2.Get("k1"); ok {
		t.Fatal("deleted key resurrected by replay")
	}
	if v, _ := get(t, db2, "k2"); v != "v2" {
		t.Fatalf("replayed k2 = %q", v)
	}
	if db2.Metrics().ReplayedRecords != 3 {
		t.Fatalf("replayed %d records, want 3", db2.Metrics().ReplayedRecords)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean close checkpointed: the third open replays nothing.
	db3 := openRaw(t, dir, Options{})
	if got := db3.Metrics().ReplayedRecords; got != 0 {
		t.Fatalf("replayed %d records after clean close, want 0", got)
	}
	if v, _ := get(t, db3, "k2"); v != "v2" {
		t.Fatalf("checkpointed k2 = %q", v)
	}
}

func TestBatchAtomicityAndTxSemantics(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "old", "x")
	err := db.Commit(func(tx *Tx) {
		tx.Put("n1", []byte("1"))
		if _, ok := tx.Get("n1"); ok {
			t.Error("Tx.Get saw a staged, uncommitted op")
		}
		prev, ok := tx.Delete("old")
		if !ok || string(prev.([]byte)) != "x" {
			t.Errorf("Tx.Delete prev = %v, %v", prev, ok)
		}
		tx.Put("n2", []byte("2"))
	})
	if err != nil {
		t.Fatal(err)
	}
	db2 := openRaw(t, dir, Options{})
	if _, ok := db2.Get("old"); ok {
		t.Fatal("batched delete lost")
	}
	if v, _ := get(t, db2, "n2"); v != "2" {
		t.Fatal("batched put lost")
	}
	// One Commit = one WAL record, however many ops it staged.
	if got := db2.Metrics().ReplayedRecords; got != 2 {
		t.Fatalf("replayed %d records, want 2", got)
	}
}

func TestEncodeErrorAppliesNothing(t *testing.T) {
	db := openRaw(t, t.TempDir(), Options{})
	err := db.Commit(func(tx *Tx) {
		tx.Put("good", []byte("1"))
		tx.Put("bad", 42) // RawCodec rejects non-[]byte
	})
	if err == nil {
		t.Fatal("Commit swallowed an encode error")
	}
	if _, ok := db.Get("good"); ok {
		t.Fatal("failed batch partially applied")
	}
}

func TestScanPrefixSnapshot(t *testing.T) {
	db := openRaw(t, "", Options{Shards: 3})
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("o/%03d", i)
		mustPut(t, db, k, k)
		want[k] = k
	}
	mustPut(t, db, "q/0", "noise")
	var got []string
	it := db.Scan("o/")
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		if string(v.([]byte)) != want[k] {
			t.Fatalf("scan %q = %q", k, v)
		}
		got = append(got, k)
	}
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d keys, want %d", len(got), len(want))
	}
	sort.Strings(got)
	for i, k := range got {
		if k != fmt.Sprintf("o/%03d", i) {
			t.Fatalf("scan missed or duplicated keys around %q", k)
		}
	}
	if db.Metrics().IteratorScans != 1 {
		t.Fatalf("IteratorScans = %d", db.Metrics().IteratorScans)
	}
	if n := db.Len("o/"); n != 100 {
		t.Fatalf("Len(o/) = %d", n)
	}
}

// TestScanDuringWrites checks the snapshot guarantee under concurrent
// commits: keys present for the whole scan appear exactly once.
func TestScanDuringWrites(t *testing.T) {
	db := openRaw(t, "", Options{Shards: 8})
	for i := 0; i < 500; i++ {
		mustPut(t, db, fmt.Sprintf("stable/%04d", i), "v")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("churn/%04d", i%100)
			_ = db.Put(k, []byte("x"))
			_, _ = db.Delete(k)
		}
	}()
	for round := 0; round < 20; round++ {
		seen := map[string]int{}
		it := db.Scan("stable/")
		for {
			k, _, ok := it.Next()
			if !ok {
				break
			}
			seen[k]++
		}
		if len(seen) != 500 {
			t.Fatalf("round %d: scan saw %d stable keys, want 500", round, len(seen))
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("round %d: %q yielded %d times", round, k, n)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := fmt.Sprintf("w%d/%04d", w, i)
				if err := db.Put(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := db.Metrics()
	if m.CommitRecords != writers*each {
		t.Fatalf("CommitRecords = %d, want %d", m.CommitRecords, writers*each)
	}
	if m.CommitBatches > m.CommitRecords {
		t.Fatalf("more fsync batches (%d) than records (%d)", m.CommitBatches, m.CommitRecords)
	}
	db2 := openRaw(t, dir, Options{})
	if n := db2.Len(""); n != writers*each {
		t.Fatalf("replay recovered %d keys, want %d", n, writers*each)
	}
}

// --- crash semantics ---

// TestTornTailRecordDropped simulates a crash mid-record: the tail is
// cut at every possible byte boundary and recovery must keep everything
// acked before it.
func TestTornTailRecordDropped(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "a", "111")
	mustPut(t, db, "b", "222")
	mustPut(t, db, "c", "333")
	// Leave the WAL as-is (no Close): find the last record's start.
	raw, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off < int64(len(raw)) {
		offs = append(offs, off)
		off += 8 + int64(binary.LittleEndian.Uint32(raw[off:]))
	}
	last := offs[len(offs)-1]
	for cut := last + 1; cut < int64(len(raw)); cut++ {
		d2 := t.TempDir()
		if err := os.WriteFile(walPath(d2), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2 := openRaw(t, d2, Options{})
		if v, _ := get(t, db2, "a"); v != "111" {
			t.Fatalf("cut %d: lost a", cut)
		}
		if v, _ := get(t, db2, "b"); v != "222" {
			t.Fatalf("cut %d: lost b", cut)
		}
		if _, ok := db2.Get("c"); ok {
			t.Fatalf("cut %d: torn record half-applied", cut)
		}
		// The torn bytes were truncated away; appending after recovery
		// must yield a clean log.
		mustPut(t, db2, "d", "444")
		db3 := openRaw(t, d2, Options{})
		if v, _ := get(t, db3, "d"); v != "444" {
			t.Fatalf("cut %d: append after torn-tail truncation lost d", cut)
		}
	}
}

// TestCorruptTailChecksumDropped flips a bit inside the final record's
// payload: a full-length tail with a bad CRC is still the torn tail of
// a crash (partially persisted sectors) and is dropped, not fatal.
func TestCorruptTailChecksumDropped(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "a", "111")
	mustPut(t, db, "b", "222")
	raw, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(walPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openRaw(t, dir, Options{})
	if v, _ := get(t, db2, "a"); v != "111" {
		t.Fatal("lost the record before the corrupt tail")
	}
	if _, ok := db2.Get("b"); ok {
		t.Fatal("corrupt tail record applied")
	}
}

// TestCorruptMidLogRefused flips a bit in a record that has more log
// after it: those later records were acked, so recovery must fail
// loudly instead of silently dropping them.
func TestCorruptMidLogRefused(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "a", "111")
	mustPut(t, db, "b", "222")
	mustPut(t, db, "c", "333")
	raw, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record's payload.
	raw[9] ^= 0xFF
	if err := os.WriteFile(walPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Options{Dir: dir})
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorruptLog", err)
	}
}

// TestCorruptCheckpointRefused: the checkpoint is renamed into place
// atomically, so any damage in it is corruption, torn tail included.
func TestCorruptCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "a", "111")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointPath(dir), raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("truncated checkpoint: err = %v, want ErrCorruptLog", err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	for i := 0; i < 50; i++ {
		mustPut(t, db, fmt.Sprintf("k%03d", i), "v")
	}
	if st, _ := os.Stat(walPath(dir)); st.Size() == 0 {
		t.Fatal("WAL empty before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(walPath(dir)); st.Size() != 0 {
		t.Fatalf("WAL %d bytes after checkpoint, want 0", st.Size())
	}
	mustPut(t, db, "after", "1")
	db2 := openRaw(t, dir, Options{})
	if n := db2.Len(""); n != 51 {
		t.Fatalf("recovered %d keys, want 51", n)
	}
	if got := db2.Metrics().ReplayedRecords; got != 1 {
		t.Fatalf("replayed %d records, want 1 (post-checkpoint only)", got)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{CheckpointEvery: 10})
	for i := 0; i < 25; i++ {
		mustPut(t, db, fmt.Sprintf("k%03d", i), "v")
	}
	if got := db.Metrics().Checkpoints; got < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2", got)
	}
	db2 := openRaw(t, dir, Options{CheckpointEvery: 10})
	if n := db2.Len(""); n != 25 {
		t.Fatalf("recovered %d keys, want 25", n)
	}
}

// TestCheckpointCrashWindowIdempotent replays the crash window between
// checkpoint rename and WAL truncation: the WAL still holds records the
// checkpoint covers, and replaying them over it must converge.
func TestCheckpointCrashWindowIdempotent(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	mustPut(t, db, "a", "1")
	mustPut(t, db, "a", "2")
	if _, err := db.Delete("a"); err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "b", "3")
	wal, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash window: checkpoint live, but the old WAL was never truncated.
	if err := os.WriteFile(walPath(dir), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openRaw(t, dir, Options{})
	if _, ok := db2.Get("a"); ok {
		t.Fatal("replayed-over checkpoint resurrected a deleted key")
	}
	if v, _ := get(t, db2, "b"); v != "3" {
		t.Fatal("replay over checkpoint lost b")
	}
}

func TestCommitNoSyncOrdered(t *testing.T) {
	dir := t.TempDir()
	db := openRaw(t, dir, Options{})
	if err := db.CommitNoSync(func(tx *Tx) { tx.Put("q/1", []byte("a")) }); err != nil {
		t.Fatal(err)
	}
	// A later synced commit carries the unsynced record with it.
	mustPut(t, db, "o/1", "b")
	db2 := openRaw(t, dir, Options{})
	if _, ok := db2.Get("q/1"); !ok {
		t.Fatal("NoSync record not carried by the next synced commit")
	}
	if _, ok := db2.Get("o/1"); !ok {
		t.Fatal("synced record lost")
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	db := openRaw(t, t.TempDir(), Options{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("k", []byte("v")); err == nil {
		t.Fatal("Commit after Close succeeded")
	}
}
