package meta

import (
	"fmt"
	"os"
	"path/filepath"
)

// Checkpointing: the full index is written to a temp file in WAL record
// format (chunked put batches), fsynced, renamed over `checkpoint` and
// the directory fsynced — then the WAL segment is truncated. Recovery
// is load-checkpoint + replay-WAL, in that order. The two steps need no
// atomicity between them: a crash after the rename but before the
// truncate just replays WAL records the checkpoint already contains,
// and replaying a full prefix of the log in order is idempotent (the
// final value of every key is decided by its last record).

// recover loads the checkpoint, replays the WAL and truncates a torn
// tail, then opens the segment for appending. Called once from Open.
func (db *DB) recover() error {
	dir := db.opts.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Sweep checkpoint temp files left by a crash mid-checkpoint: the
	// rename never happened, so the live checkpoint is still authoritative.
	if stale, err := filepath.Glob(filepath.Join(dir, "#tmp-checkpoint-*")); err == nil {
		for _, p := range stale {
			_ = os.Remove(p)
		}
	}
	apply := func(ops []walOp) error {
		for i := range ops {
			op := &ops[i]
			sh := db.shardOf(op.key)
			if op.del {
				delete(sh.m, op.key)
				continue
			}
			v, err := db.opts.Codec.Decode(op.key, op.val)
			if err != nil {
				return fmt.Errorf("meta: decode %q during recovery: %w", op.key, err)
			}
			sh.m[op.key] = v
		}
		return nil
	}
	// The checkpoint was published by an atomic rename: it can be absent
	// (never checkpointed) but never torn, so strict mode.
	if _, _, err := replayFile(checkpointPath(dir), false, apply); err != nil {
		return err
	}
	// The live WAL can end in the torn record of a crash mid-commit;
	// replay stops there and the tail is truncated away before new
	// records append after it.
	records, validOff, err := replayFile(walPath(dir), true, apply)
	if err != nil {
		return err
	}
	db.m.replayed.Add(int64(records))
	if st, err := os.Stat(walPath(dir)); err == nil && st.Size() > validOff {
		if err := os.Truncate(walPath(dir), validOff); err != nil {
			return err
		}
	}
	w, err := newWALFile(walPath(dir), db)
	if err != nil {
		return err
	}
	db.wal = w
	db.records = records
	return nil
}

// checkpointBatch bounds how many entries share one checkpoint record.
const checkpointBatch = 512

// Checkpoint writes the full index to a fresh checkpoint and truncates
// the WAL, bounding replay time at the next Open. Writers are blocked
// for the duration (reads are not); the plane's scale keeps this short
// — metadata, never data bytes. No-op for a memory-only plane.
func (db *DB) Checkpoint() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.wal == nil || db.closed {
		return nil
	}
	// Nothing may be in flight behind the buffer when the segment is
	// truncated out from under the flusher.
	if err := db.wal.quiesce(); err != nil {
		return err
	}
	dir := db.opts.Dir
	tmp, err := os.CreateTemp(dir, "#tmp-checkpoint-")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	var batch []txOp
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := tmp.Write(encodeRecord(batch)); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for i := range db.shards {
		// commitMu blocks writers, so plain reads see a frozen index.
		for k, v := range db.shards[i].m {
			enc, err := db.opts.Codec.Encode(k, v)
			if err != nil {
				return fail(fmt.Errorf("meta: encode %q for checkpoint: %w", k, err))
			}
			batch = append(batch, txOp{key: k, enc: enc})
			if len(batch) >= checkpointBatch {
				if err := flushBatch(); err != nil {
					return fail(err)
				}
			}
		}
	}
	if err := flushBatch(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), checkpointPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := SyncDir(dir); err != nil {
		return err
	}
	if err := db.wal.reset(); err != nil {
		return err
	}
	db.records = 0
	db.m.checkpoints.Add(1)
	return nil
}
