package meta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The write-ahead log: one append-only segment of length-prefixed,
// CRC32C-framed records. Each record is one committed batch:
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//	payload = uvarint opCount, then per op:
//	  byte kind (0 put, 1 delete) | uvarint keyLen | key
//	  puts add: uvarint valLen | val
//
// The CRC is the same Castagnoli polynomial the store frames blocks
// with, so the whole system has one integrity story. A record becomes
// durable at the group fsync; replay applies records in order, drops a
// torn tail (a record the crash cut short was never acked) and refuses
// a log with corruption anywhere else.

// ErrCorruptLog reports WAL or checkpoint corruption that is not a torn
// tail: acked records can no longer be trusted, so recovery stops
// instead of silently losing them.
var ErrCorruptLog = errors.New("meta: corrupt log record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	opPut    = 0
	opDelete = 1
	// maxRecord bounds a single record; a longer length header is
	// corruption, not a real record.
	maxRecord = 1 << 30

	walName        = "wal.log"
	checkpointName = "checkpoint"
)

// encodeRecord frames one batch of staged ops as a WAL record.
func encodeRecord(ops []txOp) []byte {
	n := binary.MaxVarintLen64
	for i := range ops {
		n += 1 + 2*binary.MaxVarintLen64 + len(ops[i].key) + len(ops[i].enc)
	}
	payload := make([]byte, 8, 8+n)
	payload = binary.AppendUvarint(payload, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		if op.del {
			payload = append(payload, opDelete)
			payload = binary.AppendUvarint(payload, uint64(len(op.key)))
			payload = append(payload, op.key...)
			continue
		}
		payload = append(payload, opPut)
		payload = binary.AppendUvarint(payload, uint64(len(op.key)))
		payload = append(payload, op.key...)
		payload = binary.AppendUvarint(payload, uint64(len(op.enc)))
		payload = append(payload, op.enc...)
	}
	binary.LittleEndian.PutUint32(payload[0:], uint32(len(payload)-8))
	binary.LittleEndian.PutUint32(payload[4:], crc32.Checksum(payload[8:], castagnoli))
	return payload
}

// walOp is one decoded log operation.
type walOp struct {
	del bool
	key string
	val []byte
}

// decodeRecord parses one record payload into its ops. val slices alias
// the payload.
func decodeRecord(payload []byte) ([]walOp, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad op count", ErrCorruptLog)
	}
	payload = payload[n:]
	ops := make([]walOp, 0, count)
	readStr := func() (string, error) {
		l, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload)-n) < l {
			return "", fmt.Errorf("%w: bad field length", ErrCorruptLog)
		}
		s := string(payload[n : n+int(l)])
		payload = payload[n+int(l):]
		return s, nil
	}
	for i := uint64(0); i < count; i++ {
		if len(payload) < 1 {
			return nil, fmt.Errorf("%w: truncated op", ErrCorruptLog)
		}
		kind := payload[0]
		payload = payload[1:]
		key, err := readStr()
		if err != nil {
			return nil, err
		}
		switch kind {
		case opDelete:
			ops = append(ops, walOp{del: true, key: key})
		case opPut:
			val, err := readStr()
			if err != nil {
				return nil, err
			}
			ops = append(ops, walOp{key: key, val: []byte(val)})
		default:
			return nil, fmt.Errorf("%w: unknown op kind %d", ErrCorruptLog, kind)
		}
	}
	return ops, nil
}

// replayFile streams a record log, calling apply for each record's ops.
// In tolerant mode (the live WAL) a torn tail — a final record the file
// ends inside, or whose checksum fails with nothing after it — is
// dropped and its offset returned for truncation; strict mode (the
// atomically-renamed checkpoint, which can never legitimately tear)
// turns any damage into ErrCorruptLog. Corruption with more log after
// it always fails: the records beyond it were acked and would be lost.
func replayFile(path string, tolerant bool, apply func(ops []walOp) error) (records int, validOff int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, off, nil
		}
		torn := func(what string) (int, int64, error) {
			if tolerant {
				return records, off, nil
			}
			return records, off, fmt.Errorf("%w: %s at offset %d of %s", ErrCorruptLog, what, off, path)
		}
		if len(rest) < 8 {
			return torn("truncated record header")
		}
		length := binary.LittleEndian.Uint32(rest)
		if int64(length) > maxRecord || 8+int64(length) > int64(len(rest)) {
			// The declared record runs past EOF: a torn tail if nothing
			// real can follow, corruption never (there is no "after").
			return torn("truncated record body")
		}
		payload := rest[8 : 8+length]
		if binary.LittleEndian.Uint32(rest[4:]) != crc32.Checksum(payload, castagnoli) {
			if int64(len(rest)) == 8+int64(length) {
				// Bad checksum on the very last record: the torn tail of
				// a crash mid-write. It was never acked; drop it.
				return torn("checksum mismatch on tail record")
			}
			return records, off, fmt.Errorf("%w: checksum mismatch at offset %d of %s (followed by %d more bytes)",
				ErrCorruptLog, off, path, int64(len(rest))-8-int64(length))
		}
		ops, err := decodeRecord(payload)
		if err != nil {
			return records, off, fmt.Errorf("%s at offset %d of %s", err, off, path)
		}
		if err := apply(ops); err != nil {
			return records, off, err
		}
		records++
		off += 8 + int64(length)
	}
}

// flushGroup is one fsync's worth of commits: everyone whose record was
// buffered before the group flushed shares its fate.
type flushGroup struct {
	done chan struct{}
	err  error
}

// walFile is the open WAL segment with its group-commit machinery.
type walFile struct {
	f    *os.File
	path string
	db   *DB // metrics

	mu       sync.Mutex
	cond     *sync.Cond // flushing transitions
	buf      []byte     // records ordered but not yet written
	cur      *flushGroup
	flushing bool
	err      error // sticky: the log no longer matches memory
}

func newWALFile(path string, db *DB) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w := &walFile{f: f, path: path, db: db}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// enqueue orders a record into the buffer (called under the DB commit
// lock, so buffer order is apply order) and returns the group that will
// carry it to disk.
func (w *walFile) enqueue(rec []byte) *flushGroup {
	w.mu.Lock()
	w.buf = append(w.buf, rec...)
	if w.cur == nil {
		w.cur = &flushGroup{done: make(chan struct{})}
	}
	g := w.cur
	w.mu.Unlock()
	return g
}

// wait blocks until g's records are on disk. The first waiter becomes
// the flush leader; commits that arrive while the leader is writing
// form the next group and ride the next fsync — group commit.
func (w *walFile) wait(g *flushGroup) error {
	w.mu.Lock()
	if !w.flushing {
		w.flushLocked()
	}
	w.mu.Unlock()
	<-g.done
	return g.err
}

// flushLocked drains the buffer group by group (called with mu held;
// unlocks around the IO). Any write or sync error is sticky: memory has
// already applied records the log now cannot guarantee, so the plane
// refuses further commits rather than diverge silently.
func (w *walFile) flushLocked() {
	w.flushing = true
	for len(w.buf) > 0 {
		buf, g := w.buf, w.cur
		w.buf, w.cur = nil, nil
		err := w.err
		w.mu.Unlock()
		if err == nil {
			if _, werr := w.f.Write(buf); werr != nil {
				err = werr
			} else if serr := w.f.Sync(); serr != nil {
				err = serr
			}
			w.db.m.commitBatches.Add(1)
		}
		g.err = err
		close(g.done)
		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	w.flushing = false
	w.cond.Broadcast()
}

// quiesce flushes everything pending and parks the log (called with the
// DB commit lock held, so nothing new can be enqueued). Used before a
// checkpoint truncates the segment and before close.
func (w *walFile) quiesce() error {
	w.mu.Lock()
	for w.flushing {
		w.cond.Wait()
	}
	if len(w.buf) > 0 {
		w.flushLocked()
	}
	err := w.err
	w.mu.Unlock()
	return err
}

// reset truncates the segment to empty — everything it held is covered
// by a just-renamed checkpoint. Caller must have quiesced.
func (w *walFile) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walFile) close() error {
	err := w.quiesce()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir fsyncs a directory, making a rename or create inside it
// durable. The missing half of the temp+fsync+rename idiom: on some
// filesystems a crash right after rename can otherwise lose the new
// directory entry — and with it a just-acked file.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// walPath / checkpointPath name the plane's two durable files.
func walPath(dir string) string        { return filepath.Join(dir, walName) }
func checkpointPath(dir string) string { return filepath.Join(dir, checkpointName) }
