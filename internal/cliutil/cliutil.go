// Package cliutil is the shared plumbing between the binaries that open
// a store from command-line flags: xorbasctl's store subcommands, the
// xorbasd HTTP gateway, and anything after them. One definition of the
// -dir/-backend/-nodes/-meta/-code contract — how a store directory, its
// block backend, its metadata plane and its codec are described and
// remembered — so the tools cannot drift apart on what a store path
// means.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/netblock"
	"repro/internal/store"
)

// StoreFlags holds the parsed shared store flags. Register it on a
// FlagSet with RegisterStoreFlags, parse, then Open/OpenOrCreate.
type StoreFlags struct {
	Dir     *string
	Backend *string
	Nodes   *string
	Meta    *string
	Code    *string
}

// RegisterStoreFlags registers the shared store flags on fs:
//
//	-dir      store directory (required)
//	-backend  dir | net
//	-nodes    node count (dir) or host:port list (net)
//	-meta     metadata plane directory; "" reuses the recorded one, "none" disables
//	-code     lrc | rs (first use only)
func RegisterStoreFlags(fs *flag.FlagSet) *StoreFlags {
	return &StoreFlags{
		Dir:     fs.String("dir", "", "store directory"),
		Backend: fs.String("backend", "dir", "block backend: dir (subdirectories under -dir) or net (TCP block servers)"),
		Nodes:   fs.String("nodes", "20", "dir backend: simulated node count (first use only); net backend: comma-separated host:port list, one address per node"),
		Meta:    fs.String("meta", "", "metadata plane directory (WAL + checkpoint; durable acked puts); default: reuse the store's recorded plane; 'none' = snapshot-only"),
		Code:    fs.String("code", "lrc", "erasure code on first use: lrc = LRC(10,6,5), rs = RS(10,4)"),
	}
}

// Spec resolves -backend and -nodes into a BackendSpec.
func (f *StoreFlags) Spec() (BackendSpec, error) {
	return ParseBackendSpec(*f.Backend, *f.Nodes)
}

// MetaDir resolves -meta against the store directory's recorded plane.
func (f *StoreFlags) MetaDir() string {
	return ResolveMetaDir(*f.Dir, *f.Meta)
}

// Codec resolves -code into a constructor.
func (f *StoreFlags) Codec() (store.Codec, error) {
	switch *f.Code {
	case "", "lrc":
		return store.NewXorbasCodec(), nil
	case "rs":
		return store.NewRS104Codec(), nil
	default:
		return nil, fmt.Errorf("unknown -code %q (want lrc or rs)", *f.Code)
	}
}

// Open opens the existing store the parsed flags describe — the shared
// open-store-from-flags path.
func (f *StoreFlags) Open() (*store.Store, error) {
	return f.OpenRates(Rates{})
}

// Rates bundles the resource budgets an open threads into the store:
// bytes/sec for the three paced background datapaths (repair reads,
// scrub reads, rebalance migration reads; 0 = unlimited — foreground
// gets are never paced), plus the hot-block read cache capacity.
type Rates struct {
	Repair    int64
	Scrub     int64
	Rebalance int64
	// CacheBytes is a capacity, not a rate: resident bytes for the
	// store's hot-block read cache (store.Config.CacheBytes). 0 = no
	// cache.
	CacheBytes int64
}

// OpenRates is Open with background rate budgets.
func (f *StoreFlags) OpenRates(r Rates) (*store.Store, error) {
	if *f.Dir == "" {
		return nil, fmt.Errorf("need -dir")
	}
	spec, err := f.Spec()
	if err != nil {
		return nil, err
	}
	return OpenStoreRates(*f.Dir, spec, f.MetaDir(), r)
}

// OpenOrCreate opens the store at -dir, creating an empty one with the
// -code codec and the given geometry when none exists yet. On creation
// the backend kind and metadata plane are recorded and a snapshot is
// written immediately, so the directory reopens even if the process is
// later killed without a clean save.
func (f *StoreFlags) OpenOrCreate(racks, blockSize int) (*store.Store, error) {
	return f.OpenOrCreateRates(racks, blockSize, Rates{})
}

// OpenOrCreateRates is OpenOrCreate with resource budgets, applied on
// both the open and the create path — a daemon gets its paced repair
// and its read cache on first boot, not only after a restart.
func (f *StoreFlags) OpenOrCreateRates(racks, blockSize int, r Rates) (*store.Store, error) {
	if *f.Dir == "" {
		return nil, fmt.Errorf("need -dir")
	}
	spec, err := f.Spec()
	if err != nil {
		return nil, err
	}
	metaDir := f.MetaDir()
	if _, err := os.Stat(StoreStatePath(*f.Dir)); err == nil {
		return OpenStoreRates(*f.Dir, spec, metaDir, r)
	}
	codec, err := f.Codec()
	if err != nil {
		return nil, err
	}
	return CreateStoreRates(*f.Dir, spec, metaDir, codec, racks, blockSize, r)
}

// BackendSpec is how the CLI reaches block bytes: subdirectories of the
// store directory, or a fleet of TCP block servers.
type BackendSpec struct {
	Kind  string   // "dir" or "net"
	Addrs []string // net: one host:port per store node
	Count int      // node count (net: len(Addrs); dir: first-use count)
}

// ParseBackendSpec interprets -backend and -nodes together: the -nodes
// flag is a node count for the dir backend and an address list for the
// net backend.
func ParseBackendSpec(kind, nodes string) (BackendSpec, error) {
	switch kind {
	case "dir":
		n, err := strconv.Atoi(nodes)
		if err != nil || n < 1 {
			return BackendSpec{}, fmt.Errorf("-backend dir needs -nodes to be a positive node count, got %q", nodes)
		}
		return BackendSpec{Kind: kind, Count: n}, nil
	case "net":
		addrs := strings.Split(nodes, ",")
		for i, a := range addrs {
			addrs[i] = strings.TrimSpace(a)
			if !strings.Contains(addrs[i], ":") {
				return BackendSpec{}, fmt.Errorf("-backend net needs -nodes as host:port,host:port,...; %q has no port", a)
			}
		}
		return BackendSpec{Kind: kind, Addrs: addrs, Count: len(addrs)}, nil
	default:
		return BackendSpec{}, fmt.Errorf("unknown -backend %q (want dir or net)", kind)
	}
}

// Open builds the block backend for a store rooted at dir.
func (bs BackendSpec) Open(dir string) (store.Backend, error) {
	if bs.Kind == "net" {
		return netblock.Dial(bs.Addrs, netblock.Options{})
	}
	return store.NewDirBackend(filepath.Join(dir, "blocks"))
}

// StoreStatePath is where a store directory keeps its metadata snapshot.
func StoreStatePath(dir string) string { return filepath.Join(dir, "store.json") }

// metaMarkerPath records where a store's metadata plane lives, so later
// invocations find it without repeating -meta.
func metaMarkerPath(dir string) string { return filepath.Join(dir, "metadir") }

// ResolveMetaDir interprets -meta: an explicit directory wins, "none"
// forces the legacy snapshot-only mode, and "" falls back to the plane
// the store was created with (the marker file), if any.
func ResolveMetaDir(dir, flagVal string) string {
	switch flagVal {
	case "none":
		return ""
	case "":
		if b, err := os.ReadFile(metaMarkerPath(dir)); err == nil {
			return strings.TrimSpace(string(b))
		}
		return ""
	default:
		return flagVal
	}
}

// RememberMetaDir persists the marker (best-effort: losing it only costs
// a -meta flag on the next invocation).
func RememberMetaDir(dir, metaDir string) {
	if metaDir == "" {
		return
	}
	_ = os.WriteFile(metaMarkerPath(dir), []byte(metaDir+"\n"), 0o644)
}

// backendMarkerPath records which backend kind a store was created with,
// so a net-backed store opened without its flags fails fast instead of
// presenting as an empty dir store (and vice versa). Stores predating
// the marker were always dir-backed.
func backendMarkerPath(dir string) string { return filepath.Join(dir, "backend") }

// CheckBackendKind validates spec against the store's recorded backend
// kind.
func CheckBackendKind(dir string, spec BackendSpec) error {
	b, err := os.ReadFile(backendMarkerPath(dir))
	recorded := "dir"
	if err == nil {
		recorded = strings.TrimSpace(string(b))
	}
	if recorded != spec.Kind {
		return fmt.Errorf("store at %s was created with -backend %s; re-run with -backend %s (and -nodes for net)", dir, recorded, recorded)
	}
	return nil
}

// RecordBackendKind persists the backend-kind marker at store creation.
func RecordBackendKind(dir, kind string) error {
	return os.WriteFile(backendMarkerPath(dir), []byte(kind+"\n"), 0o644)
}

// CodecByName maps a snapshot's codec string back to a constructor.
func CodecByName(n string) (store.Codec, error) {
	switch n {
	case "LRC(10,6,5)":
		return store.NewXorbasCodec(), nil
	case "RS(10,4)":
		return store.NewRS104Codec(), nil
	default:
		return nil, fmt.Errorf("unknown codec %q in store state", n)
	}
}

// OpenStore loads an existing on-disk store, inferring the codec from
// the saved state.
func OpenStore(dir string, spec BackendSpec, metaDir string) (*store.Store, error) {
	return OpenStoreRates(dir, spec, metaDir, Rates{})
}

// OpenStoreRates is OpenStore with rate budgets for the background
// datapaths. With a metaDir, the plane is
// authoritative for manifests (store.json imports only into an empty
// plane — the migration path) and this invocation's commits hit its WAL.
func OpenStoreRates(dir string, spec BackendSpec, metaDir string, rates Rates) (*store.Store, error) {
	blob, err := os.ReadFile(StoreStatePath(dir))
	if err != nil {
		return nil, fmt.Errorf("no store at %s (run `store put` first): %w", dir, err)
	}
	if err := CheckBackendKind(dir, spec); err != nil {
		return nil, err
	}
	var peek struct {
		Codec string `json:"codec"`
		Nodes int    `json:"nodes"`
	}
	if err := json.Unmarshal(blob, &peek); err != nil {
		return nil, err
	}
	codec, err := CodecByName(peek.Codec)
	if err != nil {
		return nil, err
	}
	// A grown cluster may legitimately list fewer addresses than the
	// store has nodes: nodes added with `xorbasctl node add` recorded
	// their addresses in the membership plane, and recovery re-registers
	// the tail from those records. More addresses than nodes is always a
	// misconfiguration.
	if spec.Kind == "net" && len(spec.Addrs) > peek.Nodes {
		return nil, fmt.Errorf("store has %d nodes but -nodes lists %d addresses", peek.Nodes, len(spec.Addrs))
	}
	be, err := spec.Open(dir)
	if err != nil {
		return nil, err
	}
	s, err := store.Restore(store.Config{
		Codec:              codec,
		Backend:            be,
		MetaDir:            metaDir,
		RepairRateBytes:    rates.Repair,
		ScrubRateBytes:     rates.Scrub,
		RebalanceRateBytes: rates.Rebalance,
		CacheBytes:         rates.CacheBytes,
	}, blob)
	if err != nil {
		return nil, err
	}
	RememberMetaDir(dir, metaDir)
	return s, nil
}

// CreateStore makes a fresh store at dir with the given backend spec,
// metadata plane, codec and geometry, recording the markers and an
// initial snapshot so the directory reopens even after an unclean exit.
func CreateStore(dir string, spec BackendSpec, metaDir string, codec store.Codec, racks, blockSize int) (*store.Store, error) {
	return CreateStoreRates(dir, spec, metaDir, codec, racks, blockSize, Rates{})
}

// CreateStoreRates is CreateStore with resource budgets.
func CreateStoreRates(dir string, spec BackendSpec, metaDir string, codec store.Codec, racks, blockSize int, rates Rates) (*store.Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	be, err := spec.Open(dir)
	if err != nil {
		return nil, err
	}
	s, err := store.New(store.Config{
		Codec:              codec,
		Backend:            be,
		Nodes:              spec.Count,
		Racks:              racks,
		BlockSize:          blockSize,
		MetaDir:            metaDir,
		RepairRateBytes:    rates.Repair,
		ScrubRateBytes:     rates.Scrub,
		RebalanceRateBytes: rates.Rebalance,
		CacheBytes:         rates.CacheBytes,
	})
	if err != nil {
		return nil, err
	}
	if err := RecordBackendKind(dir, spec.Kind); err != nil {
		return nil, err
	}
	RememberMetaDir(dir, metaDir)
	blob, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(StoreStatePath(dir), blob, 0o644); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveStore writes the store's metadata snapshot back to disk (with a
// metadata plane this is an export for inspection and migration — the
// plane itself is already durable) and closes the store, checkpointing
// the plane so the next open replays nothing.
func SaveStore(dir string, s *store.Store) error {
	blob, err := s.Snapshot()
	if err != nil {
		return err
	}
	if err := os.WriteFile(StoreStatePath(dir), blob, 0o644); err != nil {
		return err
	}
	return s.Close()
}

// Mbps formats a transfer rate; the CLIs double as quick perf probes.
func Mbps(bytes int64, d time.Duration) string {
	if d <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f MB/s", float64(bytes)/1e6/d.Seconds())
}

// WireLine formats the wire-traffic totals, empty for in-process
// backends.
func WireLine(m store.Metrics) string {
	if m.WireSentBytes == 0 && m.WireRecvBytes == 0 {
		return ""
	}
	return fmt.Sprintf("wire: %d bytes sent / %d bytes received\n", m.WireSentBytes, m.WireRecvBytes)
}
