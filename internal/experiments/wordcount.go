package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// WorkloadConfig parameterizes the §5.2.4 repair-under-workload
// experiment: two 15-slave clusters, ten WordCount jobs over five 3 GB
// files, with ~20% of the required blocks missing in the degraded runs.
type WorkloadConfig struct {
	Nodes      int
	NodeBps    float64
	BlockBytes float64
	// FileBlocks is blocks per 3 GB file (48 at 64 MB).
	FileBlocks int
	Files      int
	Jobs       int
	// ProcessBps is the WordCount map throughput (CPU-bound on
	// m1.small); calibrated so the all-available average lands near the
	// paper's 83 minutes.
	ProcessBps float64
	// MissingFraction kills enough nodes to lose about this fraction of
	// blocks (~0.2 in the paper).
	MissingFraction float64
	Seed            int64
}

// DefaultWorkload returns the §5.2.4 parameters.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Nodes: 15, NodeBps: 4 * mb, BlockBytes: 64 * mb,
		FileBlocks: 48, Files: 5, Jobs: 10,
		ProcessBps: 0.16 * mb, MissingFraction: 0.2, Seed: 3,
	}
}

// WorkloadResult is one cluster's Fig 7 / Table 2 outcome.
type WorkloadResult struct {
	Scheme string
	// JobMinutes are per-job completion times sorted ascending (Fig 7's
	// staircase).
	JobMinutes []float64
	AvgMinutes float64
	// TotalReadGB is Table 2's Total Bytes Read.
	TotalReadGB   float64
	DegradedTasks int
	MissingBlocks int
}

// RunWorkload executes the WordCount workload on a cluster using the
// scheme, with or without the ~20% block loss. This is the paper's
// "repair impact on workload" experiment: the BlockFixer's repair job
// runs under the same FairScheduler as the WordCount jobs, competing for
// map slots and network, while tasks that reach a still-missing block
// take the degraded-read path. Table 2's Total Bytes Read therefore
// includes both the job input and the repair/degraded reconstruction
// reads.
func RunWorkload(scheme core.Scheme, degraded bool, cfg WorkloadConfig) (*WorkloadResult, error) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: cfg.Nodes, Racks: 1,
		NodeOutBps: cfg.NodeBps, NodeInBps: cfg.NodeBps,
		BucketSec: 300,
	})
	if err != nil {
		return nil, err
	}
	fs, err := hdfs.New(cl, scheme, hdfs.Config{
		BlockSizeBytes: cfg.BlockBytes,
		SlotsPerNode:   2, RepairMaxParallel: 0, // repair job fair-shares slots
		TaskLaunchSec: 5, FixerScanSec: 60,
		DeployedReads: true, DecodeCPUSecPerRead: 0.5,
		DegradedTimeoutSec: 10, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	files := make([][]*hdfs.Stripe, cfg.Files)
	for i := range files {
		stripes, err := fs.AddFile(fmt.Sprintf("text-%d", i), cfg.FileBlocks)
		if err != nil {
			return nil, err
		}
		files[i] = stripes
	}

	res := &WorkloadResult{Scheme: scheme.Name()}
	if degraded {
		// Simulate block losses (§5.2.4): delete MissingFraction of the
		// required (data) blocks, spread round-robin across stripes and
		// across positions within a stripe, matching the paper's observed
		// reconstruction cost of ≈5 blocks per missing block for Xorbas
		// (losses land in distinct local groups).
		var all []*hdfs.Stripe
		for _, f := range files {
			all = append(all, f...)
		}
		required := cfg.Files * cfg.FileBlocks
		target := int(cfg.MissingFraction * float64(required))
		lost := 0
		for round := 0; lost < target && round < scheme.DataBlocks(); round++ {
			// Alternate group halves: rounds walk positions 0, 5, 1, 6, …
			// so consecutive losses in one stripe land in different local
			// groups.
			pos := (round%2)*(scheme.DataBlocks()/2) + round/2
			for _, s := range all {
				if lost >= target {
					break
				}
				if pos < s.DataCount && s.Available(pos) {
					fs.LoseBlock(s, pos)
					lost++
				}
			}
		}
		res.MissingBlocks = lost
	}

	before := fs.Snapshot()
	jobs := make([]*workload.WordCount, 0, cfg.Jobs)
	for j := 0; j < cfg.Jobs; j++ {
		stripes := files[j%cfg.Files]
		jobs = append(jobs, workload.SubmitWordCount(fs, fmt.Sprintf("wordcount-%d", j), stripes, cfg.ProcessBps, nil))
	}
	eng.Run()
	for _, wc := range jobs {
		if !wc.Job.Done() {
			return nil, fmt.Errorf("experiments: job %s did not finish", wc.Name)
		}
		res.JobMinutes = append(res.JobMinutes, wc.Duration()/60)
	}
	sort.Float64s(res.JobMinutes)
	var sum float64
	for _, m := range res.JobMinutes {
		sum += m
	}
	res.AvgMinutes = sum / float64(len(res.JobMinutes))
	d := fs.Delta(before)
	res.DegradedTasks = d.DegradedReads
	res.TotalReadGB = d.HDFSBytesRead / 1e9
	return res, nil
}
