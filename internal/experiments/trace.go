package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TraceConfig drives a month-scale simulation: the Fig 1 failure trace
// replayed against a cluster (scaled down from the 3000-node production
// system), with failed nodes replaced after repair — the §1.1 regime
// where "it is quite typical to have 20 or more node failures per day"
// and repair traffic is a standing fraction of cluster bandwidth.
type TraceConfig struct {
	Days       int
	Nodes      int
	Files      int
	FileBlocks int
	NodeBps    float64
	BlockBytes float64
	// FailuresPerDay scales the trace to the simulated cluster size
	// (the production 21/day over 3000 nodes ≈ 0.7% of nodes per day).
	FailuresPerDay float64
	Seed           int64
}

// DefaultTraceDriven returns a laptop-scale month: 80 nodes, ~0.7% daily
// failure rate (matching the production trace's per-node rate).
func DefaultTraceDriven() TraceConfig {
	return TraceConfig{
		Days: 31, Nodes: 80, Files: 150, FileBlocks: 10,
		NodeBps: 40 * mb, BlockBytes: 64 * mb,
		FailuresPerDay: 0.6, Seed: 13,
	}
}

// TraceResult summarizes the month.
type TraceResult struct {
	Scheme          string
	NodesFailed     int
	BlocksRepaired  int
	LightRepairs    int
	HeavyRepairs    int
	DataLossBlocks  int
	RepairTrafficGB float64
	// RepairTrafficShare is repair bytes over total potential network
	// byte-seconds — the §1.1 "repair traffic is 10–20% of cluster
	// traffic" concern, relative to a nominal utilization baseline.
	AvgDailyRepairGB float64
}

// RunTraceDriven replays a scaled Fig 1 failure trace for cfg.Days
// simulated days. Each failed node is repaired by the BlockFixer and
// then replaced (restarted empty) at the next day boundary, modelling
// ops swapping hardware.
func RunTraceDriven(scheme core.Scheme, cfg TraceConfig) (*TraceResult, error) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: cfg.Nodes, Racks: 1,
		NodeOutBps: cfg.NodeBps, NodeInBps: cfg.NodeBps,
		BucketSec: 3600,
	})
	if err != nil {
		return nil, err
	}
	fs, err := hdfs.New(cl, scheme, hdfs.Config{
		BlockSizeBytes: cfg.BlockBytes,
		SlotsPerNode:   2, RepairMaxParallel: 16,
		TaskLaunchSec: 10, FixerScanSec: 60,
		DeployedReads: true, DecodeCPUSecPerRead: 0.3,
		DegradedTimeoutSec: 15, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Files; i++ {
		if _, err := fs.AddFile(fmt.Sprintf("t%04d", i), cfg.FileBlocks); err != nil {
			return nil, err
		}
	}

	trace, err := workload.FailureTrace(workload.TraceConfig{
		Days: cfg.Days, Nodes: cfg.Nodes,
		MeanFailuresPerDay: cfg.FailuresPerDay, WeekendFactor: 0.7,
		BurstProb: 0.06, BurstMean: 4 * cfg.FailuresPerDay,
		Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	res := &TraceResult{Scheme: scheme.Name()}
	const daySec = 86400.0
	var downNodes []int
	for day, failures := range trace {
		dayStart := float64(day) * daySec
		// Replace yesterday's casualties with fresh (empty) hardware: the
		// node returns to service but its old blocks stay lost until the
		// BlockFixer re-creates them (unlike a transient RestartNode).
		replaced := downNodes
		downNodes = nil
		eng.ScheduleAt(dayStart, func() {
			for _, n := range replaced {
				cl.Restart(n)
			}
		})
		// Spread today's failures over the day.
		for f := 0; f < failures; f++ {
			at := dayStart + rng.Float64()*daySec
			eng.ScheduleAt(at, func() {
				live := cl.LiveNodes()
				if len(live) <= scheme.Slots() {
					return // keep the cluster placeable
				}
				victim := live[rng.Intn(len(live))]
				fs.KillNode(victim)
				downNodes = append(downNodes, victim)
				res.NodesFailed++
			})
		}
		eng.RunUntil(dayStart + daySec)
	}
	eng.Run() // drain outstanding repairs

	snap := fs.Snapshot()
	res.BlocksRepaired = snap.BlocksRepaired
	res.LightRepairs = snap.LightRepairs
	res.HeavyRepairs = snap.HeavyRepairs
	res.DataLossBlocks = snap.Unrecoverable
	res.RepairTrafficGB = snap.HDFSBytesRead / 1e9
	res.AvgDailyRepairGB = res.RepairTrafficGB / float64(cfg.Days)
	return res, nil
}
