package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/markov"
	"repro/internal/workload"
)

// Table1 computes and renders the paper's Table 1 under both the physical
// model and the paper-calibrated model (see EXPERIMENTS.md).
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: storage overhead, repair traffic, MTTDL")
	fmt.Fprintln(w, "  paper:  3-replication 2.3079E+10 | RS(10,4) 3.3118E+13 | LRC(10,6,5) 1.2180E+15 days")
	for _, mode := range []struct {
		name string
		p    markov.Params
	}{
		{"physical (γ=1Gb/s, no overhead)", markov.FacebookParams()},
		{"calibrated (per-stream overhead fit on RS row)", markov.CalibratedParams()},
	} {
		rows, err := markov.Table1(mode.p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  model: %s\n", mode.name)
		fmt.Fprintf(w, "  %-16s %-16s %-14s %s\n", "Scheme", "Storage overhead", "Repair traffic", "MTTDL (days)")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-16s %-16s %-14s %.4E\n", r.Scheme,
				fmt.Sprintf("%.1fx", r.StorageOverhead), fmt.Sprintf("%.1fx", r.RepairTraffic), r.MTTDLDays)
		}
	}
	return nil
}

// Fig1 renders the failure-trace figure: failed nodes per day.
func Fig1(w io.Writer) error {
	trace, err := workload.FailureTrace(workload.DefaultTrace())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig 1: failed nodes per day, one month, 3000-node cluster")
	for d, n := range trace {
		fmt.Fprintf(w, "  day %2d: %3d %s\n", d+1, n, strings.Repeat("#", n/2))
	}
	return nil
}

// Fig4 renders one EC2 run's per-event bars.
func Fig4(w io.Writer, rs, xorbas *EC2Result) {
	fmt.Fprintln(w, "Fig 4: per failure event (200-file experiment)")
	fmt.Fprintf(w, "  %-22s %12s %12s %12s\n", "event (lost RS/Xorbas)", "read GB", "net-out GB", "repair min")
	for i := range rs.Events {
		a, b := rs.Events[i], xorbas.Events[i]
		fmt.Fprintf(w, "  %d(%3d)/%d(%3d)  RS: %8.1f  %8.1f  %8.1f\n",
			a.NodesKilled, a.BlocksLost, b.NodesKilled, b.BlocksLost,
			a.HDFSReadGB, a.NetworkOutGB, a.RepairMinutes)
		fmt.Fprintf(w, "  %17s Xor: %8.1f  %8.1f  %8.1f\n", "",
			b.HDFSReadGB, b.NetworkOutGB, b.RepairMinutes)
	}
}

// Fig5 renders the 5-minute-resolution cluster series of one run pair.
func Fig5(w io.Writer, rs, xorbas *EC2Result) {
	fmt.Fprintln(w, "Fig 5: cluster time series, 5-minute buckets")
	n := len(rs.NetOutSeriesGB)
	if len(xorbas.NetOutSeriesGB) > n {
		n = len(xorbas.NetOutSeriesGB)
	}
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	fmt.Fprintf(w, "  %6s | %21s | %21s | %21s\n", "t(min)", "net-out GB (RS/Xor)", "disk-read GB (RS/Xor)", "CPU %% (RS/Xor)")
	for i := 0; i < n; i++ {
		if at(rs.NetOutSeriesGB, i) < 0.05 && at(xorbas.NetOutSeriesGB, i) < 0.05 {
			continue // skip idle buckets for readability
		}
		fmt.Fprintf(w, "  %6d | %9.1f / %9.1f | %9.1f / %9.1f | %9.0f / %9.0f\n",
			i*5,
			at(rs.NetOutSeriesGB, i), at(xorbas.NetOutSeriesGB, i),
			at(rs.DiskReadSeriesGB, i), at(xorbas.DiskReadSeriesGB, i),
			at(rs.CPUPercent, i), at(xorbas.CPUPercent, i))
	}
}

// Fig6 renders the scatter points and least-squares fits.
func Fig6(w io.Writer, rs, xorbas *Fig6Result) {
	fmt.Fprintln(w, "Fig 6: metrics vs blocks lost (50/100/200-file experiments)")
	fmt.Fprintln(w, "  paper slopes: ≈11.5 (RS) vs ≈5.8 (Xorbas) blocks read per lost block")
	for _, r := range []*Fig6Result{rs, xorbas} {
		fmt.Fprintf(w, "  %s: read %.4f GB/block (%.1f blocks, R²=%.3f); traffic %.4f GB/block; duration %.3f min/block\n",
			r.Scheme, r.ReadFit.Slope, r.BlocksReadPerLost, r.ReadFit.R2,
			r.TrafficFit.Slope, r.DurationFit.Slope)
		for _, p := range r.Points {
			fmt.Fprintf(w, "    lost=%3d read=%7.1fGB net=%7.1fGB dur=%5.1fmin\n",
				p.BlocksLost, p.HDFSReadGB, p.NetworkOutGB, p.RepairMinutes)
		}
	}
}

// Fig7Table2 renders the workload experiment: the Fig 7 staircases and
// the Table 2 summary.
func Fig7Table2(w io.Writer, base, rs, xorbas *WorkloadResult) {
	fmt.Fprintln(w, "Fig 7: WordCount completion times (minutes, sorted)")
	fmt.Fprintf(w, "  all avail: %s\n", fmtSeries(base.JobMinutes))
	fmt.Fprintf(w, "  20%% missing RS:  %s (+%.2f%%)\n", fmtSeries(rs.JobMinutes), 100*(rs.AvgMinutes-base.AvgMinutes)/base.AvgMinutes)
	fmt.Fprintf(w, "  20%% missing LRC: %s (+%.2f%%)\n", fmtSeries(xorbas.JobMinutes), 100*(xorbas.AvgMinutes-base.AvgMinutes)/base.AvgMinutes)
	fmt.Fprintln(w, "  paper: +27.47% (RS), +11.20% (LRC)")
	fmt.Fprintln(w, "Table 2: repair impact on workload")
	fmt.Fprintf(w, "  %-20s %12s %12s\n", "", "read (GB)", "avg job (min)")
	fmt.Fprintf(w, "  %-20s %12.2f %12.1f\n", "all blocks avail", base.TotalReadGB, base.AvgMinutes)
	fmt.Fprintf(w, "  %-20s %12.2f %12.1f\n", "~20% missing, LRC", xorbas.TotalReadGB, xorbas.AvgMinutes)
	fmt.Fprintf(w, "  %-20s %12.2f %12.1f\n", "~20% missing, RS", rs.TotalReadGB, rs.AvgMinutes)
	fmt.Fprintln(w, "  paper: 30 GB/83 min | 43.88 GB/92 min (LRC) | 74.06 GB/106 min (RS)")
}

// Table3 renders the Facebook test-cluster rows.
func Table3(w io.Writer, rs, xorbas *FacebookResult) {
	fmt.Fprintln(w, "Table 3: Facebook test cluster, one DataNode termination")
	fmt.Fprintf(w, "  %-16s %8s %12s %10s %10s\n", "Scheme", "lost", "HDFS GB", "GB/block", "dur (min)")
	for _, r := range []*FacebookResult{rs, xorbas} {
		fmt.Fprintf(w, "  %-16s %8d %12.1f %10.3f %10.0f\n", r.Scheme, r.BlocksLost, r.HDFSReadGB, r.GBPerBlock, r.RepairMinutes)
	}
	fmt.Fprintln(w, "  paper: RS 369 lost, 486.6 GB, 1.318 GB/block, 26 min")
	fmt.Fprintln(w, "         Xorbas 563 lost, 330.8 GB, 0.58 GB/block, 19 min")
}

func fmtSeries(xs []float64) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.0f", x)
	}
	return b.String()
}
