// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5) on the simulated substrate. Each driver returns
// typed results; bench_test.go and cmd/clustersim print them in the
// paper's row/series formats. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

const mb = 1 << 20

// EC2Config collects the knobs of the §5.2 Amazon EC2 reproduction. The
// defaults model 50 m1.small slaves: ~100 Mb/s NICs, two map slots, tens
// of seconds of MapReduce job overhead — values chosen so the baseline
// repair durations land in Fig 4c's tens-of-minutes regime (see
// EXPERIMENTS.md's calibration notes).
type EC2Config struct {
	Files       int
	Nodes       int
	NodeBps     float64
	BlockBytes  float64
	Seed        int64
	GapSec      float64 // idle time between failure events
	RepairSlots int
	// MRTrafficOverheadFactor adds job-machinery traffic (shuffle,
	// bookkeeping, speculative reads) proportional to decoder reads when
	// reporting Network Out, matching the paper's observation that
	// network traffic ≈ 2× HDFS bytes read (§5.2.2). The fluid simulation
	// itself moves only the real streams.
	MRTrafficOverheadFactor float64
}

// DefaultEC2 returns the §5.2 parameters with the 200-file load.
func DefaultEC2(files int) EC2Config {
	return EC2Config{
		Files:                   files,
		Nodes:                   50,
		NodeBps:                 12 * mb,
		BlockBytes:              64 * mb,
		Seed:                    1,
		GapSec:                  1800,
		RepairSlots:             8,
		MRTrafficOverheadFactor: 0.9,
	}
}

// EventResult is one failure event's row in Fig 4.
type EventResult struct {
	NodesKilled   int
	BlocksLost    int
	HDFSReadGB    float64
	NetworkOutGB  float64
	RepairMinutes float64
	LightRepairs  int
	HeavyRepairs  int
}

// EC2Result is a full §5.2 run of one cluster.
type EC2Result struct {
	Scheme string
	Files  int
	Events []EventResult
	// 5-minute bucket series for Fig 5 (GB and percent).
	NetOutSeriesGB   []float64
	DiskReadSeriesGB []float64
	CPUPercent       []float64
}

// TotalLost sums blocks lost across events.
func (r *EC2Result) TotalLost() int {
	n := 0
	for _, e := range r.Events {
		n += e.BlocksLost
	}
	return n
}

// RunEC2 executes the §5.2 failure sequence — four single, two triple and
// two double DataNode terminations — against a fresh cluster running the
// given scheme, and collects the Fig 4 per-event metrics plus the Fig 5
// time series.
func RunEC2(scheme core.Scheme, cfg EC2Config) (*EC2Result, error) {
	env, err := newEC2Env(scheme, cfg)
	if err != nil {
		return nil, err
	}
	eng, fs := env.eng, env.fs
	rng := rand.New(rand.NewSource(cfg.Seed + 77))

	res := &EC2Result{Scheme: scheme.Name(), Files: cfg.Files}
	for _, kills := range workload.EC2FailurePattern {
		at := eng.Now() + cfg.GapSec
		victims := pickVictims(fs, rng, kills)
		before := fs.Snapshot()
		fs.ResetRepairWindow()
		lost := 0
		eng.ScheduleAt(at, func() {
			for _, v := range victims {
				lost += fs.BlocksOn(v)
				fs.KillNode(v)
			}
		})
		eng.Run() // drain: all repairs for this event complete
		d := fs.Delta(before)
		res.Events = append(res.Events, EventResult{
			NodesKilled:   kills,
			BlocksLost:    lost,
			HDFSReadGB:    d.HDFSBytesRead / 1e9,
			NetworkOutGB:  (d.NetOutBytes + cfg.MRTrafficOverheadFactor*d.HDFSBytesRead) / 1e9,
			RepairMinutes: fs.RepairDuration() / 60,
			LightRepairs:  d.LightRepairs,
			HeavyRepairs:  d.HeavyRepairs,
		})
	}
	// Fig 5 series.
	for _, b := range env.cl.M.NetOut.Buckets() {
		res.NetOutSeriesGB = append(res.NetOutSeriesGB, b/1e9)
	}
	// Fold the reporting-level MR overhead into the traffic series too,
	// attributing it to the buckets where decoder reads happened.
	for i, b := range env.cl.M.DiskRead.Buckets() {
		res.DiskReadSeriesGB = append(res.DiskReadSeriesGB, b/1e9)
		if i < len(res.NetOutSeriesGB) {
			res.NetOutSeriesGB[i] += cfg.MRTrafficOverheadFactor * b / 1e9
		}
	}
	res.CPUPercent = env.cl.CPUUtilizationPercent(18)
	return res, nil
}

type ec2Env struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *hdfs.FS
}

// newEC2Env builds the cluster and loads the experiment's files.
func newEC2Env(scheme core.Scheme, cfg EC2Config) (*ec2Env, error) {
	if cfg.Files <= 0 {
		return nil, fmt.Errorf("experiments: need files")
	}
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: cfg.Nodes, Racks: 1,
		NodeOutBps: cfg.NodeBps, NodeInBps: cfg.NodeBps,
		BucketSec: 300,
	})
	if err != nil {
		return nil, err
	}
	fs, err := hdfs.New(cl, scheme, hdfs.Config{
		BlockSizeBytes: cfg.BlockBytes,
		SlotsPerNode:   2, RepairMaxParallel: cfg.RepairSlots,
		TaskLaunchSec: 10, FixerScanSec: 60,
		DeployedReads: true, DecodeCPUSecPerRead: 0.5,
		DegradedTimeoutSec: 15, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Files; i++ {
		if _, err := fs.AddFile(fmt.Sprintf("file-%04d", i), workload.EC2FileBlocks); err != nil {
			return nil, err
		}
	}
	return &ec2Env{eng: eng, cl: cl, fs: fs}, nil
}

// pickVictims selects live nodes storing at least one block, preferring a
// deterministic random draw (the paper terminated arbitrary DataNodes).
func pickVictims(fs *hdfs.FS, rng *rand.Rand, n int) []int {
	live := fs.Cl.LiveNodes()
	var candidates []int
	for _, nd := range live {
		if fs.BlocksOn(nd) > 0 {
			candidates = append(candidates, nd)
		}
	}
	if len(candidates) < n {
		candidates = live
	}
	perm := rng.Perm(len(candidates))
	victims := make([]int, 0, n)
	for _, i := range perm {
		victims = append(victims, candidates[i])
		if len(victims) == n {
			break
		}
	}
	return victims
}
