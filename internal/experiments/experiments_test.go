package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lrc"
)

// The §5.2 failure sequence: Xorbas reads 41–52% of RS's bytes and
// repairs faster on every event class — Fig 4's headline.
func TestEC2FailureSequenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	rs, err := RunEC2(core.NewRS104(), DefaultEC2(50))
	if err != nil {
		t.Fatal(err)
	}
	xo, err := RunEC2(core.NewXorbas(), DefaultEC2(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Events) != 8 || len(xo.Events) != 8 {
		t.Fatalf("want 8 events, got %d/%d", len(rs.Events), len(xo.Events))
	}
	var rsRead, xoRead float64
	for i := range rs.Events {
		a, b := rs.Events[i], xo.Events[i]
		if a.BlocksLost == 0 || b.BlocksLost == 0 {
			t.Fatalf("event %d lost no blocks", i)
		}
		rsRead += a.HDFSReadGB
		xoRead += b.HDFSReadGB
		if b.RepairMinutes >= a.RepairMinutes {
			t.Errorf("event %d: Xorbas repair %.1f min not faster than RS %.1f", i, b.RepairMinutes, a.RepairMinutes)
		}
		// Network-out ≈ 2× bytes read (§5.2.2).
		if ratio := a.NetworkOutGB / a.HDFSReadGB; ratio < 1.5 || ratio > 2.5 {
			t.Errorf("event %d: RS net/read ratio %.2f outside [1.5,2.5]", i, ratio)
		}
	}
	// Normalize per lost block before comparing (Xorbas loses ~16/14 more).
	perRS := rsRead / float64(rs.TotalLost())
	perXO := xoRead / float64(xo.TotalLost())
	if r := perXO / perRS; r < 0.30 || r > 0.60 {
		t.Errorf("per-block read ratio %.2f; paper band ≈0.41–0.52", r)
	}
	// All repairs in a single-node event are light for Xorbas.
	if xo.Events[0].HeavyRepairs != 0 {
		t.Errorf("single-node event used %d heavy repairs", xo.Events[0].HeavyRepairs)
	}
	if xo.Events[4].HeavyRepairs == 0 {
		t.Errorf("triple-node event should need some heavy repairs")
	}
}

func TestEC2Deterministic(t *testing.T) {
	a, err := RunEC2(core.NewXorbas(), DefaultEC2(30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEC2(core.NewXorbas(), DefaultEC2(30))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged between identical runs", i)
		}
	}
}

func TestEC2Validation(t *testing.T) {
	cfg := DefaultEC2(0)
	if _, err := RunEC2(core.NewXorbas(), cfg); err == nil {
		t.Fatal("0 files accepted")
	}
}

// Fig 6: the fitted read slope for RS must be roughly 13 blocks per lost
// block (deployed read set) and Xorbas roughly 5–6, preserving the
// paper's ≈2× separation.
func TestFig6Slopes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	base := DefaultEC2(0)
	rs, err := RunFig6(core.NewRS104(), []int{30, 60}, base)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := RunFig6(core.NewXorbas(), []int{30, 60}, base)
	if err != nil {
		t.Fatal(err)
	}
	if rs.BlocksReadPerLost < 10 || rs.BlocksReadPerLost > 14 {
		t.Errorf("RS slope %.1f blocks/lost outside [10,14]", rs.BlocksReadPerLost)
	}
	if xo.BlocksReadPerLost < 4.5 || xo.BlocksReadPerLost > 7 {
		t.Errorf("Xorbas slope %.1f blocks/lost outside [4.5,7]", xo.BlocksReadPerLost)
	}
	if r := xo.BlocksReadPerLost / rs.BlocksReadPerLost; r > 0.6 {
		t.Errorf("slope ratio %.2f: the 2× separation collapsed", r)
	}
	if rs.ReadFit.R2 < 0.9 {
		t.Errorf("RS read fit R²=%.3f: bytes read should be near-linear in blocks lost", rs.ReadFit.R2)
	}
	if len(rs.Points) != 16 {
		t.Errorf("expected 16 scatter points (2 sizes × 8 events), got %d", len(rs.Points))
	}
}

// Fig 7 / Table 2: degraded runs are slower; RS is hit harder than LRC;
// total reads rank all-avail < LRC < RS.
func TestWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	cfg := DefaultWorkload()
	base, err := RunWorkload(core.NewRS104(), false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunWorkload(core.NewRS104(), true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := RunWorkload(core.NewXorbas(), true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.DegradedTasks != 0 || base.MissingBlocks != 0 {
		t.Fatal("baseline run should have no losses")
	}
	if !(base.AvgMinutes < xo.AvgMinutes && xo.AvgMinutes < rs.AvgMinutes) {
		t.Errorf("avg minutes ordering broken: %.1f / %.1f / %.1f", base.AvgMinutes, xo.AvgMinutes, rs.AvgMinutes)
	}
	if !(base.TotalReadGB < xo.TotalReadGB && xo.TotalReadGB < rs.TotalReadGB) {
		t.Errorf("read ordering broken: %.1f / %.1f / %.1f", base.TotalReadGB, xo.TotalReadGB, rs.TotalReadGB)
	}
	// The baseline reads ≈ the 10 jobs' logical input (30 GB).
	logical := float64(cfg.Jobs*cfg.FileBlocks) * cfg.BlockBytes / 1e9
	if base.TotalReadGB < logical*0.95 || base.TotalReadGB > logical*1.15 {
		t.Errorf("baseline read %.1f GB, want ≈%.1f", base.TotalReadGB, logical)
	}
	// Missing ≈ 20% of required blocks.
	req := cfg.Files * cfg.FileBlocks
	if frac := float64(rs.MissingBlocks) / float64(req); frac < 0.18 || frac > 0.22 {
		t.Errorf("missing fraction %.2f", frac)
	}
	// Job staircases are sorted.
	for i := 1; i < len(rs.JobMinutes); i++ {
		if rs.JobMinutes[i] < rs.JobMinutes[i-1] {
			t.Fatal("job minutes not sorted")
		}
	}
}

// Table 3: Xorbas loses more blocks (extra storage) but reads under half
// the GB per block and finishes faster.
func TestFacebookShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation")
	}
	cfg := DefaultFacebook()
	cfg.Files = 800 // keep the test quick; distribution unchanged
	rs, err := RunFacebook(core.NewRS104(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := RunFacebook(core.NewXorbas(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xo.StoredBlocks <= rs.StoredBlocks {
		t.Error("Xorbas should store more blocks (local parities)")
	}
	if xo.GBPerBlock >= rs.GBPerBlock*0.65 {
		t.Errorf("GB/block: Xorbas %.3f vs RS %.3f — want < 0.65×", xo.GBPerBlock, rs.GBPerBlock)
	}
	if xo.RepairMinutes >= rs.RepairMinutes {
		t.Errorf("durations: Xorbas %.0f vs RS %.0f", xo.RepairMinutes, rs.RepairMinutes)
	}
	// Small files dominate: RS per-block reads must be well under the
	// full-stripe 13 (zero-padded stripes read fewer blocks).
	if perBlock := rs.GBPerBlock * 1e9 / cfg.BlockBytes; perBlock > 9 {
		t.Errorf("RS reads %.1f blocks per lost block; small files should cap this below 9", perBlock)
	}
}

// Report renderers produce the paper's row structure without error.
func TestReportRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "day 31") {
		t.Error("Fig1 missing days")
	}
	rs, _ := RunEC2(core.NewRS104(), DefaultEC2(20))
	xo, _ := RunEC2(core.NewXorbas(), DefaultEC2(20))
	buf.Reset()
	Fig4(&buf, rs, xo)
	Fig5(&buf, rs, xo)
	if !strings.Contains(buf.String(), "Fig 4") || !strings.Contains(buf.String(), "Fig 5") {
		t.Error("figure headers missing")
	}
}

// A month of the Fig 1 failure regime: the cluster survives (no data
// loss), Xorbas repairs are overwhelmingly light, and repair traffic is
// roughly half of RS's.
func TestTraceDrivenMonth(t *testing.T) {
	if testing.Short() {
		t.Skip("month-long simulation")
	}
	cfg := DefaultTraceDriven()
	rs, err := RunTraceDriven(core.NewRS104(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := RunTraceDriven(core.NewXorbas(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*TraceResult{rs, xo} {
		if r.NodesFailed < 5 {
			t.Fatalf("%s: only %d failures in a month; trace miswired", r.Scheme, r.NodesFailed)
		}
		if r.DataLossBlocks != 0 {
			t.Errorf("%s: %d blocks lost — tolerable failure regime should not lose data", r.Scheme, r.DataLossBlocks)
		}
		if r.BlocksRepaired == 0 {
			t.Errorf("%s: no repairs ran", r.Scheme)
		}
	}
	if rs.LightRepairs != 0 {
		t.Error("RS cannot repair lightly")
	}
	if frac := float64(xo.LightRepairs) / float64(xo.BlocksRepaired); frac < 0.9 {
		t.Errorf("Xorbas light fraction %.2f; single-node failures dominate so this should be ≥0.9", frac)
	}
	perRS := rs.RepairTrafficGB / float64(rs.BlocksRepaired)
	perXO := xo.RepairTrafficGB / float64(xo.BlocksRepaired)
	if ratio := perXO / perRS; ratio < 0.3 || ratio > 0.6 {
		t.Errorf("per-repair traffic ratio %.2f outside the ~2x-saving band", ratio)
	}
}

// The pyramid-code baseline (§6) runs the full cluster experiment as a
// core.Scheme: per-lost-block repair traffic sits strictly between the
// LRC's and RS's, because its data blocks repair locally but its global
// parities decode heavily.
func TestPyramidClusterBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	pyr, err := lrc.NewPyramid(lrc.Xorbas)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEC2(40)
	run := func(s core.Scheme) float64 {
		r, err := RunEC2(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var read float64
		for _, e := range r.Events {
			read += e.HDFSReadGB
		}
		return read / float64(r.TotalLost())
	}
	perXO := run(core.NewXorbas())
	perPyr := run(core.NewLRC(pyr))
	perRS := run(core.NewRS104())
	if !(perXO < perPyr && perPyr < perRS) {
		t.Fatalf("per-block read GB ordering broken: LRC %.3f, pyramid %.3f, RS %.3f", perXO, perPyr, perRS)
	}
}
