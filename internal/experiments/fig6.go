package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// ScatterPoint is one failure event in Fig 6's scatter plots.
type ScatterPoint struct {
	BlocksLost    int
	HDFSReadGB    float64
	NetworkOutGB  float64
	RepairMinutes float64
}

// Fig6Result aggregates the three EC2 experiments (50/100/200 files) for
// one scheme, with the least-squares fits the paper draws.
type Fig6Result struct {
	Scheme string
	Points []ScatterPoint
	// Fits of each metric against blocks lost.
	ReadFit, TrafficFit, DurationFit stats.Fit
	// BlocksReadPerLost is the headline slope in block units: the paper
	// estimates 11.5 for HDFS-RS and 5.8 for HDFS-Xorbas (§5.2.1).
	BlocksReadPerLost float64
}

// RunFig6 runs the 50-, 100- and 200-file experiments for a scheme and
// fits the Fig 6 lines.
func RunFig6(scheme core.Scheme, sizes []int, base EC2Config) (*Fig6Result, error) {
	if len(sizes) == 0 {
		sizes = []int{50, 100, 200}
	}
	res := &Fig6Result{Scheme: scheme.Name()}
	for i, files := range sizes {
		cfg := base
		cfg.Files = files
		cfg.Seed = base.Seed + int64(i)*101
		run, err := RunEC2(scheme, cfg)
		if err != nil {
			return nil, err
		}
		for _, e := range run.Events {
			res.Points = append(res.Points, ScatterPoint{
				BlocksLost:    e.BlocksLost,
				HDFSReadGB:    e.HDFSReadGB,
				NetworkOutGB:  e.NetworkOutGB,
				RepairMinutes: e.RepairMinutes,
			})
		}
	}
	var x, read, traffic, dur []float64
	for _, p := range res.Points {
		x = append(x, float64(p.BlocksLost))
		read = append(read, p.HDFSReadGB)
		traffic = append(traffic, p.NetworkOutGB)
		dur = append(dur, p.RepairMinutes)
	}
	res.ReadFit = stats.LeastSquares(x, read)
	res.TrafficFit = stats.LeastSquares(x, traffic)
	res.DurationFit = stats.LeastSquares(x, dur)
	res.BlocksReadPerLost = res.ReadFit.Slope * 1e9 / base.BlockBytes
	return res, nil
}
