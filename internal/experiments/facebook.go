package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FacebookConfig parameterizes the §5.3 test-cluster experiment: 35
// nodes, 3262 files (≈2.7 TB logical) with 256 MB blocks and the
// production small-file distribution (94% 3-block files), one random
// DataNode termination.
type FacebookConfig struct {
	Nodes      int
	Files      int
	BlockBytes float64
	NodeBps    float64
	Seed       int64
}

// DefaultFacebook returns the §5.3 parameters.
func DefaultFacebook() FacebookConfig {
	return FacebookConfig{
		Nodes: 35, Files: 3262,
		BlockBytes: 256 * mb, NodeBps: 60 * mb,
		Seed: 9,
	}
}

// FacebookResult is one scheme's Table 3 row.
type FacebookResult struct {
	Scheme        string
	BlocksLost    int
	HDFSReadGB    float64
	GBPerBlock    float64
	RepairMinutes float64
	StoredBlocks  int
	LogicalTB     float64
}

// RunFacebook deploys the scheme on the Facebook test-cluster workload,
// terminates one random DataNode, and reports the Table 3 metrics.
func RunFacebook(scheme core.Scheme, cfg FacebookConfig) (*FacebookResult, error) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: cfg.Nodes, Racks: 1,
		NodeOutBps: cfg.NodeBps, NodeInBps: cfg.NodeBps,
		BucketSec: 300,
	})
	if err != nil {
		return nil, err
	}
	fs, err := hdfs.New(cl, scheme, hdfs.Config{
		BlockSizeBytes: cfg.BlockBytes,
		SlotsPerNode:   2, RepairMaxParallel: 16,
		TaskLaunchSec: 10, FixerScanSec: 60,
		DeployedReads: true, DecodeCPUSecPerRead: 0.5,
		DegradedTimeoutSec: 15, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := workload.FacebookFileBlocks(rng, cfg.Files)
	dataBlocks := 0
	for i, blocks := range sizes {
		if _, err := fs.AddFile(fmt.Sprintf("fb-%05d", i), blocks); err != nil {
			return nil, err
		}
		dataBlocks += blocks
	}

	victim := pickVictims(fs, rng, 1)[0]
	lost := fs.BlocksOn(victim)
	before := fs.Snapshot()
	fs.ResetRepairWindow()
	fs.KillNode(victim)
	eng.Run()
	d := fs.Delta(before)

	res := &FacebookResult{
		Scheme:        scheme.Name(),
		BlocksLost:    lost,
		HDFSReadGB:    d.HDFSBytesRead / 1e9,
		RepairMinutes: fs.RepairDuration() / 60,
		StoredBlocks:  fs.TotalBlocksStored(),
		LogicalTB:     float64(dataBlocks) * cfg.BlockBytes / 1e12,
	}
	if lost > 0 {
		res.GBPerBlock = res.HDFSReadGB / float64(lost)
	}
	return res, nil
}
