package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(300)
	ts.Add(0, 1)
	ts.Add(299, 2)
	ts.Add(300, 4)
	ts.Add(1000, 8)
	if ts.Len() != 4 {
		t.Fatalf("len %d want 4", ts.Len())
	}
	if ts.At(0) != 3 || ts.At(1) != 4 || ts.At(2) != 0 || ts.At(3) != 8 {
		t.Fatalf("buckets %v", ts.Buckets())
	}
	if ts.Total() != 15 {
		t.Fatalf("total %f", ts.Total())
	}
	if ts.At(-1) != 0 || ts.At(99) != 0 {
		t.Fatal("out-of-range At should be 0")
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(-5, 7)
	if ts.At(0) != 7 {
		t.Fatal("negative time should clamp to bucket 0")
	}
}

func TestNewTimeSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeSeries(0)
}

func TestLeastSquaresExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LeastSquares(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-3) > 1e-12 {
		t.Fatalf("fit %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 %f want 1", f.R2)
	}
}

func TestLeastSquaresDegenerate(t *testing.T) {
	if f := LeastSquares([]float64{1}, []float64{2}); f.Slope != 0 {
		t.Fatal("single point should give zero fit")
	}
	// All x equal: vertical line, no fit.
	if f := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3}); f.Slope != 0 {
		t.Fatal("vertical data should give zero fit")
	}
}

func TestLeastSquaresMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeastSquares([]float64{1}, []float64{1, 2})
}

// Property: fitting y = a·x + b recovers a and b for random a, b.
func TestLeastSquaresProperty(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a*x[i] + b
		}
		f := LeastSquares(x, y)
		return math.Abs(f.Slope-a) < 1e-6*(1+math.Abs(a)) && math.Abs(f.Intercept-b) < 1e-6*(1+math.Abs(b))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Min != 2 || s.Max != 6 || s.Mean != 4 {
		t.Fatalf("summary %+v", s)
	}
	want := math.Sqrt((4 + 0 + 4) / 3.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %f want %f", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestGBFormatting(t *testing.T) {
	if GB(2.5e9) != 2.5 {
		t.Fatal("GB conversion wrong")
	}
	if FmtGB(1.23e9) != "1.23 GB" {
		t.Fatalf("FmtGB %q", FmtGB(1.23e9))
	}
}
