// Package stats provides the measurement plumbing of the evaluation
// (Section 5): bucketed time series at the paper's 5-minute CloudWatch
// resolution (Fig. 5), least-squares fits for the bytes-read-per-block
// slopes (Fig. 6), and small summaries.
package stats

import (
	"fmt"
	"math"
)

// TimeSeries accumulates values into fixed-width time buckets.
type TimeSeries struct {
	BucketSec float64
	buckets   []float64
}

// NewTimeSeries creates a series with the given bucket width in seconds
// (300 for the paper's 5-minute resolution).
func NewTimeSeries(bucketSec float64) *TimeSeries {
	if bucketSec <= 0 {
		panic("stats: bucket width must be positive")
	}
	return &TimeSeries{BucketSec: bucketSec}
}

// Add accumulates v at time t (seconds).
func (ts *TimeSeries) Add(t, v float64) {
	if t < 0 {
		t = 0
	}
	i := int(t / ts.BucketSec)
	for len(ts.buckets) <= i {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[i] += v
}

// Len returns the number of buckets.
func (ts *TimeSeries) Len() int { return len(ts.buckets) }

// At returns the accumulated value of bucket i (0 beyond the end).
func (ts *TimeSeries) At(i int) float64 {
	if i < 0 || i >= len(ts.buckets) {
		return 0
	}
	return ts.buckets[i]
}

// Buckets returns a copy of the accumulated values.
func (ts *TimeSeries) Buckets() []float64 {
	return append([]float64(nil), ts.buckets...)
}

// Total returns the sum over all buckets.
func (ts *TimeSeries) Total() float64 {
	var s float64
	for _, v := range ts.buckets {
		s += v
	}
	return s
}

// Fit is a least-squares line y = Slope·x + Intercept.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LeastSquares fits a line through the points; it panics on length
// mismatch and returns a zero fit for fewer than 2 points.
func LeastSquares(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("stats: LeastSquares length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² = 1 − SSres/SStot
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		p := slope*x[i] + intercept
		ssRes += (y[i] - p) * (y[i] - p)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// Summary is min/mean/max/stddev of a sample.
type Summary struct {
	N                   int
	Min, Mean, Max, Std float64
}

// Summarize computes a Summary; zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, v := range xs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		ss += (v - s.Mean) * (v - s.Mean)
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// GB formats bytes as gigabytes (decimal GB like the paper's plots).
func GB(bytes float64) float64 { return bytes / 1e9 }

// FmtGB renders bytes as a "12.3 GB" string.
func FmtGB(bytes float64) string { return fmt.Sprintf("%.2f GB", GB(bytes)) }
