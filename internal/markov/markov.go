// Package markov implements the reliability analysis of Section 4: a
// continuous-time Markov chain per stripe (Fig. 3) whose states count
// lost blocks, solved exactly for the mean time to data loss (MTTDL).
//
// States 0 … m−1 are transient (i blocks lost, still recoverable); state
// m = FailuresTolerated+1 is absorbing (data loss). Forward rates follow
// the paper: with i blocks lost, each of the n−i surviving blocks sits on
// an independently failing node, so λ_i = (n−i)·λ. Backward (repair)
// rates derive from the expected bytes a repair downloads: the scheme's
// per-state expected read count (computed by exact enumeration of erasure
// patterns against the code's repair planner — the paper's "we determine
// the probabilities for invoking light or heavy decoder and thus compute
// the expected number of blocks to be downloaded"), the block size B,
// and the cross-rack bandwidth γ, plus an optional per-stream overhead
// that models MapReduce repair-job dispatch (see EXPERIMENTS.md's
// calibration discussion).
//
// The per-stripe MTTDL is normalized by the stripe count C/(nB), Eq. (3).
package markov

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Params holds the cluster model parameters of Section 4.
type Params struct {
	// NodeMTTFYears is 1/λ in years (4 in the paper).
	NodeMTTFYears float64
	// BlockBytes is the block size B (256 MB in the paper).
	BlockBytes float64
	// BandwidthBitsPerSec is the cross-rack repair bandwidth γ
	// (1 Gb/s in the paper).
	BandwidthBitsPerSec float64
	// TotalDataBytes is the cluster's logical data C (30 PB).
	TotalDataBytes float64
	// PerStreamOverheadSec adds a fixed latency per block streamed during
	// coded repairs, modelling MapReduce repair-job dispatch and stream
	// setup. Replication repairs use the HDFS-native re-replication
	// pipeline and are exempt. Zero gives the pure bandwidth model.
	PerStreamOverheadSec float64
	// ParallelRepairs scales the repair rate at each state by the
	// expected number of lost blocks with pairwise-disjoint minimal read
	// sets: local repairs of losses in different LRC groups stream from
	// disjoint racks and proceed concurrently, while any two RS repairs
	// contend for the same k source blocks (so RS and replication are
	// unaffected by construction).
	ParallelRepairs bool
}

// FacebookParams are the Section 4 values: N=3000 nodes, C=30 PB,
// 1/λ = 4 years, B = 256 MB, γ = 1 Gb/s, no stream overhead.
func FacebookParams() Params {
	return Params{
		NodeMTTFYears:       4,
		BlockBytes:          256 << 20,
		BandwidthBitsPerSec: 1e9,
		TotalDataBytes:      30e15,
		ParallelRepairs:     true,
	}
}

// CalibratedParams are FacebookParams plus the per-stream overhead fitted
// so the RS(10,4) row reproduces the paper's Table 1 MTTDL (see
// Calibrate and EXPERIMENTS.md). The fitted value is ≈19 s per stream,
// consistent with the tens-of-minutes repair durations of Fig. 4c.
func CalibratedParams() Params {
	p := FacebookParams()
	p.PerStreamOverheadSec = CalibrateOverhead(core.NewRS104(), p, 3.3118e13)
	return p
}

const (
	secondsPerYear = 365 * 24 * 3600.0
	secondsPerDay  = 24 * 3600.0
)

// Chain is the per-stripe birth-death CTMC of Fig. 3.
type Chain struct {
	// Lambda[i] is the block-loss rate out of transient state i (per sec).
	Lambda []float64
	// Rho[i] is the repair rate from state i back to i−1 (per sec);
	// Rho[0] is unused.
	Rho []float64
}

// States returns the number of transient states (absorption occurs from
// the last one).
func (c *Chain) States() int { return len(c.Lambda) }

// BuildChain constructs the chain for a scheme under the given
// parameters. The per-state repair statistics come from exhaustive
// erasure-pattern enumeration (core.RepairStats).
func BuildChain(s core.Scheme, p Params) (*Chain, error) {
	return buildChain(s, p, schemeStats(s))
}

// schemeStats enumerates repair statistics for every transient state once;
// the enumeration is the expensive part, so calibration reuses it.
func schemeStats(s core.Scheme) []core.RepairStatsResult {
	m := s.FailuresTolerated() + 1
	stats := make([]core.RepairStatsResult, m)
	for i := 1; i < m; i++ {
		stats[i] = core.RepairStats(s, i)
	}
	return stats
}

func buildChain(s core.Scheme, p Params, stats []core.RepairStatsResult) (*Chain, error) {
	if p.NodeMTTFYears <= 0 || p.BlockBytes <= 0 || p.BandwidthBitsPerSec <= 0 {
		return nil, fmt.Errorf("markov: non-positive parameters")
	}
	lambda := 1 / (p.NodeMTTFYears * secondsPerYear)
	n := s.Slots()
	m := s.FailuresTolerated() + 1 // absorbing state index
	ch := &Chain{Lambda: make([]float64, m), Rho: make([]float64, m)}
	blockSec := p.BlockBytes * 8 / p.BandwidthBitsPerSec
	_, isRep := s.(core.Replication)
	for i := 0; i < m; i++ {
		ch.Lambda[i] = float64(n-i) * lambda
		if i == 0 {
			continue
		}
		st := stats[i]
		if st.AvgReads <= 0 {
			return nil, fmt.Errorf("markov: scheme %s has no repair path at state %d", s.Name(), i)
		}
		repairSec := st.AvgReads * blockSec
		if !isRep {
			repairSec += st.AvgReads * p.PerStreamOverheadSec
		}
		rate := 1 / repairSec
		if p.ParallelRepairs && st.AvgParallel > 1 {
			rate *= st.AvgParallel
		}
		ch.Rho[i] = rate
	}
	return ch, nil
}

// AbsorptionTime solves the chain exactly for the expected time from
// state 0 to absorption. First-step analysis gives
//
//	t_i = 1/σ_i + (λ_i/σ_i)·t_{i+1} + (ρ_i/σ_i)·t_{i−1},  σ_i = λ_i + ρ_i,
//
// with t_m = 0. Writing t_i = A_i + B_i·t_{i+1} and eliminating the
// backward terms yields B_i = 1 identically (den_i = σ_i − ρ_i·B_{i−1}
// collapses to λ_i), so the solution is the all-positive — hence
// numerically stable, no cancellation even when ρ/λ ~ 10⁶ — recursion
//
//	t_0 = Σ_{i=0}^{m−1} A_i,  A_0 = 1/λ_0,  A_i = (1 + ρ_i·A_{i−1})/λ_i.
func (c *Chain) AbsorptionTime() float64 {
	m := c.States()
	a := 1 / c.Lambda[0]
	t := a
	for i := 1; i < m; i++ {
		a = (1 + c.Rho[i]*a) / c.Lambda[i]
		t += a
	}
	return t
}

// Result is one scheme's Table 1 row.
type Result struct {
	Scheme          string
	StorageOverhead float64 // e.g. 2.0, 0.4, 0.6
	RepairTraffic   float64 // blocks read per single-block repair (1, 10–13, 5)
	MTTDLStripeSec  float64
	MTTDLDays       float64 // system MTTDL, Eq. (3), in days
}

// MTTDL computes the system MTTDL for a scheme: the per-stripe absorption
// time divided by the stripe count C/(nB), Eq. (3).
func MTTDL(s core.Scheme, p Params) (Result, error) {
	ch, err := BuildChain(s, p)
	if err != nil {
		return Result{}, err
	}
	stripeSec := ch.AbsorptionTime()
	stripeBytes := float64(s.Slots()) * p.BlockBytes
	numStripes := p.TotalDataBytes / stripeBytes
	reads, _ := s.ExpectedRepairReads(1)
	return Result{
		Scheme:          s.Name(),
		StorageOverhead: s.StorageOverhead(),
		RepairTraffic:   reads,
		MTTDLStripeSec:  stripeSec,
		MTTDLDays:       stripeSec / numStripes / secondsPerDay,
	}, nil
}

// Table1 computes the paper's Table 1 for the three schemes under the
// given parameters.
func Table1(p Params) ([]Result, error) {
	rep, err := core.NewReplication(3)
	if err != nil {
		return nil, err
	}
	schemes := []core.Scheme{rep, core.NewRS104(), core.NewXorbas()}
	out := make([]Result, 0, len(schemes))
	for _, s := range schemes {
		r, err := MTTDL(s, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CalibrateOverhead fits PerStreamOverheadSec so the scheme's system
// MTTDL matches target days, by bisection. MTTDL decreases monotonically
// in the overhead (slower repairs → lower reliability).
func CalibrateOverhead(s core.Scheme, p Params, targetDays float64) float64 {
	lo, hi := 0.0, 3600.0
	stats := schemeStats(s)
	stripes := p.TotalDataBytes / (float64(s.Slots()) * p.BlockBytes)
	mttdl := func(ov float64) float64 {
		q := p
		q.PerStreamOverheadSec = ov
		ch, err := buildChain(s, q, stats)
		if err != nil {
			return math.NaN()
		}
		return ch.AbsorptionTime() / stripes / secondsPerDay
	}
	if mttdl(lo) < targetDays {
		return 0 // already below target with no overhead; nothing to fit
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mttdl(mid) > targetDays {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
