package markov

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Availability analysis (§4's closing discussion): "for either RS or
// LRC, a job requesting a lost block must wait for the completion of the
// repair job. Since LRCs complete these jobs faster, they will have
// higher availability due to these faster degraded reads."
//
// For the absorbing birth-death chain we compute the expected total time
// spent in each transient state before data loss (the fundamental-matrix
// row of state 0) and derive the fraction of a stripe's lifetime during
// which at least one block is missing — the window in which reads of the
// affected blocks are degraded.

// SojournTimes returns T_j, the expected total time spent in transient
// state j (j blocks lost) before absorption, starting from state 0. The
// sum of T_j is AbsorptionTime.
//
// Derivation (stable closed form — a fundamental-matrix solve cancels
// catastrophically at ρ/λ ~ 10⁶): absorption happens above every
// transient state, so each state j is visited at least once and the
// expected visit count is V_j = 1/(q_j·γ_{j+1}), where q_j = λ_j/σ_j is
// the up-step probability and γ_{j+1} is the gambler's-ruin escape
// probability of reaching the absorbing state m from j+1 before falling
// back to j:
//
//	γ_{j+1} = 1 / (1 + Σ_{i=j+1}^{m−1} Π_{l=j+1}^{i} ρ_l/λ_l).
//
// With mean sojourn 1/σ_j per visit, T_j = V_j/σ_j = (1/λ_j)·(1/γ_{j+1})
// — a sum of positive terms only.
func (c *Chain) SojournTimes() []float64 {
	m := c.States()
	t := make([]float64, m)
	for j := 0; j < m; j++ {
		sum, prod := 1.0, 1.0
		for i := j + 1; i < m; i++ {
			prod *= c.Rho[i] / c.Lambda[i]
			sum += prod
		}
		t[j] = sum / c.Lambda[j]
	}
	return t
}

// AvailabilityResult summarizes the degraded window of one scheme.
type AvailabilityResult struct {
	Scheme string
	// DegradedFraction is the share of a stripe's lifetime with ≥1 block
	// missing (reads of those blocks stall on reconstruction).
	DegradedFraction float64
	// Nines is the availability expressed as −log10(DegradedFraction).
	Nines float64
}

// Availability computes the degraded-time fraction for a scheme under
// the model parameters.
func Availability(s core.Scheme, p Params) (AvailabilityResult, error) {
	ch, err := BuildChain(s, p)
	if err != nil {
		return AvailabilityResult{}, err
	}
	t := ch.SojournTimes()
	var total, degraded float64
	for i, ti := range t {
		total += ti
		if i > 0 {
			degraded += ti
		}
	}
	if total <= 0 {
		return AvailabilityResult{}, fmt.Errorf("markov: degenerate chain")
	}
	frac := degraded / total
	nines := 0.0
	if frac > 0 {
		nines = -math.Log10(frac)
	}
	return AvailabilityResult{Scheme: s.Name(), DegradedFraction: frac, Nines: nines}, nil
}
