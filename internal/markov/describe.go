package markov

import (
	"fmt"
	"strings"
)

// Describe renders the chain in the style of Fig. 3: the transient
// states with their forward (failure) and backward (repair) rates, plus
// the absorbing data-loss state.
func (c *Chain) Describe() string {
	var b strings.Builder
	m := c.States()
	fmt.Fprintf(&b, "Markov chain: states 0..%d transient (blocks lost), state %d = data loss\n", m-1, m)
	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "  %d -> %d  at λ%d = %.3e /s", i, i+1, i, c.Lambda[i])
		if i > 0 {
			fmt.Fprintf(&b, "   |   %d -> %d  at ρ%d = %.3e /s (repair)", i, i-1, i, c.Rho[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
