package markov

import (
	"math"
	"testing"

	"repro/internal/core"
)

// Sojourn times must sum to the absorption time (they partition it).
func TestSojournTimesSumToAbsorption(t *testing.T) {
	for _, s := range []core.Scheme{core.NewRS104(), core.NewXorbas()} {
		ch, err := BuildChain(s, FacebookParams())
		if err != nil {
			t.Fatal(err)
		}
		ts := ch.SojournTimes()
		var sum float64
		for _, v := range ts {
			sum += v
		}
		abs := ch.AbsorptionTime()
		if math.Abs(sum-abs)/abs > 1e-9 {
			t.Fatalf("%s: sojourn sum %e != absorption %e", s.Name(), sum, abs)
		}
		// State 0 dominates: failures are rare relative to repairs.
		if ts[0] < 0.99*abs {
			t.Fatalf("%s: state-0 fraction %f suspiciously low", s.Name(), ts[0]/abs)
		}
		for i, v := range ts {
			if v <= 0 {
				t.Fatalf("%s: sojourn[%d] = %e not positive", s.Name(), i, v)
			}
		}
	}
}

// Analytic cross-check on a 2-state chain: T_0 = (1+ρ/λ1)/λ0, T_1 = 1/λ1
// (each visit to 1 lasts 1/(λ1+ρ), expected visits (λ1+ρ)/λ1).
func TestSojournTimesClosedForm(t *testing.T) {
	lam0, lam1, rho := 2.0, 3.0, 5.0
	ch := &Chain{Lambda: []float64{lam0, lam1}, Rho: []float64{0, rho}}
	ts := ch.SojournTimes()
	wantT1 := 1 / lam1
	wantT0 := (1 + rho/lam1) / lam0
	if math.Abs(ts[1]-wantT1) > 1e-12 || math.Abs(ts[0]-wantT0) > 1e-12 {
		t.Fatalf("sojourns %v want [%f %f]", ts, wantT0, wantT1)
	}
}

// §4: the LRC's faster repairs give it a smaller degraded-time fraction
// than RS — higher availability.
func TestAvailabilityOrdering(t *testing.T) {
	p := FacebookParams()
	rs, err := Availability(core.NewRS104(), p)
	if err != nil {
		t.Fatal(err)
	}
	xo, err := Availability(core.NewXorbas(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !(xo.DegradedFraction < rs.DegradedFraction) {
		t.Fatalf("LRC degraded fraction %e not below RS %e", xo.DegradedFraction, rs.DegradedFraction)
	}
	if xo.Nines <= rs.Nines {
		t.Fatalf("LRC nines %.2f not above RS %.2f", xo.Nines, rs.Nines)
	}
	// Both should be rare events: at least 4 nines of block availability.
	if rs.Nines < 4 {
		t.Fatalf("RS availability %.2f nines implausibly low", rs.Nines)
	}
	// Roughly the repair-time ratio (13/5 blocks): 2–3×.
	ratio := rs.DegradedFraction / xo.DegradedFraction
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("degraded-fraction ratio %.2f outside [1.5,6]", ratio)
	}
}

func TestAvailabilityReplication(t *testing.T) {
	rep, _ := core.NewReplication(3)
	r, err := Availability(rep, FacebookParams())
	if err != nil {
		t.Fatal(err)
	}
	// Replication repairs single blocks fastest of all, so its degraded
	// window is the smallest (and, as §4 notes, reads are never actually
	// blocked — another replica serves immediately).
	xo, _ := Availability(core.NewXorbas(), FacebookParams())
	if r.DegradedFraction >= xo.DegradedFraction {
		t.Fatalf("replication degraded %e not below LRC %e", r.DegradedFraction, xo.DegradedFraction)
	}
}
