package markov

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFacebookParams(t *testing.T) {
	p := FacebookParams()
	if p.NodeMTTFYears != 4 || p.BlockBytes != 256<<20 || p.BandwidthBitsPerSec != 1e9 || p.TotalDataBytes != 30e15 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestBuildChainShape(t *testing.T) {
	rep, _ := core.NewReplication(3)
	p := FacebookParams()
	ch, err := BuildChain(rep, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3 for replication: 3 transient states (0,1,2), absorb at 3.
	if ch.States() != 3 {
		t.Fatalf("replication states %d want 3", ch.States())
	}
	// λ_i = (3−i)λ decreasing.
	if !(ch.Lambda[0] > ch.Lambda[1] && ch.Lambda[1] > ch.Lambda[2]) {
		t.Fatal("lambda should decrease with state")
	}
	lambda := 1 / (4 * secondsPerYear)
	if math.Abs(ch.Lambda[0]-3*lambda)/(3*lambda) > 1e-12 {
		t.Fatalf("lambda0 = %e want %e", ch.Lambda[0], 3*lambda)
	}
	// ρ = γ/B for replication: one 256 MB block at 1 Gb/s ≈ 2.147 s.
	want := 1 / (256 << 20 * 8 / 1e9)
	if math.Abs(ch.Rho[1]-want)/want > 1e-12 {
		t.Fatalf("rho1 = %e want %e", ch.Rho[1], want)
	}

	// Coded schemes: 5 transient states (Fig. 3).
	for _, s := range []core.Scheme{core.NewRS104(), core.NewXorbas()} {
		ch, err := BuildChain(s, p)
		if err != nil {
			t.Fatal(err)
		}
		if ch.States() != 5 {
			t.Fatalf("%s states %d want 5", s.Name(), ch.States())
		}
	}
}

func TestBuildChainValidation(t *testing.T) {
	rep, _ := core.NewReplication(3)
	bad := FacebookParams()
	bad.BlockBytes = 0
	if _, err := BuildChain(rep, bad); err == nil {
		t.Fatal("zero block size accepted")
	}
}

// Closed-form check: for a 2-transient-state chain (tolerates 1 failure),
// absorption time is t0 = 1/λ0 + (1 + ρ1/λ0)/λ1, matching the recursion.
func TestAbsorptionTimeClosedForm(t *testing.T) {
	ch := &Chain{Lambda: []float64{2, 3}, Rho: []float64{0, 5}}
	want := 1/2.0 + (1+5.0/2)/3
	if got := ch.AbsorptionTime(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %f want %f", got, want)
	}
}

// With no repairs the chain is a pure death process: t0 = Σ 1/λ_i.
func TestAbsorptionTimeNoRepairs(t *testing.T) {
	ch := &Chain{Lambda: []float64{1, 2, 4}, Rho: []float64{0, 0, 0}}
	want := 1.0 + 0.5 + 0.25
	if got := ch.AbsorptionTime(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %f want %f", got, want)
	}
}

// Monotonicity: faster repairs (larger ρ) must increase absorption time.
func TestAbsorptionMonotoneInRepairRate(t *testing.T) {
	base := &Chain{Lambda: []float64{1e-7, 1e-7, 1e-7}, Rho: []float64{0, 0.01, 0.01}}
	fast := &Chain{Lambda: []float64{1e-7, 1e-7, 1e-7}, Rho: []float64{0, 0.02, 0.02}}
	if fast.AbsorptionTime() <= base.AbsorptionTime() {
		t.Fatal("faster repair should raise MTTDL")
	}
}

// Numerical stability: ρ/λ ~ 10^6 over five states must not lose the
// leading terms (this chain broke a naive elimination with ~10^6×
// error amplification per state).
func TestAbsorptionTimeStability(t *testing.T) {
	lambda := []float64{1.11e-7, 1.03e-7, 9.51e-8, 8.72e-8, 7.93e-8}
	rho := []float64{0, 0.0358, 0.0388, 0.0423, 0.0466}
	ch := &Chain{Lambda: lambda, Rho: rho}
	got := ch.AbsorptionTime()
	// Independent computation of Σ A_i with Kahan-style verification.
	a := 1 / lambda[0]
	want := a
	for i := 1; i < 5; i++ {
		a = (1 + rho[i]*a) / lambda[i]
		want += a
	}
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("got %e want %e", got, want)
	}
	if got < 1e29 {
		t.Fatalf("absorption %e suspiciously low: numerical instability", got)
	}
}

// Table 1 reproduction, physical model: the replication row must land
// within 10% of the paper's 2.3079e10 days with zero tuning (the model
// anchor), and the ordering replication ≪ RS < LRC must hold with RS at
// least 3 orders above replication and LRC above RS.
func TestTable1PhysicalShape(t *testing.T) {
	rows, err := Table1(FacebookParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	rep, rs, lrcRow := rows[0], rows[1], rows[2]
	if math.Abs(rep.MTTDLDays-2.3079e10)/2.3079e10 > 0.10 {
		t.Errorf("replication MTTDL %.4e days; paper 2.3079e10 (anchor must match within 10%%)", rep.MTTDLDays)
	}
	if rs.MTTDLDays < rep.MTTDLDays*1e3 {
		t.Errorf("RS %.3e not ≫ replication %.3e", rs.MTTDLDays, rep.MTTDLDays)
	}
	if lrcRow.MTTDLDays < rs.MTTDLDays*2 {
		t.Errorf("LRC %.3e not above RS %.3e", lrcRow.MTTDLDays, rs.MTTDLDays)
	}
	// Static columns.
	if rep.StorageOverhead != 2.0 || rs.StorageOverhead != 0.4 || lrcRow.StorageOverhead != 0.6 {
		t.Error("storage overhead column wrong")
	}
	if rep.RepairTraffic != 1 || lrcRow.RepairTraffic != 5 {
		t.Error("repair traffic column wrong")
	}
	if !(rs.RepairTraffic >= 10 && rs.RepairTraffic <= 13) {
		t.Errorf("RS repair traffic %f outside [10,13]", rs.RepairTraffic)
	}
}

// Calibrated model: fitting the per-stream overhead on the RS row
// reproduces the paper's RS MTTDL exactly and keeps LRC roughly an order
// of magnitude above (paper: 1.5 orders; see EXPERIMENTS.md).
func TestTable1Calibrated(t *testing.T) {
	p := CalibratedParams()
	if p.PerStreamOverheadSec <= 0 || p.PerStreamOverheadSec > 120 {
		t.Fatalf("calibrated overhead %f s implausible", p.PerStreamOverheadSec)
	}
	rows, err := Table1(p)
	if err != nil {
		t.Fatal(err)
	}
	rs, lrcRow := rows[1], rows[2]
	if math.Abs(rs.MTTDLDays-3.3118e13)/3.3118e13 > 0.01 {
		t.Errorf("calibrated RS %.4e days, want 3.3118e13", rs.MTTDLDays)
	}
	ratio := lrcRow.MTTDLDays / rs.MTTDLDays
	if ratio < 5 || ratio > 100 {
		t.Errorf("LRC/RS MTTDL ratio %.1f outside [5,100] (paper: 36.8)", ratio)
	}
}

func TestCalibrateOverheadBelowTarget(t *testing.T) {
	// If the target exceeds the zero-overhead MTTDL, calibration returns 0.
	p := FacebookParams()
	if got := CalibrateOverhead(core.NewRS104(), p, 1e30); got != 0 {
		t.Fatalf("got %f want 0", got)
	}
}

func TestMTTDLStripeVsSystem(t *testing.T) {
	p := FacebookParams()
	rep, _ := core.NewReplication(3)
	r, err := MTTDL(rep, p)
	if err != nil {
		t.Fatal(err)
	}
	stripes := p.TotalDataBytes / (3 * p.BlockBytes)
	want := r.MTTDLStripeSec / stripes / secondsPerDay
	if math.Abs(r.MTTDLDays-want)/want > 1e-12 {
		t.Fatal("Eq. (3) normalization inconsistent")
	}
}

// RepairStats parallelism sanity at the chain level: disabling parallel
// repairs must not raise the LRC MTTDL.
func TestParallelRepairsEffect(t *testing.T) {
	p := FacebookParams()
	withPar, err := MTTDL(core.NewXorbas(), p)
	if err != nil {
		t.Fatal(err)
	}
	p.ParallelRepairs = false
	without, err := MTTDL(core.NewXorbas(), p)
	if err != nil {
		t.Fatal(err)
	}
	if without.MTTDLDays > withPar.MTTDLDays {
		t.Fatal("parallel repairs should not reduce MTTDL")
	}
	// RS must be unaffected: its repairs always share sources.
	p2 := FacebookParams()
	a, _ := MTTDL(core.NewRS104(), p2)
	p2.ParallelRepairs = false
	b, _ := MTTDL(core.NewRS104(), p2)
	if math.Abs(a.MTTDLDays-b.MTTDLDays)/b.MTTDLDays > 1e-9 {
		t.Fatalf("RS MTTDL changed with parallelism: %e vs %e", a.MTTDLDays, b.MTTDLDays)
	}
}

func BenchmarkTable1(b *testing.B) {
	p := FacebookParams()
	for i := 0; i < b.N; i++ {
		if _, err := Table1(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Describe renders the Fig 3 chain: 5 transient states for the coded
// schemes with both rate families.
func TestDescribeFig3(t *testing.T) {
	ch, err := BuildChain(core.NewXorbas(), FacebookParams())
	if err != nil {
		t.Fatal(err)
	}
	s := ch.Describe()
	for _, want := range []string{"states 0..4", "state 5 = data loss", "λ0", "ρ4", "repair"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe missing %q:\n%s", want, s)
		}
	}
}
