// Package infoflow implements the locality-aware information flow graph
// of Appendix C and the machinery around the paper's locality–distance
// tradeoff (Theorem 2, Lemma 2, Theorems 3–4).
//
// The graph G(k, n−k, r, d) models the k file blocks as sources, the n
// coded blocks as capacity-1 vertices (entropy M/k, scaled to 1 unit),
// and each (r+1)-repair-group as a flow bottleneck of capacity r units.
// Every data collector (DC) connects to n−d+1 coded blocks; a distance d
// is feasible exactly when the minimum source→DC cut is at least k for
// all C(n, n−d+1) collectors (Lemma 2), in which case random linear
// network coding achieves it (Theorem 3).
package infoflow

// maxflow.go: a self-contained Dinic max-flow solver on small graphs.

const inf = int(1) << 40

type edge struct {
	to, rev int // destination vertex; index of reverse edge in adj[to]
	cap     int
}

// flowNetwork is a unit-capacity-scaled directed flow network.
type flowNetwork struct {
	adj [][]edge
}

func newFlowNetwork(n int) *flowNetwork {
	return &flowNetwork{adj: make([][]edge, n)}
}

// addEdge inserts a directed edge u→v with the given capacity.
func (g *flowNetwork) addEdge(u, v, cap int) {
	g.adj[u] = append(g.adj[u], edge{to: v, rev: len(g.adj[v]), cap: cap})
	g.adj[v] = append(g.adj[v], edge{to: u, rev: len(g.adj[u]) - 1, cap: 0})
}

// maxFlow computes the s→t maximum flow with Dinic's algorithm. The
// network's residual capacities are consumed; build a fresh network per
// query (graphs here are tiny).
func (g *flowNetwork) maxFlow(s, t int) int {
	n := len(g.adj)
	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		level[s] = 0
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, e := range g.adj[u] {
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u, f int) int
	dfs = func(u, f int) int {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			e := &g.adj[u][iter[u]]
			if e.cap <= 0 || level[e.to] != level[u]+1 {
				continue
			}
			d := dfs(e.to, min(f, e.cap))
			if d > 0 {
				e.cap -= d
				g.adj[e.to][e.rev].cap += d
				return d
			}
		}
		return 0
	}

	flow := 0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
