package infoflow

import (
	"fmt"
	"math/rand"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// RandomLocalCode draws a random (k, n−k) linear code with locality r in
// the sense of Theorem 4: the n coded blocks are partitioned into
// non-overlapping (r+1)-groups and within each group the last block is a
// random nonzero combination of the other r, so any group member is a
// function of the remaining r. All other generator entries are uniform.
// This is the random-linear-network-coding achievability scheme of
// Theorem 3 (Ho et al. [16]) instantiated on the flow graph's structure.
func RandomLocalCode(f *gf.Field, k, n, r int, rng *rand.Rand) (*matrix.Matrix, error) {
	if n%(r+1) != 0 {
		return nil, fmt.Errorf("infoflow: (r+1)=%d must divide n=%d", r+1, n)
	}
	if k <= 0 || n <= k {
		return nil, fmt.Errorf("infoflow: invalid k=%d n=%d", k, n)
	}
	gen := matrix.New(f, k, n)
	for base := 0; base < n; base += r + 1 {
		// First r columns of the group: uniform random.
		for j := base; j < base+r; j++ {
			for i := 0; i < k; i++ {
				gen.Set(i, j, gf.Elem(rng.Intn(f.Size())))
			}
		}
		// Last column: random nonzero combination of the group's others.
		last := base + r
		for j := base; j < base+r; j++ {
			c := gf.Elem(1 + rng.Intn(f.Size()-1))
			for i := 0; i < k; i++ {
				gen.Set(i, last, f.Add(gen.At(i, last), f.Mul(c, gen.At(i, j))))
			}
		}
	}
	return gen, nil
}

// GeneratorDistance computes the exact minimum distance of the code with
// the given k×n generator by exhaustive erasure enumeration: the smallest
// e such that erasing some e columns drops the rank of the rest below k.
// Returns n−k+1 (Singleton) if no pattern is fatal.
func GeneratorDistance(gen *matrix.Matrix) int {
	k, n := gen.Rows(), gen.Cols()
	for e := 1; e <= n-k+1; e++ {
		idx := make([]int, e)
		fatal := false
		var rec func(start, depth int) bool
		rec = func(start, depth int) bool {
			if depth == e {
				em := make(map[int]bool, e)
				for _, i := range idx {
					em[i] = true
				}
				keep := make([]int, 0, n-e)
				for j := 0; j < n; j++ {
					if !em[j] {
						keep = append(keep, j)
					}
				}
				return gen.SelectCols(keep).Rank() < k
			}
			for i := start; i < n; i++ {
				idx[depth] = i
				if rec(i+1, depth+1) {
					return true
				}
			}
			return false
		}
		fatal = rec(0, 0)
		if fatal {
			return e
		}
	}
	return n - k + 1
}

// AchievesBound draws random local codes until one meets the flow-graph
// feasible distance (Theorem 4's existence, made constructive). It
// returns the generator, its distance, and the number of draws.
func AchievesBound(f *gf.Field, k, n, r int, rng *rand.Rand, maxTries int) (*matrix.Matrix, int, int, error) {
	target, err := MaxFeasibleDistance(k, n, r)
	if err != nil {
		return nil, 0, 0, err
	}
	if maxTries <= 0 {
		maxTries = 32
	}
	for try := 1; try <= maxTries; try++ {
		gen, err := RandomLocalCode(f, k, n, r, rng)
		if err != nil {
			return nil, 0, try, err
		}
		if d := GeneratorDistance(gen); d >= target {
			return gen, d, try, nil
		}
	}
	return nil, 0, maxTries, fmt.Errorf("infoflow: no distance-%d code in %d tries (field too small?)", target, maxTries)
}
