package infoflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
	"repro/internal/lrc"
)

// Property: over random (k, r, group-count) geometries with (r+1)|n, the
// flow-graph max feasible distance never exceeds the Theorem 2 bound and
// the bound itself is always feasible.
func TestPropertyFlowMatchesBound(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(3)      // 2..4
		groups := 2 + rng.Intn(3) // 2..4
		n := (r + 1) * groups     // (r+1) | n
		kMax := n - groups - 1    // leave at least one global parity
		if kMax < 2 {
			return true
		}
		k := 2 + rng.Intn(kMax-1)
		bound := lrc.DistanceBound(k, n, r)
		if bound < 1 {
			return true
		}
		got, err := MaxFeasibleDistance(k, n, r)
		if err != nil {
			return false
		}
		return got == bound
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: feasibility is monotone in d — if d is feasible, every
// smaller distance is too.
func TestPropertyFeasibilityMonotone(t *testing.T) {
	k, n, r := 6, 12, 3
	max, err := MaxFeasibleDistance(k, n, r)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= n-k+1; d++ {
		g, err := Build(k, n, r, d)
		if err != nil {
			t.Fatal(err)
		}
		want := d <= max
		if got := g.Feasible(); got != want {
			t.Fatalf("d=%d: feasible=%v want %v (max=%d)", d, got, want, max)
		}
	}
}

// Property: min cut is monotone in the data collector's block set.
func TestPropertyCutMonotone(t *testing.T) {
	g, err := Build(6, 12, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		perm := rng.Perm(12)
		small := perm[:4]
		big := perm[:8]
		if g.MinCutForDC(small) > g.MinCutForDC(big) {
			t.Fatalf("cut not monotone: %v vs %v", small, big)
		}
	}
	// And capped by both the file size and the group bottlenecks.
	all := rng.Perm(12)
	if cut := g.MinCutForDC(all); cut != 6 {
		t.Fatalf("full cut %d want k=6", cut)
	}
}

// Property: random local codes never beat the flow bound (soundness of
// the converse).
func TestPropertyRLNCBelowBound(t *testing.T) {
	f := gfField(t)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		k, n, r := 4, 9, 2
		gen, err := RandomLocalCode(f, k, n, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := GeneratorDistance(gen)
		bound := lrc.DistanceBound(k, n, r)
		if d > bound {
			t.Fatalf("random local code distance %d beats the bound %d", d, bound)
		}
	}
}

func gfField(t *testing.T) *gf.Field {
	t.Helper()
	return gf.MustNew(8)
}
