package infoflow

import (
	"fmt"
	"math/big"
)

// Graph is the locality-aware information flow graph G(k, n−k, r, d) of
// Fig. 9. Entropy is scaled so one coded block carries 1 unit (M/k); the
// file has k units; an (r+1)-group's joint entropy is capped at r units.
type Graph struct {
	K int // file blocks (sources)
	N int // coded blocks
	R int // locality: repair groups have r+1 members
	D int // candidate code distance

	groups [][]int // non-overlapping (r+1)-groups partitioning the n blocks
}

// Build constructs G(k, n−k, r, d) with non-overlapping repair groups,
// which requires (r+1) | n — the assumption of the achievability proof
// (and, per Corollary 2, the distance-optimal arrangement).
func Build(k, n, r, d int) (*Graph, error) {
	if k <= 0 || n <= k {
		return nil, fmt.Errorf("infoflow: invalid k=%d n=%d", k, n)
	}
	if r < 1 || r >= n {
		return nil, fmt.Errorf("infoflow: invalid locality r=%d", r)
	}
	if n%(r+1) != 0 {
		return nil, fmt.Errorf("infoflow: (r+1)=%d must divide n=%d for non-overlapping groups", r+1, n)
	}
	if d < 1 || d > n {
		return nil, fmt.Errorf("infoflow: invalid distance d=%d", d)
	}
	g := &Graph{K: k, N: n, R: r, D: d}
	for base := 0; base < n; base += r + 1 {
		grp := make([]int, r+1)
		for i := range grp {
			grp[i] = base + i
		}
		g.groups = append(g.groups, grp)
	}
	return g, nil
}

// Groups returns the (r+1)-groups partitioning the coded blocks.
func (g *Graph) Groups() [][]int {
	out := make([][]int, len(g.groups))
	for i, grp := range g.groups {
		out[i] = append([]int(nil), grp...)
	}
	return out
}

// NumDataCollectors returns T = C(n, n−d+1), the number of sinks.
func (g *Graph) NumDataCollectors() *big.Int {
	return new(big.Int).Binomial(int64(g.N), int64(g.N-g.D+1))
}

// vertex layout for the flow network:
//
//	0                                   super-source
//	1 … k                               file blocks X_i
//	k+1 … k+G                           Γin per group
//	k+G+1 … k+2G                        Γout per group
//	k+2G+1 … k+2G+n                     Y_in per coded block
//	k+2G+n+1 … k+2G+2n                  Y_out per coded block
//	k+2G+2n+1                           data collector (sink)
func (g *Graph) buildNetwork() (*flowNetwork, func(block int) int, int, int) {
	G := len(g.groups)
	numV := 1 + g.K + 2*G + 2*g.N + 1
	net := newFlowNetwork(numV)
	src := 0
	xBase := 1
	ginBase := 1 + g.K
	goutBase := ginBase + G
	yinBase := goutBase + G
	youtBase := yinBase + g.N
	sink := youtBase + g.N

	// Super-source feeds each file block with its entropy (1 unit each —
	// the file totals k units).
	for i := 0; i < g.K; i++ {
		net.addEdge(src, xBase+i, 1)
	}
	for gi, grp := range g.groups {
		// Every file block feeds every group (∞ edges in the paper).
		for i := 0; i < g.K; i++ {
			net.addEdge(xBase+i, ginBase+gi, inf)
		}
		// Group bottleneck: joint entropy of an (r+1)-group ≤ r units.
		net.addEdge(ginBase+gi, goutBase+gi, g.R)
		// Group feeds its member blocks.
		for _, b := range grp {
			net.addEdge(goutBase+gi, yinBase+b, inf)
		}
	}
	// Block entropy: 1 unit each.
	for b := 0; b < g.N; b++ {
		net.addEdge(yinBase+b, youtBase+b, 1)
	}
	return net, func(b int) int { return youtBase + b }, src, sink
}

// MinCutForDC computes the max-flow (= min-cut) from the file blocks to a
// data collector connected to the given coded blocks.
func (g *Graph) MinCutForDC(blocks []int) int {
	net, yOut, src, sink := g.buildNetwork()
	for _, b := range blocks {
		net.addEdge(yOut(b), sink, inf)
	}
	return net.maxFlow(src, sink)
}

// MinCutAllDCs enumerates every data collector (all C(n, n−d+1) subsets)
// and returns the minimum cut over all of them together with one worst
// subset. This is the exact Lemma 2 check. Cost grows combinatorially;
// intended for stripe-scale parameters.
func (g *Graph) MinCutAllDCs() (int, []int) {
	m := g.N - g.D + 1
	best := inf
	var worst []int
	subset := make([]int, m)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == m {
			if cut := g.MinCutForDC(subset); cut < best {
				best = cut
				worst = append([]int(nil), subset...)
			}
			return
		}
		for i := start; i < g.N; i++ {
			subset[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, worst
}

// Feasible reports whether distance d is information-theoretically
// feasible for these (k, n, r): every data collector's min-cut reaches
// the file size k (Lemma 2). By symmetry of the non-overlapping-group
// construction it checks only the structurally distinct collectors —
// those defined by how many blocks they take from each group — rather
// than all C(n, n−d+1) subsets.
func (g *Graph) Feasible() bool {
	m := g.N - g.D + 1
	G := len(g.groups)
	// Enumerate compositions: take t_i blocks from group i, Σt_i = m,
	// 0 ≤ t_i ≤ r+1. Groups are interchangeable, so only sorted
	// compositions matter; enumerating all compositions is still cheap.
	counts := make([]int, G)
	feasible := true
	var rec func(gi, left int)
	rec = func(gi, left int) {
		if !feasible {
			return
		}
		if gi == G {
			if left != 0 {
				return
			}
			var blocks []int
			for i, t := range counts {
				blocks = append(blocks, g.groups[i][:t]...)
			}
			if g.MinCutForDC(blocks) < g.K {
				feasible = false
			}
			return
		}
		max := g.R + 1
		if left < max {
			max = left
		}
		for t := 0; t <= max; t++ {
			counts[gi] = t
			rec(gi+1, left-t)
		}
		counts[gi] = 0
	}
	rec(0, m)
	return feasible
}

// MaxFeasibleDistance returns the largest d for which Feasible holds,
// scanning downward from the Singleton bound. Along with Theorem 2 this
// pins the exact optimal distance for (r+1) | n geometries:
// d = n − ⌈k/r⌉ − k + 2.
func MaxFeasibleDistance(k, n, r int) (int, error) {
	for d := n - k + 1; d >= 1; d-- {
		g, err := Build(k, n, r, d)
		if err != nil {
			return 0, err
		}
		if g.Feasible() {
			return d, nil
		}
	}
	return 0, fmt.Errorf("infoflow: no feasible distance for k=%d n=%d r=%d", k, n, r)
}
