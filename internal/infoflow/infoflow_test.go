package infoflow

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/lrc"
)

func TestBuildValidation(t *testing.T) {
	cases := []struct{ k, n, r, d int }{
		{0, 6, 2, 2},   // bad k
		{4, 4, 2, 2},   // n = k
		{4, 6, 0, 2},   // bad r
		{4, 6, 6, 2},   // r >= n
		{10, 16, 5, 5}, // 6 does not divide 16
		{4, 6, 2, 0},   // bad d
		{4, 6, 2, 7},   // d > n
	}
	for i, c := range cases {
		if _, err := Build(c.k, c.n, c.r, c.d); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestGroupsPartition(t *testing.T) {
	g, err := Build(10, 18, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	groups := g.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups want 3", len(groups))
	}
	seen := map[int]bool{}
	for _, grp := range groups {
		if len(grp) != 6 {
			t.Fatalf("group size %d want 6", len(grp))
		}
		for _, b := range grp {
			if seen[b] {
				t.Fatalf("block %d in two groups", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != 18 {
		t.Fatal("groups do not cover all blocks")
	}
}

func TestNumDataCollectors(t *testing.T) {
	g, _ := Build(4, 6, 2, 2)
	// C(6, 5) = 6
	if got := g.NumDataCollectors().Int64(); got != 6 {
		t.Fatalf("T = %d want 6", got)
	}
}

// A DC holding every block always achieves the full file entropy.
func TestMinCutAllBlocks(t *testing.T) {
	g, _ := Build(4, 9, 2, 5)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if cut := g.MinCutForDC(all); cut != 4 {
		t.Fatalf("cut %d want k=4", cut)
	}
}

// A DC holding a single full group sees at most r units of entropy.
func TestGroupBottleneck(t *testing.T) {
	g, _ := Build(4, 9, 2, 5)
	grp := g.Groups()[0]
	if cut := g.MinCutForDC(grp); cut != 2 {
		t.Fatalf("cut %d want r=2", cut)
	}
}

// Lemma 2 + Theorem 2: the max feasible distance equals the bound
// n − ⌈k/r⌉ − k + 2 for (r+1) | n geometries.
func TestMaxFeasibleDistanceMatchesTheorem2(t *testing.T) {
	cases := []struct{ k, n, r int }{
		{4, 9, 2},
		{10, 18, 5},
		{6, 12, 3},
		{8, 15, 4},
		{4, 8, 3},
	}
	for _, c := range cases {
		want := lrc.DistanceBound(c.k, c.n, c.r)
		got, err := MaxFeasibleDistance(c.k, c.n, c.r)
		if err != nil {
			t.Fatalf("(%d,%d,%d): %v", c.k, c.n, c.r, err)
		}
		if got != want {
			t.Errorf("(%d,%d,%d): feasible distance %d, Theorem 2 bound %d", c.k, c.n, c.r, got, want)
		}
	}
}

// One past the bound must be infeasible — the converse direction.
func TestBeyondBoundInfeasible(t *testing.T) {
	k, n, r := 4, 9, 2
	d := lrc.DistanceBound(k, n, r)
	g, err := Build(k, n, r, d+1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Feasible() {
		t.Fatalf("d=%d should be infeasible (bound is %d)", d+1, d)
	}
}

// Exhaustive MinCutAllDCs agrees with the composition-based Feasible on a
// small instance.
func TestFeasibleAgreesWithExhaustive(t *testing.T) {
	for d := 1; d <= 5; d++ {
		g, err := Build(4, 9, 2, d)
		if err != nil {
			t.Fatal(err)
		}
		cut, worst := g.MinCutAllDCs()
		exhaustive := cut >= 4
		if got := g.Feasible(); got != exhaustive {
			t.Fatalf("d=%d: Feasible=%v but exhaustive min cut %d (worst DC %v)", d, got, cut, worst)
		}
	}
}

// With r = k the groups impose no real constraint beyond MDS: the
// feasible distance is Singleton.
func TestSingletonRecoveredAtTrivialLocality(t *testing.T) {
	// k=3, r=3, n=8: groups of 4; bound = 8 − 1 − 3 + 2 = 6 = n−k+1.
	got, err := MaxFeasibleDistance(3, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("got %d want Singleton 6", got)
	}
}

func TestRandomLocalCodeStructure(t *testing.T) {
	f := gf.MustNew(8)
	rng := rand.New(rand.NewSource(1))
	gen, err := RandomLocalCode(f, 4, 9, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Each group of 3 columns must be linearly dependent (locality): rank
	// of the 3 columns ≤ 2.
	for base := 0; base < 9; base += 3 {
		sub := gen.SelectCols([]int{base, base + 1, base + 2})
		if sub.Rank() > 2 {
			t.Fatalf("group at %d has independent columns: locality violated", base)
		}
	}
	if _, err := RandomLocalCode(f, 4, 10, 2, rng); err == nil {
		t.Fatal("non-divisible n accepted")
	}
	if _, err := RandomLocalCode(f, 0, 9, 2, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// Theorem 4 made constructive: a random local code over GF(2^8) achieves
// the flow-graph-feasible distance within a few draws.
func TestRLNCAchievesBound(t *testing.T) {
	f := gf.MustNew(8)
	rng := rand.New(rand.NewSource(42))
	gen, d, tries, err := AchievesBound(f, 4, 9, 2, rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := lrc.DistanceBound(4, 9, 2)
	if d < want {
		t.Fatalf("distance %d below bound %d", d, want)
	}
	t.Logf("RLNC (4,9,2): d=%d in %d tries", d, tries)
	if gen.Rows() != 4 || gen.Cols() != 9 {
		t.Fatal("generator shape wrong")
	}
}

// Over a tiny field the failure probability (1 − T/q)^η is not negligible;
// exercise the retry-exhaustion path with an impossible target.
func TestAchievesBoundExhaustion(t *testing.T) {
	f := gf.MustNew(2) // GF(4): far too small for most geometries
	rng := rand.New(rand.NewSource(3))
	if _, _, _, err := AchievesBound(f, 4, 9, 2, rng, 2); err == nil {
		t.Skip("tiny field got lucky; acceptable")
	}
}

// GeneratorDistance agrees with the LRC package's enumeration on the
// Xorbas code.
func TestGeneratorDistanceMatchesLRC(t *testing.T) {
	c := lrc.NewXorbas()
	if d := GeneratorDistance(c.Generator()); d != c.MinDistance() {
		t.Fatalf("infoflow distance %d != lrc distance %d", d, c.MinDistance())
	}
}

// The Xorbas geometry does not satisfy (r+1)|n (6 ∤ 16) — the paper's
// Theorem 5 handles it with overlapping-group entropy arguments, giving
// d = 5 < bound 6. Verify both facts side by side.
func TestXorbasOverlapPenalty(t *testing.T) {
	c := lrc.NewXorbas()
	bound := lrc.DistanceBound(10, 16, 5)
	if bound != 6 {
		t.Fatalf("bound %d want 6", bound)
	}
	if d := c.MinDistance(); d != 5 {
		t.Fatalf("actual distance %d want 5 (optimal per Theorem 5)", d)
	}
	if _, err := Build(10, 16, 5, 5); err == nil {
		t.Fatal("Build should reject 6 ∤ 16")
	}
}

func BenchmarkMinCutOneDC(b *testing.B) {
	g, _ := Build(10, 18, 5, 8)
	dc := []int{0, 1, 2, 3, 4, 6, 7, 8, 9, 12, 13}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MinCutForDC(dc)
	}
}

func BenchmarkFeasibleCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := Build(10, 18, 5, 8)
		if !g.Feasible() {
			b.Fatal("should be feasible")
		}
	}
}
