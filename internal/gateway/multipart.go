package gateway

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
)

// Multipart uploads, S3-style: begin issues an uploadId, parts are
// PUT independently (any order, any process), complete assembles them
// into the final object, abort throws them away.
//
// Crash safety comes from keeping every piece of state in the store's
// durable paths and nothing in gateway memory:
//
//   - The upload record (tenant + key, keyed by uploadId) is committed
//     to the metadata plane's WAL before the begin response acks.
//   - Each part is an ordinary store object under the reserved
//     .mpu/<uploadId>/ namespace — PutReader commits it atomically, so
//     a part either exists whole or not at all.
//   - The committed-parts list is not tracked anywhere: it is discovered
//     by scanning .mpu/<uploadId>/, which is exactly the set of parts
//     whose commits survived.
//
// kill -9 the gateway (or the machine) mid-upload and a fresh process
// over the reopened store sees the record and every fully-acked part;
// the client re-PUTs whatever it never got an ack for and completes.
// Tenants cannot reach the part namespace directly: tenant names cannot
// start with '.', so no /t/ URL resolves into .mpu/.

// uploadRecord is the durable begin-time state, stored as opaque JSON
// under the metadata plane's u/<id> key.
type uploadRecord struct {
	Tenant string `json:"tenant"`
	Key    string `json:"key"`
}

// maxPartNumber matches S3's cap; part numbers are 1-based.
const maxPartNumber = 10000

func partPrefix(id string) string { return ".mpu/" + id + "/" }

func partName(id string, n int) string { return fmt.Sprintf("%sp%05d", partPrefix(id), n) }

// newUploadID returns a 128-bit random hex id — store-charset safe, so
// it embeds in part object names and meta keys unescaped.
func newUploadID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// getUpload loads and checks an upload record. A missing record and a
// tenant/key mismatch are both "not found": a tenant probing someone
// else's uploadId learns nothing.
func (g *Gateway) getUpload(id, tenant, key string) (uploadRecord, error) {
	var rec uploadRecord
	if err := store.ValidateName(id); err != nil {
		return rec, err
	}
	b, ok := g.st.GetUploadRecord(id)
	if !ok {
		return rec, fmt.Errorf("%w: upload %q", store.ErrNotFound, id)
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		return rec, fmt.Errorf("gateway: upload record %q: %w", id, err)
	}
	if rec.Tenant != tenant || rec.Key != key {
		return rec, fmt.Errorf("%w: upload %q", store.ErrNotFound, id)
	}
	return rec, nil
}

// beginUpload mints an uploadId and durably records it before acking.
func (g *Gateway) beginUpload(w http.ResponseWriter, tenant, key string) {
	id, err := newUploadID()
	if err != nil {
		g.writeError(w, err)
		return
	}
	b, err := json.Marshal(uploadRecord{Tenant: tenant, Key: key})
	if err != nil {
		g.writeError(w, err)
		return
	}
	if err := g.st.PutUploadRecord(id, b); err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"uploadId": id, "tenant": tenant, "key": key})
}

// putPart stores one part body. Admission works like handlePut: a
// declared length is admitted before any byte moves, a chunked body is
// charged after the fact.
func (g *Gateway) putPart(w http.ResponseWriter, r *http.Request, t *tenant, id, tenant_, key, partStr string) {
	if g.shedWrite(w) {
		return
	}
	if _, err := g.getUpload(id, tenant_, key); err != nil {
		g.writeError(w, err)
		return
	}
	n, err := strconv.Atoi(partStr)
	if err != nil || n < 1 || n > maxPartNumber {
		g.writeError(w, fmt.Errorf("%w: partNumber %q (want 1..%d)", store.ErrBadKey, partStr, maxPartNumber))
		return
	}
	declared := r.ContentLength
	if declared < 0 {
		declared = 0
	}
	if !g.admit(w, t, declared) {
		return
	}
	cr := &countingReader{r: r.Body, acc: &g.m.bytesIn}
	if err := g.st.PutReader(partName(id, n), cr); err != nil {
		g.writeError(w, err)
		return
	}
	if r.ContentLength < 0 {
		t.lim.Charge(cr.n)
	}
	w.WriteHeader(http.StatusOK)
}

// partStat is one committed part, discovered from the store.
type partStat struct {
	Number int `json:"partNumber"`
	Size   int `json:"size"`
	name   string
}

// partsOf scans the upload's reserved namespace for committed parts,
// sorted by part number.
func (g *Gateway) partsOf(id string) []partStat {
	prefix := partPrefix(id)
	var out []partStat
	for _, o := range g.st.ObjectsWithPrefix(prefix) {
		rest, ok := strings.CutPrefix(o.Name, prefix)
		if !ok || len(rest) < 2 || rest[0] != 'p' {
			continue
		}
		n, err := strconv.Atoi(rest[1:])
		if err != nil {
			continue
		}
		out = append(out, partStat{Number: n, Size: o.Size, name: o.Name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// listParts reports the committed parts — after a crash and restart
// this is the resume point: whatever is listed survived, whatever is
// missing needs re-uploading.
func (g *Gateway) listParts(w http.ResponseWriter, id, tenant, key string) {
	if _, err := g.getUpload(id, tenant, key); err != nil {
		g.writeError(w, err)
		return
	}
	parts := g.partsOf(id)
	if parts == nil {
		parts = []partStat{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"uploadId": id, "key": key, "parts": parts})
}

// completeUpload streams the parts, in part-number order, through one
// PutReader into the final object, then retires the parts and the
// record. The assembly is a pipe: part bytes never accumulate in
// memory, and the final object commits atomically — a crash mid-
// complete leaves the upload intact and resumable, never a torn object.
func (g *Gateway) completeUpload(w http.ResponseWriter, t *tenant, id, tenant_, key string) {
	if g.shedWrite(w) {
		return
	}
	if _, err := g.getUpload(id, tenant_, key); err != nil {
		g.writeError(w, err)
		return
	}
	parts := g.partsOf(id)
	if len(parts) == 0 {
		g.writeError(w, fmt.Errorf("%w: upload %q has no parts", store.ErrBadKey, id))
		return
	}
	// A tenant in admission debt waits like any other request; the
	// assembled bytes are charged after the fact.
	if !g.admit(w, t, 0) {
		return
	}
	name := tenant_ + "/" + key
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := g.st.PutReader(name, pr)
		// Unblock a writer mid-Write whichever way the put ended.
		pr.CloseWithError(err)
		done <- err
	}()
	var total int64
	var werr error
	for i := range parts {
		info, err := g.st.GetWriter(parts[i].name, pw)
		total += info.BytesWritten
		if err != nil {
			werr = err
			break
		}
	}
	pw.CloseWithError(werr)
	err := <-done
	t.lim.Charge(total)
	if werr != nil {
		// The part read is the root cause; the put's error is just the
		// pipe breaking.
		g.writeError(w, werr)
		return
	}
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.retireUpload(id, parts)
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "size": total, "parts": len(parts)})
}

// abortUpload discards the upload's parts and record.
func (g *Gateway) abortUpload(w http.ResponseWriter, id, tenant, key string) {
	if _, err := g.getUpload(id, tenant, key); err != nil {
		g.writeError(w, err)
		return
	}
	g.retireUpload(id, g.partsOf(id))
	w.WriteHeader(http.StatusNoContent)
}

// retireUpload best-effort deletes the upload's parts and record. A
// crash mid-retire leaves orphaned parts under .mpu/<id>/ with no
// record; abort of the (now missing) upload is the manual sweep.
func (g *Gateway) retireUpload(id string, parts []partStat) {
	for i := range parts {
		_ = g.st.Delete(parts[i].name)
	}
	_ = g.st.DeleteUploadRecord(id)
}
