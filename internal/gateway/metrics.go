package gateway

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// The gateway's observability is a handful of lock-free counters plus a
// log-scale latency histogram per verb: enough to read request mix,
// throughput and tail latency off /metrics without a metrics dependency
// the container doesn't have.

// latBuckets is the histogram's bucket count. A request lands in the
// bucket indexed by the bit length of its latency in microseconds —
// bucket i covers [2^(i-1), 2^i) µs — so 40 buckets span sub-microsecond
// to around nine minutes at factor-of-two resolution.
const latBuckets = 40

// verbStats is one verb's request count and latency histogram.
type verbStats struct {
	count atomic.Int64
	lat   [latBuckets]atomic.Int64
}

func (v *verbStats) observe(d time.Duration) {
	v.count.Add(1)
	b := bits.Len64(uint64(d.Microseconds()))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	v.lat[b].Add(1)
}

// quantile estimates the q-quantile (0..1) latency in milliseconds: the
// upper edge of the bucket where the cumulative count crosses the
// target. Factor-of-two coarse, but stable, lock-free, and honest about
// tails (it rounds up, never down).
func (v *verbStats) quantile(q float64) float64 {
	var counts [latBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = v.lat[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return float64(uint64(1)<<uint(i)) / 1e3
		}
	}
	return float64(uint64(1)<<latBuckets) / 1e3
}

// verbNames are the fixed verb buckets; OTHER absorbs methods the
// gateway rejects.
var verbNames = []string{"PUT", "GET", "HEAD", "DELETE", "POST", "LIST", "OTHER"}

// metricsState is the gateway-wide counter set.
type metricsState struct {
	verbs    map[string]*verbStats // fixed at init; read-only map, atomic values
	bytesIn  atomic.Int64          // object bytes received (PUT bodies, parts)
	bytesOut atomic.Int64          // object bytes served (GET bodies)
	rejected atomic.Int64          // admission-control 429s
}

func (m *metricsState) init() {
	m.verbs = make(map[string]*verbStats, len(verbNames))
	for _, v := range verbNames {
		m.verbs[v] = &verbStats{}
	}
}

func (m *metricsState) verb(name string) *verbStats {
	if v, ok := m.verbs[name]; ok {
		return v
	}
	return m.verbs["OTHER"]
}

// VerbSnapshot is one verb's point-in-time stats in a /metrics reply.
type VerbSnapshot struct {
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Snapshot is the /metrics JSON document: gateway counters plus the
// store's own metrics (so one curl shows HTTP traffic and the erasure
// datapath behind it side by side).
type Snapshot struct {
	Verbs             map[string]VerbSnapshot `json:"verbs"`
	BytesIn           int64                   `json:"bytes_in"`
	BytesOut          int64                   `json:"bytes_out"`
	AdmissionRejected int64                   `json:"admission_rejected"`
	// CacheHitRate is hits/(hits+misses) of the store's hot-block read
	// cache — 0 when the cache is disabled or untouched. The raw
	// counters are under Store.
	CacheHitRate float64       `json:"cache_hit_rate"`
	Store        store.Metrics `json:"store"`
}

// Metrics returns a point-in-time snapshot of the gateway's counters.
func (g *Gateway) Metrics() Snapshot {
	verbs := make(map[string]VerbSnapshot, len(verbNames))
	for _, name := range verbNames {
		v := g.m.verbs[name]
		n := v.count.Load()
		if n == 0 {
			continue
		}
		verbs[name] = VerbSnapshot{Requests: n, P50Ms: v.quantile(0.50), P99Ms: v.quantile(0.99)}
	}
	sm := g.st.Metrics()
	hitRate := 0.0
	if lookups := sm.CacheHits + sm.CacheMisses; lookups > 0 {
		hitRate = float64(sm.CacheHits) / float64(lookups)
	}
	return Snapshot{
		Verbs:             verbs,
		BytesIn:           g.m.bytesIn.Load(),
		BytesOut:          g.m.bytesOut.Load(),
		AdmissionRejected: g.m.rejected.Load(),
		CacheHitRate:      hitRate,
		Store:             sm,
	}
}
