package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// The gateway's kill -9 test: a child process serves a MetaDir-backed
// store over HTTP, begins a multipart upload, and streams parts into it
// — fsyncing an ack line after each acked PUT. The parent SIGKILLs it
// mid-upload, rebuilds the serving stack over the same directories, and
// finishes the upload a client would: list the surviving parts, upload
// the next one, complete, read back. Every acked part must be in the
// listing and the assembled object must be byte-exact.

const gwCrashChildEnv = "GATEWAY_CRASH_CHILD_DIR"

// gwPartBytes derives part content from its number so parent and child
// agree with no channel between them: ~1.7 stripes at BlockSize 256.
func gwPartBytes(n int) []byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "part-%d", n)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	b := make([]byte, 256*10+1700+n)
	rng.Read(b)
	return b
}

func gwCrashOpen(t *testing.T, dir string) *store.Store {
	t.Helper()
	be, err := store.NewDirBackend(filepath.Join(dir, "blocks"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.New(store.Config{Backend: be, BlockSize: 256, MetaDir: filepath.Join(dir, "meta")})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGatewayCrashChild is the subprocess body: without the env marker
// it skips. With it, it begins an upload and PUTs parts forever, acking
// each one durably, until the parent kills it.
func TestGatewayCrashChild(t *testing.T) {
	dir := os.Getenv(gwCrashChildEnv)
	if dir == "" {
		t.Skip("helper for TestKillNineMidMultipartResumes")
	}
	s := gwCrashOpen(t, dir)
	g, err := New(Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)

	resp, err := http.Post(srv.URL+"/t/acme/big.bin?uploads", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var begin struct {
		UploadID string `json:"uploadId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&begin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	acked, err := os.OpenFile(filepath.Join(dir, "acked"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// First line is the uploadId; the begin record is durable before the
	// gateway acked it, so the parent may rely on it.
	fmt.Fprintln(acked, begin.UploadID)
	if err := acked.Sync(); err != nil {
		t.Fatal(err)
	}
	for n := 1; ; n++ {
		url := fmt.Sprintf("%s/t/acme/big.bin?uploadId=%s&partNumber=%d", srv.URL, begin.UploadID, n)
		req, _ := http.NewRequest("PUT", url, bytes.NewReader(gwPartBytes(n)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("part %d: status %d", n, resp.StatusCode)
		}
		fmt.Fprintln(acked, n)
		if err := acked.Sync(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKillNineMidMultipartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	ackPath := filepath.Join(dir, "acked")

	cmd := exec.Command(os.Args[0], "-test.run", "^TestGatewayCrashChild$")
	cmd.Env = append(os.Environ(), gwCrashChildEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the uploadId plus at least two acked parts, then kill at
	// whatever point of the part loop the child happens to be in.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(ackPath); err == nil && bytes.Count(b, []byte("\n")) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("child acked fewer than 2 parts in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	ackBytes, err := os.ReadFile(ackPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(string(ackBytes))
	id, ackedParts := lines[0], lines[1:]

	// Rebuild the whole serving stack over the wreckage.
	s := gwCrashOpen(t, dir)
	defer s.Close()
	g, err := New(Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	resp, body := do(t, "GET", srv.URL+"/t/acme/big.bin?uploadId="+id, nil)
	wantStatus(t, resp, body, 200)
	var listing struct {
		Parts []partStat `json:"parts"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	have := map[int]int{}
	for _, p := range listing.Parts {
		have[p.Number] = p.Size
	}
	// Promise 1: every acked part survived, at its full size. (The store
	// may also hold one unacked part whose commit beat the kill — fine,
	// its content is deterministic too.)
	for _, a := range ackedParts {
		var n int
		fmt.Sscanf(a, "%d", &n)
		if have[n] != len(gwPartBytes(n)) {
			t.Fatalf("acked part %d: listed size %d, want %d", n, have[n], len(gwPartBytes(n)))
		}
	}
	if len(listing.Parts) < len(ackedParts) || len(listing.Parts) > len(ackedParts)+1 {
		t.Fatalf("%d parts survived with %d acked (at most one in-flight part may surface)",
			len(listing.Parts), len(ackedParts))
	}

	// Promise 2: the upload is still writable — add the next part and
	// complete it, like a resuming client.
	next := listing.Parts[len(listing.Parts)-1].Number + 1
	resp, body = do(t, "PUT",
		fmt.Sprintf("%s/t/acme/big.bin?uploadId=%s&partNumber=%d", srv.URL, id, next), gwPartBytes(next))
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "POST", srv.URL+"/t/acme/big.bin?uploadId="+id, nil)
	wantStatus(t, resp, body, 200)

	var want []byte
	for n := 1; n <= next; n++ {
		want = append(want, gwPartBytes(n)...)
	}
	resp, body = do(t, "GET", srv.URL+"/t/acme/big.bin", nil)
	wantStatus(t, resp, body, 200)
	if !bytes.Equal(body, want) {
		t.Fatalf("assembled object is not byte-exact after the crash (%d bytes, want %d)",
			len(body), len(want))
	}
}
