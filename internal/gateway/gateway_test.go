package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/store"
)

// newTestGateway serves a fresh in-memory store over httptest. Tests
// that need durability across a reopen build their own store instead.
func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		s, err := store.New(store.Config{BlockSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		cfg.Store = s
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	return g, srv
}

// do issues one request and returns the response with its body drained.
func do(t *testing.T, method, url string, body []byte, hdr ...string) (*http.Response, []byte) {
	t.Helper()
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func wantStatus(t *testing.T, resp *http.Response, body []byte, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s %s: got %d (%s), want %d",
			resp.Request.Method, resp.Request.URL, resp.StatusCode, strings.TrimSpace(string(body)), want)
	}
}

func testBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestHTTPRoundTrip(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	obj := testBytes(1, 7000)

	resp, body := do(t, "PUT", srv.URL+"/t/acme/docs/report.bin", obj)
	wantStatus(t, resp, body, 200)

	resp, body = do(t, "GET", srv.URL+"/t/acme/docs/report.bin", nil)
	wantStatus(t, resp, body, 200)
	if !bytes.Equal(body, obj) {
		t.Fatal("GET returned different bytes than PUT stored")
	}
	if got := resp.Header.Get("Accept-Ranges"); got != "bytes" {
		t.Fatalf("Accept-Ranges = %q", got)
	}

	resp, body = do(t, "HEAD", srv.URL+"/t/acme/docs/report.bin", nil)
	wantStatus(t, resp, body, 200)
	if got := resp.Header.Get("Content-Length"); got != "7000" {
		t.Fatalf("HEAD Content-Length = %q, want 7000", got)
	}

	// Listing sees the key, respects the prefix filter, and sorts.
	do(t, "PUT", srv.URL+"/t/acme/docs/appendix.bin", testBytes(2, 10))
	do(t, "PUT", srv.URL+"/t/acme/misc/x", testBytes(3, 10))
	resp, body = do(t, "GET", srv.URL+"/t/acme?prefix=docs/", nil)
	wantStatus(t, resp, body, 200)
	var list ListResult
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Objects) != 2 || list.Objects[0].Key != "docs/appendix.bin" || list.Objects[1].Key != "docs/report.bin" {
		t.Fatalf("list = %+v", list.Objects)
	}

	resp, body = do(t, "DELETE", srv.URL+"/t/acme/docs/report.bin", nil)
	wantStatus(t, resp, body, 204)
	resp, body = do(t, "GET", srv.URL+"/t/acme/docs/report.bin", nil)
	wantStatus(t, resp, body, 404)
	resp, body = do(t, "DELETE", srv.URL+"/t/acme/docs/report.bin", nil)
	wantStatus(t, resp, body, 404)
}

func TestRangeConformance(t *testing.T) {
	g, srv := newTestGateway(t, Config{})
	// Block 256, k=10 → 2560-byte stripes; three-and-a-bit stripes.
	obj := testBytes(4, 3*2560+100)
	size := len(obj)
	url := srv.URL + "/t/acme/big"
	resp, body := do(t, "PUT", url, obj)
	wantStatus(t, resp, body, 200)

	cases := []struct {
		hdr    string
		lo, hi int // inclusive byte window of the expected 206
	}{
		{"bytes=0-99", 0, 99},
		{"bytes=100-100", 100, 100},
		{"bytes=2555-2565", 2555, 2565},      // straddles a stripe boundary
		{"bytes=-100", size - 100, size - 1}, // suffix
		{"bytes=5000-", 5000, size - 1},      // open-ended
		{"bytes=0-99999999", 0, size - 1},    // end clamps
	}
	for _, c := range cases {
		resp, body := do(t, "GET", url, nil, "Range", c.hdr)
		wantStatus(t, resp, body, 206)
		if !bytes.Equal(body, obj[c.lo:c.hi+1]) {
			t.Fatalf("Range %q: wrong bytes (%d returned)", c.hdr, len(body))
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", c.lo, c.hi, size)
		if got := resp.Header.Get("Content-Range"); got != wantCR {
			t.Fatalf("Range %q: Content-Range = %q, want %q", c.hdr, got, wantCR)
		}
	}

	// Unsatisfiable: start past the end.
	resp, body = do(t, "GET", url, nil, "Range", fmt.Sprintf("bytes=%d-", size))
	wantStatus(t, resp, body, 416)
	if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes */%d", size) {
		t.Fatalf("416 Content-Range = %q", got)
	}

	// Malformed and multi-range headers are ignored: full 200.
	for _, h := range []string{"bytes=abc-def", "lines=0-10", "bytes=0-1,5-6", "bytes=9-5"} {
		resp, body := do(t, "GET", url, nil, "Range", h)
		wantStatus(t, resp, body, 200)
		if !bytes.Equal(body, obj) {
			t.Fatalf("Range %q: expected the full object", h)
		}
	}

	// The efficiency claim: a small ranged GET reads only the covering
	// blocks from the backend, not the whole object.
	before := g.Store().Metrics().ReadBytes
	resp, body = do(t, "GET", url, nil, "Range", "bytes=300-349")
	wantStatus(t, resp, body, 206)
	delta := g.Store().Metrics().ReadBytes - before
	// 50 bytes inside one 256-byte block; allow framing overhead but
	// nothing near the ~8KB object.
	if delta > 2*256 {
		t.Fatalf("50-byte ranged GET read %d backend bytes, want about one block", delta)
	}
}

func TestTypedErrorsToHTTP(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	for _, c := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/t/acme/missing", 404},
		{"HEAD", "/t/acme/missing", 404},
		{"DELETE", "/t/acme/missing", 404},
		{"PUT", "/t/acme/bad%20key", 400}, // space outside the store charset
		{"PUT", "/t/acme/a/../b", 400},    // dot-dot segment
		{"PUT", "/t/.mpu/id/p00001", 400}, // reserved namespace
		{"PUT", "/t/.hidden/x", 400},      // leading-dot tenant
		{"GET", "/t/bad%20tenant", 400},
		{"GET", "/x/acme/key", 404}, // outside /t/
		{"PATCH", "/t/acme/key", 405},
	} {
		resp, body := do(t, c.method, srv.URL+c.path, []byte("x"))
		if resp.StatusCode != c.want {
			t.Fatalf("%s %s: got %d (%s), want %d", c.method, c.path, resp.StatusCode, body, c.want)
		}
	}
}

// TestErrorMapping pins the writeError table against wrapped sentinels —
// matching must survive arbitrary %w nesting.
func TestErrorMapping(t *testing.T) {
	g, _ := newTestGateway(t, Config{})
	for _, c := range []struct {
		err  error
		want int
	}{
		{fmt.Errorf("lost: %w", fmt.Errorf("deep: %w", store.ErrNotFound)), 404},
		{fmt.Errorf("x: %w", store.ErrObjectNotFound), 404},
		{fmt.Errorf("x: %w", store.ErrBlockNotFound), 404},
		{fmt.Errorf("x: %w", store.ErrBadKey), 400},
		{fmt.Errorf("x: %w", store.ErrBadRange), 416},
		{fmt.Errorf("x: %w", store.ErrUnrecoverable), 503},
		{fmt.Errorf("x: %w", meta.ErrClosed), 503},
		{fmt.Errorf("plain failure"), 500},
	} {
		rec := httptest.NewRecorder()
		g.writeError(rec, c.err)
		if rec.Code != c.want {
			t.Fatalf("writeError(%v) = %d, want %d", c.err, rec.Code, c.want)
		}
		// Every 503 is transient from the client's seat: it must carry a
		// Retry-After hint; nothing else may.
		if got := rec.Header().Get("Retry-After"); (c.want == 503) != (got != "") {
			t.Fatalf("writeError(%v) = %d with Retry-After %q", c.err, rec.Code, got)
		}
	}
}

// TestWriteDegradedSheds kills nodes below the stripe width and checks
// writes answer 503 + Retry-After while reads keep serving — then that
// revival reopens writes.
func TestWriteDegradedSheds(t *testing.T) {
	s, err := store.New(store.Config{BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	_, srv := newTestGateway(t, Config{Store: s})
	obj := testBytes(7, 400)
	resp, body := do(t, "PUT", srv.URL+"/t/acme/k", obj)
	wantStatus(t, resp, body, 200)

	// 20 nodes, LRC needs 16 live: kill 5.
	for i := 0; i < 5; i++ {
		s.KillNode(i)
	}
	resp, body = do(t, "PUT", srv.URL+"/t/acme/k2", obj)
	wantStatus(t, resp, body, 503)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded write 503 without Retry-After")
	}
	// Multipart writes shed too.
	resp, body = do(t, "POST", srv.URL+"/t/acme/k3?uploads", nil)
	wantStatus(t, resp, body, 200) // beginning an upload is metadata-only
	var begin struct {
		UploadID string `json:"uploadId"`
	}
	if err := json.Unmarshal(body, &begin); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, "PUT", srv.URL+"/t/acme/k3?uploadId="+begin.UploadID+"&partNumber=1", obj)
	wantStatus(t, resp, body, 503)

	// Reads keep serving (degraded) the whole time.
	resp, body = do(t, "GET", srv.URL+"/t/acme/k", nil)
	wantStatus(t, resp, body, 200)
	if !bytes.Equal(body, obj) {
		t.Fatal("degraded read returned wrong bytes")
	}

	// /healthz reports the readonly state without failing the probe.
	resp, body = do(t, "GET", srv.URL+"/healthz", nil)
	wantStatus(t, resp, body, 200)
	var rep struct {
		Status    string `json:"status"`
		LiveNodes int    `json:"live_nodes"`
		Nodes     []struct {
			Node    int    `json:"node"`
			Alive   bool   `json:"alive"`
			Breaker string `json:"breaker"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "degraded-readonly" || rep.LiveNodes != 15 || len(rep.Nodes) != 20 {
		t.Fatalf("healthz = %+v", rep)
	}
	if rep.Nodes[0].Alive || !rep.Nodes[19].Alive {
		t.Fatalf("healthz liveness wrong: %+v", rep.Nodes)
	}

	// Revival reopens writes.
	for i := 0; i < 5; i++ {
		s.ReviveNode(i)
	}
	resp, body = do(t, "PUT", srv.URL+"/t/acme/k2", obj)
	wantStatus(t, resp, body, 200)
}

func TestTenantIsolation(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	obj := testBytes(5, 500)
	resp, body := do(t, "PUT", srv.URL+"/t/acme/secret", obj)
	wantStatus(t, resp, body, 200)

	// Another tenant cannot read or even see the key.
	resp, body = do(t, "GET", srv.URL+"/t/rival/secret", nil)
	wantStatus(t, resp, body, 404)
	resp, body = do(t, "GET", srv.URL+"/t/rival", nil)
	wantStatus(t, resp, body, 200)
	var list ListResult
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Objects) != 0 {
		t.Fatalf("rival tenant sees %d objects", len(list.Objects))
	}
	// A tenant name that is a prefix of another must not leak either.
	resp, body = do(t, "GET", srv.URL+"/t/ac", nil)
	wantStatus(t, resp, body, 200)
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Objects) != 0 {
		t.Fatalf("prefix tenant sees %d objects", len(list.Objects))
	}
}

func TestBearerAuth(t *testing.T) {
	_, srv := newTestGateway(t, Config{Tokens: map[string]string{"locked": "s3cr3t"}})
	obj := testBytes(6, 100)

	resp, body := do(t, "PUT", srv.URL+"/t/locked/x", obj)
	wantStatus(t, resp, body, 401)
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	resp, body = do(t, "PUT", srv.URL+"/t/locked/x", obj, "Authorization", "Bearer wrong")
	wantStatus(t, resp, body, 401)
	resp, body = do(t, "PUT", srv.URL+"/t/locked/x", obj, "Authorization", "Bearer s3cr3t")
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "GET", srv.URL+"/t/locked/x", nil, "Authorization", "Bearer s3cr3t")
	wantStatus(t, resp, body, 200)
	if !bytes.Equal(body, obj) {
		t.Fatal("authorized GET returned wrong bytes")
	}
	// Tenants without a configured token stay open.
	resp, body = do(t, "PUT", srv.URL+"/t/open/x", obj)
	wantStatus(t, resp, body, 200)
}

func TestAdmission429(t *testing.T) {
	g, srv := newTestGateway(t, Config{BytesPerSec: 1000})
	// The first put is admitted (the bucket charges into debt); while in
	// debt, the next request is refused with a Retry-After hint.
	obj := testBytes(7, 50_000)
	resp, body := do(t, "PUT", srv.URL+"/t/acme/big", obj)
	wantStatus(t, resp, body, 200)

	resp, body = do(t, "GET", srv.URL+"/t/acme/big", nil)
	wantStatus(t, resp, body, 429)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := g.Metrics().AdmissionRejected; got < 1 {
		t.Fatalf("AdmissionRejected = %d, want >= 1", got)
	}
	// Budgets are per tenant: another tenant is unaffected.
	resp, body = do(t, "PUT", srv.URL+"/t/other/small", testBytes(8, 10))
	wantStatus(t, resp, body, 200)
}

func TestInflightCap(t *testing.T) {
	_, srv := newTestGateway(t, Config{MaxInflight: 1})
	// Park one PUT mid-body so it holds the tenant's only slot.
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest("PUT", srv.URL+"/t/acme/slow", pr)
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	if _, err := pw.Write(testBytes(9, 10)); err != nil {
		t.Fatal(err)
	}
	// The slot is taken once the handler is reading the body; poll until
	// a second request bounces.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := do(t, "GET", srv.URL+"/t/acme/whatever", nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never saw 429 while a PUT was in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// Slot released: the tenant serves again.
	resp, body := do(t, "GET", srv.URL+"/t/acme/slow", nil)
	wantStatus(t, resp, body, 200)
}

// TestMultipartResumeAcrossReopen drives the full upload lifecycle with
// a store teardown in the middle: parts put before the reopen are listed
// and used by a complete issued after it, through a brand-new gateway.
func TestMultipartResumeAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		be, err := store.NewDirBackend(filepath.Join(dir, "blocks"))
		if err != nil {
			t.Fatal(err)
		}
		s, err := store.New(store.Config{Backend: be, BlockSize: 256, MetaDir: filepath.Join(dir, "meta")})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	g, err := New(Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)

	resp, body := do(t, "POST", srv.URL+"/t/acme/movie.bin?uploads", nil)
	wantStatus(t, resp, body, 200)
	var begin struct {
		UploadID string `json:"uploadId"`
	}
	if err := json.Unmarshal(body, &begin); err != nil {
		t.Fatal(err)
	}
	id := begin.UploadID

	p1 := testBytes(10, 6000)
	p2 := testBytes(11, 137)
	resp, body = do(t, "PUT", srv.URL+"/t/acme/movie.bin?uploadId="+id+"&partNumber=1", p1)
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "PUT", srv.URL+"/t/acme/movie.bin?uploadId="+id+"&partNumber=2", p2)
	wantStatus(t, resp, body, 200)

	// Tear the serving stack down and rebuild it over the same disk.
	srv.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = open()
	defer s.Close()
	g, err = New(Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	srv = httptest.NewServer(g)
	defer srv.Close()

	resp, body = do(t, "GET", srv.URL+"/t/acme/movie.bin?uploadId="+id, nil)
	wantStatus(t, resp, body, 200)
	var parts struct {
		Parts []partStat `json:"parts"`
	}
	if err := json.Unmarshal(body, &parts); err != nil {
		t.Fatal(err)
	}
	if len(parts.Parts) != 2 || parts.Parts[0].Size != 6000 || parts.Parts[1].Size != 137 {
		t.Fatalf("parts after reopen = %+v", parts.Parts)
	}

	p3 := testBytes(12, 2560)
	resp, body = do(t, "PUT", srv.URL+"/t/acme/movie.bin?uploadId="+id+"&partNumber=3", p3)
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "POST", srv.URL+"/t/acme/movie.bin?uploadId="+id, nil)
	wantStatus(t, resp, body, 200)

	want := append(append(append([]byte(nil), p1...), p2...), p3...)
	resp, body = do(t, "GET", srv.URL+"/t/acme/movie.bin", nil)
	wantStatus(t, resp, body, 200)
	if !bytes.Equal(body, want) {
		t.Fatal("assembled object differs from its parts")
	}

	// Complete retired the upload: the id is gone and no part objects
	// linger in the reserved namespace.
	resp, body = do(t, "GET", srv.URL+"/t/acme/movie.bin?uploadId="+id, nil)
	wantStatus(t, resp, body, 404)
	if leftover := s.ObjectsWithPrefix(".mpu/"); len(leftover) != 0 {
		t.Fatalf("%d part objects left after complete", len(leftover))
	}
	// And the final object does not leak into listings as parts did not.
	resp, body = do(t, "GET", srv.URL+"/t/acme", nil)
	wantStatus(t, resp, body, 200)
	var list ListResult
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Objects) != 1 || list.Objects[0].Key != "movie.bin" {
		t.Fatalf("listing after complete = %+v", list.Objects)
	}
}

func TestMultipartErrors(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	resp, body := do(t, "POST", srv.URL+"/t/acme/obj?uploads", nil)
	wantStatus(t, resp, body, 200)
	var begin struct {
		UploadID string `json:"uploadId"`
	}
	if err := json.Unmarshal(body, &begin); err != nil {
		t.Fatal(err)
	}
	id := begin.UploadID

	for _, pn := range []string{"0", "10001", "abc", ""} {
		resp, body := do(t, "PUT", srv.URL+"/t/acme/obj?uploadId="+id+"&partNumber="+pn, []byte("x"))
		wantStatus(t, resp, body, 400)
	}
	// Unknown id, and a known id used by the wrong tenant or key, all 404.
	resp, body = do(t, "PUT", srv.URL+"/t/acme/obj?uploadId=deadbeef&partNumber=1", []byte("x"))
	wantStatus(t, resp, body, 404)
	resp, body = do(t, "PUT", srv.URL+"/t/rival/obj?uploadId="+id+"&partNumber=1", []byte("x"))
	wantStatus(t, resp, body, 404)
	resp, body = do(t, "PUT", srv.URL+"/t/acme/other?uploadId="+id+"&partNumber=1", []byte("x"))
	wantStatus(t, resp, body, 404)

	// Completing an upload with no parts is a client error.
	resp, body = do(t, "POST", srv.URL+"/t/acme/obj?uploadId="+id, nil)
	wantStatus(t, resp, body, 400)

	// Abort, then the id is gone.
	resp, body = do(t, "PUT", srv.URL+"/t/acme/obj?uploadId="+id+"&partNumber=1", []byte("x"))
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "DELETE", srv.URL+"/t/acme/obj?uploadId="+id, nil)
	wantStatus(t, resp, body, 204)
	resp, body = do(t, "GET", srv.URL+"/t/acme/obj?uploadId="+id, nil)
	wantStatus(t, resp, body, 404)
}

func TestMetricsEndpoint(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	obj := testBytes(13, 3000)
	do(t, "PUT", srv.URL+"/t/acme/m", obj)
	do(t, "GET", srv.URL+"/t/acme/m", nil)
	do(t, "GET", srv.URL+"/t/acme/missing", nil)

	resp, body := do(t, "GET", srv.URL+"/metrics", nil)
	wantStatus(t, resp, body, 200)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Verbs["PUT"].Requests != 1 || snap.Verbs["GET"].Requests != 2 {
		t.Fatalf("verb counts = %+v", snap.Verbs)
	}
	if snap.BytesIn != 3000 || snap.BytesOut != 3000 {
		t.Fatalf("bytes in/out = %d/%d, want 3000/3000", snap.BytesIn, snap.BytesOut)
	}
	if snap.Verbs["GET"].P99Ms < snap.Verbs["GET"].P50Ms {
		t.Fatalf("p99 %v < p50 %v", snap.Verbs["GET"].P99Ms, snap.Verbs["GET"].P50Ms)
	}
	if snap.Store.PutBlocks == 0 {
		t.Fatal("store metrics missing from snapshot")
	}
}

// TestRangeSuffixZeroIs416: RFC 7233 says a suffix range of zero bytes
// ("bytes=-0") is satisfiable by nothing — the right answer is 416 with
// a bytes */size hint, never an empty 206. Regression for a bug where
// the zero suffix fell through to the clamped-empty-window path.
func TestRangeSuffixZeroIs416(t *testing.T) {
	_, srv := newTestGateway(t, Config{})
	obj := testBytes(21, 1000)
	url := srv.URL + "/t/acme/suffix"
	resp, body := do(t, "PUT", url, obj)
	wantStatus(t, resp, body, 200)

	resp, body = do(t, "GET", url, nil, "Range", "bytes=-0")
	wantStatus(t, resp, body, 416)
	if len(body) != 0 && resp.Header.Get("Content-Type") == "application/octet-stream" {
		t.Fatalf("bytes=-0 served %d object bytes with a 416", len(body))
	}
	if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes */%d", len(obj)) {
		t.Fatalf("bytes=-0 Content-Range = %q, want \"bytes */%d\"", got, len(obj))
	}

	// Same story against a zero-length object: no suffix of it exists.
	urlEmpty := srv.URL + "/t/acme/empty"
	resp, body = do(t, "PUT", urlEmpty, []byte{})
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "GET", urlEmpty, nil, "Range", "bytes=-0")
	wantStatus(t, resp, body, 416)
	resp, body = do(t, "GET", urlEmpty, nil, "Range", "bytes=-5")
	wantStatus(t, resp, body, 416)
}

// TestRejectRetryAfterFloor: the 429 Retry-After hint is whole seconds
// rounded up and floored at 1 — a sub-second (or zero) wait must never
// produce "Retry-After: 0", which some clients treat as "retry now" and
// turn into a tight loop against an already-saturated tenant budget.
func TestRejectRetryAfterFloor(t *testing.T) {
	g, _ := newTestGateway(t, Config{})
	for _, c := range []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{time.Nanosecond, "1"},
		{time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{time.Second + time.Nanosecond, "2"},
		{1500 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
	} {
		rec := httptest.NewRecorder()
		g.reject(rec, c.wait)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("reject(%v) = %d, want 429", c.wait, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != c.want {
			t.Fatalf("reject(%v) Retry-After = %q, want %q", c.wait, got, c.want)
		}
	}
}

// TestMetricsCacheHitRate: with a caching store behind the gateway,
// repeat GETs of the same object earn cache hits and /metrics surfaces
// the hit rate alongside the raw store counters.
func TestMetricsCacheHitRate(t *testing.T) {
	s, err := store.New(store.Config{BlockSize: 256, CacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	_, srv := newTestGateway(t, Config{Store: s})

	obj := testBytes(22, 3*2560+17)
	url := srv.URL + "/t/acme/hot"
	resp, body := do(t, "PUT", url, obj)
	wantStatus(t, resp, body, 200)
	resp, body = do(t, "GET", url, nil) // warm the cache
	wantStatus(t, resp, body, 200)
	for i := 0; i < 3; i++ {
		resp, body = do(t, "GET", url, nil, "Range", "bytes=100-699")
		wantStatus(t, resp, body, 206)
		if !bytes.Equal(body, obj[100:700]) {
			t.Fatal("ranged GET returned wrong bytes")
		}
	}

	resp, body = do(t, "GET", srv.URL+"/metrics", nil)
	wantStatus(t, resp, body, 200)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Store.CacheHits == 0 {
		t.Fatal("repeat GETs of a warm object earned no cache hits")
	}
	if snap.CacheHitRate <= 0 || snap.CacheHitRate > 1 {
		t.Fatalf("cache_hit_rate = %v, want in (0, 1]", snap.CacheHitRate)
	}
}
