// Package gateway serves a store.Store over HTTP with an S3-flavored
// surface: per-tenant key namespaces under /t/<tenant>/<key>, ranged
// GETs that read only the blocks a range covers, multipart uploads whose
// state survives kill -9 (part data rides the store's WAL-backed commit
// path; the upload record lives in the same metadata plane), token-
// bucket admission control that answers 429 + Retry-After instead of
// queueing, and a JSON /metrics endpoint.
//
// The gateway holds no durable state of its own. Everything it persists
// goes through the store — objects via PutReader, upload records via
// PutUploadRecord — so a gateway process is freely killable and
// replaceable: reopen the store, hand it to a new Gateway, and every
// committed object and in-flight multipart upload is exactly where it
// was.
//
// Error mapping is typed end to end: handlers test the store's exported
// sentinels with errors.Is (never message strings) and translate
// ErrNotFound→404, ErrBadKey→400, ErrBadRange→416, ErrUnrecoverable and
// meta.ErrClosed→503.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/store"
)

// Config configures a Gateway. Zero fields take defaults (no auth, no
// admission limits).
type Config struct {
	// Store is the object store to serve. Required.
	Store *store.Store
	// Tokens maps tenant → bearer token. A tenant with an entry must
	// present "Authorization: Bearer <token>" on every request; tenants
	// without one are open (the loopback-by-default deployment).
	Tokens map[string]string
	// BytesPerSec is each tenant's byte-rate budget across puts and gets
	// (0 = unlimited). One token bucket per tenant, shared by all its
	// connections; when the bucket is in debt new requests get 429 with
	// Retry-After instead of queueing — foreground QoS on the same
	// machinery that paces the repair and scrub datapaths.
	BytesPerSec int64
	// MaxInflight caps each tenant's concurrent requests (0 = unlimited).
	// Excess requests get 429.
	MaxInflight int64
}

// Gateway is an http.Handler serving one store.
type Gateway struct {
	st  *store.Store
	cfg Config
	m   metricsState

	mu      sync.Mutex
	tenants map[string]*tenant
}

// tenant is one tenant's admission state.
type tenant struct {
	lim      *store.Limiter
	inflight atomic.Int64
}

// New builds a Gateway over cfg.Store.
func New(cfg Config) (*Gateway, error) {
	if cfg.Store == nil {
		return nil, errors.New("gateway: Config.Store is required")
	}
	g := &Gateway{st: cfg.Store, cfg: cfg, tenants: make(map[string]*tenant)}
	g.m.init()
	return g, nil
}

// Store returns the store the gateway serves.
func (g *Gateway) Store() *store.Store { return g.st }

func (g *Gateway) tenantState(name string) *tenant {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.tenants[name]
	if !ok {
		t = &tenant{lim: store.NewLimiter(g.cfg.BytesPerSec)}
		g.tenants[name] = t
	}
	return t
}

// ServeHTTP routes:
//
//	GET  /metrics                      gateway + store counters, JSON
//	GET  /t/<tenant>?prefix=P          list the tenant's keys
//	PUT  /t/<tenant>/<key>             store an object
//	GET  /t/<tenant>/<key>             read it (Range: bytes=... honored)
//	HEAD /t/<tenant>/<key>             size without the body
//	DELETE /t/<tenant>/<key>           remove it
//	POST /t/<tenant>/<key>?uploads     begin a multipart upload
//	PUT  /t/<tenant>/<key>?uploadId=U&partNumber=N   upload one part
//	GET  /t/<tenant>/<key>?uploadId=U  list committed parts
//	POST /t/<tenant>/<key>?uploadId=U  complete (assemble the object)
//	DELETE /t/<tenant>/<key>?uploadId=U  abort
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		writeJSON(w, http.StatusOK, g.Metrics())
		return
	case "/healthz":
		g.handleHealthz(w)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/t/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	tenantName, key, _ := strings.Cut(rest, "/")
	verb := r.Method
	if key == "" && r.Method == http.MethodGet {
		verb = "LIST"
	}
	vs := g.m.verb(verb)
	start := time.Now()
	defer func() { vs.observe(time.Since(start)) }()

	// Validate tenant and key before anything touches a backend: the
	// store's charset, plus "no leading dot" for tenants so the
	// gateway's reserved .mpu/ part namespace cannot be addressed (or
	// shadowed) from the wire.
	if err := validateTenant(tenantName); err != nil {
		g.writeError(w, err)
		return
	}
	if key != "" {
		if err := store.ValidateName(tenantName + "/" + key); err != nil {
			g.writeError(w, err)
			return
		}
	}
	if !g.authorized(r, tenantName) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="xorbasd"`)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	t := g.tenantState(tenantName)
	if max := g.cfg.MaxInflight; max > 0 {
		if t.inflight.Add(1) > max {
			t.inflight.Add(-1)
			g.reject(w, time.Second)
			return
		}
		defer t.inflight.Add(-1)
	}

	q := r.URL.Query()
	name := tenantName + "/" + key
	switch {
	case key == "":
		if r.Method != http.MethodGet {
			g.methodNotAllowed(w)
			return
		}
		g.handleList(w, tenantName, q.Get("prefix"))
	case q.Has("uploads") && r.Method == http.MethodPost:
		g.beginUpload(w, tenantName, key)
	case q.Get("uploadId") != "":
		id := q.Get("uploadId")
		switch r.Method {
		case http.MethodPut:
			g.putPart(w, r, t, id, tenantName, key, q.Get("partNumber"))
		case http.MethodGet:
			g.listParts(w, id, tenantName, key)
		case http.MethodPost:
			g.completeUpload(w, t, id, tenantName, key)
		case http.MethodDelete:
			g.abortUpload(w, id, tenantName, key)
		default:
			g.methodNotAllowed(w)
		}
	default:
		switch r.Method {
		case http.MethodPut:
			g.handlePut(w, r, t, name)
		case http.MethodGet:
			g.handleGet(w, r, t, name)
		case http.MethodHead:
			g.handleHead(w, name)
		case http.MethodDelete:
			g.handleDelete(w, name)
		default:
			g.methodNotAllowed(w)
		}
	}
}

// validateTenant holds tenant names to a single store-charset path
// segment that does not start with '.' — the leading-dot namespace is
// reserved for gateway internals (multipart part objects under .mpu/).
func validateTenant(tenant string) error {
	if tenant == "" {
		return fmt.Errorf("%w: empty tenant", store.ErrBadKey)
	}
	if tenant[0] == '.' {
		return fmt.Errorf("%w: tenant %q starts with '.'", store.ErrBadKey, tenant)
	}
	if strings.Contains(tenant, "/") {
		return fmt.Errorf("%w: tenant %q contains '/'", store.ErrBadKey, tenant)
	}
	return store.ValidateName(tenant)
}

// authorized enforces the tenant's bearer token when one is configured.
func (g *Gateway) authorized(r *http.Request, tenant string) bool {
	want, ok := g.cfg.Tokens[tenant]
	if !ok {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && got == want
}

// admit runs the tenant's token bucket for n bytes; on refusal it writes
// the 429 and reports false.
func (g *Gateway) admit(w http.ResponseWriter, t *tenant, n int64) bool {
	wait, ok := t.lim.Admit(n)
	if !ok {
		g.reject(w, wait)
		return false
	}
	return true
}

// reject answers 429 with a Retry-After hint (whole seconds, floored at
// 1 — small waits still need a positive hint).
func (g *Gateway) reject(w http.ResponseWriter, wait time.Duration) {
	g.m.rejected.Add(1)
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, "tenant over admission budget", http.StatusTooManyRequests)
}

func (g *Gateway) methodNotAllowed(w http.ResponseWriter) {
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
}

// writeError maps a store/meta error onto an HTTP status via errors.Is
// — the one place gateway errors become status codes, with no string
// matching anywhere.
func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	var code int
	switch {
	case errors.Is(err, store.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, store.ErrBadKey):
		code = http.StatusBadRequest
	case errors.Is(err, store.ErrBadRange):
		code = http.StatusRequestedRangeNotSatisfiable
	case errors.Is(err, store.ErrUnrecoverable), errors.Is(err, meta.ErrClosed):
		code = http.StatusServiceUnavailable
	default:
		code = http.StatusInternalServerError
	}
	if code == http.StatusServiceUnavailable {
		// Unrecoverable reads and closed planes are transient from the
		// client's seat — repair or a restart may fix them — so tell
		// clients when to come back instead of letting them hammer.
		w.Header().Set("Retry-After", strconv.FormatInt(int64(degradedRetryAfter/time.Second), 10))
	}
	http.Error(w, err.Error(), code)
}

// degradedRetryAfter is the Retry-After hint on 503s: long enough for a
// repair round or a monitor revival to land, short enough that clients
// notice recovery quickly.
const degradedRetryAfter = 5 * time.Second

// shedWrite answers 503 + Retry-After when the store has too few live
// nodes to place a full stripe — reads keep serving degraded, but a
// write would fail mid-stripe and leave garbage to roll back, so the
// gateway refuses it up front. Reports whether the request was shed.
func (g *Gateway) shedWrite(w http.ResponseWriter) bool {
	if !g.st.WriteDegraded() {
		return false
	}
	w.Header().Set("Retry-After", strconv.FormatInt(int64(degradedRetryAfter/time.Second), 10))
	http.Error(w, "write degraded: too few live nodes for a full stripe", http.StatusServiceUnavailable)
	return true
}

// healthNode is one node's row in the /healthz report.
type healthNode struct {
	Node        int     `json:"node"`
	Alive       bool    `json:"alive"`
	State       string  `json:"state"`
	Breaker     string  `json:"breaker"`
	ConsecFails int     `json:"consec_fails,omitempty"`
	Opens       int64   `json:"opens,omitempty"`
	WindowOps   int     `json:"window_ops,omitempty"`
	ErrRate     float64 `json:"err_rate,omitempty"`
	P50Ms       float64 `json:"p50_ms,omitempty"`
	P99Ms       float64 `json:"p99_ms,omitempty"`
	LastErr     string  `json:"last_err,omitempty"`
}

// healthMembership is the /healthz elastic-membership block: the planned
// topology's epoch and per-state counts, plus drain/rebalance progress.
type healthMembership struct {
	Epoch            int64 `json:"epoch"`
	Active           int   `json:"active"`
	Joining          int   `json:"joining,omitempty"`
	Draining         int   `json:"draining,omitempty"`
	Dead             int   `json:"dead,omitempty"`
	DrainingBlocks   int   `json:"draining_blocks,omitempty"`
	RebalancedBlocks int64 `json:"rebalanced_blocks,omitempty"`
	RebalancedBytes  int64 `json:"rebalanced_bytes,omitempty"`
}

// healthReport is the /healthz body: overall status plus the per-node
// failure-plane view (liveness as the store records it, breaker state
// as the backend sees it, membership state as planned).
type healthReport struct {
	Status     string           `json:"status"`
	LiveNodes  int              `json:"live_nodes"`
	Membership healthMembership `json:"membership"`
	Nodes      []healthNode     `json:"nodes"`
}

// handleHealthz always answers 200 — a gateway that can report health
// is up; degradation is in the body, not the status code, so probes
// distinguish "down" from "degraded but serving reads".
func (g *Gateway) handleHealthz(w http.ResponseWriter) {
	rep := healthReport{Status: "ok", LiveNodes: g.st.LiveNodes()}
	ms := g.st.MembershipStatus()
	rep.Membership = healthMembership{
		Epoch:            ms.Epoch,
		Active:           ms.Active,
		Joining:          ms.Joining,
		Draining:         ms.Draining,
		Dead:             ms.Dead,
		DrainingBlocks:   ms.DrainingBlocks,
		RebalancedBlocks: ms.RebalancedBlocks,
		RebalancedBytes:  ms.RebalancedBytes,
	}
	members := g.st.Members()
	for _, info := range g.st.NodeHealth() {
		state := string(store.NodeDead)
		if info.Node >= 0 && info.Node < len(members) {
			state = string(members[info.Node].State)
		}
		rep.Nodes = append(rep.Nodes, healthNode{
			Node:        info.Node,
			Alive:       info.Alive,
			State:       state,
			Breaker:     info.State,
			ConsecFails: info.ConsecFails,
			Opens:       info.Opens,
			WindowOps:   info.WindowOps,
			ErrRate:     info.WindowErrRate,
			P50Ms:       float64(info.P50.Microseconds()) / 1e3,
			P99Ms:       float64(info.P99.Microseconds()) / 1e3,
			LastErr:     info.LastErr,
		})
	}
	// "Degraded" is judged against the planned topology, not raw node
	// count: a retired (dead) member missing is by design, a draining one
	// is still expected up.
	expected := ms.Active + ms.Joining + ms.Draining
	if g.st.WriteDegraded() {
		rep.Status = "degraded-readonly"
	} else if rep.LiveNodes < expected {
		rep.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// countingReader counts object bytes received into the gateway-wide
// counter and a local total (the post-hoc charge for chunked uploads).
type countingReader struct {
	r   io.Reader
	n   int64
	acc *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	c.acc.Add(int64(n))
	return n, err
}

// countingWriter counts object bytes served.
type countingWriter struct {
	w   io.Writer
	acc *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.acc.Add(int64(n))
	return n, err
}

// handlePut stores the request body as one object. A declared
// Content-Length is admitted up front (429 before any byte moves); a
// chunked body is admitted at zero and charged after the fact, so the
// debt lands on the tenant's next request.
func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request, t *tenant, name string) {
	if g.shedWrite(w) {
		return
	}
	declared := r.ContentLength
	if declared < 0 {
		declared = 0
	}
	if !g.admit(w, t, declared) {
		return
	}
	cr := &countingReader{r: r.Body, acc: &g.m.bytesIn}
	if err := g.st.PutReader(name, cr); err != nil {
		g.writeError(w, err)
		return
	}
	if r.ContentLength < 0 {
		t.lim.Charge(cr.n)
	}
	w.WriteHeader(http.StatusOK)
}

// handleGet serves an object, honoring a single `Range: bytes=...`
// request with 206/416 semantics. A ranged read goes through
// Store.GetRange, which fetches only the data blocks the range covers.
func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request, t *tenant, name string) {
	st, err := g.st.Stat(name)
	if err != nil {
		g.writeError(w, err)
		return
	}
	size := int64(st.Size)
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w, acc: &g.m.bytesOut}
	if rng := r.Header.Get("Range"); rng != "" {
		off, length, ok, satisfiable := parseRange(rng, size)
		if ok && !satisfiable {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			http.Error(w, "requested range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		if ok {
			if !g.admit(w, t, length) {
				return
			}
			w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, size))
			w.WriteHeader(http.StatusPartialContent)
			if _, err := g.st.GetRange(name, off, length, cw); err != nil {
				// Status is out the door; all we can do is cut the body
				// short so the client sees a truncated 206, not a clean one.
				return
			}
			return
		}
		// An unparseable Range header is ignored per RFC 7233 — fall
		// through to the full object.
	}
	if !g.admit(w, t, size) {
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = g.st.GetWriter(name, cw)
}

// parseRange interprets a single-range `bytes=` header against an object
// of the given size. ok=false means the header is malformed or uses
// features the gateway does not serve (multiple ranges) — the caller
// ignores it. ok=true, satisfiable=false is the 416 case. Otherwise
// [off, off+length) is the window, clamped to the object.
func parseRange(h string, size int64) (off, length int64, ok, satisfiable bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false, false
	}
	lo, hi, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return 0, 0, false, false
	}
	if lo == "" {
		// Suffix range: last N bytes.
		n, err := strconv.ParseInt(hi, 10, 64)
		if err != nil || n < 0 {
			return 0, 0, false, false
		}
		if n == 0 || size == 0 {
			return 0, 0, true, false
		}
		if n > size {
			n = size
		}
		return size - n, n, true, true
	}
	start, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, false, false
	}
	if start >= size {
		return 0, 0, true, false
	}
	end := size - 1 // open-ended "a-"
	if hi != "" {
		end, err = strconv.ParseInt(hi, 10, 64)
		if err != nil || end < start {
			return 0, 0, false, false
		}
		if end > size-1 {
			end = size - 1
		}
	}
	return start, end - start + 1, true, true
}

// handleHead answers the object's size with no body.
func (g *Gateway) handleHead(w http.ResponseWriter, name string) {
	st, err := g.st.Stat(name)
	if err != nil {
		g.writeError(w, err)
		return
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(st.Size))
	w.WriteHeader(http.StatusOK)
}

func (g *Gateway) handleDelete(w http.ResponseWriter, name string) {
	if err := g.st.Delete(name); err != nil {
		g.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ListEntry is one key in a tenant listing.
type ListEntry struct {
	Key  string `json:"key"`
	Size int    `json:"size"`
}

// ListResult is the tenant-listing JSON document.
type ListResult struct {
	Tenant  string      `json:"tenant"`
	Prefix  string      `json:"prefix,omitempty"`
	Objects []ListEntry `json:"objects"`
}

// handleList lists the tenant's keys under an optional prefix, sorted.
// The store scan is already tenant-scoped (object names embed the
// tenant), so one tenant can never see another's keys.
func (g *Gateway) handleList(w http.ResponseWriter, tenant, prefix string) {
	full := tenant + "/" + prefix
	objs := g.st.ObjectsWithPrefix(full)
	out := ListResult{Tenant: tenant, Prefix: prefix, Objects: []ListEntry{}}
	for _, o := range objs {
		key, ok := strings.CutPrefix(o.Name, tenant+"/")
		if !ok {
			continue
		}
		out.Objects = append(out.Objects, ListEntry{Key: key, Size: o.Size})
	}
	sort.Slice(out.Objects, func(i, j int) bool { return out.Objects[i].Key < out.Objects[j].Key })
	writeJSON(w, http.StatusOK, out)
}
