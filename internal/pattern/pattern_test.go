package pattern

import (
	"io"
	"testing"
)

// TestFillMatchesByte pins the bulk word-wise generator to the Byte
// definition across offsets and odd lengths (the word body plus tails).
func TestFillMatchesByte(t *testing.T) {
	for _, off := range []int64{0, 1, 7, 8, 13, 1 << 20, 1<<32 + 3} {
		for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
			p := make([]byte, n)
			fill(p, off)
			for i := range p {
				if want := Byte(off + int64(i)); p[i] != want {
					t.Fatalf("fill(off=%d)[%d] = %#x, want %#x", off, i, p[i], want)
				}
			}
		}
	}
}

// TestReaderVerifierRoundTrip streams through odd-sized chunks so both
// the reader's and the verifier's word/tail paths are exercised.
func TestReaderVerifierRoundTrip(t *testing.T) {
	const size = 100003
	r := NewReader(size)
	v := &Verifier{}
	buf := make([]byte, 977) // odd chunk: every call straddles words
	if _, err := io.CopyBuffer(v, r, buf); err != nil {
		t.Fatal(err)
	}
	if v.Err != nil || v.N != size {
		t.Fatalf("verifier: n=%d err=%v", v.N, v.Err)
	}
}

// TestVerifierCatchesDivergence pins the mismatch offset report.
func TestVerifierCatchesDivergence(t *testing.T) {
	v := &Verifier{}
	p := make([]byte, 64)
	fill(p, 0)
	p[41] ^= 1
	if _, err := v.Write(p); err == nil {
		t.Fatal("verifier accepted a corrupted stream")
	}
	if v.Err == nil {
		t.Fatal("verifier did not record the mismatch")
	}
}
