// Package pattern is a deterministic byte stream computable at any
// offset, shared by the streaming tests, benchmarks and walkthroughs:
// an object far larger than RAM can be generated on the way into the
// store and verified on the way out without ever being materialized.
package pattern

import (
	"encoding/binary"
	"fmt"
	"io"
)

// mulC and addC are the affine constants behind Byte: the per-offset
// value is x(off) = off·mulC + addC, so x advances by a single addition
// per byte — the word-wise generator below leans on that instead of
// multiplying at every offset.
const (
	mulC = 2654435761
	addC = 12345
)

// Byte is the stream's value at offset off.
func Byte(off int64) byte {
	x := uint64(off)*mulC + addC
	return byte(x ^ x>>24)
}

// fill writes the pattern for offsets [off, off+len(p)) into p, eight
// bytes per loop iteration. x is affine in the offset, so each lane costs
// an add, a shift and an xor — no multiply — and lands as one 8-byte
// store. Byte remains the definition; this is its bulk form.
func fill(p []byte, off int64) {
	x := uint64(off)*mulC + addC
	n := len(p) &^ 7
	for i := 0; i < n; i += 8 {
		w := uint64(byte(x ^ x>>24))
		x += mulC
		w |= uint64(byte(x^x>>24)) << 8
		x += mulC
		w |= uint64(byte(x^x>>24)) << 16
		x += mulC
		w |= uint64(byte(x^x>>24)) << 24
		x += mulC
		w |= uint64(byte(x^x>>24)) << 32
		x += mulC
		w |= uint64(byte(x^x>>24)) << 40
		x += mulC
		w |= uint64(byte(x^x>>24)) << 48
		x += mulC
		w |= uint64(byte(x^x>>24)) << 56
		x += mulC
		binary.LittleEndian.PutUint64(p[i:], w)
	}
	for i := n; i < len(p); i++ {
		p[i] = byte(x ^ x>>24)
		x += mulC
	}
}

// Reader yields size pattern bytes then io.EOF, without buffering.
type Reader struct {
	off, size int64
}

// NewReader returns a Reader for a size-byte object.
func NewReader(size int64) *Reader { return &Reader{size: size} }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := r.size - r.off; int64(n) > rem {
		n = int(rem)
	}
	fill(p[:n], r.off)
	r.off += int64(n)
	return n, nil
}

// Verifier checks a written stream against the pattern, again without
// buffering. After the stream completes, N is the byte count verified
// and Err is nil iff every byte matched.
type Verifier struct {
	// N counts bytes verified so far.
	N int64
	// Err is the first mismatch seen; writes after it fail immediately.
	Err error
}

// Write implements io.Writer, failing on the first divergent byte.
func (v *Verifier) Write(p []byte) (int, error) {
	if v.Err != nil {
		return 0, v.Err
	}
	x := uint64(v.N)*mulC + addC
	var w [8]byte
	i, n := 0, len(p)&^7
	for ; i < n; i += 8 {
		fillWord(&w, x)
		if binary.LittleEndian.Uint64(p[i:]) != binary.LittleEndian.Uint64(w[:]) {
			return v.fail(p, i)
		}
		x += 8 * mulC
	}
	for ; i < len(p); i++ {
		if p[i] != byte(x^x>>24) {
			return v.fail(p, i)
		}
		x += mulC
	}
	v.N += int64(len(p))
	return len(p), nil
}

// fillWord materializes eight pattern bytes starting at affine state x.
func fillWord(w *[8]byte, x uint64) {
	for i := 0; i < 8; i++ {
		w[i] = byte(x ^ x>>24)
		x += mulC
	}
}

// fail pinpoints the first divergent byte at or after p[i] and records it.
func (v *Verifier) fail(p []byte, i int) (int, error) {
	for ; i < len(p); i++ {
		if want := Byte(v.N + int64(i)); p[i] != want {
			v.Err = fmt.Errorf("pattern: byte %d: got %#x, want %#x", v.N+int64(i), p[i], want)
			return i, v.Err
		}
	}
	// Unreachable: callers only invoke fail on a detected mismatch.
	v.N += int64(len(p))
	return len(p), nil
}
