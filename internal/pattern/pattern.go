// Package pattern is a deterministic byte stream computable at any
// offset, shared by the streaming tests, benchmarks and walkthroughs:
// an object far larger than RAM can be generated on the way into the
// store and verified on the way out without ever being materialized.
package pattern

import (
	"fmt"
	"io"
)

// Byte is the stream's value at offset off.
func Byte(off int64) byte {
	x := uint64(off)*2654435761 + 12345
	return byte(x ^ x>>24)
}

// Reader yields size pattern bytes then io.EOF, without buffering.
type Reader struct {
	off, size int64
}

// NewReader returns a Reader for a size-byte object.
func NewReader(size int64) *Reader { return &Reader{size: size} }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := r.size - r.off; int64(n) > rem {
		n = int(rem)
	}
	for i := 0; i < n; i++ {
		p[i] = Byte(r.off + int64(i))
	}
	r.off += int64(n)
	return n, nil
}

// Verifier checks a written stream against the pattern, again without
// buffering. After the stream completes, N is the byte count verified
// and Err is nil iff every byte matched.
type Verifier struct {
	// N counts bytes verified so far.
	N int64
	// Err is the first mismatch seen; writes after it fail immediately.
	Err error
}

// Write implements io.Writer, failing on the first divergent byte.
func (v *Verifier) Write(p []byte) (int, error) {
	if v.Err != nil {
		return 0, v.Err
	}
	for i, b := range p {
		if want := Byte(v.N + int64(i)); b != want {
			v.Err = fmt.Errorf("pattern: byte %d: got %#x, want %#x", v.N+int64(i), b, want)
			return i, v.Err
		}
	}
	v.N += int64(len(p))
	return len(p), nil
}
