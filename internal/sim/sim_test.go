package sim

import (
	"math"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(5, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(5, func() { order = append(order, 3) }) // same time: FIFO
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 5 {
		t.Fatalf("now %f", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits %v", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 || e.Now() != 5 || e.Pending() != 1 {
		t.Fatalf("fired=%d now=%f pending=%d", fired, e.Now(), e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 10 {
		t.Fatal("remaining event did not run")
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(2, func() {
		e.Schedule(-5, func() {
			if e.Now() != 2 {
				t.Errorf("negative delay ran at %f", e.Now())
			}
		})
	})
	e.Run()
}

// A single flow on an idle network runs at min(egress, ingress).
func TestSingleFlowRate(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 2, 100, 80, 0) // ingress 80 is the bottleneck
	var doneAt float64
	n.StartFlow(0, 1, 800, false, "t", func(*Flow) { doneAt = e.Now() })
	e.Run()
	if math.Abs(doneAt-10) > 1e-6 {
		t.Fatalf("800 bytes at 80 B/s should take 10 s, took %f", doneAt)
	}
}

// Two flows from one source share its egress equally.
func TestEgressSharing(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 3, 100, 1000, 0)
	var t1, t2 float64
	n.StartFlow(0, 1, 500, false, "a", func(*Flow) { t1 = e.Now() })
	n.StartFlow(0, 2, 500, false, "b", func(*Flow) { t2 = e.Now() })
	e.Run()
	// Each gets 50 B/s → 10 s.
	if math.Abs(t1-10) > 1e-6 || math.Abs(t2-10) > 1e-6 {
		t.Fatalf("t1=%f t2=%f want 10", t1, t2)
	}
}

// When one flow finishes, the survivor picks up the freed capacity.
func TestRateReallocation(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 3, 100, 1000, 0)
	var tShort, tLong float64
	n.StartFlow(0, 1, 250, false, "short", func(*Flow) { tShort = e.Now() })
	n.StartFlow(0, 2, 750, false, "long", func(*Flow) { tLong = e.Now() })
	e.Run()
	// Shared at 50 B/s until short finishes at t=5; long then has 500
	// left at 100 B/s → finishes at t=10.
	if math.Abs(tShort-5) > 1e-6 {
		t.Fatalf("tShort=%f want 5", tShort)
	}
	if math.Abs(tLong-10) > 1e-6 {
		t.Fatalf("tLong=%f want 10", tLong)
	}
}

// Max-min fairness: a flow constrained to 10 by its ingress leaves the
// rest of the shared egress to the other flow.
func TestMaxMinWaterfilling(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 3, 100, 1000, 0)
	n.SetNodeCapacity(1, 1000, 10) // node 1 ingress tiny
	var tSlow, tFast float64
	n.StartFlow(0, 1, 100, false, "slow", func(*Flow) { tSlow = e.Now() })
	n.StartFlow(0, 2, 900, false, "fast", func(*Flow) { tFast = e.Now() })
	e.Run()
	// slow: 10 B/s → 10 s. fast: 90 B/s → 10 s.
	if math.Abs(tSlow-10) > 1e-6 || math.Abs(tFast-10) > 1e-6 {
		t.Fatalf("tSlow=%f tFast=%f want 10,10", tSlow, tFast)
	}
}

// The fabric cap binds the aggregate of cross-rack flows.
func TestFabricCap(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 4, 1000, 1000, 100)
	var times []float64
	for i := 0; i < 2; i++ {
		from, to := i, 2+i
		n.StartFlow(from, to, 500, true, "x", func(*Flow) { times = append(times, e.Now()) })
	}
	e.Run()
	// 2 cross-rack flows share 100 B/s fabric → 50 B/s each → 10 s.
	sort.Float64s(times)
	if len(times) != 2 || math.Abs(times[1]-10) > 1e-6 {
		t.Fatalf("times %v want both 10", times)
	}
}

// Local (same-node) and zero-byte flows complete immediately.
func TestDegenerateFlows(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 2, 100, 100, 0)
	done := 0
	n.StartFlow(0, 0, 1e9, false, "local", func(*Flow) { done++ })
	n.StartFlow(0, 1, 0, false, "empty", func(*Flow) { done++ })
	e.Run()
	if done != 2 {
		t.Fatalf("done=%d", done)
	}
	if e.Now() != 0 {
		t.Fatalf("degenerate flows advanced time to %f", e.Now())
	}
}

// Progress callbacks account every byte exactly once.
func TestOnProgressConservation(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 3, 100, 100, 0)
	var accounted float64
	n.OnProgress = func(f *Flow, b float64) { accounted += b }
	n.StartFlow(0, 1, 300, false, "a", nil)
	n.StartFlow(0, 2, 500, false, "b", nil)
	n.StartFlow(1, 2, 200, false, "c", nil)
	e.Run()
	if math.Abs(accounted-1000) > 1e-3 {
		t.Fatalf("accounted %f want 1000", accounted)
	}
	if n.Active() != 0 {
		t.Fatal("flows leaked")
	}
}

// Chained flows via done callbacks (the repair pattern: read then write).
func TestChainedFlows(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 3, 100, 100, 0)
	var finished float64
	n.StartFlow(0, 1, 1000, false, "read", func(*Flow) {
		n.StartFlow(1, 2, 1000, false, "write", func(*Flow) { finished = e.Now() })
	})
	e.Run()
	if math.Abs(finished-20) > 1e-6 {
		t.Fatalf("finished=%f want 20", finished)
	}
}

// Determinism: identical runs produce identical completion times.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		n := NewNet(e, 5, 123, 77, 400)
		var times []float64
		for i := 0; i < 20; i++ {
			from := i % 4
			to := (i + 1) % 5
			if from == to {
				from = (from + 1) % 5
			}
			n.StartFlow(from, to, float64(100+i*37), i%2 == 0, "t", func(*Flow) {
				times = append(times, e.Now())
			})
		}
		e.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestStartFlowPanicsOnBadEndpoint(t *testing.T) {
	e := NewEngine()
	n := NewNet(e, 2, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.StartFlow(0, 5, 10, false, "bad", nil)
}

func BenchmarkThousandFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := NewNet(e, 50, 1e8, 1e8, 0)
		for j := 0; j < 1000; j++ {
			n.StartFlow(j%50, (j+7)%50, 64<<20, false, "x", nil)
		}
		e.Run()
	}
}
