// Package sim is a deterministic discrete-event simulation kernel with a
// fluid (max-min fair) network model. It is the substrate under the
// cluster and HDFS layers: the paper's EC2 and Facebook experiments
// (Section 5) run on this kernel instead of real machines, preserving the
// traffic-shape quantities the paper measures — bytes read, network
// traffic, repair durations — because those depend on which blocks the
// decoders read and how transfers share links, both of which are modelled
// explicitly.
package sim

import (
	"container/heap"
	"math"
)

// Engine is a discrete-event scheduler. Time is in seconds from zero.
// Engines are single-goroutine; callbacks run synchronously inside Run.
type Engine struct {
	now   float64
	seq   int64
	queue eventQueue
}

type event struct {
	at  float64
	seq int64 // FIFO tie-break for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds (clamped to now for negative
// delays).
func (e *Engine) Schedule(delay float64, fn func()) {
	at := e.now + delay
	if delay < 0 || math.IsNaN(delay) {
		at = e.now
	}
	e.ScheduleAt(at, fn)
}

// ScheduleAt runs fn at absolute time at (clamped to now if in the past).
func (e *Engine) ScheduleAt(at float64, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// Run processes events until the queue drains.
func (e *Engine) Run() {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
}

// RunUntil processes events with timestamps ≤ t, then advances the clock
// to t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
