package sim

import (
	"fmt"
	"math"
)

// Net is a fluid network: concurrent flows share link capacity max-min
// fairly, recomputed whenever the flow set changes. Each node has an
// egress and an ingress link; an optional shared fabric link caps the
// aggregate of cross-rack flows (the paper's γ = 1 Gb/s cross-rack limit
// in Section 4's model; EC2 runs leave it unlimited).
type Net struct {
	eng        *Engine
	nodes      int
	outBps     []float64
	inBps      []float64
	fabric     float64 // 0 = unlimited
	flows      []*Flow // insertion-ordered so callbacks fire deterministically
	timerGen   int64
	lastUpdate float64 // engine time of the last progress accounting

	// OnProgress, if set, is invoked on every rate recomputation with the
	// bytes each flow moved since the previous recomputation — the hook
	// the metrics layer uses to build 5-minute-resolution time series.
	OnProgress func(f *Flow, bytes float64)
}

// Flow is an in-flight transfer.
type Flow struct {
	From, To  int
	CrossRack bool // counts against the shared fabric, if capped
	// Tag is free-form metadata for metrics attribution (e.g. "repair-read").
	Tag string

	remaining float64
	rate      float64
	started   float64
	done      func(f *Flow)
}

// Remaining returns the bytes not yet transferred.
func (f *Flow) Remaining() float64 { return f.remaining }

// Started returns the flow's start time.
func (f *Flow) Started() float64 { return f.started }

// NewNet creates a network of n nodes with uniform egress/ingress
// capacities (bytes per second) and an optional aggregate cross-rack
// fabric capacity (0 disables the cap).
func NewNet(eng *Engine, n int, outBps, inBps, fabricBps float64) *Net {
	net := &Net{
		eng:    eng,
		nodes:  n,
		outBps: make([]float64, n),
		inBps:  make([]float64, n),
		fabric: fabricBps,
	}
	for i := 0; i < n; i++ {
		net.outBps[i] = outBps
		net.inBps[i] = inBps
	}
	return net
}

// SetNodeCapacity overrides one node's egress/ingress capacity, e.g. to
// fold its disk read bandwidth into egress.
func (n *Net) SetNodeCapacity(node int, outBps, inBps float64) {
	n.outBps[node] = outBps
	n.inBps[node] = inBps
}

// Active returns the number of in-flight flows.
func (n *Net) Active() int { return len(n.flows) }

// StartFlow begins a transfer of the given bytes and calls done (if
// non-nil) on completion. Zero-byte flows complete immediately (next
// event). from == to models a local copy and also completes immediately:
// local I/O is not the bottleneck the paper measures.
func (n *Net) StartFlow(from, to int, bytes float64, crossRack bool, tag string, done func(f *Flow)) *Flow {
	if from < 0 || from >= n.nodes || to < 0 || to >= n.nodes {
		panic(fmt.Sprintf("sim: flow endpoints %d→%d out of range", from, to))
	}
	f := &Flow{From: from, To: to, CrossRack: crossRack, Tag: tag, remaining: bytes, started: n.eng.Now(), done: done}
	if bytes <= 0 || from == to {
		f.remaining = 0
		n.eng.Schedule(0, func() {
			if f.done != nil {
				f.done(f)
			}
		})
		return f
	}
	n.advance()
	n.flows = append(n.flows, f)
	n.recompute()
	return f
}

// completionEps is the residual byte count below which a flow counts as
// finished. Block transfers are tens of megabytes, so one byte of slack
// is invisible in every metric; crucially it must exceed the byte
// resolution of the clock (rate·ulp(now)), or a flow whose completion
// time rounds back onto the current timestamp would respawn its timer
// forever at dt = 0.
const completionEps = 1.0

// advance applies the current rates over the elapsed interval, completing
// any flows that ran dry. Progress is accounted centrally against the
// Net's lastUpdate stamp: rates only change at recomputation points, so
// every flow moved rate·dt bytes since then. Sub-epsilon residues finish
// even at dt = 0 — see completionEps.
func (n *Net) advance() {
	now := n.eng.Now()
	var finished []*Flow
	dt := now - n.lastUpdate
	for _, f := range n.flows {
		if dt > 0 {
			moved := f.rate * dt
			if moved >= f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			if n.OnProgress != nil && moved > 0 {
				n.OnProgress(f, moved)
			}
		}
		if f.remaining <= completionEps {
			if n.OnProgress != nil && f.remaining > 0 {
				n.OnProgress(f, f.remaining)
			}
			f.remaining = 0
			finished = append(finished, f)
		}
	}
	n.lastUpdate = now
	if len(finished) > 0 {
		keep := n.flows[:0]
		fin := make(map[*Flow]bool, len(finished))
		for _, f := range finished {
			fin[f] = true
		}
		for _, f := range n.flows {
			if !fin[f] {
				keep = append(keep, f)
			}
		}
		n.flows = keep
	}
	for _, f := range finished {
		if f.done != nil {
			f.done(f)
		}
	}
}

// recompute runs max-min waterfilling across all links and schedules the
// next completion.
func (n *Net) recompute() {
	if len(n.flows) == 0 {
		return
	}
	// Residual capacities.
	outCap := append([]float64(nil), n.outBps...)
	inCap := append([]float64(nil), n.inBps...)
	fabricCap := n.fabric
	outFlows := make([]int, n.nodes)
	inFlows := make([]int, n.nodes)
	fabricFlows := 0
	unfrozen := make([]*Flow, len(n.flows))
	copy(unfrozen, n.flows)
	for _, f := range n.flows {
		outFlows[f.From]++
		inFlows[f.To]++
		if f.CrossRack && n.fabric > 0 {
			fabricFlows++
		}
	}
	for len(unfrozen) > 0 {
		// Find the bottleneck link: the smallest fair share.
		share := math.Inf(1)
		for i := 0; i < n.nodes; i++ {
			if outFlows[i] > 0 {
				if s := outCap[i] / float64(outFlows[i]); s < share {
					share = s
				}
			}
			if inFlows[i] > 0 {
				if s := inCap[i] / float64(inFlows[i]); s < share {
					share = s
				}
			}
		}
		if fabricFlows > 0 {
			if s := fabricCap / float64(fabricFlows); s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			// No constraining links: unlimited (shouldn't happen with
			// finite node capacities); give a huge rate.
			share = 1e18
		}
		// Freeze every unfrozen flow traversing a link at exactly this
		// share (the bottleneck links), then subtract.
		progressed := false
		remaining := unfrozen[:0]
		for _, f := range unfrozen {
			bottleneck := false
			if outFlows[f.From] > 0 && outCap[f.From]/float64(outFlows[f.From]) <= share*(1+1e-12) {
				bottleneck = true
			}
			if inFlows[f.To] > 0 && inCap[f.To]/float64(inFlows[f.To]) <= share*(1+1e-12) {
				bottleneck = true
			}
			if f.CrossRack && n.fabric > 0 && fabricFlows > 0 && fabricCap/float64(fabricFlows) <= share*(1+1e-12) {
				bottleneck = true
			}
			if !bottleneck {
				remaining = append(remaining, f)
				continue
			}
			f.rate = share
			outCap[f.From] -= share
			inCap[f.To] -= share
			outFlows[f.From]--
			inFlows[f.To]--
			if f.CrossRack && n.fabric > 0 {
				fabricCap -= share
				fabricFlows--
			}
			progressed = true
		}
		unfrozen = remaining
		if !progressed {
			// Defensive: numerical corner; assign the share to everything.
			for _, f := range unfrozen {
				f.rate = share
			}
			unfrozen = unfrozen[:0]
		}
	}
	n.scheduleNextCompletion()
}

// scheduleNextCompletion arms a timer for the earliest flow completion.
func (n *Net) scheduleNextCompletion() {
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	// Clamp to a microsecond so the timer always lands on a strictly later
	// representable timestamp even when the clock is large (belt to
	// completionEps's suspenders).
	if next < 1e-6 {
		next = 1e-6
	}
	n.timerGen++
	gen := n.timerGen
	n.eng.Schedule(next, func() {
		if gen != n.timerGen {
			return // superseded by a later recomputation
		}
		n.advance()
		n.recompute()
	})
}
