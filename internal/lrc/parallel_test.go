package lrc

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEncodeParallelMatchesSerial(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(41))
	data := randData(r, 10, 4096)
	want, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8, 32} {
		got, err := c.EncodeParallel(data, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d: shard %d differs", workers, i)
			}
		}
	}
}

func TestEncodeParallelValidation(t *testing.T) {
	c := NewXorbas()
	if _, err := c.EncodeParallel(make([][]byte, 3), 2); err == nil {
		t.Fatal("short data accepted")
	}
	bad := make([][]byte, 10)
	for i := range bad {
		bad[i] = make([]byte, 8)
	}
	bad[4] = nil
	if _, err := c.EncodeParallel(bad, 2); err == nil {
		t.Fatal("nil shard accepted")
	}
}

// Concurrent encoders on one shared Code must not race (run with -race).
func TestCodeConcurrentUse(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(42))
	data := randData(r, 10, 1024)
	want, _ := c.Encode(data)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			stripe, err := c.EncodeParallel(data, 4)
			if err != nil {
				done <- err
				return
			}
			work := make([][]byte, 16)
			copy(work, stripe)
			work[3] = nil
			if _, _, err := c.Reconstruct(work); err != nil {
				done <- err
				return
			}
			if !bytes.Equal(work[3], want[3]) {
				done <- errMismatch
				return
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("concurrent reconstruction mismatch")

type errString string

func (e errString) Error() string { return string(e) }

func BenchmarkEncodeParallel(b *testing.B) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	data := randData(r, 10, 1<<20)
	b.SetBytes(10 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeParallel(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}
