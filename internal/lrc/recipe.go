package lrc

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// recipe is a light-repair rule for one stored block: the block equals
// Σ coefs[j]·stripe[reads[j]]. For the Xorbas code every coefficient is 1
// (pure XOR) and |reads| = 5, matching Eqs. (1) and (2).
type recipe struct {
	reads []int
	coefs []gf.Elem
}

// lightRecipes computes, for every stored block, the light-repair recipe
// implied by the group structure, or nil when the block's column is not in
// the span of its designated repair set (possible only for exotic
// coefficient choices; never for the all-ones construction).
func (c *Code) lightRecipes() []*recipe {
	recipes := make([]*recipe, c.nStored)
	for i := 0; i < c.nStored; i++ {
		recipes[i] = c.solveRecipe(i, c.lightRepairSet(i))
	}
	return recipes
}

// lightRepairSet returns the stored blocks a light repair of block i is
// allowed to read: the rest of i's repair group, plus — for the implied
// parity group — every stored local parity (to synthesize S_impl, Eq. (2)).
func (c *Code) lightRepairSet(i int) []int {
	g := c.groups[c.groupOf[i]]
	var set []int
	for _, m := range g.Members {
		if m != i {
			set = append(set, m)
		}
	}
	if g.Implied {
		for j := 0; j < c.nStored; j++ {
			if c.kinds[j] == LocalParity {
				set = append(set, j)
			}
		}
	}
	return set
}

// solveRecipe expresses generator column i as a combination of the columns
// in reads, returning nil when no representation exists.
func (c *Code) solveRecipe(i int, reads []int) *recipe {
	if len(reads) == 0 {
		return nil
	}
	k := c.params.K
	// Solve C·a = g_i where C is K×|reads|. Use rref on [C | g_i].
	aug := matrix.New(c.f, k, len(reads)+1)
	for jj, j := range reads {
		for r := 0; r < k; r++ {
			aug.Set(r, jj, c.gen.At(r, j))
		}
	}
	for r := 0; r < k; r++ {
		aug.Set(r, len(reads), c.gen.At(r, i))
	}
	sol, ok := solveAny(aug, len(reads))
	if !ok {
		return nil
	}
	// Drop zero-coefficient reads: they carry no information.
	rec := &recipe{}
	for jj, a := range sol {
		if a != 0 {
			rec.reads = append(rec.reads, reads[jj])
			rec.coefs = append(rec.coefs, a)
		}
	}
	if len(rec.reads) == 0 {
		return nil
	}
	return rec
}

// solveAny solves the possibly under/over-determined system formed by an
// augmented matrix [C | b] with nc unknowns, returning any solution (free
// variables set to zero) or ok=false if inconsistent.
func solveAny(aug *matrix.Matrix, nc int) ([]gf.Elem, bool) {
	f := aug.Field()
	rows, cols := aug.Rows(), aug.Cols()
	if cols != nc+1 {
		panic("lrc: solveAny shape")
	}
	m := aug.Clone()
	type pivot struct{ row, col int }
	var pivots []pivot
	r := 0
	for cidx := 0; cidx < nc && r < rows; cidx++ {
		p := -1
		for i := r; i < rows; i++ {
			if m.At(i, cidx) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		// swap rows r, p
		for j := 0; j < cols; j++ {
			a, b := m.At(r, j), m.At(p, j)
			m.Set(r, j, b)
			m.Set(p, j, a)
		}
		inv := f.Inv(m.At(r, cidx))
		for j := 0; j < cols; j++ {
			m.Set(r, j, f.Mul(inv, m.At(r, j)))
		}
		for i := 0; i < rows; i++ {
			if i != r && m.At(i, cidx) != 0 {
				c := m.At(i, cidx)
				for j := 0; j < cols; j++ {
					m.Set(i, j, f.Add(m.At(i, j), f.Mul(c, m.At(r, j))))
				}
			}
		}
		pivots = append(pivots, pivot{r, cidx})
		r++
	}
	// Inconsistent if a zero row has nonzero rhs.
	for i := r; i < rows; i++ {
		if m.At(i, nc) != 0 {
			return nil, false
		}
	}
	sol := make([]gf.Elem, nc)
	for _, p := range pivots {
		sol[p.col] = m.At(p.row, nc)
	}
	return sol, true
}

// Recipe exposes the light-repair rule of stored block i: the blocks read
// and their combination coefficients. ok is false when no light repair
// exists for i (then only heavy decoding can rebuild it).
func (c *Code) Recipe(i int) (reads []int, coefs []gf.Elem, ok bool) {
	if i < 0 || i >= c.nStored {
		return nil, nil, false
	}
	r := c.recipes()[i]
	if r == nil {
		return nil, nil, false
	}
	return append([]int(nil), r.reads...), append([]gf.Elem(nil), r.coefs...), true
}

// recipes lazily computes and caches light recipes. The cache is written
// once at construction time via ensureRecipes, so concurrent reads are
// safe.
func (c *Code) recipes() []*recipe {
	if c.recipeCache == nil {
		c.recipeCache = c.lightRecipes()
	}
	return c.recipeCache
}

// lightReadSet returns the stored blocks light repair of i reads, or nil.
func (c *Code) lightReadSet(i int) []int {
	r := c.recipes()[i]
	if r == nil {
		return nil
	}
	return r.reads
}

// VerifyLocality checks every stored block's recipe against the generator:
// the recipe columns must combine exactly to the block's column. It
// returns an error naming the first violating block.
func (c *Code) VerifyLocality() error {
	k := c.params.K
	for i := 0; i < c.nStored; i++ {
		r := c.recipes()[i]
		if r == nil {
			return fmt.Errorf("lrc: block %d has no light repair", i)
		}
		for row := 0; row < k; row++ {
			var acc gf.Elem
			for jj, j := range r.reads {
				acc = c.f.Add(acc, c.f.Mul(r.coefs[jj], c.gen.At(row, j)))
			}
			if acc != c.gen.At(row, i) {
				return fmt.Errorf("lrc: recipe for block %d does not reproduce its column", i)
			}
		}
	}
	return nil
}
