package lrc

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/matrix"
	"repro/internal/rs"
)

// Pyramid codes (Huang, Chen, Li — NCA'07), the §6 predecessor family:
// "flexible schemes to trade space for access efficiency". A basic
// pyramid code takes an RS(k, p) and *splits* one global parity into
// per-group partial parities: sub-parity g is the P1-combination
// restricted to group g's data blocks, so Σ_g sub_g = P1 and each data
// block gains locality r. The contrast with the paper's LRC is the
// global parities: a pyramid code's surviving globals have NO local
// repair (locality k), whereas the LRC's implied-parity alignment gives
// every stored block locality r. NewPyramid exists as a baseline for the
// ablation benchmarks; the shared Code machinery (planner, decoder,
// distance enumeration) treats it uniformly.
//
// Layout: positions 0..k-1 data; k..k+G-1 sub-parities (one per data
// group, splitting the first RS parity); k+G.. the remaining p−1 global
// parities.
func NewPyramid(p Params) (*Code, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.GlobalParities < 2 {
		return nil, fmt.Errorf("lrc: pyramid needs ≥2 RS parities (one is split)")
	}
	if p.StoreImplied {
		return nil, fmt.Errorf("lrc: StoreImplied does not apply to pyramid codes")
	}
	f := gf.MustNew(8)
	nPre := p.K + p.GlobalParities
	pre, err := rs.New(f, p.K, nPre)
	if err != nil {
		return nil, fmt.Errorf("lrc: precode: %w", err)
	}
	g := p.numGroups()
	nStored := p.K + g + (p.GlobalParities - 1)

	c := &Code{
		params:  p,
		f:       f,
		pre:     pre,
		nStored: nStored,
		kinds:   make([]BlockKind, nStored),
		groupOf: make([]int, nStored),
	}
	preGen := pre.Generator()
	gen := matrix.New(f, p.K, nStored)
	// Data columns.
	for i := 0; i < p.K; i++ {
		c.kinds[i] = Data
		for r := 0; r < p.K; r++ {
			gen.Set(r, i, preGen.At(r, i))
		}
	}
	// Sub-parities: split RS parity column k by data group. The
	// "coefficients" of group g's sub-parity are the parity column's own
	// entries restricted to the group (so Σ_g sub_g = P1 exactly).
	splitCol := p.K
	for gi := 0; gi < g; gi++ {
		lo := gi * p.GroupSize
		hi := lo + p.GroupSize
		if hi > p.K {
			hi = p.K
		}
		members := make([]int, 0, hi-lo)
		var coefs []gf.Elem
		for j := lo; j < hi; j++ {
			members = append(members, j)
			cv := preGen.At(j, splitCol)
			if cv == 0 {
				return nil, fmt.Errorf("lrc: pyramid split hit a zero parity coefficient at data %d", j)
			}
			coefs = append(coefs, cv)
		}
		c.dataGroups = append(c.dataGroups, append([]int(nil), members...))
		c.coeffs = append(c.coeffs, coefs)
		col := p.K + gi
		c.kinds[col] = LocalParity
		for _, j := range members {
			cv := preGen.At(j, splitCol)
			// Column of sub_g = Σ_{j∈group} cv_j · (data column j).
			for r := 0; r < p.K; r++ {
				gen.Set(r, col, f.Add(gen.At(r, col), f.Mul(cv, preGen.At(r, j))))
			}
		}
		grp := Group{Members: append(append([]int(nil), members...), col)}
		c.groups = append(c.groups, grp)
		for _, m := range grp.Members {
			c.groupOf[m] = gi
		}
	}
	// Remaining global parities (columns k+1 … k+p−1 of the precode).
	pg := Group{}
	for j := 1; j < p.GlobalParities; j++ {
		col := p.K + g + (j - 1)
		c.kinds[col] = GlobalParity
		c.groupOf[col] = g
		pg.Members = append(pg.Members, col)
		for r := 0; r < p.K; r++ {
			gen.Set(r, col, preGen.At(r, p.K+j))
		}
	}
	c.groups = append(c.groups, pg)
	c.gen = gen
	c.recipeCache = c.lightRecipes()
	c.buildParityCols()
	return c, nil
}

// FullyLocal reports whether every stored block has a light repair (true
// for the paper's LRCs via the implied parity; false for pyramid codes,
// whose global parities need a full heavy decode).
func (c *Code) FullyLocal() bool {
	for i := 0; i < c.nStored; i++ {
		if c.recipeCache[i] == nil {
			return false
		}
	}
	return true
}
