package lrc

import (
	"fmt"
	"strings"
)

// Describe renders the code layout in the style of Fig. 2: the data
// blocks, the Reed-Solomon parities, the local parities with their
// repair groups, and the implied parity with its alignment identity.
func (c *Code) Describe() string {
	var b strings.Builder
	p := c.params
	fmt.Fprintf(&b, "(%d, %d, %d) code over GF(2^%d): %d stored blocks, %.0f%% storage overhead\n",
		p.K, c.nStored-p.K, c.Locality(), c.f.M(), c.nStored, 100*c.StorageOverhead())
	row := func(label string, from, to int) {
		fmt.Fprintf(&b, "  %-16s", label)
		for i := from; i < to; i++ {
			fmt.Fprintf(&b, " %s", c.blockName(i))
		}
		b.WriteByte('\n')
	}
	// Blocks by kind, in position order.
	var dataEnd, parityStart int
	for i := 0; i < c.nStored; i++ {
		switch c.kinds[i] {
		case Data:
			dataEnd = i + 1
		case GlobalParity:
			if parityStart == 0 {
				parityStart = i
			}
		}
	}
	row("data blocks:", 0, dataEnd)
	_ = parityStart
	var globals, locals []string
	for i := 0; i < c.nStored; i++ {
		switch c.kinds[i] {
		case GlobalParity:
			globals = append(globals, c.blockName(i))
		case LocalParity:
			locals = append(locals, c.blockName(i))
		}
	}
	fmt.Fprintf(&b, "  %-16s %s\n", "RS parities:", strings.Join(globals, " "))
	fmt.Fprintf(&b, "  %-16s %s\n", "local parities:", strings.Join(locals, " "))
	for gi, g := range c.groups {
		names := make([]string, len(g.Members))
		for i, m := range g.Members {
			names[i] = c.blockName(m)
		}
		suffix := ""
		if g.Implied {
			suffix = "  (local parity implied: " + c.impliedIdentity() + ")"
		}
		fmt.Fprintf(&b, "  group %d: {%s}%s\n", gi, strings.Join(names, ", "), suffix)
	}
	return b.String()
}

// blockName labels a stored block like the paper: X1…Xk for data,
// P1…Pp for RS parities, S1…Sg for local parities.
func (c *Code) blockName(i int) string {
	switch c.kinds[i] {
	case Data:
		return fmt.Sprintf("X%d", i+1)
	case GlobalParity:
		n := 0
		for j := 0; j <= i; j++ {
			if c.kinds[j] == GlobalParity {
				n++
			}
		}
		return fmt.Sprintf("P%d", n)
	case LocalParity:
		n := 0
		for j := 0; j <= i; j++ {
			if c.kinds[j] == LocalParity {
				n++
			}
		}
		return fmt.Sprintf("S%d", n)
	}
	return fmt.Sprintf("B%d", i)
}

// impliedIdentity renders the alignment identity, e.g. "S1+S2+S3 = 0"
// with S3 = P1+…+P4 never stored.
func (c *Code) impliedIdentity() string {
	var stored []string
	n := 0
	for i := 0; i < c.nStored; i++ {
		if c.kinds[i] == LocalParity {
			n++
			stored = append(stored, fmt.Sprintf("S%d", n))
		}
	}
	return fmt.Sprintf("%s+S%d = 0", strings.Join(stored, "+"), n+1)
}
