package lrc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for random geometries, encode → erase up to (exact d − 1)
// random blocks → Reconstruct round-trips bit-exactly.
func TestPropertyRandomGeometryRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 4 + r.Intn(6)    // 4..9
		p := 2 + r.Intn(3)    // 2..4
		gs := 2 + r.Intn(k-1) // 2..k
		params := Params{K: k, GlobalParities: p, GroupSize: gs, StoreImplied: r.Intn(2) == 0}
		c, err := New(params)
		if err != nil {
			return false
		}
		d := c.MinDistance()
		stripe, err := c.Encode(randData(r, k, 1+r.Intn(48)))
		if err != nil {
			return false
		}
		orig := make([][]byte, len(stripe))
		for i := range stripe {
			orig[i] = append([]byte(nil), stripe[i]...)
		}
		e := 1 + r.Intn(d-1)
		for _, i := range r.Perm(c.NStored())[:e] {
			stripe[i] = nil
		}
		if _, _, err := c.Reconstruct(stripe); err != nil {
			return false
		}
		for i := range stripe {
			if !bytes.Equal(stripe[i], orig[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the repair planner and the payload decoder agree — whenever
// PlanRepair says a block is repairable with a light plan, decoding from
// exactly the planned read set reproduces the payload.
func TestPropertyPlannerCodecAgreement(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(99))
	stripe, err := c.Encode(randData(r, 10, 32))
	if err != nil {
		t.Fatal(err)
	}
	exists := fullMask(16, true)
	if err := quick.Check(func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		avail := fullMask(16, true)
		// Erase 1..4 blocks.
		lostSet := rr.Perm(16)[:1+rr.Intn(4)]
		for _, i := range lostSet {
			avail[i] = false
		}
		lost := lostSet[0]
		plan, err := c.PlanRepair(lost, exists, avail, true)
		if err != nil {
			// Unrecoverable per planner: the codec must also fail.
			work := make([][]byte, 16)
			for i := range work {
				if avail[i] {
					work[i] = stripe[i]
				}
			}
			_, _, derr := c.ReconstructBlock(work, lost)
			return derr != nil
		}
		// Decode using ONLY the planned reads.
		work := make([][]byte, 16)
		for _, j := range plan.Reads {
			work[j] = stripe[j]
		}
		got, light, err := c.ReconstructBlock(work, lost)
		if err != nil {
			return false
		}
		if plan.Light != light {
			return false
		}
		return bytes.Equal(got, stripe[lost])
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the light plan never reads more than Locality() blocks, and
// heavy deployed plans read every available block.
func TestPropertyPlanSizes(t *testing.T) {
	c := NewXorbas()
	exists := fullMask(16, true)
	if err := quick.Check(func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		avail := fullMask(16, true)
		lostSet := rr.Perm(16)[:1+rr.Intn(4)]
		for _, i := range lostSet {
			avail[i] = false
		}
		lost := lostSet[0]
		plan, err := c.PlanRepair(lost, exists, avail, true)
		if err != nil {
			return true
		}
		if plan.Light {
			return len(plan.Reads) <= c.Locality()
		}
		avail16 := 0
		for i, a := range avail {
			if a && i != lost {
				avail16++
			}
		}
		return len(plan.Reads) == avail16
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Exists/StoredCount are consistent and monotone in dataCount.
func TestPropertyExistsMonotone(t *testing.T) {
	c := NewXorbas()
	prev := 0
	for dc := 1; dc <= 10; dc++ {
		n := 0
		for pos := 0; pos < c.NStored(); pos++ {
			if c.Exists(pos, dc) {
				n++
			}
		}
		if n != c.StoredCount(dc) {
			t.Fatalf("dc=%d: Exists count %d != StoredCount %d", dc, n, c.StoredCount(dc))
		}
		if n < prev {
			t.Fatalf("StoredCount not monotone at %d", dc)
		}
		prev = n
	}
	if c.StoredCount(10) != 16 {
		t.Fatal("full stripe should store 16")
	}
}

// Property: degraded read equals repair — ReconstructBlock's payload for
// a missing block matches what a full Reconstruct writes back.
func TestPropertyDegradedEqualsRepair(t *testing.T) {
	c := NewXorbas()
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stripe, err := c.Encode(randData(r, 10, 16))
		if err != nil {
			return false
		}
		lost := r.Intn(16)
		work1 := make([][]byte, 16)
		copy(work1, stripe)
		work1[lost] = nil
		got, _, err := c.ReconstructBlock(work1, lost)
		if err != nil {
			return false
		}
		work2 := make([][]byte, 16)
		copy(work2, stripe)
		work2[lost] = nil
		if _, _, err := c.Reconstruct(work2); err != nil {
			return false
		}
		return bytes.Equal(got, work2[lost]) && bytes.Equal(got, stripe[lost])
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every generator column of a fresh code is nonzero and the
// data columns form the identity (systematic form survives all geometry
// choices).
func TestPropertySystematicForm(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(8)
		params := Params{K: k, GlobalParities: 2 + r.Intn(3), GroupSize: 2 + r.Intn(k-1)}
		c, err := New(params)
		if err != nil {
			return false
		}
		g := c.Generator()
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := uint16(0)
				if i == j {
					want = 1
				}
				if g.At(i, j) != want {
					return false
				}
			}
		}
		// No zero columns (a zero column would be a wasted block).
		for j := 0; j < c.NStored(); j++ {
			zero := true
			for i := 0; i < k; i++ {
				if g.At(i, j) != 0 {
					zero = false
					break
				}
			}
			if zero {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
