package lrc

import (
	"fmt"
	"runtime"
	"sync"
)

// EncodeParallel is Encode with the parity columns computed across
// goroutines — the shape production encoders use for 256 MB blocks,
// where each parity is an independent column combination. workers ≤ 0
// uses GOMAXPROCS. Output is bit-identical to Encode.
func (c *Code) EncodeParallel(data [][]byte, workers int) ([][]byte, error) {
	if len(data) != c.params.K {
		return nil, fmt.Errorf("lrc: got %d data shards, want %d", len(data), c.params.K)
	}
	size := len(data[0])
	for i, d := range data {
		if d == nil || len(d) != size {
			return nil, fmt.Errorf("lrc: data shard %d nil or size mismatch", i)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stripe := make([][]byte, c.nStored)
	copy(stripe, data)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := make([]byte, size)
				for i := 0; i < c.params.K; i++ {
					c.f.MulAddSlice(c.gen.At(i, j), p, data[i])
				}
				stripe[j] = p
			}
		}()
	}
	for j := c.params.K; j < c.nStored; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return stripe, nil
}
