package lrc

import (
	"fmt"
	"runtime"
	"sync"
)

// EncodeParallel is Encode with the work spread across goroutines — the
// shape production encoders use for 256 MB blocks. Workers split the
// payload by byte range (the code is byte-wise, so any split is valid)
// and each range computes every parity column through the lane-packed
// wide tables. workers ≤ 0 uses GOMAXPROCS. Output is bit-identical to
// Encode.
func (c *Code) EncodeParallel(data [][]byte, workers int) ([][]byte, error) {
	if err := c.checkEncodeArgs(data); err != nil {
		return nil, err
	}
	size := len(data[0])
	stripe := make([][]byte, c.nStored)
	copy(stripe, data)
	parity := make([][]byte, c.nStored-c.params.K)
	for j := range parity {
		parity[j] = make([]byte, size)
		stripe[c.params.K+j] = parity[j]
	}
	c.encodeRangeParallel(data, parity, workers)
	return stripe, nil
}

// EncodeIntoParallel is EncodeInto with the byte range spread across
// goroutines. Output is bit-identical to EncodeInto.
func (c *Code) EncodeIntoParallel(data, parity [][]byte, workers int) error {
	if err := c.checkEncodeArgs(data); err != nil {
		return err
	}
	if len(parity) != c.nStored-c.params.K {
		return fmt.Errorf("lrc: got %d parity buffers, want %d", len(parity), c.nStored-c.params.K)
	}
	size := len(data[0])
	for j, p := range parity {
		if p == nil || len(p) != size {
			return fmt.Errorf("lrc: parity buffer %d nil or size mismatch", j)
		}
	}
	c.encodeRangeParallel(data, parity, workers)
	return nil
}

// encodeRangeParallel splits the payload into contiguous byte ranges,
// one goroutine per range. Ranges keep every worker's accumulator and
// table set cache-local and need no synchronization beyond the join.
func (c *Code) encodeRangeParallel(data, parity [][]byte, workers int) {
	size := len(data[0])
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Tiny payloads aren't worth a goroutine per slice of them.
	if workers <= 1 || size < 4096 {
		c.encodeRange(data, parity, 0, size)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		from := w * size / workers
		to := (w + 1) * size / workers
		if from == to {
			continue
		}
		wg.Add(1)
		go func(from, to int) {
			defer wg.Done()
			c.encodeRange(data, parity, from, to)
		}(from, to)
	}
	wg.Wait()
}
