package lrc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf"
)

func randData(r *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	return data
}

func fullMask(n int, v bool) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = v
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{K: 0, GlobalParities: 4, GroupSize: 5},
		{K: 10, GlobalParities: 0, GroupSize: 5},
		{K: 10, GlobalParities: 4, GroupSize: 1},
		{K: 10, GlobalParities: 4, GroupSize: 11},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if Xorbas.Validate() != nil {
		t.Error("Xorbas params invalid")
	}
}

// Fig. 2 layout: 16 stored blocks — 10 data, 4 RS parities, 2 local
// parities; S3 implied.
func TestExplicitLayout(t *testing.T) {
	c := NewXorbas()
	if c.NStored() != 16 || c.NPre() != 14 || c.K() != 10 {
		t.Fatalf("layout: nStored=%d nPre=%d k=%d", c.NStored(), c.NPre(), c.K())
	}
	for i := 0; i < 10; i++ {
		if c.Kind(i) != Data {
			t.Fatalf("block %d kind %v", i, c.Kind(i))
		}
	}
	for i := 10; i < 14; i++ {
		if c.Kind(i) != GlobalParity {
			t.Fatalf("block %d kind %v", i, c.Kind(i))
		}
	}
	for i := 14; i < 16; i++ {
		if c.Kind(i) != LocalParity {
			t.Fatalf("block %d kind %v", i, c.Kind(i))
		}
	}
	groups := c.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	if !groups[2].Implied {
		t.Fatal("parity group should be implied")
	}
	if got := c.StorageOverhead(); got != 0.6 {
		t.Fatalf("storage overhead %f want 0.6 (Table 1)", got)
	}
}

// Theorem 5 part 1: every one of the 16 blocks has locality 5.
func TestTheorem5Locality(t *testing.T) {
	c := NewXorbas()
	if err := c.VerifyLocality(); err != nil {
		t.Fatal(err)
	}
	if got := c.Locality(); got != 5 {
		t.Fatalf("locality %d want 5", got)
	}
	for i := 0; i < 16; i++ {
		reads, _, ok := c.Recipe(i)
		if !ok {
			t.Fatalf("block %d not locally repairable", i)
		}
		if len(reads) != 5 {
			t.Fatalf("block %d light repair reads %d blocks, want 5", i, len(reads))
		}
	}
}

// Theorem 5 part 2: exact minimum distance d = 5, which meets the
// Theorem 2 bound n − ⌈k/r⌉ − k + 2 = 16 − 2 − 10 + 2 = 6? No: with
// overlapping entropy the proof in the paper shows 5 is optimal for
// n=16, r=5 (the bound gives 6 but 5∤16 forces overlapping groups; see
// the Theorem 5 proof). We check d = 5 exactly and ≤ bound.
func TestTheorem5Distance(t *testing.T) {
	c := NewXorbas()
	d := c.MinDistance()
	if d != 5 {
		t.Fatalf("minimum distance %d want 5", d)
	}
	if b := c.MinDistanceBound(); d > b {
		t.Fatalf("distance %d exceeds Theorem 2 bound %d", d, b)
	}
}

// The implied parity: S1 + S2 + S3 = 0 where S3 = P1+P2+P3+P4 (Fig. 2
// with c'_i = 1). Verified on payloads.
func TestImpliedParityAlignment(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	stripe, err := c.Encode(randData(r, 10, 64))
	if err != nil {
		t.Fatal(err)
	}
	s3 := make([]byte, 64)
	for j := 10; j < 14; j++ {
		gf.XORSlice(s3, stripe[j])
	}
	sum := make([]byte, 64)
	gf.XORSlice(sum, stripe[14])
	gf.XORSlice(sum, stripe[15])
	if !bytes.Equal(s3, sum) {
		t.Fatal("S1 + S2 != P1+P2+P3+P4: alignment violated")
	}
}

// Eq. (1): X3 lost → reconstruct from X1,X2,X4,X5,S1 only.
func TestLightRepairDataBlock(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(2))
	stripe, _ := c.Encode(randData(r, 10, 128))
	orig := stripe[2]
	work := make([][]byte, 16)
	copy(work, stripe)
	work[2] = nil
	got, light, err := c.ReconstructBlock(work, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !light {
		t.Fatal("expected light decode")
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("wrong payload")
	}
	reads, _, _ := c.Recipe(2)
	want := map[int]bool{0: true, 1: true, 3: true, 4: true, 14: true}
	for _, j := range reads {
		if !want[j] {
			t.Fatalf("recipe for X3 reads unexpected block %d", j)
		}
	}
}

// Eq. (2): P2 lost → recovered from P1, P3, P4, S1, S2.
func TestLightRepairGlobalParity(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(3))
	stripe, _ := c.Encode(randData(r, 10, 128))
	orig := stripe[11]
	work := make([][]byte, 16)
	copy(work, stripe)
	work[11] = nil
	got, light, err := c.ReconstructBlock(work, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !light {
		t.Fatal("expected light decode for parity block")
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("wrong payload")
	}
	reads, _, _ := c.Recipe(11)
	want := map[int]bool{10: true, 12: true, 13: true, 14: true, 15: true}
	if len(reads) != 5 {
		t.Fatalf("reads %v", reads)
	}
	for _, j := range reads {
		if !want[j] {
			t.Fatalf("recipe for P2 reads unexpected block %d", j)
		}
	}
}

// Every single-block failure is light-repairable and round-trips.
func TestAllSingleFailuresLight(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(4))
	stripe, _ := c.Encode(randData(r, 10, 64))
	for lost := 0; lost < 16; lost++ {
		work := make([][]byte, 16)
		copy(work, stripe)
		work[lost] = nil
		lightN, heavyN, err := c.Reconstruct(work)
		if err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if lightN != 1 || heavyN != 0 {
			t.Fatalf("lost=%d: light=%d heavy=%d", lost, lightN, heavyN)
		}
		if !bytes.Equal(work[lost], stripe[lost]) {
			t.Fatalf("lost=%d: wrong payload", lost)
		}
	}
}

// d = 5 means every erasure pattern of ≤ 4 blocks must decode. Enumerate
// all C(16,4) = 1820 four-block patterns.
func TestAllFourErasurePatternsDecode(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(5))
	stripe, _ := c.Encode(randData(r, 10, 16))
	count := 0
	var idx [4]int
	for idx[0] = 0; idx[0] < 16; idx[0]++ {
		for idx[1] = idx[0] + 1; idx[1] < 16; idx[1]++ {
			for idx[2] = idx[1] + 1; idx[2] < 16; idx[2]++ {
				for idx[3] = idx[2] + 1; idx[3] < 16; idx[3]++ {
					work := make([][]byte, 16)
					copy(work, stripe)
					for _, i := range idx {
						work[i] = nil
					}
					if _, _, err := c.Reconstruct(work); err != nil {
						t.Fatalf("pattern %v: %v", idx, err)
					}
					for _, i := range idx {
						if !bytes.Equal(work[i], stripe[i]) {
							t.Fatalf("pattern %v: block %d wrong", idx, i)
						}
					}
					count++
				}
			}
		}
	}
	if count != 1820 {
		t.Fatalf("enumerated %d patterns", count)
	}
}

// Two failures in different local groups stay on the light path (§3.1.2:
// "also many double block failures (as long as the two missing blocks
// belong to different local XORs)").
func TestDoubleFailureDifferentGroupsLight(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(6))
	stripe, _ := c.Encode(randData(r, 10, 32))
	work := make([][]byte, 16)
	copy(work, stripe)
	work[2] = nil // group 0
	work[7] = nil // group 1
	lightN, heavyN, err := c.Reconstruct(work)
	if err != nil {
		t.Fatal(err)
	}
	if lightN != 2 || heavyN != 0 {
		t.Fatalf("light=%d heavy=%d, want 2,0", lightN, heavyN)
	}
}

// Two failures in the same group require the heavy decoder.
func TestDoubleFailureSameGroupHeavy(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(7))
	stripe, _ := c.Encode(randData(r, 10, 32))
	work := make([][]byte, 16)
	copy(work, stripe)
	work[2] = nil
	work[3] = nil // same group as 2
	lightN, heavyN, err := c.Reconstruct(work)
	if err != nil {
		t.Fatal(err)
	}
	if heavyN == 0 {
		t.Fatalf("light=%d heavy=%d: expected heavy decoding", lightN, heavyN)
	}
	for _, i := range []int{2, 3} {
		if !bytes.Equal(work[i], stripe[i]) {
			t.Fatalf("block %d wrong", i)
		}
	}
}

func TestFiveErasuresSomePatternFails(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(8))
	stripe, _ := c.Encode(randData(r, 10, 16))
	// A fatal 5-pattern must exist since d = 5. Find one via the distance
	// search logic: erase a full group plus one more targeted set.
	// {X1..X5,S1} minus one plus ... simplest: search.
	found := false
	var idx [5]int
	for idx[0] = 0; idx[0] < 16 && !found; idx[0]++ {
		for idx[1] = idx[0] + 1; idx[1] < 16 && !found; idx[1]++ {
			for idx[2] = idx[1] + 1; idx[2] < 16 && !found; idx[2]++ {
				for idx[3] = idx[2] + 1; idx[3] < 16 && !found; idx[3]++ {
					for idx[4] = idx[3] + 1; idx[4] < 16 && !found; idx[4]++ {
						work := make([][]byte, 16)
						copy(work, stripe)
						for _, i := range idx {
							work[i] = nil
						}
						if _, _, err := c.Reconstruct(work); err != nil {
							found = true
						}
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no fatal 5-erasure pattern: distance would exceed 5, contradicting Theorem 5 optimality")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(9))
	stripe, _ := c.Encode(randData(r, 10, 64))
	if ok, err := c.Verify(stripe); err != nil || !ok {
		t.Fatalf("fresh stripe: %v %v", ok, err)
	}
	stripe[15][0] ^= 0xff
	if ok, _ := c.Verify(stripe); ok {
		t.Fatal("corruption not detected")
	}
	stripe[15] = nil
	if _, err := c.Verify(stripe); err == nil {
		t.Fatal("missing block should error")
	}
}

// Backwards compatibility (§3.1): upgrading an RS stripe adds only the
// local parities and yields exactly the Encode result.
func TestUpgradeFromRS(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(10))
	data := randData(r, 10, 64)
	full, _ := c.Encode(data)
	rsStripe, err := c.Precode().Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.UpgradeFromRS(rsStripe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if !bytes.Equal(up[i], full[i]) {
			t.Fatalf("block %d differs from direct encode", i)
		}
	}
	if _, err := c.UpgradeFromRS(rsStripe[:13]); err == nil {
		t.Fatal("short RS stripe accepted")
	}
}

// Zero-padded stripes (§3.1.1): a 3-data-block stripe stores 8 blocks
// (3 data + 4 RS + 1 local parity) and repairs read fewer blocks — the
// mechanism behind the Facebook-cluster numbers in Table 3.
func TestEncodePartialSmallFile(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(11))
	data := randData(r, 3, 64)
	stripe, err := c.EncodePartial(data, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StoredCount(3); got != 8 {
		t.Fatalf("StoredCount(3) = %d want 8", got)
	}
	for i := 0; i < 16; i++ {
		if c.Exists(i, 3) != (stripe[i] != nil) {
			t.Fatalf("Exists(%d,3) inconsistent with EncodePartial", i)
		}
	}
	// Group-1 local parity (S2) must not exist: all its members are padding.
	if c.Exists(15, 3) {
		t.Fatal("S2 should not exist for a 3-block stripe")
	}
	// Light repair of X2 should read only X1, X3, S1 (padding is known).
	exists := make([]bool, 16)
	for i := range exists {
		exists[i] = c.Exists(i, 3)
	}
	avail := append([]bool(nil), exists...)
	avail[1] = false
	plan, err := c.PlanRepair(1, exists, avail, true)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Light || len(plan.Reads) != 3 {
		t.Fatalf("plan %+v: want light with 3 reads", plan)
	}
}

func TestEncodePartialValidation(t *testing.T) {
	c := NewXorbas()
	if _, err := c.EncodePartial(nil, 64); err == nil {
		t.Error("empty data accepted")
	}
	r := rand.New(rand.NewSource(12))
	if _, err := c.EncodePartial(randData(r, 11, 8), 8); err == nil {
		t.Error("oversize data accepted")
	}
}

func TestPlanRepairDeployedVsMinimal(t *testing.T) {
	c := NewXorbas()
	exists := fullMask(16, true)
	avail := fullMask(16, true)
	// Two losses in group 0 force heavy decode of block 0.
	avail[0] = false
	avail[1] = false
	dep, err := c.PlanRepair(0, exists, avail, true)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Light {
		t.Fatal("should be heavy")
	}
	if len(dep.Reads) != 14 {
		t.Fatalf("deployed heavy reads %d, want 14 (all available)", len(dep.Reads))
	}
	min, err := c.PlanRepair(0, exists, avail, false)
	if err != nil {
		t.Fatal(err)
	}
	if min.Light || len(min.Reads) != 10 {
		t.Fatalf("minimal heavy reads %d, want 10", len(min.Reads))
	}
}

func TestPlanRepairErrors(t *testing.T) {
	c := NewXorbas()
	exists := fullMask(16, true)
	avail := fullMask(16, false)
	if _, err := c.PlanRepair(0, exists, avail, true); err == nil {
		t.Fatal("unrecoverable stripe should error")
	}
	if _, err := c.PlanRepair(0, exists[:5], avail[:5], true); err == nil {
		t.Fatal("short masks should error")
	}
	exists[3] = false
	if _, err := c.PlanRepair(3, exists, fullMask(16, true), true); err == nil {
		t.Fatal("repairing non-existent block should error")
	}
}

// The Markov model input: expected reads for single-erasure repair must be
// exactly 5 (every block light-repairable), and the light fraction 1.
func TestExpectedRepairReadsSingle(t *testing.T) {
	c := NewXorbas()
	avg, lightFrac := c.ExpectedRepairReads(1)
	if avg != 5 {
		t.Fatalf("avg reads %f want 5", avg)
	}
	if lightFrac != 1 {
		t.Fatalf("light fraction %f want 1", lightFrac)
	}
	avg2, lf2 := c.ExpectedRepairReads(2)
	if !(avg2 > 5 && avg2 < 14) {
		t.Fatalf("avg reads at 2 erasures %f outside (5,14)", avg2)
	}
	if !(lf2 > 0.5 && lf2 < 1) {
		t.Fatalf("light fraction at 2 erasures %f outside (0.5,1)", lf2)
	}
}

// StoreImplied ablation: 17 stored blocks, overhead 0.7 (the paper's
// pre-optimization layout), still locality 5 everywhere and d >= 5.
func TestStoreImpliedLayout(t *testing.T) {
	p := Xorbas
	p.StoreImplied = true
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NStored() != 17 {
		t.Fatalf("nStored %d want 17", c.NStored())
	}
	if got := c.StorageOverhead(); got != 0.7 {
		t.Fatalf("overhead %f want 0.7", got)
	}
	if err := c.VerifyLocality(); err != nil {
		t.Fatal(err)
	}
	if d := c.MinDistance(); d < 5 {
		t.Fatalf("distance %d want >= 5", d)
	}
	r := rand.New(rand.NewSource(13))
	stripe, _ := c.Encode(randData(r, 10, 32))
	work := make([][]byte, 17)
	copy(work, stripe)
	work[16] = nil // S3 itself
	if _, _, err := c.Reconstruct(work); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[16], stripe[16]) {
		t.Fatal("S3 repair wrong")
	}
}

// Uneven group sizes: K not divisible by GroupSize.
func TestUnevenGroups(t *testing.T) {
	c, err := New(Params{K: 7, GlobalParities: 3, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyLocality(); err != nil {
		t.Fatal(err)
	}
	groups := c.Groups()
	if len(groups) != 4 { // 3 data groups (3,3,1) + parity group
		t.Fatalf("got %d groups", len(groups))
	}
	r := rand.New(rand.NewSource(14))
	stripe, _ := c.Encode(randData(r, 7, 16))
	for lost := 0; lost < c.NStored(); lost++ {
		work := make([][]byte, c.NStored())
		copy(work, stripe)
		work[lost] = nil
		if _, _, err := c.Reconstruct(work); err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if !bytes.Equal(work[lost], stripe[lost]) {
			t.Fatalf("lost=%d wrong", lost)
		}
	}
}

func TestRandomizedConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c, tries, err := NewRandomized(Xorbas, rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("randomized (10,6,5) found in %d tries", tries)
	if c.MinDistance() != 5 {
		t.Fatalf("distance %d", c.MinDistance())
	}
	if err := c.VerifyLocality(); err != nil {
		t.Fatal(err)
	}
	// Round-trip with non-unit coefficients.
	r := rand.New(rand.NewSource(15))
	stripe, _ := c.Encode(randData(r, 10, 32))
	work := make([][]byte, 16)
	copy(work, stripe)
	work[14] = nil
	work[11] = nil
	if _, _, err := c.Reconstruct(work); err != nil {
		t.Fatal(err)
	}
	for i := range work {
		if !bytes.Equal(work[i], stripe[i]) {
			t.Fatalf("block %d wrong", i)
		}
	}
}

func TestRandomizedStoreImplied(t *testing.T) {
	p := Params{K: 6, GlobalParities: 3, GroupSize: 3, StoreImplied: true}
	rng := rand.New(rand.NewSource(7))
	c, _, err := NewRandomized(p, rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyLocality(); err != nil {
		t.Fatal(err)
	}
}

// Theorem 2 bound sanity: d ≤ n − ⌈k/r⌉ − k + 2, and with r = k the bound
// degenerates to the Singleton bound n − k + 1.
func TestDistanceBoundFormula(t *testing.T) {
	if got := DistanceBound(10, 16, 5); got != 6 {
		t.Fatalf("bound(10,16,5) = %d want 6", got)
	}
	if got := DistanceBound(10, 14, 10); got != 5 {
		t.Fatalf("bound with r=k should be Singleton: got %d want 5", got)
	}
	if got := DistanceBound(12, 18, 3); got != 18-4-12+2 {
		t.Fatalf("bound(12,18,3) = %d", got)
	}
}

// Corollary 1 via the bound: for fixed rate, d_LRC/d_MDS → 1 as k grows
// with r = log2(k) (Theorem 1 geometry). Convergence is logarithmic —
// ratio ≈ 1/(1 + 2.5/log2 k) for 40% global parities — so the tail of the
// sweep evaluates the formula at astronomically large k.
func TestTheoremOneAsymptotics(t *testing.T) {
	prev := 0.0
	ks := []int{8, 16, 64, 256, 4096, 1 << 20, 1 << 40, 1 << 60}
	for _, k := range ks {
		p := TheoremOneParams(k, k*2/5)
		n := storedLen(p)
		dLRC := DistanceBound(p.K, n, p.GroupSize)
		dMDS := n - p.K + 1
		ratio := float64(dLRC) / float64(dMDS)
		if ratio <= 0 || ratio > 1 {
			t.Fatalf("k=%d ratio %f out of (0,1]", k, ratio)
		}
		if ratio < prev-0.02 { // allow integer wobble
			t.Fatalf("k=%d ratio %f decreased markedly from %f", k, ratio, prev)
		}
		prev = ratio
	}
	if prev < 0.95 {
		t.Fatalf("ratio at k=2^60 is %f, expected → 1", prev)
	}
}

// Paper's repair-traffic headline: RS repairs a single failure by reading
// 10 blocks (13 as deployed); Xorbas reads 5 — a ~2× reduction.
func TestHeadlineRepairSavings(t *testing.T) {
	c := NewXorbas()
	exists := fullMask(16, true)
	avail := fullMask(16, true)
	avail[4] = false
	plan, err := c.PlanRepair(4, exists, avail, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reads) != 5 {
		t.Fatalf("Xorbas single-failure repair reads %d, want 5", len(plan.Reads))
	}
}

func TestRecipeOutOfRange(t *testing.T) {
	c := NewXorbas()
	if _, _, ok := c.Recipe(-1); ok {
		t.Fatal("Recipe(-1) ok")
	}
	if _, _, ok := c.Recipe(16); ok {
		t.Fatal("Recipe(16) ok")
	}
}

func TestReconstructBlockPresent(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(16))
	stripe, _ := c.Encode(randData(r, 10, 8))
	got, light, err := c.ReconstructBlock(stripe, 0)
	if err != nil || !light || !bytes.Equal(got, stripe[0]) {
		t.Fatal("present block should be returned as-is")
	}
	// Degraded read must not mutate the stripe.
	work := make([][]byte, 16)
	copy(work, stripe)
	work[5] = nil
	if _, _, err := c.ReconstructBlock(work, 5); err != nil {
		t.Fatal(err)
	}
	if work[5] != nil {
		t.Fatal("ReconstructBlock mutated the stripe")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := NewXorbas()
	if _, err := c.Encode(make([][]byte, 9)); err == nil {
		t.Fatal("short data accepted")
	}
}

func BenchmarkEncodeXorbas(b *testing.B) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	data := randData(r, 10, 1<<16)
	b.SetBytes(10 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLightRepair(b *testing.B) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	stripe, _ := c.Encode(randData(r, 10, 1<<16))
	work := make([][]byte, 16)
	b.SetBytes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, stripe)
		work[3] = nil
		if _, _, err := c.ReconstructBlock(work, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeavyRepair(b *testing.B) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	stripe, _ := c.Encode(randData(r, 10, 1<<16))
	work := make([][]byte, 16)
	b.SetBytes(2 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, stripe)
		work[3] = nil
		work[4] = nil
		if _, _, err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

// Describe renders the Fig 2 layout: every paper label appears and the
// implied-parity identity is stated.
func TestDescribeFig2(t *testing.T) {
	s := NewXorbas().Describe()
	for _, want := range []string{"X1", "X10", "P1", "P4", "S1", "S2", "S1+S2+S3 = 0", "60% storage overhead"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe missing %q:\n%s", want, s)
		}
	}
	// Pyramid describes without an implied identity.
	pyr, err := NewPyramid(Xorbas)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pyr.Describe(), "implied") {
		t.Fatal("pyramid should not claim an implied parity")
	}
}
