package lrc

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustPyramid(t testing.TB) *Code {
	t.Helper()
	c, err := NewPyramid(Xorbas) // (10, 4) RS with one parity split in two
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPyramidLayout(t *testing.T) {
	c := mustPyramid(t)
	// 10 data + 2 sub-parities + 3 surviving globals = 15 blocks (vs the
	// LRC's 16): pyramid trades 0.1 blocks of overhead for parity locality.
	if c.NStored() != 15 {
		t.Fatalf("stored %d want 15", c.NStored())
	}
	if got := c.StorageOverhead(); got != 0.5 {
		t.Fatalf("overhead %f want 0.5", got)
	}
	for i := 0; i < 10; i++ {
		if c.Kind(i) != Data {
			t.Fatalf("pos %d kind %v", i, c.Kind(i))
		}
	}
	for i := 10; i < 12; i++ {
		if c.Kind(i) != LocalParity {
			t.Fatalf("pos %d kind %v", i, c.Kind(i))
		}
	}
	for i := 12; i < 15; i++ {
		if c.Kind(i) != GlobalParity {
			t.Fatalf("pos %d kind %v", i, c.Kind(i))
		}
	}
}

// The defining contrast with the paper's LRC (§6): data blocks repair
// locally, global parities do not.
func TestPyramidLocalityContrast(t *testing.T) {
	pyr := mustPyramid(t)
	xor := NewXorbas()
	if pyr.DataLocality() != 5 {
		t.Fatalf("pyramid data locality %d want 5", pyr.DataLocality())
	}
	if pyr.FullyLocal() {
		t.Fatal("pyramid global parities should not be locally repairable")
	}
	if pyr.Locality() != 10 {
		t.Fatalf("pyramid overall locality %d want k=10", pyr.Locality())
	}
	if !xor.FullyLocal() || xor.Locality() != 5 {
		t.Fatal("the LRC must be fully local at r=5")
	}
	// Sub-parities themselves repair locally from their group.
	for _, i := range []int{10, 11} {
		reads, _, ok := pyr.Recipe(i)
		if !ok || len(reads) != 5 {
			t.Fatalf("sub-parity %d recipe %v ok=%v", i, reads, ok)
		}
	}
	// Globals have no recipe.
	for _, i := range []int{12, 13, 14} {
		if _, _, ok := pyr.Recipe(i); ok {
			t.Fatalf("global parity %d unexpectedly light-repairable", i)
		}
	}
}

// The split preserves the RS fault tolerance: exact distance 5 (any 4
// erasures recoverable), like both RS(10,4) and the LRC.
func TestPyramidDistance(t *testing.T) {
	c := mustPyramid(t)
	if d := c.MinDistance(); d != 5 {
		t.Fatalf("pyramid distance %d want 5", d)
	}
}

func TestPyramidEncodeRoundTrip(t *testing.T) {
	c := mustPyramid(t)
	r := rand.New(rand.NewSource(31))
	stripe, err := c.Encode(randData(r, 10, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Σ sub-parities = the split RS parity P1.
	pre, _ := c.Precode().Encode(stripe[:10])
	p1 := make([]byte, 64)
	for i := range p1 {
		p1[i] = stripe[10][i] ^ stripe[11][i]
	}
	if !bytes.Equal(p1, pre[10]) {
		t.Fatal("sub-parities do not sum to the split parity")
	}
	// Single data-block failure: light repair, 5 reads.
	for lost := 0; lost < 10; lost++ {
		work := make([][]byte, 15)
		copy(work, stripe)
		work[lost] = nil
		got, light, err := c.ReconstructBlock(work, lost)
		if err != nil || !light {
			t.Fatalf("lost=%d light=%v err=%v", lost, light, err)
		}
		if !bytes.Equal(got, stripe[lost]) {
			t.Fatalf("lost=%d wrong payload", lost)
		}
	}
	// Global parity failure: heavy decode.
	work := make([][]byte, 15)
	copy(work, stripe)
	work[13] = nil
	got, light, err := c.ReconstructBlock(work, 13)
	if err != nil {
		t.Fatal(err)
	}
	if light {
		t.Fatal("global parity should need a heavy decode")
	}
	if !bytes.Equal(got, stripe[13]) {
		t.Fatal("heavy decode wrong")
	}
}

func TestPyramidAllFourErasures(t *testing.T) {
	c := mustPyramid(t)
	r := rand.New(rand.NewSource(32))
	stripe, _ := c.Encode(randData(r, 10, 16))
	var idx [4]int
	for idx[0] = 0; idx[0] < 15; idx[0]++ {
		for idx[1] = idx[0] + 1; idx[1] < 15; idx[1]++ {
			for idx[2] = idx[1] + 1; idx[2] < 15; idx[2]++ {
				for idx[3] = idx[2] + 1; idx[3] < 15; idx[3]++ {
					work := make([][]byte, 15)
					copy(work, stripe)
					for _, i := range idx {
						work[i] = nil
					}
					if _, _, err := c.Reconstruct(work); err != nil {
						t.Fatalf("pattern %v: %v", idx, err)
					}
					for _, i := range idx {
						if !bytes.Equal(work[i], stripe[i]) {
							t.Fatalf("pattern %v: block %d wrong", idx, i)
						}
					}
				}
			}
		}
	}
}

func TestPyramidValidation(t *testing.T) {
	if _, err := NewPyramid(Params{K: 10, GlobalParities: 1, GroupSize: 5}); err == nil {
		t.Fatal("single parity cannot be split and kept")
	}
	if _, err := NewPyramid(Params{K: 10, GlobalParities: 4, GroupSize: 5, StoreImplied: true}); err == nil {
		t.Fatal("StoreImplied should be rejected")
	}
	if _, err := NewPyramid(Params{K: 0, GlobalParities: 4, GroupSize: 5}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestPyramidUpgradeFromRSRejected(t *testing.T) {
	c := mustPyramid(t)
	r := rand.New(rand.NewSource(33))
	pre, _ := c.Precode().Encode(randData(r, 10, 8))
	if _, err := c.UpgradeFromRS(pre); err == nil {
		t.Fatal("pyramid layout must reject incremental RS upgrade")
	}
}

// Expected repair reads: pyramid matches the LRC for single failures of
// data blocks but pays k-wide decodes when a global parity dies — its
// average sits between the LRC and RS.
func TestPyramidExpectedReads(t *testing.T) {
	pyr := mustPyramid(t)
	xor := NewXorbas()
	pAvg, _ := pyr.ExpectedRepairReads(1)
	xAvg, _ := xor.ExpectedRepairReads(1)
	if !(pAvg > xAvg) {
		t.Fatalf("pyramid avg %f should exceed the LRC's %f (global parities decode heavily)", pAvg, xAvg)
	}
	if pAvg >= 13 {
		t.Fatalf("pyramid avg %f should beat deployed RS (13)", pAvg)
	}
}
