package lrc

import (
	"fmt"

	"repro/internal/gf"
)

// Scrubbing support. The BlockFixer also handles *corrupted* (not just
// missing) blocks (§3: "periodically checks for lost or corrupted
// blocks"). An LRC's local parities double as group checksums: each
// repair group satisfies one linear equation (Σ c_i·member_i = 0 in the
// homogeneous form), so a scrubber can verify a group by reading only
// its r+1 members instead of decoding the whole stripe, and a single
// corrupted block is localized to the unique group whose syndrome is
// nonzero — one more operational win of locality.

// GroupSyndrome computes the group's parity equation over the payloads:
// zero everywhere iff the group's blocks are mutually consistent. All
// member blocks must be present. For the implied parity group the
// equation is Σ P_j + Σ S_g = 0 (Eq. (2) rearranged).
func (c *Code) GroupSyndrome(stripe [][]byte, group int) ([]byte, error) {
	if len(stripe) != c.nStored {
		return nil, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	if group < 0 || group >= len(c.groups) {
		return nil, fmt.Errorf("lrc: group %d out of range", group)
	}
	g := c.groups[group]
	// Use the light recipe of the group's first member: member = Σ
	// coef·reads ⇒ syndrome = member + Σ coef·reads.
	anchor := g.Members[0]
	r := c.recipeCache[anchor]
	if r == nil {
		return nil, fmt.Errorf("lrc: group %d has no parity equation", group)
	}
	size := -1
	for _, j := range append([]int{anchor}, r.reads...) {
		if stripe[j] == nil {
			return nil, fmt.Errorf("lrc: block %d missing; syndrome needs the full group", j)
		}
		if size == -1 {
			size = len(stripe[j])
		} else if len(stripe[j]) != size {
			return nil, fmt.Errorf("lrc: block %d size mismatch", j)
		}
	}
	syn := make([]byte, size)
	gf.XORSlice(syn, stripe[anchor])
	for ji, j := range r.reads {
		c.f.MulAddSlice(r.coefs[ji], syn, stripe[j])
	}
	return syn, nil
}

// zeroSyndrome reports whether the syndrome is all zero.
func zeroSyndrome(s []byte) bool {
	for _, b := range s {
		if b != 0 {
			return false
		}
	}
	return true
}

// LocateCorruption scans a full stripe for silent corruption. It returns
// the indices of corrupted blocks, localized as precisely as the code
// structure allows:
//
//   - a single corrupted block is pinned exactly (its group's syndrome
//     fires; cross-checking against the full re-encode identifies the
//     block);
//   - multiple corruptions are reported as the union of suspicious
//     blocks from all firing groups.
//
// All blocks must be present (scrubbing reads everything; this is the
// integrity pass, not the erasure decoder).
func (c *Code) LocateCorruption(stripe [][]byte) ([]int, error) {
	if len(stripe) != c.nStored {
		return nil, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	for i, s := range stripe {
		if s == nil {
			return nil, fmt.Errorf("lrc: block %d missing; LocateCorruption needs a full stripe", i)
		}
	}
	// Group-level triage: which groups fire?
	var firing []int
	for gi := range c.groups {
		syn, err := c.GroupSyndrome(stripe, gi)
		if err != nil {
			return nil, err
		}
		if !zeroSyndrome(syn) {
			firing = append(firing, gi)
		}
	}
	if len(firing) == 0 {
		// Local parities all consistent. A corruption confined to a
		// coincidentally-consistent pattern is caught by the global
		// re-encode below.
		if ok, err := c.Verify(stripe); err != nil {
			return nil, err
		} else if ok {
			return nil, nil
		}
	}
	// Pin down blocks: recompute the full stripe from the data blocks
	// and compare. If a *data* block is corrupted the re-encode won't
	// match it directly, so instead try, for each suspicious block,
	// rebuilding it from the rest and testing whether the repaired
	// stripe becomes fully consistent.
	suspects := map[int]bool{}
	for _, gi := range firing {
		for _, m := range c.groups[gi].Members {
			suspects[m] = true
		}
		if c.groups[gi].Implied {
			for j := 0; j < c.nStored; j++ {
				if c.kinds[j] == LocalParity {
					suspects[j] = true
				}
			}
		}
	}
	if len(firing) == 0 {
		for j := 0; j < c.nStored; j++ {
			suspects[j] = true
		}
	}
	var corrupted []int
	for j := 0; j < c.nStored; j++ {
		if !suspects[j] {
			continue
		}
		work := make([][]byte, c.nStored)
		copy(work, stripe)
		work[j] = nil
		rebuilt, _, err := c.ReconstructBlock(work, j)
		if err != nil {
			continue
		}
		if !bytesEqual(rebuilt, stripe[j]) {
			// Rebuilding j from the others changed it — but that also
			// happens when a *source* of the rebuild is corrupted. Accept
			// j only if replacing it makes the whole stripe consistent.
			work[j] = rebuilt
			if ok, err := c.Verify(work); err == nil && ok {
				corrupted = append(corrupted, j)
			}
		}
	}
	if len(corrupted) == 0 {
		// Multi-block corruption beyond single-block localization: report
		// every member of the firing groups.
		for j := 0; j < c.nStored; j++ {
			if suspects[j] {
				corrupted = append(corrupted, j)
			}
		}
	}
	return corrupted, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
