package lrc

import (
	"math/rand"
	"testing"
)

func TestGroupSyndromeCleanStripe(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	stripe, _ := c.Encode(randData(r, 10, 64))
	for gi := 0; gi < 3; gi++ {
		syn, err := c.GroupSyndrome(stripe, gi)
		if err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		if !zeroSyndrome(syn) {
			t.Fatalf("group %d fired on a clean stripe", gi)
		}
	}
	if _, err := c.GroupSyndrome(stripe, 5); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	stripe[3] = nil
	if _, err := c.GroupSyndrome(stripe, 0); err == nil {
		t.Fatal("missing member accepted")
	}
}

// A single flipped byte fires exactly its group's syndrome.
func TestGroupSyndromeLocalizesGroup(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(2))
	stripe, _ := c.Encode(randData(r, 10, 64))
	stripe[7][10] ^= 0x5a // X8: group 1
	fired := make([]bool, 3)
	for gi := 0; gi < 3; gi++ {
		syn, err := c.GroupSyndrome(stripe, gi)
		if err != nil {
			t.Fatal(err)
		}
		fired[gi] = !zeroSyndrome(syn)
	}
	if fired[0] || !fired[1] || fired[2] {
		t.Fatalf("fired=%v want only group 1", fired)
	}
}

// LocateCorruption pins a single corrupted block exactly, for every
// block role (data, global parity, local parity).
func TestLocateCorruptionSingleBlock(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(3))
	for _, victim := range []int{0, 4, 7, 10, 13, 14, 15} {
		stripe, _ := c.Encode(randData(r, 10, 32))
		stripe[victim][3] ^= 0xff
		got, err := c.LocateCorruption(stripe)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if len(got) != 1 || got[0] != victim {
			t.Fatalf("victim %d: located %v", victim, got)
		}
	}
}

func TestLocateCorruptionCleanStripe(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(4))
	stripe, _ := c.Encode(randData(r, 10, 32))
	got, err := c.LocateCorruption(stripe)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("clean stripe flagged %v", got)
	}
}

// Two corruptions in different groups: both groups fire; the report
// covers both victims.
func TestLocateCorruptionTwoBlocks(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(5))
	stripe, _ := c.Encode(randData(r, 10, 32))
	stripe[1][0] ^= 1 // group 0
	stripe[8][0] ^= 1 // group 1
	got, err := c.LocateCorruption(stripe)
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{}
	for _, j := range got {
		has[j] = true
	}
	if !has[1] || !has[8] {
		t.Fatalf("victims not covered: %v", got)
	}
}

func TestLocateCorruptionValidation(t *testing.T) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(6))
	stripe, _ := c.Encode(randData(r, 10, 32))
	stripe[2] = nil
	if _, err := c.LocateCorruption(stripe); err == nil {
		t.Fatal("missing block accepted")
	}
	if _, err := c.LocateCorruption(stripe[:4]); err == nil {
		t.Fatal("short stripe accepted")
	}
}

func BenchmarkGroupSyndrome(b *testing.B) {
	c := NewXorbas()
	r := rand.New(rand.NewSource(1))
	stripe, _ := c.Encode(randData(r, 10, 1<<16))
	b.SetBytes(6 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GroupSyndrome(stripe, 0); err != nil {
			b.Fatal(err)
		}
	}
}
