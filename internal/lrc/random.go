package lrc

import (
	"fmt"
	"math/rand"

	"repro/internal/gf"
)

// NewRandomized draws random nonzero local-parity coefficients and retries
// until the resulting code meets the Theorem 2 distance bound, mirroring
// the paper's randomized construction (Appendix C: a random linear code
// achieves the cut-set bound with probability ≥ (1 − T/q)^η, so a handful
// of draws over GF(2^8) suffices).
//
// Alignment constraint: when the parity-group local parity is implied
// (Fig. 2's S3), repairs reconstruct it as Σ_g S_g, which requires the
// alignment condition Σ_g S_g + Σ_j P_j = 0. Because the systematic data
// columns are linearly independent, alignment forces the coefficients
// within each group to share one value a_g (S_g = a_g·ΣX_i, a scaled
// XOR) — the structural reason the paper's c_i = 1 choice is essentially
// canonical. So with implied parity we randomize one nonzero scalar per
// group; with StoreImplied we randomize every coefficient independently.
//
// The exact minimum distance is verified by enumeration, so use this for
// stripe-scale parameters only. It returns the code and the number of
// tries used.
func NewRandomized(p Params, rng *rand.Rand, maxTries int) (*Code, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if maxTries <= 0 {
		maxTries = 32
	}
	// Target: the exact distance of the canonical all-ones construction.
	// The raw Theorem 2 bound can be unachievable when (r+1) ∤ n — e.g.
	// for the (10,6,5) geometry the bound gives 6 but overlapping groups
	// cap the distance at 5 (Theorem 5 proves 5 is optimal there) — so the
	// deterministic construction's distance is the right yardstick.
	canonical, err := New(p)
	if err != nil {
		return nil, 0, err
	}
	target := canonical.MinDistance()
	for try := 1; try <= maxTries; try++ {
		var coeff func(g, j int) gf.Elem
		if p.StoreImplied {
			coeff = func(g, j int) gf.Elem { return gf.Elem(1 + rng.Intn(254)) }
		} else {
			perGroup := make([]gf.Elem, p.numGroups())
			for i := range perGroup {
				perGroup[i] = gf.Elem(1 + rng.Intn(254))
			}
			coeff = func(g, j int) gf.Elem { return perGroup[g] }
		}
		c, err := newWithCoefficientFn(p, coeff)
		if err != nil {
			return nil, try, err
		}
		if c.VerifyLocality() != nil {
			continue
		}
		if c.MinDistance() >= target {
			return c, try, nil
		}
	}
	return nil, maxTries, fmt.Errorf("lrc: no distance-%d code found in %d randomized tries", target, maxTries)
}

// storedLen computes NStored for a geometry without building the code.
func storedLen(p Params) int {
	n := p.K + p.GlobalParities + p.numGroups()
	if p.StoreImplied {
		n++
	}
	return n
}

// TheoremOneParams returns the (k, n−k, r) geometry of Theorem 1 for a
// given k: logarithmic locality r = ⌈log2(k)⌉ with one local parity per
// group layered on an MDS precode with the requested number of global
// parities. The resulting distance approaches the MDS distance of the
// same rate as k grows (Corollary 1).
func TheoremOneParams(k, globalParities int) Params {
	r := 1
	for 1<<r < k {
		r++
	}
	if r < 2 {
		r = 2
	}
	return Params{K: k, GlobalParities: globalParities, GroupSize: r}
}
