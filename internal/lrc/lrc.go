// Package lrc implements Locally Repairable Codes, the paper's primary
// contribution (Section 2, Appendices C–D).
//
// An LRC is layered on a systematic (k, p) Reed-Solomon precode. The k
// data blocks are partitioned into groups of at most r blocks and one
// local parity S_g = Σ c_i·X_i is added per group, making every data
// block repairable from r other blocks instead of k. The global parities
// form their own repair group whose local parity S_impl is *implied*: the
// paper's interference-alignment argument (Theorem 5) shows that with the
// Appendix D Reed-Solomon generator the all-ones vector lies in the row
// space of H, hence Σ of all k+p generator columns is zero and therefore
//
//	Σ_g S_g + S_impl = 0,
//
// so S_impl never needs to be stored: it is the XOR of the stored local
// parities. This saves one block of storage per stripe (16/10 instead of
// 17/10 overhead for the Xorbas code) at no cost in locality.
//
// The flagship instance is NewXorbas: the (10,6,5) code of Fig. 2 —
// 10 data blocks, a (10,4) RS precode, two stored local XOR parities
// S1 = X1+…+X5 and S2 = X6+…+X10, implied S3 = P1+P2+P3+P4, locality 5
// for every one of the 16 stored blocks, and optimal distance d = 5.
package lrc

import (
	"fmt"
	"sync"

	"repro/internal/gf"
	"repro/internal/matrix"
	"repro/internal/rs"
)

// Params describes an LRC geometry.
type Params struct {
	// K is the number of data blocks per stripe (10 in the paper).
	K int
	// GlobalParities is the number of Reed-Solomon parities p (4 in the
	// paper). The precode is a (K, K+GlobalParities) RS code.
	GlobalParities int
	// GroupSize is the locality r of the data groups: each local parity
	// covers at most GroupSize data blocks (5 in the paper).
	GroupSize int
	// StoreImplied stores the parity-group local parity S_impl as a real
	// block instead of implying it. This is the paper's pre-optimization
	// layout (17/10 storage) and exists for the ablation benchmarks.
	StoreImplied bool
}

// Validate checks the geometry is constructible over GF(2^8).
func (p Params) Validate() error {
	if p.K <= 0 || p.GlobalParities <= 0 {
		return fmt.Errorf("lrc: K and GlobalParities must be positive, got %d,%d", p.K, p.GlobalParities)
	}
	if p.GroupSize < 2 || p.GroupSize > p.K {
		return fmt.Errorf("lrc: GroupSize %d out of range [2,%d]", p.GroupSize, p.K)
	}
	return nil
}

// numGroups returns the number of data groups ⌈K/GroupSize⌉.
func (p Params) numGroups() int { return (p.K + p.GroupSize - 1) / p.GroupSize }

// Xorbas is the paper's (10, 6, 5) geometry.
var Xorbas = Params{K: 10, GlobalParities: 4, GroupSize: 5}

// BlockKind classifies a stored block's role in the stripe.
type BlockKind int

const (
	// Data is one of the k systematic file blocks X_i.
	Data BlockKind = iota
	// GlobalParity is a Reed-Solomon parity P_i.
	GlobalParity
	// LocalParity is a stored local parity S_g.
	LocalParity
)

func (k BlockKind) String() string {
	switch k {
	case Data:
		return "data"
	case GlobalParity:
		return "global-parity"
	case LocalParity:
		return "local-parity"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// Group is a repair group Γ: a set of stored blocks such that any single
// member is a deterministic function of the others (Definition 3's
// (r+1)-group). For the parity group with an implied parity, the function
// additionally consumes every stored local parity (to reconstruct S_impl).
type Group struct {
	// Members are the stored block indices in the group. For the parity
	// group this is the global parities plus, if stored, S_impl.
	Members []int
	// Implied marks the global-parity group when its local parity is not
	// stored; repairs then read the stored local parities as well.
	Implied bool
}

// Code is an immutable Locally Repairable Code. Safe for concurrent use.
type Code struct {
	params Params
	f      *gf.Field
	pre    *rs.Code // (K, K+P) Reed-Solomon precode

	nStored int // K + P + stored local parities
	kinds   []BlockKind
	groups  []Group
	// groupOf[i] is the index in groups of block i's repair group.
	groupOf []int
	// coeffs[g][j] is the coefficient c of the j-th member data block in
	// local parity S_g (all ones for the XOR construction the paper
	// deploys; the randomized construction draws them from F*).
	coeffs [][]gf.Elem
	// gen is the K×nStored generator: data columns, RS parity columns,
	// then one column per stored local parity.
	gen *matrix.Matrix
	// dataGroups[g] lists the data block indices covered by S_g.
	dataGroups [][]int
	// recipeCache holds the per-block light-repair recipes, computed once
	// at construction so the Code is safe for concurrent use afterwards.
	recipeCache []*recipe
	// parityCols[j-K] is generator column j as a flat coefficient vector,
	// extracted once so the encoders iterate a slice instead of calling
	// gen.At in the hot loop.
	parityCols [][]gf.Elem
	// wide holds the lane-packed encode tables: each set computes up to
	// 8 parity columns in one pass over the data (one table lookup per
	// data byte total — the encode hot path). Built lazily on first
	// encode so constructing a Code for analysis (distance sweeps, plan
	// enumeration) stays cheap; sync.Once publishes the finished tables
	// to concurrent encoders.
	wideOnce sync.Once
	wide     []*gf.WideTables
	// invCache memoizes the heavy decoder's inverse per chosen-column
	// set: steady-state repair of a dead node hits the same erasure
	// pattern across thousands of stripes, so the O(k³) solve happens
	// once per pattern. Keys are 256-bit column bitsets; a real repair
	// run sees only dozens of distinct patterns.
	invCache sync.Map // colKey -> *matrix.Matrix
}

// colKey is a bitset over the code's stored-block indices (≤256).
type colKey [4]uint64

func keyOf(cols []int) colKey {
	var k colKey
	for _, c := range cols {
		k[c>>6] |= 1 << (uint(c) & 63)
	}
	return k
}

// wideTables returns the lane-packed encode tables, building them on
// first use.
func (c *Code) wideTables() []*gf.WideTables {
	c.wideOnce.Do(func() {
		for lo := 0; lo < len(c.parityCols); lo += gf.WideLanes {
			hi := lo + gf.WideLanes
			if hi > len(c.parityCols) {
				hi = len(c.parityCols)
			}
			c.wide = append(c.wide, c.f.NewWideTables(c.parityCols[lo:hi]))
		}
	})
	return c.wide
}

// New constructs an LRC with all-ones (pure XOR) local-parity
// coefficients, the construction HDFS-Xorbas deploys (Section 2.1: "for
// the Reed-Solomon code implemented in HDFS RAID, choosing c_i = 1 ∀i …
// is sufficient").
func New(p Params) (*Code, error) {
	return newWithCoefficientFn(p, func(g, j int) gf.Elem { return 1 })
}

// NewXorbas returns the explicit (10,6,5) LRC of Fig. 2.
func NewXorbas() *Code {
	c, err := New(Xorbas)
	if err != nil {
		panic("lrc: Xorbas construction failed: " + err.Error())
	}
	return c
}

// newWithCoefficientFn builds the code with local coefficient c(g, j) for
// the j-th member of data group g. Coefficients must be nonzero so the
// inverse in Eq. (1) exists.
func newWithCoefficientFn(p Params, coeff func(g, j int) gf.Elem) (*Code, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := gf.MustNew(8)
	nPre := p.K + p.GlobalParities
	pre, err := rs.New(f, p.K, nPre)
	if err != nil {
		return nil, fmt.Errorf("lrc: precode: %w", err)
	}
	g := p.numGroups()
	nStored := nPre + g
	if p.StoreImplied {
		nStored++
	}

	c := &Code{
		params:  p,
		f:       f,
		pre:     pre,
		nStored: nStored,
		kinds:   make([]BlockKind, nStored),
		groupOf: make([]int, nStored),
	}

	// Partition data blocks into groups.
	for gi := 0; gi < g; gi++ {
		lo := gi * p.GroupSize
		hi := lo + p.GroupSize
		if hi > p.K {
			hi = p.K
		}
		members := make([]int, 0, hi-lo+1)
		var cs []gf.Elem
		for j := lo; j < hi; j++ {
			members = append(members, j)
			cv := coeff(gi, j-lo)
			if cv == 0 {
				return nil, fmt.Errorf("lrc: zero local coefficient in group %d", gi)
			}
			cs = append(cs, cv)
		}
		c.dataGroups = append(c.dataGroups, append([]int(nil), members...))
		c.coeffs = append(c.coeffs, cs)
		lpIdx := nPre + gi
		members = append(members, lpIdx)
		c.groups = append(c.groups, Group{Members: members})
		for _, m := range members {
			c.groupOf[m] = gi
		}
		c.kinds[lpIdx] = LocalParity
	}

	// The parity group: global parities plus implied (or stored) parity.
	pg := Group{Implied: !p.StoreImplied}
	for j := p.K; j < nPre; j++ {
		pg.Members = append(pg.Members, j)
		c.kinds[j] = GlobalParity
		c.groupOf[j] = g
	}
	if p.StoreImplied {
		si := nStored - 1
		pg.Members = append(pg.Members, si)
		c.kinds[si] = LocalParity
		c.groupOf[si] = g
	}
	c.groups = append(c.groups, pg)

	for i := 0; i < p.K; i++ {
		c.kinds[i] = Data
	}

	c.gen = c.buildGenerator()
	c.recipeCache = c.lightRecipes()
	c.buildParityCols()
	return c, nil
}

// buildParityCols flattens the non-data generator columns for the encode
// hot loop. Must run after gen is assembled.
func (c *Code) buildParityCols() {
	k := c.params.K
	c.parityCols = make([][]gf.Elem, c.nStored-k)
	for j := k; j < c.nStored; j++ {
		col := make([]gf.Elem, k)
		for i := 0; i < k; i++ {
			col[i] = c.gen.At(i, j)
		}
		c.parityCols[j-k] = col
	}
}

// buildGenerator assembles the K×nStored generator matrix: the precode's
// generator followed by the local-parity columns Σ c_i·g_i (Eq. (7)).
func (c *Code) buildGenerator() *matrix.Matrix {
	preGen := c.pre.Generator()
	k := c.params.K
	gen := matrix.New(c.f, k, c.nStored)
	for i := 0; i < k; i++ {
		for j := 0; j < preGen.Cols(); j++ {
			gen.Set(i, j, preGen.At(i, j))
		}
	}
	nPre := preGen.Cols()
	for gi, members := range c.dataGroups {
		col := nPre + gi
		for mi, dj := range members {
			cv := c.coeffs[gi][mi]
			for i := 0; i < k; i++ {
				gen.Set(i, col, c.f.Add(gen.At(i, col), c.f.Mul(cv, preGen.At(i, dj))))
			}
		}
	}
	if c.params.StoreImplied {
		// S_impl column = Σ global parity columns.
		col := c.nStored - 1
		for j := k; j < nPre; j++ {
			for i := 0; i < k; i++ {
				gen.Set(i, col, c.f.Add(gen.At(i, col), preGen.At(i, j)))
			}
		}
	}
	return gen
}

// Params returns the geometry.
func (c *Code) Params() Params { return c.params }

// K returns the number of data blocks per stripe.
func (c *Code) K() int { return c.params.K }

// NStored returns the number of stored blocks per full stripe (16 for the
// Xorbas code).
func (c *Code) NStored() int { return c.nStored }

// NPre returns the precode length K + GlobalParities (14 for Xorbas).
func (c *Code) NPre() int { return c.params.K + c.params.GlobalParities }

// Field returns the underlying GF(2^8) field.
func (c *Code) Field() *gf.Field { return c.f }

// Precode returns the underlying Reed-Solomon code.
func (c *Code) Precode() *rs.Code { return c.pre }

// Kind returns the role of stored block i.
func (c *Code) Kind(i int) BlockKind { return c.kinds[i] }

// Groups returns the repair groups (data groups first, parity group last).
func (c *Code) Groups() []Group {
	out := make([]Group, len(c.groups))
	for i, g := range c.groups {
		out[i] = Group{Members: append([]int(nil), g.Members...), Implied: g.Implied}
	}
	return out
}

// GroupOf returns the repair-group index of stored block i.
func (c *Code) GroupOf(i int) int { return c.groupOf[i] }

// Generator returns a copy of the K×NStored generator matrix.
func (c *Code) Generator() *matrix.Matrix { return c.gen.Clone() }

// Locality returns the code's block locality r: the maximum, over stored
// blocks, of the number of blocks needed to repair one. For Xorbas this
// is 5 for every block (Theorem 5). Blocks without a light repair (a
// pyramid code's global parities) count K — repairing them decodes the
// whole stripe.
func (c *Code) Locality() int {
	r := 0
	for i := 0; i < c.nStored; i++ {
		l := len(c.lightReadSet(i))
		if l == 0 {
			l = c.params.K
		}
		if l > r {
			r = l
		}
	}
	return r
}

// DataLocality returns the maximum light-repair read count over data
// blocks only — the metric pyramid codes optimize (§6).
func (c *Code) DataLocality() int {
	r := 0
	for i := 0; i < c.params.K; i++ {
		l := len(c.lightReadSet(i))
		if l == 0 {
			l = c.params.K
		}
		if l > r {
			r = l
		}
	}
	return r
}

// StorageOverhead returns (NStored−K)/K, e.g. 0.6 for Xorbas (Table 1).
func (c *Code) StorageOverhead() float64 {
	return float64(c.nStored-c.params.K) / float64(c.params.K)
}

// DistanceBound returns the Theorem 2 upper bound on the minimum distance
// of any (k, n−k) code with locality r:
//
//	d ≤ n − ⌈k/r⌉ − k + 2.
func DistanceBound(k, n, r int) int {
	return n - (k+r-1)/r - k + 2
}

// MinDistanceBound returns the Theorem 2 bound evaluated at this code's
// parameters (n = NStored, r = Locality).
func (c *Code) MinDistanceBound() int {
	return DistanceBound(c.params.K, c.nStored, c.Locality())
}

// MinDistance computes the exact minimum distance by exhaustive erasure
// enumeration: the smallest e such that some e-subset of stored blocks,
// when erased, leaves generator columns of rank < K (Definition 1 via the
// entropy characterization of Eq. (5)). Cost grows as C(n, d); intended
// for stripe-scale codes (n ≤ ~24). Use MinDistanceBound for large n.
func (c *Code) MinDistance() int {
	n, k := c.nStored, c.params.K
	for e := 1; e <= n-k+1; e++ {
		if c.existsFatalErasure(e) {
			return e
		}
	}
	return n - k + 1
}

// existsFatalErasure reports whether erasing some e blocks drops the
// remaining columns' rank below K.
func (c *Code) existsFatalErasure(e int) bool {
	n, k := c.nStored, c.params.K
	erased := make([]int, e)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == e {
			keep := make([]int, 0, n-e)
			em := make(map[int]bool, e)
			for _, i := range erased {
				em[i] = true
			}
			for j := 0; j < n; j++ {
				if !em[j] {
					keep = append(keep, j)
				}
			}
			return c.gen.SelectCols(keep).Rank() < k
		}
		for i := start; i < n; i++ {
			erased[depth] = i
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}
