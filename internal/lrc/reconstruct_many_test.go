package lrc

import (
	"bytes"
	"math/rand"
	"testing"
)

// encodeFull builds a full Xorbas stripe of random payloads.
func encodeFull(t *testing.T, c *Code, seed int64, size int) [][]byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	stripe, err := c.Encode(randData(r, c.K(), size))
	if err != nil {
		t.Fatal(err)
	}
	return stripe
}

// TestReconstructManyPatterns checks the batched decoder against the
// per-block reference across light, chained-light, same-group heavy and
// mixed patterns.
func TestReconstructManyPatterns(t *testing.T) {
	c := NewXorbas()
	full := encodeFull(t, c, 51, 80)
	cases := []struct {
		name      string
		lost      []int
		wantLight []bool
	}{
		{"single data (light)", []int{0}, []bool{true}},
		{"local parity (light)", []int{14}, []bool{true}},
		{"two groups (both light)", []int{0, 7}, []bool{true, true}},
		{"same group (heavy)", []int{0, 1}, []bool{false, false}},
		// Global parity 10's recipe reads S1; rebuilding S1 first unlocks
		// it — the light fixpoint must chain.
		{"chained through local parity", []int{10, 14}, []bool{true, true}},
		{"three losses mixed", []int{0, 5, 10}, []bool{true, true, true}},
		{"four losses", []int{0, 1, 5, 11}, []bool{false, false, true, true}},
	}
	for _, tc := range cases {
		work := make([][]byte, len(full))
		copy(work, full)
		for _, i := range tc.lost {
			work[i] = nil
		}
		payloads, light, err := c.ReconstructMany(work, tc.lost)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for oi, i := range tc.lost {
			if !bytes.Equal(payloads[oi], full[i]) {
				t.Fatalf("%s: position %d mismatch", tc.name, i)
			}
			if light[oi] != tc.wantLight[oi] {
				t.Fatalf("%s: position %d light=%v, want %v", tc.name, i, light[oi], tc.wantLight[oi])
			}
		}
		for i, s := range work {
			if s != nil && !bytes.Equal(s, full[i]) {
				t.Fatalf("%s: input stripe mutated at %d", tc.name, i)
			}
		}
	}
}

// TestReconstructManyAgainstReference cross-checks random erasure
// patterns against ReconstructBlock block by block.
func TestReconstructManyAgainstReference(t *testing.T) {
	c := NewXorbas()
	full := encodeFull(t, c, 52, 64)
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		e := 1 + r.Intn(4)
		lost := r.Perm(c.NStored())[:e]
		work := make([][]byte, len(full))
		copy(work, full)
		for _, i := range lost {
			work[i] = nil
		}
		payloads, _, err := c.ReconstructMany(work, lost)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, lost, err)
		}
		for oi, i := range lost {
			if !bytes.Equal(payloads[oi], full[i]) {
				t.Fatalf("trial %d: position %d mismatch (lost %v)", trial, i, lost)
			}
		}
	}
}

// TestReconstructManyPartialProgress: on an unrecoverable stripe the
// positions that still have a light repair are returned, the rest are
// nil, and an error reports the failure — the contract the store's
// repair worker relies on to persist partial progress.
func TestReconstructManyPartialProgress(t *testing.T) {
	c := NewXorbas()
	full := encodeFull(t, c, 54, 48)
	// Erase all of group 2 (data 5..9 plus its local parity 15): fatal.
	// Block 0 is additionally lost but light-repairable from 1..4 + S1.
	lost := []int{0, 5, 6, 7, 8, 9, 15}
	work := make([][]byte, len(full))
	copy(work, full)
	for _, i := range lost {
		work[i] = nil
	}
	payloads, light, err := c.ReconstructMany(work, lost)
	if err == nil {
		t.Fatal("want error for an unrecoverable stripe")
	}
	if payloads == nil {
		t.Fatal("partial payloads missing")
	}
	if !bytes.Equal(payloads[0], full[0]) || !light[0] {
		t.Fatal("light-repairable block 0 not rebuilt")
	}
	for oi := 1; oi < len(lost); oi++ {
		if payloads[oi] != nil {
			t.Fatalf("unrecoverable position %d unexpectedly rebuilt", lost[oi])
		}
	}
}

// TestReconstructManyInto: the zero-allocation variant fills dirty
// caller buffers and reports per-position success.
func TestReconstructManyInto(t *testing.T) {
	c := NewXorbas()
	full := encodeFull(t, c, 55, 72)
	lost := []int{3, 12}
	work := make([][]byte, len(full))
	copy(work, full)
	for _, i := range lost {
		work[i] = nil
	}
	dst := make([][]byte, len(lost))
	for oi := range dst {
		dst[oi] = bytes.Repeat([]byte{0xAA}, 72) // stale contents
	}
	filled, _, err := c.ReconstructManyInto(work, lost, dst)
	if err != nil {
		t.Fatal(err)
	}
	for oi, i := range lost {
		if !filled[oi] {
			t.Fatalf("position %d not filled", i)
		}
		if !bytes.Equal(dst[oi], full[i]) {
			t.Fatalf("position %d mismatch", i)
		}
	}
}
