package lrc

import (
	"bytes"
	"fmt"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// Encode computes the full stored stripe for K data shards: the data,
// the Reed-Solomon global parities, and the local parities (plus S_impl
// if StoreImplied). Shards must be non-nil and equal length; they are
// referenced, not copied. This is the HDFS-Xorbas encoder of §3.1.1.
// Every non-data block is a generator-column combination of the data, so
// one loop covers both the LRC and pyramid layouts; zero coefficients
// short-circuit, which keeps the local XOR parities as cheap as a direct
// XOR pass.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if err := c.checkEncodeArgs(data); err != nil {
		return nil, err
	}
	size := len(data[0])
	stripe := make([][]byte, c.nStored)
	copy(stripe, data)
	parity := make([][]byte, c.nStored-c.params.K)
	for j := range parity {
		parity[j] = make([]byte, size)
		stripe[c.params.K+j] = parity[j]
	}
	c.encodeRange(data, parity, 0, size)
	return stripe, nil
}

// EncodeInto computes the NStored−K parity blocks directly into the
// caller's buffers, overwriting them — the streaming store's zero-copy
// path, where parity payloads are encoded straight into framed backend
// buffers and no per-stripe parity allocation happens. parity[j] is
// stored block K+j and must have the data shards' length.
func (c *Code) EncodeInto(data, parity [][]byte) error {
	if err := c.checkEncodeArgs(data); err != nil {
		return err
	}
	if len(parity) != c.nStored-c.params.K {
		return fmt.Errorf("lrc: got %d parity buffers, want %d", len(parity), c.nStored-c.params.K)
	}
	size := len(data[0])
	for j, p := range parity {
		if p == nil || len(p) != size {
			return fmt.Errorf("lrc: parity buffer %d nil or size mismatch", j)
		}
	}
	c.encodeRange(data, parity, 0, size)
	return nil
}

// checkEncodeArgs validates the data shard slice for the encoders.
func (c *Code) checkEncodeArgs(data [][]byte) error {
	if len(data) != c.params.K {
		return fmt.Errorf("lrc: got %d data shards, want %d", len(data), c.params.K)
	}
	size := len(data[0])
	for i, d := range data {
		if d == nil || len(d) != size {
			return fmt.Errorf("lrc: data shard %d nil or size mismatch", i)
		}
	}
	return nil
}

// encodeRange fills every parity column over the data byte window
// [from, to) with the lane-packed wide tables: each 8-column group costs
// one table lookup per data byte, total, instead of one per column. The
// window form is what the parallel encoder splits on (any byte split is
// valid — the code is byte-wise). Parity buffers are overwritten, so
// dirty (reused) buffers are fine.
func (c *Code) encodeRange(data, parity [][]byte, from, to int) {
	if from >= to {
		return
	}
	srcs := data
	if from != 0 || to != len(data[0]) {
		srcs = make([][]byte, len(data))
		for i, d := range data {
			srcs[i] = d[from:to]
		}
	}
	lo := 0
	for _, w := range c.wideTables() {
		dsts := parity[lo : lo+w.Lanes()]
		if from != 0 || to != len(parity[lo]) {
			dsts = make([][]byte, w.Lanes())
			for l := range dsts {
				dsts[l] = parity[lo+l][from:to]
			}
		}
		w.Dot(dsts, srcs)
		lo += w.Lanes()
	}
}

// EncodePartial encodes a short stripe of fewer than K data shards, the
// paper's zero-padded incomplete stripe (§3.1.1): missing data blocks are
// treated as all-zero and are NOT stored. The returned slice still has
// NStored entries; entries that correspond to padding data blocks and to
// local parities whose whole group is padding are nil. Use Exists to ask
// which stripe positions are physically stored for a given data count.
func (c *Code) EncodePartial(data [][]byte, size int) ([][]byte, error) {
	if len(data) == 0 || len(data) > c.params.K {
		return nil, fmt.Errorf("lrc: partial stripe with %d shards, want 1..%d", len(data), c.params.K)
	}
	full := make([][]byte, c.params.K)
	copy(full, data)
	zero := make([]byte, size)
	for i := len(data); i < c.params.K; i++ {
		full[i] = zero
	}
	stripe, err := c.Encode(full)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.nStored; i++ {
		if !c.Exists(i, len(data)) {
			stripe[i] = nil
		}
	}
	return stripe, nil
}

// Exists reports whether stripe position i is physically stored when the
// stripe holds dataCount ≤ K real data blocks. Padding data blocks do not
// exist; a local parity exists only if its group covers at least one real
// data block; global parities and S_impl always exist (they mix all data).
func (c *Code) Exists(i, dataCount int) bool {
	switch c.kinds[i] {
	case Data:
		return i < dataCount
	case GlobalParity:
		return true
	case LocalParity:
		gi := c.groupOf[i]
		if gi >= len(c.dataGroups) {
			return true // the parity group's stored local parity (S_impl)
		}
		return c.dataGroups[gi][0] < dataCount
	}
	return false
}

// StoredCount returns how many blocks a stripe with dataCount real data
// blocks stores. For Xorbas with dataCount=10 this is 16; with 3 (the
// Facebook small-file case, Table 3) it is 3+4+1 = 8.
func (c *Code) StoredCount(dataCount int) int {
	n := 0
	for i := 0; i < c.nStored; i++ {
		if c.Exists(i, dataCount) {
			n++
		}
	}
	return n
}

// ReconstructBlock rebuilds the payload of stored block i from a stripe
// with nil entries for missing blocks, preferring the light decoder
// (§3.1.2). It returns the payload, whether the light decoder sufficed,
// and an error if neither decoder can proceed. The input stripe is not
// modified — this is also the degraded-read path, where the rebuilt block
// is served but never written back (§1.1).
func (c *Code) ReconstructBlock(stripe [][]byte, i int) (payload []byte, light bool, err error) {
	if len(stripe) != c.nStored {
		return nil, false, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	if stripe[i] != nil {
		out := append([]byte(nil), stripe[i]...)
		return out, true, nil
	}
	if r := c.recipeCache[i]; r != nil {
		size := -1
		ok := true
		for _, j := range r.reads {
			if stripe[j] == nil {
				ok = false
				break
			}
			size = len(stripe[j])
		}
		if ok && size > 0 {
			out := make([]byte, size)
			for jj, j := range r.reads {
				c.f.MulAddSlice(r.coefs[jj], out, stripe[j])
			}
			return out, true, nil
		}
	}
	// Heavy decoder: solve for the data from any independent available set.
	data, err := c.solveData(stripe)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(data[0]))
	for r := 0; r < c.params.K; r++ {
		c.f.MulAddSlice(c.gen.At(r, i), out, data[r])
	}
	return out, false, nil
}

// ReconstructMany rebuilds the payloads of the requested stored blocks in
// one batched pass: light recipes first — iterated to fixpoint, so a
// rebuilt block can unlock another's recipe (two losses chained through
// the implied parity group) — then a single heavy solve shared by every
// remaining position. Repairing m losses costs one plan/decode pass
// through the word-wise XOR and fused table kernels instead of m full
// O(k²) stripe decodes. The input stripe is not modified.
//
// payloads is aligned with positions; a nil entry means that block could
// not be rebuilt. light[i] reports whether the light decoder rebuilt
// payloads[i]. err is non-nil when any position failed, but the
// rebuildable payloads are still returned — the partial progress a
// repair worker persists on an unrecoverable stripe.
func (c *Code) ReconstructMany(stripe [][]byte, positions []int) (payloads [][]byte, light []bool, err error) {
	if len(stripe) != c.nStored {
		return nil, nil, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	size := -1
	for _, s := range stripe {
		if s != nil {
			size = len(s)
			break
		}
	}
	if size <= 0 {
		return nil, nil, fmt.Errorf("lrc: empty stripe")
	}
	dst := make([][]byte, len(positions))
	for oi := range dst {
		dst[oi] = make([]byte, size)
	}
	filled, light, err := c.ReconstructManyInto(stripe, positions, dst)
	if filled == nil {
		return nil, nil, err
	}
	for oi, ok := range filled {
		if !ok {
			dst[oi] = nil
		}
	}
	return dst, light, err
}

// ReconstructManyInto is ReconstructMany decoding into the caller's
// buffers: dst is aligned with positions, each entry sized to the
// stripe's shard length; stale contents are overwritten, never read.
// filled[i] reports whether dst[i] now holds the rebuilt payload (the
// partial-progress signal — buffers cannot be nil'd the way
// ReconstructMany's payloads can). Rebuilt buffers may be read as
// sources for chained light repairs, so dst entries must not alias each
// other or the stripe. The store's repair engine decodes straight into
// reusable framed block slabs through this.
func (c *Code) ReconstructManyInto(stripe [][]byte, positions []int, dst [][]byte) (filled, light []bool, err error) {
	if len(stripe) != c.nStored {
		return nil, nil, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	if len(dst) != len(positions) {
		return nil, nil, fmt.Errorf("lrc: got %d dst buffers, want %d", len(dst), len(positions))
	}
	work := make([][]byte, c.nStored)
	copy(work, stripe)
	filled = make([]bool, len(positions))
	light = make([]bool, len(positions))
	remaining := 0
	for oi, p := range positions {
		if p < 0 || p >= c.nStored {
			return nil, nil, fmt.Errorf("lrc: position %d out of range [0,%d)", p, c.nStored)
		}
		if work[p] != nil {
			if len(dst[oi]) != len(work[p]) {
				return nil, nil, fmt.Errorf("lrc: dst buffer %d has size %d, want %d", oi, len(dst[oi]), len(work[p]))
			}
			copy(dst[oi], work[p])
			filled[oi] = true
			light[oi] = true
		} else {
			remaining++
		}
	}
	// Light fixpoint over the requested positions: rebuilding one block
	// can unlock another's recipe (losses chained through the implied
	// parity group).
	for remaining > 0 {
		progressed := false
		for oi, p := range positions {
			if filled[oi] {
				continue
			}
			r := c.recipeCache[p]
			if r == nil {
				continue
			}
			size := -1
			ready := true
			for _, j := range r.reads {
				if work[j] == nil {
					ready = false
					break
				}
				size = len(work[j])
			}
			if !ready || size <= 0 {
				continue
			}
			if len(dst[oi]) != size {
				return nil, nil, fmt.Errorf("lrc: dst buffer %d has size %d, want %d", oi, len(dst[oi]), size)
			}
			srcs := make([][]byte, len(r.reads))
			for jj, j := range r.reads {
				srcs[jj] = work[j]
			}
			c.f.DotSlices(r.coefs, dst[oi], srcs)
			work[p] = dst[oi]
			filled[oi] = true
			light[oi] = true
			progressed = true
			remaining--
		}
		if !progressed {
			break
		}
	}
	if remaining == 0 {
		return filled, light, nil
	}
	// One shared heavy solve for whatever is left. work already holds the
	// light-pass results, so they count toward the decoder's rank.
	var rest []int
	var restDst [][]byte
	for oi, p := range positions {
		if !filled[oi] {
			rest = append(rest, p)
			restDst = append(restDst, dst[oi])
		}
	}
	if err := c.solveColsInto(work, rest, restDst); err != nil {
		return filled, light, err
	}
	for oi := range positions {
		if !filled[oi] {
			filled[oi] = true
		}
	}
	return filled, light, nil
}

// solveColsInto runs the heavy decoder for the requested positions with
// one fused pass per target: the decode vector d_t[j] =
// Σ_i inv[j,i]·G[i,t] collapses the data solve and the column re-encode
// into a single slice combination over the k chosen survivors, and the
// inverse is cached per survivor pattern. dst entries are overwritten.
func (c *Code) solveColsInto(stripe [][]byte, positions []int, dst [][]byte) error {
	k := c.params.K
	var avail []int
	size := -1
	for i, s := range stripe {
		if s == nil {
			continue
		}
		avail = append(avail, i)
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("lrc: shard size mismatch at %d", i)
		}
	}
	if size <= 0 {
		return fmt.Errorf("lrc: empty stripe")
	}
	for oi := range dst {
		if len(dst[oi]) != size {
			return fmt.Errorf("lrc: dst buffer %d has size %d, want %d", oi, len(dst[oi]), size)
		}
	}
	chosen := c.independentSubset(avail)
	if len(chosen) < k {
		return fmt.Errorf("lrc: unrecoverable: available blocks have rank %d < %d", len(chosen), k)
	}
	cacheable := c.nStored <= 256
	var key colKey
	var inv *matrix.Matrix
	if cacheable {
		key = keyOf(chosen)
		if v, ok := c.invCache.Load(key); ok {
			inv = v.(*matrix.Matrix)
		}
	}
	if inv == nil {
		sub := c.gen.SelectCols(chosen)
		var err error
		inv, err = sub.Inverse()
		if err != nil {
			return fmt.Errorf("lrc: internal: chosen columns singular: %w", err)
		}
		if cacheable {
			c.invCache.Store(key, inv)
		}
	}
	srcs := make([][]byte, k)
	for j, cj := range chosen {
		srcs[j] = stripe[cj]
	}
	coef := make([]gf.Elem, k)
	for oi, t := range positions {
		for j := 0; j < k; j++ {
			if t < k {
				// Systematic data column: G[i,t] = δ_it.
				coef[j] = inv.At(j, t)
				continue
			}
			var acc gf.Elem
			for i := 0; i < k; i++ {
				acc = c.f.Add(acc, c.f.Mul(inv.At(j, i), c.gen.At(i, t)))
			}
			coef[j] = acc
		}
		c.f.DotSlices(coef, dst[oi], srcs)
	}
	return nil
}

// Reconstruct fills every nil entry of the stripe in place, using the
// light decoder where possible, and returns how many blocks each decoder
// rebuilt. Light repairs are applied iteratively: repairing one block can
// unlock light repair of another (e.g. two losses in different groups).
func (c *Code) Reconstruct(stripe [][]byte) (lightCount, heavyCount int, err error) {
	if len(stripe) != c.nStored {
		return 0, 0, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	// Light passes until fixpoint.
	for {
		progressed := false
		for i := 0; i < c.nStored; i++ {
			if stripe[i] != nil {
				continue
			}
			r := c.recipeCache[i]
			if r == nil {
				continue
			}
			ready := true
			for _, j := range r.reads {
				if stripe[j] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			out := make([]byte, len(stripe[r.reads[0]]))
			for jj, j := range r.reads {
				c.f.MulAddSlice(r.coefs[jj], out, stripe[j])
			}
			stripe[i] = out
			lightCount++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	// Heavy pass for anything left.
	var data [][]byte
	for i := 0; i < c.nStored; i++ {
		if stripe[i] != nil {
			continue
		}
		if data == nil {
			data, err = c.solveData(stripe)
			if err != nil {
				return lightCount, heavyCount, err
			}
		}
		out := make([]byte, len(data[0]))
		for r := 0; r < c.params.K; r++ {
			c.f.MulAddSlice(c.gen.At(r, i), out, data[r])
		}
		stripe[i] = out
		heavyCount++
	}
	return lightCount, heavyCount, nil
}

// solveData recovers the K data payloads from any rank-K independent set
// of available blocks (the heavy decoder's linear system, §3.1.2).
func (c *Code) solveData(stripe [][]byte) ([][]byte, error) {
	k := c.params.K
	var avail []int
	size := -1
	for i, s := range stripe {
		if s != nil {
			avail = append(avail, i)
			if size == -1 {
				size = len(s)
			} else if len(s) != size {
				return nil, fmt.Errorf("lrc: shard size mismatch at %d", i)
			}
		}
	}
	if size <= 0 {
		return nil, fmt.Errorf("lrc: empty stripe")
	}
	chosen := c.independentSubset(avail)
	if len(chosen) < k {
		return nil, fmt.Errorf("lrc: unrecoverable: available blocks have rank %d < %d", len(chosen), k)
	}
	sub := c.gen.SelectCols(chosen)
	inv, err := sub.Inverse()
	if err != nil {
		return nil, fmt.Errorf("lrc: internal: chosen columns singular: %w", err)
	}
	data := make([][]byte, k)
	for i := 0; i < k; i++ {
		x := make([]byte, size)
		for j := 0; j < k; j++ {
			c.f.MulAddSlice(inv.At(j, i), x, stripe[chosen[j]])
		}
		data[i] = x
	}
	return data, nil
}

// independentSubset greedily selects up to K available column indices with
// linearly independent generator columns, preferring systematic (data)
// columns so the solve degenerates to a copy when possible.
func (c *Code) independentSubset(avail []int) []int {
	k := c.params.K
	// Order: data columns first, then the rest in index order.
	order := make([]int, 0, len(avail))
	for _, i := range avail {
		if c.kinds[i] == Data {
			order = append(order, i)
		}
	}
	for _, i := range avail {
		if c.kinds[i] != Data {
			order = append(order, i)
		}
	}
	// Incremental Gaussian elimination. byLead[r] is a reduced vector with
	// leading nonzero at position r and zeros before it, so eliminating at
	// position r never reintroduces nonzeros at earlier positions.
	byLead := make([][]gf.Elem, k)
	var chosen []int
	f := c.f
	for _, col := range order {
		if len(chosen) == k {
			break
		}
		v := make([]gf.Elem, k)
		for r := 0; r < k; r++ {
			v[r] = c.gen.At(r, col)
		}
		inserted := false
		for r := 0; r < k; r++ {
			if v[r] == 0 {
				continue
			}
			b := byLead[r]
			if b == nil {
				byLead[r] = v
				inserted = true
				break
			}
			coef := f.Div(v[r], b[r])
			for j := r; j < k; j++ {
				if b[j] != 0 {
					v[j] = f.Add(v[j], f.Mul(coef, b[j]))
				}
			}
		}
		if inserted {
			chosen = append(chosen, col)
		}
	}
	return chosen
}

// Verify recomputes the stripe from its data shards and reports whether
// every stored block is consistent. All NStored entries must be non-nil.
func (c *Code) Verify(stripe [][]byte) (bool, error) {
	if len(stripe) != c.nStored {
		return false, fmt.Errorf("lrc: got %d stripe entries, want %d", len(stripe), c.nStored)
	}
	for i, s := range stripe {
		if s == nil {
			return false, fmt.Errorf("lrc: Verify requires all blocks, %d missing", i)
		}
	}
	enc, err := c.Encode(stripe[:c.params.K])
	if err != nil {
		return false, err
	}
	for i := c.params.K; i < c.nStored; i++ {
		if !bytes.Equal(enc[i], stripe[i]) {
			return false, nil
		}
	}
	return true, nil
}

// UpgradeFromRS converts an existing Reed-Solomon stripe (K data blocks
// followed by the global parities) into an LRC stripe by computing only
// the new local parities — the paper's backwards-compatible incremental
// migration path (§3.1): "Xorbas … can incrementally modify RS encoded
// files into LRCs by adding only local XOR parities."
func (c *Code) UpgradeFromRS(rsStripe [][]byte) ([][]byte, error) {
	if len(rsStripe) != c.NPre() {
		return nil, fmt.Errorf("lrc: got %d RS blocks, want %d", len(rsStripe), c.NPre())
	}
	// The upgrade keeps every RS block in place, which requires the LRC
	// layout (pyramid codes split an RS parity and cannot be reached
	// incrementally).
	for i := c.params.K; i < c.NPre(); i++ {
		if c.kinds[i] != GlobalParity {
			return nil, fmt.Errorf("lrc: layout is not an RS extension; incremental upgrade impossible")
		}
	}
	size := -1
	for i, s := range rsStripe {
		if s == nil {
			return nil, fmt.Errorf("lrc: RS block %d missing", i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, fmt.Errorf("lrc: RS block %d size mismatch", i)
		}
	}
	stripe := make([][]byte, c.nStored)
	copy(stripe, rsStripe)
	for gi, members := range c.dataGroups {
		p := make([]byte, size)
		for mi, dj := range members {
			c.f.MulAddSlice(c.coeffs[gi][mi], p, stripe[dj])
		}
		stripe[c.NPre()+gi] = p
	}
	if c.params.StoreImplied {
		p := make([]byte, size)
		for j := c.params.K; j < c.NPre(); j++ {
			c.f.MulAddSlice(1, p, stripe[j])
		}
		stripe[c.nStored-1] = p
	}
	return stripe, nil
}
