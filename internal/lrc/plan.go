package lrc

import (
	"fmt"

	"repro/internal/gf"
)

// Plan describes a single-block repair: which stored blocks are read and
// whether the light decoder suffices. Plans drive the cluster simulator's
// traffic accounting; payload-level decoding lives in codec.go.
type Plan struct {
	// Reads lists the stored block indices the repair streams in.
	Reads []int
	// Light is true when the 5-block local decoder is used (§3.1.2).
	Light bool
}

// PlanRepair computes the read set to repair stored block lost.
//
// exists[i] marks blocks physically stored in this stripe (false for
// zero-padding positions of short stripes); avail[i] marks existing blocks
// currently readable. deployed selects the read-set policy for the heavy
// decoder: the deployed HDFS implementation opens streams to all available
// blocks of the stripe (§3.1.2), while the minimal policy reads just a
// rank-sufficient subset.
func (c *Code) PlanRepair(lost int, exists, avail []bool, deployed bool) (Plan, error) {
	if len(exists) != c.nStored || len(avail) != c.nStored {
		return Plan{}, fmt.Errorf("lrc: masks must have %d entries", c.nStored)
	}
	if lost < 0 || lost >= c.nStored || !exists[lost] {
		return Plan{}, fmt.Errorf("lrc: block %d does not exist in this stripe", lost)
	}
	// Light decoder: every existing block in the recipe must be available.
	if r := c.recipeCache[lost]; r != nil {
		light := true
		var reads []int
		for _, j := range r.reads {
			if !exists[j] {
				continue // zero padding: known, not read
			}
			if !avail[j] {
				light = false
				break
			}
			reads = append(reads, j)
		}
		if light {
			return Plan{Reads: reads, Light: true}, nil
		}
	}
	// Heavy decoder.
	var pool []int
	for i := 0; i < c.nStored; i++ {
		if i != lost && exists[i] && avail[i] {
			pool = append(pool, i)
		}
	}
	if !c.heavySolvable(pool, exists) {
		return Plan{}, fmt.Errorf("lrc: block %d unrecoverable: surviving blocks have insufficient rank", lost)
	}
	if deployed {
		return Plan{Reads: pool, Light: false}, nil
	}
	return Plan{Reads: c.minimalHeavySet(pool, exists), Light: false}, nil
}

// dataRows returns the data positions that are real (non-padding) in a
// stripe described by exists.
func (c *Code) dataRows(exists []bool) []int {
	var rows []int
	for i := 0; i < c.params.K; i++ {
		if exists[i] {
			rows = append(rows, i)
		}
	}
	return rows
}

// heavySolvable reports whether the blocks in pool determine every real
// data block: the generator columns of pool, restricted to the real data
// rows, must have rank equal to the number of real data rows.
func (c *Code) heavySolvable(pool []int, exists []bool) bool {
	rows := c.dataRows(exists)
	return len(c.independentOnRows(pool, rows)) == len(rows)
}

// minimalHeavySet returns a smallest-rank-sufficient subset of pool,
// preferring data columns (they are free copies).
func (c *Code) minimalHeavySet(pool []int, exists []bool) []int {
	rows := c.dataRows(exists)
	return c.independentOnRows(pool, rows)
}

// independentOnRows greedily selects columns from pool whose restriction
// to the given generator rows is linearly independent, up to len(rows)
// columns, preferring data columns.
func (c *Code) independentOnRows(pool, rows []int) []int {
	order := make([]int, 0, len(pool))
	for _, i := range pool {
		if c.kinds[i] == Data {
			order = append(order, i)
		}
	}
	for _, i := range pool {
		if c.kinds[i] != Data {
			order = append(order, i)
		}
	}
	nr := len(rows)
	byLead := make([][]gf.Elem, nr)
	var chosen []int
	f := c.f
	for _, col := range order {
		if len(chosen) == nr {
			break
		}
		v := make([]gf.Elem, nr)
		for ri, r := range rows {
			v[ri] = c.gen.At(r, col)
		}
		inserted := false
		for r := 0; r < nr; r++ {
			if v[r] == 0 {
				continue
			}
			b := byLead[r]
			if b == nil {
				byLead[r] = v
				inserted = true
				break
			}
			coef := f.Div(v[r], b[r])
			for j := r; j < nr; j++ {
				if b[j] != 0 {
					v[j] = f.Add(v[j], f.Mul(coef, b[j]))
				}
			}
		}
		if inserted {
			chosen = append(chosen, col)
		}
	}
	return chosen
}

// ExpectedRepairReads computes, by exhaustive enumeration over all
// erasure patterns of the given size, the expected number of blocks read
// to repair one lost block of a full stripe, under the deployed read-set
// policy. It also returns the fraction of patterns where the light
// decoder handles the designated repair. This feeds the Markov model's
// per-state repair rates (§4: "we determine the probabilities for
// invoking light or heavy decoder and thus compute the expected number of
// blocks to be downloaded").
func (c *Code) ExpectedRepairReads(erasures int) (avgReads float64, lightFraction float64) {
	n := c.nStored
	exists := make([]bool, n)
	for i := range exists {
		exists[i] = true
	}
	var totReads, totLight, patterns float64
	idx := make([]int, erasures)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == erasures {
			avail := make([]bool, n)
			for i := range avail {
				avail[i] = true
			}
			for _, i := range idx {
				avail[i] = false
			}
			// Repair the first lost block (states advance one repair at a
			// time in the Markov chain).
			for _, lost := range idx {
				plan, err := c.PlanRepair(lost, exists, avail, true)
				if err != nil {
					continue
				}
				patterns++
				totReads += float64(len(plan.Reads))
				if plan.Light {
					totLight++
				}
				break
			}
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if patterns == 0 {
		return 0, 0
	}
	return totReads / patterns, totLight / patterns
}
