// Package workload generates the inputs of the paper's evaluation: the
// production failure trace of Fig. 1, the EC2 experiment file loads and
// failure-event schedule (§5.2), the Facebook test-cluster file-size
// distribution (§5.3), and the WordCount jobs of the repair-under-
// workload experiment (§5.2.4, Fig. 7, Table 2).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// TraceConfig parameterizes the Fig. 1 failure-trace generator. The paper
// reports "typically 20 or more node failures per day" on a 3000-node
// cluster, with weekly periodicity and occasional bursts near 100.
type TraceConfig struct {
	Days  int
	Nodes int
	// MeanFailuresPerDay is the weekday baseline (~21 in the trace).
	MeanFailuresPerDay float64
	// WeekendFactor scales weekend days (the trace dips on weekends).
	WeekendFactor float64
	// BurstProb is the per-day probability of a correlated failure burst
	// (rack/switch events); BurstMean is its additional expected size.
	BurstProb float64
	BurstMean float64
	Seed      int64
}

// DefaultTrace matches Fig. 1's one-month window on the 3000-node
// production cluster.
func DefaultTrace() TraceConfig {
	return TraceConfig{
		Days: 31, Nodes: 3000,
		MeanFailuresPerDay: 21, WeekendFactor: 0.7,
		BurstProb: 0.06, BurstMean: 70,
		Seed: 1,
	}
}

// FailureTrace returns failures per day. Daily counts are Poisson around
// the (weekday-adjusted) mean plus occasional bursts, clamped to the
// node count.
func FailureTrace(cfg TraceConfig) ([]int, error) {
	if cfg.Days <= 0 || cfg.Nodes <= 0 || cfg.MeanFailuresPerDay <= 0 {
		return nil, fmt.Errorf("workload: invalid trace config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]int, cfg.Days)
	for d := range out {
		mean := cfg.MeanFailuresPerDay
		if wd := d % 7; wd == 5 || wd == 6 {
			mean *= cfg.WeekendFactor
		}
		n := poisson(rng, mean)
		if cfg.BurstProb > 0 && rng.Float64() < cfg.BurstProb {
			n += poisson(rng, cfg.BurstMean)
		}
		if n > cfg.Nodes {
			n = cfg.Nodes
		}
		out[d] = n
	}
	return out, nil
}

// poisson draws a Poisson variate; Knuth's product method for small
// means, a clamped normal approximation above.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// EC2FailurePattern is the §5.2 failure-event schedule: four single-node
// terminations, two triples, two pairs.
var EC2FailurePattern = []int{1, 1, 1, 1, 3, 3, 2, 2}

// EC2FileBlocks is the per-file data block count of the EC2 experiments:
// 640 MB files at 64 MB blocks — one full 10-block stripe per file.
const EC2FileBlocks = 10

// FacebookFileBlocks draws per-file data block counts from the §5.3 test
// cluster's distribution: roughly 94% of files have 3 blocks and the rest
// 10, averaging 3.4 blocks per file.
func FacebookFileBlocks(rng *rand.Rand, files int) []int {
	out := make([]int, files)
	for i := range out {
		if rng.Float64() < 0.94 {
			out[i] = 3
		} else {
			out[i] = 10
		}
	}
	return out
}
