package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestFailureTraceShape(t *testing.T) {
	cfg := DefaultTrace()
	trace, err := FailureTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 31 {
		t.Fatalf("days %d", len(trace))
	}
	var vals []float64
	peak := 0
	for _, n := range trace {
		if n < 0 || n > cfg.Nodes {
			t.Fatalf("count %d out of range", n)
		}
		if n > peak {
			peak = n
		}
		vals = append(vals, float64(n))
	}
	s := stats.Summarize(vals)
	// Fig 1: typically ≥20 failures/day with bursts near 100.
	if s.Mean < 15 || s.Mean > 40 {
		t.Fatalf("mean %f outside the trace's regime", s.Mean)
	}
	if peak < 50 {
		t.Fatalf("no burst day (peak %d); Fig 1 shows spikes", peak)
	}
}

func TestFailureTraceDeterministic(t *testing.T) {
	a, _ := FailureTrace(DefaultTrace())
	b, _ := FailureTrace(DefaultTrace())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestFailureTraceValidation(t *testing.T) {
	if _, err := FailureTrace(TraceConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, mean := range []float64{0, 3, 21, 80} {
		var sum float64
		n := 4000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.15*mean+0.5 {
			t.Fatalf("poisson(%f) sample mean %f", mean, got)
		}
	}
}

func TestFacebookFileBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := FacebookFileBlocks(rng, 3262)
	small, large := 0, 0
	var total int
	for _, s := range sizes {
		switch s {
		case 3:
			small++
		case 10:
			large++
		default:
			t.Fatalf("unexpected size %d", s)
		}
		total += s
	}
	frac := float64(small) / float64(len(sizes))
	if frac < 0.92 || frac > 0.96 {
		t.Fatalf("small-file fraction %f, want ≈0.94", frac)
	}
	avg := float64(total) / float64(len(sizes))
	if avg < 3.2 || avg > 3.6 {
		t.Fatalf("average blocks/file %f, want ≈3.4 (§5.3)", avg)
	}
}

func TestEC2Pattern(t *testing.T) {
	if len(EC2FailurePattern) != 8 {
		t.Fatal("eight failure events per §5.2")
	}
	sum := 0
	for _, n := range EC2FailurePattern {
		sum += n
	}
	if sum != 14 {
		t.Fatalf("total terminations %d want 14 (4×1+2×3+2×2)", sum)
	}
}

const mb = 1 << 20

func wcFixture(t *testing.T) (*sim.Engine, *hdfs.FS) {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: 15, NodeOutBps: 12 * mb, NodeInBps: 12 * mb, BucketSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := hdfs.New(cl, core.NewXorbas(), hdfs.Config{
		BlockSizeBytes: 64 * mb, SlotsPerNode: 2,
		TaskLaunchSec: 5, FixerScanSec: 1e8,
		DeployedReads: true, DegradedTimeoutSec: 15,
		DecodeCPUSecPerRead: 0.2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, fs
}

func TestWordCountAllBlocksAvailable(t *testing.T) {
	eng, fs := wcFixture(t)
	stripes, err := fs.AddFile("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	var done *WordCount
	wc := SubmitWordCount(fs, "wc", stripes, 2*mb, func(w *WordCount) { done = w })
	eng.RunUntil(1e7)
	if done == nil || !wc.Job.Done() {
		t.Fatal("job did not finish")
	}
	if wc.Degraded != 0 {
		t.Fatalf("%d degraded tasks with all blocks present", wc.Degraded)
	}
	if wc.Job.Total() != 10 {
		t.Fatalf("task count %d want 10 (data blocks only)", wc.Job.Total())
	}
	if wc.Duration() <= 0 {
		t.Fatal("duration not recorded")
	}
}

func TestWordCountDegradedSlower(t *testing.T) {
	run := func(kill bool) (float64, int) {
		eng, fs := wcFixture(t)
		stripes, _ := fs.AddFile("f", 10)
		if kill {
			// Lose two data blocks (different groups → still readable).
			fs.KillNode(stripes[0].Node[0])
			fs.KillNode(stripes[0].Node[7])
		}
		var res *WordCount
		SubmitWordCount(fs, "wc", stripes, 2*mb, func(w *WordCount) { res = w })
		eng.RunUntil(1e7)
		if res == nil {
			t.Fatal("job did not finish")
		}
		return res.Duration(), res.Degraded
	}
	base, d0 := run(false)
	degraded, d1 := run(true)
	if d0 != 0 || d1 == 0 {
		t.Fatalf("degraded counts %d %d", d0, d1)
	}
	if degraded <= base {
		t.Fatalf("degraded run (%f) not slower than baseline (%f)", degraded, base)
	}
}
