package workload

import (
	"repro/internal/hdfs"
)

// WordCount models the §5.2.4 artificial workload: one MapReduce job per
// file, one map task per data block. A task reads its block (degraded
// reads reconstruct missing blocks on the fly) and then burns CPU
// proportional to the block size; Hadoop's FairScheduler — the tracker's
// round-robin — shares slots across the concurrent jobs.
type WordCount struct {
	Name string
	// ProcessBps is the map function's throughput over block bytes
	// (WordCount on an m1.small is CPU-bound).
	ProcessBps float64
	// Job is populated by Submit.
	Job *hdfs.Job
	// Degraded counts tasks that hit the degraded-read path.
	Degraded int
}

// SubmitWordCount builds and submits a WordCount job over the given
// stripes. onDone (optional) fires with the job once all tasks finish.
func SubmitWordCount(fs *hdfs.FS, name string, stripes []*hdfs.Stripe, processBps float64, onDone func(*WordCount)) *WordCount {
	wc := &WordCount{Name: name, ProcessBps: processBps}
	job := &hdfs.Job{Name: name}
	for _, s := range stripes {
		s := s
		for pos := 0; pos < s.DataCount; pos++ {
			pos := pos
			pref := s.Node[pos] // data-local preference; may be dead
			if !fs.Cl.Alive(pref) {
				pref = -1
			}
			job.AddTask(&hdfs.Task{PreferredNode: pref, Run: func(node int, finish func()) {
				fs.ReadBlock(s, pos, node, func(degraded bool) {
					if degraded {
						wc.Degraded++
					}
					cpu := fs.Cfg.BlockSizeBytes / processBps
					fs.Cl.AddCPU(cpu, 1)
					fs.Cl.Eng.Schedule(cpu, finish)
				})
			}})
		}
	}
	job.OnFinish = func(*hdfs.Job) {
		if onDone != nil {
			onDone(wc)
		}
	}
	wc.Job = job
	fs.Tracker.Submit(job)
	return wc
}

// Duration returns the job's completion time in seconds (0 if running).
func (wc *WordCount) Duration() float64 {
	if wc.Job == nil || !wc.Job.Done() {
		return 0
	}
	return wc.Job.FinishedAt - wc.Job.SubmittedAt
}
