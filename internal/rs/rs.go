// Package rs implements systematic (k, n−k) Reed-Solomon codes, the MDS
// precode the paper's LRCs are layered on.
//
// Following Appendix D, the code is defined by the (n−k)×n Vandermonde
// parity-check matrix [H]_{i,j} = α^{(i−1)(j−1)} over GF(2^m). The
// generator G is a basis of the null space of H (so G·Hᵀ = 0) and is then
// systematized by the row transformation A = (G restricted to the data
// columns)⁻¹, exactly as the paper converts G_LRC to systematic form. The
// resulting code is MDS with minimum distance n−k+1: any k of the n coded
// blocks reconstruct the file, and no fewer can (Lemma 1 territory).
//
// A crucial structural property preserved here: the all-ones vector is the
// first row of H, hence Σ_j g_j = 0 over the generator columns. This is
// the "interference alignment" fact that makes the Xorbas implied parity
// S3 = S1 + S2 work with pure XOR coefficients (Theorem 5).
package rs

import (
	"fmt"
	"sync"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// Code is an immutable systematic Reed-Solomon code. Safe for concurrent
// use: encoding and reconstruction do not mutate the Code.
type Code struct {
	f   *gf.Field
	k   int            // data blocks per stripe
	n   int            // total coded blocks per stripe
	gen *matrix.Matrix // k×n systematic generator, first k columns = I
	// parityCols[j-k] is generator column j flattened, so the encode hot
	// loop iterates a slice instead of calling gen.At per coefficient.
	parityCols [][]gf.Elem
	// wide holds the lane-packed encode tables (GF(2^8) only): each set
	// computes up to 8 parity columns in one pass over the data. Built
	// lazily on the first encode so analysis-only constructions stay
	// cheap; sync.Once publishes the tables to concurrent encoders.
	wideOnce sync.Once
	wide     []*gf.WideTables
	// invCache memoizes the decode inverse per surviving-column set:
	// draining a dead node solves the same erasure pattern for thousands
	// of stripes, so the O(k³) inversion happens once per pattern. Keys
	// are 256-bit column bitsets; the distinct patterns seen by a real
	// repair run number in the dozens, so the map never grows large.
	invCache sync.Map // colKey -> *matrix.Matrix
}

// colKey is a bitset over the code's ≤256 column indices.
type colKey [4]uint64

func keyOf(cols []int) colKey {
	var k colKey
	for _, c := range cols {
		k[c>>6] |= 1 << (uint(c) & 63)
	}
	return k
}

// wideTables returns the lane-packed encode tables (nil for fields wider
// than GF(2^8)), building them on first use.
func (c *Code) wideTables() []*gf.WideTables {
	c.wideOnce.Do(func() {
		if c.f.M() != 8 {
			return
		}
		for lo := 0; lo < len(c.parityCols); lo += gf.WideLanes {
			hi := lo + gf.WideLanes
			if hi > len(c.parityCols) {
				hi = len(c.parityCols)
			}
			c.wide = append(c.wide, c.f.NewWideTables(c.parityCols[lo:hi]))
		}
	})
	return c.wide
}

// New constructs the (k, n−k) Reed-Solomon code of Appendix D over the
// field f. Requires 0 < k < n ≤ field size.
func New(f *gf.Field, k, n int) (*Code, error) {
	h, err := matrix.RSParityCheck(f, k, n)
	if err != nil {
		return nil, err
	}
	g := h.NullSpace()
	if g == nil || g.Rows() != k {
		return nil, fmt.Errorf("rs: null space has wrong dimension for k=%d n=%d", k, n)
	}
	// Systematize: A·G with A = (G_{:,1:k})⁻¹, paper Appendix D.
	a, err := g.Sub(0, k, 0, k).Inverse()
	if err != nil {
		return nil, fmt.Errorf("rs: data columns singular: %w", err)
	}
	gen := a.Mul(g)
	c := &Code{f: f, k: k, n: n, gen: gen}
	c.parityCols = make([][]gf.Elem, n-k)
	for j := k; j < n; j++ {
		col := make([]gf.Elem, k)
		for i := 0; i < k; i++ {
			col[i] = gen.At(i, j)
		}
		c.parityCols[j-k] = col
	}
	return c, nil
}

// New256 constructs the code over the default GF(2^8) field, which covers
// all block lengths n ≤ 256 including the paper's RS(10,4) with n=14.
func New256(k, n int) (*Code, error) { return New(gf.MustNew(8), k, n) }

// K returns the number of data blocks per stripe.
func (c *Code) K() int { return c.k }

// N returns the total number of coded blocks per stripe.
func (c *Code) N() int { return c.n }

// ParityShards returns n−k.
func (c *Code) ParityShards() int { return c.n - c.k }

// Field returns the underlying field.
func (c *Code) Field() *gf.Field { return c.f }

// Generator returns a copy of the k×n systematic generator matrix.
func (c *Code) Generator() *matrix.Matrix { return c.gen.Clone() }

// MinDistance returns the MDS distance n−k+1 (Definition 1; d_MDS).
func (c *Code) MinDistance() int { return c.n - c.k + 1 }

// StorageOverhead returns (n−k)/k, e.g. 0.4 for RS(10,4) (Table 1).
func (c *Code) StorageOverhead() float64 { return float64(c.n-c.k) / float64(c.k) }

// checkShards validates a full shard slice: length n, all non-nil shards
// sharing one size, at least one non-nil.
func (c *Code) checkShards(shards [][]byte) (size int, err error) {
	if len(shards) != c.n {
		return 0, fmt.Errorf("rs: got %d shards, want %d", len(shards), c.n)
	}
	size = -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("rs: shard %d has size %d, want %d", i, len(s), size)
		}
	}
	if size <= 0 {
		return 0, fmt.Errorf("rs: no shards present or zero-size shards")
	}
	return size, nil
}

// Encode computes the n−k parity shards for the k data shards and returns
// the full stripe [data… | parity…]. All data shards must be non-nil and
// equal length. The input slices are referenced, not copied.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: got %d data shards, want %d", len(data), c.k)
	}
	size := len(data[0])
	for i, d := range data {
		if d == nil || len(d) != size {
			return nil, fmt.Errorf("rs: data shard %d nil or size mismatch", i)
		}
	}
	stripe := make([][]byte, c.n)
	copy(stripe, data)
	for j := c.k; j < c.n; j++ {
		stripe[j] = make([]byte, size)
	}
	c.encodeInto(data, stripe[c.k:])
	return stripe, nil
}

// EncodeInto computes the n−k parity shards directly into the caller's
// buffers, overwriting them (they may hold stale bytes from a previous
// stripe — the streaming store's reuse path). parity[j] is coded block
// k+j and must have the data shards' length.
func (c *Code) EncodeInto(data, parity [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("rs: got %d data shards, want %d", len(data), c.k)
	}
	size := len(data[0])
	for i, d := range data {
		if d == nil || len(d) != size {
			return fmt.Errorf("rs: data shard %d nil or size mismatch", i)
		}
	}
	if len(parity) != c.n-c.k {
		return fmt.Errorf("rs: got %d parity buffers, want %d", len(parity), c.n-c.k)
	}
	for j, p := range parity {
		if p == nil || len(p) != size {
			return fmt.Errorf("rs: parity buffer %d nil or size mismatch", j)
		}
	}
	c.encodeInto(data, parity)
	return nil
}

// encodeInto fills the parity buffers. GF(2^8) takes the lane-packed wide
// tables (one lookup per data byte for a whole 8-column group); wider
// fields zero and accumulate with the lane kernel.
func (c *Code) encodeInto(data, parity [][]byte) {
	if wide := c.wideTables(); wide != nil {
		lo := 0
		for _, w := range wide {
			w.Dot(parity[lo:lo+w.Lanes()], data)
			lo += w.Lanes()
		}
		return
	}
	for j := range parity {
		p := parity[j]
		for i := range p {
			p[i] = 0
		}
		for i, col := 0, c.parityCols[j]; i < c.k; i++ {
			c.f.MulAddSliceAuto(col[i], p, data[i])
		}
	}
}

// EncodeVector encodes a k-element message vector into the n-element
// codeword y = x·G. Used by the theory-side tests (distance enumeration).
func (c *Code) EncodeVector(x []gf.Elem) []gf.Elem { return c.gen.VecMul(x) }

// decodeInv returns (G restricted to the present columns)⁻¹, cached per
// column set. present must hold exactly k indices. Codes wider than the
// 256-bit key (GF(2^16) archival geometries) bypass the cache.
func (c *Code) decodeInv(present []int) (*matrix.Matrix, error) {
	cacheable := c.n <= 256
	var key colKey
	if cacheable {
		key = keyOf(present)
		if v, ok := c.invCache.Load(key); ok {
			return v.(*matrix.Matrix), nil
		}
	}
	sub := c.gen.SelectCols(present)
	inv, err := sub.Inverse()
	if err != nil {
		return nil, fmt.Errorf("rs: MDS violation, singular submatrix: %w", err)
	}
	if cacheable {
		c.invCache.Store(key, inv)
	}
	return inv, nil
}

// ReconstructCols rebuilds only the requested stripe positions from the
// non-nil shards, which are not modified. Each rebuilt column costs one
// fused pass over k surviving payloads: the per-target decode vector
// d_t[j] = Σ_i inv[j,i]·G[i,t] folds the data solve and the re-encode
// into a single slice combination, instead of materializing all k data
// shards first (O(k²) slice passes) the way Reconstruct does. Positions
// already present are returned as copies. RS decoding is all-or-nothing:
// with fewer than k survivors nothing is recoverable and an error is
// returned with no payloads.
func (c *Code) ReconstructCols(shards [][]byte, positions []int) ([][]byte, error) {
	size, err := c.checkShards(shards)
	if err != nil {
		return nil, err
	}
	dst := make([][]byte, len(positions))
	for oi := range dst {
		dst[oi] = make([]byte, size)
	}
	if err := c.ReconstructColsInto(shards, positions, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// ReconstructColsInto is ReconstructCols decoding into the caller's
// buffers: dst is aligned with positions, each entry sized to the shard
// length; stale contents are overwritten, never read. The store's repair
// engine decodes straight into reusable framed block slabs through this.
func (c *Code) ReconstructColsInto(shards [][]byte, positions []int, dst [][]byte) error {
	size, err := c.checkShards(shards)
	if err != nil {
		return err
	}
	if len(dst) != len(positions) {
		return fmt.Errorf("rs: got %d dst buffers, want %d", len(dst), len(positions))
	}
	var missing []int // indices into positions
	for oi, p := range positions {
		if p < 0 || p >= c.n {
			return fmt.Errorf("rs: position %d out of range [0,%d)", p, c.n)
		}
		if len(dst[oi]) != size {
			return fmt.Errorf("rs: dst buffer %d has size %d, want %d", oi, len(dst[oi]), size)
		}
		if shards[p] != nil {
			copy(dst[oi], shards[p])
		} else {
			missing = append(missing, oi)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var present []int
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return fmt.Errorf("rs: %d shards present, need at least %d", len(present), c.k)
	}
	present = present[:c.k] // MDS: any k columns are independent
	inv, err := c.decodeInv(present)
	if err != nil {
		return err
	}
	srcs := make([][]byte, c.k)
	for j, pj := range present {
		srcs[j] = shards[pj]
	}
	coef := make([]gf.Elem, c.k)
	for _, oi := range missing {
		t := positions[oi]
		for j := 0; j < c.k; j++ {
			if t < c.k {
				// Systematic data column: G[i,t] = δ_it.
				coef[j] = inv.At(j, t)
				continue
			}
			var acc gf.Elem
			for i := 0; i < c.k; i++ {
				acc = c.f.Add(acc, c.f.Mul(inv.At(j, i), c.gen.At(i, t)))
			}
			coef[j] = acc
		}
		if c.f.M() == 8 {
			c.f.DotSlices(coef, dst[oi], srcs)
		} else {
			buf := dst[oi]
			for i := range buf {
				buf[i] = 0
			}
			for j := 0; j < c.k; j++ {
				c.f.MulAddSliceAuto(coef[j], buf, srcs[j])
			}
		}
	}
	return nil
}

// Reconstruct fills in the nil entries of shards in place, given that at
// least k shards are present. It returns the number of shards it rebuilt.
// This is the paper's heavy decoder: solving the Vandermonde-structured
// linear system from any k surviving blocks (§3.1.2).
func (c *Code) Reconstruct(shards [][]byte) (int, error) {
	size, err := c.checkShards(shards)
	if err != nil {
		return 0, err
	}
	var present, missing []int
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return 0, nil
	}
	if len(present) < c.k {
		return 0, fmt.Errorf("rs: %d shards present, need at least %d", len(present), c.k)
	}
	present = present[:c.k] // MDS: any k columns are independent
	inv, err := c.decodeInv(present)
	if err != nil {
		return 0, err
	}
	// x_i = Σ_j inv[j,i]·y_{present[j]}; then y_miss = x·G_miss.
	data := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		// Fast path: if present[i] == i for data shard, x_i is the shard
		// itself only when the selection is exactly the identity prefix;
		// the general solve below is still cheap so we keep one path.
		x := make([]byte, size)
		for j := 0; j < c.k; j++ {
			c.f.MulAddSliceAuto(inv.At(j, i), x, shards[present[j]])
		}
		data[i] = x
	}
	rebuilt := 0
	for _, mi := range missing {
		out := make([]byte, size)
		if mi < c.k {
			copy(out, data[mi])
		} else {
			for i := 0; i < c.k; i++ {
				c.f.MulAddSliceAuto(c.gen.At(i, mi), out, data[i])
			}
		}
		shards[mi] = out
		rebuilt++
	}
	return rebuilt, nil
}

// Verify recomputes parity from the data shards and reports whether every
// shard is consistent with the code. All shards must be present.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if _, err := c.checkShards(shards); err != nil {
		return false, err
	}
	for _, s := range shards {
		if s == nil {
			return false, fmt.Errorf("rs: Verify requires all shards present")
		}
	}
	enc, err := c.Encode(shards[:c.k])
	if err != nil {
		return false, err
	}
	for j := c.k; j < c.n; j++ {
		for b := range enc[j] {
			if enc[j][b] != shards[j][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// ColumnSum returns Σ_j g_j over all generator columns. For the Appendix D
// construction this is the zero vector because the all-ones row of H is
// orthogonal to G — the alignment property behind the implied parity.
func (c *Code) ColumnSum() []gf.Elem {
	sum := make([]gf.Elem, c.k)
	for j := 0; j < c.n; j++ {
		for i := 0; i < c.k; i++ {
			sum[i] = c.f.Add(sum[i], c.gen.At(i, j))
		}
	}
	return sum
}
