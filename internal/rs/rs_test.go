package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
	"repro/internal/matrix"
)

func mustCode(t testing.TB, k, n int) *Code {
	t.Helper()
	c, err := New256(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randShards(r *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	return data
}

func TestNewParameterValidation(t *testing.T) {
	if _, err := New256(0, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New256(10, 10); err == nil {
		t.Error("n=k accepted")
	}
	if _, err := New256(10, 300); err == nil {
		t.Error("n > field size accepted")
	}
}

func TestSystematicGenerator(t *testing.T) {
	c := mustCode(t, 10, 14)
	g := c.Generator()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := gf.Elem(0)
			if i == j {
				want = 1
			}
			if g.At(i, j) != want {
				t.Fatalf("generator not systematic at (%d,%d)", i, j)
			}
		}
	}
}

func TestGeneratorOrthogonalToParityCheck(t *testing.T) {
	c := mustCode(t, 10, 14)
	h, _ := matrix.RSParityCheck(c.Field(), 10, 14)
	if !c.Generator().Mul(h.Transpose()).IsZero() {
		t.Fatal("G·Hᵀ != 0")
	}
}

// The alignment property: Σ g_j = 0 (all-ones in row space of H). This is
// what Theorem 5's implied parity rests on.
func TestColumnSumZero(t *testing.T) {
	for _, p := range [][2]int{{10, 14}, {5, 8}, {50, 60}, {100, 114}} {
		c := mustCode(t, p[0], p[1])
		for i, v := range c.ColumnSum() {
			if v != 0 {
				t.Fatalf("(%d,%d): column sum nonzero at row %d", p[0], p[1], i)
			}
		}
	}
}

func TestEncodeReconstructAllSinglePatterns(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(1))
	stripe, err := c.Encode(randShards(r, 10, 128))
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < 14; lost++ {
		work := make([][]byte, 14)
		copy(work, stripe)
		work[lost] = nil
		n, err := c.Reconstruct(work)
		if err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if n != 1 {
			t.Fatalf("lost=%d: rebuilt %d", lost, n)
		}
		if !bytes.Equal(work[lost], stripe[lost]) {
			t.Fatalf("lost=%d: wrong reconstruction", lost)
		}
	}
}

// MDS property: any 4 erasures are recoverable, enumerated exhaustively
// (C(14,4) = 1001 patterns).
func TestMDSAllFourErasurePatterns(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(2))
	stripe, _ := c.Encode(randShards(r, 10, 32))
	idx := [4]int{}
	count := 0
	for idx[0] = 0; idx[0] < 14; idx[0]++ {
		for idx[1] = idx[0] + 1; idx[1] < 14; idx[1]++ {
			for idx[2] = idx[1] + 1; idx[2] < 14; idx[2]++ {
				for idx[3] = idx[2] + 1; idx[3] < 14; idx[3]++ {
					work := make([][]byte, 14)
					copy(work, stripe)
					for _, i := range idx {
						work[i] = nil
					}
					if _, err := c.Reconstruct(work); err != nil {
						t.Fatalf("pattern %v: %v", idx, err)
					}
					for _, i := range idx {
						if !bytes.Equal(work[i], stripe[i]) {
							t.Fatalf("pattern %v: shard %d wrong", idx, i)
						}
					}
					count++
				}
			}
		}
	}
	if count != 1001 {
		t.Fatalf("enumerated %d patterns, want 1001", count)
	}
}

func TestFiveErasuresFail(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(3))
	stripe, _ := c.Encode(randShards(r, 10, 16))
	for i := 0; i < 5; i++ {
		stripe[i] = nil
	}
	if _, err := c.Reconstruct(stripe); err == nil {
		t.Fatal("5 erasures should exceed d-1=4 for any k... (needs k=10 present)")
	}
}

func TestVerify(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(4))
	stripe, _ := c.Encode(randShards(r, 10, 64))
	ok, err := c.Verify(stripe)
	if err != nil || !ok {
		t.Fatalf("fresh stripe failed Verify: %v %v", ok, err)
	}
	stripe[12][5] ^= 1
	ok, err = c.Verify(stripe)
	if err != nil || ok {
		t.Fatal("corrupted parity passed Verify")
	}
	stripe[12] = nil
	if _, err := c.Verify(stripe); err == nil {
		t.Fatal("Verify with missing shard should error")
	}
}

func TestEncodeInputValidation(t *testing.T) {
	c := mustCode(t, 4, 6)
	if _, err := c.Encode(make([][]byte, 3)); err == nil {
		t.Error("wrong shard count accepted")
	}
	bad := [][]byte{{1}, {2, 3}, {4}, {5}}
	if _, err := c.Encode(bad); err == nil {
		t.Error("ragged shards accepted")
	}
	if _, err := c.Encode([][]byte{{1}, nil, {3}, {4}}); err == nil {
		t.Error("nil data shard accepted")
	}
}

func TestReconstructValidation(t *testing.T) {
	c := mustCode(t, 4, 6)
	if _, err := c.Reconstruct(make([][]byte, 5)); err == nil {
		t.Error("wrong shard count accepted")
	}
	all := make([][]byte, 6)
	if _, err := c.Reconstruct(all); err == nil {
		t.Error("all-nil accepted")
	}
	ragged := [][]byte{{1}, {2, 2}, nil, nil, nil, nil}
	if _, err := c.Reconstruct(ragged); err == nil {
		t.Error("ragged accepted")
	}
}

func TestReconstructNoMissing(t *testing.T) {
	c := mustCode(t, 4, 6)
	r := rand.New(rand.NewSource(5))
	stripe, _ := c.Encode(randShards(r, 4, 8))
	n, err := c.Reconstruct(stripe)
	if err != nil || n != 0 {
		t.Fatalf("rebuilt %d err %v", n, err)
	}
}

// Property: encode → erase ≤ n−k random shards → reconstruct round-trips,
// across random (k, n) geometries.
func TestPropertyEncodeEraseReconstruct(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(10)
		n := k + 1 + r.Intn(6)
		c, err := New256(k, n)
		if err != nil {
			return false
		}
		stripe, err := c.Encode(randShards(r, k, 1+r.Intn(64)))
		if err != nil {
			return false
		}
		orig := make([][]byte, n)
		for i := range stripe {
			orig[i] = append([]byte(nil), stripe[i]...)
		}
		e := 1 + r.Intn(n-k)
		for _, i := range r.Perm(n)[:e] {
			stripe[i] = nil
		}
		if _, err := c.Reconstruct(stripe); err != nil {
			return false
		}
		for i := range stripe {
			if !bytes.Equal(stripe[i], orig[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Exact minimum distance by exhaustive erasure enumeration for a small
// code: (4,3)-RS over GF(2^8) must have d = 4.
func TestExactMinimumDistanceSmallCode(t *testing.T) {
	c := mustCode(t, 4, 7)
	g := c.Generator()
	// d = n - max{|S| : rank(G_S) < k}; equivalently the code can tolerate
	// any d-1 erasures. Check rank of every (n - e)-column subset.
	n, k := 7, 4
	for e := 1; e <= n-k; e++ {
		// every erasure pattern of size e must leave rank k
		var rec func(start int, chosen []int)
		ok := true
		var check func([]int)
		check = func(erased []int) {
			er := map[int]bool{}
			for _, i := range erased {
				er[i] = true
			}
			var keep []int
			for j := 0; j < n; j++ {
				if !er[j] {
					keep = append(keep, j)
				}
			}
			if g.SelectCols(keep).Rank() != k {
				ok = false
			}
		}
		rec = func(start int, chosen []int) {
			if len(chosen) == e {
				check(chosen)
				return
			}
			for i := start; i < n; i++ {
				rec(i+1, append(chosen, i))
			}
		}
		rec(0, nil)
		if !ok {
			t.Fatalf("some %d-erasure pattern not recoverable; d < %d", e, e+1)
		}
	}
}

func TestStorageOverheadAndDistance(t *testing.T) {
	c := mustCode(t, 10, 14)
	if c.MinDistance() != 5 {
		t.Fatalf("d=%d want 5", c.MinDistance())
	}
	if got := c.StorageOverhead(); got != 0.4 {
		t.Fatalf("overhead=%f want 0.4", got)
	}
	if c.ParityShards() != 4 || c.K() != 10 || c.N() != 14 {
		t.Fatal("accessors wrong")
	}
}

func BenchmarkEncodeRS10_4(b *testing.B) {
	c := mustCode(b, 10, 14)
	r := rand.New(rand.NewSource(1))
	data := randShards(r, 10, 1<<16)
	b.SetBytes(10 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructOneOfFourteen(b *testing.B) {
	c := mustCode(b, 10, 14)
	r := rand.New(rand.NewSource(1))
	stripe, _ := c.Encode(randShards(r, 10, 1<<16))
	b.SetBytes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, 14)
		copy(work, stripe)
		work[3] = nil
		if _, err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

// A blocklength beyond GF(2^8)'s 256 ceiling: RS(280, 20) over GF(2^16)
// — the §7 archival regime at full width — encodes and repairs.
func TestLargeBlocklengthGF16(t *testing.T) {
	f := gf.MustNew(16)
	c, err := New(f, 280, 300)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinDistance() != 21 {
		t.Fatalf("distance %d want 21", c.MinDistance())
	}
	r := rand.New(rand.NewSource(77))
	data := make([][]byte, 280)
	for i := range data {
		data[i] = make([]byte, 64) // even length: uint16 lanes
		r.Read(data[i])
	}
	stripe, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, len(stripe))
	for i := range stripe {
		orig[i] = append([]byte(nil), stripe[i]...)
	}
	for _, i := range []int{0, 5, 120, 279, 285, 299} {
		stripe[i] = nil
	}
	if _, err := c.Reconstruct(stripe); err != nil {
		t.Fatal(err)
	}
	for i := range stripe {
		if !bytes.Equal(stripe[i], orig[i]) {
			t.Fatalf("shard %d wrong after GF(2^16) reconstruction", i)
		}
	}
}

// TestReconstructCols checks the fused column decoder against the full
// Reconstruct reference over every ≤4-erasure pattern touching the
// requested positions, including parity-only requests (which must not
// decode the data shards at all to be correct).
func TestReconstructCols(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(41))
	data := randShards(r, 10, 96)
	full, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]int{
		{0}, {9}, {10}, {13}, {0, 13}, {3, 7, 11}, {10, 11, 12, 13}, {0, 1, 2, 3},
	}
	for _, lost := range patterns {
		work := make([][]byte, len(full))
		copy(work, full)
		for _, i := range lost {
			work[i] = nil
		}
		got, err := c.ReconstructCols(work, lost)
		if err != nil {
			t.Fatalf("ReconstructCols(%v): %v", lost, err)
		}
		for oi, i := range lost {
			if !bytes.Equal(got[oi], full[i]) {
				t.Fatalf("ReconstructCols(%v): position %d mismatch", lost, i)
			}
		}
		for i, s := range work {
			if s != nil && !bytes.Equal(s, full[i]) {
				t.Fatalf("ReconstructCols(%v) mutated shard %d", lost, i)
			}
		}
	}
	// Requesting a present position returns a copy.
	got, err := c.ReconstructCols(full, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], full[5]) {
		t.Fatal("present position mismatch")
	}
	got[0][0] ^= 0xFF
	if got[0][0] == full[5][0] {
		t.Fatal("present position aliases the stripe")
	}
}

// TestReconstructColsUnrecoverable: below rank k nothing is returned.
func TestReconstructColsUnrecoverable(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(42))
	full, err := c.Encode(randShards(r, 10, 32))
	if err != nil {
		t.Fatal(err)
	}
	work := make([][]byte, len(full))
	copy(work, full)
	lost := []int{0, 1, 2, 3, 4}
	for _, i := range lost {
		work[i] = nil
	}
	if _, err := c.ReconstructCols(work, lost); err == nil {
		t.Fatal("want error for 5 erasures on RS(10,4)")
	}
}

// TestReconstructColsCached: repeated decodes of one erasure pattern
// (the steady-state node-repair shape) reuse the cached inverse and stay
// correct.
func TestReconstructColsCached(t *testing.T) {
	c := mustCode(t, 10, 14)
	r := rand.New(rand.NewSource(43))
	for round := 0; round < 3; round++ {
		full, err := c.Encode(randShards(r, 10, 48))
		if err != nil {
			t.Fatal(err)
		}
		work := make([][]byte, len(full))
		copy(work, full)
		work[2] = nil
		got, err := c.ReconstructCols(work, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[0], full[2]) {
			t.Fatalf("round %d: cached decode mismatch", round)
		}
	}
}
