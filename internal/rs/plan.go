package rs

import (
	"fmt"

	"repro/internal/gf"
)

// Plan describes a single-block repair read set for the RS code. RS has no
// local structure, so every repair is a "heavy" decode; the deployed
// HDFS-RS BlockFixer opens streams to all other blocks of the stripe
// (13 for RS(10,4)), while a minimal implementation reads k (§3.1.2:
// "which could be reduced to 10 with a more efficient implementation").
type Plan struct {
	Reads []int
}

// PlanRepair computes the read set to repair stored block lost. exists
// marks blocks physically stored (false for zero-padding positions of
// short stripes), avail marks readable blocks, and deployed selects the
// all-streams read set versus the minimal rank-sufficient one.
func (c *Code) PlanRepair(lost int, exists, avail []bool, deployed bool) (Plan, error) {
	if len(exists) != c.n || len(avail) != c.n {
		return Plan{}, fmt.Errorf("rs: masks must have %d entries", c.n)
	}
	if lost < 0 || lost >= c.n || !exists[lost] {
		return Plan{}, fmt.Errorf("rs: block %d does not exist in this stripe", lost)
	}
	var pool []int
	for i := 0; i < c.n; i++ {
		if i != lost && exists[i] && avail[i] {
			pool = append(pool, i)
		}
	}
	var rows []int
	for i := 0; i < c.k; i++ {
		if exists[i] {
			rows = append(rows, i)
		}
	}
	chosen := c.independentOnRows(pool, rows)
	if len(chosen) < len(rows) {
		return Plan{}, fmt.Errorf("rs: block %d unrecoverable: rank %d < %d", lost, len(chosen), len(rows))
	}
	if deployed {
		return Plan{Reads: pool}, nil
	}
	return Plan{Reads: chosen}, nil
}

// independentOnRows greedily selects columns from pool whose restriction
// to the given generator rows is linearly independent, preferring data
// columns.
func (c *Code) independentOnRows(pool, rows []int) []int {
	order := make([]int, 0, len(pool))
	for _, i := range pool {
		if i < c.k {
			order = append(order, i)
		}
	}
	for _, i := range pool {
		if i >= c.k {
			order = append(order, i)
		}
	}
	nr := len(rows)
	byLead := make([][]gf.Elem, nr)
	var chosen []int
	f := c.f
	for _, col := range order {
		if len(chosen) == nr {
			break
		}
		v := make([]gf.Elem, nr)
		for ri, r := range rows {
			v[ri] = c.gen.At(r, col)
		}
		inserted := false
		for r := 0; r < nr; r++ {
			if v[r] == 0 {
				continue
			}
			b := byLead[r]
			if b == nil {
				byLead[r] = v
				inserted = true
				break
			}
			coef := f.Div(v[r], b[r])
			for j := r; j < nr; j++ {
				if b[j] != 0 {
					v[j] = f.Add(v[j], f.Mul(coef, b[j]))
				}
			}
		}
		if inserted {
			chosen = append(chosen, col)
		}
	}
	return chosen
}

// ExpectedRepairReads enumerates all erasure patterns of the given size on
// a full stripe and returns the expected deployed read count for the next
// single-block repair. Feeds the Markov model's repair rates.
func (c *Code) ExpectedRepairReads(erasures int) float64 {
	exists := make([]bool, c.n)
	for i := range exists {
		exists[i] = true
	}
	var tot, patterns float64
	idx := make([]int, erasures)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == erasures {
			avail := make([]bool, c.n)
			for i := range avail {
				avail[i] = true
			}
			for _, i := range idx {
				avail[i] = false
			}
			plan, err := c.PlanRepair(idx[0], exists, avail, true)
			if err == nil {
				patterns++
				tot += float64(len(plan.Reads))
			}
			return
		}
		for i := start; i < c.n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if patterns == 0 {
		return 0
	}
	return tot / patterns
}
