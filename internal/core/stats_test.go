package core

import (
	"math"
	"testing"
)

func TestRepairStatsSingleErasure(t *testing.T) {
	// LRC: every single failure is light with exactly 5 reads; one lost
	// block can't parallelize beyond 1.
	st := RepairStats(NewXorbas(), 1)
	if st.AvgReads != 5 || st.LightFraction != 1 || st.AvgParallel != 1 {
		t.Fatalf("LRC single: %+v", st)
	}
	// RS: deployed reads all 13 others.
	st = RepairStats(NewRS104(), 1)
	if st.AvgReads != 13 || st.LightFraction != 0 || st.AvgParallel != 1 {
		t.Fatalf("RS single: %+v", st)
	}
	// Replication reads one copy.
	rep, _ := NewReplication(3)
	st = RepairStats(rep, 1)
	if st.AvgReads != 1 || st.LightFraction != 1 {
		t.Fatalf("rep single: %+v", st)
	}
}

func TestRepairStatsTwoErasures(t *testing.T) {
	// LRC at 2 erasures: light-first selection keeps the expected reads
	// at exactly 5 whenever at least one loss is lightly repairable,
	// which is every pattern except both-in-one-group where the cheapest
	// is heavy.
	st := RepairStats(NewXorbas(), 2)
	if st.AvgReads < 5 || st.AvgReads > 9 {
		t.Fatalf("LRC avg reads at 2 erasures: %f", st.AvgReads)
	}
	if st.LightFraction <= 0.6 {
		t.Fatalf("LRC light fraction at 2 erasures: %f", st.LightFraction)
	}
	// Parallelism: two losses in different groups repair concurrently
	// (disjoint read sets); expect the average strictly above 1.
	if st.AvgParallel <= 1 || st.AvgParallel > 2 {
		t.Fatalf("LRC parallel at 2 erasures: %f", st.AvgParallel)
	}
	// RS repairs always contend for the same sources: parallel stays 1.
	st = RepairStats(NewRS104(), 2)
	if st.AvgParallel != 1 {
		t.Fatalf("RS parallel at 2 erasures: %f", st.AvgParallel)
	}
	if st.AvgReads != 12 {
		t.Fatalf("RS deployed reads at 2 erasures: %f want 12", st.AvgReads)
	}
}

func TestRepairStatsBeyondTolerance(t *testing.T) {
	rep, _ := NewReplication(3)
	st := RepairStats(rep, 3)
	if st.AvgReads != 0 {
		t.Fatalf("all-copies-lost should yield zero stats, got %+v", st)
	}
}

// The exact two-erasure light fraction for Xorbas is computable by hand:
// the cheapest repair is heavy only when both losses land in one data
// group with... enumerate independently here as a cross-check.
func TestRepairStatsLightFractionExact(t *testing.T) {
	s := NewXorbas()
	st := RepairStats(s, 2)
	// Independent enumeration: count patterns where ANY lost block has a
	// light plan.
	n := 16
	total, light := 0, 0
	exists := make([]bool, n)
	for i := range exists {
		exists[i] = true
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			avail := make([]bool, n)
			for i := range avail {
				avail[i] = true
			}
			avail[a], avail[b] = false, false
			anyLight := false
			for _, lost := range []int{a, b} {
				if _, isLight, err := s.PlanRepair(lost, exists, avail, true); err == nil && isLight {
					anyLight = true
				}
			}
			total++
			if anyLight {
				light++
			}
		}
	}
	want := float64(light) / float64(total)
	if math.Abs(st.LightFraction-want) > 1e-12 {
		t.Fatalf("light fraction %f, independent count %f", st.LightFraction, want)
	}
}
