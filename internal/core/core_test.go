package core

import (
	"testing"
)

func full(n int, v bool) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = v
	}
	return m
}

// Table 1's storage-overhead and repair-traffic columns fall straight out
// of the Scheme interface.
func TestTable1StaticColumns(t *testing.T) {
	rep, err := NewReplication(3)
	if err != nil {
		t.Fatal(err)
	}
	rsS := NewRS104()
	xor := NewXorbas()

	if got := rep.StorageOverhead(); got != 2.0 {
		t.Errorf("replication overhead %f want 2.0", got)
	}
	if got := rsS.StorageOverhead(); got != 0.4 {
		t.Errorf("RS overhead %f want 0.4", got)
	}
	if got := xor.StorageOverhead(); got != 0.6 {
		t.Errorf("LRC overhead %f want 0.6", got)
	}

	// Repair traffic (single failure, minimal reads): 1x, 10x, 5x.
	repReads, _ := rep.ExpectedRepairReads(1)
	if repReads != 1 {
		t.Errorf("replication repair reads %f want 1", repReads)
	}
	avail := full(14, true)
	avail[0] = false
	reads, _, err := rsS.PlanRepair(0, full(14, true), avail, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 10 {
		t.Errorf("RS minimal repair reads %d want 10", len(reads))
	}
	lrcReads, lightFrac := xor.ExpectedRepairReads(1)
	if lrcReads != 5 || lightFrac != 1 {
		t.Errorf("LRC repair reads %f (light %f) want 5 (1)", lrcReads, lightFrac)
	}
}

func TestFailureTolerance(t *testing.T) {
	rep, _ := NewReplication(3)
	if rep.FailuresTolerated() != 2 {
		t.Error("replication should tolerate 2")
	}
	if NewRS104().FailuresTolerated() != 4 {
		t.Error("RS(10,4) should tolerate 4")
	}
	if NewXorbas().FailuresTolerated() != 4 {
		t.Error("LRC(10,6,5) should tolerate 4 (d=5)")
	}
}

func TestReplicationPlanRepair(t *testing.T) {
	rep, _ := NewReplication(3)
	avail := []bool{false, true, true}
	reads, light, err := rep.PlanRepair(0, full(3, true), avail, true)
	if err != nil || !light || len(reads) != 1 {
		t.Fatalf("reads=%v light=%v err=%v", reads, light, err)
	}
	if _, _, err := rep.PlanRepair(0, full(3, true), full(3, false), true); err == nil {
		t.Fatal("all copies lost should error")
	}
	if _, _, err := rep.PlanRepair(5, full(3, true), avail, true); err == nil {
		t.Fatal("bad index should error")
	}
	if _, _, err := rep.PlanRepair(0, full(2, true), avail, true); err == nil {
		t.Fatal("bad mask length should error")
	}
}

func TestNewReplicationValidation(t *testing.T) {
	if _, err := NewReplication(1); err == nil {
		t.Fatal("factor 1 accepted")
	}
}

func TestRSSchemeDeployedReads13(t *testing.T) {
	s := NewRS104()
	avail := full(14, true)
	avail[3] = false
	reads, light, err := s.PlanRepair(3, full(14, true), avail, true)
	if err != nil {
		t.Fatal(err)
	}
	if light {
		t.Fatal("RS has no light decoder")
	}
	if len(reads) != 13 {
		t.Fatalf("deployed RS repair reads %d want 13 (§3.1.2)", len(reads))
	}
}

func TestRSSchemeSmallFileExists(t *testing.T) {
	s := NewRS104()
	// A 3-block file: 3 data + 4 parity stored.
	if got := s.StoredCount(3); got != 7 {
		t.Fatalf("StoredCount(3) = %d want 7", got)
	}
	if s.Exists(5, 3) {
		t.Fatal("padding position should not exist")
	}
	if !s.Exists(12, 3) {
		t.Fatal("parity should exist")
	}
	if s.Exists(-1, 3) || s.Exists(14, 3) {
		t.Fatal("out-of-range exists")
	}
	// Repairing a data block of a 3-block stripe reads 3 blocks (3 real
	// data unknowns), not 10 — the Table 3 effect.
	exists := make([]bool, 14)
	for i := range exists {
		exists[i] = s.Exists(i, 3)
	}
	avail := append([]bool(nil), exists...)
	avail[1] = false
	reads, _, err := s.PlanRepair(1, exists, avail, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 3 {
		t.Fatalf("minimal small-stripe repair reads %d want 3", len(reads))
	}
}

func TestLRCSchemeNamesAndSlots(t *testing.T) {
	x := NewXorbas()
	if x.Name() != "LRC (10, 6, 5)" {
		t.Errorf("name %q", x.Name())
	}
	if x.Slots() != 16 || x.DataBlocks() != 10 {
		t.Error("slots/datablocks wrong")
	}
	rep, _ := NewReplication(3)
	if rep.Name() != "3-replication" || rep.Slots() != 3 || rep.DataBlocks() != 1 {
		t.Error("replication accessors wrong")
	}
	s := NewRS104()
	if s.Name() != "RS (10, 4)" || s.Slots() != 14 {
		t.Error("rs accessors wrong")
	}
}

func TestSchemeInterfaceCompliance(t *testing.T) {
	var schemes []Scheme
	rep, _ := NewReplication(3)
	schemes = append(schemes, rep, NewRS104(), NewXorbas())
	for _, s := range schemes {
		if s.StoredCount(s.DataBlocks()) != s.Slots() {
			t.Errorf("%s: full stripe StoredCount %d != Slots %d", s.Name(), s.StoredCount(s.DataBlocks()), s.Slots())
		}
		exists := make([]bool, s.Slots())
		n := 0
		for i := range exists {
			exists[i] = s.Exists(i, s.DataBlocks())
			if exists[i] {
				n++
			}
		}
		if n != s.Slots() {
			t.Errorf("%s: Exists disagrees with Slots", s.Name())
		}
	}
}
