// Package core is the public facade of the library: a single Scheme
// abstraction unifying the three storage schemes the paper compares —
// 3-way replication, Reed-Solomon RS(10,4), and the Xorbas LRC(10,6,5) —
// plus constructors for arbitrary geometries of each.
//
// A Scheme answers the questions the reliability model (Section 4) and the
// cluster simulator (Section 5) ask of a storage code: how many blocks a
// stripe stores for a given file size, which failures it tolerates, and
// what a repair must read. Payload-level encoding and decoding live in the
// underlying packages (repro/internal/rs, repro/internal/lrc) and are
// re-exported through the concrete types.
package core

import (
	"fmt"

	"repro/internal/lrc"
	"repro/internal/rs"
)

// Scheme models a redundancy scheme at stripe granularity.
type Scheme interface {
	// Name identifies the scheme in reports, e.g. "LRC (10,6,5)".
	Name() string
	// DataBlocks returns k, the data blocks of a full stripe.
	DataBlocks() int
	// Slots returns the stripe positions a full stripe stores
	// (3 for replication, 14 for RS(10,4), 16 for LRC(10,6,5)).
	Slots() int
	// Exists reports whether position pos is physically stored in a
	// stripe holding dataCount ≤ k real data blocks (zero-padded stripes
	// of §3.1.1 store fewer blocks).
	Exists(pos, dataCount int) bool
	// StoredCount returns the number of stored blocks for dataCount real
	// data blocks.
	StoredCount(dataCount int) int
	// StorageOverhead returns extra storage per byte of data for a full
	// stripe: 2.0 for 3-replication, 0.4 for RS(10,4), 0.6 for LRC
	// (Table 1).
	StorageOverhead() float64
	// FailuresTolerated returns d−1: the erasures any full stripe
	// survives (2 for replication, 4 for both coded schemes).
	FailuresTolerated() int
	// PlanRepair returns the positions read to repair block lost, and
	// whether the light (local) decoder sufficed. deployed selects the
	// deployed read-set policy (all streams) versus minimal.
	PlanRepair(lost int, exists, avail []bool, deployed bool) (reads []int, light bool, err error)
	// ExpectedRepairReads returns, over all erasure patterns of the given
	// size on a full stripe, the expected blocks read for the next repair
	// and the fraction handled by the light decoder.
	ExpectedRepairReads(erasures int) (avg float64, lightFrac float64)
}

// Replication is n-way block replication (the cluster default, §1).
type Replication struct {
	// Factor is the number of copies (3 at Facebook).
	Factor int
}

// NewReplication returns an n-way replication scheme.
func NewReplication(factor int) (Replication, error) {
	if factor < 2 {
		return Replication{}, fmt.Errorf("core: replication factor %d < 2", factor)
	}
	return Replication{Factor: factor}, nil
}

// Name implements Scheme.
func (r Replication) Name() string { return fmt.Sprintf("%d-replication", r.Factor) }

// DataBlocks implements Scheme: a replication "stripe" is one block.
func (r Replication) DataBlocks() int { return 1 }

// Slots implements Scheme.
func (r Replication) Slots() int { return r.Factor }

// Exists implements Scheme: every copy always exists.
func (r Replication) Exists(pos, dataCount int) bool { return pos >= 0 && pos < r.Factor }

// StoredCount implements Scheme.
func (r Replication) StoredCount(dataCount int) int { return r.Factor }

// StorageOverhead implements Scheme: 2.0 for 3 copies (Table 1).
func (r Replication) StorageOverhead() float64 { return float64(r.Factor - 1) }

// FailuresTolerated implements Scheme.
func (r Replication) FailuresTolerated() int { return r.Factor - 1 }

// PlanRepair implements Scheme: read any surviving copy.
func (r Replication) PlanRepair(lost int, exists, avail []bool, deployed bool) ([]int, bool, error) {
	if len(exists) != r.Factor || len(avail) != r.Factor {
		return nil, false, fmt.Errorf("core: masks must have %d entries", r.Factor)
	}
	if lost < 0 || lost >= r.Factor {
		return nil, false, fmt.Errorf("core: bad copy index %d", lost)
	}
	for i := 0; i < r.Factor; i++ {
		if i != lost && avail[i] {
			return []int{i}, true, nil
		}
	}
	return nil, false, fmt.Errorf("core: all %d copies lost", r.Factor)
}

// ExpectedRepairReads implements Scheme: replication always reads one
// block per repair.
func (r Replication) ExpectedRepairReads(erasures int) (float64, float64) {
	if erasures >= r.Factor {
		return 0, 0
	}
	return 1, 1
}

// RS wraps a Reed-Solomon code as a Scheme.
type RS struct {
	code *rs.Code
}

// NewRS returns the (k, n−k) Reed-Solomon scheme over GF(2^8).
func NewRS(k, n int) (*RS, error) {
	c, err := rs.New256(k, n)
	if err != nil {
		return nil, err
	}
	return &RS{code: c}, nil
}

// NewRS104 returns the production RS(10,4) scheme (n = 14).
func NewRS104() *RS {
	s, err := NewRS(10, 14)
	if err != nil {
		panic(err)
	}
	return s
}

// Code exposes the payload-level Reed-Solomon code.
func (s *RS) Code() *rs.Code { return s.code }

// Name implements Scheme.
func (s *RS) Name() string {
	return fmt.Sprintf("RS (%d, %d)", s.code.K(), s.code.N()-s.code.K())
}

// DataBlocks implements Scheme.
func (s *RS) DataBlocks() int { return s.code.K() }

// Slots implements Scheme.
func (s *RS) Slots() int { return s.code.N() }

// Exists implements Scheme: data blocks beyond dataCount are zero padding
// and not stored; parity blocks always exist.
func (s *RS) Exists(pos, dataCount int) bool {
	if pos < 0 || pos >= s.code.N() {
		return false
	}
	if pos < s.code.K() {
		return pos < dataCount
	}
	return true
}

// StoredCount implements Scheme.
func (s *RS) StoredCount(dataCount int) int {
	if dataCount > s.code.K() {
		dataCount = s.code.K()
	}
	return dataCount + s.code.ParityShards()
}

// StorageOverhead implements Scheme.
func (s *RS) StorageOverhead() float64 { return s.code.StorageOverhead() }

// FailuresTolerated implements Scheme: MDS tolerates n−k erasures.
func (s *RS) FailuresTolerated() int { return s.code.ParityShards() }

// PlanRepair implements Scheme.
func (s *RS) PlanRepair(lost int, exists, avail []bool, deployed bool) ([]int, bool, error) {
	p, err := s.code.PlanRepair(lost, exists, avail, deployed)
	if err != nil {
		return nil, false, err
	}
	return p.Reads, false, nil
}

// ExpectedRepairReads implements Scheme.
func (s *RS) ExpectedRepairReads(erasures int) (float64, float64) {
	return s.code.ExpectedRepairReads(erasures), 0
}

// LRC wraps a Locally Repairable Code as a Scheme.
type LRC struct {
	code *lrc.Code
	d    int // exact minimum distance, computed once
}

// NewLRC wraps an existing payload-level LRC.
func NewLRC(c *lrc.Code) *LRC {
	return &LRC{code: c, d: c.MinDistance()}
}

// NewXorbas returns the paper's LRC (10, 6, 5) scheme.
func NewXorbas() *LRC { return NewLRC(lrc.NewXorbas()) }

// Code exposes the payload-level LRC.
func (s *LRC) Code() *lrc.Code { return s.code }

// Name implements Scheme.
func (s *LRC) Name() string {
	p := s.code.Params()
	return fmt.Sprintf("LRC (%d, %d, %d)", p.K, s.code.NStored()-p.K, s.code.Locality())
}

// DataBlocks implements Scheme.
func (s *LRC) DataBlocks() int { return s.code.K() }

// Slots implements Scheme.
func (s *LRC) Slots() int { return s.code.NStored() }

// Exists implements Scheme.
func (s *LRC) Exists(pos, dataCount int) bool {
	if pos < 0 || pos >= s.code.NStored() {
		return false
	}
	return s.code.Exists(pos, dataCount)
}

// StoredCount implements Scheme.
func (s *LRC) StoredCount(dataCount int) int { return s.code.StoredCount(dataCount) }

// StorageOverhead implements Scheme.
func (s *LRC) StorageOverhead() float64 { return s.code.StorageOverhead() }

// FailuresTolerated implements Scheme: d−1 with the exact enumerated
// minimum distance (4 for Xorbas).
func (s *LRC) FailuresTolerated() int { return s.d - 1 }

// PlanRepair implements Scheme.
func (s *LRC) PlanRepair(lost int, exists, avail []bool, deployed bool) ([]int, bool, error) {
	p, err := s.code.PlanRepair(lost, exists, avail, deployed)
	if err != nil {
		return nil, false, err
	}
	return p.Reads, p.Light, nil
}

// ExpectedRepairReads implements Scheme.
func (s *LRC) ExpectedRepairReads(erasures int) (float64, float64) {
	return s.code.ExpectedRepairReads(erasures)
}

// Groups returns the stripe positions of each repair group (data groups
// first, then the global-parity group). Group-aware placement uses this
// to keep each group inside one rack or datacenter (§1.1).
func (s *LRC) Groups() [][]int {
	var out [][]int
	for _, g := range s.code.Groups() {
		out = append(out, g.Members)
	}
	return out
}
