package core

// Stats derived from exhaustive enumeration of erasure patterns against a
// scheme's repair planner. These drive the Markov model's per-state
// repair rates (Section 4: "we determine the probabilities for invoking
// light or heavy decoder and thus compute the expected number of blocks
// to be downloaded").
type RepairStatsResult struct {
	// AvgReads is the expected number of blocks the next repair streams
	// in, under the deployed read-set policy, assuming the BlockFixer
	// repairs the cheapest (light-first) lost block next.
	AvgReads float64
	// LightFraction is the probability that next repair is light.
	LightFraction float64
	// AvgParallel is the expected number of lost blocks whose minimal
	// repair read-sets are pairwise disjoint (and disjoint from the other
	// losses): repairs that can run concurrently without sharing source
	// links. LRC light repairs in different groups are disjoint; two RS
	// repairs always contend for the same k sources, so this stays 1 for
	// RS and replication.
	AvgParallel float64
}

// RepairStats enumerates every erasure pattern of the given size on a
// full stripe of s and aggregates repair cost statistics. Patterns from
// which no block is recoverable are skipped (they are absorbing states in
// the Markov chain). Cost is combinatorial in Slots(); fine for stripes.
func RepairStats(s Scheme, erasures int) RepairStatsResult {
	n := s.Slots()
	exists := make([]bool, n)
	for i := range exists {
		exists[i] = true
	}
	var totReads, totLight, totPar, patterns float64
	idx := make([]int, erasures)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == erasures {
			avail := make([]bool, n)
			for i := range avail {
				avail[i] = true
			}
			for _, i := range idx {
				avail[i] = false
			}
			// Cheapest deployed repair among the lost blocks.
			bestReads, bestLight, any := 0, false, false
			for _, lost := range idx {
				reads, light, err := s.PlanRepair(lost, exists, avail, true)
				if err != nil {
					continue
				}
				if !any || len(reads) < bestReads || (light && !bestLight && len(reads) <= bestReads) {
					bestReads, bestLight, any = len(reads), light, true
				}
			}
			if !any {
				return
			}
			patterns++
			totReads += float64(bestReads)
			if bestLight {
				totLight++
			}
			totPar += float64(disjointRepairs(s, idx, exists, avail))
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if patterns == 0 {
		return RepairStatsResult{}
	}
	return RepairStatsResult{
		AvgReads:      totReads / patterns,
		LightFraction: totLight / patterns,
		AvgParallel:   totPar / patterns,
	}
}

// disjointRepairs counts, greedily and cheapest-first, how many of the
// lost blocks have minimal repair plans whose read sets are pairwise
// disjoint and avoid the other losses. At least 1 when any repair exists.
func disjointRepairs(s Scheme, lost []int, exists, avail []bool) int {
	type cand struct {
		block int
		reads []int
	}
	var cands []cand
	for _, b := range lost {
		reads, _, err := s.PlanRepair(b, exists, avail, false)
		if err != nil {
			continue
		}
		cands = append(cands, cand{b, reads})
	}
	if len(cands) == 0 {
		return 0
	}
	// cheapest-first greedy
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && len(cands[j].reads) < len(cands[j-1].reads); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	used := make(map[int]bool)
	count := 0
	for _, c := range cands {
		ok := true
		for _, r := range c.reads {
			if used[r] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		count++
		for _, r := range c.reads {
			used[r] = true
		}
	}
	if count == 0 {
		count = 1
	}
	return count
}
