package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

var f8 = gf.MustNew(8)

func randomMatrix(r *rand.Rand, f *gf.Field, rows, cols int) *Matrix {
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf.Elem(r.Intn(f.Size())))
		}
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randomMatrix(r, f8, 5, 7)
	if !Identity(f8, 5).Mul(m).Equal(m) {
		t.Fatal("I·m != m")
	}
	if !m.Mul(Identity(f8, 7)).Equal(m) {
		t.Fatal("m·I != m")
	}
}

func TestVandermondeRSParityCheck(t *testing.T) {
	h, err := RSParityCheck(f8, 10, 14)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 4 || h.Cols() != 14 {
		t.Fatalf("shape %dx%d", h.Rows(), h.Cols())
	}
	// Row 0 is all ones: α^0 for every column — the property the paper's
	// interference alignment relies on (Appendix D).
	for j := 0; j < 14; j++ {
		if h.At(0, j) != 1 {
			t.Fatalf("H[0,%d] = %d want 1", j, h.At(0, j))
		}
	}
	// Entry (i,j) = α^{i·j}.
	for i := 0; i < 4; i++ {
		for j := 0; j < 14; j++ {
			if h.At(i, j) != f8.Exp(i*j) {
				t.Fatalf("H[%d,%d] wrong", i, j)
			}
		}
	}
}

func TestRSParityCheckErrors(t *testing.T) {
	if _, err := RSParityCheck(f8, 0, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RSParityCheck(f8, 5, 5); err == nil {
		t.Error("n=k accepted")
	}
	f4 := gf.MustNew(4)
	if _, err := RSParityCheck(f4, 10, 20); err == nil {
		t.Error("n>field size accepted")
	}
}

// Any square submatrix of a Vandermonde matrix with distinct points is
// nonsingular — the MDS property the paper quotes from [31].
func TestVandermondeSubmatricesFullRank(t *testing.T) {
	h, _ := RSParityCheck(f8, 10, 14)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		idx := r.Perm(14)[:4]
		if h.SelectCols(idx).Rank() != 4 {
			t.Fatalf("singular 4x4 Vandermonde submatrix at cols %v", idx)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(12)
		m := randomMatrix(r, f8, n, n)
		inv, err := m.Inverse()
		if err != nil {
			continue // singular draw; fine
		}
		if !m.Mul(inv).Equal(Identity(f8, n)) {
			t.Fatalf("m·m⁻¹ != I (n=%d)", n)
		}
		if !inv.Mul(m).Equal(Identity(f8, n)) {
			t.Fatalf("m⁻¹·m != I (n=%d)", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := New(f8, 2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected singular error")
	}
	if _, err := New(f8, 2, 3).Inverse(); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestRank(t *testing.T) {
	if got := Identity(f8, 6).Rank(); got != 6 {
		t.Fatalf("identity rank %d", got)
	}
	z := New(f8, 3, 3)
	if got := z.Rank(); got != 0 {
		t.Fatalf("zero rank %d", got)
	}
	// rank-1 outer product
	m := New(f8, 3, 4)
	for j := 0; j < 4; j++ {
		m.Set(0, j, gf.Elem(j+1))
		m.Set(1, j, f8.Mul(2, gf.Elem(j+1)))
		m.Set(2, j, f8.Mul(7, gf.Elem(j+1)))
	}
	if got := m.Rank(); got != 1 {
		t.Fatalf("rank-1 matrix reported rank %d", got)
	}
}

func TestNullSpace(t *testing.T) {
	h, _ := RSParityCheck(f8, 10, 14)
	ns := h.NullSpace()
	if ns == nil || ns.Rows() != 10 || ns.Cols() != 14 {
		t.Fatalf("null space shape wrong: %+v", ns)
	}
	// G·Hᵀ = 0
	if !ns.Mul(h.Transpose()).IsZero() {
		t.Fatal("null space vectors not orthogonal to H")
	}
	if ns.Rank() != 10 {
		t.Fatalf("null space basis rank %d want 10", ns.Rank())
	}
	// Full-rank square matrix has trivial null space.
	if Identity(f8, 4).NullSpace() != nil {
		t.Fatal("identity should have trivial null space")
	}
}

func TestSolve(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(10)
		m := randomMatrix(r, f8, n, n)
		if m.Rank() != n {
			continue
		}
		x := make([]gf.Elem, n)
		for i := range x {
			x[i] = gf.Elem(r.Intn(256))
		}
		b := m.MulVec(x)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("Solve mismatch at %d", i)
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	m := New(f8, 2, 2) // zero matrix
	if _, err := m.Solve([]gf.Elem{1, 2}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := m.Solve([]gf.Elem{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
	if _, err := New(f8, 2, 3).Solve([]gf.Elem{1, 2}); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestVecMulMatchesMulVecTranspose(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatrix(r, f8, 3+r.Intn(5), 3+r.Intn(5))
		v := make([]gf.Elem, m.Rows())
		for i := range v {
			v[i] = gf.Elem(r.Intn(256))
		}
		a := m.VecMul(v)
		b := m.Transpose().MulVec(v)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, f8, 4, 5)
		b := randomMatrix(r, f8, 5, 3)
		c := randomMatrix(r, f8, 3, 6)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubAugmentSelect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := randomMatrix(r, f8, 4, 6)
	left := m.Sub(0, 4, 0, 3)
	right := m.Sub(0, 4, 3, 6)
	if !left.Augment(right).Equal(m) {
		t.Fatal("Sub+Augment did not round-trip")
	}
	sel := m.SelectCols([]int{5, 0, 2})
	for i := 0; i < 4; i++ {
		if sel.At(i, 0) != m.At(i, 5) || sel.At(i, 1) != m.At(i, 0) || sel.At(i, 2) != m.At(i, 2) {
			t.Fatal("SelectCols wrong")
		}
	}
}

func TestRowColClone(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	m := randomMatrix(r, f8, 3, 4)
	c := m.Clone()
	c.Set(0, 0, c.At(0, 0)+1)
	if m.Equal(c) {
		t.Fatal("Clone aliases data")
	}
	row := m.Row(1)
	col := m.Col(2)
	for j := range row {
		if row[j] != m.At(1, j) {
			t.Fatal("Row wrong")
		}
	}
	for i := range col {
		if col[i] != m.At(i, 2) {
			t.Fatal("Col wrong")
		}
	}
}

func TestStringSmoke(t *testing.T) {
	if s := Identity(f8, 2).String(); s == "" {
		t.Fatal("empty String")
	}
}
