// Package matrix implements dense linear algebra over GF(2^m).
//
// It provides exactly the operations the paper's constructions need:
// Vandermonde parity-check matrices (Appendix D), null spaces (to derive a
// generator G with G·Hᵀ = 0), Gauss-Jordan inversion (to systematize
// G_LRC via A = G⁻¹ restricted to the data columns, and to run the heavy
// decoder's linear-system solve), rank (for minimum-distance enumeration),
// and submatrix/column plumbing.
package matrix

import (
	"fmt"
	"strings"

	"repro/internal/gf"
)

// Matrix is a dense rows×cols matrix of GF(2^m) elements tied to a Field.
// The zero Matrix is not usable; construct with New or a builder.
type Matrix struct {
	f    *gf.Field
	rows int
	cols int
	data []gf.Elem // row-major
}

// New returns a zero rows×cols matrix over f.
func New(f *gf.Field, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{f: f, rows: rows, cols: cols, data: make([]gf.Elem, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(f *gf.Field, rows [][]gf.Elem) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows needs at least one row and column")
	}
	m := New(f, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(f *gf.Field, n int) *Matrix {
	m := New(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the r×n matrix V[i,j] = points[j]^i, i = 0..r-1.
// With points = (α^0, α^1, …, α^(n-1)) this is the paper's parity-check
// matrix [H]_{i,j} = α^{(i-1)(j-1)} (1-indexed in the paper).
func Vandermonde(f *gf.Field, r int, points []gf.Elem) *Matrix {
	m := New(f, r, len(points))
	for j, p := range points {
		v := gf.Elem(1)
		for i := 0; i < r; i++ {
			m.Set(i, j, v)
			v = f.Mul(v, p)
		}
	}
	return m
}

// RSParityCheck returns the (n-k)×n Reed-Solomon parity-check matrix of
// Appendix D over f, using evaluation points α^0 … α^(n-1). It requires
// field order ≥ n so the points are distinct.
func RSParityCheck(f *gf.Field, k, n int) (*Matrix, error) {
	if k <= 0 || n <= k {
		return nil, fmt.Errorf("matrix: invalid RS parameters k=%d n=%d", k, n)
	}
	if n > f.Size() {
		return nil, fmt.Errorf("matrix: field size %d < n=%d", f.Size(), n)
	}
	points := make([]gf.Elem, n)
	for j := range points {
		points[j] = f.Exp(j)
	}
	return Vandermonde(f, n-k, points), nil
}

// Field returns the field the matrix is defined over.
func (m *Matrix) Field() *gf.Field { return m.f }

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) gf.Elem { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v gf.Elem) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.f, m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []gf.Elem {
	r := make([]gf.Elem, m.cols)
	copy(r, m.data[i*m.cols:(i+1)*m.cols])
	return r
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []gf.Elem {
	c := make([]gf.Elem, m.rows)
	for i := range c {
		c[i] = m.At(i, j)
	}
	return c
}

// SelectCols returns the rows×len(idx) matrix of the chosen columns, in the
// given order. Used to collect the generator columns of surviving blocks
// for heavy decoding.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	s := New(m.f, m.rows, len(idx))
	for jj, j := range idx {
		for i := 0; i < m.rows; i++ {
			s.Set(i, jj, m.At(i, j))
		}
	}
	return s
}

// Sub returns the submatrix rows [r0,r1) × cols [c0,c1).
func (m *Matrix) Sub(r0, r1, c0, c1 int) *Matrix {
	s := New(m.f, r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			s.Set(i-r0, j-c0, m.At(i, j))
		}
	}
	return s
}

// Augment returns [m | other] (same row count).
func (m *Matrix) Augment(other *Matrix) *Matrix {
	if m.rows != other.rows {
		panic("matrix: Augment row mismatch")
	}
	a := New(m.f, m.rows, m.cols+other.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			a.Set(i, j, m.At(i, j))
		}
		for j := 0; j < other.cols; j++ {
			a.Set(i, m.cols+j, other.At(i, j))
		}
	}
	return a
}

// Mul returns m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	p := New(m.f, m.rows, other.cols)
	f := m.f
	for i := 0; i < m.rows; i++ {
		for l := 0; l < m.cols; l++ {
			a := m.At(i, l)
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				b := other.At(l, j)
				if b == 0 {
					continue
				}
				p.Set(i, j, f.Add(p.At(i, j), f.Mul(a, b)))
			}
		}
	}
	return p
}

// MulVec returns m·v for a column vector v (len = cols).
func (m *Matrix) MulVec(v []gf.Elem) []gf.Elem {
	if len(v) != m.cols {
		panic("matrix: MulVec length mismatch")
	}
	out := make([]gf.Elem, m.rows)
	f := m.f
	for i := 0; i < m.rows; i++ {
		var acc gf.Elem
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			if a != 0 && v[j] != 0 {
				acc = f.Add(acc, f.Mul(a, v[j]))
			}
		}
		out[i] = acc
	}
	return out
}

// VecMul returns vᵀ·m for a row vector v (len = rows); this is how a file
// row-vector x is encoded into coded blocks y = x·G.
func (m *Matrix) VecMul(v []gf.Elem) []gf.Elem {
	if len(v) != m.rows {
		panic("matrix: VecMul length mismatch")
	}
	out := make([]gf.Elem, m.cols)
	f := m.f
	for i, a := range v {
		if a == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, b := range row {
			if b != 0 {
				out[j] = f.Add(out[j], f.Mul(a, b))
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.f, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Equal reports element-wise equality (shapes must match too).
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if other.data[i] != v {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry is zero.
func (m *Matrix) IsZero() bool {
	for _, v := range m.data {
		if v != 0 {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%3d", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// swapRows exchanges rows i and j in place.
func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// scaleRow multiplies row i by c in place.
func (m *Matrix) scaleRow(i int, c gf.Elem) {
	row := m.data[i*m.cols : (i+1)*m.cols]
	for j := range row {
		row[j] = m.f.Mul(row[j], c)
	}
}

// addScaledRow adds c·row[src] to row[dst] in place.
func (m *Matrix) addScaledRow(dst, src int, c gf.Elem) {
	if c == 0 {
		return
	}
	rd := m.data[dst*m.cols : (dst+1)*m.cols]
	rs := m.data[src*m.cols : (src+1)*m.cols]
	for j := range rd {
		if rs[j] != 0 {
			rd[j] = m.f.Add(rd[j], m.f.Mul(c, rs[j]))
		}
	}
}

// rref reduces m to reduced row echelon form in place and returns the pivot
// column of each pivot row.
func (m *Matrix) rref() []int {
	var pivots []int
	r := 0
	for c := 0; c < m.cols && r < m.rows; c++ {
		// find pivot
		p := -1
		for i := r; i < m.rows; i++ {
			if m.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.swapRows(r, p)
		m.scaleRow(r, m.f.Inv(m.At(r, c)))
		for i := 0; i < m.rows; i++ {
			if i != r && m.At(i, c) != 0 {
				m.addScaledRow(i, r, m.At(i, c))
			}
		}
		pivots = append(pivots, c)
		r++
	}
	return pivots
}

// Rank returns the rank of m (m is not modified).
func (m *Matrix) Rank() int {
	c := m.Clone()
	return len(c.rref())
}

// Inverse returns m⁻¹ or an error if m is not square or is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert %dx%d", m.rows, m.cols)
	}
	aug := m.Augment(Identity(m.f, m.rows))
	pivots := aug.rref()
	if len(pivots) != m.rows || pivots[m.rows-1] != m.rows-1 {
		return nil, fmt.Errorf("matrix: singular %dx%d matrix", m.rows, m.cols)
	}
	return aug.Sub(0, m.rows, m.cols, 2*m.cols), nil
}

// NullSpace returns a basis for the right null space {x : m·x = 0} as the
// rows of the returned matrix. Returns nil if the null space is trivial.
// The paper derives the RS generator G as the null space of H (G·Hᵀ = 0).
func (m *Matrix) NullSpace() *Matrix {
	r := m.Clone()
	pivots := r.rref()
	isPivot := make([]bool, m.cols)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var free []int
	for j := 0; j < m.cols; j++ {
		if !isPivot[j] {
			free = append(free, j)
		}
	}
	if len(free) == 0 {
		return nil
	}
	ns := New(m.f, len(free), m.cols)
	for bi, fc := range free {
		ns.Set(bi, fc, 1)
		// each pivot row: x[pivot] = -Σ row[free]·x[free] = row[fc] (char 2)
		for pi, pc := range pivots {
			ns.Set(bi, pc, r.At(pi, fc))
		}
	}
	return ns
}

// Solve solves m·x = b for x, requiring m square and nonsingular.
func (m *Matrix) Solve(b []gf.Elem) ([]gf.Elem, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: Solve needs square matrix, got %dx%d", m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("matrix: Solve rhs length %d != %d", len(b), m.rows)
	}
	rhs := New(m.f, m.rows, 1)
	for i, v := range b {
		rhs.Set(i, 0, v)
	}
	aug := m.Augment(rhs)
	pivots := aug.rref()
	if len(pivots) != m.rows || pivots[m.rows-1] >= m.rows {
		return nil, fmt.Errorf("matrix: singular system")
	}
	x := make([]gf.Elem, m.rows)
	for i := range x {
		x[i] = aug.At(i, m.cols)
	}
	return x, nil
}
