package gf

import "encoding/binary"

// 16-bit payload kernels. GF(2^8) caps codes at n ≤ 256 blocks; the
// paper's archival direction (§7, stripe sizes of 50–100 blocks plus
// parities) fits comfortably, but a (k, n−k) code over GF(2^16) lifts
// the ceiling to 65536 blocks per stripe. Payloads are interpreted as
// little-endian uint16 lanes; odd-length payloads are rejected so no
// byte is silently dropped.

// MulAddSlice16 sets dst ^= c·src lane-wise over GF(2^16). dst and src
// must have equal, even lengths. Unlike the GF(2^8) kernel there is no
// cached lookup table (it would be 8 GiB); the log/exp tables are used
// directly, with lanes moved as encoding/binary words rather than manual
// byte shifts.
func (f *Field) MulAddSlice16(c Elem, dst, src []byte) {
	if f.m != 16 {
		panic("gf: MulAddSlice16 requires GF(2^16)")
	}
	if len(dst) != len(src) {
		panic("gf: MulAddSlice16 length mismatch")
	}
	if len(src)%2 != 0 {
		panic("gf: MulAddSlice16 requires even-length payloads")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XORSlice(dst, src)
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i := 0; i+1 < len(src); i += 2 {
		a := binary.LittleEndian.Uint16(src[i:])
		if a == 0 {
			continue
		}
		p := exp[lc+int(log[a])]
		binary.LittleEndian.PutUint16(dst[i:], binary.LittleEndian.Uint16(dst[i:])^p)
	}
}

// MulAddSliceAuto dispatches to the field's natural payload kernel:
// byte lanes for GF(2^8), uint16 lanes for GF(2^16).
func (f *Field) MulAddSliceAuto(c Elem, dst, src []byte) {
	switch f.m {
	case 8:
		f.MulAddSlice(c, dst, src)
	case 16:
		f.MulAddSlice16(c, dst, src)
	default:
		panic("gf: no payload kernel for this field degree")
	}
}

// LaneBytes returns the payload alignment requirement in bytes (1 for
// GF(2^8), 2 for GF(2^16)).
func (f *Field) LaneBytes() int {
	switch f.m {
	case 8:
		return 1
	case 16:
		return 2
	default:
		return 0
	}
}
