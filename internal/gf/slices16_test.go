package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulAddSlice16MatchesScalar(t *testing.T) {
	f := MustNew(16)
	r := rand.New(rand.NewSource(1))
	src := make([]byte, 128)
	r.Read(src)
	for _, c := range []Elem{0, 1, 2, 0x1234, 0xffff} {
		dst := make([]byte, 128)
		want := make([]byte, 128)
		f.MulAddSlice16(c, dst, src)
		for i := 0; i+1 < len(src); i += 2 {
			a := Elem(src[i]) | Elem(src[i+1])<<8
			p := f.Mul(c, a)
			want[i] ^= byte(p)
			want[i+1] ^= byte(p >> 8)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("c=%#x lane byte %d: got %d want %d", c, i, dst[i], want[i])
			}
		}
	}
}

func TestMulAddSlice16Linearity(t *testing.T) {
	f := MustNew(16)
	if err := quick.Check(func(c1, c2 Elem, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := make([]byte, 64)
		r.Read(src)
		a := make([]byte, 64)
		b := make([]byte, 64)
		f.MulAddSlice16(c1, a, src)
		f.MulAddSlice16(c2, a, src)
		f.MulAddSlice16(f.Add(c1, c2), b, src)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMulAddSlice16Validation(t *testing.T) {
	f16 := MustNew(16)
	f8 := MustNew(8)
	cases := []struct {
		name string
		fn   func()
	}{
		{"wrong field", func() { f8.MulAddSlice16(1, make([]byte, 2), make([]byte, 2)) }},
		{"length mismatch", func() { f16.MulAddSlice16(1, make([]byte, 2), make([]byte, 4)) }},
		{"odd length", func() { f16.MulAddSlice16(1, make([]byte, 3), make([]byte, 3)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestMulAddSliceAutoDispatch(t *testing.T) {
	// 0x80 bytes force a modular reduction in GF(2^8) but not in the
	// low half of a GF(2^16) lane, so the kernels must disagree.
	src := []byte{0x80, 0x80, 0x80, 0x80}
	dst8 := make([]byte, 4)
	dst16 := make([]byte, 4)
	f8 := MustNew(8)
	f16 := MustNew(16)
	f8.MulAddSliceAuto(2, dst8, src)
	f16.MulAddSliceAuto(2, dst16, src)
	// Both are linear maps; just ensure they dispatched to different
	// kernels (results differ for multi-byte lanes).
	same := true
	for i := range dst8 {
		if dst8[i] != dst16[i] {
			same = false
		}
	}
	if same {
		t.Fatal("8- and 16-bit kernels produced identical output on a distinguishing input")
	}
	if f8.LaneBytes() != 1 || f16.LaneBytes() != 2 {
		t.Fatal("LaneBytes wrong")
	}
	f4 := MustNew(4)
	if f4.LaneBytes() != 0 {
		t.Fatal("unsupported degree should report 0 lane bytes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("auto dispatch on GF(16) should panic")
		}
	}()
	f4.MulAddSliceAuto(1, dst8, src)
}

// A large-blocklength RS over GF(2^16): n = 300 exceeds GF(2^8)'s 256
// ceiling; encode → erase → reconstruct round-trips.
func TestRSOverGF16(t *testing.T) {
	// (Placed here to exercise the kernels; the rs package tests cover
	// the GF(2^8) paths.)
	t.Skip("covered by rs package's TestLargeBlocklengthGF16")
}
