package gf

// Slice operations over byte payloads. These are the hot paths of the
// encoders: every parity block is a linear combination Σ c_i·X_i of data
// blocks, computed column-wise over the block payloads. For GF(2^8) each
// payload byte is one field element; the local XOR parities of the Xorbas
// code (all c_i = 1) reduce to plain XOR, which XORSlice provides without
// any table lookups.

// XORSlice sets dst[i] ^= src[i] for all i. dst and src must have equal
// length. This is the entire arithmetic of the Xorbas local parities
// (coefficients c_i = 1, Section 2.1).
func XORSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: XORSlice length mismatch")
	}
	// 8-way word at a time would need unsafe; the compiler already
	// vectorizes this simple loop form well.
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// mulTable returns the 256-entry row of the multiplication table for
// coefficient c. Only valid for m == 8.
func (f *Field) mulTable(c Elem) []byte {
	t := make([]byte, 256)
	if c == 0 {
		return t
	}
	lc := int(f.log[c])
	for a := 1; a < 256; a++ {
		t[a] = byte(f.exp[lc+int(f.log[a])])
	}
	return t
}

// MulSlice sets dst[i] = c·src[i]. Valid for GF(2^8) fields only (payload
// bytes are field elements). dst and src must have equal length and may
// alias.
func (f *Field) MulSlice(c Elem, dst, src []byte) {
	if f.m != 8 {
		panic("gf: MulSlice requires GF(2^8)")
	}
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	t := f.mulTable(c)
	for i, s := range src {
		dst[i] = t[s]
	}
}

// MulAddSlice sets dst[i] ^= c·src[i]: a fused multiply-accumulate, the
// inner loop of every matrix-vector encode. Valid for GF(2^8) only.
func (f *Field) MulAddSlice(c Elem, dst, src []byte) {
	if f.m != 8 {
		panic("gf: MulAddSlice requires GF(2^8)")
	}
	if len(dst) != len(src) {
		panic("gf: MulAddSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		XORSlice(dst, src)
		return
	}
	t := f.mulTable(c)
	for i, s := range src {
		dst[i] ^= t[s]
	}
}

// DotSlices computes dst = Σ coeffs[j]·srcs[j] over GF(2^8), overwriting
// dst. All srcs and dst must share one length.
func (f *Field) DotSlices(coeffs []Elem, dst []byte, srcs [][]byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: DotSlices coefficient/source count mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, c := range coeffs {
		f.MulAddSlice(c, dst, srcs[j])
	}
}
