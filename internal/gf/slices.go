package gf

import "encoding/binary"

// Slice operations over byte payloads. These are the hot paths of the
// encoders: every parity block is a linear combination Σ c_i·X_i of data
// blocks, computed column-wise over the block payloads. For GF(2^8) each
// payload byte is one field element; the local XOR parities of the Xorbas
// code (all c_i = 1) reduce to plain XOR, which XORSlice provides without
// any table lookups.
//
// The GF(2^8) multiply kernels index a per-Field cached 256×256 table
// (see Field.mulRow) instead of rebuilding a 256-byte row per call, so
// none of them allocate; the XOR kernel moves 8 bytes per iteration.

// XORSlice sets dst[i] ^= src[i] for all i. dst and src must have equal
// length and may alias only if identical. This is the entire arithmetic of
// the Xorbas local parities (coefficients c_i = 1, Section 2.1).
func XORSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: XORSlice length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// MulSlice sets dst[i] = c·src[i]. Valid for GF(2^8) fields only (payload
// bytes are field elements). dst and src must have equal length and may
// alias.
func (f *Field) MulSlice(c Elem, dst, src []byte) {
	if f.m != 8 {
		panic("gf: MulSlice requires GF(2^8)")
	}
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	t := f.mulRow(c)
	dst = dst[:len(src)] // bounds-check hint: one len, checked once
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = t[src[i]]
		dst[i+1] = t[src[i+1]]
		dst[i+2] = t[src[i+2]]
		dst[i+3] = t[src[i+3]]
	}
	for i := n; i < len(src); i++ {
		dst[i] = t[src[i]]
	}
}

// MulAddSlice sets dst[i] ^= c·src[i]: a fused multiply-accumulate, the
// inner loop of every matrix-vector encode. Valid for GF(2^8) only.
func (f *Field) MulAddSlice(c Elem, dst, src []byte) {
	if f.m != 8 {
		panic("gf: MulAddSlice requires GF(2^8)")
	}
	if len(dst) != len(src) {
		panic("gf: MulAddSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		XORSlice(dst, src)
		return
	}
	t := f.mulRow(c)
	dst = dst[:len(src)]
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		// 4-way unroll: the four table loads are independent, hiding the
		// lookup latency the serial byte loop exposes.
		dst[i] ^= t[src[i]]
		dst[i+1] ^= t[src[i+1]]
		dst[i+2] ^= t[src[i+2]]
		dst[i+3] ^= t[src[i+3]]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= t[src[i]]
	}
}

// DotSlices computes dst = Σ coeffs[j]·srcs[j] over GF(2^8), overwriting
// dst. All srcs and dst must share one length. The first contribution
// overwrites dst directly (no zeroing pass). Two dispatch tiers keep the
// encode hot loop fast: an all-ones coefficient vector (the Xorbas local
// parities) collapses to a word-wise multi-source XOR, and general
// coefficients take a pairwise-fused table kernel that touches dst once
// per two sources instead of once per source.
func (f *Field) DotSlices(coeffs []Elem, dst []byte, srcs [][]byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: DotSlices coefficient/source count mismatch")
	}
	// Compact away zero coefficients.
	nzc := make([]Elem, 0, 16)
	nzs := make([][]byte, 0, 16)
	ones := true
	for j, c := range coeffs {
		if c == 0 {
			continue
		}
		if c != 1 {
			ones = false
		}
		nzc = append(nzc, c)
		nzs = append(nzs, srcs[j])
	}
	switch {
	case len(nzc) == 0:
		for i := range dst {
			dst[i] = 0
		}
	case len(nzc) == 1:
		f.MulSlice(nzc[0], dst, nzs[0])
	case ones:
		xorIntoSlices(dst, nzs)
	default:
		f.MulSlice(nzc[0], dst, nzs[0])
		j := 1
		for ; j+1 < len(nzc); j += 2 {
			f.mulAdd2(nzc[j], nzc[j+1], dst, nzs[j], nzs[j+1])
		}
		if j < len(nzc) {
			f.MulAddSlice(nzc[j], dst, nzs[j])
		}
	}
}

// mulAdd2 sets dst[i] ^= c1·a[i] ^ c2·b[i]: two fused multiply-
// accumulates in one pass, so dst is loaded and stored once per pair of
// sources. c1, c2 must be ≥ 2 (callers route 0/1 elsewhere).
func (f *Field) mulAdd2(c1, c2 Elem, dst, a, b []byte) {
	t1, t2 := f.mulRow(c1), f.mulRow(c2)
	n := len(dst) &^ 1
	for i := 0; i < n; i += 2 {
		dst[i] ^= t1[a[i]] ^ t2[b[i]]
		dst[i+1] ^= t1[a[i+1]] ^ t2[b[i+1]]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= t1[a[i]] ^ t2[b[i]]
	}
}

// xorIntoSlices sets dst = srcs[0] ^ srcs[1] ^ … word-wise, overwriting
// dst: the whole arithmetic of a local parity column, with dst written
// once for the entire group instead of once per member. Arities up to
// five — the Xorbas light recipe reads exactly five blocks, the decode
// hot path — get fixed-shape kernels whose slice bases stay in
// registers; wider sets peel five sources at a time.
func xorIntoSlices(dst []byte, srcs [][]byte) {
	switch len(srcs) {
	case 1:
		copy(dst, srcs[0])
	case 2:
		xor2(dst, srcs[0], srcs[1])
	case 3:
		xor3(dst, srcs[0], srcs[1], srcs[2])
	case 4:
		xor4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
	case 5:
		xor5(dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4])
	default:
		xor5(dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4])
		rest := srcs[5:]
		for len(rest) >= 5 {
			xor5in(dst, rest[0], rest[1], rest[2], rest[3], rest[4])
			rest = rest[5:]
		}
		for _, s := range rest {
			XORSlice(dst, s)
		}
	}
}

// xor2..xor5 overwrite dst with the word-wise XOR of their sources; the
// fixed arity lets the compiler hoist every bounds check out of the loop.
func xor2(dst, a, b []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

func xor3(dst, a, b, c []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i] ^ c[i]
	}
}

func xor4(dst, a, b, c, d []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^binary.LittleEndian.Uint64(d[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i] ^ c[i] ^ d[i]
	}
}

func xor5(dst, a, b, c, d, e []byte) {
	// Two words per iteration: the ten loads are independent, and halving
	// the loop overhead matters — this is the busiest kernel of a light
	// repair (five sources, one pass). Equal-length reslicing lets the
	// compiler drop the per-load bounds checks.
	a, b, c, d, e = a[:len(dst)], b[:len(dst)], c[:len(dst)], d[:len(dst)], e[:len(dst)]
	n := len(dst) &^ 15
	for i := 0; i < n; i += 16 {
		w0 := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:]) ^ binary.LittleEndian.Uint64(d[i:]) ^
			binary.LittleEndian.Uint64(e[i:])
		w1 := binary.LittleEndian.Uint64(a[i+8:]) ^ binary.LittleEndian.Uint64(b[i+8:]) ^
			binary.LittleEndian.Uint64(c[i+8:]) ^ binary.LittleEndian.Uint64(d[i+8:]) ^
			binary.LittleEndian.Uint64(e[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i] ^ c[i] ^ d[i] ^ e[i]
	}
}

// xor5in accumulates five more sources into dst (dst ^= a^b^c^d^e).
func xor5in(dst, a, b, c, d, e []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^binary.LittleEndian.Uint64(d[i:])^
				binary.LittleEndian.Uint64(e[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i] ^ e[i]
	}
}
