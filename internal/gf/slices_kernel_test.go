package gf

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// kernelLens exercises every word/tail split the fast kernels have: empty,
// sub-word, exact words, words plus each possible byte tail, and a length
// large enough to cover the unrolled body many times over.
var kernelLens = []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 256, 257, 1023}

// naiveMulAdd is the scalar reference implementation: dst[i] ^= c·src[i]
// one element at a time through Field.Mul, no tables, no words.
func naiveMulAdd(f *Field, c Elem, dst, src []byte) {
	for i := range src {
		dst[i] ^= byte(f.Mul(c, Elem(src[i])))
	}
}

// TestMulKernelsMatchNaiveAllCoefficients pins the cached-table kernels
// byte-identical to the naive scalar reference for every one of the 256
// coefficients, across odd/tail lengths.
func TestMulKernelsMatchNaiveAllCoefficients(t *testing.T) {
	f := MustNew(8)
	rng := rand.New(rand.NewSource(99))
	for c := 0; c < 256; c++ {
		for _, n := range kernelLens {
			src := make([]byte, n)
			base := make([]byte, n)
			rng.Read(src)
			rng.Read(base)

			wantMul := make([]byte, n)
			for i := range src {
				wantMul[i] = byte(f.Mul(Elem(c), Elem(src[i])))
			}
			gotMul := make([]byte, n)
			f.MulSlice(Elem(c), gotMul, src)
			if !bytes.Equal(gotMul, wantMul) {
				t.Fatalf("MulSlice(c=%d, n=%d) diverges from naive reference", c, n)
			}

			wantAdd := append([]byte(nil), base...)
			naiveMulAdd(f, Elem(c), wantAdd, src)
			gotAdd := append([]byte(nil), base...)
			f.MulAddSlice(Elem(c), gotAdd, src)
			if !bytes.Equal(gotAdd, wantAdd) {
				t.Fatalf("MulAddSlice(c=%d, n=%d) diverges from naive reference", c, n)
			}
		}
	}
}

// TestXORSliceMatchesNaive covers the word body plus every tail length.
func TestXORSliceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range kernelLens {
		dst := make([]byte, n)
		src := make([]byte, n)
		rng.Read(dst)
		rng.Read(src)
		want := make([]byte, n)
		for i := range dst {
			want[i] = dst[i] ^ src[i]
		}
		XORSlice(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XORSlice(n=%d) diverges from naive reference", n)
		}
	}
}

// TestMulSliceAliased pins dst==src aliasing: MulSlice documents that dst
// and src may be the same slice (the in-place scaling the decoders use).
func TestMulSliceAliased(t *testing.T) {
	f := MustNew(8)
	rng := rand.New(rand.NewSource(101))
	for c := 0; c < 256; c++ {
		for _, n := range []int{1, 7, 8, 33, 257} {
			buf := make([]byte, n)
			rng.Read(buf)
			want := make([]byte, n)
			for i := range buf {
				want[i] = byte(f.Mul(Elem(c), Elem(buf[i])))
			}
			f.MulSlice(Elem(c), buf, buf)
			if !bytes.Equal(buf, want) {
				t.Fatalf("aliased MulSlice(c=%d, n=%d) diverges", c, n)
			}
		}
	}
}

// TestXORSliceAliasedSelfZeroes: x ^= x must zero the slice (identical
// aliasing is the only aliasing XORSlice admits).
func TestXORSliceAliasedSelfZeroes(t *testing.T) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	XORSlice(buf, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("buf[%d] = %d after self-XOR", i, b)
		}
	}
}

// TestMulAddSlice16MatchesNaive checks the word-lane GF(2^16) kernel
// against per-lane scalar math on even lengths including word tails.
func TestMulAddSlice16MatchesNaive(t *testing.T) {
	f := MustNew(16)
	rng := rand.New(rand.NewSource(102))
	for _, c := range []Elem{0, 1, 2, 3, 0x1234, 0xFFFF} {
		for _, n := range []int{0, 2, 4, 6, 8, 14, 16, 18, 254, 256, 1024} {
			src := make([]byte, n)
			dst := make([]byte, n)
			rng.Read(src)
			rng.Read(dst)
			want := append([]byte(nil), dst...)
			for i := 0; i+1 < n; i += 2 {
				a := Elem(src[i]) | Elem(src[i+1])<<8
				p := f.Mul(c, a)
				want[i] ^= byte(p)
				want[i+1] ^= byte(p >> 8)
			}
			f.MulAddSlice16(c, dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice16(c=%#x, n=%d) diverges from naive reference", c, n)
			}
		}
	}
}

// TestDotSlicesNoNonzeroCoefficients: an all-zero coefficient vector must
// still overwrite dst with zeros (DotSlices overwrites, never accumulates).
func TestDotSlicesNoNonzeroCoefficients(t *testing.T) {
	f := MustNew(8)
	dst := []byte{9, 9, 9}
	f.DotSlices([]Elem{0, 0}, dst, [][]byte{{1, 2, 3}, {4, 5, 6}})
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("dst[%d] = %d, want 0", i, b)
		}
	}
}

// TestMulRowConcurrentFirstUse races many goroutines into the lazy table
// build; under -race this pins the sync.Once publication.
func TestMulRowConcurrentFirstUse(t *testing.T) {
	f := MustNew(8)
	src := make([]byte, 512)
	for i := range src {
		src[i] = byte(i * 7)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, len(src))
			c := Elem(g*31 + 2)
			f.MulAddSlice(c, dst, src)
			want := make([]byte, len(src))
			naiveMulAdd(f, c, want, src)
			if !bytes.Equal(dst, want) {
				t.Errorf("concurrent MulAddSlice(c=%d) diverges", c)
			}
		}()
	}
	wg.Wait()
}

// TestDotSlicesMatchesNaive drives every dispatch tier (all-zero, single
// source, all-ones XOR, mixed pairwise-fused, odd source counts) against
// the scalar reference on odd/tail lengths.
func TestDotSlicesMatchesNaive(t *testing.T) {
	f := MustNew(8)
	rng := rand.New(rand.NewSource(103))
	cases := [][]Elem{
		{0, 0, 0},
		{7},
		{1, 1},
		{1, 1, 1, 1, 1},
		{2, 3},
		{2, 3, 4},
		{2, 3, 4, 5},
		{0, 9, 1, 0, 200, 17},
		{1, 0, 1, 1},
		{255, 254, 253, 3, 2, 1, 7, 9, 11, 13},
	}
	for _, coeffs := range cases {
		for _, n := range []int{0, 1, 7, 8, 9, 17, 64, 257, 1000} {
			srcs := make([][]byte, len(coeffs))
			for j := range srcs {
				srcs[j] = make([]byte, n)
				rng.Read(srcs[j])
			}
			want := make([]byte, n)
			for i := 0; i < n; i++ {
				var acc Elem
				for j, c := range coeffs {
					acc = f.Add(acc, f.Mul(c, Elem(srcs[j][i])))
				}
				want[i] = byte(acc)
			}
			dst := make([]byte, n)
			rng.Read(dst) // dirty: DotSlices must overwrite
			f.DotSlices(coeffs, dst, srcs)
			if !bytes.Equal(dst, want) {
				t.Fatalf("DotSlices(coeffs=%v, n=%d) diverges from naive reference", coeffs, n)
			}
		}
	}
}

// TestXORIntoSlicesAllArities pins the fixed-arity xor2..xor5 kernels
// and the wide-arity peeling fallback (xor5 + xor5in + XORSlice tail)
// byte-identical to a naive reference for 1..13 sources across every
// word/tail length split. Arity ≥ 6 is reachable from an all-ones
// DotSlices heavy-decode vector, and only this path runs xor5in.
func TestXORIntoSlicesAllArities(t *testing.T) {
	f := MustNew(8)
	rng := rand.New(rand.NewSource(107))
	for arity := 1; arity <= 13; arity++ {
		coeffs := make([]Elem, arity)
		for j := range coeffs {
			coeffs[j] = 1
		}
		for _, n := range kernelLens {
			srcs := make([][]byte, arity)
			for j := range srcs {
				srcs[j] = make([]byte, n)
				rng.Read(srcs[j])
			}
			want := make([]byte, n)
			for _, s := range srcs {
				for i := range want {
					want[i] ^= s[i]
				}
			}
			got := make([]byte, n)
			rng.Read(got) // stale contents must be overwritten
			f.DotSlices(coeffs, got, srcs)
			if !bytes.Equal(got, want) {
				t.Fatalf("arity %d len %d: all-ones DotSlices mismatch", arity, n)
			}
		}
	}
}
