// Package gf implements arithmetic over binary extension fields GF(2^m).
//
// The paper's codes (Appendix D) are defined over an extended binary field
// F_{2^m} with a primitive element α generating the multiplicative group.
// This package provides exactly that substrate: field construction from a
// primitive polynomial, element arithmetic via log/exp tables, and the bulk
// slice operations (XOR, scalar multiply, multiply-accumulate) that the
// Reed-Solomon and LRC encoders use on block payloads.
//
// All operations are allocation-free on the hot paths. Elements are stored
// in uint16 so a single implementation covers m up to 16; the common case
// used by the (10,6,5) Xorbas code is GF(2^8).
package gf

import (
	"fmt"
	"sync"
)

// Elem is a field element. Only the low m bits are meaningful for a field
// GF(2^m); constructors and table lookups enforce the range.
type Elem = uint16

// Default primitive polynomials, indexed by m. Each value encodes the
// polynomial's coefficients with the x^m term included, e.g. for m=8 the
// value 0x11d is x^8+x^4+x^3+x^2+1 (the polynomial used by most RS
// deployments, including HDFS-RAID's GaloisField).
var defaultPrimitive = map[uint]uint32{
	2:  0x7,     // x^2+x+1
	3:  0xb,     // x^3+x+1
	4:  0x13,    // x^4+x+1
	8:  0x11d,   // x^8+x^4+x^3+x^2+1
	16: 0x1100b, // x^16+x^12+x^3+x+1
}

// Field is an immutable GF(2^m) instance with precomputed log/exp tables.
// A Field is safe for concurrent use.
type Field struct {
	m      uint   // extension degree
	size   int    // 2^m
	mask   uint32 // 2^m - 1
	prim   uint32 // primitive polynomial (with x^m term)
	exp    []Elem // exp[i] = α^i, doubled length to skip mod in Mul
	log    []int32
	inv    []Elem // multiplicative inverses, inv[0] unused
	genera Elem   // the generator α (always 2 = x)

	// mulOnce guards the lazy build of mulTab, the full 256×256 GF(2^8)
	// multiplication table the slice kernels index by coefficient. 64 KiB,
	// built at most once per Field and shared by every concurrent encoder
	// (sync.Once publishes the fully built table, so readers never see a
	// partial row).
	mulOnce sync.Once
	mulTab  *[256][256]byte
}

// mulRow returns the 256-entry multiplication row for coefficient c,
// building the field-wide cached table on first use. Only valid for m == 8.
func (f *Field) mulRow(c Elem) *[256]byte {
	f.mulOnce.Do(func() {
		tab := new([256][256]byte)
		for cc := 1; cc < 256; cc++ {
			lc := int(f.log[cc])
			row := &tab[cc]
			for a := 1; a < 256; a++ {
				row[a] = byte(f.exp[lc+int(f.log[a])])
			}
		}
		f.mulTab = tab
	})
	return &f.mulTab[c]
}

// New constructs GF(2^m) for 2 <= m <= 16 using the package's default
// primitive polynomial for that m.
func New(m uint) (*Field, error) {
	p, ok := defaultPrimitive[m]
	if !ok {
		return nil, fmt.Errorf("gf: no default primitive polynomial for m=%d", m)
	}
	return NewWithPolynomial(m, p)
}

// MustNew is New but panics on error; for package-level field singletons.
func MustNew(m uint) *Field {
	f, err := New(m)
	if err != nil {
		panic(err)
	}
	return f
}

// NewWithPolynomial constructs GF(2^m) from an explicit primitive
// polynomial. The polynomial must include the x^m term and must be
// primitive: x must generate the full multiplicative group of order 2^m-1.
func NewWithPolynomial(m uint, prim uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf: m=%d out of supported range [2,16]", m)
	}
	if prim>>m != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x does not have degree %d", prim, m)
	}
	f := &Field{
		m:      m,
		size:   1 << m,
		mask:   (1 << m) - 1,
		prim:   prim,
		genera: 2,
	}
	order := f.size - 1
	f.exp = make([]Elem, 2*order)
	f.log = make([]int32, f.size)
	for i := range f.log {
		f.log[i] = -1
	}
	x := uint32(1)
	for i := 0; i < order; i++ {
		if f.log[x] != -1 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive for m=%d (cycle at %d)", prim, m, i)
		}
		f.exp[i] = Elem(x)
		f.log[x] = int32(i)
		x <<= 1
		if x>>m != 0 {
			x ^= prim
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x is not primitive for m=%d", prim, m)
	}
	copy(f.exp[order:], f.exp[:order])
	f.inv = make([]Elem, f.size)
	for a := 1; a < f.size; a++ {
		f.inv[a] = f.exp[order-int(f.log[a])]
	}
	return f, nil
}

// M returns the extension degree m.
func (f *Field) M() uint { return f.m }

// Size returns the number of field elements 2^m.
func (f *Field) Size() int { return f.size }

// Order returns the multiplicative group order 2^m - 1.
func (f *Field) Order() int { return f.size - 1 }

// Generator returns the primitive element α used to build the tables.
func (f *Field) Generator() Elem { return f.genera }

// Polynomial returns the primitive polynomial, including the x^m term.
func (f *Field) Polynomial() uint32 { return f.prim }

// Add returns a+b. In characteristic 2 addition and subtraction coincide
// (the paper exploits this when it turns "−" into "+" in Eq. (2)).
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Sub returns a−b, identical to Add in characteristic 2.
func (f *Field) Sub(a, b Elem) Elem { return a ^ b }

// Mul returns a·b.
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Div returns a/b. It panics if b == 0.
func (f *Field) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += f.Order()
	}
	return f.exp[d]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0; the
// paper's local-parity construction requires every coefficient c_i != 0
// precisely so that this inverse exists (Eq. (1)).
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.inv[a]
}

// Exp returns α^i for any integer i (negative allowed).
func (f *Field) Exp(i int) Elem {
	o := f.Order()
	i %= o
	if i < 0 {
		i += o
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a base α. It panics if a == 0.
func (f *Field) Log(a Elem) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(f.log[a])
}

// Pow returns a^e for e >= 0.
func (f *Field) Pow(a Elem, e int) Elem {
	if e < 0 {
		panic("gf: negative exponent")
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return f.Exp(int(f.log[a]) % f.Order() * e) // Exp reduces mod the order
}

// valid reports whether a is a valid element of this field.
func (f *Field) valid(a Elem) bool { return uint32(a) <= f.mask }
