package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSupportedDegrees(t *testing.T) {
	for _, m := range []uint{2, 3, 4, 8, 16} {
		f, err := New(m)
		if err != nil {
			t.Fatalf("New(%d): %v", m, err)
		}
		if f.Size() != 1<<m {
			t.Errorf("m=%d: Size=%d want %d", m, f.Size(), 1<<m)
		}
		if f.Order() != (1<<m)-1 {
			t.Errorf("m=%d: Order=%d want %d", m, f.Order(), (1<<m)-1)
		}
	}
}

func TestNewUnsupportedDegree(t *testing.T) {
	if _, err := New(5); err == nil {
		t.Fatal("New(5) should fail: no default polynomial")
	}
	if _, err := New(1); err == nil {
		t.Fatal("New(1) should fail")
	}
	if _, err := New(17); err == nil {
		t.Fatal("New(17) should fail")
	}
}

func TestNonPrimitivePolynomialRejected(t *testing.T) {
	// x^8+1 = (x+1)^8 is not even irreducible.
	if _, err := NewWithPolynomial(8, 0x101); err == nil {
		t.Fatal("expected rejection of non-primitive polynomial")
	}
	// Wrong degree encoding.
	if _, err := NewWithPolynomial(8, 0x11); err == nil {
		t.Fatal("expected rejection of wrong-degree polynomial")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	f := MustNew(8)
	for a := 1; a < f.Size(); a++ {
		if got := f.Exp(f.Log(Elem(a))); got != Elem(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
}

func TestGeneratorSpansField(t *testing.T) {
	f := MustNew(8)
	seen := make(map[Elem]bool)
	for i := 0; i < f.Order(); i++ {
		seen[f.Exp(i)] = true
	}
	if len(seen) != f.Order() {
		t.Fatalf("generator produced %d distinct elements, want %d", len(seen), f.Order())
	}
}

func TestExpNegativeIndex(t *testing.T) {
	f := MustNew(8)
	if f.Exp(-1) != f.Inv(f.Generator()) {
		t.Fatal("Exp(-1) should be the inverse of the generator")
	}
	if f.Exp(f.Order()) != 1 {
		t.Fatal("Exp(order) should wrap to 1")
	}
}

// Field axioms, property-based over GF(2^8) and GF(2^4).

func axiomConfig() *quick.Config {
	return &quick.Config{MaxCount: 2000}
}

func TestFieldAxioms(t *testing.T) {
	for _, m := range []uint{4, 8} {
		f := MustNew(m)
		mask := Elem(f.Size() - 1)
		cfg := axiomConfig()
		if err := quick.Check(func(a, b, c Elem) bool {
			a, b, c = a&mask, b&mask, c&mask
			// additive group, commutativity, associativity, identity
			if f.Add(a, b) != f.Add(b, a) {
				return false
			}
			if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
				return false
			}
			if f.Add(a, 0) != a || f.Add(a, a) != 0 {
				return false
			}
			// multiplicative commutativity/associativity/identity
			if f.Mul(a, b) != f.Mul(b, a) {
				return false
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				return false
			}
			if f.Mul(a, 1) != a {
				return false
			}
			// distributivity
			if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
				return false
			}
			return true
		}, cfg); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestInverses(t *testing.T) {
	for _, m := range []uint{4, 8, 16} {
		f := MustNew(m)
		for a := 1; a < f.Size(); a++ {
			if f.Mul(Elem(a), f.Inv(Elem(a))) != 1 {
				t.Fatalf("m=%d: a·a^-1 != 1 for a=%d", m, a)
			}
			if f.Div(Elem(a), Elem(a)) != 1 {
				t.Fatalf("m=%d: a/a != 1 for a=%d", m, a)
			}
		}
	}
}

func TestDivMulConsistency(t *testing.T) {
	f := MustNew(8)
	if err := quick.Check(func(a, b Elem) bool {
		a, b = a&0xff, b&0xff
		if b == 0 {
			return true
		}
		return f.Mul(f.Div(a, b), b) == a
	}, axiomConfig()); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	f := MustNew(8)
	for a := 0; a < f.Size(); a++ {
		want := Elem(1)
		for e := 0; e < 10; e++ {
			if got := f.Pow(Elem(a), e); got != want {
				t.Fatalf("Pow(%d,%d) = %d want %d", a, e, got, want)
			}
			want = f.Mul(want, Elem(a))
		}
	}
	if f.Pow(0, 3) != 0 || f.Pow(0, 0) != 1 {
		t.Fatal("0^e conventions violated")
	}
}

func TestZeroPanics(t *testing.T) {
	f := MustNew(8)
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { f.Inv(0) },
		"Div(1,0)": func() { f.Div(1, 0) },
		"Log(0)":   func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestXORSlice(t *testing.T) {
	a := []byte{1, 2, 3, 255}
	b := []byte{1, 2, 3, 255}
	XORSlice(a, b)
	for i, v := range a {
		if v != 0 {
			t.Fatalf("a[%d]=%d want 0", i, v)
		}
	}
}

func TestXORSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	XORSlice(make([]byte, 3), make([]byte, 4))
}

func TestMulSliceMatchesScalar(t *testing.T) {
	f := MustNew(8)
	src := make([]byte, 257)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, len(src))
	for _, c := range []Elem{0, 1, 2, 3, 0x53, 255} {
		f.MulSlice(c, dst, src)
		for i := range src {
			if want := byte(f.Mul(c, Elem(src[i]))); dst[i] != want {
				t.Fatalf("c=%d i=%d got %d want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	f := MustNew(8)
	src := make([]byte, 64)
	acc := make([]byte, 64)
	want := make([]byte, 64)
	r := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = byte(r.Intn(256))
		acc[i] = byte(r.Intn(256))
		want[i] = acc[i]
	}
	c := Elem(0xb7)
	f.MulAddSlice(c, acc, src)
	for i := range want {
		want[i] ^= byte(f.Mul(c, Elem(src[i])))
		if acc[i] != want[i] {
			t.Fatalf("i=%d got %d want %d", i, acc[i], want[i])
		}
	}
}

func TestDotSlices(t *testing.T) {
	f := MustNew(8)
	srcs := [][]byte{{1, 0, 7}, {2, 5, 0}, {3, 9, 1}}
	coeffs := []Elem{4, 1, 0}
	dst := make([]byte, 3)
	f.DotSlices(coeffs, dst, srcs)
	for i := 0; i < 3; i++ {
		want := f.Add(f.Mul(4, Elem(srcs[0][i])), Elem(srcs[1][i]))
		if dst[i] != byte(want) {
			t.Fatalf("i=%d got %d want %d", i, dst[i], want)
		}
	}
}

func TestMulSliceRequiresGF256(t *testing.T) {
	f := MustNew(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m != 8")
		}
	}()
	f.MulSlice(1, make([]byte, 1), make([]byte, 1))
}

// Property: MulAddSlice distributes like the field, i.e. applying
// coefficients c1 then c2 equals applying c1^c2... (addition of products).
func TestMulAddSliceLinearity(t *testing.T) {
	f := MustNew(8)
	if err := quick.Check(func(c1, c2 Elem, seed int64) bool {
		c1 &= 0xff
		c2 &= 0xff
		r := rand.New(rand.NewSource(seed))
		src := make([]byte, 32)
		for i := range src {
			src[i] = byte(r.Intn(256))
		}
		a := make([]byte, 32)
		b := make([]byte, 32)
		// a: two passes with c1 and c2
		f.MulAddSlice(c1, a, src)
		f.MulAddSlice(c2, a, src)
		// b: one pass with c1+c2
		f.MulAddSlice(f.Add(c1, c2), b, src)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	f := MustNew(8)
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MulAddSlice(0x1d, dst, src)
	}
}

func BenchmarkXORSlice(b *testing.B) {
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORSlice(dst, src)
	}
}
