package gf

// Lane-packed multi-column kernels: the encoder's core operation is P
// parity columns, each a dot product of the same K data slices with
// different coefficients. Done column-at-a-time that reads every data
// byte P times. A WideTables set packs, for each data source s, the P
// byte-products {c_{0,s}·a, …, c_{P-1,s}·a} of every possible byte a into
// one uint64 (one lane per column, P ≤ 8), so the whole parity set needs
// exactly ONE table lookup per data byte: 256 entries × 8 B = 2 KiB per
// source stays L1-resident, and a (10,6) Xorbas stripe encodes all six
// parities in a single pass over the data.

// WideLanes is the lane capacity of a WideTables set.
const WideLanes = 8

// wideChunk is the positions processed per accumulator flush: 8 KiB of
// uint64 accumulator that stays cache-hot against ~20 KiB of tables.
const wideChunk = 1024

// WideTables computes up to 8 linear-combination columns of K byte
// slices in one data pass. Immutable after construction; safe for
// concurrent use.
type WideTables struct {
	k     int
	lanes int
	tabs  [][256]uint64 // tabs[s][a], lane l = byte of column l for source s
}

// NewWideTables builds the packed tables for cols, a list of coefficient
// columns (one per output lane, each of length K over the data sources).
// Requires GF(2^8), 1 ≤ len(cols) ≤ WideLanes.
func (f *Field) NewWideTables(cols [][]Elem) *WideTables {
	if f.m != 8 {
		panic("gf: NewWideTables requires GF(2^8)")
	}
	if len(cols) == 0 || len(cols) > WideLanes {
		panic("gf: NewWideTables needs 1..8 columns")
	}
	k := len(cols[0])
	for _, col := range cols {
		if len(col) != k {
			panic("gf: NewWideTables column length mismatch")
		}
	}
	w := &WideTables{k: k, lanes: len(cols), tabs: make([][256]uint64, k)}
	for s := 0; s < k; s++ {
		for l, col := range cols {
			row := f.mulRow(col[s])
			sh := 8 * uint(l)
			for a := 0; a < 256; a++ {
				w.tabs[s][a] |= uint64(row[a]) << sh
			}
		}
	}
	return w
}

// K returns the number of data sources the tables expect.
func (w *WideTables) K() int { return w.k }

// Lanes returns the number of output columns.
func (w *WideTables) Lanes() int { return w.lanes }

// Dot overwrites dsts[l][i] with column l of the combination of the K
// source slices: one table lookup per source byte, all lanes at once.
// dsts must have Lanes() entries and srcs K() entries, all equal length.
func (w *WideTables) Dot(dsts, srcs [][]byte) {
	if len(srcs) != w.k {
		panic("gf: WideTables.Dot source count mismatch")
	}
	if len(dsts) != w.lanes {
		panic("gf: WideTables.Dot destination count mismatch")
	}
	n := 0
	if w.lanes > 0 {
		n = len(dsts[0])
	}
	var acc [wideChunk]uint64
	for base := 0; base < n; base += wideChunk {
		cl := n - base
		if cl > wideChunk {
			cl = wideChunk
		}
		a := acc[:cl]
		s := 0
		// First group overwrites the accumulator; 5-source groups keep
		// the lookups register-combined with one accumulator store each.
		for ; s+5 <= w.k; s += 5 {
			t0, t1, t2, t3, t4 := &w.tabs[s], &w.tabs[s+1], &w.tabs[s+2], &w.tabs[s+3], &w.tabs[s+4]
			s0 := srcs[s][base : base+cl]
			s1 := srcs[s+1][base : base+cl]
			s2 := srcs[s+2][base : base+cl]
			s3 := srcs[s+3][base : base+cl]
			s4 := srcs[s+4][base : base+cl]
			if s == 0 {
				for i := range a {
					a[i] = t0[s0[i]] ^ t1[s1[i]] ^ t2[s2[i]] ^ t3[s3[i]] ^ t4[s4[i]]
				}
			} else {
				for i := range a {
					a[i] ^= t0[s0[i]] ^ t1[s1[i]] ^ t2[s2[i]] ^ t3[s3[i]] ^ t4[s4[i]]
				}
			}
		}
		for ; s < w.k; s++ {
			t := &w.tabs[s]
			sv := srcs[s][base : base+cl]
			if s == 0 {
				for i := range a {
					a[i] = t[sv[i]]
				}
			} else {
				for i := range a {
					a[i] ^= t[sv[i]]
				}
			}
		}
		scatter(a, dsts, base)
	}
}

// scatter distributes the packed accumulator lanes into the destination
// slices, reading each accumulator word once. The 4- and 6-lane bodies
// are unrolled by hand — they are the RS(10,4) and Xorbas(10,6,5) hot
// paths.
func scatter(a []uint64, dsts [][]byte, base int) {
	cl := len(a)
	switch len(dsts) {
	case 4:
		d0 := dsts[0][base : base+cl]
		d1 := dsts[1][base : base+cl]
		d2 := dsts[2][base : base+cl]
		d3 := dsts[3][base : base+cl]
		for i, v := range a {
			d0[i] = byte(v)
			d1[i] = byte(v >> 8)
			d2[i] = byte(v >> 16)
			d3[i] = byte(v >> 24)
		}
	case 6:
		d0 := dsts[0][base : base+cl]
		d1 := dsts[1][base : base+cl]
		d2 := dsts[2][base : base+cl]
		d3 := dsts[3][base : base+cl]
		d4 := dsts[4][base : base+cl]
		d5 := dsts[5][base : base+cl]
		for i, v := range a {
			d0[i] = byte(v)
			d1[i] = byte(v >> 8)
			d2[i] = byte(v >> 16)
			d3[i] = byte(v >> 24)
			d4[i] = byte(v >> 32)
			d5[i] = byte(v >> 40)
		}
	default:
		for l := range dsts {
			d := dsts[l][base : base+cl]
			sh := 8 * uint(l)
			for i := range d {
				d[i] = byte(a[i] >> sh)
			}
		}
	}
}
