package chaos

import (
	"fmt"
	"sync"

	"repro/internal/netblock"
	"repro/internal/store"
)

// Cluster is a loopback TCP block fleet that implements Target: n block
// servers on ephemeral ports (one MemBackend "disk" each), spanned by a
// pooled netblock client wrapped in a FaultBackend. Kill is a real
// SIGKILL equivalent — the listener and every in-flight connection die
// mid-request — and Restart boots a fresh empty process on a new port,
// repointed via SetNode. Latency/error/corruption faults inject on the
// client side of the wire, so they compose with real TCP failures.
//
// The FaultBackend wrapper is what a Store should mount: it forwards
// the client's OwnedWriter, WireStats, HealthChecker and HealthStats
// interfaces, so breaker state, wire counters and monitor probes all
// see through the fault layer.
type Cluster struct {
	mu      sync.Mutex
	servers []*netblock.Server
	// backends holds each node's MemBackend "disk", so tests can count
	// blocks per node — the presence/orphan walks of the rebalance
	// acceptance scenario.
	backends []*store.MemBackend
	client   *netblock.Client
	fault    *store.FaultBackend
}

// NewCluster boots n servers and dials the client with opts (zero
// fields take netblock defaults; chaos tests usually shrink
// DialTimeout, RetryBackoff and the breaker cooldown so scenarios
// converge in test time).
func NewCluster(n int, opts netblock.Options) (*Cluster, error) {
	c := &Cluster{
		servers:  make([]*netblock.Server, n),
		backends: make([]*store.MemBackend, n),
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		be := store.NewMemBackend()
		srv, addr, err := netblock.StartLocal(be)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("chaos: start node %d: %w", i, err)
		}
		c.servers[i] = srv
		c.backends[i] = be
		addrs[i] = addr
	}
	client, err := netblock.Dial(addrs, opts)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.client = client
	c.fault = store.NewFaultBackend(client, 1)
	return c, nil
}

// Backend returns what a Store should mount as its Config.Backend.
func (c *Cluster) Backend() store.Backend { return c.fault }

// Client returns the underlying netblock client (breaker snapshots,
// wire counters).
func (c *Cluster) Client() *netblock.Client { return c.client }

// Fault returns the injection layer, for direct scripting outside a
// Runner.
func (c *Cluster) Fault() *store.FaultBackend { return c.fault }

// Kill implements Target: hard-stop the node's server. Idempotent —
// killing a dead node is a no-op, like a SIGKILL to a gone pid.
func (c *Cluster) Kill(node int) error {
	c.mu.Lock()
	if node < 0 || node >= len(c.servers) {
		c.mu.Unlock()
		return fmt.Errorf("chaos: node %d out of range", node)
	}
	srv := c.servers[node]
	c.servers[node] = nil
	c.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	return nil
}

// Restart implements Target: boot a fresh empty process for the node on
// a new port and repoint the client. The blocks the old process held
// are gone — exactly what the scrub-on-revival path exists to notice.
func (c *Cluster) Restart(node int) error {
	c.mu.Lock()
	if node < 0 || node >= len(c.servers) {
		c.mu.Unlock()
		return fmt.Errorf("chaos: node %d out of range", node)
	}
	old := c.servers[node]
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	be := store.NewMemBackend()
	srv, addr, err := netblock.StartLocal(be)
	if err != nil {
		return fmt.Errorf("chaos: restart node %d: %w", node, err)
	}
	c.mu.Lock()
	c.servers[node] = srv
	c.backends[node] = be
	c.mu.Unlock()
	return c.client.SetNode(node, addr)
}

// StartNode boots one more block-server process (fresh empty disk, own
// port) and returns its address without registering it anywhere: the
// caller hands the address to Store.AddNode, which registers it with
// the netblock client through the NodeAdder chain — the same join path
// an operator drives with `xorbasctl node add`. Kill/Restart/BlockCount
// address the new node by the id Store.AddNode returns.
func (c *Cluster) StartNode() (string, error) {
	be := store.NewMemBackend()
	srv, addr, err := netblock.StartLocal(be)
	if err != nil {
		return "", fmt.Errorf("chaos: start node: %w", err)
	}
	c.mu.Lock()
	c.servers = append(c.servers, srv)
	c.backends = append(c.backends, be)
	c.mu.Unlock()
	return addr, nil
}

// BlockCount reports how many blocks a node's disk holds — what a
// presence walk over the node's directory would find. Counting works on
// dead nodes too (the disk outlives the process), so tests can assert a
// drained node's disk really emptied before its server went away.
func (c *Cluster) BlockCount(node int) int {
	c.mu.Lock()
	be := c.backends[node]
	c.mu.Unlock()
	return be.BlockCount(node)
}

// SetFault implements Target.
func (c *Cluster) SetFault(node int, f store.Fault) error {
	c.fault.SetFault(node, f)
	return nil
}

// Close stops every server and drops the client's connections.
func (c *Cluster) Close() {
	if c.client != nil {
		c.client.Close()
	}
	c.mu.Lock()
	servers := append([]*netblock.Server(nil), c.servers...)
	c.mu.Unlock()
	for _, srv := range servers {
		if srv != nil {
			srv.Close()
		}
	}
}
