// Package chaos runs declarative fault schedules against a live block
// cluster — the harness behind the self-healing acceptance tests and
// the examples/selfheal demo. A Schedule is data ("kill node 3 at
// t=2s, +50ms latency on node 4 at t=1s, heal at t=6s"), a Target
// knows how to hurt a specific cluster, and the Runner walks the
// schedule against wall time. Keeping the scenario declarative means
// the same script can drive a loopback TCP fleet in a unit test, the
// selfheal demo, or (through another Target) a real deployment.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/store"
)

// Op is one kind of injected trouble.
type Op string

const (
	// OpKill hard-stops the node's process (SIGKILL: listener and all
	// in-flight connections die).
	OpKill Op = "kill"
	// OpRestart boots a fresh, empty process for the node — a crashed
	// machine rejoining with its RAM (and for a memory-backed node, its
	// blocks) gone.
	OpRestart Op = "restart"
	// OpFault installs the step's Fault profile on the node: latency for
	// a straggler, ErrRate 1 for a partition, CorruptRate for bit-rot.
	OpFault Op = "fault"
	// OpHeal clears the node's fault profile.
	OpHeal Op = "heal"
)

// Step is one scheduled action: at offset At from Run's start, do Op to
// Node.
type Step struct {
	At    time.Duration
	Node  int
	Op    Op
	Fault store.Fault // OpFault's profile; ignored otherwise
}

// Schedule is a fault script. Steps may be listed in any order; the
// runner sorts by offset (stable, so same-instant steps keep their
// listed order).
type Schedule []Step

// Target is a cluster the runner can hurt. Implementations must be
// safe for concurrent use with whatever traffic the test keeps running.
type Target interface {
	Kill(node int) error
	Restart(node int) error
	SetFault(node int, f store.Fault) error
}

// Runner executes one schedule against one target.
type Runner struct {
	target Target
	sched  Schedule
	// Logf, when non-nil, narrates each step as it fires (tests pass
	// t.Logf; the demo passes log.Printf).
	Logf func(format string, args ...any)
}

// NewRunner builds a runner; the schedule is copied and sorted.
func NewRunner(target Target, sched Schedule) *Runner {
	s := append(Schedule(nil), sched...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return &Runner{target: target, sched: s}
}

// Run walks the schedule against wall time from now: each step fires at
// its offset (late steps fire immediately in order). Run returns when
// the schedule is exhausted or ctx is done, joining any step errors —
// a failed injection means the scenario didn't happen, which a chaos
// test must treat as its own failure, not as survival.
func (r *Runner) Run(ctx context.Context) error {
	start := time.Now()
	var errs []error
	for _, st := range r.sched {
		if wait := time.Until(start.Add(st.At)); wait > 0 {
			select {
			case <-ctx.Done():
				return errors.Join(append(errs, ctx.Err())...)
			case <-time.After(wait):
			}
		}
		if r.Logf != nil {
			r.Logf("chaos t=%s: %s node %d", st.At, st.Op, st.Node)
		}
		var err error
		switch st.Op {
		case OpKill:
			err = r.target.Kill(st.Node)
		case OpRestart:
			err = r.target.Restart(st.Node)
		case OpFault:
			err = r.target.SetFault(st.Node, st.Fault)
		case OpHeal:
			err = r.target.SetFault(st.Node, store.Fault{})
		default:
			err = fmt.Errorf("chaos: unknown op %q", st.Op)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("chaos t=%s %s node %d: %w", st.At, st.Op, st.Node, err))
		}
	}
	return errors.Join(errs...)
}
