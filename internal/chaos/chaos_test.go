package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/netblock"
	"repro/internal/pattern"
	"repro/internal/store"
)

// recordingTarget captures every step the runner fires, in order.
type recordingTarget struct {
	mu  sync.Mutex
	ops []string
}

func (r *recordingTarget) add(s string) error {
	r.mu.Lock()
	r.ops = append(r.ops, s)
	r.mu.Unlock()
	return nil
}

func (r *recordingTarget) Kill(node int) error    { return r.add(fmt.Sprintf("kill %d", node)) }
func (r *recordingTarget) Restart(node int) error { return r.add(fmt.Sprintf("restart %d", node)) }
func (r *recordingTarget) SetFault(node int, f store.Fault) error {
	if f == (store.Fault{}) {
		return r.add(fmt.Sprintf("heal %d", node))
	}
	return r.add(fmt.Sprintf("fault %d", node))
}

// TestRunnerSchedule checks ordering and dispatch: steps listed out of
// order fire sorted by offset, OpHeal maps to a zero-fault SetFault,
// and an unknown op surfaces as an error without stopping the walk.
func TestRunnerSchedule(t *testing.T) {
	rec := &recordingTarget{}
	r := NewRunner(rec, Schedule{
		{At: 30 * time.Millisecond, Node: 2, Op: OpHeal},
		{At: 10 * time.Millisecond, Node: 1, Op: OpKill},
		{At: 20 * time.Millisecond, Node: 2, Op: OpFault, Fault: store.Fault{ErrRate: 1}},
		{At: 40 * time.Millisecond, Node: 1, Op: OpRestart},
	})
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"kill 1", "fault 2", "heal 2", "restart 1"}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.ops) != len(want) {
		t.Fatalf("ops = %v, want %v", rec.ops, want)
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", rec.ops, want)
		}
	}
}

func TestRunnerUnknownOp(t *testing.T) {
	rec := &recordingTarget{}
	r := NewRunner(rec, Schedule{{Op: Op("melt"), Node: 1}})
	if err := r.Run(context.Background()); err == nil {
		t.Fatal("unknown op did not error")
	}
}

func TestRunnerContextCancel(t *testing.T) {
	rec := &recordingTarget{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(rec, Schedule{{At: time.Hour, Node: 0, Op: OpKill}})
	start := time.Now()
	if err := r.Run(ctx); err == nil {
		t.Fatal("canceled run did not error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("canceled run kept sleeping")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.ops) != 0 {
		t.Fatalf("canceled run fired %v", rec.ops)
	}
}

func patternBytes(t *testing.T, size int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(pattern.NewReader(int64(size))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSelfHealingUnderTraffic is the acceptance scenario end to end:
// a real loopback TCP fleet serves a store through the HTTP gateway
// under concurrent PUT/GET traffic while a chaos schedule SIGKILLs a
// node. The monitor must mark it dead with no operator action, repair
// must drain, the restarted (empty) process must be re-marked alive —
// and every GET during the whole window must come back byte-exact or
// as a clean typed error, never corrupt or truncated.
func TestSelfHealingUnderTraffic(t *testing.T) {
	const nodes = 20
	cl, err := NewCluster(nodes, netblock.Options{
		DialTimeout:        250 * time.Millisecond,
		Timeout:            2 * time.Second,
		Retries:            1,
		RetryBackoff:       2 * time.Millisecond,
		BreakerThreshold:   3,
		BreakerCooldown:    50 * time.Millisecond,
		BreakerMaxCooldown: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	s, err := store.New(store.Config{
		Backend:       cl.Backend(),
		Nodes:         nodes,
		BlockSize:     4 << 10,
		HedgeQuantile: 0.9,
		HedgeMinDelay: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rm := store.NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := store.NewScrubber(s, rm, time.Hour)
	mon := store.NewHealthMonitor(s, rm, sc, store.MonitorConfig{
		Interval:        20 * time.Millisecond,
		FailThreshold:   3,
		ReviveThreshold: 2,
	})
	mon.Start()
	defer mon.Stop()

	g, err := gateway.New(gateway.Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	// Seed objects through the front door.
	const objSize = 48 << 10
	want := patternBytes(t, objSize)
	seeded := []string{"a", "b", "c", "d", "e", "f"}
	for _, k := range seeded {
		if code := httpPut(t, srv.URL+"/t/acme/"+k, want); code != 200 {
			t.Fatalf("seed put %q = %d", k, code)
		}
	}

	// Live traffic for the whole scenario: readers verify every GET is
	// byte-exact or a clean typed error; writers keep appending new
	// objects (shed or store-failed writes are fine — acked ones must
	// read back exact, checked at the end).
	stop := make(chan struct{})
	var badReads atomic.Int64
	var firstBad atomic.Value
	var acked sync.Map // name -> true for 200-acked writer puts
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cli := &http.Client{Timeout: 30 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := seeded[(r+i)%len(seeded)]
				resp, err := cli.Get(srv.URL + "/t/acme/" + k)
				if err != nil {
					continue // transport-level trouble is the client's, not a corruption
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
					if rerr != nil {
						continue
					}
					if !bytes.Equal(body, want) {
						badReads.Add(1)
						firstBad.CompareAndSwap(nil, fmt.Sprintf("GET %s: 200 with %d wrong/truncated bytes", k, len(body)))
					}
				case resp.StatusCode == 503 || resp.StatusCode == 500:
					// Clean typed errors: degraded service. Never silent
					// corruption — those are caught above.
				default:
					badReads.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("GET %s: unexpected status %d", k, resp.StatusCode))
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("w%03d", i)
			if code := httpPut(t, srv.URL+"/t/acme/"+name, want); code == 200 {
				acked.Store(name, true)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Phase 1: SIGKILL node 3 under traffic; the monitor must confirm
	// the death and repair must drain, all with zero operator action.
	const victim = 3
	if err := NewRunner(cl, Schedule{
		{At: 100 * time.Millisecond, Node: victim, Op: OpKill},
	}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "auto-death", func() bool { return !s.Alive(victim) })
	rm.Drain()
	m := s.Metrics()
	if m.AutoDeaths < 1 {
		t.Fatalf("AutoDeaths = %d, want >= 1", m.AutoDeaths)
	}
	if m.RepairedBlocks == 0 {
		t.Fatal("no blocks repaired after auto-death")
	}

	// Phase 2: restart the node (fresh empty process on a new port);
	// the monitor must re-mark it alive, again with no operator action.
	if err := NewRunner(cl, Schedule{
		{At: 50 * time.Millisecond, Node: victim, Op: OpRestart},
	}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "auto-revival", func() bool { return s.Alive(victim) })
	if got := s.Metrics().AutoRevivals; got < 1 {
		t.Fatalf("AutoRevivals = %d, want >= 1", got)
	}

	// Let traffic run a beat on the healed cluster, then stop it.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := badReads.Load(); n > 0 {
		t.Fatalf("%d corrupt/unclean reads during chaos; first: %v", n, firstBad.Load())
	}

	// Convergence: a full scrub finds nothing to fix, and every acked
	// write reads back byte-exact.
	rm.Drain()
	rep := sc.ScrubOnce()
	rm.Drain()
	if rep2 := sc.ScrubOnce(); rep2.Missing != 0 || rep2.Corrupt != 0 {
		t.Fatalf("cluster did not converge: second scrub found %+v (first %+v)", rep2, rep)
	}
	ackedCount := 0
	acked.Range(func(k, _ any) bool {
		ackedCount++
		name := k.(string)
		var buf bytes.Buffer
		if _, err := s.GetWriter("acme/"+name, &buf); err != nil {
			t.Fatalf("acked write %q unreadable: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("acked write %q read back wrong bytes", name)
		}
		return true
	})
	t.Logf("converged: %d acked writer puts verified, metrics %+v", ackedCount, s.Metrics())
}

// httpPut PUTs body and returns the status code (0 on transport error).
func httpPut(t *testing.T, url string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
