package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/netblock"
	"repro/internal/store"
)

// TestRebalanceUnderChurn is the elastic-membership acceptance scenario:
// a real loopback TCP fleet serves a store through the HTTP gateway
// under live PUT/GET traffic while a node is decommissioned and a paced
// background rebalance drains it — and, mid-drain, another node is
// SIGKILLed and a brand-new node joins. Every read during the whole
// window must come back byte-exact or as a clean typed error; the drain
// must complete (the victim retires to dead with an empty disk); the
// joiner must fill and promote to active; and after convergence a
// presence walk finds zero orphans — every live disk holds exactly the
// blocks the manifests say it does.
func TestRebalanceUnderChurn(t *testing.T) {
	const nodes = 20
	cl, err := NewCluster(nodes, netblock.Options{
		DialTimeout:        250 * time.Millisecond,
		Timeout:            2 * time.Second,
		Retries:            1,
		RetryBackoff:       2 * time.Millisecond,
		BreakerThreshold:   3,
		BreakerCooldown:    50 * time.Millisecond,
		BreakerMaxCooldown: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	s, err := store.New(store.Config{
		Backend:   cl.Backend(),
		Nodes:     nodes,
		BlockSize: 4 << 10,
		// Pace the migration hard enough that the drain is still in
		// flight when the kill and the join land on top of it.
		RebalanceRateBytes: 256 << 10,
		HedgeQuantile:      0.9,
		HedgeMinDelay:      25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rm := store.NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := store.NewScrubber(s, rm, time.Hour)
	mon := store.NewHealthMonitor(s, rm, sc, store.MonitorConfig{
		Interval:        20 * time.Millisecond,
		FailThreshold:   3,
		ReviveThreshold: 2,
	})
	mon.Start()
	defer mon.Stop()
	reb := store.NewRebalancer(s, rm, 50*time.Millisecond)
	reb.Start()
	defer reb.Stop()

	g, err := gateway.New(gateway.Config{Store: s})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	// Seed objects through the front door.
	const objSize = 48 << 10
	want := patternBytes(t, objSize)
	seeded := []string{"a", "b", "c", "d", "e", "f"}
	for _, k := range seeded {
		if code := httpPut(t, srv.URL+"/t/acme/"+k, want); code != 200 {
			t.Fatalf("seed put %q = %d", k, code)
		}
	}

	// Live traffic for the whole scenario, same contract as the
	// self-healing test: reads byte-exact or cleanly typed, acked
	// writes verified at the end.
	stop := make(chan struct{})
	var badReads atomic.Int64
	var firstBad atomic.Value
	var acked sync.Map
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cli := &http.Client{Timeout: 30 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := seeded[(r+i)%len(seeded)]
				resp, err := cli.Get(srv.URL + "/t/acme/" + k)
				if err != nil {
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
					if rerr != nil {
						continue
					}
					if !bytes.Equal(body, want) {
						badReads.Add(1)
						firstBad.CompareAndSwap(nil, fmt.Sprintf("GET %s: 200 with %d wrong/truncated bytes", k, len(body)))
					}
				case resp.StatusCode == 503 || resp.StatusCode == 500:
					// Clean typed degradation.
				default:
					badReads.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("GET %s: unexpected status %d", k, resp.StatusCode))
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("w%03d", i)
			if code := httpPut(t, srv.URL+"/t/acme/"+name, want); code == 200 {
				acked.Store(name, true)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Decommission under traffic: the paced background rebalance starts
	// draining the victim.
	const victim = 5
	if err := s.Decommission(victim); err != nil {
		t.Fatal(err)
	}

	// Mid-drain churn: SIGKILL an unrelated node, then grow the cluster
	// by one — the exact double-event the rebalancer must absorb.
	const killed = 11
	if err := NewRunner(cl, Schedule{
		{At: 100 * time.Millisecond, Node: killed, Op: OpKill},
	}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	addr, err := cl.StartNode()
	if err != nil {
		t.Fatal(err)
	}
	joiner, err := s.AddNode(addr)
	if err != nil {
		t.Fatal(err)
	}
	if joiner != nodes {
		t.Fatalf("joiner id = %d, want %d", joiner, nodes)
	}

	// The monitor must confirm the kill on its own; the drain and the
	// fill must both complete despite it.
	waitFor(t, 15*time.Second, "auto-death of killed node", func() bool { return !s.Alive(killed) })
	waitFor(t, 60*time.Second, "drain completion", func() bool {
		return s.MemberState(victim) == store.NodeDead
	})
	waitFor(t, 60*time.Second, "joiner promotion", func() bool {
		return s.MemberState(joiner) == store.NodeActive
	})

	// Traffic ran across the whole churn window; now land it.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := badReads.Load(); n > 0 {
		t.Fatalf("%d corrupt/unclean reads during churn; first: %v", n, firstBad.Load())
	}

	// Convergence: repairs drained, scrub clean, and nothing left to
	// migrate.
	rm.Drain()
	sc.ScrubOnce()
	rm.Drain()
	if rep := sc.ScrubOnce(); rep.Missing != 0 || rep.Corrupt != 0 {
		t.Fatalf("cluster did not converge: scrub found %+v", rep)
	}
	ms := s.MembershipStatus()
	if ms.Draining != 0 || ms.DrainingBlocks != 0 {
		t.Fatalf("drain incomplete after convergence: %+v", ms)
	}
	if ms.RebalancedBlocks == 0 {
		t.Fatal("no blocks were migrated — the rebalance never ran")
	}

	// Zero orphans: every live disk holds exactly the blocks the
	// manifests place there, the drained disk emptied before its server
	// retired, and no manifest still references a gone node.
	counts := s.BlocksPerNode()
	for n := 0; n < s.Nodes(); n++ {
		if !s.Alive(n) {
			continue
		}
		if got := cl.BlockCount(n); got != counts[n] {
			t.Errorf("node %d: disk holds %d blocks, manifests place %d (orphan or loss)", n, got, counts[n])
		}
	}
	if got := cl.BlockCount(victim); got != 0 {
		t.Errorf("drained node %d retired with %d blocks still on disk", victim, got)
	}
	if counts[victim] != 0 {
		t.Errorf("manifests still place %d blocks on drained node %d", counts[victim], victim)
	}
	if counts[killed] != 0 {
		t.Errorf("manifests still place %d blocks on killed node %d", counts[killed], killed)
	}
	if counts[joiner] == 0 {
		t.Error("joiner promoted to active with an empty disk — the fill never happened")
	}

	// Every acked write reads back byte-exact on the post-churn topology.
	ackedCount := 0
	acked.Range(func(k, _ any) bool {
		ackedCount++
		name := k.(string)
		var buf bytes.Buffer
		if _, err := s.GetWriter("acme/"+name, &buf); err != nil {
			t.Fatalf("acked write %q unreadable: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("acked write %q read back wrong bytes", name)
		}
		return true
	})
	t.Logf("converged: %d acked puts verified, joiner holds %d blocks, status %+v",
		ackedCount, counts[joiner], ms)
}
