package hdfs

import (
	"repro/internal/cluster"
)

// Task is a schedulable unit of work (a MapReduce map task). Run is
// invoked with the node the task landed on and must call finish exactly
// once when the task's work (including any transfers it started) is done.
type Task struct {
	// PreferredNode requests data-local scheduling (−1: anywhere).
	PreferredNode int
	Run           func(node int, finish func())
}

// Job is a set of tasks sharing fair-scheduler treatment, mirroring
// Hadoop jobs: WordCount jobs and BlockFixer repair jobs ride the same
// tracker ("repair-jobs … can run along regular jobs under a single
// control mechanism", §3).
type Job struct {
	Name string
	// MaxParallel caps the job's concurrently running tasks (0 =
	// unlimited). The BlockFixer uses this to bound repair parallelism.
	MaxParallel int

	pending     []*Task
	running     int
	completed   int
	total       int
	SubmittedAt float64
	FinishedAt  float64
	// OnFinish fires when the last task completes.
	OnFinish func(*Job)
}

// AddTask appends a task; only valid before Submit.
func (j *Job) AddTask(t *Task) {
	j.pending = append(j.pending, t)
	j.total++
}

// Done reports whether all tasks completed.
func (j *Job) Done() bool { return j.total > 0 && j.completed == j.total }

// Completed returns the number of finished tasks.
func (j *Job) Completed() int { return j.completed }

// Total returns the task count.
func (j *Job) Total() int { return j.total }

// JobTracker is a slot-based fair scheduler: each live node offers a
// fixed number of map slots and free slots are handed to jobs round-robin
// so "computational time is fairly shared among jobs" (§5.2.4, Hadoop's
// FairScheduler).
type JobTracker struct {
	cl           *cluster.Cluster
	slotsPerNode int
	used         []int
	jobs         []*Job
	rr           int
}

// NewJobTracker creates a tracker with the given map slots per node.
func NewJobTracker(cl *cluster.Cluster, slotsPerNode int) *JobTracker {
	if slotsPerNode <= 0 {
		slotsPerNode = 2
	}
	return &JobTracker{cl: cl, slotsPerNode: slotsPerNode, used: make([]int, cl.Nodes())}
}

// Submit queues a job and schedules immediately.
func (jt *JobTracker) Submit(j *Job) {
	j.SubmittedAt = jt.cl.Eng.Now()
	jt.jobs = append(jt.jobs, j)
	jt.schedule()
}

// ActiveJobs returns jobs that still have pending or running tasks.
func (jt *JobTracker) ActiveJobs() int {
	n := 0
	for _, j := range jt.jobs {
		if !j.Done() {
			n++
		}
	}
	return n
}

// freeSlotOn reports whether node n can accept a task.
func (jt *JobTracker) freeSlotOn(n int) bool {
	return jt.cl.Alive(n) && jt.used[n] < jt.slotsPerNode
}

// pickNode chooses a node for a task: the preferred node when it has a
// free slot, then a node in the preferred node's rack (Hadoop's
// rack-locality tier), then the live node with the most free slots
// (stable tie-break by id for determinism).
func (jt *JobTracker) pickNode(preferred int) int {
	if preferred >= 0 && jt.freeSlotOn(preferred) {
		return preferred
	}
	if preferred >= 0 {
		rack := jt.cl.Rack(preferred)
		best, bestFree := -1, 0
		for n := 0; n < jt.cl.Nodes(); n++ {
			if jt.cl.Alive(n) && jt.cl.Rack(n) == rack {
				if free := jt.slotsPerNode - jt.used[n]; free > bestFree {
					best, bestFree = n, free
				}
			}
		}
		if best >= 0 {
			return best
		}
	}
	best, bestFree := -1, 0
	for n := 0; n < jt.cl.Nodes(); n++ {
		if !jt.cl.Alive(n) {
			continue
		}
		free := jt.slotsPerNode - jt.used[n]
		if free > bestFree {
			best, bestFree = n, free
		}
	}
	return best
}

// schedulable reports whether a job can launch another task now.
func schedulable(j *Job) bool {
	if len(j.pending) == 0 {
		return false
	}
	return j.MaxParallel == 0 || j.running < j.MaxParallel
}

// schedule assigns pending tasks to free slots, round-robin across jobs.
func (jt *JobTracker) schedule() {
	for {
		// Find the next schedulable job in round-robin order.
		var job *Job
		for i := 0; i < len(jt.jobs); i++ {
			cand := jt.jobs[(jt.rr+i)%len(jt.jobs)]
			if schedulable(cand) {
				job = cand
				jt.rr = (jt.rr + i + 1) % len(jt.jobs)
				break
			}
		}
		if job == nil {
			return
		}
		task := job.pending[0]
		node := jt.pickNode(task.PreferredNode)
		if node < 0 {
			return // no free slots anywhere
		}
		job.pending = job.pending[1:]
		job.running++
		jt.used[node]++
		finished := false
		finish := func() {
			if finished {
				return
			}
			finished = true
			jt.used[node]--
			job.running--
			job.completed++
			if job.Done() {
				job.FinishedAt = jt.cl.Eng.Now()
				if job.OnFinish != nil {
					job.OnFinish(job)
				}
			}
			jt.schedule()
		}
		task.Run(node, finish)
	}
}
