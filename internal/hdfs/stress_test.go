package hdfs

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Randomized failure injection: a long sequence of kills, restarts,
// block corruptions and drains, with invariants checked after every
// quiescent point. The invariants are the filesystem's safety contract:
//
//  1. no stripe references a live block on a dead node;
//  2. every block is either available, or pending repair, or the stripe
//     genuinely lost more than d−1 blocks (accounted as unrecoverable);
//  3. counters are monotone and mutually consistent.
func TestStressRandomFailureInjection(t *testing.T) {
	for _, scheme := range []core.Scheme{core.NewXorbas(), core.NewRS104()} {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			eng, cl := testCluster(t, 40)
			fs := testFS(t, cl, scheme)
			for i := 0; i < 30; i++ {
				if _, err := fs.AddFile("f", 10); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(77))
			prev := fs.Snapshot()
			down := map[int]bool{}
			for step := 0; step < 60; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // kill a live node (keep enough for placement)
					live := cl.LiveNodes()
					if len(live) > 20 {
						n := live[rng.Intn(len(live))]
						fs.KillNode(n)
						down[n] = true
					}
				case op < 7: // restart a down node (transient resolution)
					for n := range down {
						fs.RestartNode(n)
						delete(down, n)
						break
					}
				default: // corrupt/lose one random block
					stripes := fs.Stripes()
					s := stripes[rng.Intn(len(stripes))]
					fs.LoseBlock(s, rng.Intn(len(s.Node)))
				}
				// Let a random amount of simulated time pass.
				eng.RunUntil(eng.Now() + float64(10+rng.Intn(600)))
			}
			eng.Run() // full drain

			snap := fs.Snapshot()
			if snap.BlocksRepaired < prev.BlocksRepaired {
				t.Fatal("repair counter went backwards")
			}
			if snap.LightRepairs+snap.HeavyRepairs != snap.BlocksRepaired {
				t.Fatalf("light %d + heavy %d != repaired %d",
					snap.LightRepairs, snap.HeavyRepairs, snap.BlocksRepaired)
			}
			for si, s := range fs.Stripes() {
				lostCount := 0
				for pos, nd := range s.Node {
					if nd < 0 {
						continue
					}
					if !s.Lost[pos] && !cl.Alive(nd) {
						t.Fatalf("stripe %d pos %d: live block on dead node %d", si, pos, nd)
					}
					if s.Lost[pos] {
						lostCount++
					}
				}
				// After the drain, survivors of recoverable stripes are
				// fully repaired; stripes beyond tolerance keep losses and
				// the unrecoverable counter must have fired.
				if lostCount > 0 && snap.Unrecoverable == 0 {
					t.Fatalf("stripe %d still has %d lost blocks but nothing was marked unrecoverable", si, lostCount)
				}
			}
		})
	}
}

// Determinism under the stress sequence: identical seeds give identical
// final counters.
func TestStressDeterminism(t *testing.T) {
	run := func() Counters {
		eng, cl := testCluster(t, 30)
		fs := testFS(t, cl, core.NewXorbas())
		for i := 0; i < 15; i++ {
			if _, err := fs.AddFile("f", 10); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(5))
		for step := 0; step < 20; step++ {
			live := cl.LiveNodes()
			if len(live) > 18 {
				fs.KillNode(live[rng.Intn(len(live))])
			}
			eng.RunUntil(eng.Now() + float64(50+rng.Intn(300)))
		}
		eng.Run()
		return fs.Snapshot()
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}
