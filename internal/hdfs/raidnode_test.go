package hdfs

import (
	"math"
	"testing"

	"repro/internal/core"
)

// The §3 lifecycle: a 3-replicated file is RAIDed into LRC stripes; the
// replication surplus is released (storage drops from 3.0× to 1.6× of
// logical) and the encoder traffic is exactly k reads + parity writes.
func TestRaidFileLifecycle(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	stripes, err := fs.AddReplicatedFile("warm", 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.TotalBlocksStored(); got != 60 {
		t.Fatalf("replicated blocks %d want 60", got)
	}
	before := fs.Snapshot()
	var coded []*Stripe
	if err := fs.RaidFile("warm", stripes, func(cs []*Stripe) { coded = cs }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(coded) != 2 {
		t.Fatalf("coded stripes %d want 2", len(coded))
	}
	// 20 data blocks → 2 Xorbas stripes → 32 stored blocks.
	if got := fs.TotalBlocksStored(); got != 32 {
		t.Fatalf("post-raid blocks %d want 32", got)
	}
	d := fs.Delta(before)
	// Encoder reads each data block once: 20 blocks.
	wantRead := 20 * fs.Cfg.BlockSizeBytes
	if math.Abs(d.HDFSBytesRead-wantRead) > 1 {
		t.Fatalf("encoder read %.0f want %.0f", d.HDFSBytesRead, wantRead)
	}
	// Data blocks stayed on their primary nodes: lowering replication
	// moved no data.
	for i, s := range coded {
		for pos := 0; pos < s.DataCount; pos++ {
			if s.Node[pos] != stripes[i*10+pos].Node[0] {
				t.Fatalf("stripe %d data position %d moved", i, pos)
			}
		}
	}
	// The coded file must be repairable: kill a node and drain.
	victim := coded[0].Node[3]
	b2 := fs.Snapshot()
	fs.KillNode(victim)
	eng.Run()
	if fs.Delta(b2).Unrecoverable > 0 {
		t.Fatal("raided file lost data on single-node failure")
	}
}

func TestRaidFileValidation(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	if err := fs.RaidFile("x", nil, nil); err == nil {
		t.Fatal("empty stripe list accepted")
	}
	coded, _ := fs.AddFile("already", 10)
	if err := fs.RaidFile("already", coded, nil); err == nil {
		t.Fatal("raiding a coded file accepted")
	}
	rep, _ := fs.AddReplicatedFile("r", 3, 3)
	fs.LoseBlock(rep[0], 0)
	if err := fs.RaidFile("r", rep, nil); err == nil {
		t.Fatal("raiding with lost primary accepted")
	}
	eng.Run()
}

// §3.1 backwards compatibility in the simulator: an RS file migrates to
// LRC by adding only local parities — 2 writes and 10 group-data reads
// per full stripe, with data and RS parities untouched.
func TestMigrateToLRC(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewRS104())
	rsStripes, err := fs.AddFile("legacy", 10)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]int(nil), rsStripes[0].Node...)
	lrcScheme := core.NewXorbas()
	before := fs.Snapshot()
	var out []*Stripe
	if err := fs.MigrateToLRC("legacy", rsStripes, lrcScheme, func(m []*Stripe) { out = m }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(out) != 1 {
		t.Fatalf("migrated stripes %d want 1", len(out))
	}
	s := out[0]
	if s.Scheme != lrcScheme {
		t.Fatal("scheme not switched")
	}
	// RS positions unchanged; two new local parities placed.
	for pos := 0; pos < 14; pos++ {
		if s.Node[pos] != orig[pos] {
			t.Fatalf("RS position %d moved during migration", pos)
		}
	}
	if s.Node[14] < 0 || s.Node[15] < 0 {
		t.Fatal("local parities not stored")
	}
	d := fs.Delta(before)
	// Reads: each local parity reads its 5 data blocks → 10 reads.
	wantRead := 10 * fs.Cfg.BlockSizeBytes
	if math.Abs(d.HDFSBytesRead-wantRead) > 1 {
		t.Fatalf("migration read %.0f want %.0f", d.HDFSBytesRead, wantRead)
	}
	// The migrated stripe now repairs lightly.
	b2 := fs.Snapshot()
	fs.KillNode(s.Node[2])
	eng.Run()
	d2 := fs.Delta(b2)
	if d2.LightRepairs == 0 {
		t.Fatal("migrated stripe did not use the light decoder")
	}
}

func TestMigrateValidation(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	lrcStripes, _ := fs.AddFile("f", 10)
	if err := fs.MigrateToLRC("f", lrcStripes, core.NewXorbas(), nil); err == nil {
		t.Fatal("migrating a non-RS stripe accepted")
	}
	fsRS := testFS(t, cl, core.NewRS104())
	rsStripes, _ := fsRS.AddFile("g", 10)
	fsRS.LoseBlock(rsStripes[0], 1)
	if err := fsRS.MigrateToLRC("g", rsStripes, core.NewXorbas(), nil); err == nil {
		t.Fatal("migrating with lost blocks accepted")
	}
	eng.Run()
}

// Migration of a short (zero-padded) RS stripe creates only the local
// parities whose groups hold real data.
func TestMigratePartialStripe(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewRS104())
	rsStripes, err := fs.AddFile("small", 3)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Stripe
	if err := fs.MigrateToLRC("small", rsStripes, core.NewXorbas(), func(m []*Stripe) { out = m }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	s := out[0]
	if s.Node[14] < 0 {
		t.Fatal("S1 should exist (group 0 has data)")
	}
	if s.Node[15] >= 0 {
		t.Fatal("S2 should not exist (group 1 is all padding)")
	}
	// 3 data + 4 parities + S1 = 8 stored.
	stored := 0
	for _, n := range s.Node {
		if n >= 0 {
			stored++
		}
	}
	if stored != 8 {
		t.Fatalf("stored %d want 8", stored)
	}
}
