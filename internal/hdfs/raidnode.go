package hdfs

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
)

// This file implements the RaidNode daemon's lifecycle operations (§3):
//
//   - AddReplicatedFile: files enter the warehouse 3-way replicated.
//   - RaidFile: the RaidNode detects a file suitable for RAIDing,
//     launches a distributed MapReduce encoder job (one map task per
//     stripe) that reads the data blocks, computes parities, writes the
//     parity blocks, and finally lowers the replication factor to one.
//   - MigrateToLRC: the §3.1 backwards-compatibility path — an RS-encoded
//     file is upgraded to an LRC incrementally, computing only the local
//     XOR parities (each needs just its group's data blocks), leaving
//     the existing data and RS parity blocks untouched.

// AddReplicatedFile stores a file as dataBlocks individually replicated
// blocks (factor-way), the warehouse ingestion state before RAIDing.
func (fs *FS) AddReplicatedFile(name string, dataBlocks, factor int) ([]*Stripe, error) {
	if dataBlocks <= 0 {
		return nil, fmt.Errorf("hdfs: file %q has no blocks", name)
	}
	rep, err := core.NewReplication(factor)
	if err != nil {
		return nil, err
	}
	var stripes []*Stripe
	for i := 0; i < dataBlocks; i++ {
		s, err := fs.placeStripe(name, rep, 1)
		if err != nil {
			return nil, err
		}
		stripes = append(stripes, s)
		fs.stripes = append(fs.stripes, s)
	}
	return stripes, nil
}

// RaidFile encodes a replicated file into the FS's default coded scheme
// via a MapReduce encoder job and lowers replication to one (§3.1.1).
// The file's blocks are the primary (position-0) replicas of the given
// replicated stripes; surplus replicas are dropped when each coded
// stripe's parities are durable. onDone (optional) fires with the coded
// stripes once the whole job finishes.
func (fs *FS) RaidFile(name string, replicated []*Stripe, onDone func([]*Stripe)) error {
	if len(replicated) == 0 {
		return fmt.Errorf("hdfs: no stripes to raid for %q", name)
	}
	for i, s := range replicated {
		if _, ok := s.Scheme.(core.Replication); !ok {
			return fmt.Errorf("hdfs: stripe %d of %q is not replicated", i, name)
		}
		if s.Lost[0] {
			return fmt.Errorf("hdfs: stripe %d of %q has a lost primary; repair first", i, name)
		}
	}
	k := fs.Scheme.DataBlocks()
	job := &Job{Name: "raid-" + name}
	var coded []*Stripe
	for off := 0; off < len(replicated); off += k {
		hi := off + k
		if hi > len(replicated) {
			hi = len(replicated)
		}
		chunk := replicated[off:hi]
		job.AddTask(&Task{PreferredNode: chunk[0].Node[0], Run: func(node int, finish func()) {
			fs.runEncodeTask(name, chunk, node, func(s *Stripe) {
				coded = append(coded, s)
				finish()
			})
		}})
	}
	job.OnFinish = func(*Job) {
		// Lower replication: drop surplus replicas, retire the
		// replicated stripes (their primaries live on inside the coded
		// stripes).
		fs.removeStripes(replicated)
		if onDone != nil {
			onDone(coded)
		}
	}
	fs.Tracker.Submit(job)
	return nil
}

// runEncodeTask is one encoder map task: read the chunk's data blocks,
// burn encode CPU, write the parity blocks, and register the coded
// stripe.
func (fs *FS) runEncodeTask(name string, chunk []*Stripe, node int, done func(*Stripe)) {
	fs.Cl.Eng.Schedule(fs.Cfg.TaskLaunchSec, func() {
		// Read every data block (replica nearest to the task: primary).
		remaining := len(chunk)
		onRead := func() {
			remaining--
			if remaining > 0 {
				return
			}
			coded, err := fs.placeStripe(name, fs.Scheme, len(chunk))
			if err != nil {
				// Cluster too small mid-flight; keep replication.
				done(nil)
				return
			}
			// Data positions keep the primary replica's node: lowering
			// replication moves no data bytes.
			var parityPos []int
			for pos := 0; pos < fs.Scheme.Slots(); pos++ {
				if !fs.Scheme.Exists(pos, len(chunk)) {
					continue
				}
				if pos < fs.Scheme.DataBlocks() {
					coded.Node[pos] = chunk[pos].Node[0]
				} else {
					parityPos = append(parityPos, pos)
				}
			}
			encodeCPU := fs.Cfg.DecodeCPUSecPerRead * float64(len(chunk)+len(parityPos))
			fs.Cl.AddCPU(encodeCPU, 1)
			fs.Cl.Eng.Schedule(encodeCPU, func() {
				// Write each parity block to its placement node.
				writes := len(parityPos)
				if writes == 0 {
					fs.stripes = append(fs.stripes, coded)
					done(coded)
					return
				}
				onWrite := func() {
					writes--
					if writes == 0 {
						fs.stripes = append(fs.stripes, coded)
						done(coded)
					}
				}
				for _, pos := range parityPos {
					if err := fs.Cl.Transfer(node, coded.Node[pos], fs.Cfg.BlockSizeBytes, cluster.TagWrite, onWrite); err != nil {
						coded.Node[pos] = node // destination died: keep locally
						onWrite()
					}
				}
			})
		}
		for _, rs := range chunk {
			src := rs.Node[0]
			fs.counters.HDFSBytesRead += fs.Cfg.BlockSizeBytes
			if err := fs.Cl.Transfer(src, node, fs.Cfg.BlockSizeBytes, cluster.TagRead, onRead); err != nil {
				onRead()
			}
		}
	})
}

// MigrateToLRC upgrades an RS-coded stripe set to the given LRC scheme by
// computing only the new local parities — the §3.1 incremental migration
// ("Xorbas … can incrementally modify RS encoded files into LRCs by
// adding only local XOR parities"). Each local parity is computed by a
// map task that reads just its group's existing blocks. The LRC must
// extend the stripes' RS precode (same K and global parity count).
func (fs *FS) MigrateToLRC(name string, rsStripes []*Stripe, lrcScheme *core.LRC, onDone func([]*Stripe)) error {
	k := lrcScheme.DataBlocks()
	nPre := lrcScheme.Code().NPre()
	for i, s := range rsStripes {
		rsS, ok := s.Scheme.(*core.RS)
		if !ok {
			return fmt.Errorf("hdfs: stripe %d of %q is not RS-coded", i, name)
		}
		if rsS.DataBlocks() != k || rsS.Slots() != nPre {
			return fmt.Errorf("hdfs: stripe %d geometry (%d,%d) does not match the LRC precode (%d,%d)",
				i, rsS.DataBlocks(), rsS.Slots(), k, nPre)
		}
		for pos := range s.Node {
			if s.Lost[pos] {
				return fmt.Errorf("hdfs: stripe %d of %q has lost blocks; repair before migrating", i, name)
			}
		}
	}
	job := &Job{Name: "migrate-" + name}
	var migrated []*Stripe
	for _, s := range rsStripes {
		s := s
		job.AddTask(&Task{PreferredNode: s.Node[0], Run: func(node int, finish func()) {
			fs.runMigrateTask(s, lrcScheme, node, func(out *Stripe) {
				migrated = append(migrated, out)
				finish()
			})
		}})
	}
	job.OnFinish = func(*Job) {
		fs.removeStripes(rsStripes)
		if onDone != nil {
			onDone(migrated)
		}
	}
	fs.Tracker.Submit(job)
	return nil
}

// runMigrateTask computes the local parities for one stripe: for each
// data group with real blocks, read the group's data blocks, XOR, and
// write the local parity.
func (fs *FS) runMigrateTask(s *Stripe, lrcScheme *core.LRC, node int, done func(*Stripe)) {
	fs.Cl.Eng.Schedule(fs.Cfg.TaskLaunchSec, func() {
		nPre := lrcScheme.Code().NPre()
		out := &Stripe{
			File:      s.File,
			Scheme:    lrcScheme,
			DataCount: s.DataCount,
			Node:      make([]int, lrcScheme.Slots()),
			Lost:      make([]bool, lrcScheme.Slots()),
		}
		for i := range out.Node {
			out.Node[i] = -1
		}
		// Existing RS positions carry over untouched.
		for pos := 0; pos < nPre && pos < len(s.Node); pos++ {
			out.Node[pos] = s.Node[pos]
		}
		// Each new local parity reads its group's real data blocks.
		var readsTotal, writesTotal int
		type parityJob struct {
			pos   int
			reads []int
		}
		var jobs []parityJob
		for pos := nPre; pos < lrcScheme.Slots(); pos++ {
			if !lrcScheme.Exists(pos, s.DataCount) {
				continue
			}
			var reads []int
			for _, g := range lrcScheme.Groups() {
				inGroup := false
				for _, m := range g {
					if m == pos {
						inGroup = true
						break
					}
				}
				if !inGroup {
					continue
				}
				for _, m := range g {
					if m < s.DataCount {
						reads = append(reads, m)
					}
				}
			}
			jobs = append(jobs, parityJob{pos: pos, reads: reads})
			readsTotal += len(reads)
			writesTotal++
		}
		if len(jobs) == 0 {
			fs.stripes = append(fs.stripes, out)
			done(out)
			return
		}
		remaining := readsTotal
		startWrites := func() {
			cpu := fs.Cfg.DecodeCPUSecPerRead * float64(readsTotal)
			fs.Cl.AddCPU(cpu, 1)
			fs.Cl.Eng.Schedule(cpu, func() {
				writes := writesTotal
				for _, pj := range jobs {
					dest := fs.pickNewHome(out, pj.pos, node)
					pj := pj
					complete := func() {
						writes--
						if writes == 0 {
							fs.stripes = append(fs.stripes, out)
							done(out)
						}
					}
					out.Node[pj.pos] = dest
					if err := fs.Cl.Transfer(node, dest, fs.Cfg.BlockSizeBytes, cluster.TagWrite, complete); err != nil {
						out.Node[pj.pos] = node
						complete()
					}
				}
			})
		}
		onRead := func() {
			remaining--
			if remaining == 0 {
				startWrites()
			}
		}
		for _, pj := range jobs {
			for _, pos := range pj.reads {
				src := s.Node[pos]
				fs.counters.HDFSBytesRead += fs.Cfg.BlockSizeBytes
				if err := fs.Cl.Transfer(src, node, fs.Cfg.BlockSizeBytes, cluster.TagRead, onRead); err != nil {
					onRead()
				}
			}
		}
	})
}

// removeStripes unregisters stripes from the filesystem (their blocks are
// released — replication lowered or file re-encoded).
func (fs *FS) removeStripes(old []*Stripe) {
	drop := make(map[*Stripe]bool, len(old))
	for _, s := range old {
		drop[s] = true
	}
	keep := fs.stripes[:0]
	for _, s := range fs.stripes {
		if !drop[s] {
			keep = append(keep, s)
		}
	}
	fs.stripes = keep
}
