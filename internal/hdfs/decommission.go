package hdfs

import (
	"fmt"

	"repro/internal/cluster"
)

// Node decommissioning (§1.1): "Functional data has to be copied out of
// the node before decommission, a process that is complicated and time
// consuming. Fast repairs allow to treat node decommissioning as a
// scheduled repair and start a MapReduce job to recreate the blocks
// without creating very large network traffic."
//
// Two strategies are provided:
//
//   - CopyOutNode: the classic drain — every block is copied from the
//     retiring node to a new home. Minimal bytes (1 block per block),
//     but every byte squeezes through the retiring node's NIC, so drain
//     time scales with the node's stored volume over one link.
//
//   - DrainNode: decommission-as-scheduled-repair — a MapReduce job
//     recreates each block from its repair group on other nodes. It
//     reads more bytes (r per block with an LRC) but spreads them over
//     the whole cluster, so wall-clock drain time is limited by cluster
//     parallelism, not one NIC.

// CopyOutNode drains a retiring node by copying each of its blocks to a
// fresh home, one stream at a time per the HDFS decommission mover. The
// callback fires when the node is empty.
func (fs *FS) CopyOutNode(node int, onDone func(moved int)) error {
	if !fs.Cl.Alive(node) {
		return fmt.Errorf("hdfs: node %d is not alive", node)
	}
	var refs []blockRef
	for _, s := range fs.stripes {
		for pos, nd := range s.Node {
			if nd == node && !s.Lost[pos] {
				refs = append(refs, blockRef{s, pos})
			}
		}
	}
	if len(refs) == 0 {
		fs.Cl.Kill(node)
		if onDone != nil {
			fs.Cl.Eng.Schedule(0, func() { onDone(0) })
		}
		return nil
	}
	job := &Job{Name: "decommission-copy"} // planned maintenance: full parallelism
	moved := 0
	for _, ref := range refs {
		ref := ref
		job.AddTask(&Task{PreferredNode: -1, Run: func(taskNode int, finish func()) {
			dest := fs.pickNewHome(ref.s, ref.pos, node)
			fs.counters.HDFSBytesRead += fs.Cfg.BlockSizeBytes
			if err := fs.Cl.Transfer(node, dest, fs.Cfg.BlockSizeBytes, cluster.TagRead, func() {
				ref.s.Node[ref.pos] = dest
				moved++
				finish()
			}); err != nil {
				finish()
			}
		}})
	}
	job.OnFinish = func(*Job) {
		fs.Cl.Kill(node) // retire once empty
		if onDone != nil {
			onDone(moved)
		}
	}
	fs.Tracker.Submit(job)
	return nil
}

// DrainNode decommissions a node as a scheduled repair: its blocks are
// recreated from their repair groups by a MapReduce job reading from
// OTHER nodes (the retiring node serves no repair traffic), then the
// node retires. The callback fires when all blocks are recreated.
func (fs *FS) DrainNode(node int, onDone func(recreated int)) error {
	if !fs.Cl.Alive(node) {
		return fmt.Errorf("hdfs: node %d is not alive", node)
	}
	var refs []blockRef
	for _, s := range fs.stripes {
		for pos, nd := range s.Node {
			if nd == node && !s.Lost[pos] {
				refs = append(refs, blockRef{s, pos})
			}
		}
	}
	// Retire immediately: repairs treat the node's blocks as lost, which
	// is exactly the scheduled-repair framing (the node may physically
	// leave right away).
	fs.Cl.Kill(node)
	for _, ref := range refs {
		ref.s.Lost[ref.pos] = true
	}
	if len(refs) == 0 {
		if onDone != nil {
			fs.Cl.Eng.Schedule(0, func() { onDone(0) })
		}
		return nil
	}
	job := &Job{Name: "decommission-repair"} // planned maintenance: full parallelism
	recreated := 0
	for _, ref := range refs {
		ref := ref
		job.AddTask(&Task{PreferredNode: fs.preferRepairNode(ref), Run: func(taskNode int, finish func()) {
			fs.runRepairTask(ref, taskNode, func() {
				recreated++
				finish()
			})
		}})
	}
	job.OnFinish = func(*Job) {
		if onDone != nil {
			onDone(recreated)
		}
	}
	fs.Tracker.Submit(job)
	return nil
}
