package hdfs

import (
	"testing"

	"repro/internal/core"
)

func TestPickNodePreferences(t *testing.T) {
	eng, cl := testCluster(t, 4)
	jt := NewJobTracker(cl, 1)
	_ = eng
	// Preferred node with a free slot wins.
	if got := jt.pickNode(2); got != 2 {
		t.Fatalf("got %d want 2", got)
	}
	// Preferred busy: any free node (rack tier covers all in 1-rack
	// clusters).
	jt.used[2] = 1
	if got := jt.pickNode(2); got == 2 || got < 0 {
		t.Fatalf("busy preferred node returned %d", got)
	}
	// Dead preferred node: fall back to live ones.
	cl.Kill(1)
	if got := jt.pickNode(1); got == 1 || got < 0 {
		t.Fatalf("dead preferred node returned %d", got)
	}
	// Everything full: -1.
	for i := range jt.used {
		jt.used[i] = 1
	}
	if got := jt.pickNode(-1); got != -1 {
		t.Fatalf("saturated cluster returned %d", got)
	}
}

func TestActiveJobsAndAccounting(t *testing.T) {
	eng, cl := testCluster(t, 3)
	jt := NewJobTracker(cl, 2)
	if jt.ActiveJobs() != 0 {
		t.Fatal("fresh tracker has active jobs")
	}
	j := &Job{Name: "j"}
	for i := 0; i < 3; i++ {
		j.AddTask(&Task{PreferredNode: -1, Run: func(node int, finish func()) {
			eng.Schedule(5, finish)
		}})
	}
	jt.Submit(j)
	if jt.ActiveJobs() != 1 {
		t.Fatal("job not active after submit")
	}
	eng.Run()
	if jt.ActiveJobs() != 0 || !j.Done() {
		t.Fatal("job not finished")
	}
	if j.Completed() != 3 || j.Total() != 3 {
		t.Fatalf("accounting %d/%d", j.Completed(), j.Total())
	}
	if j.FinishedAt < j.SubmittedAt {
		t.Fatal("timestamps inverted")
	}
}

// A finish callback invoked twice must not corrupt slot accounting.
func TestDoubleFinishIgnored(t *testing.T) {
	eng, cl := testCluster(t, 2)
	jt := NewJobTracker(cl, 1)
	var fin func()
	j := &Job{Name: "j"}
	j.AddTask(&Task{PreferredNode: -1, Run: func(node int, finish func()) {
		fin = finish
		eng.Schedule(1, finish)
	}})
	jt.Submit(j)
	eng.Run()
	fin() // second call: ignored
	if j.Completed() != 1 {
		t.Fatalf("completed %d want 1", j.Completed())
	}
	for _, u := range jt.used {
		if u != 0 {
			t.Fatal("slot accounting corrupted by double finish")
		}
	}
}

// Tasks greatly outnumbering slots drain fully (wave scheduling).
func TestWaveScheduling(t *testing.T) {
	eng, cl := testCluster(t, 2) // 4 slots
	jt := NewJobTracker(cl, 2)
	j := &Job{Name: "waves"}
	ran := 0
	for i := 0; i < 50; i++ {
		j.AddTask(&Task{PreferredNode: -1, Run: func(node int, finish func()) {
			ran++
			eng.Schedule(1, finish)
		}})
	}
	jt.Submit(j)
	eng.Run()
	if ran != 50 || !j.Done() {
		t.Fatalf("ran %d done=%v", ran, j.Done())
	}
	// 50 tasks over 4 slots at 1 s each ≈ 13 waves.
	if eng.Now() < 12 || eng.Now() > 14 {
		t.Fatalf("drained at t=%f, want ≈13", eng.Now())
	}
}

// Zero-slot config falls back to the default.
func TestTrackerDefaults(t *testing.T) {
	_, cl := testCluster(t, 2)
	jt := NewJobTracker(cl, 0)
	if jt.slotsPerNode != 2 {
		t.Fatalf("default slots %d want 2", jt.slotsPerNode)
	}
}

// The repair window survives an empty fixer scan.
func TestFixerScanNoWork(t *testing.T) {
	eng, cl := testCluster(t, 10)
	fs := testFS(t, cl, core.NewXorbas())
	stripes, _ := fs.AddFile("f", 10)
	fs.LoseBlock(stripes[0], 3)
	// Block "recovers" (e.g. transient) before the scan.
	stripes[0].Lost[3] = false
	eng.Run()
	if fs.Snapshot().BlocksRepaired != 0 {
		t.Fatal("no repair should have run")
	}
}
