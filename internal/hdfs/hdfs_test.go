package hdfs

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

const mb = 1 << 20

func testCluster(t testing.TB, nodes int) (*sim.Engine, *cluster.Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: nodes, Racks: 1,
		NodeOutBps: 12 * mb, NodeInBps: 12 * mb,
		BucketSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl
}

func testFS(t testing.TB, cl *cluster.Cluster, scheme core.Scheme) *FS {
	t.Helper()
	fs, err := New(cl, scheme, Config{
		BlockSizeBytes: 64 * mb,
		SlotsPerNode:   2, RepairMaxParallel: 8,
		TaskLaunchSec: 10, FixerScanSec: 30,
		DeployedReads: true, DecodeCPUSecPerRead: 0.2,
		DegradedTimeoutSec: 15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestAddFilePlacement(t *testing.T) {
	_, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	stripes, err := fs.AddFile("f1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripes) != 1 {
		t.Fatalf("10 blocks should form 1 stripe, got %d", len(stripes))
	}
	s := stripes[0]
	seen := map[int]bool{}
	stored := 0
	for pos, node := range s.Node {
		if node < 0 {
			t.Fatalf("position %d not stored in a full stripe", pos)
		}
		if seen[node] {
			t.Fatalf("stripe collocated two blocks on node %d", node)
		}
		seen[node] = true
		stored++
	}
	if stored != 16 {
		t.Fatalf("stored %d blocks want 16", stored)
	}
}

func TestAddFileMultiStripeAndPartial(t *testing.T) {
	_, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	stripes, err := fs.AddFile("f", 23) // 10 + 10 + 3
	if err != nil {
		t.Fatal(err)
	}
	if len(stripes) != 3 {
		t.Fatalf("got %d stripes want 3", len(stripes))
	}
	last := stripes[2]
	if last.DataCount != 3 {
		t.Fatalf("last stripe data count %d", last.DataCount)
	}
	// 3 data + 4 RS + 1 local parity = 8 stored.
	stored := 0
	for _, n := range last.Node {
		if n >= 0 {
			stored++
		}
	}
	if stored != 8 {
		t.Fatalf("partial stripe stored %d want 8", stored)
	}
	if fs.TotalBlocksStored() != 16+16+8 {
		t.Fatalf("total stored %d", fs.TotalBlocksStored())
	}
}

func TestAddFileValidation(t *testing.T) {
	_, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	if _, err := fs.AddFile("bad", 0); err == nil {
		t.Fatal("0-block file accepted")
	}
	// A stripe wider than the cluster wraps with minimal collocation
	// (the paper's 15-slave WordCount cluster holds 16-block stripes).
	_, tiny := testCluster(t, 5)
	fsTiny := testFS(t, tiny, core.NewXorbas())
	stripes, err := fsTiny.AddFile("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, n := range stripes[0].Node {
		if n >= 0 {
			perNode[n]++
		}
	}
	// 16 blocks over 5 nodes: every node gets 3 or 4.
	for n, c := range perNode {
		if c < 3 || c > 4 {
			t.Fatalf("node %d holds %d blocks; placement not even", n, c)
		}
	}
}

// One node killed: every lost block is repaired; Xorbas repairs are all
// light with 5 reads each.
func TestSingleNodeFailureRepairXorbas(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	for i := 0; i < 20; i++ {
		if _, err := fs.AddFile("f", 10); err != nil {
			t.Fatal(err)
		}
	}
	victim := 7
	lost := fs.BlocksOn(victim)
	if lost == 0 {
		t.Skip("victim stored nothing; adjust seed")
	}
	before := fs.Snapshot()
	fs.ResetRepairWindow()
	fs.KillNode(victim)
	eng.Run()
	d := fs.Delta(before)
	if d.BlocksRepaired != lost {
		t.Fatalf("repaired %d of %d lost blocks", d.BlocksRepaired, lost)
	}
	if d.HeavyRepairs != 0 {
		t.Fatalf("%d heavy repairs for single-node failure", d.HeavyRepairs)
	}
	wantBytes := float64(lost) * 5 * 64 * mb
	if math.Abs(d.HDFSBytesRead-wantBytes) > 1 {
		t.Fatalf("bytes read %.0f want %.0f (5 reads per light repair)", d.HDFSBytesRead, wantBytes)
	}
	if fs.RepairDuration() <= 0 {
		t.Fatal("repair duration not recorded")
	}
	// No block should remain lost, and no stripe position should sit on
	// the dead node.
	for _, s := range fs.Stripes() {
		for pos, nd := range s.Node {
			if s.Lost[pos] {
				t.Fatal("block still lost after repair")
			}
			if nd == victim {
				t.Fatal("block still placed on dead node")
			}
		}
	}
}

// RS deployed repair reads 13 blocks per lost block: the 2× headline.
func TestSingleNodeFailureRepairRS(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewRS104())
	for i := 0; i < 20; i++ {
		if _, err := fs.AddFile("f", 10); err != nil {
			t.Fatal(err)
		}
	}
	victim := 7
	lost := fs.BlocksOn(victim)
	before := fs.Snapshot()
	fs.KillNode(victim)
	eng.Run()
	d := fs.Delta(before)
	if d.BlocksRepaired != lost {
		t.Fatalf("repaired %d of %d", d.BlocksRepaired, lost)
	}
	if d.LightRepairs != 0 {
		t.Fatal("RS has no light decoder")
	}
	wantBytes := float64(lost) * 13 * 64 * mb
	if math.Abs(d.HDFSBytesRead-wantBytes) > 1 {
		t.Fatalf("bytes read %.0f want %.0f (13 streams per repair)", d.HDFSBytesRead, wantBytes)
	}
}

// Xorbas reads ≈ 5/13 of RS bytes and finishes faster on the same
// failure — Fig 4's comparison in miniature.
func TestXorbasVsRSBytesAndDuration(t *testing.T) {
	run := func(scheme core.Scheme) (bytes float64, duration float64) {
		eng, cl := testCluster(t, 50)
		fs := testFS(t, cl, scheme)
		for i := 0; i < 20; i++ {
			if _, err := fs.AddFile("f", 10); err != nil {
				t.Fatal(err)
			}
		}
		before := fs.Snapshot()
		fs.KillNode(3)
		eng.Run()
		return fs.Delta(before).HDFSBytesRead, fs.RepairDuration()
	}
	rsBytes, rsDur := run(core.NewRS104())
	xoBytes, xoDur := run(core.NewXorbas())
	ratio := xoBytes / rsBytes
	// Per-block ratio is 5/13 ≈ 0.385; Xorbas loses ~16/14 more blocks.
	if ratio < 0.30 || ratio > 0.60 {
		t.Fatalf("bytes ratio %.2f outside the paper's 41%%–52%% band (±)", ratio)
	}
	if xoDur >= rsDur {
		t.Fatalf("Xorbas repair (%.0fs) not faster than RS (%.0fs)", xoDur, rsDur)
	}
}

// Two losses in one group force heavy repairs but everything recovers.
func TestDoubleFailureHeavyPath(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	stripes, _ := fs.AddFile("f", 10)
	s := stripes[0]
	// Kill the nodes holding positions 0 and 1 (same group).
	fs.KillNode(s.Node[0])
	fs.KillNode(s.Node[1])
	before := fs.Snapshot()
	_ = before
	eng.Run()
	if s.Lost[0] || s.Lost[1] {
		t.Fatal("blocks not repaired")
	}
	d := fs.Snapshot()
	if d.HeavyRepairs == 0 {
		t.Fatal("expected at least one heavy repair")
	}
}

// Five erasures in a fatal pattern are unrecoverable and counted.
func TestUnrecoverableStripe(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	stripes, _ := fs.AddFile("f", 10)
	s := stripes[0]
	// Erase a whole group (X1..X5 + S1 = 6 blocks ≥ d): kill their nodes.
	for _, pos := range []int{0, 1, 2, 3, 4, 14} {
		fs.KillNode(s.Node[pos])
	}
	eng.Run()
	snap := fs.Snapshot()
	if snap.Unrecoverable == 0 {
		t.Fatal("expected unrecoverable blocks")
	}
}

// Replication as a Scheme: repair reads one block per lost block.
func TestReplicationRepair(t *testing.T) {
	eng, cl := testCluster(t, 20)
	rep, err := core.NewReplication(3)
	if err != nil {
		t.Fatal(err)
	}
	fs := testFS(t, cl, rep)
	if _, err := fs.AddFile("f", 30); err != nil {
		t.Fatal(err)
	}
	lost := fs.BlocksOn(5)
	before := fs.Snapshot()
	fs.KillNode(5)
	eng.Run()
	d := fs.Delta(before)
	if d.BlocksRepaired != lost {
		t.Fatalf("repaired %d of %d", d.BlocksRepaired, lost)
	}
	want := float64(lost) * 64 * mb
	if math.Abs(d.HDFSBytesRead-want) > 1 {
		t.Fatalf("bytes %.0f want %.0f", d.HDFSBytesRead, want)
	}
}

// Degraded read: a present block is free locally, a missing block incurs
// the reconstruction read-set without any repair write.
func TestReadBlockDegraded(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	fs.Cfg.FixerScanSec = 1e9 // keep the fixer out of this test
	stripes, _ := fs.AddFile("f", 10)
	s := stripes[0]
	var localDegraded, missDegraded bool
	fs.ReadBlock(s, 0, s.Node[0], func(d bool) { localDegraded = d })
	eng.Run()
	if localDegraded {
		t.Fatal("local read reported degraded")
	}
	before := fs.Snapshot()
	fs.KillNode(s.Node[2])
	done := false
	fs.ReadBlock(s, 2, s.Node[0], func(d bool) { missDegraded = d; done = true })
	// Run well past the degraded read but short of the (disabled) fixer.
	eng.RunUntil(1e6)
	if !done || !missDegraded {
		t.Fatal("degraded read did not complete")
	}
	d := fs.Delta(before)
	if d.DegradedReads != 1 {
		t.Fatalf("degraded reads %d", d.DegradedReads)
	}
	if d.BlocksRepaired != 0 {
		t.Fatal("degraded read must not write a repair")
	}
	if math.Abs(d.HDFSBytesRead-5*64*mb) > 1 {
		t.Fatalf("degraded read bytes %.0f want 5 blocks", d.HDFSBytesRead)
	}
	if s.Lost[2] != true {
		t.Fatal("degraded read should leave the block lost")
	}
}

// Group-aware placement puts each repair group in a distinct rack, so a
// light repair never crosses racks.
func TestGroupAwarePlacement(t *testing.T) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: 30, Racks: 3,
		NodeOutBps: 12 * mb, NodeInBps: 12 * mb,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheme := core.NewXorbas()
	fs := testFS(t, cl, scheme)
	fs.GroupAwarePlacement = true
	stripes, err := fs.AddFile("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	s := stripes[0]
	for gi, members := range scheme.Groups() {
		rack := -1
		for _, pos := range members {
			if s.Node[pos] < 0 {
				continue
			}
			r := cl.Rack(s.Node[pos])
			if rack == -1 {
				rack = r
			} else if r != rack {
				t.Fatalf("group %d spans racks", gi)
			}
		}
	}
}

// The FairScheduler shares slots across jobs round-robin.
func TestFairSchedulerSharing(t *testing.T) {
	eng, cl := testCluster(t, 2) // 2 nodes × 2 slots = 4 slots
	jt := NewJobTracker(cl, 2)
	runCount := map[string]int{}
	mkJob := func(name string, tasks int) *Job {
		j := &Job{Name: name}
		for i := 0; i < tasks; i++ {
			j.AddTask(&Task{PreferredNode: -1, Run: func(node int, finish func()) {
				runCount[name]++
				eng.Schedule(10, finish)
			}})
		}
		return j
	}
	a := mkJob("a", 10)
	b := mkJob("b", 10)
	jt.Submit(a) // a grabs all 4 slots immediately
	jt.Submit(b)
	// Once the first wave's slots free (t=10), round-robin must hand b a
	// fair share rather than letting a finish first.
	eng.RunUntil(15)
	if runCount["b"] < 2 {
		t.Fatalf("unfair second wave: %v", runCount)
	}
	eng.Run()
	if !a.Done() || !b.Done() {
		t.Fatal("jobs not finished")
	}
	if a.FinishedAt <= 0 || b.FinishedAt <= 0 {
		t.Fatal("finish times not recorded")
	}
	// Fair sharing means neither job finishes the whole workload ahead of
	// the other's midpoint: b must not start only after a fully ends.
	if b.FinishedAt < a.FinishedAt/2 || a.FinishedAt < b.FinishedAt/2 {
		t.Fatalf("completion skew: a=%f b=%f", a.FinishedAt, b.FinishedAt)
	}
}

func TestJobMaxParallel(t *testing.T) {
	eng, cl := testCluster(t, 10) // 20 slots
	jt := NewJobTracker(cl, 2)
	var concurrent, peak int
	j := &Job{Name: "capped", MaxParallel: 3}
	for i := 0; i < 12; i++ {
		j.AddTask(&Task{PreferredNode: -1, Run: func(node int, finish func()) {
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			eng.Schedule(5, func() { concurrent--; finish() })
		}})
	}
	jt.Submit(j)
	eng.Run()
	if peak != 3 {
		t.Fatalf("peak concurrency %d want 3", peak)
	}
	if !j.Done() || j.Completed() != 12 || j.Total() != 12 {
		t.Fatal("job accounting wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	_, cl := testCluster(t, 5)
	if _, err := New(cl, core.NewXorbas(), Config{}); err == nil {
		t.Fatal("zero block size accepted")
	}
}

// Transient failure (§1.1): the node returns before the BlockFixer scan
// fires, so no repair traffic is generated at all.
func TestTransientFailureNoRepairs(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	if _, err := fs.AddFile("f", 10); err != nil {
		t.Fatal(err)
	}
	victim := 3
	before := fs.Snapshot()
	fs.KillNode(victim)
	// The node comes back before the 30 s scan.
	eng.RunUntil(10)
	fs.RestartNode(victim)
	eng.Run()
	d := fs.Delta(before)
	if d.BlocksRepaired != 0 || d.HDFSBytesRead != 0 {
		t.Fatalf("transient failure triggered repairs: %+v", d)
	}
	for _, s := range fs.Stripes() {
		for pos := range s.Node {
			if s.Lost[pos] {
				t.Fatal("blocks still lost after restart")
			}
		}
	}
}

// A transient restart racing the fixer: blocks repaired before the
// restart stay repaired, the rest are revived; nothing is double-counted.
func TestTransientRestartDuringRepair(t *testing.T) {
	eng, cl := testCluster(t, 50)
	fs := testFS(t, cl, core.NewXorbas())
	for i := 0; i < 10; i++ {
		if _, err := fs.AddFile("f", 10); err != nil {
			t.Fatal(err)
		}
	}
	victim := 5
	lost := fs.BlocksOn(victim)
	if lost == 0 {
		t.Skip("victim empty")
	}
	fs.KillNode(victim)
	// Let some repairs run, then the node returns.
	eng.RunUntil(120)
	fs.RestartNode(victim)
	eng.Run()
	for _, s := range fs.Stripes() {
		for pos := range s.Node {
			if s.Lost[pos] {
				t.Fatal("lost block after restart + drain")
			}
		}
	}
	if fs.Snapshot().Unrecoverable != 0 {
		t.Fatal("unrecoverable blocks in a single-failure scenario")
	}
}

// Decommissioning moved to the real datapath: internal/store's elastic
// membership (Decommission + Rebalancer) supersedes the simulation's
// CopyOutNode/DrainNode, keeping the §1.1 drain-ordering policy — see
// internal/store/rebalance.go and examples/decommission.
