package hdfs

import (
	"repro/internal/cluster"
)

// KillNode terminates a DataNode: every block it stored is marked lost
// and the BlockFixer's next scan will dispatch repair jobs (§3.1.2).
func (fs *FS) KillNode(node int) {
	fs.Cl.Kill(node)
	for _, s := range fs.stripes {
		for pos, nd := range s.Node {
			if nd == node && !s.Lost[pos] {
				s.Lost[pos] = true
				fs.pendingLost = append(fs.pendingLost, blockRef{s, pos})
			}
		}
	}
	fs.armFixer()
}

// RestartNode resolves a transient failure (§1.1: 90% of failure events
// are transient): the node returns with its blocks intact, so any of its
// blocks not yet re-created elsewhere become available again and pending
// repairs for them are dropped at the next scan.
func (fs *FS) RestartNode(node int) {
	fs.Cl.Restart(node)
	for _, s := range fs.stripes {
		for pos, nd := range s.Node {
			if nd == node && s.Lost[pos] {
				s.Lost[pos] = false
			}
		}
	}
}

// LoseBlock marks a single stored block as lost or corrupted without
// terminating its DataNode — the §5.2.4 "simulated block losses" and the
// corrupted-block case the BlockFixer periodically scans for (§3). The
// next scan dispatches its repair.
func (fs *FS) LoseBlock(s *Stripe, pos int) {
	if pos < 0 || pos >= len(s.Node) || !s.Available(pos) {
		return
	}
	s.Lost[pos] = true
	fs.pendingLost = append(fs.pendingLost, blockRef{s, pos})
	fs.armFixer()
}

// armFixer schedules the next BlockFixer scan if one isn't pending.
func (fs *FS) armFixer() {
	if fs.fixerArmed || len(fs.pendingLost) == 0 {
		return
	}
	fs.fixerArmed = true
	fs.Cl.Eng.Schedule(fs.Cfg.FixerScanSec, fs.fixerScan)
}

// fixerScan is one periodic BlockFixer pass: it collects the lost blocks
// observed since the last pass and dispatches one MapReduce repair job
// with a map task per missing block.
func (fs *FS) fixerScan() {
	fs.fixerArmed = false
	batch := fs.pendingLost
	fs.pendingLost = nil
	var tasks []blockRef
	for _, ref := range batch {
		if ref.s.Lost[ref.pos] {
			tasks = append(tasks, ref)
		}
	}
	if len(tasks) == 0 {
		return
	}
	job := &Job{Name: "blockfixer", MaxParallel: fs.Cfg.RepairMaxParallel}
	for _, ref := range tasks {
		ref := ref
		job.AddTask(&Task{PreferredNode: fs.preferRepairNode(ref), Run: func(node int, finish func()) {
			fs.runRepairTask(ref, node, finish)
		}})
	}
	fs.Tracker.Submit(job)
	fs.armFixer() // new losses may have accumulated meanwhile
}

// runRepairTask is one repair map task: launch overhead, parallel streams
// from the source blocks, decode CPU, write of the rebuilt block to a
// fresh DataNode (§3.1.2).
func (fs *FS) runRepairTask(ref blockRef, node int, finish func()) {
	if fs.firstRepairLaunch < 0 {
		fs.firstRepairLaunch = fs.Cl.Eng.Now()
	}
	endTask := func() {
		fs.lastRepairEnd = fs.Cl.Eng.Now()
		finish()
	}
	fs.Cl.Eng.Schedule(fs.Cfg.TaskLaunchSec, func() {
		if !ref.s.Lost[ref.pos] {
			endTask() // already repaired by a racing task
			return
		}
		exists, avail := ref.s.masks()
		reads, light, err := ref.s.Scheme.PlanRepair(ref.pos, exists, avail, fs.Cfg.DeployedReads)
		if err != nil {
			fs.counters.Unrecoverable++
			endTask()
			return
		}
		fs.streamBlocks(ref.s, reads, node, func() {
			decode := fs.Cfg.DecodeCPUSecPerRead * float64(len(reads))
			fs.Cl.AddCPU(decode, 1)
			fs.Cl.Eng.Schedule(decode, func() {
				dest := fs.pickNewHome(ref.s, ref.pos, node)
				writeDone := func() {
					ref.s.Lost[ref.pos] = false
					ref.s.Node[ref.pos] = dest
					fs.counters.BlocksRepaired++
					if light {
						fs.counters.LightRepairs++
					} else {
						fs.counters.HeavyRepairs++
					}
					endTask()
				}
				if err := fs.Cl.Transfer(node, dest, fs.Cfg.BlockSizeBytes, cluster.TagWrite, writeDone); err != nil {
					// Destination died mid-repair: store locally.
					ref.s.Lost[ref.pos] = false
					ref.s.Node[ref.pos] = node
					fs.counters.BlocksRepaired++
					if light {
						fs.counters.LightRepairs++
					} else {
						fs.counters.HeavyRepairs++
					}
					endTask()
				}
			})
		})
	})
}

// streamBlocks opens parallel read streams from every source position to
// the task node and calls done when all arrive. Each stream counts as
// HDFS bytes read.
func (fs *FS) streamBlocks(s *Stripe, reads []int, node int, done func()) {
	if len(reads) == 0 {
		fs.Cl.Eng.Schedule(0, done)
		return
	}
	remaining := len(reads)
	for _, pos := range reads {
		src := s.Node[pos]
		fs.counters.HDFSBytesRead += fs.Cfg.BlockSizeBytes
		complete := func() {
			remaining--
			if remaining == 0 {
				done()
			}
		}
		if err := fs.Cl.Transfer(src, node, fs.Cfg.BlockSizeBytes, cluster.TagRead, complete); err != nil {
			// Source died between planning and streaming; the stream
			// yields nothing — account the miss and move on. The decoder
			// will be rerun by a later scan if the block stays lost.
			complete()
		}
	}
}

// preferRepairNode suggests where to schedule a repair task. Under
// group-aware placement the task should run in the lost block's rack
// (data center) so local repairs never cross the fabric; otherwise any
// node will do.
func (fs *FS) preferRepairNode(ref blockRef) int {
	if !fs.GroupAwarePlacement {
		return -1
	}
	home := ref.s.Node[ref.pos]
	if home < 0 {
		return -1
	}
	rack := fs.Cl.Rack(home)
	for _, n := range fs.Cl.LiveNodes() {
		if fs.Cl.Rack(n) == rack {
			return n
		}
	}
	return -1
}

// pickNewHome chooses a live node for a rebuilt block, avoiding the
// stripe's other blocks (placement policy) and preferring not to keep it
// on the task node. Under group-aware placement the block returns to its
// original rack so the repair group stays within one data center.
func (fs *FS) pickNewHome(s *Stripe, pos, taskNode int) int {
	onStripe := make(map[int]bool)
	for p, nd := range s.Node {
		if nd >= 0 && !s.Lost[p] {
			onStripe[nd] = true
		}
	}
	var pool []int
	if fs.GroupAwarePlacement && s.Node[pos] >= 0 {
		rack := fs.Cl.Rack(s.Node[pos])
		for _, n := range fs.Cl.LiveNodes() {
			if fs.Cl.Rack(n) == rack && !onStripe[n] {
				pool = append(pool, n)
			}
		}
	}
	if len(pool) == 0 {
		pool = fs.Cl.LiveNodes()
	}
	// Deterministic random probe.
	for tries := 0; tries < 4*len(pool); tries++ {
		cand := pool[fs.rng.Intn(len(pool))]
		if cand != taskNode && !onStripe[cand] {
			return cand
		}
	}
	for _, cand := range pool {
		if !onStripe[cand] {
			return cand
		}
	}
	return taskNode
}

// ReadBlock models a client (e.g. a WordCount map task on the given
// node) reading stripe position pos. Present blocks transfer directly
// (free if local). Missing blocks take the degraded-read path (§1.1):
// stall for the degraded timeout, then reconstruct on the fly — reading
// the plan's blocks and decoding — without writing anything back.
// done(degraded) fires when the bytes are available.
func (fs *FS) ReadBlock(s *Stripe, pos, node int, done func(degraded bool)) {
	if s.Available(pos) {
		src := s.Node[pos]
		fs.counters.HDFSBytesRead += fs.Cfg.BlockSizeBytes
		if src == node {
			// Data-local read: HDFS counts the bytes, the network moves
			// nothing.
			fs.Cl.Eng.Schedule(0, func() { done(false) })
			return
		}
		if err := fs.Cl.Transfer(src, node, fs.Cfg.BlockSizeBytes, cluster.TagRead, func() { done(false) }); err != nil {
			fs.degradedRead(s, pos, node, done)
		}
		return
	}
	fs.degradedRead(s, pos, node, done)
}

func (fs *FS) degradedRead(s *Stripe, pos, node int, done func(degraded bool)) {
	fs.Cl.Eng.Schedule(fs.Cfg.DegradedTimeoutSec, func() {
		exists, avail := s.masks()
		reads, _, err := s.Scheme.PlanRepair(pos, exists, avail, fs.Cfg.DeployedReads)
		if err != nil {
			// Data loss: the read fails permanently; report completion so
			// the job can account the failure rather than hang.
			fs.counters.Unrecoverable++
			done(true)
			return
		}
		fs.counters.DegradedReads++
		fs.streamBlocks(s, reads, node, func() {
			decode := fs.Cfg.DecodeCPUSecPerRead * float64(len(reads))
			fs.Cl.AddCPU(decode, 1)
			fs.Cl.Eng.Schedule(decode, func() { done(true) })
		})
	})
}
