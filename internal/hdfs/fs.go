// Package hdfs simulates the Distributed RAID File System of Section 3:
// files divided into stripes, parity maintained by a RaidNode, lost
// blocks detected and rebuilt by a BlockFixer through MapReduce repair
// jobs, with light/heavy decoder selection per the configured scheme.
// HDFS-RS and HDFS-Xorbas are the same FS with a different core.Scheme.
package hdfs

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Config tunes the filesystem and its repair machinery.
type Config struct {
	// BlockSizeBytes is the HDFS block size (64 MB in the EC2 runs,
	// 256 MB at Facebook).
	BlockSizeBytes float64
	// SlotsPerNode is the MapReduce map-slot count per TaskTracker.
	SlotsPerNode int
	// RepairMaxParallel caps concurrently running repair tasks per repair
	// job (the BlockFixer dispatches bounded jobs; 0 = unlimited).
	RepairMaxParallel int
	// TaskLaunchSec models MapReduce task start overhead.
	TaskLaunchSec float64
	// FixerScanSec is the BlockFixer detection delay: lost blocks are
	// picked up by the next periodic scan.
	FixerScanSec float64
	// DeployedReads selects the deployed read-set policy: the heavy
	// decoder opens streams to every available block of the stripe
	// (13 for RS(10,4), §3.1.2) instead of a minimal subset.
	DeployedReads bool
	// DecodeCPUSecPerRead is decoder CPU time per block streamed in.
	DecodeCPUSecPerRead float64
	// DegradedTimeoutSec stalls a reader before it falls back to
	// on-the-fly reconstruction of a missing block (degraded read).
	DegradedTimeoutSec float64
	// Seed drives placement and node choices deterministically.
	Seed int64
}

// Validate fills defaults.
func (c *Config) Validate() error {
	if c.BlockSizeBytes <= 0 {
		return fmt.Errorf("hdfs: block size must be positive")
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 2
	}
	return nil
}

// Stripe is one redundancy group of a file: DataCount real data blocks
// plus parities (or replicas), spread over distinct nodes. Each stripe
// carries its own scheme so a filesystem can hold replicated, RS and LRC
// stripes side by side — the §3 lifecycle (replicate → RAID → migrate).
type Stripe struct {
	File      string
	Scheme    core.Scheme
	DataCount int
	// Node[pos] is the DataNode storing stripe position pos, or −1 when
	// the position is not stored (zero padding of short stripes).
	Node []int
	// Lost[pos] marks positions currently missing.
	Lost []bool
}

// Exists reports whether position pos is stored in this stripe.
func (s *Stripe) Exists(pos int) bool { return s.Node[pos] >= 0 }

// Available reports whether position pos is stored and not lost.
func (s *Stripe) Available(pos int) bool { return s.Exists(pos) && !s.Lost[pos] }

// masks returns the exists/avail slices the repair planner consumes.
func (s *Stripe) masks() (exists, avail []bool) {
	exists = make([]bool, len(s.Node))
	avail = make([]bool, len(s.Node))
	for i := range s.Node {
		exists[i] = s.Node[i] >= 0
		avail[i] = exists[i] && !s.Lost[i]
	}
	return exists, avail
}

// Counters is a snapshot of the FS metrics the experiments report.
type Counters struct {
	// HDFSBytesRead aggregates the decoder input bytes (Fig 4a/6a).
	HDFSBytesRead float64
	// NetOutBytes is the cluster-wide outgoing traffic (Fig 4b/6b).
	NetOutBytes float64
	// DiskReadBytes is the cluster-wide disk read traffic (Fig 5b).
	DiskReadBytes                                             float64
	BlocksRepaired, LightRepairs, HeavyRepairs, Unrecoverable int
	DegradedReads                                             int
}

// GroupedScheme is implemented by schemes with placement-relevant repair
// groups (the LRC): group-aware placement keeps each group inside one
// rack so light repairs stay rack-local (§1.1's geo-distribution story).
type GroupedScheme interface {
	core.Scheme
	Groups() [][]int
}

// FS is one DRFS instance on a cluster.
type FS struct {
	Cl      *cluster.Cluster
	Scheme  core.Scheme
	Cfg     Config
	Tracker *JobTracker

	rng     *rand.Rand
	stripes []*Stripe

	// GroupAwarePlacement places each repair group of a GroupedScheme in
	// a distinct rack.
	GroupAwarePlacement bool

	fixerArmed  bool
	pendingLost []blockRef

	counters Counters
	// Repair window: first repair-task launch and last repair completion
	// since the last ResetRepairWindow (−1 when unset); the paper's
	// Repair Duration metric (§5.1).
	firstRepairLaunch float64
	lastRepairEnd     float64
}

type blockRef struct {
	s   *Stripe
	pos int
}

// New creates a DRFS over the cluster with the given scheme.
func New(cl *cluster.Cluster, scheme core.Scheme, cfg Config) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FS{
		Cl:      cl,
		Scheme:  scheme,
		Cfg:     cfg,
		Tracker: NewJobTracker(cl, cfg.SlotsPerNode),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	fs.ResetRepairWindow()
	return fs, nil
}

// Stripes returns the filesystem's stripes (shared, do not mutate).
func (fs *FS) Stripes() []*Stripe { return fs.stripes }

// TotalBlocksStored counts stored (existing) block positions.
func (fs *FS) TotalBlocksStored() int {
	n := 0
	for _, s := range fs.stripes {
		for _, node := range s.Node {
			if node >= 0 {
				n++
			}
		}
	}
	return n
}

// BlocksOn counts stored, non-lost blocks on a node.
func (fs *FS) BlocksOn(node int) int {
	n := 0
	for _, s := range fs.stripes {
		for pos, nd := range s.Node {
			if nd == node && !s.Lost[pos] {
				n++
			}
		}
	}
	return n
}

// AddFile stripes a file of dataBlocks blocks across the cluster and
// returns its stripes. Placement follows the default policy: random
// DataNodes, never collocating blocks of the same stripe (§3.1.1).
func (fs *FS) AddFile(name string, dataBlocks int) ([]*Stripe, error) {
	if dataBlocks <= 0 {
		return nil, fmt.Errorf("hdfs: file %q has no blocks", name)
	}
	k := fs.Scheme.DataBlocks()
	var stripes []*Stripe
	for off := 0; off < dataBlocks; off += k {
		dc := dataBlocks - off
		if dc > k {
			dc = k
		}
		s, err := fs.placeStripe(name, fs.Scheme, dc)
		if err != nil {
			return nil, err
		}
		stripes = append(stripes, s)
		fs.stripes = append(fs.stripes, s)
	}
	return stripes, nil
}

// placeStripe allocates nodes for one stripe of the given scheme.
func (fs *FS) placeStripe(file string, scheme core.Scheme, dataCount int) (*Stripe, error) {
	slots := scheme.Slots()
	s := &Stripe{File: file, Scheme: scheme, DataCount: dataCount, Node: make([]int, slots), Lost: make([]bool, slots)}
	for i := range s.Node {
		s.Node[i] = -1
	}
	var positions []int
	for pos := 0; pos < slots; pos++ {
		if scheme.Exists(pos, dataCount) {
			positions = append(positions, pos)
		}
	}
	live := fs.Cl.LiveNodes()
	if len(live) < 2 {
		return nil, fmt.Errorf("hdfs: %d live nodes cannot hold a stripe", len(live))
	}
	if gs, ok := scheme.(GroupedScheme); ok && fs.GroupAwarePlacement {
		if err := fs.placeGroupAware(s, gs, positions, live); err == nil {
			return s, nil
		}
		// Fall through to random placement when racks don't fit.
	}
	// Random placement avoiding collocation; when the stripe is wider
	// than the cluster (e.g. 16-block Xorbas stripes on the 15-slave
	// WordCount cluster, §5.2.4), wrap around the shuffled node list so
	// collocation is minimized and even.
	perm := fs.rng.Perm(len(live))
	for i, pos := range positions {
		s.Node[pos] = live[perm[i%len(live)]]
	}
	return s, nil
}

// placeGroupAware puts each repair group in its own rack.
func (fs *FS) placeGroupAware(s *Stripe, gs GroupedScheme, positions []int, live []int) error {
	racks := map[int][]int{}
	for _, n := range live {
		r := fs.Cl.Rack(n)
		racks[r] = append(racks[r], n)
	}
	var rackIDs []int
	for r := range racks {
		rackIDs = append(rackIDs, r)
	}
	// Deterministic order.
	for i := 0; i < len(rackIDs); i++ {
		for j := i + 1; j < len(rackIDs); j++ {
			if rackIDs[j] < rackIDs[i] {
				rackIDs[i], rackIDs[j] = rackIDs[j], rackIDs[i]
			}
		}
	}
	groups := gs.Groups()
	if len(groups) > len(rackIDs) {
		return fmt.Errorf("hdfs: %d groups need %d racks", len(groups), len(rackIDs))
	}
	existsPos := map[int]bool{}
	for _, p := range positions {
		existsPos[p] = true
	}
	start := fs.rng.Intn(len(rackIDs))
	for gi, members := range groups {
		rack := racks[rackIDs[(start+gi)%len(rackIDs)]]
		var want []int
		for _, pos := range members {
			if existsPos[pos] {
				want = append(want, pos)
			}
		}
		if len(want) > len(rack) {
			return fmt.Errorf("hdfs: rack too small for group")
		}
		perm := fs.rng.Perm(len(rack))
		for i, pos := range want {
			s.Node[pos] = rack[perm[i]]
		}
	}
	return nil
}

// Snapshot returns the current counters (including cluster byte totals).
func (fs *FS) Snapshot() Counters {
	c := fs.counters
	c.NetOutBytes = fs.Cl.M.NetOutTotal
	c.DiskReadBytes = fs.Cl.M.DiskReadTotal
	return c
}

// Delta subtracts an earlier snapshot from the current one.
func (fs *FS) Delta(earlier Counters) Counters {
	now := fs.Snapshot()
	return Counters{
		HDFSBytesRead:  now.HDFSBytesRead - earlier.HDFSBytesRead,
		NetOutBytes:    now.NetOutBytes - earlier.NetOutBytes,
		DiskReadBytes:  now.DiskReadBytes - earlier.DiskReadBytes,
		BlocksRepaired: now.BlocksRepaired - earlier.BlocksRepaired,
		LightRepairs:   now.LightRepairs - earlier.LightRepairs,
		HeavyRepairs:   now.HeavyRepairs - earlier.HeavyRepairs,
		Unrecoverable:  now.Unrecoverable - earlier.Unrecoverable,
		DegradedReads:  now.DegradedReads - earlier.DegradedReads,
	}
}

// ResetRepairWindow clears the repair duration window.
func (fs *FS) ResetRepairWindow() {
	fs.firstRepairLaunch = -1
	fs.lastRepairEnd = -1
}

// RepairDuration returns the paper's Repair Duration: the interval from
// the first repair job launch to the last repair completion since the
// last ResetRepairWindow, or 0 if no repairs ran.
func (fs *FS) RepairDuration() float64 {
	if fs.firstRepairLaunch < 0 || fs.lastRepairEnd < 0 {
		return 0
	}
	return fs.lastRepairEnd - fs.firstRepairLaunch
}
