package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestUnrecoverableStripePartialProgress is the documented repair-worker
// behavior on a stripe past the data-loss edge: the blocks that still
// have a repair are rebuilt and persisted, the rest stay missing and the
// next scrub re-reports them. Group 2 (data 5..9 + local parity 15) is
// erased entirely — fatal for LRC(10,6,5) — plus block 0, which stays
// light-repairable from the rest of group 1.
func TestUnrecoverableStripePartialProgress(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	rng := rand.New(rand.NewSource(60))
	if err := s.Put("doomed", randBytes(rng, 128*10)); err != nil {
		t.Fatal(err)
	}
	lost := []int{0, 5, 6, 7, 8, 9, 15}
	for _, pos := range lost {
		node, key, err := s.BlockLocation("doomed", 0, pos)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Backend().Delete(node, key); err != nil {
			t.Fatal(err)
		}
	}
	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	rep := scrubAndDrain(t, s, rm)
	if rep.Missing != len(lost) {
		t.Fatalf("first scrub found %d missing, want %d", rep.Missing, len(lost))
	}
	m := s.Metrics()
	if m.RepairedBlocks != 1 {
		t.Fatalf("repaired %d blocks, want exactly the light-repairable one", m.RepairedBlocks)
	}
	// The rebuilt block 0 is durably back in the backend.
	node, key, err := s.BlockLocation("doomed", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Backend().Read(node, key)
	if err != nil {
		t.Fatalf("rebuilt block 0 not persisted: %v", err)
	}
	if _, err := UnframeBlock(raw); err != nil {
		t.Fatalf("rebuilt block 0 corrupt: %v", err)
	}
	// The next scrub re-reports exactly the unrecoverable remainder.
	rep2 := scrubAndDrain(t, s, rm)
	if rep2.Missing != len(lost)-1 {
		t.Fatalf("second scrub found %d missing, want %d", rep2.Missing, len(lost)-1)
	}
	if _, _, err := s.Get("doomed"); err == nil {
		t.Fatal("Get of an unrecoverable object should fail")
	}
}

// TestScrubPresenceRepairsNodeKill: the manifest-only walk finds a dead
// node's blocks without a single backend read and feeds the repair queue.
func TestScrubPresenceRepairsNodeKill(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 24, Racks: 8, BlockSize: 64})
	rng := rand.New(rand.NewSource(61))
	want := randBytes(rng, 64*10*2)
	if err := s.Put("p", want); err != nil {
		t.Fatal(err)
	}
	victim, _, err := s.BlockLocation("p", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.KillNode(victim)
	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := NewScrubber(s, rm, time.Hour)
	rep := sc.ScrubPresence()
	if rep.Missing == 0 || rep.Enqueued == 0 {
		t.Fatalf("presence scrub report %+v, want damage enqueued", rep)
	}
	if got := s.Metrics().ScrubBlocksRead; got != 0 {
		t.Fatalf("presence scrub read %d blocks, want 0", got)
	}
	rm.Drain()
	s.ReviveNode(victim)
	if rep := sc.ScrubOnce(); rep.Missing+rep.Corrupt != 0 {
		t.Fatalf("full scrub after presence repair still finds damage: %+v", rep)
	}
	got, info, err := s.Get("p")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-repair Get: err %v", err)
	}
	if info.Degraded {
		t.Fatal("post-repair Get still degraded")
	}
}

// TestPacedRepairRate is the pacing acceptance check: a rate-limited
// node-kill repair's measured backend read rate lands within 15% of the
// configured budget, while foreground Gets (never paced) stay fast.
func TestPacedRepairRate(t *testing.T) {
	const rate = 4 << 20 // 4 MB/s repair read budget
	s := newTestStore(t, Config{BlockSize: 64 << 10, RepairRateBytes: rate})
	rng := rand.New(rand.NewSource(62))
	if err := s.Put("big", randBytes(rng, 10<<20)); err != nil {
		t.Fatal(err)
	}
	probe := randBytes(rng, 256<<10)
	if err := s.Put("probe", probe); err != nil {
		t.Fatal(err)
	}
	victim, _, err := s.BlockLocation("big", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.KillNode(victim)
	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := NewScrubber(s, rm, time.Hour)
	sc.ScrubPresence()

	// Foreground Gets while the paced repair drains.
	done := make(chan struct{})
	var gets int
	var getTime time.Duration
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			t0 := time.Now()
			got, _, err := s.Get("probe")
			getTime += time.Since(t0)
			if err != nil || !bytes.Equal(got, probe) {
				t.Errorf("foreground Get under paced repair: %v", err)
				return
			}
			gets++
		}
	}()
	start := time.Now()
	rm.Drain()
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	m := s.Metrics()
	if m.RepairedBlocks == 0 {
		t.Fatal("paced repair rebuilt nothing")
	}
	measured := float64(m.RepairBytesRead) / elapsed.Seconds()
	if measured > 1.15*rate {
		t.Fatalf("measured repair read rate %.0f B/s exceeds budget %d by >15%%", measured, rate)
	}
	// The lower bound is a timing assertion; the race detector's
	// instrumentation slows the decode enough to blur it.
	if !raceEnabled && measured < 0.85*rate {
		t.Fatalf("measured repair read rate %.0f B/s more than 15%% under budget %d", measured, rate)
	}
	if gets == 0 {
		t.Fatal("no foreground Get completed during the paced repair")
	}
	if !raceEnabled {
		if avg := getTime / time.Duration(gets); avg > 250*time.Millisecond {
			t.Fatalf("foreground Get averaged %v under paced repair, want unpaced latency", avg)
		}
	}
}

// TestConcurrentStorePaced is the race-detector workout with both
// limiters engaged: writers, readers, a node killer, the background
// scrubber, presence scrubs and the paced repair pool all share one
// store. Budgets are set high so pacing code runs without slowing the
// test.
func TestConcurrentStorePaced(t *testing.T) {
	s := newTestStore(t, Config{
		Nodes: 24, Racks: 8, BlockSize: 64,
		RepairRateBytes: 128 << 20,
		ScrubRateBytes:  128 << 20,
	})
	rm := NewRepairManager(s, 3)
	rm.Start()
	sc := NewScrubber(s, rm, 3*time.Millisecond)
	sc.Start()

	const writers = 3
	var wg sync.WaitGroup
	finals := make([][]byte, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			name := fmt.Sprintf("pw%d", w)
			var last []byte
			for i := 0; i < 15; i++ {
				last = randBytes(rng, 1+rng.Intn(2500))
				if err := s.Put(name, last); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if got, _, err := s.Get(name); err != nil || !bytes.Equal(got, last) {
					t.Errorf("writer %d: read back: %v", w, err)
					return
				}
			}
			finals[w] = last
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(901))
		for i := 0; i < 20; i++ {
			n := rng.Intn(s.Nodes())
			s.KillNode(n)
			sc.ScrubPresence()
			time.Sleep(time.Millisecond)
			s.ReviveNode(n)
		}
	}()
	wg.Wait()
	sc.Stop()
	scrubAndDrain(t, s, rm)
	rm.Stop()
	for w := 0; w < writers; w++ {
		if finals[w] == nil {
			continue // writer failed; already reported
		}
		got, _, err := s.Get(fmt.Sprintf("pw%d", w))
		if err != nil || !bytes.Equal(got, finals[w]) {
			t.Fatalf("final Get pw%d: err %v", w, err)
		}
	}
}

// TestPlanReadsCached: the adapters' memoized plans match a fresh solve
// for arbitrary availability patterns, light flags included.
func TestPlanReadsCached(t *testing.T) {
	for _, codec := range []Codec{NewXorbasCodec(), NewRS104Codec()} {
		n := codec.NStored()
		rng := rand.New(rand.NewSource(63))
		for trial := 0; trial < 200; trial++ {
			avail := make([]bool, n)
			for i := range avail {
				avail[i] = rng.Intn(4) > 0
			}
			pos := rng.Intn(n)
			avail[pos] = false
			first, light1, err1 := codec.PlanReads(pos, avail)
			second, light2, err2 := codec.PlanReads(pos, avail) // cached
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: cached error mismatch: %v vs %v", codec.Name(), err1, err2)
			}
			if err1 != nil {
				continue
			}
			if light1 != light2 || len(first) != len(second) {
				t.Fatalf("%s: cached plan differs for pos %d", codec.Name(), pos)
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("%s: cached plan read set differs for pos %d", codec.Name(), pos)
				}
			}
			for _, j := range first {
				if j != pos && !avail[j] {
					t.Fatalf("%s: plan for %d reads unavailable block %d", codec.Name(), pos, j)
				}
			}
		}
	}
}
