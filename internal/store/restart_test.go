package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestDirBackendSurvivesRestart runs the full lifecycle the CLI promises
// — kill → scrub → repair → revive — across a simulated process restart:
// the store's metadata round-trips through Snapshot/Restore while the
// block bytes sit in a DirBackend on disk. Until now only MemBackend
// exercised this end to end.
func TestDirBackendSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	blocks := filepath.Join(root, "blocks")
	state := filepath.Join(root, "store.json")
	rng := rand.New(rand.NewSource(31))
	want := randBytes(rng, 256*10*3+17) // 4 stripes, last one partial

	// Process one: create, put, kill a node, save state, "exit".
	be1, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestStore(t, Config{Backend: be1, BlockSize: 256})
	if err := s1.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	victim, _, err := s1.BlockLocation("obj", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1.KillNode(victim)
	snap, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(state, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	// Process two: restore against a fresh backend over the same files.
	blob, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	be2, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Restore(Config{Backend: be2}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Alive(victim) {
		t.Fatalf("restart lost the dead node %d", victim)
	}
	got, info, err := s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("degraded Get after restart: err %v", err)
	}
	if !info.Degraded {
		t.Fatal("read of a killed data block was not degraded")
	}

	// Scrub + repair relocate the dead node's blocks onto live nodes.
	rm := NewRepairManager(s2, 2)
	rm.Start()
	sc := NewScrubber(s2, rm, 0)
	rep := sc.ScrubOnce()
	rm.Drain()
	rm.Stop()
	if rep.Missing == 0 {
		t.Fatal("scrub found nothing missing with a node down")
	}
	m := s2.Metrics()
	if m.RepairedBlocks == 0 {
		t.Fatal("repair rebuilt nothing")
	}
	got, info, err = s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("post-repair Get: err %v, degraded %v", err, info.Degraded)
	}

	// Revive the node: repair already invalidated its stale replicas, so
	// nothing stale can resurface.
	s2.ReviveNode(victim)
	got, info, err = s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("post-revival Get: err %v, degraded %v", err, info.Degraded)
	}

	// Process three: the repaired manifest round-trips too.
	snap2, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	be3, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Restore(Config{Backend: be3}, snap2)
	if err != nil {
		t.Fatal(err)
	}
	got, info, err = s3.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("Get after second restart: err %v, degraded %v", err, info.Degraded)
	}
}
