package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// countingBackend wraps a Backend and counts operations (atomically —
// the store's pools call it concurrently) — the probe the restart tests
// use to prove recovery never touched the block plane.
type countingBackend struct {
	Backend
	reads, writes, deletes atomic.Int64
}

func (c *countingBackend) Read(node int, key string) ([]byte, error) {
	c.reads.Add(1)
	return c.Backend.Read(node, key)
}

func (c *countingBackend) Write(node int, key string, data []byte) error {
	c.writes.Add(1)
	return c.Backend.Write(node, key, data)
}

func (c *countingBackend) Delete(node int, key string) error {
	c.deletes.Add(1)
	return c.Backend.Delete(node, key)
}

// TestCleanRestartNoPresenceWalk is the clean-shutdown half of the
// restart story: Close checkpoints the metadata plane, so the next open
// recovers every manifest from the checkpoint alone — zero WAL records
// replayed and, critically, zero backend reads. Restart cost is
// proportional to metadata, not data.
func TestCleanRestartNoPresenceWalk(t *testing.T) {
	root := t.TempDir()
	blocks := filepath.Join(root, "blocks")
	metaDir := filepath.Join(root, "meta")
	rng := rand.New(rand.NewSource(7))
	want := map[string][]byte{
		"a": randBytes(rng, 256*10*2),
		"b": randBytes(rng, 256*10+13),
		"c": randBytes(rng, 99),
	}

	be1, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestStore(t, Config{Backend: be1, BlockSize: 256, MetaDir: metaDir})
	for name, data := range want {
		if err := s1.Put(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	be2, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{Backend: be2}
	s2, err := New(Config{Backend: cb, BlockSize: 256, MetaDir: metaDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if cb.reads.Load() != 0 || cb.writes.Load() != 0 || cb.deletes.Load() != 0 {
		t.Fatalf("clean restart touched the backend: %d reads, %d writes, %d deletes",
			cb.reads.Load(), cb.writes.Load(), cb.deletes.Load())
	}
	objects, replayed := s2.MetaRecovered()
	if objects != len(want) {
		t.Fatalf("recovered %d objects, want %d", objects, len(want))
	}
	if replayed != 0 {
		t.Fatalf("clean restart replayed %d WAL records, want 0 (checkpoint at Close)", replayed)
	}
	for name, data := range want {
		got, info, err := s2.Get(name)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Get(%q) after clean restart: err %v", name, err)
		}
		if info.Degraded {
			t.Fatalf("Get(%q) after clean restart was degraded", name)
		}
	}
}

// TestCrashRestartReplaysWAL is the crash half: the first process never
// closes, so nothing is checkpointed and the next open must replay the
// WAL to recover the manifests. Every acked put is there; the node death
// survives via the liveness record; and the presence walk that finds the
// dead node's blocks is the scrubber's job after open, not recovery's.
func TestCrashRestartReplaysWAL(t *testing.T) {
	root := t.TempDir()
	blocks := filepath.Join(root, "blocks")
	metaDir := filepath.Join(root, "meta")
	rng := rand.New(rand.NewSource(8))
	want := randBytes(rng, 256*10*3+17)

	be1, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestStore(t, Config{Backend: be1, BlockSize: 256, MetaDir: metaDir})
	if err := s1.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	victim, _, err := s1.BlockLocation("obj", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1.KillNode(victim)
	// No Close: the process "crashes" here with only the WAL on disk.

	be2, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{Backend: be2}
	s2, err := New(Config{Backend: cb, BlockSize: 256, MetaDir: metaDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if cb.reads.Load() != 0 {
		t.Fatalf("recovery read %d blocks from the backend, want 0 (replay is metadata-only)", cb.reads.Load())
	}
	objects, replayed := s2.MetaRecovered()
	if objects != 1 {
		t.Fatalf("recovered %d objects, want 1", objects)
	}
	if replayed == 0 {
		t.Fatal("crash restart replayed no WAL records — the put was never logged")
	}
	if s2.Alive(victim) {
		t.Fatalf("crash restart lost the death of node %d", victim)
	}

	// The dead node's blocks surface through the scrubber's presence
	// walk, exactly as they would have before the crash.
	rm := NewRepairManager(s2, 2)
	rm.Start()
	sc := NewScrubber(s2, rm, 0)
	rep := sc.ScrubPresence()
	rm.Drain()
	rm.Stop()
	if rep.Missing == 0 {
		t.Fatal("presence walk found nothing missing with a node down")
	}
	got, info, err := s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get after crash restart + repair: err %v", err)
	}
	if info.Degraded {
		t.Fatal("repair left the read degraded")
	}
}

// TestRepairQueueSurvivesRestart: damage enqueued before a crash is
// repaired after it without waiting for a new scrub — the queue's
// entries are persisted (advisorily) in the metadata plane and re-queued
// by NewRepairManager.
func TestRepairQueueSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	blocks := filepath.Join(root, "blocks")
	metaDir := filepath.Join(root, "meta")
	rng := rand.New(rand.NewSource(9))
	want := randBytes(rng, 256*10*2+5)

	be1, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestStore(t, Config{Backend: be1, BlockSize: 256, MetaDir: metaDir})
	if err := s1.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	victim, _, err := s1.BlockLocation("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1.KillNode(victim)
	// Scrub finds the damage and enqueues it — but no manager ever runs,
	// and the process "crashes" with the queue entries only in the plane.
	rm1 := NewRepairManager(s1, 1)
	sc1 := NewScrubber(s1, rm1, 0)
	if rep := sc1.ScrubPresence(); rep.Enqueued == 0 {
		t.Fatal("scrub enqueued nothing with a node down")
	}
	// Force the advisory (no-sync) queue records to disk so this
	// simulated crash tests recovery, not fsync timing.
	if err := s1.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	be2, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Backend: be2, BlockSize: 256, MetaDir: metaDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rm2 := NewRepairManager(s2, 2)
	if rm2.Pending() == 0 {
		t.Fatal("restart lost the persisted repair queue")
	}
	rm2.Start()
	rm2.Drain()
	rm2.Stop()
	if s2.Metrics().RepairedBlocks == 0 {
		t.Fatal("recovered queue items repaired nothing")
	}
	got, info, err := s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("Get after recovered repair: err %v, degraded %v", err, info.Degraded)
	}
}

// TestDirBackendSurvivesRestart runs the full lifecycle the CLI promises
// — kill → scrub → repair → revive — across a simulated process restart:
// the store's metadata round-trips through Snapshot/Restore while the
// block bytes sit in a DirBackend on disk. Until now only MemBackend
// exercised this end to end.
func TestDirBackendSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	blocks := filepath.Join(root, "blocks")
	state := filepath.Join(root, "store.json")
	rng := rand.New(rand.NewSource(31))
	want := randBytes(rng, 256*10*3+17) // 4 stripes, last one partial

	// Process one: create, put, kill a node, save state, "exit".
	be1, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestStore(t, Config{Backend: be1, BlockSize: 256})
	if err := s1.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	victim, _, err := s1.BlockLocation("obj", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1.KillNode(victim)
	snap, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(state, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	// Process two: restore against a fresh backend over the same files.
	blob, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	be2, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Restore(Config{Backend: be2}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Alive(victim) {
		t.Fatalf("restart lost the dead node %d", victim)
	}
	got, info, err := s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("degraded Get after restart: err %v", err)
	}
	if !info.Degraded {
		t.Fatal("read of a killed data block was not degraded")
	}

	// Scrub + repair relocate the dead node's blocks onto live nodes.
	rm := NewRepairManager(s2, 2)
	rm.Start()
	sc := NewScrubber(s2, rm, 0)
	rep := sc.ScrubOnce()
	rm.Drain()
	rm.Stop()
	if rep.Missing == 0 {
		t.Fatal("scrub found nothing missing with a node down")
	}
	m := s2.Metrics()
	if m.RepairedBlocks == 0 {
		t.Fatal("repair rebuilt nothing")
	}
	got, info, err = s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("post-repair Get: err %v, degraded %v", err, info.Degraded)
	}

	// Revive the node: repair already invalidated its stale replicas, so
	// nothing stale can resurface.
	s2.ReviveNode(victim)
	got, info, err = s2.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("post-revival Get: err %v, degraded %v", err, info.Degraded)
	}

	// Process three: the repaired manifest round-trips too.
	snap2, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	be3, err := NewDirBackend(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Restore(Config{Backend: be3}, snap2)
	if err != nil {
		t.Fatal(err)
	}
	got, info, err = s3.Get("obj")
	if err != nil || !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("Get after second restart: err %v, degraded %v", err, info.Degraded)
	}
}
