package store

import (
	"sync"
	"time"
)

// The auto-liveness half of the failure plane. The paper's clusters
// learn of dead DataNodes from missed heartbeats and repair without an
// operator; here the HealthMonitor plays the NameNode's heartbeat
// ledger: it probes every node through the backend's health interface,
// flips the plane-durable liveness record after K consecutive failures
// (with hysteresis so a flapping node doesn't thrash repair), enqueues
// prioritized repair on confirmed death, and re-marks alive + re-scrubs
// on revival.

// NodeHealthInfo is one node's failure-plane snapshot: liveness as the
// store records it, plus whatever windowed transport accounting the
// backend keeps (breaker state, error rate, latency quantiles). A
// non-tracking backend leaves everything but Node and Alive zero, with
// State "untracked".
type NodeHealthInfo struct {
	Node  int
	Alive bool
	// State is the node's circuit-breaker state: "closed", "open",
	// "half-open", or "untracked" when the backend keeps no breaker.
	State       string
	ConsecFails int
	// Opens counts breaker open transitions since the client was built.
	Opens   int64
	LastErr string
	// Windowed accounting over the backend's recent operations.
	WindowOps     int
	WindowErrRate float64
	P50, P99      time.Duration
}

// HealthChecker is an optional Backend extension (like WireStats): one
// active liveness probe against a node. A nil error means the node
// answered; any error is a miss. Implementations may fail fast from
// local state (an open circuit breaker) instead of touching the wire —
// a node that has already proven itself down this cooldown window is
// down.
type HealthChecker interface {
	CheckNode(node int) error
}

// HealthStats is an optional Backend extension: per-node breaker and
// window snapshots for observability (the gateway's /healthz, xorbasctl
// node ping).
type HealthStats interface {
	NodeHealth() []NodeHealthInfo
}

// NodeHealth reports every node's failure-plane state: the backend's
// breaker/window snapshot when it keeps one (HealthStats), overlaid
// with the store's own liveness record.
func (s *Store) NodeHealth() []NodeHealthInfo {
	alive := s.aliveSnapshot()
	infos := make([]NodeHealthInfo, len(alive))
	for i := range infos {
		infos[i].State = "untracked"
	}
	if hs, ok := s.cfg.Backend.(HealthStats); ok {
		for i, info := range hs.NodeHealth() {
			if i < len(infos) {
				infos[i] = info
			}
		}
	}
	for i := range infos {
		infos[i].Node = i
		infos[i].Alive = alive[i]
	}
	return infos
}

// LiveNodes counts nodes currently marked alive.
func (s *Store) LiveNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := 0
	for _, a := range s.alive {
		if a {
			live++
		}
	}
	return live
}

// WriteDegraded reports whether the store has too few placeable nodes —
// alive AND in the active/joining membership set — to place a full
// stripe: writes would fail mid-stripe, so the gateway sheds them
// (503 + Retry-After) while reads keep serving degraded. Draining and
// dead members don't count even when their processes answer probes.
func (s *Store) WriteDegraded() bool {
	return s.PlaceableNodes() < s.cfg.Codec.NStored()
}

// MonitorConfig tunes a HealthMonitor. Zero fields take defaults.
type MonitorConfig struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// FailThreshold is how many consecutive missed probes confirm a
	// death (default 3) — the flap damper on the way down.
	FailThreshold int
	// ReviveThreshold is how many consecutive answered probes confirm a
	// revival (default 2) — hysteresis so a half-up node doesn't bounce
	// between repair and service.
	ReviveThreshold int
	// Probe overrides the backend's HealthChecker (tests inject fault
	// scripts here). When nil and the backend implements HealthChecker,
	// that is used; when neither exists the monitor is inert — Start
	// does nothing, and operator KillNode/ReviveNode calls stay the only
	// liveness authority.
	Probe func(node int) error
}

func (c *MonitorConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReviveThreshold <= 0 {
		c.ReviveThreshold = 2
	}
}

// HealthMonitor turns probe outcomes into liveness flips and repair
// work. With a probing backend the monitor's view tracks reality and
// overrides operator flips: a hand-killed node that still answers pings
// will be auto-revived, which is exactly the behavior the chaos tests
// assert (only a truly dead process stays dead).
type HealthMonitor struct {
	s     *Store
	rm    *RepairManager
	sc    *Scrubber
	cfg   MonitorConfig
	probe func(node int) error

	// Consecutive outcome streaks per node, touched only by the monitor
	// goroutine.
	fails, oks []int

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewHealthMonitor builds a monitor over the store. rm and sc may be
// nil — then confirmed deaths still flip liveness but nothing enqueues
// repair (the next operator-run scrub picks the damage up).
func NewHealthMonitor(s *Store, rm *RepairManager, sc *Scrubber, cfg MonitorConfig) *HealthMonitor {
	cfg.fillDefaults()
	probe := cfg.Probe
	if probe == nil {
		if hc, ok := s.cfg.Backend.(HealthChecker); ok {
			probe = hc.CheckNode
		}
	}
	return &HealthMonitor{
		s:     s,
		rm:    rm,
		sc:    sc,
		cfg:   cfg,
		probe: probe,
		fails: make([]int, s.cfg.Nodes),
		oks:   make([]int, s.cfg.Nodes),
		stop:  make(chan struct{}),
	}
}

// Start launches the probe loop. Idempotent; a no-op when no probe
// source exists.
func (m *HealthMonitor) Start() {
	if m.probe == nil {
		return
	}
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			t := time.NewTicker(m.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					m.tick()
				}
			}
		}()
	})
}

// Stop halts the probe loop and waits for any in-flight round (and the
// scrubs it triggered) to finish. Idempotent.
func (m *HealthMonitor) Stop() {
	m.stopOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
	})
}

// tick probes every node in parallel, then applies confirmed
// transitions. A death enqueues a presence scrub (manifest-only walk —
// every stripe touching the dead node lands in the prioritized repair
// queue); a revival runs a full scrub so anything the node lost while
// down is found and fixed.
func (m *HealthMonitor) tick() {
	// The node set can grow between ticks (AddNode); size every round
	// off the membership table and stretch the streak slices to match.
	states := m.s.memberStates()
	n := len(states)
	for len(m.fails) < n {
		m.fails = append(m.fails, 0)
		m.oks = append(m.oks, 0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.probe(i)
		}(i)
	}
	wg.Wait()

	died, revived := false, false
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			m.fails[i]++
			m.oks[i] = 0
			// A draining node's liveness belongs to the rebalancer's
			// drain protocol, not the monitor: flipping it dead here
			// would turn a planned drain into repair churn. Keep probing
			// (the streaks stay current) but suppress the kill.
			if states[i] == NodeDraining {
				continue
			}
			if m.fails[i] >= m.cfg.FailThreshold && m.s.Alive(i) {
				m.s.KillNode(i)
				m.s.m.autoDeaths.Add(1)
				died = true
			}
			continue
		}
		m.oks[i]++
		m.fails[i] = 0
		// Suppress revival for draining nodes (same reasoning as above)
		// and for dead members: a decommissioned process that still
		// answers pings must never rejoin the topology.
		if states[i] == NodeDraining || states[i] == NodeDead {
			continue
		}
		if m.oks[i] >= m.cfg.ReviveThreshold && !m.s.Alive(i) {
			m.s.ReviveNode(i)
			m.s.m.autoRevivals.Add(1)
			revived = true
		}
	}
	if m.sc == nil {
		return
	}
	if died {
		m.sc.ScrubPresence()
	}
	if revived {
		m.sc.ScrubOnce()
	}
}
