package store

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/pattern"
)

// patternBytes materializes size bytes of the shared deterministic
// stream for equality checks.
func patternBytes(t *testing.T, size int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(pattern.NewReader(int64(size))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosDegradedReadSlowAndDeadNode reads through one dead node plus
// one slow-and-flaky node: the dead node's blocks reconstruct, the slow
// node adds latency but not wrong bytes, and the object comes back
// byte-exact.
func TestChaosDegradedReadSlowAndDeadNode(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(), 1)
	s, err := New(Config{Backend: fb, Nodes: 20, BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	want := patternBytes(t, size)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}

	// Node holding stripe 0 block 0 dies outright (store-level kill);
	// the node holding block 1 stays up but slow and flaky.
	dead, _, err := s.BlockLocation("obj", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := s.BlockLocation("obj", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.KillNode(dead)
	fb.SetFault(slow, Fault{Latency: 2 * time.Millisecond, ErrRate: 0.3})

	for i := 0; i < 5; i++ {
		got, info, err := s.Get("obj")
		if err != nil {
			t.Fatalf("get %d under chaos: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("get %d returned wrong bytes", i)
		}
		if !info.Degraded {
			t.Fatalf("get %d read through a dead node without degrading", i)
		}
	}
}

// TestChaosRepairDrainNeverServesCorruptBytes runs the full kill →
// presence walk → repair drain cycle while three nodes randomly corrupt
// and fail reads. The CRC frame turns injected corruption into failed
// fetches, the planner routes around them, and neither a degraded read
// nor the repaired blocks ever contain a wrong byte.
func TestChaosRepairDrainNeverServesCorruptBytes(t *testing.T) {
	for _, sc := range []struct {
		name  string
		codec Codec
	}{
		{"xorbas10_6_5", NewXorbasCodec()},
		{"rs10_4", NewRS104Codec()},
	} {
		t.Run(sc.name, func(t *testing.T) {
			fb := NewFaultBackend(NewMemBackend(), 7)
			s, err := New(Config{Codec: sc.codec, Backend: fb, Nodes: 20, BlockSize: 16 << 10})
			if err != nil {
				t.Fatal(err)
			}
			const size = 2 << 20
			want := patternBytes(t, size)
			if err := s.Put("obj", want); err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{3, 7, 11} {
				fb.SetFault(n, Fault{CorruptRate: 0.2, ErrRate: 0.1})
			}
			victim, _, err := s.BlockLocation("obj", 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.KillNode(victim)

			rm := NewRepairManager(s, 2)
			rm.Start()
			defer rm.Stop()
			scr := NewScrubber(s, rm, 0)

			// Reads under chaos: always correct bytes or a clean error,
			// never silent corruption.
			for i := 0; i < 10; i++ {
				got, _, err := s.Get("obj")
				if err != nil {
					continue // an unlucky roll can exhaust a stripe's survivors
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("get %d served corrupt bytes", i)
				}
			}

			// The drain completes despite injected read failures; chaos can
			// leave stripes unrepaired on an attempt (partial progress), so
			// walk-and-drain until health, bounded.
			healthy := false
			for i := 0; i < 25 && !healthy; i++ {
				scr.ScrubPresence()
				rm.Drain()
				healthy = true
				for pos := 0; pos < s.Codec().NStored(); pos++ {
					node, key, err := s.BlockLocation("obj", 0, pos)
					if err != nil {
						t.Fatal(err)
					}
					if !s.Alive(node) {
						healthy = false
						break
					}
					if _, err := fb.Inner().Read(node, key); err != nil {
						healthy = false
						break
					}
				}
			}
			if !healthy {
				t.Fatal("repair drains never restored stripe 0 to full health")
			}

			// Chaos off: the repaired object is byte-exact and clean.
			for _, n := range []int{3, 7, 11} {
				fb.SetFault(n, Fault{})
			}
			got, _, err := s.Get("obj")
			if err != nil {
				t.Fatalf("get after repair: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("repair wrote corrupt bytes")
			}
		})
	}
}

// TestFaultBackendInjection pins the wrapper's own semantics: injected
// errors are ErrInjected, injected corruption never mutates the stored
// bytes, and a zero Fault heals the node.
func TestFaultBackendInjection(t *testing.T) {
	inner := NewMemBackend()
	fb := NewFaultBackend(inner, 42)
	block := FrameBlock([]byte("pristine"))
	if err := fb.Write(0, "k", block); err != nil {
		t.Fatal(err)
	}

	fb.SetFault(0, Fault{ErrRate: 1})
	if _, err := fb.Read(0, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := fb.Write(0, "k2", block); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on write, got %v", err)
	}

	fb.SetFault(0, Fault{CorruptRate: 1})
	got, err := fb.Read(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, block) {
		t.Fatal("CorruptRate 1 returned pristine bytes")
	}
	if _, err := UnframeBlock(got); err == nil {
		t.Fatal("corrupted frame still passed its CRC")
	}
	stored, err := inner.Read(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, block) {
		t.Fatal("injected corruption mutated the stored bytes")
	}

	fb.SetFault(0, Fault{})
	if got, err := fb.Read(0, "k"); err != nil || !bytes.Equal(got, block) {
		t.Fatalf("healed node still misbehaves: %v", err)
	}
}
