package store

import (
	"container/heap"
	"sync"
)

// repairItem is one damaged stripe queued for the BlockFixer.
type repairItem struct {
	ref stripeRef
	// damaged lists the stripe positions needing a rewrite (missing or
	// corrupt at scrub time; the worker re-probes before repairing).
	damaged []int
	// erasures is the risk key: how many blocks the stripe is down. A
	// Xorbas stripe at 4 erasures is one loss from data loss.
	erasures int
	// light is true when every damaged block had a light repair plan at
	// enqueue time.
	light bool
	// silent marks damage found by syndrome scan rather than read/CRC
	// failure: the blocks read back fine, so the worker must not mistake
	// a successful probe for healing.
	silent bool
	seq    int64 // FIFO tiebreak
}

// repairQueue is the §3 BlockFixer policy as a priority queue: stripes
// closer to data loss first; at equal risk, light repairs before heavy
// (they finish faster and free the queue); then FIFO. Pop blocks until an
// item arrives or the queue closes. Safe for concurrent use.
type repairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  repairHeap
	queued map[stripeRef]bool // dedupe: one pending item per stripe
	// inFlight counts items popped but not yet Done — WaitIdle's other
	// half.
	inFlight int
	closed   bool
	seq      int64
}

func newRepairQueue() *repairQueue {
	q := &repairQueue{queued: make(map[stripeRef]bool)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a damaged stripe unless it is already pending. Reports
// whether the item was accepted.
func (q *repairQueue) Push(it repairItem) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.queued[it.ref] {
		return false
	}
	q.seq++
	it.seq = q.seq
	q.queued[it.ref] = true
	heap.Push(&q.items, it)
	// Broadcast, not Signal: the one woken waiter could be a WaitIdle
	// caller rather than a Pop, stranding the item.
	q.cond.Broadcast()
	return true
}

// Pop blocks until an item is available or the queue closes (ok=false).
func (q *repairQueue) Pop() (repairItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return repairItem{}, false
	}
	it := heap.Pop(&q.items).(repairItem)
	delete(q.queued, it.ref)
	q.inFlight++
	return it, true
}

// Done marks a popped item fully processed.
func (q *repairQueue) Done() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inFlight--
	q.cond.Broadcast()
}

// WaitIdle blocks until no items are pending or in flight.
func (q *repairQueue) WaitIdle() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) > 0 || q.inFlight > 0 {
		q.cond.Wait()
	}
}

// Len returns the number of pending items.
func (q *repairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes all blocked Pops; subsequent Pushes are dropped.
func (q *repairQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// repairHeap orders items by (erasures desc, light first, seq asc).
type repairHeap []repairItem

func (h repairHeap) Len() int { return len(h) }

func (h repairHeap) Less(i, j int) bool {
	if h[i].erasures != h[j].erasures {
		return h[i].erasures > h[j].erasures
	}
	if h[i].light != h[j].light {
		return h[i].light
	}
	return h[i].seq < h[j].seq
}

func (h repairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *repairHeap) Push(x any) { *h = append(*h, x.(repairItem)) }

func (h *repairHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
