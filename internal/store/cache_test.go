package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBlockCacheEviction: the byte budget holds — inserting far more
// than fits evicts LRU entries, keeps residency at or under budget, and
// the freshest key still hits.
func TestBlockCacheEviction(t *testing.T) {
	const budget = 16 << 10
	c := newBlockCache(budget)
	payload := make([]byte, 512)
	var last string
	for i := 0; i < 256; i++ {
		last = fmt.Sprintf("key-%04d", i)
		c.add(last, payload)
	}
	if got := c.bytes.Load(); got > budget {
		t.Fatalf("resident %d bytes, budget %d", got, budget)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("256×512 bytes into a 16 KiB cache evicted nothing")
	}
	p, e := c.get(last)
	if e == nil {
		t.Fatalf("just-added key %q already evicted", last)
	}
	if len(p) != len(payload) {
		t.Fatalf("payload %d bytes, want %d", len(p), len(payload))
	}
	c.unpin(e)
	// Oversized payloads are refused outright, not admitted-then-evicted.
	big := make([]byte, budget)
	before := c.bytes.Load()
	c.add("whale", big)
	if _, e := c.get("whale"); e != nil {
		t.Fatal("payload larger than a shard budget was admitted")
	}
	if got := c.bytes.Load(); got != before {
		t.Fatalf("refused insert changed residency %d -> %d", before, got)
	}
}

// TestBlockCachePinBlocksEviction: a pinned entry survives budget
// pressure in its shard — the evictor walks past it and takes an
// unpinned victim instead.
func TestBlockCachePinBlocksEviction(t *testing.T) {
	// Shard budget fits two 100-byte entries but not three.
	c := newBlockCache(cacheShards * 250)
	hot := "hot-key"
	sh := c.shardFor(hot)
	payload := make([]byte, 100)
	c.add(hot, payload)
	_, pin := c.get(hot)
	if pin == nil {
		t.Fatal("warm key missed")
	}
	// Flood the pinned entry's shard until evictions must have happened
	// there.
	added := 0
	for i := 0; added < 8 && i < 10000; i++ {
		k := fmt.Sprintf("flood-%04d", i)
		if c.shardFor(k) == sh {
			c.add(k, payload)
			added++
		}
	}
	if added < 8 {
		t.Fatal("no flood keys landed in the pinned entry's shard")
	}
	if _, e := c.get(hot); e == nil {
		t.Fatal("pinned entry was evicted under shard pressure")
	} else {
		c.unpin(e)
	}
	c.unpin(pin)
	// Unpinned and at the LRU tail now: the next flood may take it.
	c.invalidate(hot)
	if _, e := c.get(hot); e != nil {
		t.Fatal("invalidated key still hits")
	}
}

// TestCachedReadsSkipBackend: the tentpole behavior — a repeat read of
// a warm object costs zero backend block reads, for full gets and
// ranged gets alike.
func TestCachedReadsSkipBackend(t *testing.T) {
	cb := &countingBackend{Backend: NewMemBackend()}
	s := newTestStore(t, Config{Backend: cb, BlockSize: 128, CacheBytes: 64 << 20})
	rng := rand.New(rand.NewSource(7))
	k := s.Codec().K()
	want := randBytes(rng, 3*128*k+57)
	if err := s.Put("hot", want); err != nil {
		t.Fatal(err)
	}
	got, info, err := s.Get("hot")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("warming Get: err %v", err)
	}
	if info.BlocksRead == 0 {
		t.Fatal("warming Get read no blocks")
	}
	readsAfterWarm := cb.reads.Load()

	got, info, err = s.Get("hot")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("cached Get: err %v", err)
	}
	if info.BlocksRead != 0 || info.BytesRead != 0 {
		t.Fatalf("cached Get cost %d blocks / %d bytes, want 0", info.BlocksRead, info.BytesRead)
	}
	if got := cb.reads.Load(); got != readsAfterWarm {
		t.Fatalf("cached Get hit the backend: %d -> %d reads", readsAfterWarm, got)
	}

	var buf bytes.Buffer
	info, err = s.GetRange("hot", 100, 500, &buf)
	if err != nil || !bytes.Equal(buf.Bytes(), want[100:600]) {
		t.Fatalf("cached GetRange: err %v", err)
	}
	if info.BlocksRead != 0 {
		t.Fatalf("cached GetRange read %d blocks, want 0", info.BlocksRead)
	}
	if got := cb.reads.Load(); got != readsAfterWarm {
		t.Fatalf("cached GetRange hit the backend: %d -> %d reads", readsAfterWarm, got)
	}

	m := s.Metrics()
	if m.CacheHits == 0 || m.CacheMisses == 0 || m.CacheBytes == 0 {
		t.Fatalf("cache metrics hits=%d misses=%d bytes=%d, want all nonzero", m.CacheHits, m.CacheMisses, m.CacheBytes)
	}
}

// TestCacheInvalidationOnOverwriteAndDelete: retire routes through the
// cache, so an overwrite serves new bytes, residency doesn't accumulate
// dead generations, and a delete leaves nothing resident.
func TestCacheInvalidationOnOverwriteAndDelete(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128, CacheBytes: 64 << 20})
	rng := rand.New(rand.NewSource(8))
	k := s.Codec().K()
	v1 := randBytes(rng, 2*128*k)
	v2 := randBytes(rng, 2*128*k)
	if err := s.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Get("obj"); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("v1 Get: err %v", err)
	}
	resident1 := s.Metrics().CacheBytes
	if err := s.Put("obj", v2); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Get("obj"); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("post-overwrite Get: err %v", err)
	}
	m := s.Metrics()
	if m.CacheInvalidations == 0 {
		t.Fatal("overwrite retired v1 without invalidating its cache entries")
	}
	if m.CacheBytes > resident1 {
		t.Fatalf("residency grew across overwrite: %d -> %d (stale generation retained)", resident1, m.CacheBytes)
	}
	if err := s.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().CacheBytes; got != 0 {
		t.Fatalf("%d bytes resident after deleting the only object", got)
	}
}

// TestCacheRepairCoherence is the kill → cache-warm → repair → read
// sequence: cached entries serve reads while the node is down, the
// repair write-back invalidates exactly the rewritten block, and the
// post-repair read is byte-exact with one backend re-read.
func TestCacheRepairCoherence(t *testing.T) {
	cb := &countingBackend{Backend: NewMemBackend()}
	s := newTestStore(t, Config{Backend: cb, Nodes: 24, Racks: 8, BlockSize: 128, CacheBytes: 64 << 20})
	rng := rand.New(rand.NewSource(9))
	k := s.Codec().K()
	want := randBytes(rng, 128*k) // one full stripe
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Get("obj"); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("warming Get: err %v", err)
	}

	victim, _, err := s.BlockLocation("obj", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.KillNode(victim)

	// With the node dead, the warm cache still serves the whole object —
	// no degraded read, no backend traffic.
	got, info, err := s.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get with node down: err %v", err)
	}
	if info.BlocksRead != 0 || info.Degraded {
		t.Fatalf("warm read under node kill cost %d blocks (degraded=%v), want cache-served", info.BlocksRead, info.Degraded)
	}

	rm := NewRepairManager(s, 2)
	rm.Start()
	sc := NewScrubber(s, rm, time.Hour)
	if rep := sc.ScrubPresence(); rep.Enqueued == 0 {
		t.Fatalf("presence scrub found nothing to repair: %+v", rep)
	}
	rm.Drain()
	rm.Stop()
	if s.Metrics().CacheInvalidations == 0 {
		t.Fatal("repair write-back invalidated no cache entries")
	}

	// Post-repair read: byte-exact, and only the rewritten block misses.
	got, info, err = s.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-repair Get: err %v", err)
	}
	if info.BlocksRead != 1 {
		t.Fatalf("post-repair Get read %d blocks, want exactly the repaired one", info.BlocksRead)
	}
}

// TestCacheChurnRace hammers one hot key with parallel Get/GetRange
// readers under overwrite churn. Every read must observe one internally
// consistent version (the per-generation keying means a read can never
// stitch two generations together), and the cache must still be earning
// hits. Run with -race in CI.
func TestCacheChurnRace(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 64, CacheBytes: 64 << 20})
	k := s.Codec().K()
	size := 5*64*k + 33
	payloadFor := func(v byte) []byte {
		p := make([]byte, size)
		for i := range p {
			p[i] = v ^ byte(i%251)
		}
		return p
	}
	// checkVersion runs inside reader goroutines, so it must report with
	// Errorf (FailNow is for the test goroutine only).
	checkVersion := func(got []byte, off int) bool {
		if len(got) == 0 {
			t.Error("empty read")
			return false
		}
		v := got[0] ^ byte(off%251)
		for j := range got {
			if want := v ^ byte((off+j)%251); got[j] != want {
				t.Errorf("byte %d of version-%d read: got %#x want %#x (generations mixed?)", off+j, v, got[j], want)
				return false
			}
		}
		return true
	}
	if err := s.Put("hot", payloadFor(0)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := byte(1); v <= 40; v++ {
			if err := s.Put("hot", payloadFor(v)); err != nil {
				t.Errorf("overwrite %d: %v", v, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			churning := true
			for i := 0; churning || i%4 != 0; i++ {
				select {
				case <-done:
					churning = false
				default:
				}
				if (r+i)%2 == 0 {
					got, _, err := s.Get("hot")
					if err != nil {
						t.Errorf("Get under churn: %v", err)
						return
					}
					if !checkVersion(got, 0) {
						return
					}
				} else {
					off := 100 + (r+i)%200
					var buf bytes.Buffer
					if _, err := s.GetRange("hot", int64(off), 300, &buf); err != nil {
						t.Errorf("GetRange under churn: %v", err)
						return
					}
					if !checkVersion(buf.Bytes(), off) {
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	m := s.Metrics()
	if m.CacheHits == 0 {
		t.Fatal("no cache hits under churn")
	}
	if m.CacheInvalidations == 0 {
		t.Fatal("40 overwrites invalidated nothing")
	}
}
