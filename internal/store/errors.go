package store

import (
	"errors"
	"fmt"
)

// The store's error contract: exported sentinels callers test with
// errors.Is instead of matching message strings. The HTTP gateway maps
// them straight to status codes (ErrNotFound→404, ErrBadKey→400,
// ErrBadRange→416, ErrUnrecoverable→503), and the netblock protocol
// carries the distinctions across the wire as status bytes.

// sentinelError is a fixed-message error that wraps a broader sentinel,
// so errors.Is matches both the specific error and its umbrella.
type sentinelError struct {
	msg   string
	under error
}

func (e *sentinelError) Error() string { return e.msg }
func (e *sentinelError) Unwrap() error { return e.under }

// ErrNotFound is the umbrella "the thing you named does not exist"
// sentinel: ErrBlockNotFound and ErrObjectNotFound both wrap it, so a
// caller that only cares about existence (the gateway's 404 mapping)
// tests one sentinel.
var ErrNotFound = errors.New("store: not found")

// ErrBlockNotFound reports a block absent from a backend. Wraps
// ErrNotFound.
var ErrBlockNotFound error = &sentinelError{"store: block not found", ErrNotFound}

// ErrObjectNotFound reports a Get/Delete/Stat of an unknown object.
// Wraps ErrNotFound.
var ErrObjectNotFound error = &sentinelError{"store: object not found", ErrNotFound}

// ErrBadKey reports an object name outside the store's key contract
// (see ValidateName).
var ErrBadKey = errors.New("store: invalid object name")

// ErrBadRange reports a GetRange window that lies outside the object.
var ErrBadRange = errors.New("store: invalid range")

// ErrUnrecoverable reports a stripe with more damage than the codec can
// decode around — data is genuinely lost until a node revival brings
// blocks back.
var ErrUnrecoverable = errors.New("store: unrecoverable stripe")

// ErrCorrupt reports a block whose payload does not match its checksum.
var ErrCorrupt = errors.New("store: block checksum mismatch")

// maxNameLen bounds an object name; manifests and block keys embed it.
const maxNameLen = 1024

// ValidateName checks an object name against the store's key contract:
// non-empty, at most 1024 bytes, every byte in [A-Za-z0-9._/-], and no
// "." / ".." / empty path segments ('/' is the namespace separator the
// gateway layers tenants with; block keys sanitize it away, but meta
// keys and backend paths must never see a traversal segment). Violations
// return an error wrapping ErrBadKey.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadKey)
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("%w: name longer than %d bytes", ErrBadKey, maxNameLen)
	}
	segStart := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '/' {
			seg := name[segStart:i]
			if seg == "" || seg == "." || seg == ".." {
				return fmt.Errorf("%w: path segment %q", ErrBadKey, seg)
			}
			segStart = i + 1
			continue
		}
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return fmt.Errorf("%w: byte %q outside [A-Za-z0-9._/-]", ErrBadKey, c)
		}
	}
	return nil
}
