package store

import (
	"errors"
	"sync"
	"time"
)

// The background BlockFixer of §3 split into its two halves: a Scrubber
// that "periodically checks for lost or corrupted blocks" and a
// RepairManager whose goroutine pool drains the prioritized repair queue,
// rebuilding blocks (light local decode first) and rewriting them to live
// nodes.

// RepairManager owns the repair queue and its worker pool.
type RepairManager struct {
	s       *Store
	q       *repairQueue
	workers int

	startOnce sync.Once
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// NewRepairManager builds a manager with the given pool size (≤0 means 2
// workers, mirroring the throttled production fixer).
func NewRepairManager(s *Store, workers int) *RepairManager {
	if workers <= 0 {
		workers = 2
	}
	return &RepairManager{s: s, q: newRepairQueue(), workers: workers}
}

// Start launches the worker pool. Idempotent.
func (r *RepairManager) Start() {
	r.startOnce.Do(func() {
		for w := 0; w < r.workers; w++ {
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				for {
					it, ok := r.q.Pop()
					if !ok {
						return
					}
					r.repairOne(it)
					r.q.Done()
				}
			}()
		}
	})
}

// Stop drains the queue and stops the workers. Idempotent; blocks until
// in-flight repairs finish.
func (r *RepairManager) Stop() {
	r.stopOnce.Do(func() {
		r.q.Close()
		r.wg.Wait()
	})
}

// Drain blocks until the queue is empty and every in-flight repair has
// finished — the test and CLI barrier between "scrub found damage" and
// "damage is gone".
func (r *RepairManager) Drain() { r.q.WaitIdle() }

// Pending returns the queued repair count.
func (r *RepairManager) Pending() int { return r.q.Len() }

// enqueue admits one damaged stripe (deduplicated by the queue).
func (r *RepairManager) enqueue(it repairItem) bool { return r.q.Push(it) }

// repairOne rebuilds a damaged stripe's blocks and rewrites them. The
// stripe is re-probed first: the damage may have healed (node revived) or
// grown since scrub time.
func (r *RepairManager) repairOne(it repairItem) {
	s := r.s
	si, ok := s.stripeSnapshot(it.ref)
	if !ok {
		return // object deleted since scrub
	}
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	avail := make([]bool, n)
	for pos := 0; pos < n; pos++ {
		avail[pos] = s.Alive(si.Nodes[pos])
	}
	stripe := make([][]byte, n)
	var damaged []int
	for _, pos := range it.damaged {
		if !it.silent {
			if p, err := s.readBlockPayload(&si, pos, acct); err == nil {
				stripe[pos] = p // healed under us; reuse the bytes
				continue
			}
		}
		avail[pos] = false
		damaged = append(damaged, pos)
	}
	if len(damaged) == 0 {
		return
	}
	// On an unrecoverable stripe reconstructPositions still rebuilds what
	// it can before failing; persist that partial progress — every block
	// written back moves the stripe away from the data-loss edge. Scrub
	// re-reports whatever is still missing.
	_ = s.reconstructPositions(&si, stripe, damaged, avail, acct)
	aliveNow := s.aliveSnapshot()
	var frame []byte // reused across rewrites; Write never retains it
	for _, pos := range damaged {
		if stripe[pos] == nil {
			continue // this one could not be rebuilt
		}
		node := si.Nodes[pos]
		if node < 0 || node >= len(aliveNow) || !aliveNow[node] {
			// Re-place on a live node, keeping the rack rule against the
			// rest of the stripe. Slots on dead nodes don't constrain.
			cur := append([]int(nil), si.Nodes...)
			for q, nd := range cur {
				if nd < 0 || nd >= len(aliveNow) || !aliveNow[nd] {
					cur[q] = -1
				}
			}
			repl := s.placer.pickReplacement(si.Seq, pos, cur, aliveNow)
			if repl < 0 {
				continue // no live node; nothing to write to
			}
			old := node
			node = repl
			si.Nodes[pos] = repl
			if old != node {
				// Invalidate the stale replica so a revived node cannot
				// resurface it (HDFS re-registration would do the same).
				_ = s.cfg.Backend.Delete(old, si.Keys[pos])
			}
		}
		frame = AppendFrame(frame[:0], stripe[pos])
		if err := s.cfg.Backend.Write(node, si.Keys[pos], frame); err != nil {
			continue
		}
		if s.relocateBlock(it.ref, pos, node, si.Keys[pos]) {
			s.m.repairedBlocks.Add(1)
		} else {
			// The object was deleted or overwritten while we repaired:
			// remove the block we just wrote or it leaks as an orphan.
			_ = s.cfg.Backend.Delete(node, si.Keys[pos])
		}
	}
	s.m.mergeRepair(acct)
}

// ScrubReport summarizes one full scrub pass.
type ScrubReport struct {
	// Stripes is how many stripes were checked.
	Stripes int
	// Missing and Corrupt count damaged blocks found.
	Missing, Corrupt int
	// Enqueued is how many stripes were handed to the repair queue.
	Enqueued int
}

// Scrubber walks every stripe, verifying presence, per-block CRCs and the
// codec's group syndromes, and enqueues damage for repair.
type Scrubber struct {
	s  *Store
	rm *RepairManager
	// Interval is the background walk period.
	interval time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewScrubber builds a scrubber feeding the manager's queue.
func NewScrubber(s *Store, rm *RepairManager, interval time.Duration) *Scrubber {
	if interval <= 0 {
		interval = time.Second
	}
	return &Scrubber{s: s, rm: rm, interval: interval, stop: make(chan struct{})}
}

// Start launches the periodic background walk. Idempotent.
func (sc *Scrubber) Start() {
	sc.startOnce.Do(func() {
		sc.wg.Add(1)
		go func() {
			defer sc.wg.Done()
			t := time.NewTicker(sc.interval)
			defer t.Stop()
			for {
				select {
				case <-sc.stop:
					return
				case <-t.C:
					sc.ScrubOnce()
				}
			}
		}()
	})
}

// Stop halts the background walk. Idempotent.
func (sc *Scrubber) Stop() {
	sc.stopOnce.Do(func() {
		close(sc.stop)
		sc.wg.Wait()
	})
}

// ScrubOnce walks every stripe synchronously and returns what it found.
func (sc *Scrubber) ScrubOnce() ScrubReport {
	var rep ScrubReport
	for _, ref := range sc.s.stripeRefs() {
		miss, corr, enq := sc.scrubStripe(ref)
		rep.Stripes++
		rep.Missing += miss
		rep.Corrupt += corr
		if enq {
			rep.Enqueued++
		}
	}
	return rep
}

// scrubStripe checks one stripe: every block is read and CRC-verified;
// full stripes additionally pass through the codec's syndrome scan
// (GroupSyndrome via LocateCorruption), which catches corruption whose
// checksum was rewritten to match. Damage is enqueued with its risk
// priority.
func (sc *Scrubber) scrubStripe(ref stripeRef) (missing, corrupt int, enqueued bool) {
	s := sc.s
	si, ok := s.stripeSnapshot(ref)
	if !ok {
		return 0, 0, false
	}
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	stripe := make([][]byte, n)
	avail := make([]bool, n)
	var damaged []int
	silent := false
	for pos := 0; pos < n; pos++ {
		p, err := s.readBlockPayload(&si, pos, acct)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				corrupt++
			} else {
				missing++
			}
			damaged = append(damaged, pos)
			continue
		}
		stripe[pos] = p
		avail[pos] = true
	}
	if len(damaged) == 0 {
		// Full stripe: group syndromes localize any block whose payload
		// and CRC were both silently rewritten.
		if bad, err := s.cfg.Codec.LocateCorruption(stripe); err == nil && len(bad) > 0 {
			for _, pos := range bad {
				avail[pos] = false
			}
			damaged = bad
			corrupt += len(bad)
			silent = true
		}
	}
	s.m.scrubbedStripes.Add(1)
	s.m.mergeScrub(acct)
	if len(damaged) == 0 {
		return 0, 0, false
	}
	s.m.missingFound.Add(int64(missing))
	s.m.corruptFound.Add(int64(corrupt))
	light := true
	for _, pos := range damaged {
		if _, l, err := s.cfg.Codec.PlanReads(pos, avail); err != nil || !l {
			light = false
			break
		}
	}
	enqueued = sc.rm.enqueue(repairItem{
		ref:      ref,
		damaged:  damaged,
		erasures: len(damaged),
		light:    light,
		silent:   silent,
	})
	return missing, corrupt, enqueued
}
