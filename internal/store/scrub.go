package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/meta"
)

// The background BlockFixer of §3 split into its two halves: a Scrubber
// that "periodically checks for lost or corrupted blocks" and a
// RepairManager whose goroutine pool drains the prioritized repair queue,
// rebuilding blocks (light local decode first) and rewriting them to live
// nodes.

// RepairManager owns the repair queue and its worker pool.
type RepairManager struct {
	s       *Store
	q       *repairQueue
	workers int

	startOnce sync.Once
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// NewRepairManager builds a manager with the given pool size (≤0 means 2
// workers, mirroring the throttled production fixer). Repair items the
// previous process persisted but never finished are re-queued, so damage
// found before a crash is repaired after it without waiting for the next
// scrub.
func NewRepairManager(s *Store, workers int) *RepairManager {
	if workers <= 0 {
		workers = 2
	}
	r := &RepairManager{s: s, q: newRepairQueue(), workers: workers}
	it := s.db.Scan(qPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		r.q.Push(v.(*repairRecord).item())
	}
	return r
}

// Start launches the worker pool. Each worker runs a two-stage pipeline
// mirroring the PR 3 stream engine: while stripe i's rebuilt blocks are
// being written back (and the manifest relocated), the worker is already
// fetching and decoding stripe i+1's sources. The queue item stays
// in-flight until its write-back lands, so Drain still means "damage
// gone", not "damage decoded". Idempotent.
func (r *RepairManager) Start() {
	r.startOnce.Do(func() {
		for w := 0; w < r.workers; w++ {
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				var scratch repairScratch
				var join func() // pending write-back of the previous item
				for {
					it, ok := r.q.Pop()
					if !ok {
						break
					}
					write := r.repairFetch(it, &scratch)
					if join != nil {
						join() // write-backs are serialized per worker
					}
					join = r.asyncWrite(it, write)
				}
				if join != nil {
					join()
				}
			}()
		}
	})
}

// asyncWrite runs a repair write-back concurrently with the worker's
// next fetch, marking the queue item done only once the blocks are
// durable. The returned join blocks until then. A nil write (stripe
// healed, deleted or unrecoverable — the common no-op cases) completes
// inline without spawning anything.
func (r *RepairManager) asyncWrite(it repairItem, write func()) func() {
	if write == nil {
		r.finish(it)
		return nil
	}
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		write()
		r.finish(it)
	}()
	return func() { <-ch }
}

// finish retires a processed queue item: its persisted record is removed
// (no-sync — the record is advisory) and the queue's in-flight count
// drops.
func (r *RepairManager) finish(it repairItem) {
	_ = r.s.db.CommitNoSync(func(tx *meta.Tx) { tx.Delete(qKey(it.ref)) })
	r.q.Done()
}

// Stop drains the queue and stops the workers. Idempotent; blocks until
// in-flight repairs finish.
func (r *RepairManager) Stop() {
	r.stopOnce.Do(func() {
		r.q.Close()
		r.wg.Wait()
	})
}

// Drain blocks until the queue is empty and every in-flight repair has
// finished — the test and CLI barrier between "scrub found damage" and
// "damage is gone".
func (r *RepairManager) Drain() { r.q.WaitIdle() }

// Pending returns the queued repair count.
func (r *RepairManager) Pending() int { return r.q.Len() }

// enqueue admits one damaged stripe (deduplicated by the queue) and
// persists it to the metadata plane. The record is committed without a
// sync: losing it in a crash only costs a rediscovery by the next scrub,
// which is not worth an fsync per enqueue.
func (r *RepairManager) enqueue(it repairItem) bool {
	if !r.q.Push(it) {
		return false
	}
	_ = r.s.db.CommitNoSync(func(tx *meta.Tx) { tx.Put(qKey(it.ref), recordOf(it)) })
	return true
}

// repairScratch is one worker's pair of reusable framed block slabs.
// Rebuilt payloads are decoded straight into a slab's payload windows and
// written back from the same bytes (CRC stamped in place) — zero copies
// and zero steady-state allocation inside a repair. Two slabs ping-pong
// because the write-back of stripe i overlaps the decode of stripe i+1;
// write-backs themselves are serialized per worker, so slab i is free
// again by the time stripe i+2 decodes.
type repairScratch struct {
	slabs [2][]byte
	turn  int
}

// next returns n framed block buffers of payloadLen bytes carved from
// the worker's next slab, growing it as needed.
func (rs *repairScratch) next(n, payloadLen int) [][]byte {
	need := n * (4 + payloadLen)
	slab := rs.slabs[rs.turn]
	if cap(slab) < need {
		slab = make([]byte, need)
		rs.slabs[rs.turn] = slab
	}
	rs.turn ^= 1
	return carveFramedBufs(slab[:need], n, payloadLen)
}

// repairFetch re-probes a damaged stripe and rebuilds its blocks — the
// read/decode half of a repair, paced by the repair limiter — returning
// the write-back step for the pipeline to overlap with the next fetch
// (nil when nothing needs writing). The stripe is re-probed first: the
// damage may have healed (node revived) or grown since scrub time.
// Rebuilt payloads land in framed slab buffers: scratch-owned for a
// copying backend, freshly allocated for an owning one (the buffers are
// gone for good once handed over, exactly like the streaming put).
func (r *RepairManager) repairFetch(it repairItem, scratch *repairScratch) func() {
	s := r.s
	si, ok := s.stripeSnapshot(it.ref)
	if !ok {
		return nil // object deleted since scrub
	}
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	avail := make([]bool, n)
	for pos := 0; pos < n; pos++ {
		avail[pos] = s.Alive(si.Nodes[pos])
	}
	stripe := make([][]byte, n)
	var damaged []int
	for _, pos := range it.damaged {
		if !it.silent {
			if p, err := s.readBlockPayload(&si, pos, acct, s.repairLim); err == nil {
				stripe[pos] = p // healed under us; reuse the bytes
				continue
			}
		}
		avail[pos] = false
		damaged = append(damaged, pos)
	}
	if len(damaged) == 0 {
		s.m.mergeRepair(acct)
		return nil
	}
	bs := si.BlockLen
	var bufs [][]byte
	if s.ownedW != nil {
		bufs = makeFramedBufs(len(damaged), bs)
	} else {
		bufs = scratch.next(len(damaged), bs)
	}
	slotOf := func(pos int) int {
		for di, p := range damaged {
			if p == pos {
				return di
			}
		}
		return -1
	}
	// On an unrecoverable stripe the batched decode still rebuilds what
	// it can before failing; persist that partial progress — every block
	// written back moves the stripe away from the data-loss edge. Scrub
	// re-reports whatever is still missing.
	_ = s.reconstructInto(&si, stripe, damaged, avail, acct, s.repairLim,
		func(pos int) []byte { return bufs4(bufs[slotOf(pos)], bs) })
	s.m.mergeRepair(acct)
	var rebuilt []int
	for _, pos := range damaged {
		if stripe[pos] != nil {
			rebuilt = append(rebuilt, pos)
		}
	}
	if len(rebuilt) == 0 {
		return nil
	}
	return func() {
		s.writeRepaired(it.ref, si, stripe, rebuilt, func(pos int) []byte { return bufs[slotOf(pos)] })
	}
}

// writeRepaired is the write-back half of a repair: place each rebuilt
// block on a live node (re-placing off dead ones under the rack rule),
// stamp its frame's CRC in place and write it — handing the buffer over
// outright on an owning backend — then splice the new location into the
// manifest.
func (s *Store) writeRepaired(ref stripeRef, si stripeInfo, stripe [][]byte, rebuilt []int, frameOf func(pos int) []byte) {
	aliveNow := s.aliveSnapshot()
	placeable := s.placeableSnapshot()
	for _, pos := range rebuilt {
		node := si.Nodes[pos]
		if node < 0 || node >= len(aliveNow) || !aliveNow[node] {
			// Re-place on a live placeable node (never a drainer — repair
			// must not refill a node mid-decommission), keeping the rack
			// rule against the rest of the stripe. Slots on dead nodes
			// don't constrain.
			cur := append([]int(nil), si.Nodes...)
			for q, nd := range cur {
				if nd < 0 || nd >= len(aliveNow) || !aliveNow[nd] {
					cur[q] = -1
				}
			}
			repl := s.placer.pickReplacement(si.Seq, pos, cur, placeable)
			if repl < 0 {
				continue // no live node; nothing to write to
			}
			old := node
			node = repl
			si.Nodes[pos] = repl
			if old != node {
				// Invalidate the stale replica so a revived node cannot
				// resurface it (HDFS re-registration would do the same).
				_ = s.cfg.Backend.Delete(old, si.Keys[pos])
			}
		}
		frame := frameOf(pos)
		binary.LittleEndian.PutUint32(frame, crc32.Checksum(frame[4:], castagnoli))
		var err error
		if s.ownedW != nil {
			err = s.ownedW.WriteOwned(node, si.Keys[pos], frame)
		} else {
			err = s.cfg.Backend.Write(node, si.Keys[pos], frame)
		}
		if err != nil {
			continue
		}
		if s.relocateBlock(ref, pos, node, si.Keys[pos]) {
			s.m.repairedBlocks.Add(1)
			s.m.repairedBytes.Add(int64(len(stripe[pos])))
		} else {
			// The object was deleted or overwritten while we repaired:
			// remove the block we just wrote or it leaks as an orphan.
			_ = s.cfg.Backend.Delete(node, si.Keys[pos])
		}
	}
}

// ScrubReport summarizes one full scrub pass.
type ScrubReport struct {
	// Stripes is how many stripes were checked.
	Stripes int
	// Missing and Corrupt count damaged blocks found.
	Missing, Corrupt int
	// Enqueued is how many stripes were handed to the repair queue.
	Enqueued int
}

// Scrubber walks every stripe, verifying presence, per-block CRCs and the
// codec's group syndromes, and enqueues damage for repair.
type Scrubber struct {
	s  *Store
	rm *RepairManager
	// Interval is the background walk period.
	interval time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewScrubber builds a scrubber feeding the manager's queue.
func NewScrubber(s *Store, rm *RepairManager, interval time.Duration) *Scrubber {
	if interval <= 0 {
		interval = time.Second
	}
	return &Scrubber{s: s, rm: rm, interval: interval, stop: make(chan struct{})}
}

// Start launches the periodic background walk. Idempotent.
func (sc *Scrubber) Start() {
	sc.startOnce.Do(func() {
		sc.wg.Add(1)
		go func() {
			defer sc.wg.Done()
			t := time.NewTicker(sc.interval)
			defer t.Stop()
			for {
				select {
				case <-sc.stop:
					return
				case <-t.C:
					sc.ScrubOnce()
				}
			}
		}()
	})
}

// Stop halts the background walk. Idempotent.
func (sc *Scrubber) Stop() {
	sc.stopOnce.Do(func() {
		close(sc.stop)
		sc.wg.Wait()
	})
}

// ScrubOnce walks every stripe synchronously and returns what it found.
// The walk streams through the metadata plane's prefix iterator — one
// shard's manifests in memory at a time, never a global snapshot — so
// scrub cost stays flat as the namespace grows.
func (sc *Scrubber) ScrubOnce() ScrubReport {
	var rep ScrubReport
	it := sc.s.db.Scan(objPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		obj := v.(*objectInfo)
		for i := range obj.Stripes {
			ref := stripeRef{name: obj.Name, gen: obj.Gen, idx: i}
			miss, corr, enq := sc.scrubStripe(ref)
			rep.Stripes++
			rep.Missing += miss
			rep.Corrupt += corr
			if enq {
				rep.Enqueued++
			}
		}
	}
	return rep
}

// ScrubPresence walks every stripe's manifest and enqueues stripes with
// blocks on dead nodes — the node-failure detection path of the §3
// BlockFixer (HDFS learns of a dead DataNode from missed heartbeats, not
// from reading blocks). No backend reads and no CRC checks happen, so a
// node kill turns into queued repairs at manifest-walk speed; silent
// corruption and deleted blocks on live nodes are ScrubOnce's job.
func (sc *Scrubber) ScrubPresence() ScrubReport {
	var rep ScrubReport
	s := sc.s
	n := s.cfg.Codec.NStored()
	it := s.db.Scan(objPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		obj := v.(*objectInfo)
		for idx := range obj.Stripes {
			// The iterator's manifests are immutable (copy-on-write plane),
			// so the stripe can be inspected directly — no re-lookup, no
			// copy. A stale view only mis-ages a repair item; the queue item
			// carries the generation and the repair re-probes.
			si := &obj.Stripes[idx]
			rep.Stripes++
			avail := make([]bool, n)
			var damaged []int
			for pos := 0; pos < n; pos++ {
				if s.Alive(si.Nodes[pos]) {
					avail[pos] = true
				} else {
					damaged = append(damaged, pos)
				}
			}
			if len(damaged) == 0 {
				continue
			}
			rep.Missing += len(damaged)
			s.m.missingFound.Add(int64(len(damaged)))
			light := true
			for _, pos := range damaged {
				if _, l, err := s.cfg.Codec.PlanReads(pos, avail); err != nil || !l {
					light = false
					break
				}
			}
			if sc.rm.enqueue(repairItem{
				ref:      stripeRef{name: obj.Name, gen: obj.Gen, idx: idx},
				damaged:  damaged,
				erasures: len(damaged),
				light:    light,
			}) {
				rep.Enqueued++
			}
		}
	}
	return rep
}

// scrubStripe checks one stripe: every block is read and CRC-verified;
// full stripes additionally pass through the codec's syndrome scan
// (GroupSyndrome via LocateCorruption), which catches corruption whose
// checksum was rewritten to match. Damage is enqueued with its risk
// priority.
func (sc *Scrubber) scrubStripe(ref stripeRef) (missing, corrupt int, enqueued bool) {
	s := sc.s
	si, ok := s.stripeSnapshot(ref)
	if !ok {
		return 0, 0, false
	}
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	stripe := make([][]byte, n)
	avail := make([]bool, n)
	var damaged []int
	silent := false
	for pos := 0; pos < n; pos++ {
		p, err := s.readBlockPayload(&si, pos, acct, s.scrubLim)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				corrupt++
			} else {
				missing++
			}
			damaged = append(damaged, pos)
			continue
		}
		stripe[pos] = p
		avail[pos] = true
	}
	if len(damaged) == 0 {
		// Full stripe: group syndromes localize any block whose payload
		// and CRC were both silently rewritten.
		if bad, err := s.cfg.Codec.LocateCorruption(stripe); err == nil && len(bad) > 0 {
			for _, pos := range bad {
				avail[pos] = false
			}
			damaged = bad
			corrupt += len(bad)
			silent = true
		}
	}
	s.m.scrubbedStripes.Add(1)
	s.m.mergeScrub(acct)
	if len(damaged) == 0 {
		return 0, 0, false
	}
	s.m.missingFound.Add(int64(missing))
	s.m.corruptFound.Add(int64(corrupt))
	light := true
	for _, pos := range damaged {
		if _, l, err := s.cfg.Codec.PlanReads(pos, avail); err != nil || !l {
			light = false
			break
		}
	}
	enqueued = sc.rm.enqueue(repairItem{
		ref:      ref,
		damaged:  damaged,
		erasures: len(damaged),
		light:    light,
		silent:   silent,
	})
	return missing, corrupt, enqueued
}
