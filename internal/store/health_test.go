package store

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable schedule clock stepped by tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestFaultScheduleMode steps a fake clock through a time-varying fault
// script: healthy → dead → healed, with no real sleeps.
func TestFaultScheduleMode(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(), 1)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	fb.SetNow(clk.now)
	fb.SetFaultSchedule(3, []FaultStep{
		{After: 100 * time.Millisecond, Fault: Fault{ErrRate: 1}},
		{After: 300 * time.Millisecond, Fault: Fault{}},
	})

	if err := fb.CheckNode(3); err != nil {
		t.Fatalf("node healthy before first step, got: %v", err)
	}
	clk.advance(150 * time.Millisecond)
	if err := fb.CheckNode(3); err == nil {
		t.Fatal("node should fail inside the ErrRate-1 window")
	}
	if err := fb.Write(3, "k", []byte("x")); err == nil {
		t.Fatal("write should fail inside the ErrRate-1 window")
	}
	// Other nodes are untouched by node 3's schedule.
	if err := fb.CheckNode(4); err != nil {
		t.Fatalf("unrelated node failed: %v", err)
	}
	clk.advance(200 * time.Millisecond) // t=350ms: past the heal step
	if err := fb.CheckNode(3); err != nil {
		t.Fatalf("node should be healed after the last step, got: %v", err)
	}
	// SetFault replaces the schedule entirely.
	fb.SetFault(3, Fault{})
	clk.advance(-300 * time.Millisecond) // back inside the dead window
	if err := fb.CheckNode(3); err != nil {
		t.Fatalf("SetFault should clear the schedule, got: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthMonitorAutoDeathRepairRevival is the self-healing loop in
// miniature: a scripted node death is detected by the monitor (no
// operator KillNode), repair drains the damage to live nodes, the node
// heals, and the monitor revives it — with the object byte-exact at
// every stage.
func TestHealthMonitorAutoDeathRepairRevival(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(), 1)
	s, err := New(Config{Backend: fb, Nodes: 20, BlockSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const size = 256 << 10
	want := patternBytes(t, size)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}

	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := NewScrubber(s, rm, time.Hour) // no background walks; the monitor triggers scrubs
	mon := NewHealthMonitor(s, rm, sc, MonitorConfig{
		Interval:        10 * time.Millisecond,
		FailThreshold:   3,
		ReviveThreshold: 2,
	})
	mon.Start()
	defer mon.Stop()

	const victim = 2
	fb.SetFault(victim, Fault{ErrRate: 1})

	waitFor(t, 10*time.Second, "auto-death", func() bool { return !s.Alive(victim) })
	if got := s.Metrics().AutoDeaths; got < 1 {
		t.Fatalf("AutoDeaths = %d, want >= 1", got)
	}
	// The monitor's presence scrub enqueued the dead node's stripes;
	// repair drains them to live nodes.
	rm.Drain()
	waitFor(t, 10*time.Second, "repair to land", func() bool {
		return s.Metrics().RepairedBlocks > 0
	})
	got, _, err := s.Get("obj")
	if err != nil {
		t.Fatalf("get with dead node: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("get with dead node returned wrong bytes")
	}

	// Heal: the monitor revives without operator action.
	fb.SetFault(victim, Fault{})
	waitFor(t, 10*time.Second, "auto-revival", func() bool { return s.Alive(victim) })
	if got := s.Metrics().AutoRevivals; got < 1 {
		t.Fatalf("AutoRevivals = %d, want >= 1", got)
	}
	got, _, err = s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("get after revival returned wrong bytes")
	}
}

// TestHealthMonitorFlapDamping scripts a node that fails probes in
// bursts shorter than the fail threshold: the monitor must never flip
// it dead.
func TestHealthMonitorFlapDamping(t *testing.T) {
	s, err := New(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	probe := func(node int) error {
		if node != 0 {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls%3 == 0 {
			return nil // every third probe succeeds: streaks never reach 3
		}
		return ErrInjected
	}
	mon := NewHealthMonitor(s, nil, nil, MonitorConfig{
		Interval:      5 * time.Millisecond,
		FailThreshold: 3,
		Probe:         probe,
	})
	mon.Start()
	time.Sleep(200 * time.Millisecond)
	mon.Stop()
	if !s.Alive(0) {
		t.Fatal("flapping node below the fail threshold was marked dead")
	}
	if got := s.Metrics().AutoDeaths; got != 0 {
		t.Fatalf("AutoDeaths = %d, want 0", got)
	}
}

// TestWriteDegradedThreshold kills nodes until a full stripe no longer
// fits and checks WriteDegraded flips exactly at the codec's stored
// width.
func TestWriteDegradedThreshold(t *testing.T) {
	s, err := New(Config{Nodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Codec().NStored() // 16 for LRC(10,6,5)
	for i := 0; i < 20-n; i++ {
		s.KillNode(i)
		if s.WriteDegraded() {
			t.Fatalf("WriteDegraded with %d live nodes, threshold is %d", 20-i-1, n)
		}
	}
	s.KillNode(19)
	if !s.WriteDegraded() {
		t.Fatalf("not WriteDegraded with %d live nodes, threshold is %d", n-1, n)
	}
	s.ReviveNode(19)
	if s.WriteDegraded() {
		t.Fatal("WriteDegraded after revival")
	}
}

// TestNodeHealthOverlay checks the store's NodeHealth merges its
// liveness record over the backend view (untracked for MemBackend).
func TestNodeHealthOverlay(t *testing.T) {
	s, err := New(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.KillNode(2)
	infos := s.NodeHealth()
	if len(infos) != 4 {
		t.Fatalf("got %d nodes, want 4", len(infos))
	}
	for i, info := range infos {
		if info.Node != i {
			t.Fatalf("node %d reported as %d", i, info.Node)
		}
		if info.State != "untracked" {
			t.Fatalf("MemBackend node state = %q, want untracked", info.State)
		}
		if wantAlive := i != 2; info.Alive != wantAlive {
			t.Fatalf("node %d alive = %v", i, info.Alive)
		}
	}
	if s.LiveNodes() != 3 {
		t.Fatalf("LiveNodes = %d, want 3", s.LiveNodes())
	}
}

// TestHedgedReadBeatsStraggler puts one slow node in the cluster and
// checks the hedge fires: the read returns byte-exact well before the
// sum of straggler stalls, reconstruction wins at least once, and the
// counters say so.
func TestHedgedReadBeatsStraggler(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(), 1)
	s, err := New(Config{
		Backend:       fb,
		Nodes:         20,
		BlockSize:     16 << 10,
		HedgeQuantile: 0.9,
		HedgeMinDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	want := patternBytes(t, size)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	// Warm the latency histogram with a clean read.
	if _, _, err := s.Get("obj"); err != nil {
		t.Fatal(err)
	}

	const stall = 250 * time.Millisecond
	fb.SetFault(4, Fault{Latency: stall})
	start := time.Now()
	got, info, err := s.Get("obj")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hedged read returned wrong bytes")
	}
	m := s.Metrics()
	if m.HedgeFires < 1 {
		t.Fatalf("HedgeFires = %d, want >= 1 (read took %v)", m.HedgeFires, elapsed)
	}
	if m.HedgeWins < 1 {
		t.Fatalf("HedgeWins = %d, want >= 1", m.HedgeWins)
	}
	if !info.Degraded {
		t.Fatal("a hedged read is a degraded read; ReadInfo.Degraded = false")
	}
	// ~6 stripes and the slow node holds a block in most of them: an
	// un-hedged read would stack several stalls serially. The hedged
	// read must land in well under two stall lengths.
	if elapsed > 2*stall {
		t.Fatalf("hedged read took %v with a %v straggler", elapsed, stall)
	}
}
