package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/meta"
)

// Backend stores opaque block bytes for simulated nodes. Implementations
// must be safe for concurrent use; the store never relies on a backend to
// detect corruption (blocks are framed with a CRC above this layer).
type Backend interface {
	// Write stores a block, replacing any previous value. The streaming
	// put path reuses data's backing array after Write returns, so
	// implementations must copy or persist the bytes, never retain the
	// slice.
	Write(node int, key string, data []byte) error
	// Read returns the block bytes, or an error wrapping
	// ErrBlockNotFound. The returned slice
	// may alias the backend's own storage: callers must treat it as
	// read-only (every consumer in the store does — payloads are decoded,
	// verified and served, never edited in place).
	Read(node int, key string) ([]byte, error)
	// Delete removes the block; deleting a missing block is not an error.
	Delete(node int, key string) error
}

// OwnedWriter is an optional Backend fast path: WriteOwned stores a block
// taking ownership of data's backing array, so an in-memory backend can
// keep the slice instead of copying it. The caller must never touch data
// again after a successful WriteOwned. Backends that persist bytes
// elsewhere (disk, network) simply don't implement it and the store falls
// back to Write.
type OwnedWriter interface {
	WriteOwned(node int, key string, data []byte) error
}

// WireStats is an optional Backend extension for backends that move
// blocks over a network: cumulative protocol bytes sent to and received
// from each node. Store.Metrics folds the totals in as
// WireSentBytes/WireRecvBytes, so the paper's repair-traffic claim can
// be read off real wire counters instead of in-process accounting.
type WireStats interface {
	WireTraffic() (sent, recv []int64)
}

// NodeAdder is an optional Backend extension for backends with per-node
// addressing (the netblock client): AddNode registers one more node and
// returns its id, which must equal the previous node count. Backends
// addressed by plain integer index (MemBackend, DirBackend) accept any
// node id natively and don't implement it; the store then grows
// membership without a registration step. Implementations may return an
// error wrapping errors.ErrUnsupported to decline.
type NodeAdder interface {
	AddNode(addr string) (int, error)
}

// BlockStreamer is an optional Backend extension for moving whole framed
// blocks without holding them in one wire frame — the migration path for
// blocks bigger than a protocol message. ReadBlockTo streams a block's
// framed bytes into w and returns the byte count; WriteBlockFrom streams
// r into the block, replacing any previous value, atomically on success
// (a reader never observes a half-written block). Implementations may
// return an error wrapping errors.ErrUnsupported; callers then fall back
// to whole-frame Read/Write.
type BlockStreamer interface {
	ReadBlockTo(node int, key string, w io.Writer) (int64, error)
	WriteBlockFrom(node int, key string, r io.Reader) (int64, error)
}

// castagnoli is the CRC32C table (the polynomial HDFS uses for block
// checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the framed encoding of payload — the 4-byte
// little-endian CRC32C header followed by the payload bytes — to dst and
// returns the extended slice. With a reused dst (frame = AppendFrame(
// frame[:0], payload)) the hot paths frame blocks with no per-block
// allocation.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// FrameBlock prepends the 4-byte little-endian CRC32C of the payload: the
// on-disk block format. The payload is copied into a fresh slice; inner
// loops should prefer AppendFrame with a reused buffer.
func FrameBlock(payload []byte) []byte {
	return AppendFrame(make([]byte, 0, 4+len(payload)), payload)
}

// UnframeBlock validates and strips the CRC header, returning the payload
// (aliasing the input) or ErrCorrupt.
func UnframeBlock(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d-byte block has no header", ErrCorrupt, len(b))
	}
	payload := b[4:]
	if binary.LittleEndian.Uint32(b) != crc32.Checksum(payload, castagnoli) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// MemBackend keeps blocks in memory: the default for tests, benchmarks and
// the walkthrough examples.
type MemBackend struct {
	mu    sync.RWMutex
	nodes map[int]map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{nodes: make(map[int]map[string][]byte)}
}

// Write implements Backend.
func (m *MemBackend) Write(node int, key string, data []byte) error {
	return m.WriteOwned(node, key, append([]byte(nil), data...))
}

// WriteOwned implements OwnedWriter: the slice is stored directly, so the
// streaming put path's framed block buffers become the stored blocks with
// zero copies.
func (m *MemBackend) WriteOwned(node int, key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	blocks := m.nodes[node]
	if blocks == nil {
		blocks = make(map[string][]byte)
		m.nodes[node] = blocks
	}
	blocks[key] = data
	return nil
}

// Read implements Backend. The returned slice aliases the stored block
// (the Backend contract makes reads read-only), so a memory-backed read
// costs a map lookup, not a copy. The alias stays valid after Delete or
// an overwriting Write: those replace the map entry, never the bytes.
func (m *MemBackend) Read(node int, key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.nodes[node][key]
	if !ok {
		return nil, fmt.Errorf("%w: node %d key %q", ErrBlockNotFound, node, key)
	}
	return b, nil
}

// Delete implements Backend.
func (m *MemBackend) Delete(node int, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.nodes[node], key)
	return nil
}

// Corrupt flips one payload byte of a stored block — a test and
// walkthrough hook simulating silent disk corruption. The mutation goes
// through a copy-on-write replacement of the map entry: Read hands out
// aliases of stored bytes, so the bytes themselves must stay immutable.
func (m *MemBackend) Corrupt(node int, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.nodes[node][key]
	if !ok {
		return fmt.Errorf("%w: node %d key %q", ErrBlockNotFound, node, key)
	}
	nb := append([]byte(nil), b...)
	nb[len(nb)-1] ^= 0xFF
	m.nodes[node][key] = nb
	return nil
}

// BlockCount returns how many blocks a node holds.
func (m *MemBackend) BlockCount(node int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes[node])
}

// DirBackend stores each simulated node as a directory under root
// (root/node03/<key>), so a killed "node" is a directory you can inspect,
// corrupt or delete from the shell.
type DirBackend struct {
	root string
}

// tmpPrefix marks in-flight block writes. Block keys are sanitized to
// [A-Za-z0-9._-] (see blockKey), so a real block file can never start
// with '#' and the prefix is unambiguous to sweep.
const tmpPrefix = "#tmp-"

// NewDirBackend returns a backend rooted at dir, creating it if needed
// and sweeping temp files left by writers that crashed mid-Write. A
// store directory is owned by one process at a time (the CLI model), so
// any temp file present at open belongs to a dead writer.
func NewDirBackend(dir string) (*DirBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "node*", tmpPrefix+"*"))
	for _, p := range stale {
		_ = os.Remove(p)
	}
	return &DirBackend{root: dir}, nil
}

// Path returns the file a block lives at (whether or not it exists).
func (d *DirBackend) Path(node int, key string) string {
	return filepath.Join(d.root, fmt.Sprintf("node%03d", node), key)
}

// Write implements Backend crash-safely: the bytes go to a uniquely
// named temp file in the block's own directory (same filesystem, so the
// rename is atomic), are fsynced, and only then renamed into place —
// then the node directory itself is fsynced, because the rename lives in
// the directory: without that a crash can lose the directory entry of a
// block the store already acked. A crash or kill mid-write leaves a
// stray temp file (swept at the next NewDirBackend), never a torn frame
// at the real key — the scrubber then sees a cleanly missing block to
// repair instead of silent corruption. The unique temp name also keeps
// concurrent writers of one key from interleaving into each other's
// file.
func (d *DirBackend) Write(node int, key string, data []byte) error {
	p := d.Path(node, key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), tmpPrefix+filepath.Base(p)+"-")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return meta.SyncDir(filepath.Dir(p))
}

// Read implements Backend.
func (d *DirBackend) Read(node int, key string) ([]byte, error) {
	b, err := os.ReadFile(d.Path(node, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: node %d key %q", ErrBlockNotFound, node, key)
	}
	return b, err
}

// Delete implements Backend.
func (d *DirBackend) Delete(node int, key string) error {
	err := os.Remove(d.Path(node, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
