package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestRoundTrip(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	rng := rand.New(rand.NewSource(1))
	k := s.Codec().K()
	sizes := []int{0, 1, 17, 128, 128 * k, 128*k + 1, 3*128*k - 5}
	for _, n := range sizes {
		name := fmt.Sprintf("obj-%d", n)
		want := randBytes(rng, n)
		if err := s.Put(name, want); err != nil {
			t.Fatalf("Put(%d bytes): %v", n, err)
		}
		got, info, err := s.Get(name)
		if err != nil {
			t.Fatalf("Get(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%d bytes): payload mismatch", n)
		}
		if info.Degraded {
			t.Fatalf("Get(%d bytes): unexpectedly degraded", n)
		}
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 64})
	rng := rand.New(rand.NewSource(2))
	v1, v2 := randBytes(rng, 5000), randBytes(rng, 300)
	if err := s.Put("a", v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", v2); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get("a")
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("overwrite: got %d bytes, err %v", len(got), err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("a"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("Get after Delete: err %v, want ErrObjectNotFound", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("double Delete: err %v, want ErrObjectNotFound", err)
	}
	mb := s.Backend().(*MemBackend)
	for n := 0; n < s.Nodes(); n++ {
		if c := mb.BlockCount(n); c != 0 {
			t.Fatalf("node %d still holds %d blocks after delete", n, c)
		}
	}
}

// TestDegradedReadProperty is the package's central property test: random
// objects, random erasure/corruption patterns up to the Xorbas distance
// (d−1 = 4 per stripe), byte-exact reads throughout, and light/heavy
// accounting that matches the code's group structure.
func TestDegradedReadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newTestStore(t, Config{BlockSize: 64})
	codec := s.Codec()
	k, n := codec.K(), codec.NStored()
	groupOf := make([]int, n)
	for gi, members := range codec.RepairGroups() {
		for _, m := range members {
			groupOf[m] = gi
		}
	}
	mb := s.Backend().(*MemBackend)
	for trial := 0; trial < 60; trial++ {
		name := fmt.Sprintf("prop-%d", trial)
		want := randBytes(rng, 1+rng.Intn(4*64*k))
		if err := s.Put(name, want); err != nil {
			t.Fatal(err)
		}
		// Damage every stripe independently: up to 4 blocks erased or
		// corrupted.
		stripes := 0
		for _, o := range s.Objects() {
			if o.Name == name {
				stripes = o.Stripes
			}
		}
		type damage struct{ stripe, pos int }
		var damagedData []damage
		for si := 0; si < stripes; si++ {
			count := rng.Intn(5) // 0..4 ≤ d−1
			perm := rng.Perm(n)[:count]
			for _, pos := range perm {
				node, key, err := s.BlockLocation(name, si, pos)
				if err != nil {
					t.Fatal(err)
				}
				if rng.Intn(2) == 0 {
					if err := mb.Delete(node, key); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := mb.Corrupt(node, key); err != nil {
						t.Fatal(err)
					}
				}
				if pos < k {
					damagedData = append(damagedData, damage{si, pos})
				}
			}
		}
		got, info, err := s.Get(name)
		if err != nil {
			t.Fatalf("trial %d: degraded Get: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: payload mismatch under damage", trial)
		}
		if (len(damagedData) > 0) != info.Degraded {
			t.Fatalf("trial %d: Degraded=%v with %d damaged data blocks", trial, info.Degraded, len(damagedData))
		}
		if info.LightRepairs+info.HeavyRepairs != int64(len(damagedData)) {
			t.Fatalf("trial %d: %d+%d repairs accounted, want %d",
				trial, info.LightRepairs, info.HeavyRepairs, len(damagedData))
		}
		if err := s.Delete(name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLightPathAccounting pins the acceptance criterion: a single lost
// data block whose repair group is intact is served by the light decoder.
func TestLightPathAccounting(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 256})
	rng := rand.New(rand.NewSource(4))
	want := randBytes(rng, 256*10) // one full stripe
	if err := s.Put("x", want); err != nil {
		t.Fatal(err)
	}
	node, key, err := s.BlockLocation("x", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Backend().(*MemBackend).Delete(node, key); err != nil {
		t.Fatal(err)
	}
	got, info, err := s.Get("x")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("degraded Get: err %v", err)
	}
	if info.LightRepairs != 1 || info.HeavyRepairs != 0 {
		t.Fatalf("light=%d heavy=%d, want 1/0", info.LightRepairs, info.HeavyRepairs)
	}

	// Break the group (lose a second member) and the same read goes heavy.
	node, key, err = s.BlockLocation("x", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Backend().(*MemBackend).Delete(node, key); err != nil {
		t.Fatal(err)
	}
	got, info, err = s.Get("x")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("doubly-degraded Get: err %v", err)
	}
	// Two losses in one group: the first rebuild is heavy, after which the
	// group is whole again and the second is light.
	if info.LightRepairs+info.HeavyRepairs != 2 || info.HeavyRepairs < 1 {
		t.Fatalf("light=%d heavy=%d, want one heavy among two", info.LightRepairs, info.HeavyRepairs)
	}
}

func TestRSDegradedReads(t *testing.T) {
	s := newTestStore(t, Config{Codec: NewRS104Codec(), BlockSize: 64})
	rng := rand.New(rand.NewSource(5))
	want := randBytes(rng, 64*10*2)
	if err := s.Put("r", want); err != nil {
		t.Fatal(err)
	}
	mb := s.Backend().(*MemBackend)
	for si := 0; si < 2; si++ {
		for _, pos := range rng.Perm(s.Codec().NStored())[:4] {
			node, key, err := s.BlockLocation("r", si, pos)
			if err != nil {
				t.Fatal(err)
			}
			if err := mb.Delete(node, key); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, info, err := s.Get("r")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("RS degraded Get: err %v", err)
	}
	if info.LightRepairs != 0 {
		t.Fatalf("RS reported %d light repairs; RS has no light path", info.LightRepairs)
	}
}

func TestUnrecoverableStripeFails(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 64})
	rng := rand.New(rand.NewSource(6))
	if err := s.Put("u", randBytes(rng, 64*10)); err != nil {
		t.Fatal(err)
	}
	mb := s.Backend().(*MemBackend)
	// Erase 7 blocks — data blocks 0..6 — leaving only 9 stored blocks,
	// short of the rank 10 any decode needs.
	for pos := 0; pos < 7; pos++ {
		node, key, err := s.BlockLocation("u", 0, pos)
		if err != nil {
			t.Fatal(err)
		}
		if err := mb.Delete(node, key); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get("u"); err == nil {
		t.Fatal("Get succeeded with 7 erased blocks")
	}
}

func TestPlacementRackAware(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 24, Racks: 8, BlockSize: 32})
	rng := rand.New(rand.NewSource(7))
	if err := s.Put("p", randBytes(rng, 32*10*5)); err != nil {
		t.Fatal(err)
	}
	groups := s.Codec().RepairGroups()
	for si := 0; si < 5; si++ {
		nodes := make([]int, s.Codec().NStored())
		seen := make(map[int]bool)
		for pos := range nodes {
			n, _, err := s.BlockLocation("p", si, pos)
			if err != nil {
				t.Fatal(err)
			}
			nodes[pos] = n
			if seen[n] {
				t.Fatalf("stripe %d: node %d holds two blocks (24 nodes available)", si, n)
			}
			seen[n] = true
		}
		for gi, members := range groups {
			racks := make(map[int]bool)
			for _, m := range members {
				r := nodes[m] % s.Racks()
				if racks[r] {
					t.Fatalf("stripe %d group %d: two blocks on rack %d", si, gi, r)
				}
				racks[r] = true
			}
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	be := NewMemBackend()
	s := newTestStore(t, Config{Backend: be, BlockSize: 64})
	rng := rand.New(rand.NewSource(8))
	want := randBytes(rng, 64*10+11)
	if err := s.Put("snap", want); err != nil {
		t.Fatal(err)
	}
	s.KillNode(3)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Restore(Config{Backend: be}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Alive(3) {
		t.Fatal("restored store lost the dead node")
	}
	got, _, err := s2.Get("snap")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("restored Get: err %v", err)
	}
	if _, err := Restore(Config{Backend: be, Codec: NewRS104Codec()}, blob); err == nil {
		t.Fatal("Restore accepted a codec mismatch")
	}
}

func TestDirBackend(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, Config{Backend: be, BlockSize: 64})
	rng := rand.New(rand.NewSource(9))
	want := randBytes(rng, 64*10*2+9)
	if err := s.Put("disk", want); err != nil {
		t.Fatal(err)
	}
	// Corrupt one block file on disk; the CRC catches it and the read
	// reconstructs inline.
	node, key, err := s.BlockLocation("disk", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := be.Path(node, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info, err := s.Get("disk")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("dir-backend degraded Get: err %v", err)
	}
	if !info.Degraded || info.LightRepairs != 1 {
		t.Fatalf("info = %+v, want one light repair", info)
	}
}

// TestDirBackendSweepsStaleTemps pins the crash-write story: a temp file
// stranded by a killed writer is invisible to reads and swept at the
// next open, while real blocks survive the sweep.
func TestDirBackendSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Write(7, "obj.g000001.s00000.b00", []byte("real block")); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "node007", tmpPrefix+"obj.g000001.s00000.b01-12345")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	be2, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived reopen: stat err %v", err)
	}
	if got, err := be2.Read(7, "obj.g000001.s00000.b00"); err != nil || string(got) != "real block" {
		t.Fatalf("real block lost in sweep: %q, err %v", got, err)
	}
}

func TestQueuePriority(t *testing.T) {
	q := newRepairQueue()
	mk := func(i, erasures int, light bool) repairItem {
		return repairItem{ref: stripeRef{name: "o", idx: i}, erasures: erasures, light: light}
	}
	q.Push(mk(0, 1, false))
	q.Push(mk(1, 3, false)) // most erasures: closest to data loss
	q.Push(mk(2, 1, true))  // same risk as 0 but light goes first
	q.Push(mk(3, 3, true))  // ties with 1 on risk, light wins
	var order []int
	for range 4 {
		it, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, it.ref.idx)
		q.Done()
	}
	want := []int{3, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
	// Dedupe: the same stripe cannot be queued twice.
	if !q.Push(mk(5, 1, true)) || q.Push(mk(5, 2, true)) {
		t.Fatal("dedupe failed")
	}
	q.Close()
	if _, ok := q.Pop(); !ok {
		// the queued item drains even after Close
		t.Fatal("Close dropped a pending item")
	}
	q.Done()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned an item from a closed empty queue")
	}
}
