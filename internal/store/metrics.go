package store

import "sync/atomic"

// readAcct collects the cost of one operation (a Get, a scrub pass or a
// repair) before it is merged into the store-wide counters.
type readAcct struct {
	blocks   int64
	bytes    int64
	light    int64
	heavy    int64
	degraded bool
}

// add folds b into a — the streaming read path gives each concurrent
// fetch its own acct and merges them in stripe order.
func (a *readAcct) add(b *readAcct) {
	a.blocks += b.blocks
	a.bytes += b.bytes
	a.light += b.light
	a.heavy += b.heavy
	if b.degraded {
		a.degraded = true
	}
}

// ReadInfo reports what one Get actually cost — the per-read observables
// behind the paper's repair-traffic plots (Figs 4–6): a degraded LRC read
// fetches the r=5 light set where the RS baseline fetches k=10 blocks.
type ReadInfo struct {
	// BlocksRead / BytesRead count backend block fetches, including any
	// extra blocks pulled in for reconstruction.
	BlocksRead int64
	BytesRead  int64
	// LightRepairs / HeavyRepairs count blocks rebuilt inline by each
	// decoder.
	LightRepairs int64
	HeavyRepairs int64
	// Degraded is true when any block had to be reconstructed.
	Degraded bool
	// BytesWritten is how many object bytes reached the caller's writer
	// (the full object size on a successful Get/GetWriter; possibly fewer
	// on a mid-stream failure).
	BytesWritten int64
}

func (a *readAcct) info() ReadInfo {
	return ReadInfo{
		BlocksRead:   a.blocks,
		BytesRead:    a.bytes,
		LightRepairs: a.light,
		HeavyRepairs: a.heavy,
		Degraded:     a.degraded,
	}
}

// counters is the store-wide metric state (atomics: hot paths touch these
// concurrently).
type counters struct {
	putBlocks, putBytes   atomic.Int64
	readBlocks, readBytes atomic.Int64
	degradedReads         atomic.Int64
	lightRepairs          atomic.Int64
	heavyRepairs          atomic.Int64

	scrubbedStripes  atomic.Int64
	scrubBlocksRead  atomic.Int64
	scrubBytesRead   atomic.Int64
	missingFound     atomic.Int64
	corruptFound     atomic.Int64
	repairBlocksRead atomic.Int64
	repairBytesRead  atomic.Int64
	repairedBlocks   atomic.Int64
	repairedBytes    atomic.Int64
	repairsLight     atomic.Int64
	repairsHeavy     atomic.Int64

	hedgeFires   atomic.Int64
	hedgeWins    atomic.Int64
	autoDeaths   atomic.Int64
	autoRevivals atomic.Int64

	rebalancedBlocks    atomic.Int64
	rebalancedBytes     atomic.Int64
	rebalanceBlocksRead atomic.Int64
	rebalanceBytesRead  atomic.Int64
}

func (c *counters) mergeRead(a *readAcct) {
	c.readBlocks.Add(a.blocks)
	c.readBytes.Add(a.bytes)
	c.lightRepairs.Add(a.light)
	c.heavyRepairs.Add(a.heavy)
	if a.degraded {
		c.degradedReads.Add(1)
	}
}

func (c *counters) mergeScrub(a *readAcct) {
	c.scrubBlocksRead.Add(a.blocks)
	c.scrubBytesRead.Add(a.bytes)
}

func (c *counters) mergeRepair(a *readAcct) {
	c.repairBlocksRead.Add(a.blocks)
	c.repairBytesRead.Add(a.bytes)
	c.repairsLight.Add(a.light)
	c.repairsHeavy.Add(a.heavy)
}

// Metrics is a point-in-time copy of the store's counters.
type Metrics struct {
	// Put path.
	PutBlocks, PutBytes int64
	// Get path (degraded reads included).
	ReadBlocks, ReadBytes      int64
	DegradedReads              int64
	LightRepairs, HeavyRepairs int64
	// Scrub path: what the integrity walk read and found.
	ScrubbedStripes                 int64
	ScrubBlocksRead, ScrubBytesRead int64
	MissingBlocksFound              int64
	CorruptBlocksFound              int64
	// Repair path: what the BlockFixer read and rewrote. The paper's
	// locality win is RepairBytesRead(LRC) ≈ half RepairBytesRead(RS)
	// for single-block losses.
	RepairBlocksRead, RepairBytesRead int64
	RepairedBlocks                    int64
	// RepairedBytes counts payload bytes rebuilt and rewritten by the
	// BlockFixer — the numerator of repair throughput (MB/s repaired).
	RepairedBytes              int64
	RepairsLight, RepairsHeavy int64
	// Failure plane: hedged stripe reads fired (the straggler deadline
	// hit) and won (reconstruction beat the straggler), liveness flips
	// made by the HealthMonitor without an operator, and circuit-breaker
	// open transitions summed over nodes (present when the backend
	// implements HealthStats).
	HedgeFires, HedgeWins    int64
	AutoDeaths, AutoRevivals int64
	BreakerOpens             int64
	// Rebalance path: blocks migrated off draining nodes / onto joiners
	// by the Rebalancer, the payload bytes that moved, and what the moves
	// read from the backend. A live migration reads exactly one block per
	// moved block; draining an already-dead node goes through repair
	// instead and shows up in the Repair counters (where LRC reads half
	// of RS's bytes).
	RebalancedBlocks, RebalancedBytes       int64
	RebalanceBlocksRead, RebalanceBytesRead int64
	// Hot-block cache (Config.CacheBytes; all zero when disabled): hits
	// and misses on the foreground read path, entries evicted by the
	// byte budget, entries dropped by staleness invalidation (version
	// retire/delete and repair/rebalance relocation), and the resident
	// payload bytes right now. A hot object's steady state is all hits —
	// ReadBlocks/ReadBytes stop growing while CacheHits climbs.
	CacheHits, CacheMisses             int64
	CacheEvictions, CacheInvalidations int64
	CacheBytes                         int64
	// Wire totals, present when the backend implements WireStats (the
	// TCP netblock client): cumulative protocol bytes sent to and
	// received from all nodes. These count what actually crossed the
	// network, so the LRC-vs-RS repair comparison holds on real traffic.
	WireSentBytes, WireRecvBytes int64
	// Metadata plane: WAL bytes appended, fsync groups (concurrent
	// commits that shared a sync count once), records replayed by the
	// last Open, and prefix scans started (every scrub pass walks at
	// least one).
	MetaWALBytes        int64
	MetaCommitBatches   int64
	MetaReplayedRecords int64
	MetaIteratorScans   int64
}

// WireTraffic returns the backend's per-node wire counters, nil when
// the backend is not networked — the per-node view behind the Metrics
// totals (which node a repair actually pulled its source blocks from).
func (s *Store) WireTraffic() (sent, recv []int64) {
	ws, ok := s.cfg.Backend.(WireStats)
	if !ok {
		return nil, nil
	}
	return ws.WireTraffic()
}

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics {
	mm := s.db.Metrics()
	var wireSent, wireRecv int64
	if sent, recv := s.WireTraffic(); sent != nil {
		for i := range sent {
			wireSent += sent[i]
			wireRecv += recv[i]
		}
	}
	var breakerOpens int64
	if hs, ok := s.cfg.Backend.(HealthStats); ok {
		for _, info := range hs.NodeHealth() {
			breakerOpens += info.Opens
		}
	}
	m := Metrics{
		PutBlocks:           s.m.putBlocks.Load(),
		PutBytes:            s.m.putBytes.Load(),
		ReadBlocks:          s.m.readBlocks.Load(),
		ReadBytes:           s.m.readBytes.Load(),
		DegradedReads:       s.m.degradedReads.Load(),
		LightRepairs:        s.m.lightRepairs.Load(),
		HeavyRepairs:        s.m.heavyRepairs.Load(),
		ScrubbedStripes:     s.m.scrubbedStripes.Load(),
		ScrubBlocksRead:     s.m.scrubBlocksRead.Load(),
		ScrubBytesRead:      s.m.scrubBytesRead.Load(),
		MissingBlocksFound:  s.m.missingFound.Load(),
		CorruptBlocksFound:  s.m.corruptFound.Load(),
		RepairBlocksRead:    s.m.repairBlocksRead.Load(),
		RepairBytesRead:     s.m.repairBytesRead.Load(),
		RepairedBlocks:      s.m.repairedBlocks.Load(),
		RepairedBytes:       s.m.repairedBytes.Load(),
		RepairsLight:        s.m.repairsLight.Load(),
		RepairsHeavy:        s.m.repairsHeavy.Load(),
		HedgeFires:          s.m.hedgeFires.Load(),
		HedgeWins:           s.m.hedgeWins.Load(),
		AutoDeaths:          s.m.autoDeaths.Load(),
		AutoRevivals:        s.m.autoRevivals.Load(),
		BreakerOpens:        breakerOpens,
		RebalancedBlocks:    s.m.rebalancedBlocks.Load(),
		RebalancedBytes:     s.m.rebalancedBytes.Load(),
		RebalanceBlocksRead: s.m.rebalanceBlocksRead.Load(),
		RebalanceBytesRead:  s.m.rebalanceBytesRead.Load(),
		WireSentBytes:       wireSent,
		WireRecvBytes:       wireRecv,

		MetaWALBytes:        mm.WALBytes,
		MetaCommitBatches:   mm.CommitBatches,
		MetaReplayedRecords: mm.ReplayedRecords,
		MetaIteratorScans:   mm.IteratorScans,
	}
	if c := s.cache; c != nil {
		m.CacheHits = c.hits.Load()
		m.CacheMisses = c.misses.Load()
		m.CacheEvictions = c.evictions.Load()
		m.CacheInvalidations = c.invalidations.Load()
		m.CacheBytes = c.bytes.Load()
	}
	return m
}
