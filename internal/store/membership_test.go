package store

import (
	"errors"
	"testing"
	"time"
)

// TestMembershipStateMachine walks the planned-topology transitions:
// seed nodes start active, AddNode issues a joining id, Decommission
// drains, RemoveNode hard-kills, and the illegal edges error.
func TestMembershipStateMachine(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 20})
	if got := s.Nodes(); got != 20 {
		t.Fatalf("Nodes() = %d, want 20", got)
	}
	if e := s.Epoch(); e != 0 {
		t.Fatalf("seed epoch = %d, want 0", e)
	}
	for _, m := range s.Members() {
		if m.State != NodeActive || !m.Alive {
			t.Fatalf("seed member %d: state %s alive %v", m.Node, m.State, m.Alive)
		}
	}

	id, err := s.AddNode("")
	if err != nil {
		t.Fatal(err)
	}
	if id != 20 {
		t.Fatalf("AddNode id = %d, want 20", id)
	}
	if st := s.MemberState(id); st != NodeJoining {
		t.Fatalf("added node state = %s, want joining", st)
	}
	if got := s.Nodes(); got != 21 {
		t.Fatalf("Nodes() after add = %d, want 21", got)
	}
	if e := s.Epoch(); e != 1 {
		t.Fatalf("epoch after add = %d, want 1", e)
	}
	if n := s.PlaceableNodes(); n != 21 {
		t.Fatalf("placeable = %d, want 21 (joining nodes take placements)", n)
	}

	if err := s.Decommission(3); err != nil {
		t.Fatal(err)
	}
	if st := s.MemberState(3); st != NodeDraining {
		t.Fatalf("node 3 state = %s, want draining", st)
	}
	if !s.Alive(3) {
		t.Fatal("draining node must stay alive (it serves reads)")
	}
	if n := s.PlaceableNodes(); n != 20 {
		t.Fatalf("placeable = %d, want 20 (drainer excluded)", n)
	}
	// Idempotent: re-decommissioning holds the state and the epoch.
	e := s.Epoch()
	if err := s.Decommission(3); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != e {
		t.Fatal("idempotent Decommission must not bump the epoch")
	}

	if err := s.RemoveNode(7); err != nil {
		t.Fatal(err)
	}
	if st := s.MemberState(7); st != NodeDead {
		t.Fatalf("removed node state = %s, want dead", st)
	}
	if s.Alive(7) {
		t.Fatal("removed node must be dead for liveness too")
	}
	if err := s.Decommission(7); err == nil {
		t.Fatal("decommissioning a dead node must error")
	}
	if err := s.Decommission(99); err == nil {
		t.Fatal("decommissioning an unknown node must error")
	}
	if st := s.MemberState(99); st != NodeDead {
		t.Fatalf("unknown id state = %s, want dead", st)
	}
}

// TestMembershipPlacementAvoidsDrainers checks the placement contract:
// once a node drains, no new stripe lands a block on it, while existing
// blocks stay readable.
func TestMembershipPlacementAvoidsDrainers(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 20, BlockSize: 256})
	if err := s.Put("before", []byte("written before the drain")); err != nil {
		t.Fatal(err)
	}
	const victim = 5
	if err := s.Decommission(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put("after", make([]byte, 256*10+13)); err != nil {
			t.Fatal(err)
		}
		counts := s.BlocksPerNode()
		// Every block the drain-era puts placed must avoid the victim;
		// the victim's count can only come from "before".
		preCounts := blocksOn(s, "before", victim)
		if counts[victim] != preCounts {
			t.Fatalf("put %d: victim holds %d blocks, %d from pre-drain object", i, counts[victim], preCounts)
		}
	}
	if _, _, err := s.Get("before"); err != nil {
		t.Fatalf("pre-drain object must stay readable: %v", err)
	}
}

// blocksOn counts how many of name's manifest blocks sit on node.
func blocksOn(s *Store, name string, node int) int {
	v, ok := s.db.Get(objKey(name))
	if !ok {
		return 0
	}
	obj := v.(*objectInfo)
	n := 0
	for i := range obj.Stripes {
		for _, nd := range obj.Stripes[i].Nodes {
			if nd == node {
				n++
			}
		}
	}
	return n
}

// TestMembershipSurvivesKill9 reopens the same metadata plane without a
// Close — the kill -9 shape — and expects the full membership table
// (added node, drainer, dead node, epoch) to come back from the n/
// records alone.
func TestMembershipSurvivesKill9(t *testing.T) {
	dir := t.TempDir()
	be := NewMemBackend()
	s1 := newTestStore(t, Config{Nodes: 20, Backend: be, MetaDir: dir})
	if err := s1.Put("obj", []byte("survives the crash")); err != nil {
		t.Fatal(err)
	}
	id, err := s1.AddNode("10.0.0.21:7000")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Decommission(4); err != nil {
		t.Fatal(err)
	}
	if err := s1.RemoveNode(9); err != nil {
		t.Fatal(err)
	}
	wantEpoch := s1.Epoch()

	// No Close: the WAL is all the next open gets.
	s2 := newTestStore(t, Config{Nodes: 20, Backend: be, MetaDir: dir})
	if got := s2.Nodes(); got != 21 {
		t.Fatalf("recovered Nodes() = %d, want 21", got)
	}
	if st := s2.MemberState(id); st != NodeJoining {
		t.Fatalf("recovered added node state = %s, want joining", st)
	}
	ms := s2.Members()
	if ms[id].Addr != "10.0.0.21:7000" {
		t.Fatalf("recovered addr = %q", ms[id].Addr)
	}
	if st := s2.MemberState(4); st != NodeDraining {
		t.Fatalf("recovered node 4 state = %s, want draining", st)
	}
	if st := s2.MemberState(9); st != NodeDead {
		t.Fatalf("recovered node 9 state = %s, want dead", st)
	}
	if s2.Alive(9) {
		t.Fatal("dead member must recover dead for liveness")
	}
	if !s2.Alive(4) {
		t.Fatal("draining member must recover alive")
	}
	if got := s2.Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d", got, wantEpoch)
	}
	if _, _, err := s2.Get("obj"); err != nil {
		t.Fatalf("object after recovery: %v", err)
	}
}

// TestMonitorRespectsDraining is the drain/monitor contract: a draining
// node that stops answering probes is NOT auto-killed (its liveness
// belongs to the drain protocol), and neither draining nor dead members
// are auto-revived when their processes answer pings.
func TestMonitorRespectsDraining(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 20})
	failing := map[int]bool{}
	probe := func(n int) error {
		if failing[n] {
			return errors.New("probe: no route")
		}
		return nil
	}
	m := NewHealthMonitor(s, nil, nil, MonitorConfig{
		Interval:        time.Hour, // ticks are driven by hand
		FailThreshold:   2,
		ReviveThreshold: 2,
		Probe:           probe,
	})

	const drainer = 6
	if err := s.Decommission(drainer); err != nil {
		t.Fatal(err)
	}
	failing[drainer] = true
	for i := 0; i < 5; i++ {
		m.tick()
	}
	if !s.Alive(drainer) {
		t.Fatal("monitor must not auto-kill a draining node")
	}
	if got := s.Metrics().AutoDeaths; got != 0 {
		t.Fatalf("AutoDeaths = %d, want 0", got)
	}

	// The drain protocol retires the node; a still-answering process
	// must not be revived into the topology.
	s.KillNode(drainer)
	if !s.promote(drainer, NodeDraining, NodeDead) {
		t.Fatal("promote draining→dead failed")
	}
	failing[drainer] = false
	for i := 0; i < 5; i++ {
		m.tick()
	}
	if s.Alive(drainer) {
		t.Fatal("monitor must not revive a dead member")
	}

	// A draining node the operator killed by hand also stays down: its
	// revival belongs to the operator, not the prober.
	const drainer2 = 11
	if err := s.Decommission(drainer2); err != nil {
		t.Fatal(err)
	}
	s.KillNode(drainer2)
	for i := 0; i < 5; i++ {
		m.tick()
	}
	if s.Alive(drainer2) {
		t.Fatal("monitor must not revive a draining node")
	}

	// Sanity: the suppression is state-scoped, not global — an active
	// node still flips both ways.
	const active = 2
	failing[active] = true
	for i := 0; i < 3; i++ {
		m.tick()
	}
	if s.Alive(active) {
		t.Fatal("active node should be auto-killed after threshold")
	}
	failing[active] = false
	for i := 0; i < 3; i++ {
		m.tick()
	}
	if !s.Alive(active) {
		t.Fatal("active node should be auto-revived after threshold")
	}
}

// TestMonitorProbesAddedNodes checks the streak slices stretch when
// membership grows between ticks.
func TestMonitorProbesAddedNodes(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 4})
	failing := map[int]bool{}
	m := NewHealthMonitor(s, nil, nil, MonitorConfig{
		Interval:      time.Hour,
		FailThreshold: 2,
		Probe: func(n int) error {
			if failing[n] {
				return errors.New("down")
			}
			return nil
		},
	})
	m.tick()
	id, err := s.AddNode("")
	if err != nil {
		t.Fatal(err)
	}
	failing[id] = true
	for i := 0; i < 3; i++ {
		m.tick()
	}
	if s.Alive(id) {
		t.Fatal("joining node that fails probes should be auto-killed")
	}
}
