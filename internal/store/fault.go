package store

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error FaultBackend returns for an injected failure;
// tests assert against it to tell chaos from genuine bugs.
var ErrInjected = errors.New("store: injected fault")

// Fault is one node's misbehavior profile. The zero value is a healthy
// node.
type Fault struct {
	// ErrRate is the probability in [0,1] that an operation on the node
	// fails with ErrInjected (flaky NIC, dying disk).
	ErrRate float64
	// Latency is added to every operation on the node before it runs —
	// the slow-node half of a degraded read scenario.
	Latency time.Duration
	// CorruptRate is the probability in [0,1] that a Read's payload
	// comes back with a flipped byte (bit-rot on the wire or platter).
	// The stored bytes are never touched: corruption is injected on a
	// copy, exactly like a bad wire.
	CorruptRate float64
}

// FaultBackend wraps a Backend with per-node fault injection — the chaos
// harness behind the degraded-read and repair tests. It forwards
// OwnedWriter and WireStats to the inner backend when present, so a
// faulty MemBackend keeps its zero-copy path and a faulty netblock
// client keeps its wire counters. Safe for concurrent use.
type FaultBackend struct {
	inner Backend
	// ownedW is inner's ownership-transfer path, nil when absent.
	ownedW OwnedWriter

	mu     sync.Mutex
	rng    *rand.Rand
	faults map[int]Fault
	// schedules holds per-node time-varying fault scripts; when a node
	// has one it overrides the static faults entry. now is injectable so
	// unit tests step through a schedule without real sleeps.
	schedules map[int]faultSchedule
	now       func() time.Time
}

// faultSchedule is one node's installed script and the instant its
// clock started.
type faultSchedule struct {
	steps []FaultStep
	epoch time.Time
}

// NewFaultBackend wraps inner; seed makes the injected chaos
// reproducible.
func NewFaultBackend(inner Backend, seed int64) *FaultBackend {
	f := &FaultBackend{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		faults:    make(map[int]Fault),
		schedules: make(map[int]faultSchedule),
		now:       time.Now,
	}
	if ow, ok := inner.(OwnedWriter); ok {
		f.ownedW = ow
	}
	return f
}

// SetFault installs node's misbehavior profile, replacing any previous
// one. A zero Fault heals the node.
func (f *FaultBackend) SetFault(node int, fl Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.schedules, node)
	if fl == (Fault{}) {
		delete(f.faults, node)
		return
	}
	f.faults[node] = fl
}

// Inner returns the wrapped backend.
func (f *FaultBackend) Inner() Backend { return f.inner }

// FaultStep is one entry of a time-varying fault schedule: from After
// (measured since the schedule was installed) onward, the node behaves
// per Fault — until a later step takes over. Chaos scenarios become
// declarative data ("healthy for 2s, then 100% errors for 5s, then
// healed") instead of goroutines juggling timers.
type FaultStep struct {
	After time.Duration
	Fault Fault
}

// SetFaultSchedule installs a time-varying fault script for node,
// replacing any static fault. Steps must be sorted by After; the node
// is healthy before the first step. An empty schedule heals the node.
// The node's schedule clock starts at the current clock reading (see
// SetNow for the injectable clock).
func (f *FaultBackend) SetFaultSchedule(node int, steps []FaultStep) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.faults, node)
	if len(steps) == 0 {
		delete(f.schedules, node)
		return
	}
	f.schedules[node] = faultSchedule{
		steps: append([]FaultStep(nil), steps...),
		epoch: f.now(),
	}
}

// SetNow injects the schedule clock — unit tests advance a fake clock
// instead of sleeping. Install the clock before any schedules; already
// installed schedules keep their old epochs.
func (f *FaultBackend) SetNow(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// scheduledFault resolves node's active fault at the current clock
// reading. Call with f.mu held.
func (f *FaultBackend) scheduledFault(node int) (Fault, bool) {
	sch, ok := f.schedules[node]
	if !ok {
		return Fault{}, false
	}
	elapsed := f.now().Sub(sch.epoch)
	var fl Fault
	for _, st := range sch.steps {
		if st.After > elapsed {
			break
		}
		fl = st.Fault
	}
	return fl, true
}

// roll decides one operation's fate for node: the added latency, whether
// to fail, and whether to corrupt (reads only). One lock hold per op;
// the sleep happens outside the lock.
func (f *FaultBackend) roll(node int) (delay time.Duration, fail, corrupt bool) {
	f.mu.Lock()
	fl, ok := f.scheduledFault(node)
	if !ok {
		fl, ok = f.faults[node]
	}
	if ok {
		delay = fl.Latency
		fail = fl.ErrRate > 0 && f.rng.Float64() < fl.ErrRate
		corrupt = fl.CorruptRate > 0 && f.rng.Float64() < fl.CorruptRate
	}
	f.mu.Unlock()
	return delay, fail, corrupt
}

// apply sleeps the injected latency and returns the injected error, if
// any.
func apply(node int, delay time.Duration, fail bool) error {
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w: node %d", ErrInjected, node)
	}
	return nil
}

// Write implements Backend.
func (f *FaultBackend) Write(node int, key string, data []byte) error {
	delay, fail, _ := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return err
	}
	return f.inner.Write(node, key, data)
}

// WriteOwned implements OwnedWriter. When the fault fires the buffer is
// returned to the caller un-stored (ownership transfers only on
// success, matching the contract); when the inner backend has no owned
// path the write degrades to a copying Write, which satisfies ownership
// trivially.
func (f *FaultBackend) WriteOwned(node int, key string, data []byte) error {
	delay, fail, _ := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return err
	}
	if f.ownedW != nil {
		return f.ownedW.WriteOwned(node, key, data)
	}
	return f.inner.Write(node, key, data)
}

// Read implements Backend. Injected corruption flips one byte of a copy
// of the block — the inner backend's stored bytes (which Read may alias)
// stay pristine, so the same block can read clean on the next attempt,
// exactly like a transient wire fault.
func (f *FaultBackend) Read(node int, key string) ([]byte, error) {
	delay, fail, corrupt := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return nil, err
	}
	b, err := f.inner.Read(node, key)
	if err != nil || !corrupt || len(b) == 0 {
		return b, err
	}
	nb := append([]byte(nil), b...)
	f.mu.Lock()
	i := f.rng.Intn(len(nb))
	f.mu.Unlock()
	nb[i] ^= 0x55
	return nb, nil
}

// Delete implements Backend.
func (f *FaultBackend) Delete(node int, key string) error {
	delay, fail, _ := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return err
	}
	return f.inner.Delete(node, key)
}

// WireTraffic implements WireStats by delegation; a non-networked inner
// backend reports nil.
func (f *FaultBackend) WireTraffic() (sent, recv []int64) {
	if ws, ok := f.inner.(WireStats); ok {
		return ws.WireTraffic()
	}
	return nil, nil
}

// CheckNode implements HealthChecker: the injected fault applies (an
// ErrRate-1 node fails every probe, injected latency delays it), then
// the probe delegates to the inner backend's checker when it has one.
// A HealthMonitor over a FaultBackend therefore sees scripted deaths
// exactly as it would see real ones.
func (f *FaultBackend) CheckNode(node int) error {
	delay, fail, _ := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return err
	}
	if hc, ok := f.inner.(HealthChecker); ok {
		return hc.CheckNode(node)
	}
	return nil
}

// NodeHealth implements HealthStats by delegation; a non-tracking inner
// backend reports nil.
func (f *FaultBackend) NodeHealth() []NodeHealthInfo {
	if hs, ok := f.inner.(HealthStats); ok {
		return hs.NodeHealth()
	}
	return nil
}

// AddNode implements NodeAdder by delegation, so elastic membership
// grows through the chaos harness: new nodes are born healthy (no fault
// entry) and pick up faults via SetFault like any other. An inner
// backend without per-node addressing declines with ErrUnsupported and
// the store skips registration.
func (f *FaultBackend) AddNode(addr string) (int, error) {
	if na, ok := f.inner.(NodeAdder); ok {
		return na.AddNode(addr)
	}
	return -1, fmt.Errorf("store: fault backend: add node: %w", errors.ErrUnsupported)
}

// ReadBlockTo implements BlockStreamer by delegation, with the node's
// fault roll applied up front (a streamed migration read fails or slows
// like any other read; corruption injection stays on the unstreamed
// path). ErrUnsupported when the inner backend cannot stream.
func (f *FaultBackend) ReadBlockTo(node int, key string, w io.Writer) (int64, error) {
	bs, ok := f.inner.(BlockStreamer)
	if !ok {
		return 0, fmt.Errorf("store: fault backend: read stream: %w", errors.ErrUnsupported)
	}
	delay, fail, _ := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return 0, err
	}
	return bs.ReadBlockTo(node, key, w)
}

// WriteBlockFrom implements BlockStreamer by delegation, same fault
// discipline as ReadBlockTo.
func (f *FaultBackend) WriteBlockFrom(node int, key string, r io.Reader) (int64, error) {
	bs, ok := f.inner.(BlockStreamer)
	if !ok {
		return 0, fmt.Errorf("store: fault backend: write stream: %w", errors.ErrUnsupported)
	}
	delay, fail, _ := f.roll(node)
	if err := apply(node, delay, fail); err != nil {
		return 0, err
	}
	return bs.WriteBlockFrom(node, key, r)
}
