package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestGetRangeCorrectness slides windows across an object spanning
// several stripes — block-aligned, block-straddling, stripe-straddling,
// empty, and end-clamped — and checks each against the reference slice.
func TestGetRangeCorrectness(t *testing.T) {
	const bl = 128
	s := newTestStore(t, Config{BlockSize: bl})
	defer s.Close()
	k := s.Codec().K()
	stripe := bl * k
	rng := rand.New(rand.NewSource(42))
	want := randBytes(rng, 2*stripe+700) // two full stripes plus a ragged third
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	size := int64(len(want))

	cases := []struct{ off, length int64 }{
		{0, size},                      // whole object
		{0, 1},                         // first byte
		{size - 1, 1},                  // last byte
		{0, 0},                         // empty at start
		{size, 0},                      // empty at end
		{int64(bl), int64(bl)},         // exactly block 1
		{int64(bl) - 3, 7},             // straddles blocks 0 and 1
		{int64(stripe) - 5, 11},        // straddles stripes 0 and 1
		{int64(stripe), int64(stripe)}, // exactly stripe 1
		{int64(2*stripe) + 1, 698},     // inside the ragged tail
		{size - 700, 700},              // suffix
		{37, int64(stripe) + 91},       // misaligned, > one stripe
		{size - 10, 1 << 40},           // length clamps to the end
		{0, -1},                        // negative length = to the end
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if _, err := s.GetRange("obj", c.off, c.length, &buf); err != nil {
			t.Fatalf("GetRange(%d, %d): %v", c.off, c.length, err)
		}
		end := c.off + c.length
		if c.length < 0 || end > size {
			end = size
		}
		if !bytes.Equal(buf.Bytes(), want[c.off:end]) {
			t.Fatalf("GetRange(%d, %d): payload mismatch (%d bytes, want %d)",
				c.off, c.length, buf.Len(), end-c.off)
		}
	}
}

// TestGetRangeReadsOnlyCoveringBlocks is the point of GetRange: a small
// range must not pay for a full-object read. A window inside a single
// block of a multi-stripe object reads exactly one block.
func TestGetRangeReadsOnlyCoveringBlocks(t *testing.T) {
	const bl = 128
	s := newTestStore(t, Config{BlockSize: bl})
	defer s.Close()
	k := s.Codec().K()
	stripe := bl * k
	rng := rand.New(rand.NewSource(43))
	want := randBytes(rng, 4*stripe)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}

	// Entirely inside data block 3 of stripe 1.
	off := int64(stripe + 3*bl + 10)
	var buf bytes.Buffer
	info, err := s.GetRange("obj", off, 50, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want[off:off+50]) {
		t.Fatal("payload mismatch")
	}
	if info.BlocksRead != 1 {
		t.Fatalf("single-block range read %d blocks, want 1", info.BlocksRead)
	}
	// BytesRead counts on-disk block bytes (payload plus framing), so
	// bound it by one block with headroom — far below the 40-block object.
	if info.BytesRead > int64(2*bl) {
		t.Fatalf("single-block range read %d bytes, want about one %d-byte block", info.BytesRead, bl)
	}

	// A range over blocks 2..5 of one stripe reads exactly those four.
	off = int64(2 * bl)
	buf.Reset()
	info, err = s.GetRange("obj", off, int64(4*bl), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want[off:off+int64(4*bl)]) {
		t.Fatal("payload mismatch")
	}
	if info.BlocksRead != 4 {
		t.Fatalf("four-block range read %d blocks, want 4", info.BlocksRead)
	}

	// Never worse than the covering-block bound, even across stripes.
	off = int64(stripe - 1)
	length := int64(stripe + 2)
	buf.Reset()
	info, err = s.GetRange("obj", off, length, &buf)
	if err != nil {
		t.Fatal(err)
	}
	covering := int64(0)
	for st := 0; st < 4; st++ {
		base, end := int64(st*stripe), int64((st+1)*stripe)
		lo, hi := max64(off, base), min64(off+length, end)
		if lo < hi {
			covering += (hi-1)/int64(bl) - lo/int64(bl) + 1
		}
	}
	if int64(info.BlocksRead) > covering {
		t.Fatalf("range read %d blocks, covering bound is %d", info.BlocksRead, covering)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestGetRangeDegraded: a ranged read through dead nodes still returns
// the right bytes (reconstructing within the covering window).
func TestGetRangeDegraded(t *testing.T) {
	const bl = 128
	s := newTestStore(t, Config{BlockSize: bl})
	defer s.Close()
	k := s.Codec().K()
	stripe := bl * k
	rng := rand.New(rand.NewSource(44))
	want := randBytes(rng, 3*stripe+99)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	s.KillNode(2)
	s.KillNode(7)
	for _, c := range []struct{ off, length int64 }{
		{0, int64(len(want))},
		{int64(stripe + 5), int64(2 * bl)},
		{int64(len(want)) - 50, 50},
	} {
		var buf bytes.Buffer
		info, err := s.GetRange("obj", c.off, c.length, &buf)
		if err != nil {
			t.Fatalf("degraded GetRange(%d, %d): %v", c.off, c.length, err)
		}
		if !bytes.Equal(buf.Bytes(), want[c.off:c.off+c.length]) {
			t.Fatalf("degraded GetRange(%d, %d): payload mismatch", c.off, c.length)
		}
		_ = info
	}
}

// TestGetRangeErrors: bad offsets are ErrBadRange (and ErrNotFound for
// missing objects), all matchable with errors.Is.
func TestGetRangeErrors(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	defer s.Close()
	if err := s.Put("obj", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.GetRange("obj", -1, 4, &buf); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative offset: got %v, want ErrBadRange", err)
	}
	if _, err := s.GetRange("obj", 12, 1, &buf); !errors.Is(err, ErrBadRange) {
		t.Fatalf("offset past end: got %v, want ErrBadRange", err)
	}
	if _, err := s.GetRange("obj", 11, 0, &buf); err != nil {
		t.Fatalf("empty range at exact end: %v", err)
	}
	if _, err := s.GetRange("missing", 0, 4, &buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: got %v, want ErrNotFound", err)
	}
	if _, err := s.GetRange("missing", 0, 4, &buf); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("missing object: got %v, want ErrObjectNotFound", err)
	}
}

// TestGetRangeZeroLengthObject: ranges against an empty object.
func TestGetRangeZeroLengthObject(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	defer s.Close()
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.GetRange("empty", 0, 10, &buf); err != nil {
		t.Fatalf("range on empty object: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty object returned %d bytes", buf.Len())
	}
	if _, err := s.GetRange("empty", 1, 1, &buf); !errors.Is(err, ErrBadRange) {
		t.Fatalf("offset past empty object: got %v, want ErrBadRange", err)
	}
}

// TestGetRangeMatchesGet cross-checks GetRange(0, size) against Get for
// a spread of object sizes, including sub-block and exactly-aligned.
func TestGetRangeMatchesGet(t *testing.T) {
	const bl = 64
	s := newTestStore(t, Config{BlockSize: bl})
	defer s.Close()
	k := s.Codec().K()
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{1, bl - 1, bl, bl + 1, bl * k, bl*k + 1, 3 * bl * k} {
		name := fmt.Sprintf("obj-%d", n)
		want := randBytes(rng, n)
		if err := s.Put(name, want); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := s.GetRange(name, 0, int64(n), &buf); err != nil {
			t.Fatalf("GetRange(%q): %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("GetRange(%q): mismatch", name)
		}
	}
}

// TestGetRangeEmptyWindowNoBackendReads: the edge windows — explicit
// length 0 anywhere, and off == size (with or without a clamped
// length) — succeed with zero bytes written and zero backend reads.
// Regression: an empty window must never cost a covering-stripe fetch.
func TestGetRangeEmptyWindowNoBackendReads(t *testing.T) {
	cb := &countingBackend{Backend: NewMemBackend()}
	s := newTestStore(t, Config{Backend: cb, BlockSize: 128})
	defer s.Close()
	k := s.Codec().K()
	want := randBytes(rand.New(rand.NewSource(77)), 128*k+40)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}
	size := int64(len(want))
	before := cb.reads.Load()
	for _, c := range []struct{ off, length int64 }{
		{0, 0},          // empty at start
		{17, 0},         // empty mid-object
		{size, 0},       // empty at end
		{size, -1},      // off == size, "to the end" clamps to nothing
		{size, 1 << 30}, // off == size, oversized length clamps to nothing
	} {
		var buf bytes.Buffer
		info, err := s.GetRange("obj", c.off, c.length, &buf)
		if err != nil {
			t.Fatalf("GetRange(%d, %d): %v", c.off, c.length, err)
		}
		if buf.Len() != 0 || info.BytesWritten != 0 {
			t.Fatalf("GetRange(%d, %d) wrote %d bytes, want 0", c.off, c.length, buf.Len())
		}
		if info.BlocksRead != 0 || info.BytesRead != 0 {
			t.Fatalf("GetRange(%d, %d) cost %d blocks / %d bytes, want free", c.off, c.length, info.BlocksRead, info.BytesRead)
		}
	}
	if got := cb.reads.Load(); got != before {
		t.Fatalf("empty windows hit the backend: %d -> %d reads", before, got)
	}
	// One past the end stays an error, not an empty success.
	if _, err := s.GetRange("obj", size+1, 0, &bytes.Buffer{}); !errors.Is(err, ErrBadRange) {
		t.Fatalf("GetRange(size+1, 0) = %v, want ErrBadRange", err)
	}
}
