package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
)

// Config sizes a Store. Zero fields take defaults.
type Config struct {
	// Codec is the stripe code; default NewXorbasCodec() (LRC(10,6,5)).
	Codec Codec
	// Backend holds the block bytes; default NewMemBackend().
	Backend Backend
	// Nodes is the number of simulated DataNodes (default 20).
	Nodes int
	// Racks spreads nodes round-robin, rack = node mod Racks (default 8 —
	// enough racks for the strict one-block-per-rack-per-group rule of the
	// Xorbas 6-member groups).
	Racks int
	// BlockSize is the maximum data-block payload per stripe position in
	// bytes (default 64 KiB; 256 MB in the paper's clusters).
	BlockSize int
	// EncodeWorkers controls parity parallelism: 0 = GOMAXPROCS for
	// stripes at least ParallelThreshold bytes, <0 = always serial.
	EncodeWorkers int
	// ParallelThreshold is the stripe payload size at which encoding goes
	// parallel (default 1 MiB).
	ParallelThreshold int
	// WriteWorkers bounds the pool writing one stripe's framed blocks to
	// the backend concurrently during streaming puts: 0 = default (4),
	// <0 = serial. Disk and network backends overlap write latency; a
	// memory backend mostly overlaps lock hold times.
	WriteWorkers int
	// ReadWorkers bounds the pool fetching one stripe's data blocks
	// concurrently during streaming gets — and a repair's planned source
	// blocks: 0 = default (4), <0 = serial.
	ReadWorkers int
	// RepairRateBytes caps the repair pool's backend read rate in bytes
	// per second — the paper's bounded fixer load, so background repair
	// of a dead node never starves foreground reads. Charged by actual
	// bytes read through a shared token bucket; 0 = unlimited.
	RepairRateBytes int64
	// ScrubRateBytes caps the scrubber's integrity-walk read rate in
	// bytes per second, same discipline; 0 = unlimited.
	ScrubRateBytes int64
	// RebalanceRateBytes caps the rebalancer's migration read rate in
	// bytes per second — planned topology change must never starve
	// foreground traffic, same token-bucket discipline as repair and
	// scrub; 0 = unlimited.
	RebalanceRateBytes int64
	// CacheBytes bounds the in-memory hot-block cache on the foreground
	// read path: fetched (and reconstructed) data-block payloads stay
	// resident in a sharded, pin/unpin LRU keyed by backend block key —
	// which embeds (name, gen, stripe, pos), so generations can never
	// collide — and a repeat read of a hot object costs zero backend
	// reads. Scrub, repair and rebalance reads never populate it.
	// 0 disables caching (the default; background tools and tests then
	// see every read hit the backend).
	CacheBytes int64
	// MetaDir roots the persistent metadata plane (WAL + checkpoint): an
	// acked Put is then on the log before PutReader returns, and a
	// restart recovers every manifest by checkpoint load + WAL replay.
	// "" keeps metadata in memory only (tests, throwaway stores). The
	// geometry (codec, nodes, racks, block size) is the caller's to keep
	// consistent across opens — the plane stores manifests, not config.
	MetaDir string
	// MetaShards is the metadata plane's index shard count (default 16).
	MetaShards int
	// HedgeQuantile enables hedged stripe reads: when one block fetch of
	// a stripe sits past this quantile of recent block-read latency, the
	// degraded-path reconstruction race fires instead of waiting on the
	// straggler (Dean & Barroso's hedged requests, with erasure decode
	// as the backup request). Must be in (0, 1); 0 disables hedging.
	// With one slow node in the cluster, ~k/nodes of stripes touch it,
	// so a quantile below that pollution rate (0.9 with defaults) keeps
	// the trigger armed.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge trigger delay (default 2ms when
	// hedging is enabled) so a cold latency histogram or an all-memory
	// backend never fires hedges on microsecond jitter.
	HedgeMinDelay time.Duration
}

func (c *Config) fillDefaults() {
	if c.Codec == nil {
		c.Codec = NewXorbasCodec()
	}
	if c.Backend == nil {
		c.Backend = NewMemBackend()
	}
	if c.Nodes == 0 {
		c.Nodes = 20
	}
	if c.Racks == 0 {
		c.Racks = 8
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 10
	}
	if c.ParallelThreshold == 0 {
		c.ParallelThreshold = 1 << 20
	}
	if c.HedgeQuantile > 0 && c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 2 * time.Millisecond
	}
}

func (c *Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("store: need at least 1 node, got %d", c.Nodes)
	}
	if c.Racks < 1 {
		return fmt.Errorf("store: need at least 1 rack, got %d", c.Racks)
	}
	if c.BlockSize < 1 {
		return fmt.Errorf("store: block size must be positive, got %d", c.BlockSize)
	}
	if c.HedgeQuantile < 0 || c.HedgeQuantile >= 1 {
		if c.HedgeQuantile != 0 {
			return fmt.Errorf("store: hedge quantile must be in (0,1), got %g", c.HedgeQuantile)
		}
	}
	return nil
}

// stripeInfo is the manifest entry for one stripe of an object.
type stripeInfo struct {
	// Seq is the placement rotation the stripe was placed with.
	Seq int `json:"seq"`
	// DataLen is the real payload length of the stripe before zero
	// padding to K·BlockLen.
	DataLen int `json:"data_len"`
	// BlockLen is the per-block payload length.
	BlockLen int `json:"block_len"`
	// Nodes[pos] is the node holding stripe position pos.
	Nodes []int `json:"nodes"`
	// Keys[pos] is the backend key of stripe position pos.
	Keys []string `json:"keys"`
}

// objectInfo is an object's manifest.
type objectInfo struct {
	Name string `json:"name"`
	Size int    `json:"size"`
	// Gen is the Put generation that wrote this version: repairs racing
	// an overwrite use it to tell the versions apart (a stale repair must
	// never splice an old block key into the new manifest).
	Gen     int64        `json:"gen"`
	Stripes []stripeInfo `json:"stripes"`
	// muts counts manifest mutations of this version (repair
	// relocations). A failed read retries only if (Gen, muts) moved — an
	// unchanged manifest means the failure is genuine, not a stale
	// snapshot. Manifests in the metadata plane are copy-on-write, so a
	// relocation bumps muts on the replacement, never in place. Runtime
	// state, not persisted.
	muts int64
}

// Store is a concurrent erasure-coded object store. All methods are safe
// for concurrent use.
type Store struct {
	cfg    Config
	placer *placer
	// ownedW is non-nil when the backend supports ownership-transfer
	// writes (MemBackend): the streaming put then hands framed buffers to
	// the backend instead of letting Write copy them.
	ownedW OwnedWriter

	// db is the metadata plane: every manifest, the repair queue and the
	// liveness record live there, sharded for concurrent access and —
	// with Config.MetaDir — write-ahead logged. Values follow the meta
	// package's copy-on-write contract: an *objectInfo handed out by the
	// plane is immutable, and mutation commits a replacement.
	db *meta.DB

	// mu guards the liveness vector and the membership table (manifests
	// no longer live under it). members and alive always have equal
	// length: one slot per node id ever issued.
	mu      sync.RWMutex
	alive   []bool
	members []memberRecord

	// memberMu serializes membership mutations (AddNode, state
	// transitions) so a backend registration and the table growth it
	// pairs with are atomic — without holding mu across the backend call.
	memberMu sync.Mutex
	// epoch counts membership changes; persisted in every n/ record.
	epoch atomic.Int64

	// Version pinning: a streaming read pins the (name, generation) it
	// snapshotted so an overwrite or delete racing the read cannot
	// reclaim that version's blocks mid-stream. retire defers the
	// reclamation of a pinned version to the last unpin.
	pinMu     sync.Mutex
	pins      map[verKey]int
	condemned map[verKey]*objectInfo

	gen atomic.Int64 // Put generation, keeps block keys unique
	seq atomic.Int64 // stripe placement rotation

	// repairLim / scrubLim / rebalLim pace the background datapaths
	// (nil = unlimited). Foreground reads never touch them.
	repairLim *byteRate
	scrubLim  *byteRate
	rebalLim  *byteRate

	// readLat is the block-read latency histogram feeding the hedge
	// trigger's quantile.
	readLat blockLatHist

	// cache is the hot-block read cache, nil unless Config.CacheBytes
	// is set. Invalidation rides the same paths that make blocks stale:
	// deleteBlocks (retire/delete) and relocateBlock (repair/rebalance
	// write-backs).
	cache *blockCache

	m counters
}

// New builds a Store.
func New(cfg Config) (*Store, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:       cfg,
		placer:    newPlacer(cfg.Codec, cfg.Racks),
		alive:     make([]bool, cfg.Nodes),
		pins:      make(map[verKey]int),
		condemned: make(map[verKey]*objectInfo),
	}
	if ow, ok := cfg.Backend.(OwnedWriter); ok {
		s.ownedW = ow
	}
	s.repairLim = newByteRate(cfg.RepairRateBytes)
	s.scrubLim = newByteRate(cfg.ScrubRateBytes)
	s.rebalLim = newByteRate(cfg.RebalanceRateBytes)
	if cfg.CacheBytes > 0 {
		s.cache = newBlockCache(cfg.CacheBytes)
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	// Seed nodes start active at epoch 0; their records are persisted
	// lazily, on the first membership change that touches them.
	s.members = make([]memberRecord, cfg.Nodes)
	for i := range s.members {
		s.members[i] = memberRecord{Node: i, State: NodeActive}
	}
	// Recovery happens here: with a MetaDir, openMeta loads the
	// checkpoint, replays the WAL and restores manifests, liveness and
	// the gen/seq watermark — no presence walk, no snapshot blob.
	if err := s.openMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// Codec returns the store's codec.
func (s *Store) Codec() Codec { return s.cfg.Codec }

// Backend returns the store's backend.
func (s *Store) Backend() Backend { return s.cfg.Backend }

// Nodes returns the node count, including every id ever issued —
// joining, draining and dead nodes keep their slots (ids are never
// reused, so old manifests always resolve).
func (s *Store) Nodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.alive)
}

// Racks returns the rack count.
func (s *Store) Racks() int { return s.cfg.Racks }

// Alive reports whether a node is up.
func (s *Store) Alive(n int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return n >= 0 && n < len(s.alive) && s.alive[n]
}

// KillNode takes a node down: its blocks become unreadable until revival
// or repair (the paper's DataNode terminations, §5.2). Idempotent. The
// death is logged to the metadata plane (best-effort) so a restart
// still knows the node is down without a presence walk.
func (s *Store) KillNode(n int) {
	s.mu.Lock()
	if n >= 0 && n < len(s.alive) {
		s.alive[n] = false
	}
	s.mu.Unlock()
	_ = s.logState()
}

// ReviveNode brings a node back (§1.1's transient failures). Idempotent.
func (s *Store) ReviveNode(n int) {
	s.mu.Lock()
	if n >= 0 && n < len(s.alive) {
		s.alive[n] = true
	}
	s.mu.Unlock()
	_ = s.logState()
}

// aliveSnapshot copies the liveness vector.
func (s *Store) aliveSnapshot() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]bool(nil), s.alive...)
}

// blockKey builds a unique, filesystem-safe backend key.
func blockKey(name string, gen int64, stripe, pos int) string {
	safe := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return fmt.Sprintf("%s.g%06d.s%05d.b%02d", safe, gen, stripe, pos)
}

// encodeWorkers picks the parity parallelism for a stripe payload size.
func (s *Store) encodeWorkers(stripeBytes int) int {
	switch {
	case s.cfg.EncodeWorkers < 0:
		return 1
	case s.cfg.EncodeWorkers > 0:
		return s.cfg.EncodeWorkers
	case stripeBytes >= s.cfg.ParallelThreshold:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// poolSize interprets a worker-count config field (<0 serial, 0 default
// of 4) and caps it at the number of jobs.
func poolSize(cfgVal, jobs int) int {
	w := cfgVal
	switch {
	case w < 0:
		return 1
	case w == 0:
		w = 4
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// writeWorkers picks the backend-write pool size for a stripe of n blocks.
func (s *Store) writeWorkers(n int) int { return poolSize(s.cfg.WriteWorkers, n) }

// readWorkers picks the backend-read pool size for a stripe of k data
// blocks.
func (s *Store) readWorkers(k int) int { return poolSize(s.cfg.ReadWorkers, k) }

// Put stores an object under name, replacing any previous version. The
// object is chunked into K·BlockSize stripes, encoded (in parallel for
// large stripes), CRC-framed and placed rack-aware on live nodes. It is
// a thin wrapper over the streaming path (PutReader).
func (s *Store) Put(name string, data []byte) error {
	return s.PutReader(name, bytes.NewReader(data))
}

// readBlockPayload fetches and unframes one stripe position. Reads from
// dead nodes fail without touching the backend; short, corrupt or missing
// blocks fail after the read (and still count toward bytes read — the
// scrubber pays for what it reads, good or bad). lim, when non-nil, is
// charged the actual bytes read: the background datapaths pass their
// token bucket, foreground reads pass nil.
func (s *Store) readBlockPayload(si *stripeInfo, pos int, acct *readAcct, lim *byteRate) ([]byte, error) {
	node := si.Nodes[pos]
	if !s.Alive(node) {
		return nil, fmt.Errorf("store: node %d is dead", node)
	}
	start := time.Now()
	raw, err := s.cfg.Backend.Read(node, si.Keys[pos])
	if err != nil {
		return nil, err
	}
	s.readLat.observe(time.Since(start))
	acct.blocks++
	acct.bytes += int64(len(raw))
	lim.take(int64(len(raw)))
	payload, err := UnframeBlock(raw)
	if err != nil {
		return nil, err
	}
	if len(payload) != si.BlockLen {
		return nil, fmt.Errorf("%w: %d-byte payload, want %d", ErrCorrupt, len(payload), si.BlockLen)
	}
	return payload, nil
}

// reconstructPositions rebuilds every nil position in need with one
// batched decode: the union of the codec's repair plans (light local
// sets first, heavy fallback — cached per erasure pattern) is fetched
// concurrently through the bounded read pool, then a single
// ReconstructMany pass rebuilds all targets through the word-wise XOR
// and fused table kernels. stripe holds payloads already in hand and is
// filled in place; avail marks positions believed readable and is
// downgraded as fetches fail, re-planning until every target is rebuilt
// or provably unrecoverable. On an unrecoverable stripe the targets that
// can be rebuilt still are (partial progress) and the first failure is
// returned.
func (s *Store) reconstructPositions(si *stripeInfo, stripe [][]byte, need []int, avail []bool, acct *readAcct, lim *byteRate) error {
	return s.reconstructInto(si, stripe, need, avail, acct, lim, nil)
}

// reconstructInto is reconstructPositions with an optional destination
// map: when dstFor is non-nil it supplies the decode buffer for each
// target position (the repair engine's reusable framed slabs) and the
// codec's zero-allocation ReconstructManyInto path is used.
func (s *Store) reconstructInto(si *stripeInfo, stripe [][]byte, need []int, avail []bool, acct *readAcct, lim *byteRate, dstFor func(pos int) []byte) error {
	var firstErr error
	n := len(stripe)
	wanted := make([]int, 0, n)
	seen := make([]bool, n)
	for {
		// Plan every target still nil; collect the union of source reads.
		var targets []int
		wanted = wanted[:0]
		for i := range seen {
			seen[i] = false
		}
		for _, pos := range need {
			if stripe[pos] != nil {
				continue
			}
			reads, _, err := s.cfg.Codec.PlanReads(pos, avail)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: block %d: %v", ErrUnrecoverable, pos, err)
				}
				continue
			}
			targets = append(targets, pos)
			for _, j := range reads {
				if stripe[j] == nil && !seen[j] {
					seen[j] = true
					wanted = append(wanted, j)
				}
			}
		}
		if len(targets) == 0 {
			return firstErr
		}
		if s.fetchBlocks(si, stripe, wanted, avail, acct, lim) {
			continue // a source failed; re-plan with the downgraded avail
		}
		var payloads [][]byte
		var filled, lights []bool
		var err error
		if dstFor != nil {
			payloads = make([][]byte, len(targets))
			for ti, pos := range targets {
				payloads[ti] = dstFor(pos)
			}
			filled, lights, err = s.cfg.Codec.ReconstructManyInto(stripe, targets, payloads)
		} else {
			payloads, lights, err = s.cfg.Codec.ReconstructMany(stripe, targets)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%w: %v", ErrUnrecoverable, err)
		}
		for ti, pos := range targets {
			if payloads == nil || payloads[ti] == nil {
				continue
			}
			if dstFor != nil && (filled == nil || !filled[ti]) {
				continue // Into path: the buffer was not filled
			}
			stripe[pos] = payloads[ti]
			avail[pos] = true
			if lights[ti] {
				acct.light++
			} else {
				acct.heavy++
			}
		}
		// Every planned source was in hand, so a target ReconstructMany
		// left nil is genuinely unrecoverable — re-looping could not fetch
		// anything new.
		return firstErr
	}
}

// fetchBlocks reads the given stripe positions into stripe —
// concurrently when the read pool allows — charging lim and downgrading
// avail on failure. Reports whether any fetch failed (the caller then
// re-plans).
func (s *Store) fetchBlocks(si *stripeInfo, stripe [][]byte, positions []int, avail []bool, acct *readAcct, lim *byteRate) bool {
	if len(positions) == 0 {
		return false
	}
	failed := false
	workers := s.readWorkers(len(positions))
	if workers <= 1 {
		for _, j := range positions {
			p, err := s.readBlockPayload(si, j, acct, lim)
			if err != nil {
				avail[j] = false
				failed = true
				continue
			}
			stripe[j] = p
		}
		return failed
	}
	accts := make([]readAcct, workers)
	errs := make([]error, len(positions))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				p, err := s.readBlockPayload(si, positions[idx], &accts[w], lim)
				if err != nil {
					errs[idx] = err
					continue
				}
				stripe[positions[idx]] = p
			}
		}(w)
	}
	for idx := range positions {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for w := range accts {
		acct.add(&accts[w])
	}
	for idx, err := range errs {
		if err != nil {
			avail[positions[idx]] = false
			failed = true
		}
	}
	return failed
}

// verKey names one version of one object for the pin table.
type verKey struct {
	name string
	gen  int64
}

// pin marks one more in-flight reader of (name, gen). Callers must pin
// inside a db.View of the version they just looked up, so the pin is
// atomic with the lookup against a concurrent commit (which takes the
// same shard's write lock).
func (s *Store) pin(name string, gen int64) {
	s.pinMu.Lock()
	s.pins[verKey{name, gen}]++
	s.pinMu.Unlock()
}

// unpin releases one reader of (name, gen) and reclaims the version's
// blocks if it was condemned while pinned.
func (s *Store) unpin(name string, gen int64) {
	k := verKey{name, gen}
	var reclaim *objectInfo
	s.pinMu.Lock()
	if s.pins[k]--; s.pins[k] <= 0 {
		delete(s.pins, k)
		if o := s.condemned[k]; o != nil {
			delete(s.condemned, k)
			reclaim = o
		}
	}
	s.pinMu.Unlock()
	if reclaim != nil {
		s.deleteBlocks(reclaim)
	}
}

// retire reclaims a replaced or deleted version's blocks — immediately
// when no reader holds it, otherwise deferred to the last unpin so a
// streaming read never has its snapshot's blocks deleted out from under
// it by an overwrite.
func (s *Store) retire(obj *objectInfo) {
	k := verKey{obj.Name, obj.Gen}
	s.pinMu.Lock()
	if s.pins[k] > 0 {
		s.condemned[k] = obj
		s.pinMu.Unlock()
		return
	}
	s.pinMu.Unlock()
	s.deleteBlocks(obj)
}

// Delete removes an object and its blocks. The manifest's removal is
// durable before any block is reclaimed, so a crash mid-delete leaves
// orphan blocks (invisible, swept by nothing referencing them), never a
// manifest pointing at deleted bytes.
func (s *Store) Delete(name string) error {
	var obj *objectInfo
	err := s.db.Commit(func(tx *meta.Tx) {
		v, ok := tx.Get(objKey(name))
		if !ok {
			return
		}
		obj = v.(*objectInfo)
		tx.Delete(objKey(name))
	})
	if err != nil {
		return err
	}
	if obj == nil {
		return fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	s.retire(obj)
	return nil
}

// deleteBlocks best-effort removes an object's blocks, dead nodes
// included (backends outlive simulated node failures). The cache drops
// the version's entries first: this runs at retire time for an
// unpinned version and at the last unpin otherwise, so a pinned
// streaming read keeps hitting its own generation until it finishes
// and a reclaimed generation can never serve another hit.
func (s *Store) deleteBlocks(obj *objectInfo) {
	if s.cache != nil {
		s.cache.invalidateObject(obj)
	}
	for i := range obj.Stripes {
		si := &obj.Stripes[i]
		for pos, node := range si.Nodes {
			if node >= 0 {
				_ = s.cfg.Backend.Delete(node, si.Keys[pos])
			}
		}
	}
}

// ObjectStat summarizes one stored object.
type ObjectStat struct {
	Name    string
	Size    int
	Stripes int
}

// Objects lists stored objects via a metadata-plane scan.
func (s *Store) Objects() []ObjectStat {
	return s.ObjectsWithPrefix("")
}

// ObjectsWithPrefix lists stored objects whose names start with prefix —
// the gateway's tenant-scoped listing ("" lists everything). Order is
// unspecified (the plane's scan is sharded); callers that need sorted
// output sort the result.
func (s *Store) ObjectsWithPrefix(prefix string) []ObjectStat {
	var out []ObjectStat
	it := s.db.Scan(objPrefix + prefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		o := v.(*objectInfo)
		out = append(out, ObjectStat{Name: o.Name, Size: o.Size, Stripes: len(o.Stripes)})
	}
	return out
}

// Stat returns one object's summary, or an error wrapping ErrNotFound.
func (s *Store) Stat(name string) (ObjectStat, error) {
	v, ok := s.db.Get(objKey(name))
	if !ok {
		return ObjectStat{}, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	o := v.(*objectInfo)
	return ObjectStat{Name: o.Name, Size: o.Size, Stripes: len(o.Stripes)}, nil
}

// BlocksPerNode counts manifest blocks per node — the placement balance
// view.
func (s *Store) BlocksPerNode() []int {
	out := make([]int, s.Nodes())
	it := s.db.Scan(objPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		o := v.(*objectInfo)
		for i := range o.Stripes {
			for _, n := range o.Stripes[i].Nodes {
				if n >= 0 && n < len(out) {
					out[n]++
				}
			}
		}
	}
	return out
}

// BlockLocation returns where one stripe position of an object lives —
// the hook the corruption tooling uses.
func (s *Store) BlockLocation(name string, stripe, pos int) (node int, key string, err error) {
	v, ok := s.db.Get(objKey(name))
	if !ok {
		return 0, "", fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	obj := v.(*objectInfo)
	if stripe < 0 || stripe >= len(obj.Stripes) {
		return 0, "", fmt.Errorf("store: %q has no stripe %d", name, stripe)
	}
	si := &obj.Stripes[stripe]
	if pos < 0 || pos >= len(si.Nodes) {
		return 0, "", fmt.Errorf("store: stripe has no block %d", pos)
	}
	return si.Nodes[pos], si.Keys[pos], nil
}

// stripeRef names one stripe for the scrubber's walk. The generation
// pins the object *version*: a repair started against version g must
// never touch the manifest of a later overwrite.
type stripeRef struct {
	name string
	gen  int64
	idx  int
}

// objectForRef resolves a ref to the live manifest, nil if the object
// was deleted or overwritten since the ref was taken.
func (s *Store) objectForRef(ref stripeRef) *objectInfo {
	v, ok := s.db.Get(objKey(ref.name))
	if !ok {
		return nil
	}
	obj := v.(*objectInfo)
	if obj.Gen != ref.gen || ref.idx >= len(obj.Stripes) {
		return nil
	}
	return obj
}

// stripeSnapshot copies one stripe's manifest entry. The Nodes/Keys
// copies matter: repair mutates its local snapshot while planning, and
// the plane's manifest is shared with every other reader.
func (s *Store) stripeSnapshot(ref stripeRef) (stripeInfo, bool) {
	obj := s.objectForRef(ref)
	if obj == nil {
		return stripeInfo{}, false
	}
	si := obj.Stripes[ref.idx]
	si.Nodes = append([]int(nil), si.Nodes...)
	si.Keys = append([]string(nil), si.Keys...)
	return si, true
}

// withRelocation returns a copy of the manifest with one stripe position
// repointed — the copy-on-write half of relocateBlock. Only the touched
// stripe's slices are duplicated; the rest alias the old version, which
// is immutable by the same contract.
func (o *objectInfo) withRelocation(idx, pos, node int, key string) *objectInfo {
	n := *o
	n.Stripes = append([]stripeInfo(nil), o.Stripes...)
	si := &n.Stripes[idx]
	si.Nodes = append([]int(nil), si.Nodes...)
	si.Keys = append([]string(nil), si.Keys...)
	si.Nodes[pos] = node
	si.Keys[pos] = key
	n.muts = o.muts + 1
	return &n
}

// relocateBlock points one stripe position at a new node/key after a
// repair rewrite, committing a copy-on-write replacement manifest. It
// reports false — leaving the manifest untouched — if the object was
// deleted or overwritten under the repair (the generation check, redone
// inside the transaction: splicing an old version's block into a new
// manifest would serve stale bytes).
func (s *Store) relocateBlock(ref stripeRef, pos, node int, key string) bool {
	relocated := false
	oldKey := ""
	err := s.db.Commit(func(tx *meta.Tx) {
		v, ok := tx.Get(objKey(ref.name))
		if !ok {
			return
		}
		obj := v.(*objectInfo)
		if obj.Gen != ref.gen || ref.idx >= len(obj.Stripes) {
			return
		}
		if pos < 0 || pos >= len(obj.Stripes[ref.idx].Nodes) {
			return
		}
		oldKey = obj.Stripes[ref.idx].Keys[pos]
		tx.Put(objKey(ref.name), obj.withRelocation(ref.idx, pos, node, key))
		relocated = true
	})
	if err == nil && relocated && s.cache != nil {
		// Repair and rebalance write-backs commit here; a cached copy of
		// the pre-repair payload (or of a corrupt block rebuilt in place)
		// must not serve past this point. Repairs keep the block key, so
		// old and new are usually the same string — drop both regardless.
		s.cache.invalidate(oldKey)
		if key != oldKey {
			s.cache.invalidate(key)
		}
	}
	return err == nil && relocated
}

// --- snapshot / restore (the CLI's on-disk state) ---

type snapshot struct {
	Codec     string         `json:"codec"`
	Nodes     int            `json:"nodes"`
	Racks     int            `json:"racks"`
	BlockSize int            `json:"block_size"`
	Gen       int64          `json:"gen"`
	Seq       int64          `json:"seq"`
	Epoch     int64          `json:"epoch,omitempty"`
	Dead      []int          `json:"dead,omitempty"`
	Members   []memberRecord `json:"members,omitempty"`
	Objects   []*objectInfo  `json:"objects"`
}

// Snapshot serializes the store's metadata (manifests, liveness,
// geometry) as JSON — an export of the metadata plane for the CLI's
// state file and for migrating into a MetaDir-backed store. Block bytes
// live in the backend; metrics are not persisted.
func (s *Store) Snapshot() ([]byte, error) {
	snap := snapshot{
		Codec:     s.cfg.Codec.Name(),
		Racks:     s.cfg.Racks,
		BlockSize: s.cfg.BlockSize,
		Gen:       s.gen.Load(),
		Seq:       s.seq.Load(),
		Epoch:     s.epoch.Load(),
	}
	s.mu.RLock()
	snap.Nodes = len(s.alive)
	for n, a := range s.alive {
		if !a {
			snap.Dead = append(snap.Dead, n)
		}
	}
	// Only non-seed-state members need recording; a snapshot of a store
	// that never changed membership stays byte-compatible with old ones.
	for _, m := range s.members {
		if m.State != NodeActive || m.Addr != "" || m.Epoch != 0 {
			snap.Members = append(snap.Members, m)
		}
	}
	s.mu.RUnlock()
	it := s.db.Scan(objPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		snap.Objects = append(snap.Objects, v.(*objectInfo))
	}
	return json.MarshalIndent(snap, "", "  ")
}

// Restore rebuilds a store from Snapshot output. cfg supplies the codec
// and backend (which must match the snapshot's codec by name); geometry
// comes from the snapshot. When cfg.MetaDir names a plane that already
// holds manifests, the plane is authoritative and the snapshot's object
// list is ignored — the WAL saw every commit, the snapshot only the last
// explicit save. An empty plane imports the snapshot (the migration
// path, and how memory-only stores load a state file).
func Restore(cfg Config, data []byte) (*Store, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: bad snapshot: %w", err)
	}
	cfg.fillDefaults()
	if cfg.Codec.Name() != snap.Codec {
		return nil, fmt.Errorf("store: snapshot was written with codec %s, store opened with %s", snap.Codec, cfg.Codec.Name())
	}
	cfg.Nodes, cfg.Racks, cfg.BlockSize = snap.Nodes, snap.Racks, snap.BlockSize
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if s.db.Len(objPrefix) > 0 {
		// Plane wins; only ratchet the watermarks so snapshot-era keys and
		// epochs are never reissued.
		if snap.Gen > s.gen.Load() {
			s.gen.Store(snap.Gen)
		}
		if snap.Seq > s.seq.Load() {
			s.seq.Store(snap.Seq)
		}
		if snap.Epoch > s.epoch.Load() {
			s.epoch.Store(snap.Epoch)
		}
		return s, nil
	}
	if snap.Gen > s.gen.Load() {
		s.gen.Store(snap.Gen)
	}
	if snap.Seq > s.seq.Load() {
		s.seq.Store(snap.Seq)
	}
	if snap.Epoch > s.epoch.Load() {
		s.epoch.Store(snap.Epoch)
	}
	s.mu.Lock()
	for _, m := range snap.Members {
		if m.Node >= 0 && m.Node < len(s.members) {
			s.members[m.Node] = m
			if m.State == NodeDead {
				s.alive[m.Node] = false
			}
		}
	}
	for _, n := range snap.Dead {
		if n >= 0 && n < len(s.alive) {
			s.alive[n] = false
		}
	}
	s.mu.Unlock()
	err = s.db.Commit(func(tx *meta.Tx) {
		for _, o := range snap.Objects {
			tx.Put(objKey(o.Name), o)
		}
		for _, m := range snap.Members {
			if m.Node >= 0 && m.Node < snap.Nodes {
				m := m
				tx.Put(nodeKey(m.Node), &m)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := s.logState(); err != nil {
		return nil, err
	}
	return s, nil
}
