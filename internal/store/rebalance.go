package store

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"time"
)

// The Rebalancer is the migration half of elastic membership: a
// background walk that moves manifest blocks off draining nodes and onto
// joiners, paced by the rebalance token bucket so a planned topology
// change never starves foreground traffic. It is deliberately shaped
// like the Scrubber — a periodic synchronous pass over the manifest
// walk — and it reuses the repair machinery for the one case a copy
// cannot handle: a draining node that is already dead drains by
// presence-walk repair (each stripe's survivors rebuild the lost block
// elsewhere; with the LRC codec that is an r=5 light read per block
// where RS reads k=10).

// RebalanceReport summarizes one rebalance pass.
type RebalanceReport struct {
	// Stripes is how many stripes the pass examined.
	Stripes int
	// Moved counts blocks migrated (drain moves and joiner fills), and
	// MovedBytes their payload bytes.
	Moved      int
	MovedBytes int64
	// Enqueued is how many stripes with unreadable blocks on draining
	// nodes were handed to the repair queue (the dead-drainer path).
	Enqueued int
	// Remaining is how many manifest blocks still sit on draining nodes
	// after the pass — repairs still in flight, or moves that failed and
	// will be retried next pass. Zero means every drain completed.
	Remaining int
	// Promoted counts membership promotions made at the end of the pass
	// (joining→active, draining→dead).
	Promoted int
}

// Rebalancer migrates blocks to match the planned topology. Passes run
// periodically in the background (Start/Stop) or synchronously
// (RebalanceOnce); rm may be nil, in which case dead drainers cannot
// make progress until a repair manager exists.
type Rebalancer struct {
	s  *Store
	rm *RepairManager
	// interval is the background pass period.
	interval time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewRebalancer builds a rebalancer feeding the repair manager's queue
// for unreadable drainers. Interval ≤ 0 defaults to 5s.
func NewRebalancer(s *Store, rm *RepairManager, interval time.Duration) *Rebalancer {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Rebalancer{s: s, rm: rm, interval: interval, stop: make(chan struct{})}
}

// Start launches the periodic background pass. Idempotent.
func (rb *Rebalancer) Start() {
	rb.startOnce.Do(func() {
		rb.wg.Add(1)
		go func() {
			defer rb.wg.Done()
			t := time.NewTicker(rb.interval)
			defer t.Stop()
			for {
				select {
				case <-rb.stop:
					return
				case <-t.C:
					rb.RebalanceOnce()
				}
			}
		}()
	})
}

// Stop halts the background pass. Idempotent; blocks until an in-flight
// pass finishes.
func (rb *Rebalancer) Stop() {
	rb.stopOnce.Do(func() {
		close(rb.stop)
		rb.wg.Wait()
	})
}

// drainMove is one candidate migration off a draining node, with the
// risk priority it sorts under.
type drainMove struct {
	ref stripeRef
	pos int
	// erasures is the stripe's dead-block count when the candidate was
	// collected: a block whose stripe is already degraded is closer to
	// the data-loss edge and moves first (the drain-ordering policy of
	// the retired HDFS simulation, ported to the real datapath).
	erasures int
	seq      int
}

// RebalanceOnce runs one synchronous pass: walk every stripe, migrate
// blocks off draining nodes (most-endangered stripes first), enqueue
// repair for blocks a dead drainer can no longer serve, fill joining
// nodes toward the cluster mean, then promote members whose transition
// completed. A no-op when the topology has no drainers or joiners.
func (rb *Rebalancer) RebalanceOnce() RebalanceReport {
	var rep RebalanceReport
	s := rb.s
	states := s.memberStates()
	var drainers, joiners []int
	for i, st := range states {
		switch st {
		case NodeDraining:
			drainers = append(drainers, i)
		case NodeJoining:
			joiners = append(joiners, i)
		}
	}
	if len(drainers) == 0 && len(joiners) == 0 {
		return rep
	}

	moves := rb.collectDrainWork(&rep, states)
	// Most-endangered blocks first: a stripe already missing blocks is
	// the one a further failure could push past recoverability.
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].erasures != moves[j].erasures {
			return moves[i].erasures > moves[j].erasures
		}
		return moves[i].seq < moves[j].seq
	})
	for _, mv := range moves {
		if n := rb.migrateOff(mv.ref, mv.pos); n > 0 {
			rep.Moved++
			rep.MovedBytes += n
		}
	}

	if len(joiners) > 0 {
		rb.fillJoiners(&rep, joiners)
	}

	// Promotions close the pass. Joining nodes have received their fill
	// (and new stripes already land on them), so they graduate to
	// active. A draining node retires to dead only when no manifest
	// block references it — anything still there is Remaining work for
	// repairs in flight or the next pass.
	for _, j := range joiners {
		if s.promote(j, NodeJoining, NodeActive) {
			rep.Promoted++
		}
	}
	if len(drainers) > 0 {
		counts := s.BlocksPerNode()
		for _, d := range drainers {
			left := 0
			if d < len(counts) {
				left = counts[d]
			}
			if left == 0 {
				if s.promote(d, NodeDraining, NodeDead) {
					rep.Promoted++
				}
			} else {
				rep.Remaining += left
			}
		}
	}
	return rep
}

// collectDrainWork walks the manifests once, returning the readable
// blocks on draining nodes as move candidates and enqueueing repair for
// stripes whose draining node is dead (mirroring ScrubPresence: the
// whole damaged set goes in one prioritized item).
func (rb *Rebalancer) collectDrainWork(rep *RebalanceReport, states []NodeState) []drainMove {
	s := rb.s
	alive := s.aliveSnapshot()
	n := s.cfg.Codec.NStored()
	var moves []drainMove
	it := s.db.Scan(objPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		obj := v.(*objectInfo)
		for idx := range obj.Stripes {
			si := &obj.Stripes[idx]
			rep.Stripes++
			avail := make([]bool, n)
			var dead, drainPos []int
			deadDrainer := false
			for pos := 0; pos < n; pos++ {
				nd := si.Nodes[pos]
				up := nd >= 0 && nd < len(alive) && alive[nd]
				avail[pos] = up
				if !up {
					dead = append(dead, pos)
					if nd >= 0 && nd < len(states) && states[nd] == NodeDraining {
						deadDrainer = true
					}
					continue
				}
				if states[nd] == NodeDraining {
					drainPos = append(drainPos, pos)
				}
			}
			for _, pos := range drainPos {
				moves = append(moves, drainMove{
					ref:      stripeRef{name: obj.Name, gen: obj.Gen, idx: idx},
					pos:      pos,
					erasures: len(dead),
					seq:      si.Seq,
				})
			}
			if deadDrainer && rb.rm != nil {
				light := true
				for _, pos := range dead {
					if _, l, err := s.cfg.Codec.PlanReads(pos, avail); err != nil || !l {
						light = false
						break
					}
				}
				if rb.rm.enqueue(repairItem{
					ref:      stripeRef{name: obj.Name, gen: obj.Gen, idx: idx},
					damaged:  dead,
					erasures: len(dead),
					light:    light,
				}) {
					rep.Enqueued++
				}
			}
		}
	}
	return moves
}

// fillJoiners moves blocks from the most-loaded active nodes onto
// joining nodes until each joiner holds the cluster-mean share (or no
// rack-safe donor block remains). Counts are tracked live so one pass
// converges instead of overshooting.
func (rb *Rebalancer) fillJoiners(rep *RebalanceReport, joiners []int) {
	s := rb.s
	counts := s.BlocksPerNode()
	placeable := s.placeableSnapshot()
	total, eligible := 0, 0
	for i, c := range counts {
		total += c
		if i < len(placeable) && placeable[i] {
			eligible++
		}
	}
	if eligible == 0 || total == 0 {
		return
	}
	// Floor mean: joiners fill up to it, donors give down to it. With a
	// perfectly even pre-join layout every old node sits one above the
	// new floor, so the fill converges without ever overshooting.
	mean := total / eligible
	if mean == 0 {
		return
	}
	deficit := 0
	for _, j := range joiners {
		if j < len(counts) && counts[j] < mean {
			deficit += mean - counts[j]
		}
	}
	if deficit == 0 {
		return
	}
	states := s.memberStates()
	it := s.db.Scan(objPrefix)
	for deficit > 0 {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		obj := v.(*objectInfo)
		for idx := range obj.Stripes {
			if deficit == 0 {
				break
			}
			si := &obj.Stripes[idx]
			for pos, nd := range si.Nodes {
				// Donors are over-mean active nodes; a below-mean joiner
				// takes the block only when the move keeps the stripe's
				// node- and rack-spread intact.
				if nd < 0 || nd >= len(counts) || counts[nd] <= mean {
					continue
				}
				if nd >= len(states) || states[nd] != NodeActive || !s.Alive(nd) {
					continue
				}
				// The iterator's manifest is a point-in-time view; an
				// earlier fill may already have moved a sibling of this
				// stripe, so safety is judged against a fresh snapshot.
				ref := stripeRef{name: obj.Name, gen: obj.Gen, idx: idx}
				fresh, ok := s.stripeSnapshot(ref)
				if !ok || fresh.Nodes[pos] != nd {
					continue
				}
				target := -1
				for _, j := range joiners {
					if j < len(counts) && counts[j] < mean && s.placementSafe(&fresh, pos, j) && s.Alive(j) {
						if target < 0 || counts[j] < counts[target] {
							target = j
						}
					}
				}
				if target < 0 {
					continue
				}
				if n := rb.migrateTo(ref, pos, nd, target); n > 0 {
					rep.Moved++
					rep.MovedBytes += n
					counts[nd]--
					counts[target]++
					deficit--
					if deficit == 0 {
						break
					}
				}
			}
		}
	}
}

// placementSafe reports whether putting stripe position pos on node t
// keeps the strict placement rule: no other position of the stripe on t,
// and no other block of pos's repair group in t's rack. Used as the
// gate for balance-driven moves — unlike a repair, a fill has no urgency
// and never takes a relaxed placement.
func (s *Store) placementSafe(si *stripeInfo, pos, t int) bool {
	g := s.placer.groupOf[pos]
	for q, n := range si.Nodes {
		if q == pos || n < 0 {
			continue
		}
		if n == t {
			return false
		}
		if g >= 0 && s.placer.groupOf[q] == g && s.placer.rackOf(n) == s.placer.rackOf(t) {
			return false
		}
	}
	return true
}

// migrateOff moves one block off its (draining) node to a placer-chosen
// target, returning the payload bytes moved (0 when the move was
// skipped or failed; the next pass retries). The read is paced by the
// rebalance limiter and CRC-verified — a corrupt replica is never
// propagated, it is left for the scrubber to find and repair.
func (rb *Rebalancer) migrateOff(ref stripeRef, pos int) int64 {
	s := rb.s
	si, ok := s.stripeSnapshot(ref)
	if !ok {
		return 0 // object deleted or overwritten since collection
	}
	src := si.Nodes[pos]
	if src < 0 || !s.Alive(src) || s.MemberState(src) != NodeDraining {
		return 0 // moved, died or re-planned under us
	}
	aliveNow := s.aliveSnapshot()
	cur := append([]int(nil), si.Nodes...)
	for q, nd := range cur {
		if nd < 0 || nd >= len(aliveNow) || !aliveNow[nd] {
			cur[q] = -1
		}
	}
	cur[pos] = -1
	target := s.placer.pickReplacement(si.Seq, pos, cur, s.placeableSnapshot())
	if target < 0 || target == src {
		return 0 // nowhere to go; Remaining reports it
	}
	return rb.migrateTo(ref, pos, src, target)
}

// migrateTo copies one block from src to target, splices the manifest,
// and deletes the source replica — the atomic unit of rebalance. The
// block key carries no node component, so the copy lands under the same
// key on the target node; manifest relocation is the commit point, and
// a relocation loss (object deleted or overwritten mid-copy) deletes
// the target copy so nothing orphans.
func (rb *Rebalancer) migrateTo(ref stripeRef, pos, src, target int) int64 {
	s := rb.s
	si, ok := s.stripeSnapshot(ref)
	if !ok || si.Nodes[pos] != src {
		return 0
	}
	key := si.Keys[pos]
	frame, err := rb.readFrame(src, key)
	if err != nil {
		return 0
	}
	s.m.rebalanceBlocksRead.Add(1)
	s.m.rebalanceBytesRead.Add(int64(len(frame)))
	s.rebalLim.take(int64(len(frame)))
	payload, err := UnframeBlock(frame)
	if err != nil || len(payload) != si.BlockLen {
		return 0 // corrupt replica: scrub's job, not rebalance's
	}
	if err := rb.writeFrame(target, key, frame); err != nil {
		return 0
	}
	if !s.relocateBlock(ref, pos, target, key) {
		// Deleted or overwritten while we copied: remove the copy we
		// just wrote or it leaks as an orphan.
		_ = s.cfg.Backend.Delete(target, key)
		return 0
	}
	_ = s.cfg.Backend.Delete(src, key)
	s.m.rebalancedBlocks.Add(1)
	s.m.rebalancedBytes.Add(int64(len(payload)))
	return int64(len(payload))
}

// readFrame fetches one framed block, streaming through the backend's
// BlockStreamer when it has one (blocks bigger than a wire frame) and
// falling back to a whole-frame Read.
func (rb *Rebalancer) readFrame(node int, key string) ([]byte, error) {
	if bs, ok := rb.s.cfg.Backend.(BlockStreamer); ok {
		var buf bytes.Buffer
		_, err := bs.ReadBlockTo(node, key, &buf)
		if err == nil {
			return buf.Bytes(), nil
		}
		if !errors.Is(err, errors.ErrUnsupported) {
			return nil, err
		}
	}
	return rb.s.cfg.Backend.Read(node, key)
}

// writeFrame stores one framed block, streaming when the backend can.
// The frame may alias backend storage (Read's contract), so the
// fallback uses the copying Write, never WriteOwned.
func (rb *Rebalancer) writeFrame(node int, key string, frame []byte) error {
	if bs, ok := rb.s.cfg.Backend.(BlockStreamer); ok {
		_, err := bs.WriteBlockFrom(node, key, bytes.NewReader(frame))
		if err == nil || !errors.Is(err, errors.ErrUnsupported) {
			return err
		}
	}
	return rb.s.cfg.Backend.Write(node, key, frame)
}

// MembershipStatus is the observability view of elastic membership —
// what the gateway's /healthz and xorbasctl node status report.
type MembershipStatus struct {
	Epoch int64 `json:"epoch"`
	// Per-state member counts.
	Active, Joining, Draining, Dead int
	// DrainingBlocks counts manifest blocks still referencing draining
	// nodes — the work left before those drains complete. Zero when no
	// node is draining (the manifest walk is skipped).
	DrainingBlocks int
	// Cumulative migration counters (same values as Metrics).
	RebalancedBlocks, RebalancedBytes int64
}

// MembershipStatus snapshots the planned topology and drain progress.
func (s *Store) MembershipStatus() MembershipStatus {
	st := MembershipStatus{
		Epoch:            s.epoch.Load(),
		RebalancedBlocks: s.m.rebalancedBlocks.Load(),
		RebalancedBytes:  s.m.rebalancedBytes.Load(),
	}
	states := s.memberStates()
	for _, state := range states {
		switch state {
		case NodeActive:
			st.Active++
		case NodeJoining:
			st.Joining++
		case NodeDraining:
			st.Draining++
		case NodeDead:
			st.Dead++
		}
	}
	if st.Draining > 0 {
		counts := s.BlocksPerNode()
		for i, state := range states {
			if state == NodeDraining && i < len(counts) {
				st.DrainingBlocks += counts[i]
			}
		}
	}
	return st
}
