package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// scrubAndDrain runs one synchronous scrub pass and waits for the repair
// pool to finish everything it queued.
func scrubAndDrain(t *testing.T, s *Store, rm *RepairManager) ScrubReport {
	t.Helper()
	sc := NewScrubber(s, rm, time.Hour)
	rep := sc.ScrubOnce()
	rm.Drain()
	return rep
}

func TestScrubRepairsDeletedBlock(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	rng := rand.New(rand.NewSource(20))
	want := randBytes(rng, 128*10)
	if err := s.Put("x", want); err != nil {
		t.Fatal(err)
	}
	node, key, err := s.BlockLocation("x", 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Backend().(*MemBackend).Delete(node, key); err != nil {
		t.Fatal(err)
	}
	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	rep := scrubAndDrain(t, s, rm)
	if rep.Missing != 1 || rep.Enqueued != 1 {
		t.Fatalf("scrub report %+v, want 1 missing / 1 enqueued", rep)
	}
	m := s.Metrics()
	if m.RepairedBlocks != 1 || m.RepairsLight != 1 || m.RepairsHeavy != 0 {
		t.Fatalf("repair metrics %+v, want one light repair", m)
	}
	// The light repair read exactly the r=5 group blocks.
	if m.RepairBlocksRead != 5 {
		t.Fatalf("repair read %d blocks, want 5 (light path)", m.RepairBlocksRead)
	}
	got, info, err := s.Get("x")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-repair Get: err %v", err)
	}
	if info.Degraded {
		t.Fatal("post-repair Get still degraded")
	}
	if rep := scrubAndDrain(t, s, rm); rep.Missing+rep.Corrupt != 0 {
		t.Fatalf("second scrub still finds damage: %+v", rep)
	}
}

func TestScrubRepairsCRCCorruption(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	rng := rand.New(rand.NewSource(21))
	want := randBytes(rng, 128*10)
	if err := s.Put("c", want); err != nil {
		t.Fatal(err)
	}
	node, key, err := s.BlockLocation("c", 0, 12) // a global parity
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Backend().(*MemBackend).Corrupt(node, key); err != nil {
		t.Fatal(err)
	}
	rm := NewRepairManager(s, 1)
	rm.Start()
	defer rm.Stop()
	rep := scrubAndDrain(t, s, rm)
	if rep.Corrupt != 1 {
		t.Fatalf("scrub report %+v, want 1 corrupt", rep)
	}
	if m := s.Metrics(); m.RepairedBlocks != 1 {
		t.Fatalf("repaired %d blocks, want 1", m.RepairedBlocks)
	}
	if rep := scrubAndDrain(t, s, rm); rep.Missing+rep.Corrupt != 0 {
		t.Fatalf("second scrub still finds damage: %+v", rep)
	}
}

func TestScrubCatchesSilentCorruption(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	rng := rand.New(rand.NewSource(22))
	want := randBytes(rng, 128*10)
	if err := s.Put("sil", want); err != nil {
		t.Fatal(err)
	}
	// Rewrite block 5 with a *valid* CRC over garbage: only the group
	// syndrome (GroupSyndrome via LocateCorruption) can catch this.
	node, key, err := s.BlockLocation("sil", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	evil := randBytes(rng, 128)
	if err := s.Backend().Write(node, key, FrameBlock(evil)); err != nil {
		t.Fatal(err)
	}
	rm := NewRepairManager(s, 1)
	rm.Start()
	defer rm.Stop()
	rep := scrubAndDrain(t, s, rm)
	if rep.Corrupt != 1 {
		t.Fatalf("scrub report %+v, want 1 silent corrupt", rep)
	}
	got, _, err := s.Get("sil")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-repair Get: err %v", err)
	}
	if rep := scrubAndDrain(t, s, rm); rep.Missing+rep.Corrupt != 0 {
		t.Fatalf("second scrub still finds damage: %+v", rep)
	}
}

func TestNodeDeathRepairRelocates(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 24, Racks: 8, BlockSize: 64})
	rng := rand.New(rand.NewSource(23))
	objs := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("o%d", i)
		objs[name] = randBytes(rng, 64*10+rng.Intn(2000))
		if err := s.Put(name, objs[name]); err != nil {
			t.Fatal(err)
		}
	}
	victim := 0
	s.KillNode(victim)
	rm := NewRepairManager(s, 3)
	rm.Start()
	defer rm.Stop()
	scrubAndDrain(t, s, rm)
	// Every manifest entry now points at a live node, and reads are clean.
	for name, want := range objs {
		got, info, err := s.Get(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: post-repair Get: err %v", name, err)
		}
		if info.Degraded {
			t.Fatalf("%s: still degraded after repair", name)
		}
	}
	for _, st := range s.Objects() {
		for si := 0; si < st.Stripes; si++ {
			for pos := 0; ; pos++ {
				node, _, err := s.BlockLocation(st.Name, si, pos)
				if err != nil {
					break
				}
				if node == victim {
					t.Fatalf("%s stripe %d pos %d still on dead node", st.Name, si, pos)
				}
			}
		}
	}
}

// TestRepairBytesLRCvsRS is the acceptance criterion on the real datapath:
// repairing one lost block costs LRC(10,6,5) strictly fewer bytes read
// than RS(10,4) — 5 blocks against 10.
func TestRepairBytesLRCvsRS(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	payload := randBytes(rng, 256*10) // one full stripe either way
	repairBytes := func(codec Codec) int64 {
		s := newTestStore(t, Config{Codec: codec, BlockSize: 256})
		if err := s.Put("x", payload); err != nil {
			t.Fatal(err)
		}
		node, key, err := s.BlockLocation("x", 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Backend().(*MemBackend).Delete(node, key); err != nil {
			t.Fatal(err)
		}
		rm := NewRepairManager(s, 1)
		rm.Start()
		defer rm.Stop()
		scrubAndDrain(t, s, rm)
		m := s.Metrics()
		if m.RepairedBlocks != 1 {
			t.Fatalf("%s: repaired %d blocks, want 1", codec.Name(), m.RepairedBlocks)
		}
		return m.RepairBytesRead
	}
	lrcBytes := repairBytes(NewXorbasCodec())
	rsBytes := repairBytes(NewRS104Codec())
	if lrcBytes >= rsBytes {
		t.Fatalf("LRC repair read %d bytes, RS %d: locality win missing", lrcBytes, rsBytes)
	}
	if lrcBytes*2 != rsBytes {
		t.Fatalf("LRC repair read %d bytes vs RS %d, want exactly half (5 vs 10 blocks)", lrcBytes, rsBytes)
	}
}

// TestConcurrentStore exercises the whole subsystem under the race
// detector: writers, readers, a node killer and the background scrubber +
// repair pool all running against one store.
func TestConcurrentStore(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 24, Racks: 8, BlockSize: 64})
	rm := NewRepairManager(s, 3)
	rm.Start()
	sc := NewScrubber(s, rm, 5*time.Millisecond)
	sc.Start()

	const writers = 4
	var wg sync.WaitGroup
	finals := make([][]byte, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			name := fmt.Sprintf("w%d", w)
			var last []byte
			for i := 0; i < 25; i++ {
				last = randBytes(rng, 1+rng.Intn(3000))
				if err := s.Put(name, last); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if got, _, err := s.Get(name); err != nil {
					t.Errorf("writer %d: Get: %v", w, err)
					return
				} else if !bytes.Equal(got, last) {
					t.Errorf("writer %d: read back mismatch", w)
					return
				}
			}
			finals[w] = last
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for i := 0; i < 30; i++ {
			n := rng.Intn(s.Nodes())
			s.KillNode(n)
			time.Sleep(time.Millisecond)
			s.ReviveNode(n)
		}
	}()
	wg.Wait()
	sc.Stop()
	scrubAndDrain(t, s, rm)
	rm.Stop()
	for w := 0; w < writers; w++ {
		if finals[w] == nil {
			continue // writer failed; already reported
		}
		got, _, err := s.Get(fmt.Sprintf("w%d", w))
		if err != nil || !bytes.Equal(got, finals[w]) {
			t.Fatalf("final Get w%d: err %v", w, err)
		}
	}
}

// TestGetDuringRepairRace hammers Get (and same-content overwrites)
// while node kills force the repair pool to relocate blocks: Get must
// snapshot manifests under the lock, and a repair racing an overwrite
// must not splice old-generation keys into the new manifest.
func TestGetDuringRepairRace(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 24, Racks: 8, BlockSize: 64})
	rng := rand.New(rand.NewSource(30))
	want := randBytes(rng, 64*10*3)
	if err := s.Put("hot", want); err != nil {
		t.Fatal(err)
	}
	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := NewScrubber(s, rm, time.Hour)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := s.Get("hot")
				if err != nil {
					t.Errorf("Get under repair: %v", err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Error("Get under repair returned wrong bytes")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // overwrites with identical content exercise the gen check
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Put("hot", want); err != nil {
				t.Errorf("overwrite under repair: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	kills := rand.New(rand.NewSource(31))
	for i := 0; i < 15; i++ {
		n := kills.Intn(s.Nodes())
		s.KillNode(n)
		sc.ScrubOnce()
		rm.Drain()
		s.ReviveNode(n)
	}
	close(stop)
	wg.Wait()
}

func TestScrubberBackgroundLoop(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 64})
	rng := rand.New(rand.NewSource(25))
	want := randBytes(rng, 64*10)
	if err := s.Put("bg", want); err != nil {
		t.Fatal(err)
	}
	node, key, err := s.BlockLocation("bg", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Backend().(*MemBackend).Delete(node, key); err != nil {
		t.Fatal(err)
	}
	rm := NewRepairManager(s, 1)
	rm.Start()
	defer rm.Stop()
	sc := NewScrubber(s, rm, 2*time.Millisecond)
	sc.Start()
	defer sc.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().RepairedBlocks >= 1 {
			got, info, err := s.Get("bg")
			if err != nil || !bytes.Equal(got, want) || info.Degraded {
				t.Fatalf("post-background-repair Get: err %v info %+v", err, info)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background scrubber never repaired the block")
}
