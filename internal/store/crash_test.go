package store

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The kill -9 test: a child process puts objects into a MetaDir-backed
// store and records each ack; the parent SIGKILLs it mid-stream and then
// reopens the same directories. The store's two durability promises are
// checked against the wreckage:
//
//  1. Every acked put survives, byte-exact — ack-means-durable (the
//     manifest was fsynced to the WAL before Put returned, the blocks
//     before the manifest committed).
//  2. Every object the recovered store lists is fully readable — the
//     commit is atomic, so a put the kill interrupted is either absent
//     or complete, never torn.

// crashChildEnv carries the working directory to the re-executed test
// binary; its presence is what turns TestCrashChild from a skip into the
// child's body.
const crashChildEnv = "STORE_CRASH_CHILD_DIR"

// crashObjBytes derives an object's content from its name, so the parent
// can verify bytes the child generated without any channel between them.
func crashObjBytes(name string) []byte {
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	// 2 full stripes plus a partial third at BlockSize 256, K=10.
	return randBytes(rng, 256*10*2+137)
}

// TestCrashChild is the subprocess body, not a test: without the env
// marker it skips immediately. With it, it puts objects forever —
// appending each name to the acked file only after Put returns — until
// the parent kills it.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("helper for TestKillNinePreservesAckedPuts")
	}
	be, err := NewDirBackend(filepath.Join(dir, "blocks"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: be, BlockSize: 256, MetaDir: filepath.Join(dir, "meta")})
	if err != nil {
		t.Fatal(err)
	}
	acked, err := os.OpenFile(filepath.Join(dir, "acked"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("obj-%05d", i)
		if err := s.Put(name, crashObjBytes(name)); err != nil {
			t.Fatalf("Put(%q): %v", name, err)
		}
		// The ack record itself is fsynced so the parent's expectation
		// list can't outrun what it verifies against.
		if _, err := fmt.Fprintln(acked, name); err != nil {
			t.Fatal(err)
		}
		if err := acked.Sync(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillNinePreservesAckedPuts is the parent: spawn, wait for acks,
// SIGKILL, recover, verify.
func TestKillNinePreservesAckedPuts(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	ackPath := filepath.Join(dir, "acked")

	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child ack a handful of puts, then kill it with no warning
	// at whatever point of its put loop it happens to be in.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(ackPath); err == nil && bytes.Count(b, []byte("\n")) >= 5 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("child acked fewer than 5 puts in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // exit status is the signal; ignore

	ackBytes, err := os.ReadFile(ackPath)
	if err != nil {
		t.Fatal(err)
	}
	var ackedNames []string
	for _, line := range strings.Split(string(ackBytes), "\n") {
		if line != "" {
			ackedNames = append(ackedNames, line)
		}
	}

	be, err := NewDirBackend(filepath.Join(dir, "blocks"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: be, BlockSize: 256, MetaDir: filepath.Join(dir, "meta")})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer s.Close()
	objects, replayed := s.MetaRecovered()
	t.Logf("killed after %d acks; recovered %d objects from %d replayed WAL records",
		len(ackedNames), objects, replayed)

	// Promise 1: every acked object is there, byte-exact.
	for _, name := range ackedNames {
		got, _, err := s.Get(name)
		if err != nil {
			t.Fatalf("acked object %q lost by the crash: %v", name, err)
		}
		if !bytes.Equal(got, crashObjBytes(name)) {
			t.Fatalf("acked object %q corrupted by the crash", name)
		}
	}
	// Promise 2: nothing the store lists is torn. The store may hold one
	// object past the acked list (Put returned, kill landed before the
	// ack line) — that object too must be complete, or absent entirely.
	if objects < len(ackedNames) || objects > len(ackedNames)+1 {
		t.Fatalf("recovered %d objects with %d acked (at most one in-flight put may surface)",
			objects, len(ackedNames))
	}
	for _, st := range s.Objects() {
		got, _, err := s.Get(st.Name)
		if err != nil {
			t.Fatalf("recovered store lists %q but cannot read it: %v", st.Name, err)
		}
		if !bytes.Equal(got, crashObjBytes(st.Name)) {
			t.Fatalf("recovered object %q is torn", st.Name)
		}
	}
}
