package store

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hedged stripe reads: the tail-tolerance move from Dean & Barroso's
// "The Tail at Scale", with erasure reconstruction as the backup
// request. A stripe fetch fans out one read per data block; when the
// stragglers sit past a configured quantile of recent block-read
// latency, the store stops waiting and races the degraded path —
// reconstruct the outstanding positions from the blocks already in hand
// plus parity — against the stragglers. Whichever completes the stripe
// first wins; the loser's bytes are still accounted, never double-used.

// blockLatHist is a log2-bucketed histogram of block-read latencies in
// microseconds, lock-free for the hot path (same shape as the gateway's
// verb histograms). Bucket i holds latencies in [2^(i-1), 2^i) µs.
type blockLatHist struct {
	buckets [40]atomic.Int64
	count   atomic.Int64
}

func (h *blockLatHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
}

// quantile returns the upper edge of the bucket holding the q-quantile
// observation — an overestimate by at most 2×, which is the right bias
// for a hedge trigger (fire late rather than storm the backend).
func (h *blockLatHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(len(h.buckets)-1)) * time.Microsecond
}

// hedgeDelay returns how long a stripe fetch waits on stragglers before
// firing the reconstruction race, or 0 when hedging is disabled.
func (s *Store) hedgeDelay() time.Duration {
	q := s.cfg.HedgeQuantile
	if q <= 0 || q >= 1 {
		return 0
	}
	d := s.readLat.quantile(q)
	if d < s.cfg.HedgeMinDelay {
		d = s.cfg.HedgeMinDelay
	}
	return d
}

// hedgeRead is one position's fetch outcome.
type hedgeRead struct {
	pos     int
	payload []byte
	acct    readAcct
	err     error
}

// fetchPositionsHedged is fetchPositions' hedging variant: every wanted
// position fetches concurrently; results arriving within the hedge
// delay land in scratch as usual, and if stragglers remain past the
// deadline the reconstruction race fires. The racing reconstruction
// works on its own stripe slice and avail copy (payloads already in
// hand — cache hits included — are shared read-only), so the straggler
// goroutines and the decode never touch the same memory. A losing path
// keeps running in the background until its reads resolve; its
// accounting merges into the store counters so no byte goes uncounted.
func (s *Store) fetchPositionsHedged(si *stripeInfo, scratch [][]byte, want []int, avail []bool, res *fetchResult, delay time.Duration) {
	n := s.cfg.Codec.NStored()
	results := make(chan hedgeRead, len(want)) // buffered: stragglers never block after abandonment
	for _, pos := range want {
		go func(pos int) {
			var r hedgeRead
			r.pos = pos
			r.payload, r.err = s.readBlockPayload(si, pos, &r.acct, nil)
			results <- r
		}(pos)
	}

	var missing []int
	outstanding := len(want)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	fired := false
collect:
	for outstanding > 0 {
		select {
		case r := <-results:
			outstanding--
			res.acct.add(&r.acct)
			if r.err != nil {
				avail[r.pos] = false
				missing = append(missing, r.pos)
				continue
			}
			scratch[r.pos] = r.payload
		case <-timer.C:
			fired = true
			break collect
		}
	}
	if !fired {
		// Everyone answered (or failed) in time: the plain degraded path.
		if len(missing) > 0 {
			res.acct.degraded = true
			if err := s.reconstructPositions(si, scratch, missing, avail, &res.acct, nil); err != nil {
				res.err = err
			}
		}
		return
	}

	// Stragglers outstanding past the deadline: fire the hedge.
	s.m.hedgeFires.Add(1)
	straggling := make(map[int]bool, outstanding)
	for _, pos := range want {
		if scratch[pos] == nil && !contains(missing, pos) {
			straggling[pos] = true
		}
	}
	// The reconstruction race: targets are the stragglers plus whatever
	// already failed outright. It runs on copies — reconAvail marks the
	// stragglers dead so PlanReads routes around them, reconStripe
	// shares only the read-only payloads already in hand.
	targets := append([]int(nil), missing...)
	for pos := range straggling {
		targets = append(targets, pos)
	}
	reconStripe := make([][]byte, n)
	copy(reconStripe, scratch)
	reconAvail := append([]bool(nil), avail...)
	for pos := range straggling {
		reconAvail[pos] = false
	}
	type reconResult struct {
		stripe [][]byte
		acct   readAcct
		err    error
	}
	reconCh := make(chan reconResult, 1)
	go func() {
		var r reconResult
		r.stripe = reconStripe
		r.err = s.reconstructPositions(si, reconStripe, targets, reconAvail, &r.acct, nil)
		reconCh <- r
	}()

	// Race the stragglers against the decode. Whichever completes the
	// stripe first wins; the loser drains in the background, merging its
	// accounting into the store-wide counters.
	res.acct.degraded = true
	for {
		select {
		case r := <-results:
			outstanding--
			res.acct.add(&r.acct)
			if r.err != nil {
				avail[r.pos] = false
				missing = append(missing, r.pos)
				delete(straggling, r.pos)
			} else {
				scratch[r.pos] = r.payload
				delete(straggling, r.pos)
			}
			if outstanding > 0 {
				continue
			}
			// All stragglers resolved before the decode: discard the race
			// (it keeps running; its reads are merged when it finishes)
			// and repair any genuine failures in place.
			go func() {
				r := <-reconCh
				s.m.mergeRead(&r.acct)
			}()
			if len(missing) > 0 {
				if err := s.reconstructPositions(si, scratch, missing, avail, &res.acct, nil); err != nil {
					res.err = err
				}
			}
			return
		case r := <-reconCh:
			if r.err != nil {
				// The decode lost its own sources; the stragglers are now
				// the only hope, so go back to waiting on them.
				res.acct.add(&r.acct)
				for outstanding > 0 {
					sr := <-results
					outstanding--
					res.acct.add(&sr.acct)
					if sr.err != nil {
						avail[sr.pos] = false
						missing = append(missing, sr.pos)
						delete(straggling, sr.pos)
						continue
					}
					scratch[sr.pos] = sr.payload
					delete(straggling, sr.pos)
				}
				if len(missing) > 0 {
					if err := s.reconstructPositions(si, scratch, missing, avail, &res.acct, nil); err != nil {
						res.err = err
					}
				}
				return
			}
			// Reconstruction beat the stragglers: take its payloads for
			// every position still outstanding or failed, and abandon the
			// straggler reads (they drain into the buffered channel; a
			// background goroutine folds their cost into the counters).
			s.m.hedgeWins.Add(1)
			res.acct.add(&r.acct)
			for _, pos := range targets {
				if scratch[pos] == nil && r.stripe[pos] != nil {
					scratch[pos] = r.stripe[pos]
				}
			}
			if outstanding > 0 {
				go func(left int) {
					var a readAcct
					for i := 0; i < left; i++ {
						sr := <-results
						a.add(&sr.acct)
					}
					s.m.mergeRead(&a)
				}(outstanding)
			}
			return
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
