package store

import (
	"sync"
	"sync/atomic"
)

// The hot-block cache: a buffer-pool-style, byte-budgeted LRU over
// fetched data-block payloads, so a hot object under heavy read traffic
// costs one backend read instead of one per reader. The design follows
// classic database buffer management — pin/unpin reference counts keep
// an entry resident while a stripe decode is using it as a source, and
// eviction walks the LRU tail skipping pinned frames.
//
// Keying: entries are keyed by the backend block key, which already
// embeds (object name, put generation, stripe index, block position)
// and is never reused — see blockKey. A new generation therefore never
// collides with a cached old one, and staleness is purely a residency
// question: retire/delete and repair/rebalance relocation call
// invalidate so a dropped version or a rewritten block stops serving
// hits immediately (pinned readers of the old version keep their
// payload slices — memory is reclaimed by GC at the last unpin).
//
// The cache is sharded by key hash; each shard has its own lock, table,
// intrusive LRU list and slice of the byte budget, so concurrent
// streaming reads on different objects never serialize on one mutex.

// cacheShards is the shard count (power of two, so the hash maps with a
// mask). 16 shards keep lock hold times negligible at the read pool's
// default concurrency.
const cacheShards = 16

// cacheEntry is one resident block payload. pins and the list links are
// guarded by the owning shard's mutex; key and payload are immutable.
type cacheEntry struct {
	key     string
	payload []byte
	shard   *cacheShard
	pins    int
	// LRU list links; head side is most recently used.
	prev, next *cacheEntry
}

// cacheShard is one lock's worth of the cache: a key table, an LRU list
// threaded through the entries (root is the sentinel), and this shard's
// slice of the byte budget.
type cacheShard struct {
	mu     sync.Mutex
	table  map[string]*cacheEntry
	root   cacheEntry
	bytes  int64
	budget int64
}

// blockCache is the store-wide cache. Counters are atomics so Metrics
// never takes the shard locks.
type blockCache struct {
	shards        [cacheShards]cacheShard
	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	bytes         atomic.Int64 // resident payload bytes across all shards
}

func newBlockCache(budget int64) *blockCache {
	c := &blockCache{}
	per := budget / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.table = make(map[string]*cacheEntry)
		sh.budget = per
		sh.root.next = &sh.root
		sh.root.prev = &sh.root
	}
	return c
}

// shardFor hashes a block key (FNV-1a) onto its shard.
func (c *blockCache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&(cacheShards-1)]
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = &sh.root
	e.next = sh.root.next
	e.prev.next = e
	e.next.prev = e
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// drop removes an entry from the table, the LRU list and the byte
// accounting. A pinned reader keeps its payload slice — dropping only
// ends the entry's cache residency, it never frees memory out from
// under a decode.
func (sh *cacheShard) drop(c *blockCache, e *cacheEntry) {
	sh.unlink(e)
	delete(sh.table, e.key)
	sh.bytes -= int64(len(e.payload))
	c.bytes.Add(-int64(len(e.payload)))
}

// get returns the cached payload for key with the entry pinned, or
// (nil, nil) on a miss. The caller owes exactly one unpin per non-nil
// handle, once the stripe decode that uses the payload has drained.
func (c *blockCache) get(key string) ([]byte, *cacheEntry) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e := sh.table[key]
	if e == nil {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, nil
	}
	sh.unlink(e)
	sh.pushFront(e)
	e.pins++
	sh.mu.Unlock()
	c.hits.Add(1)
	return e.payload, e
}

// unpin releases one reader of a pinned entry.
func (c *blockCache) unpin(e *cacheEntry) {
	sh := e.shard
	sh.mu.Lock()
	e.pins--
	sh.mu.Unlock()
}

// add inserts (or refreshes) a payload at MRU, then evicts LRU-first
// back down to the shard budget, skipping pinned entries — if every
// resident entry is pinned the shard runs over budget rather than yank
// a frame out of an in-flight decode. Payloads larger than a whole
// shard budget are not cached (admitting one would just flush the
// shard for a single entry that can never stay).
func (c *blockCache) add(key string, payload []byte) {
	sh := c.shardFor(key)
	if int64(len(payload)) > sh.budget {
		return
	}
	sh.mu.Lock()
	if old := sh.table[key]; old != nil {
		sh.drop(c, old)
	}
	e := &cacheEntry{key: key, payload: payload, shard: sh}
	sh.table[key] = e
	sh.pushFront(e)
	sh.bytes += int64(len(payload))
	c.bytes.Add(int64(len(payload)))
	for sh.bytes > sh.budget {
		victim := sh.root.prev
		for victim != &sh.root && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == &sh.root {
			break
		}
		sh.drop(c, victim)
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
}

// invalidate drops key if resident — the staleness hook. Version
// retire/delete and the repair/rebalance relocation commit route here,
// so a reclaimed generation or a rewritten block can never serve
// another hit.
func (c *blockCache) invalidate(key string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e := sh.table[key]; e != nil {
		sh.drop(c, e)
		c.invalidations.Add(1)
	}
	sh.mu.Unlock()
}

// invalidateObject drops every cached block of one object version —
// the retire/delete path. Only data positions are ever inserted, but
// sweeping all keys is cheap and keeps this correct if that policy
// changes.
func (c *blockCache) invalidateObject(obj *objectInfo) {
	for i := range obj.Stripes {
		for _, key := range obj.Stripes[i].Keys {
			c.invalidate(key)
		}
	}
}
