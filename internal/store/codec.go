// Package store is a byte-level striped object store layered on the
// paper's codecs: the real datapath counterpart to the fluid simulation in
// repro/internal/cluster. Objects are chunked into k-block stripes,
// erasure-coded, checksummed and spread over simulated nodes under
// rack-aware placement; reads survive node loss and silent corruption by
// reconstructing blocks inline (degraded reads, §1.1), and a background
// scrubber plus a prioritized repair queue play the role of the HDFS-Xorbas
// BlockFixer (§3). Every read is accounted in blocks and bytes so the
// paper's locality win — light repairs reading r=5 blocks where RS reads
// k=10 (Figs 4–6) — is observable on real traffic.
package store

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/lrc"
	"repro/internal/rs"
)

// Codec is the stripe-level erasure code the store runs on. The two
// implementations wrap the paper's codes: LRC(10,6,5) via repro/internal/lrc
// and the RS(10,4) baseline via repro/internal/rs.
type Codec interface {
	// Name identifies the codec in reports and snapshots.
	Name() string
	// K is the number of data blocks per stripe.
	K() int
	// NStored is the number of stored blocks per stripe.
	NStored() int
	// Encode computes the full stored stripe from K equal-length data
	// blocks. workers parallelizes parity computation; ≤1 is serial.
	Encode(data [][]byte, workers int) ([][]byte, error)
	// EncodeInto computes the NStored−K parity payloads directly into the
	// caller's buffers, overwriting any stale contents — the streaming
	// put path, which encodes parities straight into reusable framed
	// block buffers with no per-stripe allocation. parity[j] is stored
	// block K+j and must have the data blocks' length.
	EncodeInto(data, parity [][]byte, workers int) error
	// PlanReads returns the stripe positions to fetch so block i can be
	// rebuilt, given avail[j] marking positions believed readable, and
	// whether the light (local) decoder suffices. Positions already held
	// by the caller are included in the read set; the caller decides what
	// it still needs to fetch. The returned slice may be shared with the
	// codec's plan cache (steady-state repair of a dead node re-plans the
	// same erasure pattern for thousands of stripes): callers must treat
	// it as read-only.
	PlanReads(i int, avail []bool) (reads []int, light bool, err error)
	// ReconstructBlock rebuilds block i from the non-nil stripe entries,
	// reporting whether the light decoder sufficed. The stripe is not
	// modified.
	ReconstructBlock(stripe [][]byte, i int) (payload []byte, light bool, err error)
	// ReconstructMany rebuilds every requested position from the non-nil
	// stripe entries in one batched decode pass, without modifying the
	// stripe. payloads is aligned with positions (a nil entry could not
	// be rebuilt) and light[i] reports whether the light decoder rebuilt
	// payloads[i]. err is non-nil when any position failed; rebuildable
	// payloads are still returned (the partial progress a repair worker
	// persists on an unrecoverable stripe).
	ReconstructMany(stripe [][]byte, positions []int) (payloads [][]byte, light []bool, err error)
	// ReconstructManyInto is ReconstructMany decoding into the caller's
	// buffers: dst is aligned with positions, each entry sized to the
	// stripe's block length, stale contents overwritten and never read.
	// filled[i] reports whether dst[i] now holds the rebuilt payload —
	// the repair engine's zero-allocation path, decoding straight into
	// reusable framed block slabs. dst entries must not alias each other
	// or the stripe.
	ReconstructManyInto(stripe [][]byte, positions []int, dst [][]byte) (filled, light []bool, err error)
	// RepairGroups returns the repair groups for placement: no two members
	// of one group should share a rack, so a rack loss costs each group at
	// most one block. nil means the codec has no local structure.
	RepairGroups() [][]int
	// Verify reports whether a full stripe (all entries non-nil) is
	// self-consistent.
	Verify(stripe [][]byte) (bool, error)
	// LocateCorruption pins silently corrupted blocks in a full stripe.
	LocateCorruption(stripe [][]byte) ([]int, error)
}

// planKey identifies one cached repair plan: the lost position plus the
// availability pattern it was planned against.
type planKey struct {
	pos  int
	mask uint64
}

// planEntry is one cached PlanReads result. reads is shared with every
// caller (the Codec contract makes plan read sets read-only).
type planEntry struct {
	reads []int
	light bool
}

// planCache memoizes successful repair plans per (position,
// availability-mask) bitset: repairing a dead node presents the same
// erasure pattern across thousands of stripes, and the rank elimination
// behind each plan is pure overhead after the first solve. Stripes wider
// than 64 blocks bypass the cache (every paper code fits). Unrecoverable
// patterns are not cached — they are rare and re-solving keeps error
// paths simple.
type planCache struct {
	mu sync.RWMutex
	m  map[planKey]planEntry
}

// availMask packs an availability vector into a bitset, ok=false when the
// stripe is too wide to cache.
func availMask(avail []bool) (uint64, bool) {
	if len(avail) > 64 {
		return 0, false
	}
	var m uint64
	for i, a := range avail {
		if a {
			m |= 1 << uint(i)
		}
	}
	return m, true
}

func (pc *planCache) get(pos int, avail []bool) ([]int, bool, bool) {
	mask, ok := availMask(avail)
	if !ok {
		return nil, false, false
	}
	pc.mu.RLock()
	e, hit := pc.m[planKey{pos, mask}]
	pc.mu.RUnlock()
	return e.reads, e.light, hit
}

func (pc *planCache) put(pos int, avail []bool, reads []int, light bool) {
	mask, ok := availMask(avail)
	if !ok {
		return
	}
	pc.mu.Lock()
	if pc.m == nil {
		pc.m = make(map[planKey]planEntry)
	}
	pc.m[planKey{pos, mask}] = planEntry{reads: reads, light: light}
	pc.mu.Unlock()
}

// LRCCodec adapts *lrc.Code to the store. The zero value is unusable; use
// NewLRCCodec or NewXorbasCodec.
type LRCCodec struct {
	c      *lrc.Code
	groups [][]int
	name   string
	exists []bool // all-true mask, built once for the planner
	plans  planCache
}

// NewLRCCodec wraps an LRC.
func NewLRCCodec(c *lrc.Code) *LRCCodec {
	var groups [][]int
	for _, g := range c.Groups() {
		groups = append(groups, g.Members)
	}
	exists := make([]bool, c.NStored())
	for j := range exists {
		exists[j] = true
	}
	p := c.Params()
	return &LRCCodec{
		c:      c,
		groups: groups,
		exists: exists,
		name:   fmt.Sprintf("LRC(%d,%d,%d)", p.K, c.NStored()-p.K, p.GroupSize),
	}
}

// NewXorbasCodec wraps the paper's (10,6,5) code.
func NewXorbasCodec() *LRCCodec { return NewLRCCodec(lrc.NewXorbas()) }

// Name implements Codec.
func (l *LRCCodec) Name() string { return l.name }

// K implements Codec.
func (l *LRCCodec) K() int { return l.c.K() }

// NStored implements Codec.
func (l *LRCCodec) NStored() int { return l.c.NStored() }

// Encode implements Codec.
func (l *LRCCodec) Encode(data [][]byte, workers int) ([][]byte, error) {
	if workers > 1 {
		return l.c.EncodeParallel(data, workers)
	}
	return l.c.Encode(data)
}

// EncodeInto implements Codec.
func (l *LRCCodec) EncodeInto(data, parity [][]byte, workers int) error {
	if workers > 1 {
		return l.c.EncodeIntoParallel(data, parity, workers)
	}
	return l.c.EncodeInto(data, parity)
}

// PlanReads implements Codec via the code's repair planner (minimal read
// policy — the store is the "more efficient implementation" of §3.1.2),
// memoized per (position, availability-mask).
func (l *LRCCodec) PlanReads(i int, avail []bool) ([]int, bool, error) {
	if reads, light, ok := l.plans.get(i, avail); ok {
		return reads, light, nil
	}
	plan, err := l.c.PlanRepair(i, l.exists, avail, false)
	if err != nil {
		return nil, false, err
	}
	l.plans.put(i, avail, plan.Reads, plan.Light)
	return plan.Reads, plan.Light, nil
}

// ReconstructBlock implements Codec.
func (l *LRCCodec) ReconstructBlock(stripe [][]byte, i int) ([]byte, bool, error) {
	return l.c.ReconstructBlock(stripe, i)
}

// ReconstructMany implements Codec: one light pass plus at most one
// shared heavy solve for all requested positions.
func (l *LRCCodec) ReconstructMany(stripe [][]byte, positions []int) ([][]byte, []bool, error) {
	return l.c.ReconstructMany(stripe, positions)
}

// ReconstructManyInto implements Codec.
func (l *LRCCodec) ReconstructManyInto(stripe [][]byte, positions []int, dst [][]byte) ([]bool, []bool, error) {
	return l.c.ReconstructManyInto(stripe, positions, dst)
}

// RepairGroups implements Codec.
func (l *LRCCodec) RepairGroups() [][]int { return l.groups }

// Verify implements Codec.
func (l *LRCCodec) Verify(stripe [][]byte) (bool, error) { return l.c.Verify(stripe) }

// LocateCorruption implements Codec.
func (l *LRCCodec) LocateCorruption(stripe [][]byte) ([]int, error) {
	return l.c.LocateCorruption(stripe)
}

// RSCodec adapts *rs.Code to the store: the baseline with no local
// structure, where every repair reads k blocks.
type RSCodec struct {
	c      *rs.Code
	name   string
	exists []bool // all-true mask, built once for the planner
	plans  planCache
}

// NewRSCodec wraps a Reed-Solomon code.
func NewRSCodec(c *rs.Code) *RSCodec {
	exists := make([]bool, c.N())
	for j := range exists {
		exists[j] = true
	}
	return &RSCodec{c: c, exists: exists, name: fmt.Sprintf("RS(%d,%d)", c.K(), c.N()-c.K())}
}

// NewRS104Codec wraps the paper's RS(10,4) baseline.
func NewRS104Codec() *RSCodec {
	c, err := rs.New256(10, 14)
	if err != nil {
		panic("store: RS(10,4) construction failed: " + err.Error())
	}
	return NewRSCodec(c)
}

// Name implements Codec.
func (r *RSCodec) Name() string { return r.name }

// K implements Codec.
func (r *RSCodec) K() int { return r.c.K() }

// NStored implements Codec.
func (r *RSCodec) NStored() int { return r.c.N() }

// Encode implements Codec. RS has no parallel encoder; the serial path is
// used regardless of workers.
func (r *RSCodec) Encode(data [][]byte, workers int) ([][]byte, error) {
	return r.c.Encode(data)
}

// EncodeInto implements Codec (serial regardless of workers, like Encode).
func (r *RSCodec) EncodeInto(data, parity [][]byte, workers int) error {
	return r.c.EncodeInto(data, parity)
}

// PlanReads implements Codec with the minimal policy: any rank-k subset of
// the available blocks, memoized per (position, availability-mask). light
// is always false — RS repairs are heavy.
func (r *RSCodec) PlanReads(i int, avail []bool) ([]int, bool, error) {
	if reads, _, ok := r.plans.get(i, avail); ok {
		return reads, false, nil
	}
	plan, err := r.c.PlanRepair(i, r.exists, avail, false)
	if err != nil {
		return nil, false, err
	}
	r.plans.put(i, avail, plan.Reads, false)
	return plan.Reads, false, nil
}

// ReconstructBlock implements Codec as a thin wrapper over
// ReconstructMany: only the requested column is decoded (one fused pass
// over k survivors), not the whole stripe.
func (r *RSCodec) ReconstructBlock(stripe [][]byte, i int) ([]byte, bool, error) {
	payloads, _, err := r.ReconstructMany(stripe, []int{i})
	if err != nil {
		return nil, false, err
	}
	return payloads[0], false, nil
}

// ReconstructMany implements Codec via the batched column decoder. RS
// decoding is all-or-nothing (below rank k nothing is recoverable), so
// on error every payload is nil — there is no partial progress to keep.
func (r *RSCodec) ReconstructMany(stripe [][]byte, positions []int) ([][]byte, []bool, error) {
	if len(stripe) != r.c.N() {
		return nil, nil, fmt.Errorf("store: got %d stripe entries, want %d", len(stripe), r.c.N())
	}
	light := make([]bool, len(positions))
	payloads, err := r.c.ReconstructCols(stripe, positions)
	if err != nil {
		return make([][]byte, len(positions)), light, err
	}
	return payloads, light, nil
}

// ReconstructManyInto implements Codec (all-or-nothing, like
// ReconstructMany).
func (r *RSCodec) ReconstructManyInto(stripe [][]byte, positions []int, dst [][]byte) ([]bool, []bool, error) {
	if len(stripe) != r.c.N() {
		return nil, nil, fmt.Errorf("store: got %d stripe entries, want %d", len(stripe), r.c.N())
	}
	filled := make([]bool, len(positions))
	light := make([]bool, len(positions))
	if err := r.c.ReconstructColsInto(stripe, positions, dst); err != nil {
		return filled, light, err
	}
	for i := range filled {
		filled[i] = true
	}
	return filled, light, nil
}

// RepairGroups implements Codec: RS stripes have no repair groups, so
// placement only spreads blocks across distinct nodes and racks.
func (r *RSCodec) RepairGroups() [][]int { return nil }

// Verify implements Codec.
func (r *RSCodec) Verify(stripe [][]byte) (bool, error) { return r.c.Verify(stripe) }

// LocateCorruption implements Codec by trial re-reconstruction: block j is
// corrupted if rebuilding it from the others changes it and the repaired
// stripe then verifies. Only single-block corruption is pinned exactly;
// wider damage reports every inconsistent candidate.
func (r *RSCodec) LocateCorruption(stripe [][]byte) ([]int, error) {
	n := r.c.N()
	if len(stripe) != n {
		return nil, fmt.Errorf("store: got %d stripe entries, want %d", len(stripe), n)
	}
	for i, s := range stripe {
		if s == nil {
			return nil, fmt.Errorf("store: block %d missing; LocateCorruption needs a full stripe", i)
		}
	}
	if ok, err := r.c.Verify(stripe); err != nil {
		return nil, err
	} else if ok {
		return nil, nil
	}
	var corrupted []int
	for j := 0; j < n; j++ {
		work := make([][]byte, n)
		copy(work, stripe)
		work[j] = nil
		rebuilt, _, err := r.ReconstructBlock(work, j)
		if err != nil {
			continue
		}
		if !bytes.Equal(rebuilt, stripe[j]) {
			work[j] = rebuilt
			if ok, err := r.c.Verify(work); err == nil && ok {
				corrupted = append(corrupted, j)
			}
		}
	}
	if len(corrupted) == 0 {
		// Beyond single-block localization: every block is suspect.
		for j := 0; j < n; j++ {
			corrupted = append(corrupted, j)
		}
	}
	return corrupted, nil
}
