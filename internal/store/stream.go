package store

import (
	"bytes"
	"fmt"
	"io"
)

// The streaming datapath: PutReader and GetWriter move objects through
// the store one stripe at a time, so peak memory is O(stripe size ×
// encode workers) no matter how large the object is — the paper's
// multi-GB HDFS blocks fit through a laptop-sized heap. Blocks are
// written to the backend as each stripe is encoded; the object manifest
// is committed atomically only once the reader is exhausted, so a
// half-streamed object is never visible and a mid-stream failure rolls
// every written block back. Put and Get are thin wrappers over these.

// PutReader stores an object streamed from r, replacing any previous
// version once the stream completes. Each k·BlockSize chunk is encoded,
// CRC-framed and written before the next chunk is read; the stripe
// buffer is reused, so memory stays bounded by the stripe size while the
// object can exceed RAM. On any error nothing is committed and all
// blocks already written are deleted.
func (s *Store) PutReader(name string, r io.Reader) error {
	if name == "" {
		return fmt.Errorf("store: empty object name")
	}
	k := s.cfg.Codec.K()
	stripeCap := k * s.cfg.BlockSize
	gen := s.gen.Add(1)
	obj := &objectInfo{Name: name, Gen: gen}
	// On any mid-stream failure, blocks already written would be orphaned
	// (no manifest ever references them), so roll them back.
	fail := func(err error) error {
		s.deleteBlocks(obj)
		return err
	}
	// One reusable stripe buffer: full-stripe shards alias it directly
	// (see stripeShards), which is safe because backends must not retain
	// Write's data after returning.
	buf := make([]byte, stripeCap)
	for {
		n, err := io.ReadFull(r, buf)
		if err == io.EOF {
			break
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return fail(fmt.Errorf("store: read object %q: %w", name, err))
		}
		if n > 0 {
			if perr := s.putStripe(obj, buf[:n]); perr != nil {
				return fail(perr)
			}
			obj.Size += n
		}
		if err == io.ErrUnexpectedEOF {
			break
		}
	}
	s.commit(obj)
	return nil
}

// putStripe encodes and writes one stripe, appending its manifest entry
// to obj. chunk must be at most K·BlockSize bytes.
func (s *Store) putStripe(obj *objectInfo, chunk []byte) error {
	k := s.cfg.Codec.K()
	blockLen := (len(chunk) + k - 1) / k
	shards := stripeShards(chunk, k, blockLen)
	stripe, err := s.cfg.Codec.Encode(shards, s.encodeWorkers(len(chunk)))
	if err != nil {
		return err
	}
	seq := int(s.seq.Add(1))
	nodes := s.placer.place(seq, s.aliveSnapshot())
	idx := len(obj.Stripes)
	si := stripeInfo{
		Seq:      seq,
		DataLen:  len(chunk),
		BlockLen: blockLen,
		Nodes:    nodes,
		Keys:     make([]string, len(stripe)),
	}
	for pos := range stripe {
		si.Keys[pos] = blockKey(obj.Name, obj.Gen, idx, pos)
	}
	// Manifest entry first, writes second: a failed write then rolls
	// back this stripe's earlier blocks too (Delete of a never-written
	// key is a no-op).
	obj.Stripes = append(obj.Stripes, si)
	for pos, payload := range stripe {
		if nodes[pos] < 0 {
			return fmt.Errorf("store: no live node for stripe %d block %d", idx, pos)
		}
		framed := FrameBlock(payload)
		if err := s.cfg.Backend.Write(nodes[pos], si.Keys[pos], framed); err != nil {
			return fmt.Errorf("store: write stripe %d block %d: %w", idx, pos, err)
		}
		s.m.putBlocks.Add(1)
		s.m.putBytes.Add(int64(len(framed)))
	}
	return nil
}

// commit atomically publishes obj as the current version of its name and
// reclaims the blocks of any version it replaces.
func (s *Store) commit(obj *objectInfo) {
	s.mu.Lock()
	old := s.objects[obj.Name]
	s.objects[obj.Name] = obj
	s.mu.Unlock()
	if old != nil {
		s.deleteBlocks(old)
	}
}

// GetWriter streams an object to w stripe by stripe, reconstructing
// missing or corrupt blocks inline exactly like Get (light local decode
// first, so a single-loss stripe still costs the r=5 read set), with
// memory bounded by one stripe. The ReadInfo reports what the read
// actually cost. A read racing an overwrite retries against the new
// version only while nothing has been written to w; once bytes are out,
// a failure is final (the writer cannot be rewound).
func (s *Store) GetWriter(name string, w io.Writer) (ReadInfo, error) {
	cw := &countingWriter{w: w}
	for attempt := 0; ; attempt++ {
		info, gen, err := s.streamVersion(name, cw)
		info.BytesWritten = cw.n
		if err == nil || attempt >= 8 || cw.n > 0 {
			return info, err
		}
		moved, found := s.versionMoved(name, gen)
		if !found {
			// Deleted mid-read: not-found is the truthful outcome.
			return info, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
		}
		if !moved {
			return info, err // same version: a genuine failure
		}
	}
}

// Get reads an object back, reconstructing missing or corrupt blocks
// inline (the degraded read path: rebuilt blocks are served, not written
// back — §1.1). The ReadInfo reports what the read actually cost. It is
// a buffered wrapper over the streaming path, with the full
// retry-on-overwrite loop (the buffer rewinds where an external writer
// cannot).
func (s *Store) Get(name string) ([]byte, ReadInfo, error) {
	// A read racing an overwrite can hold a manifest whose blocks the
	// overwrite already deleted; when that happens the object generation
	// has moved, so retry against the new version. The cap only guards
	// against a pathological stream of overwrites.
	var buf bytes.Buffer
	for attempt := 0; ; attempt++ {
		buf.Reset()
		info, gen, err := s.streamVersion(name, &buf)
		if err == nil {
			info.BytesWritten = int64(buf.Len())
			return buf.Bytes(), info, nil
		}
		if attempt >= 8 {
			return nil, info, err
		}
		moved, found := s.versionMoved(name, gen)
		if !found {
			return nil, info, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
		}
		if !moved {
			return nil, info, err
		}
	}
}

// streamVersion performs one streaming read attempt against the object
// version current at entry, returning that version's generation. Each
// stripe is fetched, reconstructed if degraded, written to w and
// dropped before the next one is touched.
func (s *Store) streamVersion(name string, w io.Writer) (ReadInfo, int64, error) {
	stripes, gen, ok := s.manifestSnapshot(name)
	if !ok {
		return ReadInfo{}, 0, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	k := s.cfg.Codec.K()
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	for i := range stripes {
		si := &stripes[i]
		stripe := make([][]byte, n)
		avail := make([]bool, n)
		for pos := 0; pos < n; pos++ {
			avail[pos] = s.Alive(si.Nodes[pos])
		}
		var missing []int
		for pos := 0; pos < k; pos++ {
			p, err := s.readBlockPayload(si, pos, acct)
			if err != nil {
				avail[pos] = false
				missing = append(missing, pos)
				continue
			}
			stripe[pos] = p
		}
		if len(missing) > 0 {
			acct.degraded = true
			if err := s.reconstructPositions(si, stripe, missing, avail, acct); err != nil {
				s.m.mergeRead(acct)
				return acct.info(), gen, fmt.Errorf("store: degraded read of %q stripe %d: %w", name, i, err)
			}
		}
		remaining := si.DataLen
		for pos := 0; pos < k && remaining > 0; pos++ {
			part := stripe[pos]
			if len(part) > remaining {
				part = part[:remaining]
			}
			if _, err := w.Write(part); err != nil {
				s.m.mergeRead(acct)
				return acct.info(), gen, fmt.Errorf("store: write object %q: %w", name, err)
			}
			remaining -= len(part)
		}
	}
	s.m.mergeRead(acct)
	return acct.info(), gen, nil
}

// manifestSnapshot copies an object's stripe manifest under the lock:
// repair workers relocate blocks (mutating Nodes/Keys) concurrently with
// reads.
func (s *Store) manifestSnapshot(name string) ([]stripeInfo, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj := s.objects[name]
	if obj == nil {
		return nil, 0, false
	}
	stripes := make([]stripeInfo, len(obj.Stripes))
	for i, si := range obj.Stripes {
		si.Nodes = append([]int(nil), si.Nodes...)
		si.Keys = append([]string(nil), si.Keys...)
		stripes[i] = si
	}
	return stripes, obj.Gen, true
}

// versionMoved reports whether name's stored generation differs from gen
// (the read raced an overwrite), and whether the object still exists.
func (s *Store) versionMoved(name string, gen int64) (moved, found bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj := s.objects[name]
	if obj == nil {
		return false, false
	}
	return obj.Gen != gen, true
}

// countingWriter tracks how many bytes reached the underlying writer, so
// GetWriter knows whether a retry is still possible.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
