package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/meta"
)

// The streaming datapath: PutReader and GetWriter move objects through
// the store one stripe at a time, so peak memory is O(stripe size ×
// pipeline depth) no matter how large the object is — the paper's
// multi-GB HDFS blocks fit through a laptop-sized heap. Both directions
// are pipelined: PutReader reads stripe N+1 from the source while stripe
// N encodes, and writes a stripe's framed blocks to the backend through a
// bounded worker pool; GetWriter fetches a stripe's data blocks
// concurrently and prefetches the next stripe while the current one
// drains to the writer. The object manifest is committed atomically only
// once the reader is exhausted, so a half-streamed object is never
// visible and a mid-stream failure rolls every written block back. Put
// and Get are thin wrappers over these.

// filledStripe is one stripe read from the source, in framed-block
// layout: bufs[i] is block i's backend frame, with the payload at
// bufs[i][4:4+BlockSize] (data blocks 0..k-1 filled from the reader,
// parity blocks encoded in place later). n is the real payload byte
// count; n < k·BlockSize only for the object's final stripe.
type filledStripe struct {
	bufs [][]byte
	n    int
	err  error // terminal source error (never io.EOF)
}

// PutReader stores an object streamed from r, replacing any previous
// version once the stream completes. The engine is double-buffered: a
// reader goroutine fills the next stripe's framed block buffers while the
// current stripe encodes, and each stripe's blocks go to the backend
// through a bounded write pool. Full stripes never copy: data is read
// directly into framed buffers, parities are encoded into framed buffers,
// and an ownership-transferring backend (MemBackend) keeps those very
// buffers as the stored blocks. On any error nothing is committed and all
// blocks already written are deleted.
//
// After an error return the internal reader may still be inside one
// blocked Read of r until that read unblocks (the same contract as
// net/http request bodies): do not reuse r, and close it to release the
// reader promptly — closing an *os.File or net.Conn interrupts the read.
// On success the reader has always exited.
func (s *Store) PutReader(name string, r io.Reader) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	k := s.cfg.Codec.K()
	n := s.cfg.Codec.NStored()
	bs := s.cfg.BlockSize
	gen := s.gen.Add(1)
	obj := &objectInfo{Name: name, Gen: gen}
	// On any mid-stream failure, blocks already written would be orphaned
	// (no manifest ever references them), so roll them back.
	fail := func(err error) error {
		s.deleteBlocks(obj)
		return err
	}
	owned := s.ownedW != nil
	// Double buffer: with a copying backend two framed buffer sets cycle
	// through the free list; with an owning backend the stored buffers
	// are gone for good, so the reader allocates fresh sets and the
	// fills channel's capacity bounds how far ahead it runs.
	free := make(chan [][]byte, 2)
	if !owned {
		free <- makeFramedBufs(n, bs)
		free <- makeFramedBufs(n, bs)
	}
	fills := make(chan filledStripe, 1)
	stop := make(chan struct{})
	// On exit, stop releases a fill goroutine parked on a channel; one
	// parked inside a blocking Read keeps r until that read unblocks
	// (see the contract in the doc comment). Joining unconditionally
	// would instead hold a backend-write error hostage to the source's
	// liveness — a stalled pipe could delay the put's failure forever.
	defer close(stop)
	go func() {
		defer close(fills)
		for {
			var bufs [][]byte
			total := 0
			var rerr error
			start := 0
			if owned {
				select {
				case <-stop:
					return
				default:
				}
				// A 1-byte probe decides EOF before the stripe slab is
				// allocated: an object sized an exact multiple of the
				// stripe would otherwise cost one discarded multi-MiB
				// slab on its terminal empty read.
				var probe [1]byte
				if _, err := io.ReadFull(r, probe[:]); err != nil {
					f := filledStripe{}
					if err != io.EOF {
						f.err = err
					}
					select {
					case fills <- f:
					case <-stop:
					}
					return
				}
				bufs = makeFramedBufs(n, bs)
				bufs[0][4] = probe[0]
				m, err := io.ReadFull(r, bufs[0][5:4+bs])
				total = 1 + m
				if err != nil {
					rerr = err
				}
				start = 1
			} else {
				select {
				case bufs = <-free:
				case <-stop:
					return
				}
			}
			for i := start; i < k && rerr == nil; i++ {
				m, err := io.ReadFull(r, bufs[i][4:4+bs])
				total += m
				if err != nil {
					rerr = err
				}
			}
			f := filledStripe{bufs: bufs, n: total}
			if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
				f.err = rerr
			}
			select {
			case fills <- f:
			case <-stop:
				return
			}
			if rerr != nil {
				return
			}
		}
	}()
	for f := range fills {
		if f.err != nil {
			return fail(fmt.Errorf("store: read object %q: %w", name, f.err))
		}
		if f.n == 0 {
			continue // bare EOF on a stripe boundary
		}
		if f.n == k*bs {
			if err := s.putStripeFramed(obj, f.bufs); err != nil {
				return fail(err)
			}
			if !owned {
				select {
				case free <- f.bufs:
				default:
				}
			}
		} else {
			// Short final stripe: gather the scattered prefix into one
			// chunk and re-frame at the shrunken block length (the layout
			// above no longer matches). At most once per object.
			chunk := make([]byte, f.n)
			off := 0
			for i := 0; i < k && off < f.n; i++ {
				off += copy(chunk[off:], bufs4(f.bufs[i], bs))
			}
			if err := s.putStripeShort(obj, chunk); err != nil {
				return fail(err)
			}
		}
		obj.Size += f.n
	}
	if err := s.commit(obj); err != nil {
		return fail(fmt.Errorf("store: commit object %q: %w", name, err))
	}
	return nil
}

// bufs4 returns the payload window of a framed block buffer.
func bufs4(b []byte, bs int) []byte { return b[4 : 4+bs] }

// makeFramedBufs allocates one slab carved into n framed block buffers
// of payloadLen bytes each: one allocation instead of n, and safe to
// hand to an owning backend because a stripe's blocks are always retired
// together.
func makeFramedBufs(n, payloadLen int) [][]byte {
	fl := 4 + payloadLen
	return carveFramedBufs(make([]byte, n*fl), n, payloadLen)
}

// carveFramedBufs slices an existing slab (len ≥ n·(4+payloadLen)) into
// n framed block buffers — the repair workers' slab-reuse path.
func carveFramedBufs(slab []byte, n, payloadLen int) [][]byte {
	fl := 4 + payloadLen
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = slab[i*fl : (i+1)*fl : (i+1)*fl]
	}
	return bufs
}

// putStripeFramed encodes and writes one full stripe already laid out in
// framed block buffers: parities are encoded directly into the framed
// payload windows, CRC headers are stamped in place, and the n blocks go
// to the backend through the bounded write pool — zero payload copies
// inside the store.
func (s *Store) putStripeFramed(obj *objectInfo, bufs [][]byte) error {
	k := s.cfg.Codec.K()
	n := s.cfg.Codec.NStored()
	bs := s.cfg.BlockSize
	data := make([][]byte, k)
	for i := 0; i < k; i++ {
		data[i] = bufs4(bufs[i], bs)
	}
	parity := make([][]byte, n-k)
	for j := range parity {
		parity[j] = bufs4(bufs[k+j], bs)
	}
	if err := s.cfg.Codec.EncodeInto(data, parity, s.encodeWorkers(k*bs)); err != nil {
		return err
	}
	return s.sealStripe(obj, bufs, k*bs, bs)
}

// sealStripe places an encoded framed stripe, appends its manifest entry
// to obj and writes its blocks. The manifest entry goes in first, writes
// second: a failed write then rolls back this stripe's earlier blocks too
// (Delete of a never-written key is a no-op).
func (s *Store) sealStripe(obj *objectInfo, bufs [][]byte, dataLen, blockLen int) error {
	n := len(bufs)
	seq := int(s.seq.Add(1))
	// Place on the membership-aware set: alive AND active/joining. New
	// stripes land on the post-change topology immediately; draining
	// nodes only serve reads for what they already hold.
	nodes := s.placer.place(seq, s.placeableSnapshot())
	idx := len(obj.Stripes)
	si := stripeInfo{
		Seq:      seq,
		DataLen:  dataLen,
		BlockLen: blockLen,
		Nodes:    nodes,
		Keys:     make([]string, n),
	}
	for pos := 0; pos < n; pos++ {
		si.Keys[pos] = blockKey(obj.Name, obj.Gen, idx, pos)
	}
	obj.Stripes = append(obj.Stripes, si)
	for pos := 0; pos < n; pos++ {
		if nodes[pos] < 0 {
			return fmt.Errorf("store: no live node for stripe %d block %d", idx, pos)
		}
	}
	return s.writeStripeBlocks(&si, bufs, idx)
}

// writeStripeBlocks stamps each framed buffer's CRC header and writes the
// stripe's blocks through a bounded worker pool. All writes are joined
// before returning, so a caller that fails can roll back safely.
func (s *Store) writeStripeBlocks(si *stripeInfo, bufs [][]byte, idx int) error {
	n := len(bufs)
	writeOne := func(pos int) error {
		b := bufs[pos]
		binary.LittleEndian.PutUint32(b, crc32.Checksum(b[4:], castagnoli))
		var err error
		if s.ownedW != nil {
			err = s.ownedW.WriteOwned(si.Nodes[pos], si.Keys[pos], b)
		} else {
			err = s.cfg.Backend.Write(si.Nodes[pos], si.Keys[pos], b)
		}
		if err != nil {
			return fmt.Errorf("store: write stripe %d block %d: %w", idx, pos, err)
		}
		s.m.putBlocks.Add(1)
		s.m.putBytes.Add(int64(len(b)))
		return nil
	}
	workers := s.writeWorkers(n)
	if workers <= 1 {
		for pos := 0; pos < n; pos++ {
			if err := writeOne(pos); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				errs[pos] = writeOne(pos)
			}
		}()
	}
	for pos := 0; pos < n; pos++ {
		jobs <- pos
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// putStripeShort encodes and writes one short (final) stripe: the chunk
// is re-laid into a fresh framed slab at the shrunken block length
// (zero-padded by the fresh allocation), then encoded and written exactly
// like a full framed stripe. chunk must be non-empty and less than
// K·BlockSize bytes.
func (s *Store) putStripeShort(obj *objectInfo, chunk []byte) error {
	k := s.cfg.Codec.K()
	n := s.cfg.Codec.NStored()
	blockLen := (len(chunk) + k - 1) / k
	bufs := makeFramedBufs(n, blockLen)
	data := make([][]byte, k)
	parity := make([][]byte, n-k)
	for i := 0; i < k; i++ {
		data[i] = bufs4(bufs[i], blockLen)
		if lo := i * blockLen; lo < len(chunk) {
			copy(data[i], chunk[lo:])
		}
	}
	for j := range parity {
		parity[j] = bufs4(bufs[k+j], blockLen)
	}
	if err := s.cfg.Codec.EncodeInto(data, parity, s.encodeWorkers(len(chunk))); err != nil {
		return err
	}
	return s.sealStripe(obj, bufs, len(chunk), blockLen)
}

// commit atomically publishes obj as the current version of its name —
// durably, when the plane has a WAL: the record is fsynced before commit
// returns, so an acked put survives a crash. Any version it replaces is
// retired (reclaimed immediately, or at the last unpin if a streaming
// read still holds it).
func (s *Store) commit(obj *objectInfo) error {
	var old *objectInfo
	err := s.db.Commit(func(tx *meta.Tx) {
		if v, ok := tx.Get(objKey(obj.Name)); ok {
			old = v.(*objectInfo)
		}
		tx.Put(objKey(obj.Name), obj)
	})
	if err != nil {
		return err
	}
	if old != nil {
		s.retire(old)
	}
	return nil
}

// GetWriter streams an object to w stripe by stripe, reconstructing
// missing or corrupt blocks inline exactly like Get (light local decode
// first, so a single-loss stripe still costs the r=5 read set), with
// memory bounded by the two pipelined stripes. The ReadInfo reports what
// the read actually cost. A failed attempt retries with a fresh manifest
// snapshot while nothing has been written to w — the manifest can change
// under a read without a generation bump when repair workers relocate
// blocks, and with one when an overwrite lands. Once bytes are out, a
// failure is final (the writer cannot be rewound).
func (s *Store) GetWriter(name string, w io.Writer) (ReadInfo, error) {
	cw := &countingWriter{w: w}
	for attempt := 0; ; attempt++ {
		gen0, muts0, _ := s.versionState(name)
		info, gen, err := s.streamVersion(name, cw)
		info.BytesWritten = cw.n
		if err == nil || attempt >= 8 || cw.n > 0 {
			return info, err
		}
		curGen, curMuts, found := s.versionState(name)
		if !found {
			// Deleted mid-read: not-found is the truthful outcome.
			return info, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
		}
		if curGen == gen && curGen == gen0 && curMuts == muts0 {
			// This object's manifest never moved around the attempt:
			// the snapshot was current and the failure is genuine.
			return info, err
		}
	}
}

// Get reads an object back, reconstructing missing or corrupt blocks
// inline (the degraded read path: rebuilt blocks are served, not written
// back — §1.1). The ReadInfo reports what the read actually cost. It is
// a buffered wrapper over the streaming path, with the full retry loop
// (the buffer rewinds where an external writer cannot).
func (s *Store) Get(name string) ([]byte, ReadInfo, error) {
	// A failed attempt can mean the manifest snapshot went stale under
	// the read: repair workers relocate blocks without a generation
	// bump, and an overwrite replaces the version with one. A fresh
	// snapshot sees the current block locations, so retry — but only
	// while manifests are actually moving (the muts counter): a failure
	// with an unchanged manifest is genuinely lost data and retrying
	// would just re-read every stripe to fail again.
	var buf bytes.Buffer
	for attempt := 0; ; attempt++ {
		gen0, muts0, _ := s.versionState(name)
		buf.Reset()
		info, gen, err := s.streamVersion(name, &buf)
		if err == nil {
			info.BytesWritten = int64(buf.Len())
			return buf.Bytes(), info, nil
		}
		if attempt >= 8 {
			return nil, info, err
		}
		curGen, curMuts, found := s.versionState(name)
		if !found {
			return nil, info, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
		}
		if curGen == gen && curGen == gen0 && curMuts == muts0 {
			return nil, info, err
		}
	}
}

// fetchResult is one stripe fetched (and if necessary reconstructed) by
// the get pipeline, with its own accounting so concurrent fetches never
// share counters; accts merge in stripe order. pinned holds the cache
// entries whose payloads sit in stripe — the caller releases them once
// the stripe has drained, whichever way the read ends.
type fetchResult struct {
	stripe [][]byte
	acct   readAcct
	pinned []*cacheEntry
	err    error
}

// release unpins the cache entries this fetch pinned. Safe to call more
// than once and on a result with no pins.
func (r *fetchResult) release(c *blockCache) {
	if len(r.pinned) == 0 {
		return
	}
	for _, e := range r.pinned {
		c.unpin(e)
	}
	r.pinned = nil
}

// fetchStripe reads a stripe's data blocks at positions [pLo, pHi] —
// concurrently when the read pool allows — into the reusable scratch
// slice, reconstructing whatever is missing or corrupt. A full-object
// read passes [0, k-1]; a ranged read passes just the covering window,
// so bytes hit the backend only for blocks the range actually needs.
// scratch entries are cleared first, so a recycled slice never leaks a
// previous stripe's payloads.
//
// The hot-block cache is probed first: hits fill scratch straight from
// memory, pinned until the caller releases the result so eviction can
// never recycle a payload under the decode, and only the misses go to
// the backend — a fully cached stripe returns without touching the
// backend or arming the hedge machinery at all.
func (s *Store) fetchStripe(si *stripeInfo, scratch [][]byte, pLo, pHi int) fetchResult {
	for i := range scratch {
		scratch[i] = nil
	}
	res := fetchResult{stripe: scratch}
	want := make([]int, 0, pHi-pLo+1)
	if c := s.cache; c != nil {
		for pos := pLo; pos <= pHi; pos++ {
			if payload, e := c.get(si.Keys[pos]); e != nil {
				scratch[pos] = payload
				res.pinned = append(res.pinned, e)
			} else {
				want = append(want, pos)
			}
		}
	} else {
		for pos := pLo; pos <= pHi; pos++ {
			want = append(want, pos)
		}
	}
	if len(want) == 0 {
		return res
	}
	n := s.cfg.Codec.NStored()
	avail := make([]bool, n)
	for pos := 0; pos < n; pos++ {
		avail[pos] = s.Alive(si.Nodes[pos])
	}
	if d := s.hedgeDelay(); d > 0 {
		s.fetchPositionsHedged(si, scratch, want, avail, &res, d)
	} else {
		s.fetchPositions(si, scratch, want, avail, &res)
	}
	if c := s.cache; c != nil && res.err == nil {
		// Cache what the backend (or the decode) just produced — but only
		// the wanted positions: reconstruction sources outside the window
		// were incidental, and admitting them would let one degraded
		// stripe evict a window's worth of genuinely hot blocks.
		for _, pos := range want {
			if scratch[pos] != nil {
				c.add(si.Keys[pos], scratch[pos])
			}
		}
	}
	return res
}

// fetchPositions reads the wanted stripe positions — concurrently when
// the read pool allows — into scratch, reconstructing whatever is
// missing or corrupt. avail marks positions believed readable and is
// downgraded as fetches fail; accounting and errors land in res.
func (s *Store) fetchPositions(si *stripeInfo, scratch [][]byte, want []int, avail []bool, res *fetchResult) {
	var missing []int
	workers := s.readWorkers(len(want))
	if workers <= 1 {
		for _, pos := range want {
			p, err := s.readBlockPayload(si, pos, &res.acct, nil)
			if err != nil {
				avail[pos] = false
				missing = append(missing, pos)
				continue
			}
			scratch[pos] = p
		}
	} else {
		errs := make([]error, len(scratch))
		accts := make([]readAcct, workers)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for pos := range jobs {
					scratch[pos], errs[pos] = s.readBlockPayload(si, pos, &accts[w], nil)
				}
			}(w)
		}
		for _, pos := range want {
			jobs <- pos
		}
		close(jobs)
		wg.Wait()
		for w := range accts {
			res.acct.add(&accts[w])
		}
		for _, pos := range want {
			if errs[pos] != nil {
				scratch[pos] = nil
				avail[pos] = false
				missing = append(missing, pos)
			}
		}
	}
	if len(missing) > 0 {
		res.acct.degraded = true
		if err := s.reconstructPositions(si, scratch, missing, avail, &res.acct, nil); err != nil {
			res.err = err
		}
	}
}

// streamVersion performs one streaming read attempt against the object
// version current at entry, returning that version's generation. The
// stripe pipeline is one deep: while stripe i drains to w, stripe i+1 is
// already being fetched into the other of two scratch slices that
// ping-pong for the whole read (the only per-stripe state).
func (s *Store) streamVersion(name string, w io.Writer) (ReadInfo, int64, error) {
	stripes, gen, ok := s.manifestSnapshot(name)
	if !ok {
		return ReadInfo{}, 0, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	// The snapshot pinned this version (see manifestSnapshot); hold the
	// pin for the whole read so an overwrite cannot reclaim the blocks
	// under us, and release it whichever way the read ends.
	defer s.unpin(name, gen)
	k := s.cfg.Codec.K()
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	scratch := [2][][]byte{make([][]byte, n), make([][]byte, n)}
	startFetch := func(i int) chan fetchResult {
		ch := make(chan fetchResult, 1)
		go func() {
			ch <- s.fetchStripe(&stripes[i], scratch[i%2], 0, k-1)
		}()
		return ch
	}
	var pending chan fetchResult
	if len(stripes) > 0 {
		pending = startFetch(0)
	}
	for i := range stripes {
		res := <-pending
		pending = nil
		acct.add(&res.acct)
		if res.err != nil {
			res.release(s.cache)
			s.m.mergeRead(acct)
			return acct.info(), gen, fmt.Errorf("store: degraded read of %q stripe %d: %w", name, i, res.err)
		}
		if i+1 < len(stripes) {
			pending = startFetch(i + 1)
		}
		si := &stripes[i]
		remaining := si.DataLen
		for pos := 0; pos < k && remaining > 0; pos++ {
			part := res.stripe[pos]
			if len(part) > remaining {
				part = part[:remaining]
			}
			if _, err := w.Write(part); err != nil {
				res.release(s.cache)
				if pending != nil {
					// Join the prefetch; its reads are uncharged on this
					// failure path, but its cache pins still release.
					p := <-pending
					p.release(s.cache)
				}
				s.m.mergeRead(acct)
				return acct.info(), gen, fmt.Errorf("store: write object %q: %w", name, err)
			}
			remaining -= len(part)
		}
		res.release(s.cache)
	}
	s.m.mergeRead(acct)
	return acct.info(), gen, nil
}

// manifestSnapshot captures an object's stripe manifest and pins the
// version. Both happen inside one db.View — the shard read lock — and a
// racing commit takes that shard's write lock before it can replace the
// manifest, so the pin is atomic with the lookup and the overwrite is
// guaranteed to see it when it retires this version. No deep copy:
// manifests in the plane are copy-on-write (a relocation commits a
// replacement), so the captured slices are immutable. The caller owns
// one unpin on ok=true.
func (s *Store) manifestSnapshot(name string) ([]stripeInfo, int64, bool) {
	var stripes []stripeInfo
	var gen int64
	ok := false
	s.db.View(objKey(name), func(v any, found bool) {
		if !found {
			return
		}
		obj := v.(*objectInfo)
		stripes, gen, ok = obj.Stripes, obj.Gen, true
		s.pin(name, obj.Gen)
	})
	return stripes, gen, ok
}

// versionState returns name's current generation and mutation count
// (repair relocations), and whether the object exists. A read whose
// attempt failed retries only when this pair has moved: gen changes on
// overwrite, muts on relocation, and an unchanged pair means the failed
// snapshot was current — genuine data loss, not staleness.
func (s *Store) versionState(name string) (gen, muts int64, found bool) {
	v, ok := s.db.Get(objKey(name))
	if !ok {
		return 0, 0, false
	}
	obj := v.(*objectInfo)
	return obj.Gen, obj.muts, true
}

// countingWriter tracks how many bytes reached the underlying writer, so
// GetWriter knows whether a retry is still possible.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
