package store

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/meta"
)

// The store's metadata lives in one internal/meta plane, keyed by
// prefix:
//
//	o/<name>              an object's manifest (*objectInfo)
//	q/<gen>.<idx>/<name>  a queued repair item (*repairRecord)
//	s/state               liveness + generation watermark (*stateRecord)
//	u/<id>                a serving-tier upload record (opaque []byte)
//	n/<node>              a cluster membership record (*memberRecord)
//
// Manifests are the hot records: committed durably before a Put acks,
// relocated copy-on-write by repair workers, and walked by scrub
// iterators. Repair queue entries are advisory (commit-no-sync: a lost
// entry is re-found by the next scrub). The state record makes node
// deaths and the gen/seq watermark survive a crash with no objects to
// infer them from.

const (
	objPrefix    = "o/"
	qPrefix      = "q/"
	stateKey     = "s/state"
	uploadPrefix = "u/"
	nodePrefix   = "n/"
)

func objKey(name string) string { return objPrefix + name }

func nodeKey(n int) string { return fmt.Sprintf("%s%06d", nodePrefix, n) }

func qKey(ref stripeRef) string {
	return fmt.Sprintf("%s%d.%d/%s", qPrefix, ref.gen, ref.idx, ref.name)
}

// stateRecord is the non-manifest durable state: which nodes are dead,
// and the gen/seq watermark at the last liveness change or import (the
// watermark otherwise recovers as the max over live manifests, which
// can dip after a delete — harmless for block keys, but the record
// keeps it monotonic).
type stateRecord struct {
	Gen  int64 `json:"gen"`
	Seq  int64 `json:"seq"`
	Dead []int `json:"dead,omitempty"`
}

// repairRecord is a queued repair item in durable form: enough to
// rebuild the repairItem after a restart so damage found before a crash
// is repaired after it without waiting for the next scrub.
type repairRecord struct {
	Name     string `json:"name"`
	Gen      int64  `json:"gen"`
	Idx      int    `json:"idx"`
	Damaged  []int  `json:"damaged"`
	Erasures int    `json:"erasures"`
	Light    bool   `json:"light"`
	Silent   bool   `json:"silent"`
}

func (rr *repairRecord) item() repairItem {
	return repairItem{
		ref:      stripeRef{name: rr.Name, gen: rr.Gen, idx: rr.Idx},
		damaged:  rr.Damaged,
		erasures: rr.Erasures,
		light:    rr.Light,
		silent:   rr.Silent,
	}
}

func recordOf(it repairItem) *repairRecord {
	return &repairRecord{
		Name:     it.ref.name,
		Gen:      it.ref.gen,
		Idx:      it.ref.idx,
		Damaged:  it.damaged,
		Erasures: it.erasures,
		Light:    it.light,
		Silent:   it.silent,
	}
}

// metaCodec maps the store's record types to JSON by key prefix.
type metaCodec struct{}

func (metaCodec) Encode(key string, v any) ([]byte, error) {
	// Serving-tier records are already bytes; everything else is JSON.
	if b, ok := v.([]byte); ok && strings.HasPrefix(key, uploadPrefix) {
		return b, nil
	}
	return json.Marshal(v)
}

func (metaCodec) Decode(key string, b []byte) (any, error) {
	switch {
	case strings.HasPrefix(key, objPrefix):
		o := &objectInfo{}
		if err := json.Unmarshal(b, o); err != nil {
			return nil, err
		}
		return o, nil
	case strings.HasPrefix(key, qPrefix):
		r := &repairRecord{}
		if err := json.Unmarshal(b, r); err != nil {
			return nil, err
		}
		return r, nil
	case key == stateKey:
		st := &stateRecord{}
		if err := json.Unmarshal(b, st); err != nil {
			return nil, err
		}
		return st, nil
	case strings.HasPrefix(key, uploadPrefix):
		// Serving-tier records are opaque to the store; copy because
		// replay buffers are reused.
		return append([]byte(nil), b...), nil
	case strings.HasPrefix(key, nodePrefix):
		m := &memberRecord{}
		if err := json.Unmarshal(b, m); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("store: unknown meta key %q", key)
	}
}

// openMeta opens the store's metadata plane and recovers durable state
// into s: manifests are already in the index after replay; this walks
// them for the gen/seq watermark and applies the liveness record.
func (s *Store) openMeta() error {
	db, err := meta.Open(meta.Options{
		Dir:    s.cfg.MetaDir,
		Shards: s.cfg.MetaShards,
		Codec:  metaCodec{},
	})
	if err != nil {
		return err
	}
	s.db = db
	var maxGen, maxSeq int64
	it := db.Scan(objPrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		obj := v.(*objectInfo)
		if obj.Gen > maxGen {
			maxGen = obj.Gen
		}
		for i := range obj.Stripes {
			if sq := int64(obj.Stripes[i].Seq); sq > maxSeq {
				maxSeq = sq
			}
		}
	}
	// Membership records may grow the node set past cfg.Nodes (nodes
	// added before a crash), so apply them before the liveness record —
	// its Dead indices must resolve against the full table.
	if err := s.recoverMembers(); err != nil {
		return err
	}
	if v, ok := db.Get(stateKey); ok {
		st := v.(*stateRecord)
		if st.Gen > maxGen {
			maxGen = st.Gen
		}
		if st.Seq > maxSeq {
			maxSeq = st.Seq
		}
		for _, n := range st.Dead {
			if n >= 0 && n < len(s.alive) {
				s.alive[n] = false
			}
		}
	}
	s.gen.Store(maxGen)
	s.seq.Store(maxSeq)
	return nil
}

// logState commits the current liveness + watermark record. Callers
// that cannot return an error (KillNode) treat it as best-effort: the
// in-memory flip already happened and a lost record only costs a
// post-crash scrub the node-death hint.
func (s *Store) logState() error {
	s.mu.RLock()
	var dead []int
	for n, a := range s.alive {
		if !a {
			dead = append(dead, n)
		}
	}
	s.mu.RUnlock()
	return s.db.Put(stateKey, &stateRecord{Gen: s.gen.Load(), Seq: s.seq.Load(), Dead: dead})
}

// MetaRecovered reports what recovery found in the metadata plane —
// the restart story in two numbers (objects recovered, WAL records
// replayed to get them).
func (s *Store) MetaRecovered() (objects int, replayed int64) {
	return s.db.Len(objPrefix), s.db.Metrics().ReplayedRecords
}

// Close checkpoints and releases the metadata plane. Stop scrubbers and
// repair managers first; the store must not be used after Close.
func (s *Store) Close() error { return s.db.Close() }

// Upload records ride in the store's metadata plane under u/<id> so a
// serving tier (the HTTP gateway's multipart uploads) gets the same
// ack-means-durable, survives-kill-9 story as manifests without a second
// WAL. The bytes are opaque to the store — the owner picks the encoding
// — and are committed durably before PutUploadRecord returns.

// PutUploadRecord durably stores rec under id, replacing any previous
// record.
func (s *Store) PutUploadRecord(id string, rec []byte) error {
	if err := ValidateName(id); err != nil {
		return err
	}
	return s.db.Put(uploadPrefix+id, append([]byte(nil), rec...))
}

// GetUploadRecord returns the record stored under id, or ok=false.
// The returned bytes are a private copy.
func (s *Store) GetUploadRecord(id string) ([]byte, bool) {
	v, ok := s.db.Get(uploadPrefix + id)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v.([]byte)...), true
}

// DeleteUploadRecord durably removes the record under id; deleting a
// missing record is not an error.
func (s *Store) DeleteUploadRecord(id string) error {
	_, err := s.db.Delete(uploadPrefix + id)
	return err
}

// UploadRecords returns every stored upload record keyed by id — the
// recovery walk a serving tier runs after a restart. Bytes are private
// copies.
func (s *Store) UploadRecords() map[string][]byte {
	out := make(map[string][]byte)
	it := s.db.Scan(uploadPrefix)
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		out[strings.TrimPrefix(k, uploadPrefix)] = append([]byte(nil), v.([]byte)...)
	}
	return out
}
