//go:build race

package store

// raceEnabled reports whether the race detector is compiled in; the
// 256 MiB bounded-memory test skips under it (instrumentation multiplies
// both time and heap, drowning the bound being measured).
const raceEnabled = true
