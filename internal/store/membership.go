package store

import (
	"errors"
	"fmt"
	"sort"
)

// Cluster membership is a first-class, durable subsystem: every node has
// a state in the planned topology, separate from its probe-driven
// liveness bit. Liveness answers "can I read from it right now";
// membership answers "should new bytes land on it".
//
//	          AddNode                    rebalance pass completes
//	  (new id) ──────▶ joining ────────────────────────▶ active
//	                                                        │
//	                                          Decommission  │
//	                                                        ▼
//	    dead ◀──────────────────────────────────────── draining
//	           drain completes (no manifest blocks left)
//
// RemoveNode is the hard edge active→dead (the node is gone; its blocks
// become repair work). States are persisted in the metadata plane under
// n/ keys and recovered on restart like the repair queue, so a kill -9
// forgets nothing. Node ids are never reused: old manifests keep
// resolving mid-migration, new stripes simply stop landing on retired
// ids.

// NodeState is a node's place in the planned topology.
type NodeState string

const (
	// NodeActive nodes hold blocks and receive new placements.
	NodeActive NodeState = "active"
	// NodeJoining nodes receive new placements and rebalanced blocks but
	// held nothing historically; the first completed rebalance pass
	// promotes them to active.
	NodeJoining NodeState = "joining"
	// NodeDraining nodes serve reads but receive no placements; the
	// rebalancer migrates their blocks away and promotes them to dead
	// when none remain.
	NodeDraining NodeState = "draining"
	// NodeDead nodes are out of the topology for good.
	NodeDead NodeState = "dead"
)

// memberRecord is the durable n/ record for one node.
type memberRecord struct {
	Node  int       `json:"node"`
	Addr  string    `json:"addr,omitempty"`
	State NodeState `json:"state"`
	// Epoch is the membership epoch this record was last written at; the
	// store's epoch recovers as the max over records.
	Epoch int64 `json:"epoch"`
}

// MemberInfo is the exported view of one membership record.
type MemberInfo struct {
	Node  int       `json:"node"`
	Addr  string    `json:"addr,omitempty"`
	State NodeState `json:"state"`
	Alive bool      `json:"alive"`
	Epoch int64     `json:"epoch"`
}

// placeable reports whether a node in this state may receive new blocks.
func (st NodeState) placeable() bool { return st == NodeActive || st == NodeJoining }

// Members returns the membership table, one row per node id ever issued.
func (s *Store) Members() []MemberInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]MemberInfo, len(s.members))
	for i, m := range s.members {
		out[i] = MemberInfo{Node: m.Node, Addr: m.Addr, State: m.State, Alive: s.alive[i], Epoch: m.Epoch}
	}
	return out
}

// Epoch returns the current membership epoch: 0 for the seed topology,
// bumped by every membership change.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// MemberState returns a node's membership state (NodeDead for unknown
// ids — they are not in the topology).
func (s *Store) MemberState(n int) NodeState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n < 0 || n >= len(s.members) {
		return NodeDead
	}
	return s.members[n].State
}

// memberStates snapshots the per-node states.
func (s *Store) memberStates() []NodeState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]NodeState, len(s.members))
	for i := range s.members {
		out[i] = s.members[i].State
	}
	return out
}

// placeableSnapshot is the placement view of the cluster: alive AND in a
// placeable state. Reads still use aliveSnapshot — a draining node's
// blocks stay readable mid-migration.
func (s *Store) placeableSnapshot() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]bool, len(s.alive))
	for i := range out {
		out[i] = s.alive[i] && s.members[i].State.placeable()
	}
	return out
}

// PlaceableNodes counts nodes eligible for new placements.
func (s *Store) PlaceableNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for i := range s.alive {
		if s.alive[i] && s.members[i].State.placeable() {
			n++
		}
	}
	return n
}

// AddNode grows the cluster by one node and returns its id. The node
// starts joining: new stripes may land on it immediately and the
// rebalancer fills it toward the cluster mean, then promotes it to
// active. When the backend supports dynamic growth (NodeAdder — the
// netblock client), addr is registered there first; backends addressed
// by plain node index (MemBackend, DirBackend) need no registration and
// accept addr == "".
func (s *Store) AddNode(addr string) (int, error) {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()

	s.mu.RLock()
	id := len(s.members)
	s.mu.RUnlock()
	if na, ok := s.cfg.Backend.(NodeAdder); ok {
		got, err := na.AddNode(addr)
		if err != nil && !errors.Is(err, errors.ErrUnsupported) {
			return -1, fmt.Errorf("store: backend add node: %w", err)
		}
		if err == nil && got != id {
			return -1, fmt.Errorf("store: backend issued node id %d, membership expected %d", got, id)
		}
	}

	epoch := s.epoch.Add(1)
	rec := memberRecord{Node: id, Addr: addr, State: NodeJoining, Epoch: epoch}
	s.mu.Lock()
	s.members = append(s.members, rec)
	s.alive = append(s.alive, true)
	s.mu.Unlock()
	if err := s.db.Put(nodeKey(id), &rec); err != nil {
		return -1, err
	}
	_ = s.logState()
	return id, nil
}

// Decommission marks a node draining: it serves reads (if alive) but
// receives no new blocks, and the rebalancer migrates its blocks away —
// live blocks by direct paced copy, unreadable ones (the node may
// already be dead) by presence-walk repair from their groups. When
// nothing remains the node retires to dead.
func (s *Store) Decommission(n int) error {
	return s.transition(n, NodeDraining, func(cur NodeState) error {
		if cur == NodeDead {
			return fmt.Errorf("store: node %d is already dead", n)
		}
		return nil
	})
}

// RemoveNode retires a node immediately: dead in the topology, dead for
// liveness. Its remaining blocks become repair work (enqueue with a
// presence walk — ScrubPresence or a rebalance pass).
func (s *Store) RemoveNode(n int) error {
	err := s.transition(n, NodeDead, func(cur NodeState) error { return nil })
	if err != nil {
		return err
	}
	s.KillNode(n)
	return nil
}

// transition moves node n to state after check approves the current
// state, persisting the record and bumping the epoch.
func (s *Store) transition(n int, state NodeState, check func(cur NodeState) error) error {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	s.mu.Lock()
	if n < 0 || n >= len(s.members) {
		s.mu.Unlock()
		return fmt.Errorf("store: no node %d", n)
	}
	cur := s.members[n].State
	if err := check(cur); err != nil {
		s.mu.Unlock()
		return err
	}
	if cur == state {
		s.mu.Unlock()
		return nil // idempotent
	}
	epoch := s.epoch.Add(1)
	s.members[n].State = state
	s.members[n].Epoch = epoch
	rec := s.members[n]
	if state == NodeDead {
		s.alive[n] = false
	}
	s.mu.Unlock()
	if err := s.db.Put(nodeKey(n), &rec); err != nil {
		return err
	}
	return s.logState()
}

// promote is transition without the public error contract: used by the
// rebalancer for joining→active and draining→dead. Reports whether the
// state actually changed.
func (s *Store) promote(n int, from, to NodeState) bool {
	changed := false
	err := s.transition(n, to, func(cur NodeState) error {
		if cur != from {
			return errAbortTransition
		}
		changed = true
		return nil
	})
	return err == nil && changed
}

// errAbortTransition backs promote's compare-and-set semantics.
var errAbortTransition = errors.New("store: membership state moved")

// recoverMembers applies the n/ records found at open: the membership
// table may be larger than cfg.Nodes (nodes added before a crash), and
// nodes past the backend's construction size re-register their address
// with a NodeAdder backend so the datapath can reach them again.
func (s *Store) recoverMembers() error {
	var recs []*memberRecord
	it := s.db.Scan(nodePrefix)
	for {
		_, v, ok := it.Next()
		if !ok {
			break
		}
		recs = append(recs, v.(*memberRecord))
	}
	if len(recs) == 0 {
		return nil
	}
	// The plane's scan order is sharded; the NodeAdder registration below
	// must issue ids in node order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Node < recs[j].Node })
	var maxEpoch int64
	na, _ := s.cfg.Backend.(NodeAdder)
	s.mu.Lock()
	for _, m := range recs {
		if m.Node < 0 {
			continue
		}
		for len(s.members) <= m.Node {
			id := len(s.members)
			s.members = append(s.members, memberRecord{Node: id, State: NodeActive})
			s.alive = append(s.alive, true)
		}
		s.members[m.Node] = *m
		if m.State == NodeDead {
			s.alive[m.Node] = false
		}
		if m.Epoch > maxEpoch {
			maxEpoch = m.Epoch
		}
	}
	s.mu.Unlock()
	if s.epoch.Load() < maxEpoch {
		s.epoch.Store(maxEpoch)
	}
	// Re-register recovered nodes the backend was not constructed with —
	// every id in order, dead ones included, so backend ids stay aligned
	// with membership ids. The backend's own count is authoritative when
	// it exposes one: a grown net cluster reopened from the original
	// address list starts short, and the recorded addresses rebuild the
	// tail.
	if na != nil {
		base := s.cfg.Nodes
		if nc, ok := s.cfg.Backend.(interface{ Nodes() int }); ok {
			base = nc.Nodes()
		}
		for _, m := range recs {
			if m.Node < base {
				continue
			}
			got, err := na.AddNode(m.Addr)
			if err != nil {
				if errors.Is(err, errors.ErrUnsupported) {
					break
				}
				return fmt.Errorf("store: re-register node %d: %w", m.Node, err)
			}
			if got != m.Node {
				return fmt.Errorf("store: backend re-registered node %d as %d", m.Node, got)
			}
		}
	}
	return nil
}
