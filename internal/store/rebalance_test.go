package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestRebalanceDrainsLiveNode is the core migration path: a draining
// node's blocks move to placeable peers under the pacing bucket, the
// drain completes (node promoted to dead), every object stays
// byte-exact, and the source replicas are gone from the backend — zero
// orphans.
func TestRebalanceDrainsLiveNode(t *testing.T) {
	be := NewMemBackend()
	s := newTestStore(t, Config{Nodes: 20, BlockSize: 512, Backend: be,
		RebalanceRateBytes: 64 << 20}) // paced, but far from the test's rate
	rng := rand.New(rand.NewSource(7))
	want := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("obj-%d", i)
		want[name] = randBytes(rng, 512*10*2+37)
		if err := s.Put(name, want[name]); err != nil {
			t.Fatal(err)
		}
	}
	const victim = 8
	if s.BlocksPerNode()[victim] == 0 {
		t.Fatal("test needs blocks on the victim")
	}
	if err := s.Decommission(victim); err != nil {
		t.Fatal(err)
	}

	rb := NewRebalancer(s, nil, time.Hour)
	rep := rb.RebalanceOnce()
	if rep.Moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	if rep.Remaining != 0 {
		t.Fatalf("drain incomplete: %d blocks remain", rep.Remaining)
	}
	if rep.Promoted == 0 {
		t.Fatal("completed drain should promote draining→dead")
	}
	if st := s.MemberState(victim); st != NodeDead {
		t.Fatalf("victim state = %s, want dead", st)
	}
	if counts := s.BlocksPerNode(); counts[victim] != 0 {
		t.Fatalf("victim still referenced by %d manifest blocks", counts[victim])
	}
	if n := be.BlockCount(victim); n != 0 {
		t.Fatalf("victim backend still holds %d blocks (orphans)", n)
	}
	for name, data := range want {
		got, info, err := s.Get(name)
		if err != nil {
			t.Fatalf("Get(%s) after drain: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get(%s): payload mismatch after drain", name)
		}
		if info.Degraded {
			t.Fatalf("Get(%s): degraded after a clean drain", name)
		}
	}
	m := s.Metrics()
	if m.RebalancedBlocks != int64(rep.Moved) {
		t.Fatalf("RebalancedBlocks = %d, report moved %d", m.RebalancedBlocks, rep.Moved)
	}
	// A live migration reads exactly what it moves: one block read per
	// moved block, no amplification.
	if m.RebalanceBlocksRead != int64(rep.Moved) {
		t.Fatalf("RebalanceBlocksRead = %d, want %d", m.RebalanceBlocksRead, rep.Moved)
	}
}

// TestRebalanceDrainsDeadNode covers satellite drain-by-repair: the
// victim dies first, then is decommissioned. The rebalancer cannot copy
// from it, so it enqueues presence repairs; once the repair pool drains,
// the next pass finds nothing left and retires the node.
func TestRebalanceDrainsDeadNode(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 20, BlockSize: 512})
	rng := rand.New(rand.NewSource(8))
	want := map[string][]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("obj-%d", i)
		want[name] = randBytes(rng, 512*10+99)
		if err := s.Put(name, want[name]); err != nil {
			t.Fatal(err)
		}
	}
	const victim = 3
	s.KillNode(victim)
	if err := s.Decommission(victim); err != nil {
		t.Fatal(err)
	}

	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	rb := NewRebalancer(s, rm, time.Hour)

	rep := rb.RebalanceOnce()
	if rep.Moved != 0 {
		t.Fatalf("nothing is copyable off a dead node, moved %d", rep.Moved)
	}
	if s.BlocksPerNode()[victim] > 0 && rep.Enqueued == 0 {
		t.Fatal("dead drainer's stripes were not enqueued for repair")
	}
	rm.Drain()

	rep = rb.RebalanceOnce()
	if rep.Remaining != 0 {
		t.Fatalf("drain incomplete after repair: %d blocks remain", rep.Remaining)
	}
	if st := s.MemberState(victim); st != NodeDead {
		t.Fatalf("victim state = %s, want dead", st)
	}
	for name, data := range want {
		got, _, err := s.Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get(%s): payload mismatch", name)
		}
	}
	// The drain went through the repair datapath: with the LRC codec
	// most rebuilds are light (r=5 reads), the paper's locality win.
	m := s.Metrics()
	if m.RepairedBlocks == 0 {
		t.Fatal("dead-node drain should repair blocks")
	}
	if m.RepairsLight == 0 {
		t.Fatal("LRC dead-node drain should use light repairs")
	}
}

// TestRebalanceFillsJoiner checks AddNode + rebalance: the joiner ends
// the pass holding a share of blocks (filled toward the cluster mean,
// never breaking the rack rule), gets promoted to active, and data
// stays byte-exact.
func TestRebalanceFillsJoiner(t *testing.T) {
	be := NewMemBackend()
	s := newTestStore(t, Config{Nodes: 20, BlockSize: 512, Backend: be})
	rng := rand.New(rand.NewSource(9))
	want := map[string][]byte{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("obj-%d", i)
		want[name] = randBytes(rng, 512*10*2+5)
		if err := s.Put(name, want[name]); err != nil {
			t.Fatal(err)
		}
	}
	id, err := s.AddNode("")
	if err != nil {
		t.Fatal(err)
	}

	rb := NewRebalancer(s, nil, time.Hour)
	rep := rb.RebalanceOnce()
	if rep.Moved == 0 {
		t.Fatal("fill moved nothing onto the joiner")
	}
	counts := s.BlocksPerNode()
	if counts[id] == 0 {
		t.Fatal("joiner holds no blocks after the fill")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := (total + len(counts) - 1) / len(counts)
	if counts[id] > mean {
		t.Fatalf("joiner overfilled: %d blocks, mean %d", counts[id], mean)
	}
	if st := s.MemberState(id); st != NodeActive {
		t.Fatalf("joiner state after pass = %s, want active", st)
	}
	if s.Epoch() == 0 {
		t.Fatal("membership changes must bump the epoch")
	}
	for name, data := range want {
		got, _, err := s.Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get(%s): payload mismatch after fill", name)
		}
	}
	// Rack safety held for every fill move: re-verify the strict rule
	// for blocks now on the joiner.
	for name := range want {
		v, _ := s.db.Get(objKey(name))
		obj := v.(*objectInfo)
		for i := range obj.Stripes {
			si := &obj.Stripes[i]
			for pos, nd := range si.Nodes {
				if nd != id {
					continue
				}
				chk := *si
				if !s.placementSafe(&chk, pos, nd) {
					t.Fatalf("%s stripe %d pos %d: fill broke the placement rule", name, i, pos)
				}
			}
		}
	}
}

// TestRebalanceStatusAndNoop: MembershipStatus reflects the topology
// and a pass with nothing to do is a cheap no-op.
func TestRebalanceStatusAndNoop(t *testing.T) {
	s := newTestStore(t, Config{Nodes: 20, BlockSize: 512})
	if err := s.Put("o", make([]byte, 512*10)); err != nil {
		t.Fatal(err)
	}
	rb := NewRebalancer(s, nil, time.Hour)
	if rep := rb.RebalanceOnce(); rep.Stripes != 0 || rep.Moved != 0 {
		t.Fatalf("steady-state pass should not walk: %+v", rep)
	}
	st := s.MembershipStatus()
	if st.Active != 20 || st.Draining != 0 || st.DrainingBlocks != 0 {
		t.Fatalf("steady-state status: %+v", st)
	}
	const victim = 2
	if err := s.Decommission(victim); err != nil {
		t.Fatal(err)
	}
	st = s.MembershipStatus()
	if st.Draining != 1 || st.Active != 19 {
		t.Fatalf("post-decommission status: %+v", st)
	}
	if st.DrainingBlocks != s.BlocksPerNode()[victim] {
		t.Fatalf("DrainingBlocks = %d, want %d", st.DrainingBlocks, s.BlocksPerNode()[victim])
	}
	if st.Epoch != s.Epoch() {
		t.Fatalf("status epoch = %d, store epoch %d", st.Epoch, s.Epoch())
	}
	rb.RebalanceOnce()
	st = s.MembershipStatus()
	if st.Draining != 0 || st.Dead != 1 || st.DrainingBlocks != 0 {
		t.Fatalf("post-drain status: %+v", st)
	}
}

// TestRebalanceSurvivesOverwriteRace: an object overwritten between
// collection and migration must not have stale blocks spliced into its
// new manifest — the move is skipped and nothing orphans.
func TestRebalanceSurvivesOverwriteRace(t *testing.T) {
	be := NewMemBackend()
	s := newTestStore(t, Config{Nodes: 20, BlockSize: 512, Backend: be})
	rng := rand.New(rand.NewSource(10))
	if err := s.Put("obj", randBytes(rng, 512*10)); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	if err := s.Decommission(victim); err != nil {
		t.Fatal(err)
	}
	// Find a block on the victim and race an overwrite against its move
	// by migrating against the stale generation by hand.
	v, _ := s.db.Get(objKey("obj"))
	obj := v.(*objectInfo)
	ref := stripeRef{name: "obj", gen: obj.Gen, idx: 0}
	pos := -1
	for p, nd := range obj.Stripes[0].Nodes {
		if nd == victim {
			pos = p
			break
		}
	}
	want := randBytes(rng, 512*10)
	if err := s.Put("obj", want); err != nil { // new generation
		t.Fatal(err)
	}
	rb := NewRebalancer(s, nil, time.Hour)
	if pos >= 0 {
		if n := rb.migrateOff(ref, pos); n != 0 {
			t.Fatal("migration against a stale generation must be skipped")
		}
	}
	got, _, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("overwrite lost to a stale rebalance")
	}
}
