package store

import (
	"bytes"
	"os"
	"testing"
)

// TestBitRotOnDiskDetectedAndRepaired is the end-to-end bit-rot story on
// a real DirBackend: bytes are flipped inside block files on disk (data
// and parity positions), reads keep serving correct bytes (the CRC frame
// turns rot into a reconstructable miss), the scrubber pins every rotten
// block, and after a repair drain the on-disk files are pristine again.
func TestBitRotOnDiskDetectedAndRepaired(t *testing.T) {
	be, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Backend: be, Nodes: 20, BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	want := patternBytes(t, size)
	if err := s.Put("obj", want); err != nil {
		t.Fatal(err)
	}

	// Rot three blocks of stripe 0 on disk: two data positions and one
	// parity position, each with a single flipped payload byte.
	rotten := []int{0, 5, 12}
	for _, pos := range rotten {
		node, key, err := s.BlockLocation("obj", 0, pos)
		if err != nil {
			t.Fatal(err)
		}
		p := be.Path(node, key)
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x01
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Reads never surface the rot: the data-block damage reconstructs
	// inline and the object stays byte-exact.
	got, info, err := s.Get("obj")
	if err != nil {
		t.Fatalf("get over rotten blocks: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("get served rotten bytes")
	}
	if !info.Degraded {
		t.Fatal("get of a rotten data block was not degraded")
	}
	verify := &bytes.Buffer{}
	if info, err = s.GetWriter("obj", verify); err != nil {
		t.Fatalf("streaming get over rotten blocks: %v", err)
	}
	if !bytes.Equal(verify.Bytes(), want) {
		t.Fatal("GetWriter served rotten bytes")
	}
	if !info.Degraded {
		t.Fatal("streaming get of a rotten data block was not degraded")
	}

	// The scrub walk pins all three (parity included — Get alone would
	// never have touched position 12), and the drain rewrites them.
	rm := NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	scr := NewScrubber(s, rm, 0)
	rep := scr.ScrubOnce()
	if rep.Corrupt < len(rotten) {
		t.Fatalf("scrub found %d corrupt blocks, want at least %d", rep.Corrupt, len(rotten))
	}
	rm.Drain()

	// On disk, every previously rotten file now carries a valid frame,
	// and a fresh scrub is clean.
	for _, pos := range rotten {
		node, key, err := s.BlockLocation("obj", 0, pos)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(be.Path(node, key))
		if err != nil {
			t.Fatalf("repaired block %d unreadable: %v", pos, err)
		}
		if _, err := UnframeBlock(raw); err != nil {
			t.Fatalf("repaired block %d still fails its CRC: %v", pos, err)
		}
	}
	rep = scr.ScrubOnce()
	rm.Drain()
	if rep.Missing != 0 || rep.Corrupt != 0 {
		t.Fatalf("scrub after repair still sees %d missing / %d corrupt", rep.Missing, rep.Corrupt)
	}

	// And the read path is clean again.
	got, info, err = s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) || info.Degraded {
		t.Fatalf("post-repair read: equal=%v degraded=%v", bytes.Equal(got, want), info.Degraded)
	}
}
