package store

import (
	"sync"
	"time"
)

// byteRate is a token-bucket byte limiter pacing the background
// datapaths: the paper bounds the BlockFixer's load so repair traffic
// never starves foreground reads, and the scrubber's integrity walk gets
// the same treatment. Charging happens *after* each backend read with the
// actual byte count (a debt model): a block larger than the burst is
// still admitted and the bucket simply goes negative, so the long-run
// average converges on the configured budget regardless of block size.
//
// A nil *byteRate is valid and means unlimited — the zero-config fast
// path costs one pointer test.
type byteRate struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // token cap; also the max accumulated idle credit
	tokens float64
	last   time.Time
}

// newByteRate builds a limiter for the given budget, nil when the budget
// is unlimited (≤ 0). The burst is kept small relative to the rate
// (1/16 s of budget, floored at one typical block frame) so a paced run's
// measured rate stays within a few percent of the configured one even
// over short windows.
func newByteRate(bytesPerSec int64) *byteRate {
	if bytesPerSec <= 0 {
		return nil
	}
	burst := float64(bytesPerSec) / 16
	if burst < 128<<10 {
		burst = 128 << 10
	}
	return &byteRate{rate: float64(bytesPerSec), burst: burst, last: time.Now()}
}

// refillLocked credits tokens for the time since the last charge. Call
// with b.mu held.
func (b *byteRate) refillLocked(now time.Time) {
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// admit is the non-blocking admission check: when the bucket is out of
// debt, n bytes are charged (the bucket may go negative — the debt model
// admits an object larger than the burst) and ok is true; when the
// bucket is still paying off earlier debt, nothing is charged and wait
// reports how long until it breaks even. The gateway turns a false into
// 429 + Retry-After instead of queueing the client.
func (b *byteRate) admit(n int64) (wait time.Duration, ok bool) {
	if b == nil || n < 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if b.tokens < 0 {
		return time.Duration(-b.tokens / b.rate * float64(time.Second)), false
	}
	b.tokens -= float64(n)
	return 0, true
}

// charge debits n bytes without ever sleeping — post-hoc accounting for
// flows whose size is only known after the fact (a chunked HTTP upload).
// The debt shows up in the next admit.
func (b *byteRate) charge(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.tokens -= float64(n)
	b.mu.Unlock()
}

// take charges n bytes against the bucket, sleeping off any debt. Safe
// for concurrent use; concurrent workers share one budget.
func (b *byteRate) take(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.tokens -= float64(n)
	var wait time.Duration
	if b.tokens < 0 {
		wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	}
	b.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Limiter is the exported face of the token bucket: the same pacing
// machinery the background datapaths run on (byteRate), reusable as
// foreground QoS — the gateway gives each tenant one and rejects instead
// of queueing when the bucket is in debt. A nil *Limiter (or one built
// with budget ≤ 0) is valid and means unlimited.
type Limiter struct {
	b *byteRate
}

// NewLimiter builds a byte-rate limiter for the given budget in bytes
// per second; ≤ 0 means unlimited.
func NewLimiter(bytesPerSec int64) *Limiter {
	return &Limiter{b: newByteRate(bytesPerSec)}
}

// Admit is the non-blocking admission check: ok=true means n bytes were
// charged (the bucket may run into debt — a single large object is
// admitted whole); ok=false means the bucket is still paying off earlier
// debt, nothing was charged, and wait estimates how long until it breaks
// even (the Retry-After hint).
func (l *Limiter) Admit(n int64) (wait time.Duration, ok bool) {
	if l == nil {
		return 0, true
	}
	return l.b.admit(n)
}

// Charge debits n bytes without sleeping — accounting for flows whose
// size is only known after the fact. The debt surfaces in the next Admit.
func (l *Limiter) Charge(n int64) {
	if l == nil {
		return
	}
	l.b.charge(n)
}

// Take charges n bytes and sleeps off any debt — the blocking discipline
// the background datapaths use.
func (l *Limiter) Take(n int64) {
	if l == nil {
		return
	}
	l.b.take(n)
}
