package store

import (
	"sync"
	"time"
)

// byteRate is a token-bucket byte limiter pacing the background
// datapaths: the paper bounds the BlockFixer's load so repair traffic
// never starves foreground reads, and the scrubber's integrity walk gets
// the same treatment. Charging happens *after* each backend read with the
// actual byte count (a debt model): a block larger than the burst is
// still admitted and the bucket simply goes negative, so the long-run
// average converges on the configured budget regardless of block size.
//
// A nil *byteRate is valid and means unlimited — the zero-config fast
// path costs one pointer test.
type byteRate struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // token cap; also the max accumulated idle credit
	tokens float64
	last   time.Time
}

// newByteRate builds a limiter for the given budget, nil when the budget
// is unlimited (≤ 0). The burst is kept small relative to the rate
// (1/16 s of budget, floored at one typical block frame) so a paced run's
// measured rate stays within a few percent of the configured one even
// over short windows.
func newByteRate(bytesPerSec int64) *byteRate {
	if bytesPerSec <= 0 {
		return nil
	}
	burst := float64(bytesPerSec) / 16
	if burst < 128<<10 {
		burst = 128 << 10
	}
	return &byteRate{rate: float64(bytesPerSec), burst: burst, last: time.Now()}
}

// take charges n bytes against the bucket, sleeping off any debt. Safe
// for concurrent use; concurrent workers share one budget.
func (b *byteRate) take(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	var wait time.Duration
	if b.tokens < 0 {
		wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	}
	b.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
