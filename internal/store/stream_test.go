package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/pattern"
)

func TestStreamRoundTrip(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 128})
	rng := rand.New(rand.NewSource(21))
	k := s.Codec().K()
	sizes := []int{0, 1, 17, 127, 128, 128 * k, 128*k + 1, 3*128*k - 5}
	for _, n := range sizes {
		name := fmt.Sprintf("stream-%d", n)
		want := randBytes(rng, n)
		if err := s.PutReader(name, bytes.NewReader(want)); err != nil {
			t.Fatalf("PutReader(%d bytes): %v", n, err)
		}
		var buf bytes.Buffer
		info, err := s.GetWriter(name, &buf)
		if err != nil {
			t.Fatalf("GetWriter(%d bytes): %v", n, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("GetWriter(%d bytes): payload mismatch", n)
		}
		if info.Degraded {
			t.Fatalf("GetWriter(%d bytes): unexpectedly degraded", n)
		}
		if info.BytesWritten != int64(n) {
			t.Fatalf("GetWriter(%d bytes): BytesWritten = %d", n, info.BytesWritten)
		}
		// The buffered wrappers see the same bytes.
		got, _, err := s.Get(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d bytes) after PutReader: err %v", n, err)
		}
	}
}

// TestStreamingDegradedLightReads pins the acceptance criterion: a
// streaming Get over a single-loss stripe still takes the light local
// decode, whose 5-block read set shares 4 members with the data blocks
// already in hand — exactly one extra fetch beyond the k data reads.
func TestStreamingDegradedLightReads(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 256})
	rng := rand.New(rand.NewSource(22))
	const stripes = 4
	want := randBytes(rng, 256*10*stripes)
	if err := s.PutReader("x", bytes.NewReader(want)); err != nil {
		t.Fatal(err)
	}
	node, key, err := s.BlockLocation("x", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Backend().(*MemBackend).Delete(node, key); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	info, err := s.GetWriter("x", &buf)
	if err != nil || !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("degraded GetWriter: err %v", err)
	}
	if !info.Degraded || info.LightRepairs != 1 || info.HeavyRepairs != 0 {
		t.Fatalf("info = %+v, want one light repair", info)
	}
	// 10 data reads per clean stripe, 9 on the damaged one, plus the one
	// group member of the 5-block light set not already held.
	if want := int64(stripes * 10); info.BlocksRead != want {
		t.Fatalf("read %d blocks, want %d (light set adds exactly one fetch)", info.BlocksRead, want)
	}
}

// failingReader errors after yielding n bytes.
type failingReader struct {
	n   int
	err error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	n := len(p)
	if n > f.n {
		n = f.n
	}
	f.n -= n
	return n, nil
}

func TestPutReaderMidStreamFailureRollsBack(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 64})
	boom := errors.New("disk on fire")
	// Enough for a few stripes before the reader dies.
	err := s.PutReader("doomed", &failingReader{n: 64 * 10 * 3, err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("PutReader: err %v, want %v", err, boom)
	}
	if _, _, err := s.Get("doomed"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("Get after failed PutReader: err %v, want ErrObjectNotFound", err)
	}
	mb := s.Backend().(*MemBackend)
	for n := 0; n < s.Nodes(); n++ {
		if c := mb.BlockCount(n); c != 0 {
			t.Fatalf("node %d holds %d orphaned blocks after rollback", n, c)
		}
	}
}

// failAfterWriter fails every write past a byte budget — the
// cannot-rewind half of GetWriter's contract.
type failAfterWriter struct {
	budget int
	err    error
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > f.budget {
		n := f.budget
		f.budget = 0
		return n, f.err
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestGetWriterPropagatesWriterError(t *testing.T) {
	s := newTestStore(t, Config{BlockSize: 64})
	rng := rand.New(rand.NewSource(23))
	if err := s.PutReader("w", bytes.NewReader(randBytes(rng, 64*10*2))); err != nil {
		t.Fatal(err)
	}
	sink := errors.New("pipe closed")
	if _, err := s.GetWriter("w", &failAfterWriter{budget: 100, err: sink}); !errors.Is(err, sink) {
		t.Fatalf("GetWriter: err %v, want %v", err, sink)
	}
}

func TestGetWriterNotFound(t *testing.T) {
	s := newTestStore(t, Config{})
	if _, err := s.GetWriter("ghost", io.Discard); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("GetWriter of missing object: err %v", err)
	}
}

// TestStreamingBoundedMemory is the tentpole's acceptance test: a
// 256 MiB object round-trips through PutReader/GetWriter on a disk
// backend while the heap footprint stays bounded by stripes, far under
// the object size. HeapSys only grows, so its delta is a high-water
// proxy; HeapAlloc after a forced GC is the retained live set.
func TestStreamingBoundedMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates the heap; run without -race")
	}
	if testing.Short() {
		t.Skip("256 MiB round trip; skipped with -short")
	}
	const objectSize = 256 << 20
	be, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, Config{Backend: be, BlockSize: 1 << 20}) // 10 MiB stripes
	var before, afterPut, afterGet runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	if err := s.PutReader("big", pattern.NewReader(objectSize)); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&afterPut)
	if grew := int64(afterPut.HeapSys - before.HeapSys); grew > objectSize/2 {
		t.Fatalf("PutReader heap footprint grew %d MiB for a %d MiB object; not stripe-bounded", grew>>20, objectSize>>20)
	}

	v := &pattern.Verifier{}
	info, err := s.GetWriter("big", v)
	if err != nil {
		t.Fatal(err)
	}
	if v.Err != nil {
		t.Fatalf("round-trip bytes diverge: %v", v.Err)
	}
	if v.N != objectSize {
		t.Fatalf("GetWriter streamed %d bytes, want %d", v.N, objectSize)
	}
	if info.Degraded {
		t.Fatalf("clean read reported degraded: %+v", info)
	}
	if info.BytesRead < objectSize {
		t.Fatalf("read %d bytes for a %d-byte object", info.BytesRead, objectSize)
	}
	runtime.GC()
	runtime.ReadMemStats(&afterGet)
	if grew := int64(afterGet.HeapSys - before.HeapSys); grew > objectSize/2 {
		t.Fatalf("GetWriter heap footprint grew %d MiB for a %d MiB object; not stripe-bounded", grew>>20, objectSize>>20)
	}
	if retained := int64(afterGet.HeapAlloc) - int64(before.HeapAlloc); retained > 64<<20 {
		t.Fatalf("round trip retained %d MiB live heap", retained>>20)
	}
}

// TestPipelinedEngineConcurrentRace hammers the pipelined streaming
// engine from all sides at once: concurrent PutReader overwrites of the
// same object, GetWriter streams verifying the bytes, and a node
// kill/revive loop forcing degraded stripes mid-stream. Every version of
// the object carries the identical pattern payload, so any successful
// read must verify bit-exactly regardless of which version it pinned.
// Run under -race this also pins the engine's goroutine handoffs (double
// buffering, write pool, prefetch, version pins).
func TestPipelinedEngineConcurrentRace(t *testing.T) {
	const size = 64 * 10 * 4 // four stripes
	s := newTestStore(t, Config{Nodes: 24, Racks: 8, BlockSize: 64})
	if err := s.PutReader("obj", pattern.NewReader(size)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.PutReader("obj", pattern.NewReader(size)); err != nil {
					t.Errorf("PutReader under churn: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := &pattern.Verifier{}
				if _, err := s.GetWriter("obj", v); err != nil {
					t.Errorf("GetWriter under churn: %v", err)
					return
				}
				if v.Err != nil || v.N != size {
					t.Errorf("GetWriter bytes diverge: n=%d err=%v", v.N, v.Err)
					return
				}
			}
		}()
	}
	killRng := rand.New(rand.NewSource(77))
	for i := 0; i < 25; i++ {
		n := killRng.Intn(s.Nodes())
		s.KillNode(n)
		time.Sleep(time.Millisecond)
		s.ReviveNode(n)
	}
	close(stop)
	wg.Wait()
	// The store must settle to a clean, correct object.
	v := &pattern.Verifier{}
	if _, err := s.GetWriter("obj", v); err != nil || v.Err != nil || v.N != size {
		t.Fatalf("final GetWriter: err=%v verr=%v n=%d", err, v.Err, v.N)
	}
}
