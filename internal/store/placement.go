package store

// Rack-aware placement. HDFS-Xorbas places the 16 blocks of a stripe so
// that no two blocks of one repair group share a rack (mirroring
// repro/internal/cluster's topology: rack = node mod racks): a whole-rack
// loss then costs each group at most one block, which the light decoder
// repairs from r=5 reads. When the topology is too small for the strict
// rule the placer degrades gracefully: distinct nodes per stripe, then
// distinct nodes per repair group, then any live node.

// placer assigns stripe positions to nodes. The node count is not baked
// in: every method takes the eligible-node vector, whose length is the
// topology of record (elastic membership grows it at runtime).
type placer struct {
	racks int
	// groupOf[pos] is the repair-group id of stripe position pos, or -1
	// when the codec has no local structure (RS): each position is then
	// its own group and only node/stripe-level spreading applies.
	groupOf []int
	nStored int
}

func newPlacer(codec Codec, racks int) *placer {
	p := &placer{racks: racks, nStored: codec.NStored()}
	p.groupOf = make([]int, p.nStored)
	for i := range p.groupOf {
		p.groupOf[i] = -1
	}
	for gi, members := range codec.RepairGroups() {
		for _, m := range members {
			p.groupOf[m] = gi
		}
	}
	return p
}

// rackOf mirrors cluster.New's round-robin rack assignment.
func (p *placer) rackOf(node int) int { return node % p.racks }

// place assigns every stripe position to a live node. stripeSeq rotates
// the scan start so load spreads across stripes. alive is the eligible
// set — its length is the topology of record (membership may have grown
// it past the construction-time node count); at least one entry must be
// true.
func (p *placer) place(stripeSeq int, alive []bool) []int {
	assigned := make([]int, p.nStored)
	usedNode := make(map[int]bool, p.nStored)
	// groupRacks[g] marks racks already holding a block of group g;
	// groupNodes[g] likewise for nodes.
	groupRacks := make(map[int]map[int]bool)
	groupNodes := make(map[int]map[int]bool)
	for pos := 0; pos < p.nStored; pos++ {
		assigned[pos] = p.pick(stripeSeq, pos, alive, usedNode, groupRacks, groupNodes)
	}
	return assigned
}

// pickReplacement chooses a node for one rebuilt block given the rest of
// the stripe's current assignment (nodes[pos] == -1 for the slot being
// re-placed; dead-node slots should also be -1 so their racks don't
// constrain the choice).
func (p *placer) pickReplacement(stripeSeq, pos int, nodes []int, alive []bool) int {
	usedNode := make(map[int]bool)
	groupRacks := make(map[int]map[int]bool)
	groupNodes := make(map[int]map[int]bool)
	for q, n := range nodes {
		if q == pos || n < 0 {
			continue
		}
		usedNode[n] = true
		if g := p.groupOf[q]; g >= 0 {
			markGroup(groupRacks, g, p.rackOf(n))
			markGroup(groupNodes, g, n)
		}
	}
	return p.pick(stripeSeq, pos, alive, usedNode, groupRacks, groupNodes)
}

func markGroup(m map[int]map[int]bool, g, v int) {
	if m[g] == nil {
		m[g] = make(map[int]bool)
	}
	m[g][v] = true
}

// pick scans live nodes from a rotating offset, at relaxation level 0
// requiring (fresh node for the stripe) ∧ (fresh rack for the group),
// then dropping the rack rule (fresh node for the stripe), then the
// stripe rule too (fresh node for the group — a node loss still costs
// each group at most one block), and finally accepting any live node.
func (p *placer) pick(stripeSeq, pos int, alive []bool, usedNode map[int]bool, groupRacks, groupNodes map[int]map[int]bool) int {
	g := p.groupOf[pos]
	// len(alive), not the construction-time count: elastic membership
	// grows the node set after the placer is built.
	nn := len(alive)
	if nn == 0 {
		return -1
	}
	start := (stripeSeq*p.nStored + pos) % nn
	for relax := 0; ; relax++ {
		for off := 0; off < nn; off++ {
			n := (start + off) % nn
			if !alive[n] {
				continue
			}
			switch relax {
			case 0:
				if usedNode[n] || (g >= 0 && groupRacks[g][p.rackOf(n)]) {
					continue
				}
			case 1:
				if usedNode[n] {
					continue
				}
			case 2:
				if g >= 0 && groupNodes[g][n] {
					continue
				}
			}
			usedNode[n] = true
			if g >= 0 {
				markGroup(groupRacks, g, p.rackOf(n))
				markGroup(groupNodes, g, n)
			}
			return n
		}
		if relax >= 3 {
			return -1 // no live node at all; callers guard against this
		}
	}
}
