package store

import (
	"fmt"
	"io"
)

// GetRange streams bytes [off, off+length) of an object to w, with
// length < 0 meaning "to the end". Only the stripes the range overlaps
// are visited and, within each, only the data blocks the range covers
// are read (reconstructed when missing or corrupt, exactly like a full
// read) — a small range on a large object costs its covering blocks,
// not the object. The serving tier's Range: requests ride on this.
//
// off outside [0, size] returns ErrBadRange; length past the end is
// clamped. Like GetWriter, a failed attempt retries with a fresh
// manifest snapshot while nothing has been written to w; once bytes are
// out a failure is final.
func (s *Store) GetRange(name string, off, length int64, w io.Writer) (ReadInfo, error) {
	cw := &countingWriter{w: w}
	for attempt := 0; ; attempt++ {
		gen0, muts0, _ := s.versionState(name)
		info, gen, err := s.streamRangeVersion(name, off, length, cw)
		info.BytesWritten = cw.n
		if err == nil || attempt >= 8 || cw.n > 0 {
			return info, err
		}
		curGen, curMuts, found := s.versionState(name)
		if !found {
			return info, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
		}
		if curGen == gen && curGen == gen0 && curMuts == muts0 {
			return info, err
		}
	}
}

// rangeSeg is one stripe's overlap with a requested range: the stripe
// index, the byte window [lo, hi) within the stripe's data, and the
// covering block positions [pLo, pHi].
type rangeSeg struct {
	idx      int
	lo, hi   int
	pLo, pHi int
}

// streamRangeVersion performs one ranged read attempt against the
// object version current at entry, returning that version's generation.
// Same pipeline shape as streamVersion — while segment i drains to w,
// segment i+1 is already fetching into the other scratch slice — but
// each fetch covers only the blocks its byte window needs.
func (s *Store) streamRangeVersion(name string, off, length int64, w io.Writer) (ReadInfo, int64, error) {
	stripes, gen, ok := s.manifestSnapshot(name)
	if !ok {
		return ReadInfo{}, 0, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	defer s.unpin(name, gen)
	var size int64
	for i := range stripes {
		size += int64(stripes[i].DataLen)
	}
	if off < 0 || off > size {
		return ReadInfo{}, gen, fmt.Errorf("%w: offset %d of %d-byte object %q", ErrBadRange, off, size, name)
	}
	if length < 0 || off+length > size {
		length = size - off
	}
	if length == 0 {
		// Empty window — an explicit zero length, or off == size. The
		// segment mapping below would also come up empty, but an explicit
		// gate keeps "no bytes wanted, no backend reads" an invariant
		// rather than a side effect of the loop bounds.
		return ReadInfo{}, gen, nil
	}
	end := off + length
	// Map the byte range onto stripe segments: [lo, hi) within each
	// overlapping stripe, and the block positions covering that window.
	var segs []rangeSeg
	base := int64(0)
	for i := range stripes {
		dl := int64(stripes[i].DataLen)
		if base+dl <= off {
			base += dl
			continue
		}
		if base >= end {
			break
		}
		lo, hi := int64(0), dl
		if off > base {
			lo = off - base
		}
		if end < base+dl {
			hi = end - base
		}
		if hi > lo {
			bl := int64(stripes[i].BlockLen)
			segs = append(segs, rangeSeg{
				idx: i,
				lo:  int(lo), hi: int(hi),
				pLo: int(lo / bl), pHi: int((hi - 1) / bl),
			})
		}
		base += dl
	}
	n := s.cfg.Codec.NStored()
	acct := &readAcct{}
	scratch := [2][][]byte{make([][]byte, n), make([][]byte, n)}
	startFetch := func(i int) chan fetchResult {
		ch := make(chan fetchResult, 1)
		go func() {
			ch <- s.fetchStripe(&stripes[segs[i].idx], scratch[i%2], segs[i].pLo, segs[i].pHi)
		}()
		return ch
	}
	var pending chan fetchResult
	if len(segs) > 0 {
		pending = startFetch(0)
	}
	for i := range segs {
		res := <-pending
		pending = nil
		acct.add(&res.acct)
		if res.err != nil {
			res.release(s.cache)
			s.m.mergeRead(acct)
			return acct.info(), gen, fmt.Errorf("store: degraded read of %q stripe %d: %w", name, segs[i].idx, res.err)
		}
		if i+1 < len(segs) {
			pending = startFetch(i + 1)
		}
		seg := &segs[i]
		bl := stripes[seg.idx].BlockLen
		for pos := seg.pLo; pos <= seg.pHi; pos++ {
			part := res.stripe[pos]
			// Trim the block's payload to the stripe's data (short final
			// stripe) and then to the segment's byte window.
			blockLo, blockHi := pos*bl, (pos+1)*bl
			if blockHi > seg.hi {
				blockHi = seg.hi
			}
			cutLo := 0
			if seg.lo > blockLo {
				cutLo = seg.lo - blockLo
			}
			if blockHi <= blockLo+cutLo {
				continue
			}
			part = part[cutLo : blockHi-blockLo]
			if _, err := w.Write(part); err != nil {
				res.release(s.cache)
				if pending != nil {
					// Join the prefetch; its reads are uncharged on this
					// failure path, but its cache pins still release.
					p := <-pending
					p.release(s.cache)
				}
				s.m.mergeRead(acct)
				return acct.info(), gen, fmt.Errorf("store: write object %q: %w", name, err)
			}
		}
		res.release(s.cache)
	}
	s.m.mergeRead(acct)
	return acct.info(), gen, nil
}
