package netblock

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Client's store.BlockStreamer implementation: whole framed blocks move
// as a sequence of bounded windows, so a paper-scale 256 MB block never
// needs a single wire frame (or a deadline sized for one). Reads are
// stateless — every window is an independent opReadChunk request, so
// the usual retry/breaker machinery applies per window. Writes stage on
// one pinned connection (opWriteBegin/Chunk/Commit) and commit
// atomically at the server; a connection lost mid-upload discards the
// stage, never leaving a torn block.

// ReadBlockTo streams the block's bytes into w, returning how many were
// written. A block replaced mid-stream is detected by its size change
// where possible; same-size replacement is the caller's CRC check to
// catch (every store block is CRC-framed).
func (c *Client) ReadBlockTo(node int, key string, w io.Writer) (int64, error) {
	var written int64
	var offset, total uint64
	first := true
	maxLen := uint32(c.opts.ChunkSize)
	req := make([]byte, 0, chunkReqLen)
	for {
		body, err := c.do(node, opReadChunk, key, appendChunkReq(req[:0], offset, maxLen))
		if err != nil {
			return written, err
		}
		if len(body) < chunkRespHdrLen {
			return written, fmt.Errorf("netblock: node %d: short chunk response (%d bytes)", node, len(body))
		}
		t := binary.LittleEndian.Uint64(body)
		window := body[chunkRespHdrLen:]
		if first {
			total, first = t, false
		} else if t != total {
			return written, fmt.Errorf("netblock: node %d: block %q resized mid-stream (%d to %d bytes)", node, key, total, t)
		}
		if len(window) > 0 {
			m, werr := w.Write(window)
			written += int64(m)
			if werr != nil {
				return written, werr
			}
		}
		offset += uint64(len(window))
		if offset >= total {
			return written, nil
		}
		if len(window) == 0 {
			return written, fmt.Errorf("netblock: node %d: no progress at offset %d of %d", node, offset, total)
		}
	}
}

// WriteBlockFrom streams r into the block, committing atomically at the
// server. The upload pins one connection for its whole life: a stale
// pooled socket failing the opening handshake is retried on a fresh
// dial (no bytes of r consumed yet), but a failure mid-stream fails the
// upload — the caller retries the whole block, the discarded stage
// costs the server nothing.
func (c *Client) WriteBlockFrom(node int, key string, r io.Reader) (int64, error) {
	n, err := c.node(node)
	if err != nil {
		return 0, err
	}
	if len(key) > maxKeyLen {
		return 0, fmt.Errorf("netblock: key length %d exceeds limit %d", len(key), maxKeyLen)
	}
	probe, err := n.health.allow()
	if err != nil {
		return 0, fmt.Errorf("netblock: node %d: %w", node, err)
	}
	if probe {
		if err := c.attempt(n, node, opPing, "", nil); err != nil {
			return 0, fmt.Errorf("netblock: node %d failed half-open probe: %w", node, err)
		}
	}
	conn, addr, err := c.beginUpload(n, node, key)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, c.opts.ChunkSize)
	var total int64
	for {
		m, rdErr := r.Read(buf)
		if m > 0 {
			if err := c.uploadStep(n, conn, opWriteChunk, node, key, buf[:m]); err != nil {
				conn.Close() // the conn carries the stage; drop both
				return total, err
			}
			total += int64(m)
		}
		if rdErr == io.EOF {
			break
		}
		if rdErr != nil {
			conn.Close()
			return total, rdErr
		}
	}
	if err := c.uploadStep(n, conn, opWriteCommit, node, key, nil); err != nil {
		conn.Close()
		return total, err
	}
	c.putConn(n, conn, addr)
	return total, nil
}

// beginUpload opens the staged upload on a connection the caller then
// pins. Failures on pooled connections retry silently (the socket may
// simply have outlived the server process); the first freshly dialed
// attempt is definitive.
func (c *Client) beginUpload(n *clientNode, node int, key string) (net.Conn, string, error) {
	for {
		conn, addr, pooled, err := c.getConn(n)
		if err != nil {
			n.health.record(false, 0, err)
			return nil, "", err
		}
		start := time.Now()
		status, body, rerr := c.roundTrip(n, conn, opWriteBegin, node, key, nil)
		if rerr != nil {
			conn.Close()
			if pooled {
				continue
			}
			n.health.record(false, time.Since(start), rerr)
			return nil, "", rerr
		}
		n.health.record(true, time.Since(start), nil)
		if status != statusOK {
			conn.Close()
			return nil, "", fmt.Errorf("netblock: node %d: remote error: %s", node, body)
		}
		return conn, addr, nil
	}
}

// uploadStep runs one op of a pinned upload, translating a non-OK
// status into an error. Transport failures are terminal for the upload
// (the stage lives on the connection), so no retry happens here.
func (c *Client) uploadStep(n *clientNode, conn net.Conn, op byte, node int, key string, data []byte) error {
	status, body, err := c.roundTrip(n, conn, op, node, key, data)
	if err != nil {
		n.health.record(false, 0, err)
		return err
	}
	if status != statusOK {
		return fmt.Errorf("netblock: node %d: remote error: %s", node, body)
	}
	return nil
}
