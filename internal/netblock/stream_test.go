package netblock

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/store"
)

// TestStreamRoundTrip moves a block through the chunked ops with a
// window far smaller than the block, so both directions take many
// windows: WriteBlockFrom stages and commits, ReadBlockTo reassembles
// byte-exactly, and the plain ops see the same bytes (one protocol, two
// framings).
func TestStreamRoundTrip(t *testing.T) {
	be := store.NewMemBackend()
	_, addr := startServer(t, be)
	c, err := Dial([]string{addr}, Options{
		DialTimeout: time.Second, Timeout: 5 * time.Second, ChunkSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	rng := rand.New(rand.NewSource(42))
	payload := make([]byte, 10*1024+37) // 11 windows at 1 KiB
	rng.Read(payload)
	frame := store.FrameBlock(payload)

	nw, err := c.WriteBlockFrom(0, "big.g000001.s00000.b00", bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("WriteBlockFrom: %v", err)
	}
	if nw != int64(len(frame)) {
		t.Fatalf("WriteBlockFrom wrote %d bytes, want %d", nw, len(frame))
	}

	// The committed block is the whole frame, visible to a plain read.
	got, err := c.Read(0, "big.g000001.s00000.b00")
	if err != nil {
		t.Fatalf("Read after streamed write: %v", err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("streamed write and plain read disagree")
	}

	var buf bytes.Buffer
	nr, err := c.ReadBlockTo(0, "big.g000001.s00000.b00", &buf)
	if err != nil {
		t.Fatalf("ReadBlockTo: %v", err)
	}
	if nr != int64(len(frame)) || !bytes.Equal(buf.Bytes(), frame) {
		t.Fatalf("ReadBlockTo returned %d bytes, mismatch=%v", nr, !bytes.Equal(buf.Bytes(), frame))
	}
	if p, err := store.UnframeBlock(buf.Bytes()); err != nil || !bytes.Equal(p, payload) {
		t.Fatalf("streamed frame does not unframe: %v", err)
	}

	// An empty block streams too (total=0, one window).
	if _, err := c.WriteBlockFrom(0, "empty.g000001.s00000.b00", bytes.NewReader(nil)); err != nil {
		t.Fatalf("empty WriteBlockFrom: %v", err)
	}
	buf.Reset()
	if n, err := c.ReadBlockTo(0, "empty.g000001.s00000.b00", &buf); err != nil || n != 0 {
		t.Fatalf("empty ReadBlockTo: n=%d err=%v", n, err)
	}
}

// TestStreamReadNotFound maps a missing block onto the store's
// sentinel, same as the plain read path.
func TestStreamReadNotFound(t *testing.T) {
	_, addr := startServer(t, store.NewMemBackend())
	c := dialTest(t, addr)
	var buf bytes.Buffer
	_, err := c.ReadBlockTo(0, "missing.g000001.s00000.b00", &buf)
	if !errors.Is(err, store.ErrBlockNotFound) {
		t.Fatalf("want ErrBlockNotFound, got %v", err)
	}
}

// TestStreamAbandonedUploadInvisible: chunks without a commit must
// never reach the backend — the stage dies with the connection.
func TestStreamAbandonedUploadInvisible(t *testing.T) {
	be := store.NewMemBackend()
	_, addr := startServer(t, be)
	c, err := Dial([]string{addr}, Options{
		DialTimeout: time.Second, Timeout: 5 * time.Second, ChunkSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A reader that fails mid-stream abandons the upload.
	r := &failingReader{data: make([]byte, 2048), failAt: 1500}
	if _, err := c.WriteBlockFrom(0, "torn.g000001.s00000.b00", r); err == nil {
		t.Fatal("upload should fail with the reader")
	}
	c.Close()
	if _, err := be.Read(0, "torn.g000001.s00000.b00"); !errors.Is(err, store.ErrBlockNotFound) {
		t.Fatalf("abandoned upload reached the backend: %v", err)
	}
}

// failingReader yields its data then an error at failAt bytes.
type failingReader struct {
	data   []byte
	off    int
	failAt int
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.off >= f.failAt {
		return 0, errors.New("disk read error")
	}
	n := copy(p, f.data[f.off:])
	if f.off+n > f.failAt {
		n = f.failAt - f.off
	}
	f.off += n
	return n, nil
}

// TestClientAddNode grows the client at runtime: the new id is the old
// count, traffic reaches the new server, and an address-less node fails
// cleanly until SetNode repoints it.
func TestClientAddNode(t *testing.T) {
	be0 := store.NewMemBackend()
	_, addr0 := startServer(t, be0)
	c := dialTest(t, addr0)
	if n := c.Nodes(); n != 1 {
		t.Fatalf("Nodes() = %d, want 1", n)
	}

	be1 := store.NewMemBackend()
	_, addr1 := startServer(t, be1)
	id, err := c.AddNode(addr1)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || c.Nodes() != 2 {
		t.Fatalf("AddNode id=%d Nodes()=%d, want 1 and 2", id, c.Nodes())
	}
	frame := store.FrameBlock([]byte("on the new node"))
	if err := c.Write(id, "k.g000001.s00000.b00", frame); err != nil {
		t.Fatalf("write to added node: %v", err)
	}
	if _, err := be1.Read(1, "k.g000001.s00000.b00"); err != nil {
		t.Fatalf("added node's backend never saw the block: %v", err)
	}

	// Address-less registration (recovery's id alignment) fails fast
	// but doesn't poison the client.
	id2, err := c.AddNode("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(id2); err == nil {
		t.Fatal("ping of an address-less node should fail")
	}
	be2 := store.NewMemBackend()
	_, addr2 := startServer(t, be2)
	if err := c.SetNode(id2, addr2); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(id2); err != nil {
		t.Fatalf("ping after SetNode: %v", err)
	}
	if sent, _ := c.WireTraffic(); len(sent) != 3 {
		t.Fatalf("WireTraffic spans %d nodes, want 3", len(sent))
	}
	if hs := c.NodeHealth(); len(hs) != 3 {
		t.Fatalf("NodeHealth spans %d nodes, want 3", len(hs))
	}
}
