package netblock

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/store"
)

// Server exposes a store.Backend over TCP. One server is one node
// process in a real cluster: the CLI's `xorbasctl node serve` wraps a
// DirBackend in one of these, and examples/netcluster boots a fleet of
// them on loopback. The node id travels in each request and is passed
// through to the backend unchanged, so a server's on-disk layout matches
// the in-process DirBackend layout exactly.
type Server struct {
	be store.Backend
	// ow is be's owned-write fast path when it has one: a request's
	// decode buffer is uniquely owned per request, so it can be handed
	// to the backend without the defensive copy Write implies.
	ow store.OwnedWriter
	// Logf, when non-nil, receives per-connection errors (protocol
	// violations, IO failures). The zero value drops them: a killed
	// client is business as usual for a block server.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server for be; call ListenAndServe or Serve to
// start it.
func NewServer(be store.Backend) *Server {
	s := &Server{be: be, conns: make(map[net.Conn]struct{})}
	s.ow, _ = be.(store.OwnedWriter)
	return s
}

// Serve wraps NewServer(be).Serve(l) for the one-liner case. It blocks
// until the listener fails or is closed.
func Serve(l net.Listener, be store.Backend) error {
	return NewServer(be).Serve(l)
}

// StartLocal boots a server for be on an ephemeral loopback port,
// serving in a background goroutine, and returns it with its dialable
// address — the one-liner behind every in-process cluster (tests,
// benchmarks, examples). Stop it with Close.
func StartLocal(be store.Backend) (*Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := NewServer(be)
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// ListenAndServe listens on addr and serves until Close. The bound
// address is available from Addr once this returns a non-nil listener —
// use Listen + Serve when the caller needs the port before serving
// (loopback tests listen on ":0").
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on l until l is closed (by Close or
// externally), handling each connection's call/reply stream in its own
// goroutine. A listener already shut down by Close is rejected.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("netblock: server closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Addr returns the listening address, nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close hard-stops the server: the listener and every open connection
// are closed immediately, mid-request — the SIGKILL equivalent the
// chaos tests lean on. In-flight handlers exit on their next IO. Close
// waits for them, so when it returns the backend is quiescent and can
// be handed to a replacement server. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// logf reports a connection-level error through Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle runs one connection's request loop: decode, execute against the
// backend, reply. Backend failures are answered (statusNotFound /
// statusError), not dropped, so the client can tell "block missing" from
// "node unreachable"; only transport or protocol errors end the
// connection.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// stage holds this connection's in-flight chunked uploads, keyed by
	// node/key. Connection-local on purpose: a client that dies
	// mid-upload takes its partial bytes down with the connection, and
	// no half-written block ever reaches the backend.
	var stage map[string][]byte
	for {
		req, err := readRequest(br)
		if err != nil {
			// A clean disconnect between requests arrives as io.EOF;
			// anything else is worth surfacing to Logf.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("netblock: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if stage == nil && (req.op == opWriteBegin || req.op == opWriteChunk || req.op == opWriteCommit) {
			stage = make(map[string][]byte)
		}
		status, data := s.execute(&req, stage)
		if err := writeResponse(bw, status, data); err != nil {
			s.logf("netblock: %s: write response: %v", conn.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			s.logf("netblock: %s: flush: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// validateRequest vets a decoded request before any backend call. The
// server cannot trust wire-supplied keys: DirBackend resolves a key as
// a path under the node directory, so a key like "../../etc/passwd"
// from any peer that can reach the port would read, overwrite or delete
// files outside the store. Keys are therefore held to the
// [A-Za-z0-9._-] charset the store layer already guarantees (see
// blockKey and the tmpPrefix comment in internal/store), which excludes
// path separators outright; "." and ".." are the only in-charset names
// with path meaning and are rejected explicitly. Node ids must be
// non-negative for every op, and every op but ping needs a key. Every
// rejection wraps store.ErrBadKey, which execute answers as
// statusBadKey so the client can surface the same sentinel.
func validateRequest(req *request) error {
	if req.node < 0 {
		return fmt.Errorf("%w: negative node id %d", store.ErrBadKey, req.node)
	}
	if req.op == opPing {
		return nil
	}
	if req.key == "" {
		return fmt.Errorf("%w: empty key", store.ErrBadKey)
	}
	if req.key == "." || req.key == ".." {
		return fmt.Errorf("%w: invalid key %q", store.ErrBadKey, req.key)
	}
	for i := 0; i < len(req.key); i++ {
		c := req.key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return fmt.Errorf("%w: invalid key %q: byte %q outside [A-Za-z0-9._-]", store.ErrBadKey, req.key, c)
		}
	}
	return nil
}

// execute runs one decoded request against the backend. stage is the
// connection's chunked-upload state (nil unless the connection has used
// a staging op).
func (s *Server) execute(req *request, stage map[string][]byte) (status byte, data []byte) {
	if err := validateRequest(req); err != nil {
		return statusBadKey, []byte(err.Error())
	}
	switch req.op {
	case opWrite:
		// req.data is this request's decode buffer and nothing reads it
		// after execute (req.key was copied out as a string), so an
		// owned-write backend takes it copy-free.
		var err error
		if s.ow != nil {
			err = s.ow.WriteOwned(req.node, req.key, req.data)
		} else {
			err = s.be.Write(req.node, req.key, req.data)
		}
		if err != nil {
			return statusError, []byte(err.Error())
		}
		return statusOK, nil
	case opRead:
		b, err := s.be.Read(req.node, req.key)
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return statusNotFound, nil
			}
			return statusError, []byte(err.Error())
		}
		return statusOK, b
	case opDelete:
		if err := s.be.Delete(req.node, req.key); err != nil {
			return statusError, []byte(err.Error())
		}
		return statusOK, nil
	case opPing:
		return statusOK, nil
	case opReadChunk:
		offset, maxLen, err := parseChunkReq(req.data)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		b, err := s.be.Read(req.node, req.key)
		if err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return statusNotFound, nil
			}
			return statusError, []byte(err.Error())
		}
		total := uint64(len(b))
		if offset > total {
			offset = total
		}
		end := offset + uint64(maxLen)
		if end > total {
			end = total
		}
		// total(u64) ‖ window. The window aliases the backend's bytes
		// (read-only per the Backend contract); only the 8-byte prefix
		// allocates.
		resp := make([]byte, chunkRespHdrLen, chunkRespHdrLen+int(end-offset))
		binary.LittleEndian.PutUint64(resp, total)
		return statusOK, append(resp, b[offset:end]...)
	case opWriteBegin:
		sk := stageKey(req.node, req.key)
		if _, dup := stage[sk]; !dup && len(stage) >= maxStagedKeys {
			return statusError, []byte(fmt.Sprintf("netblock: %d uploads already staged on this connection", len(stage)))
		}
		stage[sk] = []byte{} // non-nil: the key is staged, even at 0 bytes
		return statusOK, nil
	case opWriteChunk:
		sk := stageKey(req.node, req.key)
		buf, ok := stage[sk]
		if !ok {
			return statusError, []byte("netblock: chunk without a staged upload (missing begin?)")
		}
		if len(buf)+len(req.data) > maxDataLen {
			delete(stage, sk)
			return statusError, []byte(fmt.Sprintf("netblock: staged upload exceeds limit %d", maxDataLen))
		}
		stage[sk] = append(buf, req.data...)
		return statusOK, nil
	case opWriteCommit:
		sk := stageKey(req.node, req.key)
		buf, ok := stage[sk]
		if !ok {
			return statusError, []byte("netblock: commit without a staged upload (missing begin?)")
		}
		delete(stage, sk)
		// The staged buffer is connection-owned and dead after this
		// request, so an owned-write backend takes it copy-free.
		var err error
		if s.ow != nil {
			err = s.ow.WriteOwned(req.node, req.key, buf)
		} else {
			err = s.be.Write(req.node, req.key, buf)
		}
		if err != nil {
			return statusError, []byte(err.Error())
		}
		return statusOK, nil
	default:
		// readRequest already rejected unknown ops; belt and braces.
		return statusError, []byte("netblock: unknown op")
	}
}

// stageKey names one staged upload on a connection.
func stageKey(node int, key string) string { return fmt.Sprintf("%d/%s", node, key) }
