package netblock

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Options tunes a Client. Zero fields take defaults.
type Options struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// Timeout is the per-operation IO deadline covering the request
	// write and the response read (default 10s) — a hung node surfaces
	// as a failed block op, which the store treats like any other read
	// failure and reconstructs around. Payload bytes get extra budget on
	// top: the deadline grows by payload/wireFloorRate, so a 256 MB
	// block over a slow link is not condemned by a deadline sized for
	// pings.
	Timeout time.Duration
	// Retries is how many extra attempts an operation gets after a
	// transport failure, each on a freshly dialed connection. The zero
	// value means "use the default" (2), so to disable retries entirely
	// set any negative value, which is clamped to zero extra attempts.
	// Application-level failures (not-found, remote errors) never retry:
	// the node answered, the answer stands.
	Retries int
	// PoolSize caps the idle connections kept per node (default 2 — the
	// store's read pool fans out to 4 workers, but those spread over k
	// distinct nodes under rack-aware placement).
	PoolSize int
	// RetryBackoff is the base sleep between retry attempts on one
	// operation (default 5ms), doubling per attempt with jitter so a
	// down node is never hammered back-to-back. Negative disables the
	// sleep entirely (tests that want deterministic timing).
	RetryBackoff time.Duration
	// RetryBudget caps one operation's total retry wall-time — dials,
	// round trips and backoff sleeps together (default 15s). When the
	// budget runs out the operation fails with whatever error the last
	// attempt produced, even if attempts remain.
	RetryBudget time.Duration
	// BreakerThreshold is how many consecutive transport failures open a
	// node's circuit breaker (default 5; negative disables the breaker).
	// With the breaker open, operations on the node fail fast with
	// ErrBreakerOpen instead of burning a dial timeout each; after a
	// jittered exponential cooldown one operation is admitted as the
	// half-open probe (a protocol ping) and its outcome closes or
	// re-opens the breaker.
	BreakerThreshold int
	// BreakerCooldown is the breaker's base open duration (default
	// 250ms), doubling on every consecutive re-open up to
	// BreakerMaxCooldown (default 15s). Both are jittered.
	BreakerCooldown time.Duration
	// BreakerMaxCooldown caps the exponential cooldown growth.
	BreakerMaxCooldown time.Duration
	// ChunkSize is the window size for streamed block transfers
	// (ReadBlockTo / WriteBlockFrom), default 1 MiB. Each window is one
	// request/response, so the per-operation deadline applies per window
	// and a multi-GB migration never needs a multi-GB deadline.
	ChunkSize int
}

func (o *Options) fillDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 15 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	} else if o.BreakerThreshold < 0 {
		o.BreakerThreshold = -1
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	if o.BreakerMaxCooldown <= 0 {
		o.BreakerMaxCooldown = 15 * time.Second
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
}

// clientNode is one remote node: its address, idle-connection pool and
// wire counters.
type clientNode struct {
	mu   sync.Mutex
	addr string
	idle []net.Conn

	sent, recv atomic.Int64

	health *nodeHealth
}

// Client implements store.Backend across N remote block servers: node i
// of the store maps to nodes[i] of the address list, so a 16-wide LRC
// stripe spreads over 16 node processes exactly as it spreads over 16
// directories under a DirBackend. Connections are pooled per node;
// failed operations retry on fresh connections up to Options.Retries
// times; every request and response byte is counted per node, which is
// how the paper's repair-traffic claim is measured on the wire
// (store.Metrics surfaces the totals as WireSentBytes/WireRecvBytes).
//
// Client also implements store.OwnedWriter: a WriteOwned's buffer is
// fully drained to the socket before return, so taking ownership is
// free — the streaming put and repair paths then skip their defensive
// copies.
type Client struct {
	opts Options

	// mu guards the node table's shape: AddNode grows it at runtime
	// (elastic membership), so every index lookup snapshots under the
	// read lock. The *clientNode entries themselves never move or get
	// replaced — per-node state has its own locks.
	mu    sync.RWMutex
	nodes []*clientNode
}

// Dial builds a client over the given node addresses (host:port, one
// per store node). No connections are opened until the first operation,
// so a cluster can be wired up before every node is listening.
func Dial(addrs []string, opts Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netblock: no node addresses")
	}
	opts.fillDefaults()
	c := &Client{opts: opts, nodes: make([]*clientNode, len(addrs))}
	for i, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("netblock: empty address for node %d", i)
		}
		c.nodes[i] = &clientNode{
			addr:   a,
			health: newNodeHealth(opts.BreakerThreshold, opts.BreakerCooldown, opts.BreakerMaxCooldown),
		}
	}
	return c, nil
}

// Nodes returns how many node addresses the client spans.
func (c *Client) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// AddNode implements store.NodeAdder: one more node joins the address
// table and its id (the previous count) is returned. An empty addr is
// accepted — the store re-registers retired nodes at recovery to keep
// ids aligned, and an address-less node simply fails every dial until
// SetNode repoints it.
func (c *Client) AddNode(addr string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := len(c.nodes)
	c.nodes = append(c.nodes, &clientNode{
		addr:   addr,
		health: newNodeHealth(c.opts.BreakerThreshold, c.opts.BreakerCooldown, c.opts.BreakerMaxCooldown),
	})
	return id, nil
}

// nodesSnapshot copies the node table under the read lock.
func (c *Client) nodesSnapshot() []*clientNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*clientNode(nil), c.nodes...)
}

// SetNode repoints node to addr — a node that came back on a new port
// (or a replacement process) slots in without rebuilding the client.
// Pooled connections to the old address are dropped.
func (c *Client) SetNode(node int, addr string) error {
	n, err := c.node(node)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.addr = addr
	idle := n.idle
	n.idle = nil
	n.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	// The old process's failures say nothing about the new one: start it
	// with a clean window and a closed breaker.
	n.health.reset()
	return nil
}

// Close drops every pooled connection. The client remains usable (new
// operations dial afresh); Close exists so tests and the CLI exit
// without lingering sockets.
func (c *Client) Close() error {
	for _, n := range c.nodesSnapshot() {
		n.mu.Lock()
		idle := n.idle
		n.idle = nil
		n.mu.Unlock()
		for _, conn := range idle {
			conn.Close()
		}
	}
	return nil
}

// WireTraffic implements store.WireStats: cumulative protocol bytes
// sent to and received from each node (headers + keys + payloads; TCP/IP
// framing excluded). Index i is store node i.
func (c *Client) WireTraffic() (sent, recv []int64) {
	nodes := c.nodesSnapshot()
	sent = make([]int64, len(nodes))
	recv = make([]int64, len(nodes))
	for i, n := range nodes {
		sent[i] = n.sent.Load()
		recv[i] = n.recv.Load()
	}
	return sent, recv
}

func (c *Client) node(node int) (*clientNode, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if node < 0 || node >= len(c.nodes) {
		return nil, fmt.Errorf("netblock: node %d out of range [0,%d)", node, len(c.nodes))
	}
	return c.nodes[node], nil
}

// getConn pops an idle connection (pooled=true) or dials a fresh one.
// addr is the node address the connection belongs to — putConn uses it
// to spot connections that outlived a SetNode.
func (c *Client) getConn(n *clientNode) (conn net.Conn, addr string, pooled bool, err error) {
	n.mu.Lock()
	if len(n.idle) > 0 {
		conn := n.idle[len(n.idle)-1]
		n.idle = n.idle[:len(n.idle)-1]
		addr := n.addr
		n.mu.Unlock()
		return conn, addr, true, nil
	}
	addr = n.addr
	n.mu.Unlock()
	conn, err = net.DialTimeout("tcp", addr, c.opts.DialTimeout)
	return conn, addr, false, err
}

// putConn returns a healthy connection to the pool, or closes it when
// the pool is full or the node has been re-addressed since the
// connection was checked out (SetNode flushes the idle pool, but an
// in-flight connection completes afterwards — pooling it would let a
// later operation talk to the old process).
func (c *Client) putConn(n *clientNode, conn net.Conn, addr string) {
	n.mu.Lock()
	if addr == n.addr && len(n.idle) < c.opts.PoolSize {
		n.idle = append(n.idle, conn)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	conn.Close()
}

// do runs one request against a node with bounded retries. Transport
// errors burn the connection and retry after a jittered exponential
// backoff; status-level replies are final. Failures on pooled
// connections are free — a node that restarted since the pool filled
// leaves up to PoolSize dead sockets behind, and charging those against
// the retry budget could declare a healthy node unreachable before a
// single fresh dial — only freshly dialed attempts count against the
// retry count, the health window and the breaker. Options.RetryBudget
// caps the operation's total wall-time across attempts and sleeps. The
// returned payload is the response body (block bytes for reads).
func (c *Client) do(node int, op byte, key string, data []byte) ([]byte, error) {
	n, err := c.node(node)
	if err != nil {
		return nil, err
	}
	// The header's keyLen field is 16 bits: a longer key would encode
	// truncated and desync the stream, so refuse it here. The server's
	// own cap is the same, so anything past it would only be rejected
	// remotely anyway.
	if len(key) > maxKeyLen {
		return nil, fmt.Errorf("netblock: key length %d exceeds limit %d", len(key), maxKeyLen)
	}
	probe, err := n.health.allow()
	if err != nil {
		return nil, fmt.Errorf("netblock: node %d: %w", node, err)
	}
	if probe && op != opPing {
		// Half-open: prove the node answers a ping on a fresh connection
		// before committing the real (possibly payload-heavy) operation.
		// The ping's outcome drives the breaker; a success also clears
		// the probing latch so the real op below runs against a closed
		// breaker.
		if err := c.attempt(n, node, opPing, "", nil); err != nil {
			return nil, fmt.Errorf("netblock: node %d failed half-open probe: %w", node, err)
		}
	}
	deadline := time.Now().Add(c.opts.RetryBudget)
	backoff := c.opts.RetryBackoff
	var lastErr error
	attempt := 0
	for attempt <= c.opts.Retries {
		conn, addr, pooled, err := c.getConn(n)
		if err != nil {
			n.health.record(false, 0, err)
			lastErr = err
			attempt++
			if !c.backoff(&backoff, attempt, deadline) {
				break
			}
			continue
		}
		start := time.Now()
		status, body, err := c.roundTrip(n, conn, op, node, key, data)
		if err != nil {
			conn.Close()
			lastErr = err
			if !pooled {
				n.health.record(false, time.Since(start), err)
				attempt++
				if !c.backoff(&backoff, attempt, deadline) {
					break
				}
			}
			continue
		}
		n.health.record(true, time.Since(start), nil)
		c.putConn(n, conn, addr)
		switch status {
		case statusOK:
			return body, nil
		case statusNotFound:
			return nil, fmt.Errorf("%w: node %d key %q", store.ErrBlockNotFound, node, key)
		case statusBadKey:
			return nil, fmt.Errorf("%w: node %d: %s", store.ErrBadKey, node, body)
		default:
			return nil, fmt.Errorf("netblock: node %d: remote error: %s", node, body)
		}
	}
	return nil, fmt.Errorf("netblock: node %d (%s) unreachable after %d attempts: %w",
		node, n.addrSnapshot(), attempt, lastErr)
}

// attempt runs one non-retrying operation on a fresh connection,
// recording the outcome in the node's health window. It is the
// half-open probe path: pooled connections are skipped because a stale
// pooled socket failing must not re-open the breaker the probe is
// trying to close.
func (c *Client) attempt(n *clientNode, node int, op byte, key string, data []byte) error {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", n.addrSnapshot(), c.opts.DialTimeout)
	if err != nil {
		n.health.record(false, time.Since(start), err)
		return err
	}
	status, body, err := c.roundTrip(n, conn, op, node, key, data)
	if err != nil {
		conn.Close()
		n.health.record(false, time.Since(start), err)
		return err
	}
	n.health.record(true, time.Since(start), nil)
	c.putConn(n, conn, n.addrSnapshot())
	if status != statusOK {
		return fmt.Errorf("netblock: node %d: remote error: %s", node, body)
	}
	return nil
}

// backoff sleeps the jittered current backoff (doubling it for next
// time) before another attempt. It returns false when no attempts
// remain worth sleeping for: the retry budget deadline has passed or
// would pass mid-sleep. A negative RetryBackoff skips sleeping but
// still honors the deadline.
func (c *Client) backoff(cur *time.Duration, attempt int, deadline time.Time) bool {
	if attempt > c.opts.Retries {
		return false // last attempt burned; no sleep before reporting failure
	}
	if c.opts.RetryBackoff < 0 {
		return time.Now().Before(deadline)
	}
	d := jitter(*cur)
	*cur *= 2
	if time.Now().Add(d).After(deadline) {
		return false
	}
	time.Sleep(d)
	return true
}

func (n *clientNode) addrSnapshot() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// wireFloorRate is the slowest link the deadline math tolerates, in
// bytes per second (4 MiB/s ≈ 34 Mbps): Options.Timeout budgets the
// headers and turnaround, and each payload byte adds 1/wireFloorRate on
// top via opTimeout.
const wireFloorRate = 4 << 20

// opTimeout returns the IO budget for an operation moving n payload
// bytes: the configured Timeout plus the payload at wireFloorRate.
func (c *Client) opTimeout(n int) time.Duration {
	return c.opts.Timeout + time.Duration(n)*time.Second/wireFloorRate
}

// roundTrip performs one framed request/response on conn under the IO
// deadline, charging the node's wire counters for exactly the protocol
// bytes moved. The payload goes out as one vectored write alongside the
// header+key (writev on a TCP conn): no staging copy of the block, so
// WriteOwned's zero-copy claim holds all the way to the socket. The
// deadline scales with the bytes in play — the request payload up
// front, the response payload once its header announces the size.
func (c *Client) roundTrip(n *clientNode, conn net.Conn, op byte, node int, key string, data []byte) (byte, []byte, error) {
	if err := conn.SetDeadline(time.Now().Add(c.opTimeout(len(data)))); err != nil {
		return 0, nil, err
	}
	hdr := appendHeader(make([]byte, 0, reqHeaderLen+len(key)), op, node, key, len(data))
	if len(data) > 0 {
		bufs := net.Buffers{hdr, data}
		if _, err := bufs.WriteTo(conn); err != nil {
			return 0, nil, err
		}
	} else if _, err := conn.Write(hdr); err != nil {
		return 0, nil, err
	}
	n.sent.Add(requestWireLen(key, data))
	status, body, wire, err := readResponse(conn, func(size int) {
		if size > 0 {
			conn.SetDeadline(time.Now().Add(c.opTimeout(size)))
		}
	})
	if err != nil {
		return 0, nil, err
	}
	n.recv.Add(wire)
	return status, body, nil
}

// Write implements store.Backend.
func (c *Client) Write(node int, key string, data []byte) error {
	_, err := c.do(node, opWrite, key, data)
	return err
}

// WriteOwned implements store.OwnedWriter: the buffer is sent (or the
// operation has failed) by return time, so ownership costs nothing and
// the store's zero-copy put/repair paths stay zero-copy up to the
// socket.
func (c *Client) WriteOwned(node int, key string, data []byte) error {
	return c.Write(node, key, data)
}

// Read implements store.Backend.
func (c *Client) Read(node int, key string) ([]byte, error) {
	return c.do(node, opRead, key, nil)
}

// Delete implements store.Backend.
func (c *Client) Delete(node int, key string) error {
	_, err := c.do(node, opDelete, key, nil)
	return err
}

// Ping checks liveness of one node over a pooled connection. Ping goes
// through the same breaker gate as every other operation: with the
// breaker open it fails fast, and once the cooldown elapses the ping
// itself is the half-open probe — so a HealthMonitor polling CheckNode
// is exactly the probe driver the breaker wants.
func (c *Client) Ping(node int) error {
	_, err := c.do(node, opPing, "", nil)
	return err
}

// CheckNode implements store.HealthChecker: one breaker-aware liveness
// probe. An open breaker failing fast is the correct monitor signal —
// the node has already proven itself down this cooldown window.
func (c *Client) CheckNode(node int) error { return c.Ping(node) }

// NodeHealth implements store.HealthStats: a snapshot of every node's
// breaker state and windowed error/latency accounting.
func (c *Client) NodeHealth() []store.NodeHealthInfo {
	nodes := c.nodesSnapshot()
	out := make([]store.NodeHealthInfo, len(nodes))
	for i, n := range nodes {
		out[i] = n.health.snapshot()
		out[i].Node = i
	}
	return out
}
