// Package netblock moves the store's blocks over real TCP: a Server
// exposes one node process's storage (any store.Backend — dir or mem)
// through a length-prefixed binary protocol, and a Client implements
// store.Backend across N host:port nodes, so repair traffic becomes
// actual network traffic instead of in-process counters. Block payloads
// are the store's CRC-framed blocks passed through untouched: the same
// 4-byte CRC32C header that guards a block on disk guards it on the
// wire, end to end, with no re-framing at either side.
//
// Wire format (all integers little-endian):
//
//	request:  op(1) node(u32) keyLen(u16) dataLen(u32) key data
//	response: status(1) dataLen(u32) data
//
// op is one of opWrite/opRead/opDelete/opPing; data is the framed block
// for writes, empty otherwise. status is statusOK (data = block bytes on
// reads), statusNotFound, statusBadKey (the request's key or node failed
// validation; data = error message), or statusError (data = error
// message). The client maps statuses back onto the store's typed errors
// — store.ErrBlockNotFound, store.ErrBadKey — so errors.Is works the
// same against a remote backend as a local one. One request is answered
// by exactly one response, in order, so a connection carries a simple
// call/reply stream and pools trivially.
package netblock

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol ops. The chunked ops exist for blocks bigger than one wire
// frame (the rebalancer migrating 256 MB paper-scale blocks): opReadChunk
// returns a bounded window of a block plus its total size, and
// opWriteBegin/opWriteChunk/opWriteCommit stage an upload on the
// connection, committing atomically so a reader never observes a
// half-written block.
const (
	opWrite  = 'W'
	opRead   = 'R'
	opDelete = 'D'
	opPing   = 'P'
	// opReadChunk's 12-byte payload is offset(u64) maxLen(u32); the
	// response data is total(u64) followed by the window bytes.
	opReadChunk = 'C'
	// opWriteBegin stages an empty upload for the request's key on this
	// connection; opWriteChunk appends its payload to the stage;
	// opWriteCommit writes the staged bytes to the backend in one call
	// and clears the stage. Stages are connection-local: a dropped
	// connection discards its partial uploads.
	opWriteBegin  = 'B'
	opWriteChunk  = 'A'
	opWriteCommit = 'M'
)

// Response statuses.
const (
	statusOK       = 0
	statusNotFound = 1
	statusError    = 2
	statusBadKey   = 3
)

const (
	reqHeaderLen  = 1 + 4 + 2 + 4
	respHeaderLen = 1 + 4
	// maxKeyLen bounds a block key on the wire; store keys are short
	// (name.gNNNNNN.sNNNNN.bNN) and the cap keeps a corrupt header from
	// provoking a giant allocation.
	maxKeyLen = 4096
	// maxDataLen bounds one framed block on the wire (1 GiB; the paper's
	// 256 MB blocks fit with room). Same corrupt-header defense. Staged
	// chunked uploads are held to the same total.
	maxDataLen = 1 << 30
	// chunkReqLen is opReadChunk's fixed payload: offset(u64) maxLen(u32).
	chunkReqLen = 12
	// chunkRespHdrLen prefixes every opReadChunk response: total(u64).
	chunkRespHdrLen = 8
	// maxStagedKeys bounds concurrent chunked uploads per connection —
	// the client pins one connection per upload, so more than a few
	// stages on one connection is a protocol abuse, not a workload.
	maxStagedKeys = 4
)

// appendChunkReq encodes an opReadChunk payload.
func appendChunkReq(dst []byte, offset uint64, maxLen uint32) []byte {
	var b [chunkReqLen]byte
	binary.LittleEndian.PutUint64(b[:], offset)
	binary.LittleEndian.PutUint32(b[8:], maxLen)
	return append(dst, b[:]...)
}

// parseChunkReq decodes an opReadChunk payload.
func parseChunkReq(b []byte) (offset uint64, maxLen uint32, err error) {
	if len(b) != chunkReqLen {
		return 0, 0, fmt.Errorf("netblock: chunk read payload is %d bytes, want %d", len(b), chunkReqLen)
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint32(b[8:]), nil
}

// request is one decoded client request.
type request struct {
	op   byte
	node int
	key  string
	data []byte
}

// appendHeader encodes a request's header and key onto dst and returns
// the extended slice; the payload is not copied in — the client sends
// header+key and the payload as one vectored write, so a block write
// never copies its (possibly multi-MiB) payload into a staging buffer.
func appendHeader(dst []byte, op byte, node int, key string, dataLen int) []byte {
	var hdr [reqHeaderLen]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(node))
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[7:], uint32(dataLen))
	dst = append(dst, hdr[:]...)
	return append(dst, key...)
}

// appendRequest encodes a whole request onto dst — appendHeader plus the
// payload, for callers (tests) that want the exact wire image.
func appendRequest(dst []byte, op byte, node int, key string, data []byte) []byte {
	return append(appendHeader(dst, op, node, key, len(data)), data...)
}

// requestWireLen is the exact wire size of a request — the client's
// sent-bytes accounting.
func requestWireLen(key string, data []byte) int64 {
	return int64(reqHeaderLen + len(key) + len(data))
}

// readBodyEager is the largest payload readBody allocates up front;
// anything bigger grows only as bytes actually arrive.
const readBodyEager = 1 << 20

// readBody reads exactly n bytes from r without trusting n for the
// up-front allocation: a header's length field is attacker-controlled on
// both sides (a hostile client against the server, a hostile server
// against the client), so a handful of 11-byte headers claiming
// dataLen=1<<30 must not pin gigabytes before a single payload byte is
// sent. Small payloads (every real block today) take the one-allocation
// fast path; larger ones grow a bytes.Buffer geometrically as data
// lands, so memory tracks bytes genuinely received.
func readBody(r io.Reader, n int) ([]byte, error) {
	if n <= readBodyEager {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	var b bytes.Buffer
	b.Grow(readBodyEager)
	if _, err := io.CopyN(&b, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b.Bytes(), nil
}

// readRequest decodes one request from r (the server side).
func readRequest(r io.Reader) (request, error) {
	var hdr [reqHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return request{}, err
	}
	req := request{op: hdr[0], node: int(int32(binary.LittleEndian.Uint32(hdr[1:])))}
	keyLen := int(binary.LittleEndian.Uint16(hdr[5:]))
	// Compare the data length unconverted: on a 32-bit int a corrupt
	// 0xFFFFFFFF header would wrap negative, slip past the limit and
	// panic the make below.
	dataLen64 := uint64(binary.LittleEndian.Uint32(hdr[7:]))
	if keyLen > maxKeyLen {
		return request{}, fmt.Errorf("netblock: key length %d exceeds limit %d", keyLen, maxKeyLen)
	}
	if dataLen64 > maxDataLen {
		return request{}, fmt.Errorf("netblock: block length %d exceeds limit %d", dataLen64, maxDataLen)
	}
	dataLen := int(dataLen64)
	switch req.op {
	case opWrite, opRead, opDelete, opPing, opReadChunk, opWriteBegin, opWriteChunk, opWriteCommit:
	default:
		return request{}, fmt.Errorf("netblock: unknown op %q", req.op)
	}
	// Only writes and chunk appends carry a free-form payload, and a
	// chunk read carries exactly its fixed 12-byte window spec; any other
	// op claiming bytes would make the server buffer up to maxDataLen per
	// request just to throw it away, so it is a protocol violation like
	// an unknown op.
	switch {
	case req.op == opWrite || req.op == opWriteChunk:
	case req.op == opReadChunk:
		if dataLen != chunkReqLen {
			return request{}, fmt.Errorf("netblock: chunk read carries %d payload bytes, want %d", dataLen, chunkReqLen)
		}
	default:
		if dataLen != 0 {
			return request{}, fmt.Errorf("netblock: op %q carries %d payload bytes", req.op, dataLen)
		}
	}
	buf, err := readBody(r, keyLen+dataLen)
	if err != nil {
		return request{}, err
	}
	req.key = string(buf[:keyLen])
	req.data = buf[keyLen:]
	return req, nil
}

// writeResponse encodes one response onto w (the server side).
func writeResponse(w io.Writer, status byte, data []byte) error {
	var hdr [respHeaderLen]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// readResponse decodes one response from r (the client side), returning
// the status, payload and exact wire byte count read. onSize, when
// non-nil, is told the payload length after the header parses and
// before the body is read; the client uses it to grow the IO deadline
// in proportion to a large block's size.
func readResponse(r io.Reader, onSize func(size int)) (status byte, data []byte, wire int64, err error) {
	var hdr [respHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	// Unconverted comparison for the same 32-bit wrap reason as
	// readRequest.
	dataLen64 := uint64(binary.LittleEndian.Uint32(hdr[1:]))
	if dataLen64 > maxDataLen {
		return 0, nil, 0, fmt.Errorf("netblock: response length %d exceeds limit %d", dataLen64, maxDataLen)
	}
	if onSize != nil {
		onSize(int(dataLen64))
	}
	data, err = readBody(r, int(dataLen64))
	if err != nil {
		return 0, nil, 0, err
	}
	return hdr[0], data, int64(respHeaderLen + len(data)), nil
}
