package netblock

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/store"
)

// closedPort reserves a loopback port and closes it, so nothing listens
// there for the rest of the test.
func closedPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBreakerOpensAndFailsFast drives a dead node to the failure
// threshold and checks that further operations fail locally in
// ErrBreakerOpen without burning a dial timeout each.
func TestBreakerOpensAndFailsFast(t *testing.T) {
	addr := closedPort(t)
	c, err := Dial([]string{addr}, Options{
		DialTimeout:      200 * time.Millisecond,
		Retries:          -1, // one attempt per op: threshold arithmetic stays exact
		RetryBackoff:     -1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // never half-opens during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(0); err == nil {
			t.Fatal("ping of a closed port succeeded")
		} else if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("breaker open after %d failures, threshold is 3", i+1)
		}
	}
	start := time.Now()
	err = c.Ping(0)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen after threshold, got: %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("open breaker took %v to answer; want a local fast-fail", d)
	}
	infos := c.NodeHealth()
	if len(infos) != 1 || infos[0].State != "open" {
		t.Fatalf("NodeHealth = %+v, want one open node", infos)
	}
	if infos[0].Opens != 1 || infos[0].ConsecFails < 3 {
		t.Fatalf("NodeHealth counters = %+v", infos[0])
	}
}

// TestBreakerHalfOpenRecovery opens a node's breaker, brings the node
// back, and checks the half-open probe closes the breaker so real
// operations flow again — zero operator action.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	addr := closedPort(t)
	c, err := Dial([]string{addr}, Options{
		DialTimeout:        200 * time.Millisecond,
		Retries:            -1,
		RetryBackoff:       -1,
		BreakerThreshold:   2,
		BreakerCooldown:    50 * time.Millisecond,
		BreakerMaxCooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		if err := c.Ping(0); err == nil {
			t.Fatal("ping of a closed port succeeded")
		}
	}
	if err := c.Ping(0); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got: %v", err)
	}

	// Bring the node up on the same address the client already has.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewServer(store.NewMemBackend())
	go srv.Serve(ln)
	defer srv.Close()

	// Within the cooldown the breaker still fails fast; once it elapses
	// the next operation is the half-open probe and must succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Ping(0)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("unexpected error during recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after the node came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.NodeHealth()[0].State; got != "closed" {
		t.Fatalf("breaker state after recovery = %q, want closed", got)
	}
	// A real operation (with a payload) works too.
	if err := c.Write(0, "k", store.FrameBlock([]byte("back"))); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestRetryBackoffSleeps checks the satellite fix: retry attempts
// against a down node are spaced by the jittered backoff instead of
// hammering back-to-back.
func TestRetryBackoffSleeps(t *testing.T) {
	addr := closedPort(t)
	c, err := Dial([]string{addr}, Options{
		DialTimeout:      100 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     40 * time.Millisecond,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(0); err == nil {
		t.Fatal("ping of a closed port succeeded")
	}
	// Three attempts with sleeps of jitter(40ms) + jitter(80ms) between
	// them: at least (40+80)/2 = 60ms of deliberate spacing (dials to a
	// closed loopback port fail in microseconds).
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("3 attempts finished in %v; retries are not backing off", d)
	}
}

// TestRetryBudgetDeadline checks that the retry wall-time cap cuts the
// attempt loop short: a generous retry count cannot hold a caller past
// the budget.
func TestRetryBudgetDeadline(t *testing.T) {
	addr := closedPort(t)
	c, err := Dial([]string{addr}, Options{
		DialTimeout:      100 * time.Millisecond,
		Retries:          1000,
		RetryBackoff:     50 * time.Millisecond,
		RetryBudget:      200 * time.Millisecond,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(0); err == nil {
		t.Fatal("ping of a closed port succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("budgeted operation took %v; deadline is not capping retries", d)
	}
}

// TestSetNodeResetsBreaker checks that repointing a node clears its
// failure history — the new process starts with a closed breaker.
func TestSetNodeResetsBreaker(t *testing.T) {
	addr := closedPort(t)
	c, err := Dial([]string{addr}, Options{
		DialTimeout:      200 * time.Millisecond,
		Retries:          -1,
		RetryBackoff:     -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		c.Ping(0)
	}
	if err := c.Ping(0); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got: %v", err)
	}
	_, addr2 := startServer(t, store.NewMemBackend())
	if err := c.SetNode(0, addr2); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeHealth()[0].State; got != "closed" {
		t.Fatalf("breaker state after SetNode = %q, want closed", got)
	}
	if err := c.Ping(0); err != nil {
		t.Fatalf("ping after SetNode: %v", err)
	}
}

// TestNodeHealthWindow checks the sliding-window accounting: operations
// land in WindowOps, failures in WindowErrRate, and latencies in the
// quantiles.
func TestNodeHealthWindow(t *testing.T) {
	_, addr := startServer(t, store.NewMemBackend())
	c := dialTest(t, addr)
	for i := 0; i < 10; i++ {
		if err := c.Ping(0); err != nil {
			t.Fatal(err)
		}
	}
	info := c.NodeHealth()[0]
	if info.WindowOps != 10 || info.WindowErrRate != 0 {
		t.Fatalf("window = %+v, want 10 ops, 0 errors", info)
	}
	if info.P99 < info.P50 {
		t.Fatalf("P99 %v < P50 %v", info.P99, info.P50)
	}
	if info.Node != 0 || info.LastErr != "" {
		t.Fatalf("info = %+v", info)
	}
}
